#include "netdev/nic.hpp"

#include <gtest/gtest.h>

#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec UdpFrame(uint32_t size, uint32_t src_ip, uint16_t src_port) {
  FrameSpec spec;
  spec.size = size;
  spec.flow.src_ip = src_ip;
  spec.flow.dst_ip = 0x0a000002;
  spec.flow.src_port = src_port;
  spec.flow.dst_port = 80;
  spec.flow.protocol = 17;
  return spec;
}

class NicTest : public ::testing::Test {
 protected:
  PacketPool pool_{1024};
};

TEST_F(NicTest, DeliverPollRoundTrip) {
  NicConfig cfg;
  cfg.num_rx_queues = 1;
  cfg.kn = 1;
  NicPort nic(cfg);
  Packet* p = AllocFrame(UdpFrame(64, 1, 1000), &pool_);
  nic.Deliver(p, 0.0);
  Packet* out[4];
  ASSERT_EQ(nic.PollRx(0, out, 4), 1u);
  EXPECT_EQ(out[0], p);
  EXPECT_EQ(nic.rx_counters().packets, 1u);
  pool_.Free(p);
}

TEST_F(NicTest, KnBatchingWithholdsUntilBatchFull) {
  NicConfig cfg;
  cfg.num_rx_queues = 1;
  cfg.kn = 4;
  NicPort nic(cfg);
  Packet* out[8];
  for (int i = 0; i < 3; ++i) {
    nic.Deliver(AllocFrame(UdpFrame(64, 1, 1000), &pool_), 0.0);
    EXPECT_EQ(nic.PollRx(0, out, 8), 0u) << "staged packets visible too early";
  }
  nic.Deliver(AllocFrame(UdpFrame(64, 1, 1000), &pool_), 0.0);
  size_t n = nic.PollRx(0, out, 8);
  EXPECT_EQ(n, 4u);
  for (size_t i = 0; i < n; ++i) {
    pool_.Free(out[i]);
  }
}

TEST_F(NicTest, BatchTimeoutFlushes) {
  NicConfig cfg;
  cfg.num_rx_queues = 1;
  cfg.kn = 16;
  cfg.batch_timeout = 1e-3;
  NicPort nic(cfg);
  nic.Deliver(AllocFrame(UdpFrame(64, 1, 1000), &pool_), 0.0);
  Packet* out[4];
  EXPECT_EQ(nic.PollRx(0, out, 4), 0u);
  nic.FlushStaged(0.5e-3);
  EXPECT_EQ(nic.PollRx(0, out, 4), 0u) << "flushed before the timeout";
  nic.FlushStaged(1.5e-3);
  ASSERT_EQ(nic.PollRx(0, out, 4), 1u);
  pool_.Free(out[0]);
}

TEST_F(NicTest, RssSteersSameFlowToSameQueue) {
  NicConfig cfg;
  cfg.num_rx_queues = 8;
  cfg.kn = 1;
  NicPort nic(cfg);
  // Two packets of the same flow land in the same queue.
  Packet* a = AllocFrame(UdpFrame(64, 42, 4242), &pool_);
  Packet* b = AllocFrame(UdpFrame(128, 42, 4242), &pool_);
  nic.Deliver(a, 0.0);
  nic.Deliver(b, 0.0);
  for (uint16_t q = 0; q < 8; ++q) {
    uint64_t depth = nic.rx_queue_depth(q);
    EXPECT_TRUE(depth == 0 || depth == 2) << "flow split across queues";
    Packet* out[4];
    size_t n = nic.PollRx(q, out, 4);
    for (size_t i = 0; i < n; ++i) {
      pool_.Free(out[i]);
    }
  }
}

TEST_F(NicTest, RxDropWhenRingFull) {
  NicConfig cfg;
  cfg.num_rx_queues = 1;
  cfg.ring_entries = 4;
  cfg.kn = 1;
  NicPort nic(cfg);
  for (int i = 0; i < 6; ++i) {
    nic.Deliver(AllocFrame(UdpFrame(64, 1, 1000), &pool_), 0.0);
  }
  EXPECT_EQ(nic.rx_counters().drops, 2u);
  EXPECT_EQ(nic.rx_counters().packets, 4u);
  // Dropped packets were returned to the pool.
  Packet* out[8];
  size_t n = nic.PollRx(0, out, 8);
  EXPECT_EQ(n, 4u);
  for (size_t i = 0; i < n; ++i) {
    pool_.Free(out[i]);
  }
  EXPECT_EQ(pool_.available(), pool_.capacity());
}

TEST_F(NicTest, TransmitAndDrain) {
  NicConfig cfg;
  cfg.num_tx_queues = 4;
  NicPort nic(cfg);
  for (uint16_t q = 0; q < 4; ++q) {
    EXPECT_TRUE(nic.Transmit(q, AllocFrame(UdpFrame(64, q, 1), &pool_)));
  }
  Packet* out[8];
  size_t n = nic.DrainTx(out, 8);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(nic.tx_counters().packets, 4u);
  for (size_t i = 0; i < n; ++i) {
    pool_.Free(out[i]);
  }
}

TEST_F(NicTest, TxDropWhenRingFull) {
  NicConfig cfg;
  cfg.num_tx_queues = 1;
  cfg.ring_entries = 2;
  NicPort nic(cfg);
  EXPECT_TRUE(nic.Transmit(0, AllocFrame(UdpFrame(64, 1, 1), &pool_)));
  EXPECT_TRUE(nic.Transmit(0, AllocFrame(UdpFrame(64, 1, 1), &pool_)));
  EXPECT_FALSE(nic.Transmit(0, AllocFrame(UdpFrame(64, 1, 1), &pool_)));
  EXPECT_EQ(nic.tx_counters().drops, 1u);
  Packet* out[4];
  size_t n = nic.DrainTx(out, 4);
  for (size_t i = 0; i < n; ++i) {
    pool_.Free(out[i]);
  }
}

TEST_F(NicTest, PcieDescriptorBatchingReducesTransactions) {
  // kn=16 packs 16 descriptors into one PCIe transaction; kn=1 pays one
  // transaction per descriptor (Table 1's mechanism).
  auto run = [&](uint16_t kn) {
    NicConfig cfg;
    cfg.kn = kn;
    NicPort nic(cfg);
    for (int i = 0; i < 16; ++i) {
      nic.Deliver(AllocFrame(UdpFrame(64, 1, 1000), &pool_), 0.0);
    }
    nic.FlushAllStaged();
    Packet* out[32];
    size_t n = nic.PollRx(0, out, 32);
    for (size_t i = 0; i < n; ++i) {
      pool_.Free(out[i]);
    }
    return nic.pcie_counters().transactions.load();
  };
  uint64_t txn_kn16 = run(16);
  uint64_t txn_kn1 = run(1);
  // Data DMA transactions are equal; descriptor transactions shrink 16x.
  EXPECT_EQ(txn_kn1 - txn_kn16, 15u);
}

TEST_F(NicTest, DeliverBatchMatchesPerPacketDeliver) {
  // Two identical ports, same frames: one fed per packet, one per batch.
  // Steering, staging, and counters must agree exactly.
  NicConfig cfg;
  cfg.num_rx_queues = 4;
  cfg.kn = 16;
  NicPort single(cfg);
  NicPort bulk(cfg);

  PacketBatch batch;
  std::vector<Packet*> singles;
  for (int i = 0; i < 37; ++i) {
    FrameSpec spec = UdpFrame(64, 0x0a000000u + static_cast<uint32_t>(i),
                              static_cast<uint16_t>(1000 + i));
    singles.push_back(AllocFrame(spec, &pool_));
    batch.PushBack(AllocFrame(spec, &pool_));
  }
  for (Packet* p : singles) {
    single.Deliver(p, 0.0);
  }
  bulk.DeliverBatch(&batch, 0.0);
  EXPECT_TRUE(batch.empty());
  single.FlushAllStaged();
  bulk.FlushAllStaged();
  EXPECT_EQ(single.rx_counters().packets, bulk.rx_counters().packets);
  EXPECT_EQ(single.pcie_counters().transactions.load(),
            bulk.pcie_counters().transactions.load());
  for (uint16_t q = 0; q < cfg.num_rx_queues; ++q) {
    EXPECT_EQ(single.rx_queue_depth(q), bulk.rx_queue_depth(q)) << "queue " << q;
  }
  Packet* out[64];
  for (NicPort* nic : {&single, &bulk}) {
    for (uint16_t q = 0; q < cfg.num_rx_queues; ++q) {
      size_t n;
      while ((n = nic->PollRx(q, out, 64)) > 0) {
        for (size_t i = 0; i < n; ++i) {
          pool_.Free(out[i]);
        }
      }
    }
  }
}

TEST(PcieCountersTest, DescriptorBatchMath) {
  PcieCounters c;
  c.AddDescriptorBatch(16);
  EXPECT_EQ(c.transactions, 1u);
  EXPECT_EQ(c.payload_bytes, 256u);
  c.AddDescriptorBatch(17);
  EXPECT_EQ(c.transactions, 3u);  // 16 + 1
}

TEST(PcieCountersTest, PacketDataSplitsAtMaxPayload) {
  PcieCounters c;
  c.AddPacketData(64);
  EXPECT_EQ(c.transactions, 1u);
  c.AddPacketData(1024);
  EXPECT_EQ(c.transactions, 1u + 4u);
  EXPECT_EQ(c.payload_bytes, 64u + 1024u);
}

}  // namespace
}  // namespace rb
