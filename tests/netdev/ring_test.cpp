#include "netdev/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rb {
namespace {

TEST(SpscRingTest, PushPopFifo) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRingTest, EmptyPopFails) {
  SpscRing<int> ring(4);
  int v;
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FullPushFails) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, WrapAroundPreservesOrder) {
  SpscRing<int> ring(4);
  int out;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.TryPush(round * 2));
    EXPECT_TRUE(ring.TryPush(round * 2 + 1));
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, round * 2);
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, round * 2 + 1);
  }
}

// Concurrency smoke test: one producer, one consumer, every item arrives
// exactly once, in order.
TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kItems = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems;) {
      if (ring.TryPush(i)) {
        i++;
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kItems) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      expected++;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Regression test for the size() underflow: a third thread samples size()
// while producer and consumer run. With the old load order (head before
// tail) the sampler could read a stale head and a fresh tail, computing
// head - tail as a huge unsigned value. Run under TSan/stress; the name
// matches the CI thread-test filter (*Ring*).
TEST(SpscRingTest, ConcurrentSizeNeverExceedsCapacity) {
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kItems = 50000;
  std::atomic<bool> done{false};
  std::atomic<bool> size_ok{true};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      size_t s = ring.size();
      if (s > ring.capacity()) {
        size_ok.store(false, std::memory_order_release);
      }
    }
  });
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems;) {
      if (ring.TryPush(i)) {
        i++;
      }
    }
  });
  uint64_t popped = 0;
  while (popped < kItems) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      popped++;
    }
  }
  producer.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_TRUE(size_ok.load());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(LockedRingTest, FifoAndCapacity) {
  LockedRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  int v;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(LockedRingTest, ManyThreadsNoLossNoDuplication) {
  LockedRing<uint64_t> ring(4096);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread;) {
        if (ring.TryPush(static_cast<uint64_t>(t) * kPerThread + i)) {
          i++;
        }
      }
    });
  }
  std::vector<uint64_t> seen;
  seen.reserve(kThreads * kPerThread);
  while (seen.size() < kThreads * kPerThread) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      seen.push_back(v);
    }
  }
  for (auto& p : producers) {
    p.join();
  }
  std::sort(seen.begin(), seen.end());
  for (uint64_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], i);
  }
}

}  // namespace
}  // namespace rb
