#include "netdev/driver.hpp"

#include <gtest/gtest.h>

#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec Frame64() {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 1;
  spec.flow.dst_ip = 2;
  spec.flow.protocol = 17;
  return spec;
}

TEST(DriverTest, PollsUpToKp) {
  PacketPool pool(256);
  NicConfig cfg;
  cfg.kn = 1;
  NicPort nic(cfg);
  Driver driver(&nic, 0, DriverConfig{8});
  for (int i = 0; i < 20; ++i) {
    nic.Deliver(AllocFrame(Frame64(), &pool), 0.0);
  }
  std::vector<Packet*> out;
  EXPECT_EQ(driver.Poll(&out), 8u);
  EXPECT_EQ(driver.Poll(&out), 8u);
  EXPECT_EQ(driver.Poll(&out), 4u);
  EXPECT_EQ(driver.Poll(&out), 0u);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(driver.packets(), 20u);
  EXPECT_EQ(driver.polls(), 4u);
  EXPECT_EQ(driver.empty_polls(), 1u);
  for (Packet* p : out) {
    pool.Free(p);
  }
}

TEST(DriverTest, MeanBurstReflectsBatching) {
  PacketPool pool(256);
  NicConfig cfg;
  cfg.kn = 1;
  NicPort nic(cfg);
  Driver driver(&nic, 0, DriverConfig{32});
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) {
      nic.Deliver(AllocFrame(Frame64(), &pool), 0.0);
    }
    std::vector<Packet*> out;
    driver.Poll(&out);
    for (Packet* p : out) {
      pool.Free(p);
    }
  }
  EXPECT_DOUBLE_EQ(driver.mean_burst(), 16.0);
}

TEST(DriverTest, SendGoesToTxQueue) {
  PacketPool pool(8);
  NicConfig cfg;
  cfg.num_tx_queues = 2;
  NicPort nic(cfg);
  Driver driver(&nic, 0, DriverConfig{});
  EXPECT_TRUE(driver.Send(1, AllocFrame(Frame64(), &pool)));
  EXPECT_EQ(nic.tx_counters().packets, 1u);
  Packet* out[2];
  size_t n = nic.DrainTx(out, 2);
  ASSERT_EQ(n, 1u);
  pool.Free(out[0]);
}

TEST(DriverDeathTest, BadQueueAborts) {
  NicConfig cfg;
  cfg.num_rx_queues = 2;
  NicPort nic(cfg);
  EXPECT_DEATH(Driver(&nic, 5, DriverConfig{}), "");
}

}  // namespace
}  // namespace rb
