#include "netdev/steering.hpp"

#include <gtest/gtest.h>

#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

Packet* Frame(PacketPool* pool, uint32_t src_ip, uint16_t src_port) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = src_ip;
  spec.flow.dst_ip = 0x0a000001;
  spec.flow.src_port = src_port;
  spec.flow.dst_port = 80;
  spec.flow.protocol = 17;
  return AllocFrame(spec, pool);
}

TEST(SteeringTest, SingleQueueAlwaysZero) {
  PacketPool pool(8);
  Steering st(SteeringMode::kSingleQueue, 4);
  for (int i = 0; i < 4; ++i) {
    Packet* p = Frame(&pool, 100 + i, 5000 + i);
    EXPECT_EQ(st.SelectRxQueue(p), 0);
    pool.Free(p);
  }
}

TEST(SteeringTest, RssIsFlowStable) {
  PacketPool pool(8);
  Steering st(SteeringMode::kRss, 8);
  Packet* a = Frame(&pool, 7, 7777);
  Packet* b = Frame(&pool, 7, 7777);
  EXPECT_EQ(st.SelectRxQueue(a), st.SelectRxQueue(b));
  pool.Free(a);
  pool.Free(b);
}

TEST(SteeringTest, RssStampsFlowHash) {
  PacketPool pool(2);
  Steering st(SteeringMode::kRss, 8);
  Packet* p = Frame(&pool, 9, 999);
  p->set_flow_hash(0);
  st.SelectRxQueue(p);
  EXPECT_NE(p->flow_hash(), 0u);
  pool.Free(p);
}

TEST(SteeringTest, MacTableRoutesByRule) {
  PacketPool pool(4);
  Steering st(SteeringMode::kMacTable, 4);
  st.AddMacRule(MacForNode(2), 2);
  Packet* p = Frame(&pool, 1, 1);
  EthernetView eth{p->data()};
  eth.set_dst(MacForNode(2));
  EXPECT_EQ(st.SelectRxQueue(p), 2);
  pool.Free(p);
}

TEST(SteeringTest, MacTableMissFallsBackToRss) {
  PacketPool pool(4);
  Steering st(SteeringMode::kMacTable, 4);
  st.AddMacRule(MacForNode(1), 1);
  Packet* p = Frame(&pool, 55, 555);
  // dst MAC from MaterializeFrame is not in the table.
  uint16_t q = st.SelectRxQueue(p);
  EXPECT_EQ(q, p->flow_hash() % 4);
  pool.Free(p);
}

TEST(SteeringDeathTest, RuleQueueOutOfRange) {
  Steering st(SteeringMode::kMacTable, 2);
  EXPECT_DEATH(st.AddMacRule(MacForNode(0), 5), "");
}

}  // namespace
}  // namespace rb
