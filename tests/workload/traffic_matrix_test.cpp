#include "workload/traffic_matrix.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(TrafficMatrixTest, UniformShares) {
  auto tm = TrafficMatrix::Uniform(4);
  for (uint16_t i = 0; i < 4; ++i) {
    double row = 0;
    for (uint16_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(tm.Share(i, j), 0.25);
      row += tm.Share(i, j);
    }
    EXPECT_DOUBLE_EQ(row, 1.0);
    EXPECT_TRUE(tm.InputActive(i));
  }
}

TEST(TrafficMatrixTest, SinglePair) {
  auto tm = TrafficMatrix::SinglePair(4, 1, 3);
  EXPECT_DOUBLE_EQ(tm.Share(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(tm.Share(1, 0), 0.0);
  EXPECT_TRUE(tm.InputActive(1));
  EXPECT_FALSE(tm.InputActive(0));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tm.SampleOutput(1, &rng), 3);
  }
}

TEST(TrafficMatrixTest, HotspotShares) {
  auto tm = TrafficMatrix::Hotspot(4, 2, 0.7);
  EXPECT_DOUBLE_EQ(tm.Share(0, 2), 0.7);
  EXPECT_NEAR(tm.Share(0, 0), 0.1, 1e-12);
  double row = 0;
  for (uint16_t j = 0; j < 4; ++j) {
    row += tm.Share(0, j);
  }
  EXPECT_NEAR(row, 1.0, 1e-12);
}

TEST(TrafficMatrixTest, SamplingMatchesShares) {
  auto tm = TrafficMatrix::Hotspot(4, 1, 0.5);
  Rng rng(7);
  std::vector<int> counts(4, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    counts[tm.SampleOutput(0, &rng)]++;
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6, 0.02);
}

TEST(TrafficMatrixTest, SingleNodeMatrix) {
  auto tm = TrafficMatrix::Uniform(1);
  EXPECT_DOUBLE_EQ(tm.Share(0, 0), 1.0);
  Rng rng(2);
  EXPECT_EQ(tm.SampleOutput(0, &rng), 0);
}

}  // namespace
}  // namespace rb
