#include "workload/abilene.hpp"

#include <gtest/gtest.h>

#include <map>

namespace rb {
namespace {

TEST(AbileneSizeTest, OnlyTheThreeModes) {
  AbileneSizeDistribution dist;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint32_t size = dist.NextSize(&rng);
    EXPECT_TRUE(size == 64 || size == 576 || size == 1500) << size;
  }
}

TEST(AbileneSizeTest, EmpiricalMeanMatchesDeclared) {
  AbileneSizeDistribution dist;
  Rng rng(2);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += dist.NextSize(&rng);
  }
  EXPECT_NEAR(sum / n, dist.MeanSize(), 5.0);
}

TEST(AbileneSizeTest, MeanNearCalibrationTarget) {
  // The model calibrates IPsec-at-Abilene against a ~730 B mean (DESIGN.md
  // §5); the distribution must stay in that neighbourhood.
  AbileneSizeDistribution dist;
  EXPECT_NEAR(dist.MeanSize(), 729.6, 1.0);
}

TEST(AbileneSizeTest, ModeWeightsRespected) {
  AbileneSizeDistribution dist;
  Rng rng(3);
  std::map<uint32_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[dist.NextSize(&rng)]++;
  }
  EXPECT_NEAR(counts[64] / static_cast<double>(n), AbileneSizeDistribution::kSmallWeight, 0.01);
  EXPECT_NEAR(counts[576] / static_cast<double>(n), AbileneSizeDistribution::kMediumWeight, 0.01);
  EXPECT_NEAR(counts[1500] / static_cast<double>(n), AbileneSizeDistribution::kLargeWeight, 0.01);
}

TEST(AbileneGenTest, FlowsAreStableAndSequenced) {
  AbileneConfig cfg;
  cfg.num_flows = 16;
  AbileneGenerator gen(cfg);
  std::map<uint64_t, FlowKey> keys;
  std::map<uint64_t, uint64_t> seqs;
  for (int i = 0; i < 2000; ++i) {
    FrameSpec spec = gen.Next();
    auto it = keys.find(spec.flow_id);
    if (it != keys.end()) {
      EXPECT_EQ(it->second, spec.flow) << "flow id must map to one 5-tuple";
      EXPECT_EQ(spec.flow_seq, seqs[spec.flow_id] + 1);
    }
    keys[spec.flow_id] = spec.flow;
    seqs[spec.flow_id] = spec.flow_seq;
  }
  EXPECT_EQ(keys.size(), 16u);
}

TEST(AbileneGenTest, MostlyTcp) {
  AbileneConfig cfg;
  cfg.num_flows = 1000;
  AbileneGenerator gen(cfg);
  int tcp = 0;
  for (int i = 0; i < 5000; ++i) {
    if (gen.Next().flow.protocol == 6) {
      tcp++;
    }
  }
  EXPECT_GT(tcp, 4000);
}

}  // namespace
}  // namespace rb
