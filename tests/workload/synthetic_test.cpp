#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "packet/headers.hpp"
#include "packet/pool.hpp"

namespace rb {
namespace {

TEST(MaterializeTest, ProducesValidFrame) {
  PacketPool pool(2);
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 0x01020304;
  spec.flow.dst_ip = 0x05060708;
  spec.flow.src_port = 1000;
  spec.flow.dst_port = 2000;
  spec.flow.protocol = 17;
  spec.flow_id = 5;
  spec.flow_seq = 6;
  Packet* p = AllocFrame(spec, &pool);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->length(), 64u);
  EthernetView eth{p->data()};
  EXPECT_EQ(eth.ether_type(), EthernetView::kTypeIpv4);
  Ipv4View ip{p->data() + EthernetView::kSize};
  EXPECT_TRUE(ip.ChecksumOk());
  EXPECT_EQ(ip.total_length(), 64 - EthernetView::kSize);
  EXPECT_EQ(ip.src(), spec.flow.src_ip);
  EXPECT_EQ(ip.dst(), spec.flow.dst_ip);
  UdpView udp{p->data() + EthernetView::kSize + Ipv4View::kMinSize};
  EXPECT_EQ(udp.src_port(), 1000);
  EXPECT_EQ(udp.dst_port(), 2000);
  EXPECT_EQ(p->flow_id(), 5u);
  EXPECT_EQ(p->flow_seq(), 6u);
  EXPECT_NE(p->flow_hash(), 0u);
  pool.Free(p);
}

TEST(MaterializeTest, PoolExhaustionReturnsNull) {
  PacketPool pool(1);
  FrameSpec spec;
  spec.size = 64;
  Packet* a = AllocFrame(spec, &pool);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(AllocFrame(spec, &pool), nullptr);
  pool.Free(a);
}

TEST(SyntheticTest, FixedSizeHonored) {
  SyntheticConfig cfg;
  cfg.packet_size = 128;
  SyntheticGenerator gen(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().size, 128u);
  }
}

TEST(SyntheticTest, FlowSequencesIncrease) {
  SyntheticConfig cfg;
  cfg.num_flows = 4;
  cfg.random_dst = false;
  SyntheticGenerator gen(cfg);
  std::map<uint64_t, uint64_t> last;
  for (int i = 0; i < 1000; ++i) {
    FrameSpec spec = gen.Next();
    auto it = last.find(spec.flow_id);
    if (it != last.end()) {
      EXPECT_EQ(spec.flow_seq, it->second + 1);
    } else {
      EXPECT_EQ(spec.flow_seq, 0u);
    }
    last[spec.flow_id] = spec.flow_seq;
  }
}

TEST(SyntheticTest, RandomDstVariesAddresses) {
  SyntheticConfig cfg;
  cfg.num_flows = 1;
  cfg.random_dst = true;
  SyntheticGenerator gen(cfg);
  std::set<uint32_t> dsts;
  for (int i = 0; i < 200; ++i) {
    dsts.insert(gen.Next().flow.dst_ip);
  }
  EXPECT_GT(dsts.size(), 150u);
}

TEST(SyntheticTest, DeterministicAcrossInstances) {
  SyntheticConfig cfg;
  cfg.seed = 44;
  SyntheticGenerator a(cfg);
  SyntheticGenerator b(cfg);
  for (int i = 0; i < 100; ++i) {
    FrameSpec sa = a.Next();
    FrameSpec sb = b.Next();
    EXPECT_EQ(sa.flow, sb.flow);
    EXPECT_EQ(sa.flow_id, sb.flow_id);
  }
}

TEST(AppNameTest, AllNamesDistinct) {
  EXPECT_STREQ(AppName(App::kMinimalForwarding), "forwarding");
  EXPECT_STREQ(AppName(App::kIpRouting), "routing");
  EXPECT_STREQ(AppName(App::kIpsec), "ipsec");
}

}  // namespace
}  // namespace rb
