#include "workload/injector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "lookup/dir24_8.hpp"
#include "packet/headers.hpp"
#include "telemetry/handler.hpp"

namespace rb {
namespace {

// The tentpole contract: a template-patched frame must be byte-identical
// to MaterializeFrame for the same spec — annotations included — so a
// bench switching to the injector changes what is measured, not what the
// router sees.
void ExpectFillMatchesMaterialize(BulkInjector* injector, const FrameSpec& spec,
                                  PacketPool* pool) {
  Packet* a = pool->Alloc();
  Packet* b = pool->Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  injector->FillFrame(spec, a);
  MaterializeFrame(spec, b);
  ASSERT_EQ(a->length(), b->length());
  EXPECT_EQ(std::memcmp(a->data(), b->data(), a->length()), 0)
      << "frame bytes diverge for size " << spec.size;
  EXPECT_EQ(a->flow_id(), b->flow_id());
  EXPECT_EQ(a->flow_seq(), b->flow_seq());
  EXPECT_EQ(a->flow_hash(), b->flow_hash());
  pool->Free(a);
  pool->Free(b);
}

TEST(InjectorTest, FillFrameMatchesMaterializeSynthetic64) {
  PacketPool pool(8);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  cfg.synthetic.random_dst = true;
  BulkInjector injector(cfg, &pool);
  for (int i = 0; i < 2000; ++i) {
    ExpectFillMatchesMaterialize(&injector, injector.NextSpec(), &pool);
  }
}

TEST(InjectorTest, FillFrameMatchesMaterializeRoutedDsts) {
  // The rtr workload shape: fixed 64 B frames, destinations from the
  // installed prefix set.
  PacketPool pool(8);
  TableGenConfig tg;
  tg.num_routes = 4096;
  PrefixSampler sampler(tg);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  cfg.dst_sampler = &sampler;
  BulkInjector injector(cfg, &pool);
  for (int i = 0; i < 2000; ++i) {
    ExpectFillMatchesMaterialize(&injector, injector.NextSpec(), &pool);
  }
}

TEST(InjectorTest, FillFrameMatchesMaterializeAbilene) {
  // Trimodal sizes (64/576/1500) and ~90% TCP flows: exercises multiple
  // templates and the protocol-byte patch.
  PacketPool pool(8);
  InjectorConfig cfg;
  cfg.abilene = true;
  BulkInjector injector(cfg, &pool);
  std::set<uint32_t> sizes;
  for (int i = 0; i < 3000; ++i) {
    FrameSpec spec = injector.NextSpec();
    sizes.insert(spec.size);
    ExpectFillMatchesMaterialize(&injector, spec, &pool);
  }
  EXPECT_EQ(sizes.size(), 3u) << "Abilene mix should exercise all three templates";
}

TEST(InjectorTest, FillFrameMatchesMaterializeAbileneRouted) {
  // The fourth workload shape: Abilene mix + routed destinations.
  PacketPool pool(8);
  TableGenConfig tg;
  tg.num_routes = 4096;
  PrefixSampler sampler(tg);
  InjectorConfig cfg;
  cfg.abilene = true;
  cfg.dst_sampler = &sampler;
  BulkInjector injector(cfg, &pool);
  for (int i = 0; i < 3000; ++i) {
    ExpectFillMatchesMaterialize(&injector, injector.NextSpec(), &pool);
  }
}

TEST(InjectorTest, FilledFramesHaveValidChecksums) {
  // The incremental patch must leave a checksum any verifier accepts.
  PacketPool pool(4);
  InjectorConfig cfg;
  cfg.abilene = true;
  BulkInjector injector(cfg, &pool);
  Packet* p = pool.Alloc();
  for (int i = 0; i < 1000; ++i) {
    injector.FillFrame(injector.NextSpec(), p);
    Ipv4View ip{p->data() + EthernetView::kSize};
    EXPECT_TRUE(ip.ChecksumOk());
  }
  pool.Free(p);
}

TEST(InjectorTest, SampledDstsAreRoutable) {
  PacketPool pool(4);
  TableGenConfig tg;
  tg.num_routes = 2048;
  Dir24_8 table;
  table.InsertAll(GenerateRoutingTable(tg));
  PrefixSampler sampler(tg);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  cfg.dst_sampler = &sampler;
  BulkInjector injector(cfg, &pool);
  Packet* p = pool.Alloc();
  for (int i = 0; i < 2000; ++i) {
    injector.FillFrame(injector.NextSpec(), p);
    Ipv4View ip{p->data() + EthernetView::kSize};
    EXPECT_NE(table.Lookup(ip.dst()), LpmTable::kNoRoute);
  }
  pool.Free(p);
}

TEST(InjectorTest, NextBurstFillsBatchAndCounts) {
  PacketPool pool(512);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  BulkInjector injector(cfg, &pool);
  PacketBatch batch;
  EXPECT_EQ(injector.NextBurst(256, &batch), 256u);
  EXPECT_EQ(batch.size(), 256u);
  EXPECT_EQ(injector.injected_packets(), 256u);
  EXPECT_EQ(injector.injected_bytes(), 256u * 64u);
  EXPECT_EQ(injector.pool_exhausted(), 0u);
  for (Packet* p : batch) {
    EXPECT_EQ(p->length(), 64u);
    EXPECT_EQ(EthernetView{p->data()}.ether_type(), EthernetView::kTypeIpv4);
  }
  batch.ReleaseAll();
}

TEST(InjectorTest, PoolExhaustionIsAnExplicitDropBucket) {
  PacketPool pool(100);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  BulkInjector injector(cfg, &pool);
  PacketBatch batch;
  EXPECT_EQ(injector.NextBurst(256, &batch), 100u);
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_EQ(injector.pool_exhausted(), 156u);
  EXPECT_EQ(injector.injected_packets(), 100u);
  // The pool's own accounting agrees: one failure per missing packet.
  EXPECT_EQ(pool.alloc_failures(), 156u);
  batch.ReleaseAll();
}

TEST(InjectorTest, BurstAppendsAfterExistingContents) {
  PacketPool pool(64);
  InjectorConfig cfg;
  BulkInjector injector(cfg, &pool);
  PacketBatch batch;
  ASSERT_EQ(injector.NextBurst(8, &batch), 8u);
  ASSERT_EQ(injector.NextBurst(8, &batch), 8u);
  EXPECT_EQ(batch.size(), 16u);
  batch.ReleaseAll();
}

TEST(InjectorTest, HandlersExportCounters) {
  PacketPool pool(16);
  InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  BulkInjector injector(cfg, &pool);
  telemetry::HandlerRegistry handlers;
  injector.AddHandlers(&handlers, "inj");
  PacketBatch batch;
  injector.NextBurst(32, &batch);  // 16 carved, 16 short
  EXPECT_EQ(handlers.Read("inj.packets").text, "16");
  EXPECT_EQ(handlers.Read("inj.bytes").text, std::to_string(16 * 64));
  EXPECT_EQ(handlers.Read("inj.pool_exhausted").text, "16");
  batch.ReleaseAll();
}

TEST(InjectorTest, PlannedBurstMatchesUnplannedStream) {
  // A precomputed plan must reproduce the unplanned frame stream exactly:
  // records are drawn through the same generator, and the resolved
  // checksum/hash fields match what FillFrame computes per packet.
  InjectorConfig cfg;
  cfg.abilene = true;  // trimodal sizes + protocol mix: hardest case
  PacketPool pool_a(512);
  PacketPool pool_b(512);
  BulkInjector planned(cfg, &pool_a);
  planned.PrecomputePlan(200);
  BulkInjector unplanned(cfg, &pool_b);
  PacketBatch a;
  PacketBatch b;
  ASSERT_EQ(planned.NextBurst(200, &a), 200u);
  ASSERT_EQ(unplanned.NextBurst(200, &b), 200u);
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_EQ(a[i]->length(), b[i]->length()) << "frame " << i;
    EXPECT_EQ(std::memcmp(a[i]->data(), b[i]->data(), a[i]->length()), 0)
        << "frame " << i;
    EXPECT_EQ(a[i]->flow_id(), b[i]->flow_id());
    EXPECT_EQ(a[i]->flow_seq(), b[i]->flow_seq());
    EXPECT_EQ(a[i]->flow_hash(), b[i]->flow_hash());
  }
  // The plan is cyclic: a second planned burst wraps and keeps serving.
  a.ReleaseAll();
  ASSERT_EQ(planned.NextBurst(64, &a), 64u);
  EXPECT_EQ(std::memcmp(a[0]->data(), b[0]->data(), a[0]->length()), 0);
  a.ReleaseAll();
  b.ReleaseAll();
}

TEST(InjectorTest, CleanRecycleStillMatchesMaterialize) {
  // With recycled_payload_is_clean, a refill of a recycled buffer copies
  // only the 128 B head — the frames must still be byte-identical to
  // MaterializeFrame, because the skipped payload bytes are zero from the
  // previous fill. Trimodal Abilene sizes force refills both smaller and
  // larger than the previous occupant of each slot.
  PacketPool pool(64);
  InjectorConfig cfg;
  cfg.abilene = true;
  cfg.recycled_payload_is_clean = true;
  BulkInjector clean(cfg, &pool);
  PacketPool ref_pool(4);
  for (int cycle = 0; cycle < 20; ++cycle) {
    PacketBatch batch;
    ASSERT_EQ(clean.NextBurst(64, &batch), 64u);
    for (Packet* p : batch) {
      FrameSpec spec;
      // Recover the spec from the frame so we can re-materialize it.
      Ipv4View ip{p->data() + EthernetView::kSize};
      spec.size = p->length();
      spec.flow.src_ip = ip.src();
      spec.flow.dst_ip = ip.dst();
      spec.flow.protocol = ip.protocol();
      const uint8_t* udp = p->data() + EthernetView::kSize + Ipv4View::kMinSize;
      spec.flow.src_port = static_cast<uint16_t>((udp[0] << 8) | udp[1]);
      spec.flow.dst_port = static_cast<uint16_t>((udp[2] << 8) | udp[3]);
      spec.flow_id = p->flow_id();
      spec.flow_seq = p->flow_seq();
      Packet* ref = ref_pool.Alloc();
      ASSERT_NE(ref, nullptr);
      MaterializeFrame(spec, ref);
      ASSERT_EQ(p->length(), ref->length());
      EXPECT_EQ(std::memcmp(p->data(), ref->data(), p->length()), 0)
          << "cycle " << cycle << " size " << p->length();
      ref_pool.Free(ref);
    }
    batch.ReleaseAll();
  }
}

TEST(InjectorTest, MeanSizeTracksWorkload) {
  PacketPool pool(4);
  InjectorConfig syn_cfg;
  syn_cfg.synthetic.packet_size = 128;
  EXPECT_DOUBLE_EQ(BulkInjector(syn_cfg, &pool).mean_size(), 128.0);
  InjectorConfig abi_cfg;
  abi_cfg.abilene = true;
  EXPECT_NEAR(BulkInjector(abi_cfg, &pool).mean_size(), 729.6, 5.0);
}

}  // namespace
}  // namespace rb
