#include "workload/flows.hpp"

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FlowTrafficGenerator MakeGen(double flow_rate = 1000, double mean_pkts = 10,
                             double in_flow_pps = 1000, uint64_t seed = 1) {
  FlowGenConfig cfg;
  cfg.flow_arrival_rate = flow_rate;
  cfg.mean_flow_packets = mean_pkts;
  cfg.in_flow_pps = in_flow_pps;
  cfg.seed = seed;
  return FlowTrafficGenerator(cfg, std::make_unique<FixedSizeDistribution>(64));
}

TEST(FlowGenTest, TimestampsAreMonotone) {
  auto gen = MakeGen();
  SimTime last = -1;
  for (int i = 0; i < 10000; ++i) {
    auto item = gen.Next();
    EXPECT_GE(item.time, last);
    last = item.time;
  }
}

TEST(FlowGenTest, PerFlowSequencesAreContiguous) {
  auto gen = MakeGen();
  std::map<uint64_t, uint64_t> next_seq;
  for (int i = 0; i < 20000; ++i) {
    auto item = gen.Next();
    uint64_t expected = next_seq.count(item.spec.flow_id) ? next_seq[item.spec.flow_id] : 0;
    ASSERT_EQ(item.spec.flow_seq, expected);
    next_seq[item.spec.flow_id] = expected + 1;
  }
}

TEST(FlowGenTest, FlowKeysStablePerFlow) {
  auto gen = MakeGen();
  std::map<uint64_t, FlowKey> keys;
  for (int i = 0; i < 10000; ++i) {
    auto item = gen.Next();
    auto it = keys.find(item.spec.flow_id);
    if (it != keys.end()) {
      ASSERT_EQ(it->second, item.spec.flow);
    } else {
      keys[item.spec.flow_id] = item.spec.flow;
    }
  }
  EXPECT_GT(keys.size(), 100u);
}

TEST(FlowGenTest, OfferedRateApproximatesTarget) {
  // Configure for 100 Mbps at 64 B frames and check the empirical rate.
  FlowGenConfig cfg = FlowTrafficGenerator::ConfigForRate(100e6, 64, 20, 2000, 3);
  FlowTrafficGenerator gen(cfg, std::make_unique<FixedSizeDistribution>(64));
  EXPECT_NEAR(gen.OfferedBps(), 100e6, 1e3);
  uint64_t bytes = 0;
  SimTime end = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    auto item = gen.Next();
    bytes += item.spec.size;
    end = item.time;
  }
  double measured = bytes * 8.0 / end;
  EXPECT_NEAR(measured, 100e6, 25e6);  // heavy-tailed: generous band
}

TEST(FlowGenTest, HeavyTailProducesElephants) {
  auto gen = MakeGen(500, 20, 1000, 9);
  std::map<uint64_t, int> sizes;
  for (int i = 0; i < 100000; ++i) {
    sizes[gen.Next().spec.flow_id]++;
  }
  int max_size = 0;
  for (auto& [id, count] : sizes) {
    max_size = std::max(max_size, count);
  }
  // Pareto alpha=1.5, mean 20: the largest of thousands of flows should
  // far exceed the mean.
  EXPECT_GT(max_size, 200);
}

TEST(FlowGenTest, InFlowGapsMatchConfiguredRate) {
  auto gen = MakeGen(10, 1000, 500, 5);
  std::map<uint64_t, SimTime> last_time;
  MeanVar gaps;
  for (int i = 0; i < 50000; ++i) {
    auto item = gen.Next();
    auto it = last_time.find(item.spec.flow_id);
    if (it != last_time.end()) {
      gaps.Add(item.time - it->second);
    }
    last_time[item.spec.flow_id] = item.time;
  }
  EXPECT_NEAR(gaps.mean(), 1.0 / 500, 0.0005);
}

TEST(FlowGenTest, AbileneSizesWork) {
  FlowGenConfig cfg;
  cfg.seed = 8;
  FlowTrafficGenerator gen(cfg, std::make_unique<AbileneSizeDistribution>());
  for (int i = 0; i < 100; ++i) {
    uint32_t s = gen.Next().spec.size;
    EXPECT_TRUE(s == 64 || s == 576 || s == 1500);
  }
}

// --- FlowChurnGenerator: the stateful plane's million-flow workload ---

TEST(FlowChurnTest, RampsToTargetThenHoldsUnderChurn) {
  FlowChurnConfig cfg;
  cfg.target_flows = 5000;
  cfg.churn_per_packet = 0.01;
  cfg.seed = 3;
  FlowChurnGenerator gen(cfg);
  for (size_t i = 0; i < cfg.target_flows; ++i) {
    gen.Next();
  }
  EXPECT_EQ(gen.active_flows(), cfg.target_flows);
  EXPECT_EQ(gen.births(), cfg.target_flows);
  EXPECT_EQ(gen.deaths(), 0u);
  for (int i = 0; i < 20000; ++i) {
    gen.Next();
  }
  EXPECT_EQ(gen.active_flows(), cfg.target_flows) << "churn holds the population constant";
  EXPECT_GT(gen.deaths(), 0u);
  EXPECT_EQ(gen.births(), cfg.target_flows + gen.deaths()) << "every death births a replacement";
  // ~1% of 20000 packets churn; allow generous slack.
  EXPECT_NEAR(static_cast<double>(gen.deaths()), 200.0, 100.0);
}

TEST(FlowChurnTest, DeterministicUnderSeed) {
  FlowChurnConfig cfg;
  cfg.target_flows = 2000;
  cfg.churn_per_packet = 0.01;
  cfg.seed = 42;
  FlowChurnGenerator a(cfg);
  FlowChurnGenerator b(cfg);
  for (int i = 0; i < 30000; ++i) {
    const auto ia = a.Next();
    const auto ib = b.Next();
    ASSERT_EQ(ia.flow_id, ib.flow_id) << "packet " << i;
    ASSERT_TRUE(ia.key == ib.key) << "packet " << i;
  }
  cfg.seed = 43;
  FlowChurnGenerator c(cfg);
  bool diverged = false;
  FlowChurnGenerator a2(FlowChurnConfig{cfg.target_flows, cfg.zipf_s, cfg.churn_per_packet, 42});
  for (int i = 0; i < 30000 && !diverged; ++i) {
    diverged = a2.Next().flow_id != c.Next().flow_id;
  }
  EXPECT_TRUE(diverged) << "different seeds must produce different streams";
}

TEST(FlowChurnTest, EmissionIsZipfSkewed) {
  FlowChurnConfig cfg;
  cfg.target_flows = 10000;
  cfg.zipf_s = 1.1;
  cfg.churn_per_packet = 0;  // isolate the emission distribution
  cfg.seed = 9;
  FlowChurnGenerator gen(cfg);
  for (size_t i = 0; i < cfg.target_flows; ++i) {
    gen.Next();  // ramp
  }
  std::map<uint64_t, uint64_t> counts;
  const int kPackets = 200000;
  for (int i = 0; i < kPackets; ++i) {
    counts[gen.Next().flow_id]++;
  }
  // Heavy tail: the hottest flow dwarfs the median, and a small head of
  // flows carries a large share of packets.
  uint64_t hottest = 0;
  uint64_t head_packets = 0;
  std::vector<uint64_t> sorted;
  sorted.reserve(counts.size());
  for (const auto& [id, n] : counts) {
    sorted.push_back(n);
    hottest = std::max(hottest, n);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  for (size_t i = 0; i < sorted.size() / 100; ++i) {
    head_packets += sorted[i];  // top 1% of flows
  }
  EXPECT_GT(hottest, static_cast<uint64_t>(kPackets) / 500)
      << "an elephant flow must exist";
  EXPECT_GT(static_cast<double>(head_packets) / kPackets, 0.25)
      << "top 1% of flows should carry >25% of packets under s=1.1";
}

TEST(FlowChurnTest, KeysAreDistinctAndDeterministic) {
  // KeyFor is a pure function: no two of the first 100k flow ids
  // collide, and the same id always yields the same key.
  std::set<std::tuple<uint32_t, uint32_t, uint16_t, uint16_t>> seen;
  for (uint64_t id = 0; id < 100000; ++id) {
    const FlowKey k = FlowChurnGenerator::KeyFor(id);
    EXPECT_TRUE(seen.emplace(k.src_ip, k.dst_ip, k.src_port, k.dst_port).second)
        << "key collision at flow " << id;
  }
  const FlowKey again = FlowChurnGenerator::KeyFor(77);
  EXPECT_TRUE(again == FlowChurnGenerator::KeyFor(77));
}

}  // namespace
}  // namespace rb
