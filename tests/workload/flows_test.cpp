#include "workload/flows.hpp"

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <map>

#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FlowTrafficGenerator MakeGen(double flow_rate = 1000, double mean_pkts = 10,
                             double in_flow_pps = 1000, uint64_t seed = 1) {
  FlowGenConfig cfg;
  cfg.flow_arrival_rate = flow_rate;
  cfg.mean_flow_packets = mean_pkts;
  cfg.in_flow_pps = in_flow_pps;
  cfg.seed = seed;
  return FlowTrafficGenerator(cfg, std::make_unique<FixedSizeDistribution>(64));
}

TEST(FlowGenTest, TimestampsAreMonotone) {
  auto gen = MakeGen();
  SimTime last = -1;
  for (int i = 0; i < 10000; ++i) {
    auto item = gen.Next();
    EXPECT_GE(item.time, last);
    last = item.time;
  }
}

TEST(FlowGenTest, PerFlowSequencesAreContiguous) {
  auto gen = MakeGen();
  std::map<uint64_t, uint64_t> next_seq;
  for (int i = 0; i < 20000; ++i) {
    auto item = gen.Next();
    uint64_t expected = next_seq.count(item.spec.flow_id) ? next_seq[item.spec.flow_id] : 0;
    ASSERT_EQ(item.spec.flow_seq, expected);
    next_seq[item.spec.flow_id] = expected + 1;
  }
}

TEST(FlowGenTest, FlowKeysStablePerFlow) {
  auto gen = MakeGen();
  std::map<uint64_t, FlowKey> keys;
  for (int i = 0; i < 10000; ++i) {
    auto item = gen.Next();
    auto it = keys.find(item.spec.flow_id);
    if (it != keys.end()) {
      ASSERT_EQ(it->second, item.spec.flow);
    } else {
      keys[item.spec.flow_id] = item.spec.flow;
    }
  }
  EXPECT_GT(keys.size(), 100u);
}

TEST(FlowGenTest, OfferedRateApproximatesTarget) {
  // Configure for 100 Mbps at 64 B frames and check the empirical rate.
  FlowGenConfig cfg = FlowTrafficGenerator::ConfigForRate(100e6, 64, 20, 2000, 3);
  FlowTrafficGenerator gen(cfg, std::make_unique<FixedSizeDistribution>(64));
  EXPECT_NEAR(gen.OfferedBps(), 100e6, 1e3);
  uint64_t bytes = 0;
  SimTime end = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    auto item = gen.Next();
    bytes += item.spec.size;
    end = item.time;
  }
  double measured = bytes * 8.0 / end;
  EXPECT_NEAR(measured, 100e6, 25e6);  // heavy-tailed: generous band
}

TEST(FlowGenTest, HeavyTailProducesElephants) {
  auto gen = MakeGen(500, 20, 1000, 9);
  std::map<uint64_t, int> sizes;
  for (int i = 0; i < 100000; ++i) {
    sizes[gen.Next().spec.flow_id]++;
  }
  int max_size = 0;
  for (auto& [id, count] : sizes) {
    max_size = std::max(max_size, count);
  }
  // Pareto alpha=1.5, mean 20: the largest of thousands of flows should
  // far exceed the mean.
  EXPECT_GT(max_size, 200);
}

TEST(FlowGenTest, InFlowGapsMatchConfiguredRate) {
  auto gen = MakeGen(10, 1000, 500, 5);
  std::map<uint64_t, SimTime> last_time;
  MeanVar gaps;
  for (int i = 0; i < 50000; ++i) {
    auto item = gen.Next();
    auto it = last_time.find(item.spec.flow_id);
    if (it != last_time.end()) {
      gaps.Add(item.time - it->second);
    }
    last_time[item.spec.flow_id] = item.time;
  }
  EXPECT_NEAR(gaps.mean(), 1.0 / 500, 0.0005);
}

TEST(FlowGenTest, AbileneSizesWork) {
  FlowGenConfig cfg;
  cfg.seed = 8;
  FlowTrafficGenerator gen(cfg, std::make_unique<AbileneSizeDistribution>());
  for (int i = 0; i < 100; ++i) {
    uint32_t s = gen.Next().spec.size;
    EXPECT_TRUE(s == 64 || s == 576 || s == 1500);
  }
}

}  // namespace
}  // namespace rb
