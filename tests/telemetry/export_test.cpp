// End-to-end export test: run a real SingleServerRouter with telemetry
// bound, dump the JSON snapshot to disk, parse it back, and check every
// section against independently known ground truth (NIC counters, element
// counters, queue occupancy, sampled per-hop latency histogram).
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/single_server_router.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

using telemetry::ExportBundle;
using telemetry::JsonValue;
using telemetry::MetricRegistry;
using telemetry::ParseJson;
using telemetry::PathTracer;
using telemetry::TracerConfig;

FrameSpec Frame(uint32_t i) {
  FrameSpec spec;
  spec.size = 64 + (i % 4) * 64;
  spec.flow.src_ip = 0x0a000001u + i;
  spec.flow.dst_ip = 0xc0a80001u + (i % 7);
  spec.flow.src_port = static_cast<uint16_t>(1000 + i);
  spec.flow.dst_port = 80;
  spec.flow.protocol = 17;
  return spec;
}

TEST(ExportTest, RouterJsonSnapshotMatchesGroundTruth) {
  SingleServerConfig config;
  config.num_ports = 2;
  config.queues_per_port = 2;
  config.cores = 2;
  config.app = App::kMinimalForwarding;
  config.pool_packets = 4096;

  MetricRegistry registry;
  TracerConfig tc;
  tc.sample_every = 8;
  tc.max_traces = 512;
  PathTracer tracer(tc);

  SingleServerRouter router(config);
  router.EnableTelemetry(&registry, &tracer);
  router.Initialize();

  constexpr uint32_t kPackets = 256;
  uint32_t delivered = 0;
  for (uint32_t i = 0; i < kPackets; ++i) {
    Packet* p = AllocFrame(Frame(i), &router.pool());
    ASSERT_NE(p, nullptr);
    router.DeliverFrame(static_cast<int>(i % 2), p, 0.0);
    delivered++;
  }
  router.RunUntilIdle();

  Packet* burst[64];
  uint64_t forwarded = 0;
  for (int port = 0; port < config.num_ports; ++port) {
    size_t n;
    while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        router.pool().Free(burst[i]);
      }
      forwarded += n;
    }
  }
  ASSERT_EQ(forwarded, delivered);

  ExportBundle bundle;
  bundle.registry = &registry;
  bundle.tracer = &tracer;
  std::string path = testing::TempDir() + "/rb_export_test.json";
  ASSERT_TRUE(telemetry::WriteJson(path, bundle));

  // Read the file back and parse it.
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  fclose(f);
  remove(path.c_str());

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &doc, &error)) << error;

  // --- NIC counters vs the ports' own counters ---
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  auto counter = [&](const std::string& name) -> uint64_t {
    const JsonValue* v = counters->Find(name);
    return v != nullptr ? static_cast<uint64_t>(v->NumberOr(0)) : 0;
  };
  uint64_t rx_total = counter("nic/port0/rx_packets") + counter("nic/port1/rx_packets");
  uint64_t tx_total = counter("nic/port0/tx_packets") + counter("nic/port1/tx_packets");
  EXPECT_EQ(rx_total, delivered);
  EXPECT_EQ(tx_total, forwarded);
  EXPECT_EQ(rx_total, router.total_rx_packets());

  // --- per-element packet counters: every FromDevice output summed covers
  // every delivered packet, ToDevice counters cover every forwarded one ---
  uint64_t from_out = 0;
  uint64_t to_out = 0;
  uint64_t drops = 0;
  for (const auto& [name, value] : counters->obj) {
    if (name.rfind("elem/FromDevice", 0) == 0 &&
        name.find("/packets_out") != std::string::npos) {
      from_out += static_cast<uint64_t>(value.NumberOr(0));
    }
    if (name.rfind("elem/ToDevice", 0) == 0 && name.find("/packets_out") != std::string::npos) {
      to_out += static_cast<uint64_t>(value.NumberOr(0));
    }
    if (name.find("/drops") != std::string::npos) {
      drops += static_cast<uint64_t>(value.NumberOr(0));
    }
  }
  EXPECT_EQ(from_out, delivered);
  EXPECT_EQ(to_out, forwarded);
  EXPECT_EQ(drops, 0u);

  // --- queue occupancy gauges exist and saw at least one packet ---
  const JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  double max_occupancy = 0;
  size_t occupancy_gauges = 0;
  for (const auto& [name, value] : gauges->obj) {
    if (name.find("occupancy_hw") != std::string::npos) {
      occupancy_gauges++;
      max_occupancy = std::max(max_occupancy, value.NumberOr(0));
    }
  }
  EXPECT_GT(occupancy_gauges, 0u);
  EXPECT_GE(max_occupancy, 1.0);

  // --- sampled per-hop latency histogram ---
  const JsonValue* traces = doc.Find("traces");
  ASSERT_NE(traces, nullptr);
  EXPECT_DOUBLE_EQ(traces->Find("started")->NumberOr(0), static_cast<double>(delivered));
  double sampled = traces->Find("sampled")->NumberOr(0);
  EXPECT_DOUBLE_EQ(sampled, static_cast<double>(delivered / tc.sample_every));
  const JsonValue* hop_hist = traces->Find("hop_latency");
  ASSERT_NE(hop_hist, nullptr);
  // Each sampled minimal-forwarding trace has 5 hops (FromDevice ->
  // CheckIPHeader -> Queue -> Queue/deq -> ToDevice; the dequeue hop
  // carries the measured queueing wait) = 4 latency deltas.
  EXPECT_DOUBLE_EQ(hop_hist->Find("count")->NumberOr(0), sampled * 4);
  const JsonValue* hops = traces->Find("hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_FALSE(hops->arr.empty());
  const JsonValue* packets = traces->Find("packets");
  ASSERT_NE(packets, nullptr);
  ASSERT_FALSE(packets->arr.empty());
  EXPECT_TRUE(packets->arr[0].Find("complete")->b);
}

TEST(ExportTest, RegistryCsvListsCountersAndGauges) {
  MetricRegistry registry;
  registry.GetCounter("a/packets")->Add(7);
  registry.GetGauge("b/depth")->Set(1.5);
  std::string csv = telemetry::RegistryCsv(registry.Snapshot());
  EXPECT_NE(csv.find("counter,a/packets,7"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b/depth,1.5"), std::string::npos);
}

TEST(ExportTest, HistogramJsonEmitsCumulativeBuckets) {
  MetricRegistry registry;
  telemetry::HistogramOptions opts;
  opts.lo = 0;
  opts.hi = 10;
  opts.buckets = 5;  // edges at 2,4,6,8,10
  auto* h = registry.GetHistogram("lat", opts);
  h->Observe(-1);  // underflow
  h->Observe(1);
  h->Observe(3);
  h->Observe(3);
  h->Observe(9);
  h->Observe(99);  // overflow

  ExportBundle bundle;
  bundle.registry = &registry;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(telemetry::ToJson(bundle), &doc));
  const JsonValue* hist = doc.Find("histograms")->Find("lat");
  ASSERT_NE(hist, nullptr);
  const JsonValue& raw = *hist->Find("counts");
  const JsonValue& cum = *hist->Find("cum_counts");
  ASSERT_EQ(raw.arr.size(), 5u);
  ASSERT_EQ(cum.arr.size(), 5u);
  // Raw per-bucket: [1, 2, 0, 0, 1]; cumulative folds underflow in and
  // is monotone: [2, 4, 4, 4, 5] (Prometheus `_bucket` semantics).
  const double want_raw[] = {1, 2, 0, 0, 1};
  const double want_cum[] = {2, 4, 4, 4, 5};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(raw.arr[i].num, want_raw[i]) << "bucket " << i;
    EXPECT_EQ(cum.arr[i].num, want_cum[i]) << "bucket " << i;
  }
  // +Inf (cum.back() + overflow) must equal the total observation count.
  EXPECT_EQ(cum.arr.back().num + hist->Find("overflow")->num, hist->Find("count")->num);
}

TEST(ExportTest, PrometheusTextExposition) {
  MetricRegistry registry;
  registry.GetCounter("nic/rx_packets")->Add(12);
  registry.GetGauge("queue/depth")->Set(7.5);
  telemetry::HistogramOptions opts;
  opts.lo = 0;
  opts.hi = 4;
  opts.buckets = 2;
  auto* h = registry.GetHistogram("hop_us", opts);
  h->Observe(1);
  h->Observe(3);
  h->Observe(100);  // overflow: appears only in the +Inf bucket

  std::string text = telemetry::PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE rb_counter counter"), std::string::npos);
  EXPECT_NE(text.find("rb_counter{name=\"nic/rx_packets\"} 12"), std::string::npos);
  EXPECT_NE(text.find("rb_gauge{name=\"queue/depth\"} 7.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rb_histogram histogram"), std::string::npos);
  EXPECT_NE(text.find("rb_histogram_bucket{name=\"hop_us\",le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("rb_histogram_bucket{name=\"hop_us\",le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find("rb_histogram_bucket{name=\"hop_us\",le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rb_histogram_count{name=\"hop_us\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rb_histogram_sum{name=\"hop_us\"} 104"), std::string::npos);
}

TEST(ExportTest, EmptyBundleYieldsEmptySections) {
  MetricRegistry registry;
  ExportBundle bundle;
  bundle.registry = &registry;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(telemetry::ToJson(bundle), &doc));
  ASSERT_TRUE(doc.Find("counters")->is_object());
  EXPECT_TRUE(doc.Find("counters")->obj.empty());
  EXPECT_EQ(doc.Find("traces"), nullptr);  // no tracer supplied
}

}  // namespace
}  // namespace rb
