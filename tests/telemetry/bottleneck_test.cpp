#include "telemetry/bottleneck.hpp"

#include <gtest/gtest.h>

#include "model/throughput.hpp"

namespace rb {
namespace {

namespace tele = rb::telemetry;

// 64 B minimal forwarding on the paper's Nehalem is CPU-bound (Fig. 8/9):
// the measured cycles/packet cap the rate before any bus or the NICs do.
TEST(BottleneckTest, SmallPacketForwardingIsCpuBound) {
  ThroughputConfig model;
  model.app = App::kMinimalForwarding;
  model.frame_bytes = 64;

  tele::MeasuredWorkload w;
  w.name = "fwd_64";
  w.frame_bytes = 64;
  w.cycles_per_packet = 1181;  // the model's own per-packet cycles
  w.per_packet = LoadsFor(model);

  tele::BottleneckVerdict v = tele::AnalyzeBottleneck(w, model.spec);
  EXPECT_EQ(v.bottleneck, tele::Resource::kCpu);
  EXPECT_EQ(v.verdict, "CPU");
  // 8 cores x 2.8 GHz / 1181 cyc/pkt ~= 19 Mpps.
  EXPECT_NEAR(v.max_pps / 1e6, 18.97, 0.5);
  // Limits are sorted ascending: the binding one first.
  ASSERT_FALSE(v.limits.empty());
  EXPECT_EQ(v.limits.front().resource, tele::Resource::kCpu);
  for (size_t i = 1; i < v.limits.size(); ++i) {
    EXPECT_LE(v.limits[i - 1].max_pps, v.limits[i].max_pps);
  }
  // At the bottleneck rate the binding resource is fully used.
  EXPECT_NEAR(v.limits.front().UtilizationAt(v.max_pps), 1.0, 1e-9);
  // Summary names the class and the resource.
  EXPECT_NE(v.Summary().find("CPU-bound"), std::string::npos);
  EXPECT_NE(v.Summary().find("cpu"), std::string::npos);
}

// Large frames with few cycles/packet hit the per-NIC PCIe input ceiling
// (the paper's 24.6 Gbps input-limited regime).
TEST(BottleneckTest, LargeFrameForwardingIsNicInputBound) {
  ThroughputConfig model;
  model.app = App::kMinimalForwarding;
  model.frame_bytes = 1024;

  tele::MeasuredWorkload w;
  w.name = "fwd_1024";
  w.frame_bytes = 1024;
  w.cycles_per_packet = 1200;  // cheap per packet; bytes dominate
  w.per_packet = LoadsFor(model);

  tele::BottleneckVerdict v = tele::AnalyzeBottleneck(w, model.spec);
  EXPECT_EQ(v.bottleneck, tele::Resource::kNicInput);
  EXPECT_EQ(v.verdict, "NIC/IO");
  // 24.6 Gbps input cap / (1024 * 8) bits per frame.
  EXPECT_NEAR(v.max_payload_gbps, 24.6, 0.3);
  const tele::ResourceLimit* nic = v.Limit(tele::Resource::kNicInput);
  ASSERT_NE(nic, nullptr);
  EXPECT_DOUBLE_EQ(nic->per_packet, 1024.0);
}

// A crafted workload with huge per-packet memory traffic on a spec with a
// weak memory system is memory-bound.
TEST(BottleneckTest, MemoryHeavyWorkloadIsMemoryBound) {
  ServerSpec spec = ServerSpec::Nehalem();
  spec.memory.empirical_bps = 8e9;  // cripple the memory bus: 1 GB/s

  tele::MeasuredWorkload w;
  w.name = "memhog";
  w.frame_bytes = 64;
  w.cycles_per_packet = 500;        // cheap CPU-wise
  w.per_packet.memory_bytes = 4096;  // 64 cache lines per packet
  w.per_packet.io_bytes = 128;
  w.per_packet.pcie_bytes = 128;

  tele::BottleneckVerdict v = tele::AnalyzeBottleneck(w, spec);
  EXPECT_EQ(v.bottleneck, tele::Resource::kMemory);
  EXPECT_EQ(v.verdict, "memory");
  // 1 GB/s / 4096 B/pkt ~= 244 kpps.
  EXPECT_NEAR(v.max_pps, 8e9 / 8.0 / 4096.0, 1.0);
}

// Resources with zero load or zero capacity are skipped, not divided by.
TEST(BottleneckTest, ZeroLoadsAndCapacitiesAreSkipped) {
  ServerSpec spec = ServerSpec::Nehalem();
  spec.inter_socket.empirical_bps = 0;  // single-socket-style spec

  tele::MeasuredWorkload w;
  w.name = "cpu_only";
  w.frame_bytes = 64;
  w.cycles_per_packet = 1000;
  // All bus loads zero.

  tele::BottleneckVerdict v = tele::AnalyzeBottleneck(w, spec);
  EXPECT_EQ(v.bottleneck, tele::Resource::kCpu);
  EXPECT_EQ(v.Limit(tele::Resource::kMemory), nullptr);
  EXPECT_EQ(v.Limit(tele::Resource::kInterSocket), nullptr);
  // NIC input still applies (frame_bytes > 0, input cap > 0).
  EXPECT_NE(v.Limit(tele::Resource::kNicInput), nullptr);
}

TEST(BottleneckTest, ResourceNamesAndClassesAreStable) {
  EXPECT_STREQ(tele::ResourceName(tele::Resource::kCpu), "cpu");
  EXPECT_STREQ(tele::ResourceName(tele::Resource::kNicInput), "nic_input");
  EXPECT_STREQ(tele::ResourceClass(tele::Resource::kCpu), "CPU");
  EXPECT_STREQ(tele::ResourceClass(tele::Resource::kMemory), "memory");
  EXPECT_STREQ(tele::ResourceClass(tele::Resource::kIo), "NIC/IO");
  EXPECT_STREQ(tele::ResourceClass(tele::Resource::kPcie), "NIC/IO");
  EXPECT_STREQ(tele::ResourceClass(tele::Resource::kNicInput), "NIC/IO");
}

}  // namespace
}  // namespace rb
