#include "telemetry/trace_export.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace rb {
namespace {

using telemetry::JsonValue;
using telemetry::ParseJson;
using telemetry::PathTracer;
using telemetry::TraceEventJson;
using telemetry::TracerConfig;

TracerConfig SampleAllConfig() {
  TracerConfig cfg;
  cfg.sample_every = 1;  // sample everything: the test drives few packets
  cfg.max_traces = 64;
  cfg.seed = 3;
  return cfg;
}

// Collects the "X" (complete-duration) events out of a parsed trace doc.
std::vector<const JsonValue*> XEvents(const JsonValue& doc) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return out;
  }
  for (const JsonValue& e : events->arr) {
    const JsonValue* ph = e.Find("ph");
    if (ph != nullptr && ph->is_string() && ph->str == "X") {
      out.push_back(&e);
    }
  }
  return out;
}

TEST(TraceExportTest, EmptyTracerProducesValidEmptyDocument) {
  PathTracer tracer(SampleAllConfig());
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc, &err)) << err;
  EXPECT_TRUE(XEvents(doc).empty());
}

TEST(TraceExportTest, CompleteTraceExportsOneXEventPerHopPair) {
  PathTracer tracer(SampleAllConfig());
  uint64_t h = tracer.StartTrace("ext-rx@0", 1.0);
  ASSERT_NE(h, 0u);
  tracer.Record(h, "cpu@0", 1.000010, /*wait=*/4e-6);
  tracer.EndTrace(h, "ext-out@1", 1.000025, /*wait=*/5e-6);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc, &err)) << err;
  std::vector<const JsonValue*> xs = XEvents(doc);
  ASSERT_EQ(xs.size(), 2u);  // 3 hops -> 2 consecutive pairs

  // First pair: ext-rx -> cpu, 10us residency of which 4us is wait.
  const JsonValue* e0 = xs[0];
  EXPECT_EQ(e0->Find("name")->str, "cpu@0");
  EXPECT_EQ(e0->Find("args", "from")->str, "ext-rx@0");
  EXPECT_NEAR(e0->Find("dur")->NumberOr(-1), 10.0, 0.01);
  EXPECT_NEAR(e0->Find("args", "wait_us")->NumberOr(-1), 4.0, 0.01);
  EXPECT_NEAR(e0->Find("args", "service_us")->NumberOr(-1), 6.0, 0.01);

  // Second pair: cpu -> ext-out, 15us of which 5us wait.
  const JsonValue* e1 = xs[1];
  EXPECT_EQ(e1->Find("name")->str, "ext-out@1");
  EXPECT_NEAR(e1->Find("dur")->NumberOr(-1), 15.0, 0.01);
  EXPECT_NEAR(e1->Find("args", "service_us")->NumberOr(-1), 10.0, 0.01);

  // wait + service == dur on every event (the decomposition contract).
  for (const JsonValue* e : xs) {
    EXPECT_NEAR(e->Find("args", "wait_us")->NumberOr(0) +
                    e->Find("args", "service_us")->NumberOr(0),
                e->Find("dur")->NumberOr(-1), 0.01);
  }
}

TEST(TraceExportTest, TimestampsAreRebasedToFirstHop) {
  // Wall-clock hop times are huge; the exporter subtracts the earliest
  // hop so Perfetto renders from ts ~ 0.
  PathTracer tracer(SampleAllConfig());
  uint64_t h = tracer.StartTrace("a", 12345.5);
  tracer.EndTrace(h, "b", 12345.5001);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc));
  std::vector<const JsonValue*> xs = XEvents(doc);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0]->Find("ts")->NumberOr(-1), 0.0, 1e-6);
  EXPECT_NEAR(xs[0]->Find("dur")->NumberOr(-1), 100.0, 0.01);
}

TEST(TraceExportTest, DroppedTraceMarkedAndExcludableViaCompleteOnly) {
  PathTracer tracer(SampleAllConfig());
  uint64_t done = tracer.StartTrace("rx", 1.0);
  tracer.EndTrace(done, "tx", 1.00001);
  uint64_t dropped = tracer.StartTrace("rx", 2.0);
  tracer.Abandon(dropped, "queue-drop", 2.00002);

  // Default export carries both; the abandoned trace's terminal event is
  // tagged args.drop=true so the viewer can tell the paths apart.
  JsonValue doc;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc));
  std::vector<const JsonValue*> xs = XEvents(doc);
  ASSERT_EQ(xs.size(), 2u);
  int drop_tagged = 0;
  for (const JsonValue* e : xs) {
    const JsonValue* d = e->Find("args", "drop");
    if (d != nullptr && d->b) {
      drop_tagged++;
    }
  }
  EXPECT_EQ(drop_tagged, 1);

  // complete_only excludes the dropped path entirely.
  JsonValue only;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer, /*complete_only=*/true), &only));
  EXPECT_EQ(XEvents(only).size(), 1u);
}

TEST(TraceExportTest, HopNamesWithQuotesAreEscaped) {
  PathTracer tracer(SampleAllConfig());
  uint64_t h = tracer.StartTrace("a\"b\\c", 1.0);
  tracer.EndTrace(h, "plain", 1.001);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc, &err)) << err;
  std::vector<const JsonValue*> xs = XEvents(doc);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0]->Find("args", "from")->str, "a\"b\\c");
}

TEST(TraceExportTest, NumericAtSuffixSelectsTrack) {
  // "cpu@3" renders on tid 3; names without a numeric suffix share tid 0.
  PathTracer tracer(SampleAllConfig());
  uint64_t h = tracer.StartTrace("ext-rx@0", 1.0);
  tracer.Record(h, "cpu@3", 1.00001);
  tracer.EndTrace(h, "ext-out", 1.00002);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(TraceEventJson(tracer), &doc));
  std::vector<const JsonValue*> xs = XEvents(doc);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_NEAR(xs[0]->Find("tid")->NumberOr(-1), 3.0, 0.0);
  EXPECT_NEAR(xs[1]->Find("tid")->NumberOr(-1), 0.0, 0.0);
}

}  // namespace
}  // namespace rb
