#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "click/elements/from_device.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "click/router.hpp"
#include "click/scheduler.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::HistogramOptions;
using telemetry::HistogramSnapshot;
using telemetry::MetricRegistry;
using telemetry::ShardedHistogram;

TEST(CounterTest, SumsAcrossCoreShards) {
  Counter c;
  for (int core = 0; core < 5; ++core) {
    telemetry::SetThisCore(core);
    c.Add(static_cast<uint64_t>(core) + 1);
  }
  telemetry::SetThisCore(0);
  EXPECT_EQ(c.Value(), 1u + 2 + 3 + 4 + 5);
}

TEST(CounterTest, CoreIdsBeyondShardCountWrapCorrectly) {
  Counter c;
  telemetry::SetThisCore(telemetry::kMaxShards + 3);
  c.Add(7);
  telemetry::SetThisCore(3);
  c.Add(5);
  telemetry::SetThisCore(0);
  EXPECT_EQ(c.Value(), 12u);
}

TEST(CounterTest, ConcurrentWritersAndReaderAggregateExactly) {
  // One writer thread per "core" plus a concurrent reader: the sharded
  // slots make writes contention-free and the whole dance TSan-clean.
  Counter c;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      uint64_t v = c.Value();
      ASSERT_GE(v, last);  // monotone under concurrent writes
      last = v;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&c, w] {
      telemetry::SetThisCore(w);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        c.Inc();
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(c.Value(), kWriters * kPerWriter);
}

TEST(GaugeTest, SetAndUpdateMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.UpdateMax(1.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.UpdateMax(9.0);
  EXPECT_DOUBLE_EQ(g.Value(), 9.0);
}

TEST(ShardedHistogramTest, SnapshotMergesShardsAndClipsLikeHistogram) {
  ShardedHistogram h(HistogramOptions{0.0, 10.0, 10});
  telemetry::SetThisCore(0);
  for (int i = 0; i < 50; ++i) {
    h.Observe(2.5);
  }
  telemetry::SetThisCore(1);
  for (int i = 0; i < 50; ++i) {
    h.Observe(7.5);
  }
  h.Observe(-3.0);   // underflow
  h.Observe(100.0);  // overflow
  telemetry::SetThisCore(0);

  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 102u);
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 1u);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean(), (50 * 2.5 + 50 * 7.5 - 3.0 + 100.0) / 102.0, 1e-9);
  // Clipped ranks report observed extremes (same semantics as
  // rb::Histogram::Percentile).
  EXPECT_DOUBLE_EQ(s.Percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  double p50 = s.Percentile(50);
  EXPECT_GT(p50, 2.0);
  EXPECT_LT(p50, 8.0);
}

TEST(MetricRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry r;
  Counter* a = r.GetCounter("x/packets");
  Counter* b = r.GetCounter("x/packets");
  EXPECT_EQ(a, b);
  EXPECT_NE(r.GetCounter("y/packets"), a);
  ShardedHistogram* h = r.GetHistogram("lat", HistogramOptions{0, 1, 8});
  EXPECT_EQ(r.GetHistogram("lat", HistogramOptions{0, 99, 2}), h);
  EXPECT_DOUBLE_EQ(h->options().hi, 1.0);  // first-creation options win
}

TEST(MetricRegistryTest, SnapshotIsSortedAndComplete) {
  MetricRegistry r;
  r.GetCounter("b")->Add(2);
  r.GetCounter("a")->Add(1);
  r.GetGauge("g")->Set(3.5);
  r.GetHistogram("h", HistogramOptions{0, 1, 4})->Observe(0.5);
  telemetry::RegistrySnapshot s = r.Snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a");
  EXPECT_EQ(s.counters[1].first, "b");
  EXPECT_EQ(s.CounterValue("b"), 2u);
  EXPECT_EQ(s.CounterValue("absent"), 0u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 3.5);
  ASSERT_NE(s.FindHistogram("h"), nullptr);
  EXPECT_EQ(s.FindHistogram("h")->count, 1u);
  EXPECT_EQ(s.FindHistogram("absent"), nullptr);
}

FrameSpec Frame64(uint16_t port) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 100u + port;
  spec.flow.dst_ip = 200;
  spec.flow.src_port = port;
  spec.flow.protocol = 17;
  return spec;
}

// The acceptance test for the sharded design: element/task counters
// written from real ThreadScheduler worker threads (distinct cores), read
// concurrently by the core-0 sampler hook, aggregate to exact totals.
// Run under TSan to prove the lock-free claim.
TEST(MetricRegistryTest, AggregationAcrossSchedulerThreads) {
  PacketPool pool{1024};
  NicConfig cfg;
  cfg.num_rx_queues = 2;
  cfg.num_tx_queues = 2;
  cfg.kn = 1;
  NicPort in(cfg);
  NicPort out(cfg);
  MetricRegistry registry;
  Router router;
  FromDevice* from[2];
  for (uint16_t q = 0; q < 2; ++q) {
    from[q] = router.Add<FromDevice>(&in, q, 32, q);
    auto* queue = router.Add<QueueElement>(256);
    auto* to = router.Add<ToDevice>(&out, q, 32, q);
    router.Connect(from[q], 0, queue, 0);
    router.Connect(queue, 0, to, 0);
  }
  router.BindTelemetry(&registry, nullptr);
  router.Initialize();

  constexpr int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    in.Deliver(AllocFrame(Frame64(static_cast<uint16_t>(i % 2)), &pool), 0.0);
  }

  ThreadScheduler sched(&router, 2);
  std::atomic<uint64_t> sampler_calls{0};
  sched.SetSampler(
      [&] {
        // Concurrent reader racing the worker threads' writes.
        telemetry::RegistrySnapshot snap = registry.Snapshot();
        ASSERT_LE(snap.CounterValue("elem/" + from[0]->name() + "/packets_out"),
                  static_cast<uint64_t>(kPackets));
        sampler_calls.fetch_add(1);
      },
      64);
  sched.Start();
  for (int spin = 0; spin < 2000 && out.tx_counters().packets < kPackets; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.Stop();

  ASSERT_EQ(out.tx_counters().packets, static_cast<uint64_t>(kPackets));
  EXPECT_GT(sampler_calls.load(), 0u);
  telemetry::RegistrySnapshot snap = registry.Snapshot();
  // RSS split the frames across the two queues; each FromDevice's counter
  // matches its queue's share and the shares cover every packet.
  uint64_t from_total = snap.CounterValue("elem/" + from[0]->name() + "/packets_out") +
                        snap.CounterValue("elem/" + from[1]->name() + "/packets_out");
  EXPECT_EQ(from_total, static_cast<uint64_t>(kPackets));
  // Task run/work counters were mirrored from the worker threads.
  uint64_t task_work = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("task/", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, "/work") == 0) {
      task_work += value;
    }
  }
  // Every packet is moved twice: FromDevice poll and ToDevice drain.
  EXPECT_EQ(task_work, static_cast<uint64_t>(2 * kPackets));

  Packet* burst[256];
  size_t n = out.DrainTx(burst, 256);
  for (size_t i = 0; i < n; ++i) {
    pool.Free(burst[i]);
  }
}

TEST(TelemetryTest, DisabledGateSkipsBinding) {
  telemetry::SetEnabled(false);
  MetricRegistry registry;
  Router router;
  NicConfig cfg;
  NicPort nic(cfg);
  auto* from = router.Add<FromDevice>(&nic, 0, 32, -1);
  auto* queue = router.Add<QueueElement>(16);
  auto* to = router.Add<ToDevice>(&nic, 0, 32, -1);
  router.Connect(from, 0, queue, 0);
  router.Connect(queue, 0, to, 0);
  router.BindTelemetry(&registry, nullptr);
  router.Initialize();
  telemetry::SetEnabled(true);
  EXPECT_TRUE(registry.Snapshot().counters.empty());
}

}  // namespace
}  // namespace rb
