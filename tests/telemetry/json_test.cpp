#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rb {
namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;
using telemetry::ParseJson;

TEST(JsonWriterTest, NestedStructureWithAutomaticCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("rb");
  w.Key("counts");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.Uint(3);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("pi");
  w.Double(3.25);
  w.Key("on");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"rb\",\"counts\":[1,2,3],"
            "\"nested\":{\"pi\":3.25,\"on\":true,\"none\":null}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\n\t\x01"), "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonRoundTripTest, WriterOutputParsesBackToSameValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  w.Key("elem/FromDevice@1/packets_out");
  w.Uint(12345);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  w.Key("q/occupancy");
  w.Double(0.75);
  w.EndObject();
  w.Key("points");
  w.BeginArray();
  w.BeginArray();
  w.Double(0.5);
  w.Double(-2.0);
  w.EndArray();
  w.EndArray();
  w.Key("label");
  w.String("a \"quoted\" name\n");
  w.EndObject();

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &v, &error)) << error;
  ASSERT_TRUE(v.is_object());
  const JsonValue* counter = v.Find("counters", "elem/FromDevice@1/packets_out");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->NumberOr(0), 12345.0);
  EXPECT_DOUBLE_EQ(v.Find("gauges", "q/occupancy")->NumberOr(0), 0.75);
  const JsonValue* points = v.Find("points");
  ASSERT_TRUE(points->is_array());
  ASSERT_EQ(points->arr.size(), 1u);
  ASSERT_EQ(points->arr[0].arr.size(), 2u);
  EXPECT_DOUBLE_EQ(points->arr[0].arr[1].NumberOr(0), -2.0);
  EXPECT_EQ(v.Find("label")->str, "a \"quoted\" name\n");
}

TEST(JsonParseTest, ParsesScalarsAndSkipsWhitespace) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(" { \"a\" : [ 1 , -2.5e2 , true , false , null ] } ", &v));
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 5u);
  EXPECT_DOUBLE_EQ(a->arr[0].NumberOr(0), 1.0);
  EXPECT_DOUBLE_EQ(a->arr[1].NumberOr(0), -250.0);
  EXPECT_TRUE(a->arr[2].b);
  EXPECT_FALSE(a->arr[3].b);
  EXPECT_EQ(a->arr[4].type, JsonValue::Type::kNull);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &v, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("[1, 2", &v));
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &v));
  EXPECT_FALSE(ParseJson("", &v));
}

TEST(JsonParseTest, DecodesEscapes) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("\"line\\nquote\\\" slash\\\\ u\\u0041\"", &v));
  EXPECT_EQ(v.str, "line\nquote\" slash\\ uA");
}

// Regression: End{Object,Array} used to pop needs_comma_ unconditionally;
// an unbalanced End on an empty writer underflowed the vector (UB). They
// now abort with a diagnostic instead.
TEST(JsonWriterDeathTest, EndObjectWithoutBeginAborts) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.EndObject();
      },
      "EndObject with no open scope");
}

TEST(JsonWriterDeathTest, EndArrayBeyondNestingAborts) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray();
        w.EndArray();
        w.EndArray();  // one too many
      },
      "EndArray with no open scope");
}

// Every escapable class round-trips Writer -> text -> Parser unchanged:
// control characters (both the named \n\t\r... escapes and the \u00XX
// form), quotes, backslashes, and embedded already-escaped-looking text.
TEST(JsonRoundTripTest, EscapedStringsSurviveWriterParserRoundTrip) {
  std::string all_controls;
  for (char c = 1; c < 0x20; ++c) {
    all_controls.push_back(c);
  }
  const std::string cases[] = {
      all_controls,
      "\"\"\"",                      // only quotes
      "\\\\",                        // only backslashes
      "\\n is not a newline",        // literal backslash-n must not decode
      "mixed \"q\\u\" \n\t\r\f\b end",
      std::string("embedded\0nul", 12),
      "trailing backslash \\",
  };
  for (const std::string& original : cases) {
    JsonWriter w;
    w.BeginObject();
    w.Key(original);  // keys go through the same escaping
    w.String(original);
    w.EndObject();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(w.str(), &v, &error))
        << "case failed to parse: " << w.str() << " (" << error << ")";
    const JsonValue* member = v.Find(original);
    ASSERT_NE(member, nullptr) << "key lost in round trip: " << w.str();
    EXPECT_EQ(member->str, original) << "value mangled: " << w.str();
  }
}

}  // namespace
}  // namespace rb
