// Control-socket tests (DESIGN.md §13): the wire protocol through
// HandleLine (framing, error codes, HTTP endpoints), a real TCP client
// against the serving thread, and a Concurrent test where control-plane
// scrapes race live ThreadScheduler workers — the thread-safety contract
// the whole introspection plane rests on (runs under TSan in CI).
#include "telemetry/control_socket.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "click/elements/from_device.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "click/router.hpp"
#include "click/scheduler.hpp"
#include "packet/pool.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace telemetry {
namespace {

// --- HandleLine: the protocol core without socket I/O ---

class HandleLineTest : public ::testing::Test {
 protected:
  HandleLineTest() : server_(&handlers_, &registry_) {
    handlers_.AddRead("q.occupancy", [] { return std::string("17"); });
    handlers_.AddRead("q.hi", [this] { return std::to_string(hi_); });
    handlers_.AddWrite("q.hi", [this](const std::string& v) {
      uint64_t parsed = 0;
      if (!ParseHandlerU64(v, &parsed)) {
        return HandlerResult::Error("want integer, got '" + v + "'");
      }
      hi_ = parsed;
      return HandlerResult::Ok();
    });
    registry_.GetCounter("test/packets")->Add(5);
  }

  std::string Run(const std::string& line) {
    bool close_after = false;
    return server_.HandleLine(line, &close_after);
  }

  HandlerRegistry handlers_;
  MetricRegistry registry_;
  ControlSocketServer server_;
  uint64_t hi_ = 100;
  std::string last_write_;
};

TEST_F(HandleLineTest, ReadFramesPayload) {
  EXPECT_EQ(Run("READ q.occupancy"), "200 DATA 2\n17\n");
}

TEST_F(HandleLineTest, WriteAppliesAndAcks) {
  EXPECT_EQ(Run("WRITE q.hi 64"), "200 OK\n");
  EXPECT_EQ(hi_, 64u);
  EXPECT_EQ(Run("READ q.hi"), "200 DATA 2\n64\n");
}

TEST_F(HandleLineTest, WriteValueIsRestOfLineCasePreserved) {
  handlers_.AddWrite("x.text", [this](const std::string& v) {
    last_write_ = v;
    return HandlerResult::Ok();
  });
  EXPECT_EQ(Run("WRITE x.text Hello World 42"), "200 OK\n");
  EXPECT_EQ(last_write_, "Hello World 42");
}

TEST_F(HandleLineTest, ListEnumeratesWithAccessTags) {
  std::string resp = Run("LIST");
  EXPECT_EQ(resp.rfind("200 DATA ", 0), 0u);
  EXPECT_NE(resp.find("rw q.hi\n"), std::string::npos);
  EXPECT_NE(resp.find("r  q.occupancy\n"), std::string::npos);

  resp = Run("LIST q.o");
  EXPECT_NE(resp.find("q.occupancy"), std::string::npos);
  EXPECT_EQ(resp.find("q.hi"), std::string::npos);
}

TEST_F(HandleLineTest, ErrorCodes) {
  EXPECT_EQ(Run("READ nope.nothing"), "510 no such handler: nope.nothing\n");
  EXPECT_EQ(Run("READ").rfind("500 malformed", 0), 0u);
  EXPECT_EQ(Run("WRITE q.hi banana").rfind("540 write rejected: want integer", 0), 0u);
  EXPECT_EQ(Run("WRITE nope.nothing 1").rfind("510", 0), 0u);
  EXPECT_EQ(Run("FROB q"), "500 unknown command: FROB\n");
  EXPECT_EQ(Run(""), "");  // blank lines (HTTP header tails) are ignored
}

TEST_F(HandleLineTest, VerbIsCaseInsensitivePathIsNot) {
  EXPECT_EQ(Run("read q.occupancy"), "200 DATA 2\n17\n");
  EXPECT_EQ(Run("READ Q.OCCUPANCY").rfind("510", 0), 0u);
}

TEST_F(HandleLineTest, QuitClosesConnection) {
  bool close_after = false;
  EXPECT_EQ(server_.HandleLine("QUIT", &close_after), "200 bye\n");
  EXPECT_TRUE(close_after);
}

TEST_F(HandleLineTest, HttpMetricsEndpoints) {
  bool close_after = false;
  std::string resp = server_.HandleLine("GET /metrics HTTP/1.1", &close_after);
  EXPECT_TRUE(close_after);
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("# TYPE rb_counter counter"), std::string::npos);
  EXPECT_NE(resp.find("rb_counter{name=\"test/packets\"} 5"), std::string::npos);

  resp = server_.HandleLine("GET /metrics.json", &close_after);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"counters\""), std::string::npos);

  resp = server_.HandleLine("GET /nope", &close_after);
  EXPECT_EQ(resp.rfind("HTTP/1.0 404", 0), 0u);
}

// --- real sockets ---

// Minimal blocking TCP client for the framed line protocol.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    std::string out = line + "\n";
    EXPECT_EQ(::write(fd_, out.data(), out.size()), static_cast<ssize_t>(out.size()));
  }

  // Reads one response: either a framed payload or a single status line.
  std::string ReadResponse() {
    std::string status = ReadLine();
    if (status.rfind("200 DATA ", 0) == 0) {
      size_t n = std::strtoull(status.c_str() + 9, nullptr, 10);
      std::string payload = ReadExact(n + 1);
      payload.resize(n);
      return payload;
    }
    return status;
  }

  std::string Command(const std::string& line) {
    Send(line);
    return ReadResponse();
  }

  std::string ReadAll() {  // until peer closes (HTTP responses)
    std::string data = buf_;
    buf_.clear();
    char tmp[4096];
    ssize_t n;
    while ((n = ::read(fd_, tmp, sizeof(tmp))) > 0) {
      data.append(tmp, static_cast<size_t>(n));
    }
    return data;
  }

 private:
  bool Fill() {
    char tmp[4096];
    ssize_t n = ::read(fd_, tmp, sizeof(tmp));
    if (n <= 0) {
      return false;
    }
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }
  std::string ReadLine() {
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
      if (!Fill()) {
        return "";
      }
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }
  std::string ReadExact(size_t n) {
    while (buf_.size() < n) {
      if (!Fill()) {
        return "";
      }
    }
    std::string out = buf_.substr(0, n);
    buf_.erase(0, n);
    return out;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

TEST(ControlSocketTest, ServesEphemeralTcpPort) {
  HandlerRegistry handlers;
  handlers.AddRead("x.v", [] { return std::string("ok!"); });
  MetricRegistry registry;
  ControlSocketServer server(&handlers, &registry);
  std::string err;
  ASSERT_TRUE(server.Start("0", &err)) << err;
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Command("READ x.v"), "ok!");
  EXPECT_EQ(client.Command("READ gone"), "510 no such handler: gone");
  EXPECT_GE(server.connections_accepted(), 1u);
  EXPECT_GE(server.commands_served(), 2u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(ControlSocketTest, HttpScrapeOverSocketThenCloses) {
  HandlerRegistry handlers;
  MetricRegistry registry;
  registry.GetCounter("scrape/me")->Add(3);
  ControlSocketServer server(&handlers, &registry);
  ASSERT_TRUE(server.Start("0"));

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /metrics HTTP/1.0\r");
  std::string full = client.ReadAll();
  EXPECT_EQ(full.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(full.find("rb_counter{name=\"scrape/me\"} 3"), std::string::npos);
  server.Stop();
}

TEST(ControlSocketTest, SecondClientWhileFirstHasPendingOutput) {
  // Regression test for the poll-loop indexing bug: a connection accepted
  // in the same poll iteration where an existing client still has queued
  // output used to read a stale pollfd slot and could be reset.
  HandlerRegistry handlers;
  handlers.AddRead("x.big", [] { return std::string(300000, 'z'); });
  MetricRegistry registry;
  ControlSocketServer server(&handlers, &registry);
  ASSERT_TRUE(server.Start("0"));

  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  // Queue a large framed response but do not consume it yet: the server
  // sits in a pending-flush state (the kernel buffer fills) while the
  // second client connects and transacts.
  first.Send("READ x.big");
  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  EXPECT_EQ(second.Command("READ x.big").size(), 300000u);
  EXPECT_EQ(first.ReadResponse().size(), 300000u);
  server.Stop();
}

// --- the TSan contract: scrapes race live workers ---

FrameSpec Frame64(uint16_t port) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 100u + port;
  spec.flow.dst_ip = 200;
  spec.flow.src_port = port;
  spec.flow.protocol = 17;
  return spec;
}

TEST(ControlSocketTest, ConcurrentScrapesRaceLiveWorkers) {
  // Two scheduler workers move packets through FromDevice -> Queue ->
  // ToDevice while a control client LISTs, READs occupancy/counters,
  // WRITEs watermarks and CoDel knobs, and snapshots the registry over a
  // real socket. Under TSan (the CI *Concurrent* filter) this proves the
  // handler bodies only touch data that is safe against hot-path writers.
  //
  // A fixed set of packets circulates feeder -> rx -> queue -> tx ->
  // feeder; the pool is only touched before Start and after Stop (it is
  // deliberately not thread-safe, per-core in real deployments).
  PacketPool pool(256);
  NicConfig cfg;
  cfg.num_rx_queues = 2;
  cfg.num_tx_queues = 2;
  NicPort in(cfg);
  NicPort out(cfg);
  Router router;
  QueueOptions qopt;
  qopt.capacity = 1024;
  qopt.hi_watermark = 768;
  for (uint16_t q = 0; q < 2; ++q) {
    auto* from = router.Add<FromDevice>(&in, q, 32, q);
    auto* queue = router.Add<QueueElement>(qopt);
    auto* to = router.Add<ToDevice>(&out, q, 32, q);
    router.Connect(from, 0, queue, 0);
    router.Connect(queue, 0, to, 0);
  }
  MetricRegistry registry;
  router.BindTelemetry(&registry, nullptr);
  router.Initialize();

  FlightRecorder recorder(256);
  FlightRecorder::Install(&recorder);

  HandlerRegistry handlers;
  router.AddHandlers(&handlers);
  ControlSocketServer server(&handlers, &registry);
  ASSERT_TRUE(server.Start("0"));

  // 64 packets in flight, re-delivered as they come out the far side.
  std::vector<Packet*> seed;
  for (uint32_t i = 0; i < 64; ++i) {
    Packet* p = AllocFrame(Frame64(static_cast<uint16_t>(i % 2)), &pool);
    ASSERT_NE(p, nullptr);
    seed.push_back(p);
  }

  ThreadScheduler sched(&router, 2);
  sched.Start();

  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    for (Packet* p : seed) {
      in.Deliver(p, 0.0);
    }
    Packet* burst[64];
    while (feeding.load(std::memory_order_acquire)) {
      size_t n = out.DrainTx(burst, 64);
      for (size_t k = 0; k < n; ++k) {
        in.Deliver(burst[k], 0.0);
      }
      if (n == 0) {
        std::this_thread::yield();
      }
    }
  });

  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    std::string listing = client.Command("LIST");
    ASSERT_NE(listing.find(".occupancy"), std::string::npos);
    // First queue name from the listing.
    size_t occ = listing.find(".occupancy");
    size_t start = listing.rfind(' ', occ);
    std::string qname = listing.substr(start + 1, occ - start - 1);

    for (int iter = 0; iter < 200; ++iter) {
      std::string v = client.Command("READ " + qname + ".occupancy");
      EXPECT_FALSE(v.empty());
      client.Command("READ " + qname + ".counts");
      client.Command("READ " + qname + ".highwater");
      client.Command("READ router.tasks");
      client.Command("WRITE " + qname + ".hi " + ((iter % 2) != 0 ? "512" : "768"));
      client.Command("WRITE " + qname + ".codel_target_us " + ((iter % 2) != 0 ? "750" : "5000"));
      RegistrySnapshot snap = registry.Snapshot();
      EXPECT_GE(snap.counters.size(), 1u);
    }
  }

  feeding.store(false, std::memory_order_release);
  feeder.join();
  sched.Stop();
  server.Stop();
  FlightRecorder::Install(nullptr);

  // Recycle every in-flight packet now that all threads are joined.
  Packet* burst[256];
  size_t n;
  while ((n = out.DrainTx(burst, 256)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      pool.Free(burst[i]);
    }
  }
}

}  // namespace
}  // namespace telemetry
}  // namespace rb
