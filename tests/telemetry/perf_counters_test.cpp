#include "telemetry/perf_counters.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

namespace tele = rb::telemetry;

// Burn enough work that any cycle source registers a nonzero delta.
uint64_t SpinWork() {
  volatile uint64_t acc = 1;
  for (int i = 0; i < 2000000; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  return acc;
}

// The fallback path must work on every machine (this is what CI without
// CAP_PERFMON exercises implicitly; force_fallback makes it explicit).
TEST(PerfCountersTest, ForcedFallbackAlwaysDeliversCycles) {
  tele::PerfCounterConfig cfg;
  cfg.force_fallback = true;
  tele::PerfCounterGroup group(cfg);
  EXPECT_FALSE(group.hw_available());
  EXPECT_FALSE(group.error().empty());
  EXPECT_EQ(group.num_events(), 0);

  group.Start();
  SpinWork();
  tele::PerfSample s = group.Stop();

  EXPECT_FALSE(s.hw);
  EXPECT_GT(s.fallback_cycles, 0u);
  EXPECT_EQ(s.best_cycles(), s.fallback_cycles);
  // No hardware data -> derived ratios are all defined-zero, not garbage.
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(s.cpi(), 0.0);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.0);
}

TEST(PerfCountersTest, StartStopCanRepeat) {
  tele::PerfCounterConfig cfg;
  cfg.force_fallback = true;
  tele::PerfCounterGroup group(cfg);
  group.Start();
  SpinWork();
  uint64_t first = group.Stop().fallback_cycles;
  group.Start();
  uint64_t second = group.Stop().fallback_cycles;
  EXPECT_GT(first, 0u);
  // The second window did almost nothing; it must be a fresh delta, not
  // cumulative.
  EXPECT_LT(second, first);
}

// Opportunistic hardware-path test: runs the real perf_event_open group
// where the kernel allows it, and degrades to checking the graceful
// failure contract where it does not (most containers).
TEST(PerfCountersTest, HardwarePathOrGracefulDegradation) {
  tele::PerfCounterGroup group;
  if (!group.hw_available()) {
    EXPECT_FALSE(group.error().empty());
    group.Start();
    SpinWork();
    tele::PerfSample s = group.Stop();
    EXPECT_FALSE(s.hw);
    EXPECT_GT(s.fallback_cycles, 0u);
    return;
  }
  EXPECT_GE(group.num_events(), 1);
  group.Start();
  SpinWork();
  tele::PerfSample s = group.Stop();
  EXPECT_TRUE(s.hw);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.instructions, 0u);
  EXPECT_GT(s.ipc(), 0.0);
  EXPECT_GT(s.running_fraction, 0.0);
  EXPECT_LE(s.running_fraction, 1.0 + 1e-9);
  EXPECT_EQ(s.best_cycles(), s.cycles);
}

// PerfSample's derived metrics guard their denominators.
TEST(PerfCountersTest, SampleRatiosGuardDivisionByZero) {
  tele::PerfSample s;
  EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(s.cpi(), 0.0);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.0);
  EXPECT_EQ(s.best_cycles(), 0u);

  s.hw = true;
  s.cycles = 1000;
  s.instructions = 2000;
  s.cache_references = 100;
  s.cache_misses = 25;
  EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(s.cpi(), 0.5);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.25);
}

}  // namespace
}  // namespace rb
