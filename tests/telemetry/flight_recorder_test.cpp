// Flight-recorder tests (DESIGN.md §13): recording and dumping, ring
// wraparound keeping only the tail, process-global installation feeding
// the FrRecord fast path, concurrent writers against a concurrent
// reader, and the fatal-RB_CHECK crash dump.
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "telemetry/profiler.hpp"

namespace rb {
namespace telemetry {
namespace {

// Every test runs on a fixed core id so events land in one ring and the
// dump is deterministic.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { SetThisCore(0); }
  void TearDown() override { FlightRecorder::Install(nullptr); }
};

TEST_F(FlightRecorderTest, RecordAndDump) {
  FlightRecorder fr(16);
  const ScopeId scope = InternScopeName("test_elem");
  fr.Record(FrEvent::kDrop, scope, 3, 0);
  fr.Record(FrEvent::kBlocked, scope, 250);

  EXPECT_EQ(fr.recorded(), 2u);
  std::string dump = fr.Dump();
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("blocked"), std::string::npos);
  EXPECT_NE(dump.find("where=test_elem"), std::string::npos);
  EXPECT_NE(dump.find("a=3"), std::string::npos);
  EXPECT_NE(dump.find("a=250"), std::string::npos);
  // Ordered oldest-to-newest within the core.
  EXPECT_LT(dump.find("drop"), dump.find("blocked"));
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheTailOnWraparound) {
  FlightRecorder fr(4);  // tiny ring: 4 slots on this core
  EXPECT_EQ(fr.events_per_core(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    fr.Record(FrEvent::kUser, kInvalidScope, i);
  }
  EXPECT_EQ(fr.recorded(), 10u) << "recorded() counts all events, not just survivors";
  std::string dump = fr.Dump();
  // Only the last 4 events (a=6..9) survive.
  for (uint64_t a : {6u, 7u, 8u, 9u}) {
    EXPECT_NE(dump.find("a=" + std::to_string(a) + " "), std::string::npos) << dump;
  }
  EXPECT_EQ(dump.find("a=5 "), std::string::npos) << "overwritten slot must not reappear";
  // seq values keep global order even after wrapping.
  EXPECT_LT(dump.find("a=6 "), dump.find("a=9 "));
}

TEST_F(FlightRecorderTest, EventsPerCoreRoundsUpToPowerOfTwo) {
  FlightRecorder fr(5);
  EXPECT_EQ(fr.events_per_core(), 8u);
}

TEST_F(FlightRecorderTest, MaxPerCoreLimitsDump) {
  FlightRecorder fr(16);
  for (uint64_t i = 0; i < 10; ++i) {
    fr.Record(FrEvent::kUser, kInvalidScope, i);
  }
  std::string dump = fr.Dump(2);
  EXPECT_EQ(dump.find("a=7 "), std::string::npos);
  EXPECT_NE(dump.find("a=8 "), std::string::npos);
  EXPECT_NE(dump.find("a=9 "), std::string::npos);
}

TEST_F(FlightRecorderTest, FrRecordIsNoOpWhenUninstalled) {
  ASSERT_EQ(FlightRecorder::Installed(), nullptr);
  FrRecord(FrEvent::kUser, kInvalidScope, 1);  // must not crash

  FlightRecorder fr(16);
  FlightRecorder::Install(&fr);
  EXPECT_EQ(FlightRecorder::Installed(), &fr);
  FrRecord(FrEvent::kUser, kInvalidScope, 42);
  EXPECT_EQ(fr.recorded(), 1u);
  FlightRecorder::Install(nullptr);
  FrRecord(FrEvent::kUser, kInvalidScope, 43);
  EXPECT_EQ(fr.recorded(), 1u) << "uninstalled recorder must stop receiving";
}

TEST_F(FlightRecorderTest, DumpToFileWritesEvents) {
  FlightRecorder fr(16);
  fr.Record(FrEvent::kRxOverflow, InternScopeName("nic/rx"), 2, 1);
  std::string path = ::testing::TempDir() + "fr_dump_test.txt";
  ASSERT_TRUE(fr.DumpToFile(path));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512] = {0};
  size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  remove(path.c_str());
  std::string content(buf, n);
  EXPECT_NE(content.find("rx_overflow"), std::string::npos);
  EXPECT_NE(content.find("where=nic/rx"), std::string::npos);
  EXPECT_FALSE(fr.DumpToFile("/nonexistent-dir/x/y"));
}

TEST_F(FlightRecorderTest, ConcurrentRecordersAndDumper) {
  // Writers on distinct cores race a reader calling Dump(); TSan (CI
  // *Concurrent* filter) checks the seqlock publication, and the
  // assertion checks nothing torn is ever misreported.
  FlightRecorder fr(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      SetThisCore(w);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        fr.Record(FrEvent::kUser, kInvalidScope, i, static_cast<uint64_t>(w));
      }
    });
  }
  std::thread reader([&] {
    SetThisCore(kWriters);  // rings are per-core; reader owns none
    while (!go.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 50; ++i) {
      std::string dump = fr.Dump();
      // Every surviving line is a fully-published user event.
      size_t pos = 0;
      while ((pos = dump.find("core=", pos)) != std::string::npos) {
        EXPECT_NE(dump.find("user", pos), std::string::npos);
        pos += 5;
      }
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  reader.join();
  EXPECT_EQ(fr.recorded(), static_cast<uint64_t>(kWriters) * kPerWriter);
}

#if GTEST_HAS_DEATH_TEST
TEST(FlightRecorderDeathTest, FatalCheckDumpsRecorder) {
  // A fatal RB_CHECK with a recorder installed must print the black box
  // before aborting — that tail is the whole point of the subsystem.
  EXPECT_DEATH(
      {
        SetThisCore(0);
        static FlightRecorder fr(16);
        FlightRecorder::Install(&fr);
        fr.Record(FrEvent::kDrop, InternScopeName("doomed_elem"), 9);
        RB_CHECK_MSG(false, "intentional test failure");
      },
      "where=doomed_elem");
}
#endif

}  // namespace
}  // namespace telemetry
}  // namespace rb
