#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rb {
namespace {

using telemetry::HopLatency;
using telemetry::PacketTrace;
using telemetry::PathTracer;
using telemetry::TracerConfig;

TEST(PathTracerTest, SamplesOneInNDeterministically) {
  TracerConfig cfg;
  cfg.sample_every = 4;
  cfg.seed = 1;
  PathTracer a(cfg);
  PathTracer b(cfg);
  std::vector<bool> sampled_a;
  std::vector<bool> sampled_b;
  for (int i = 0; i < 32; ++i) {
    sampled_a.push_back(a.StartTrace("rx", i) != 0);
    sampled_b.push_back(b.StartTrace("rx", i) != 0);
  }
  // Identical configs sample identical packet indices.
  EXPECT_EQ(sampled_a, sampled_b);
  EXPECT_EQ(a.sampled(), 8u);  // 1 in 4 of 32
  // Exactly one in every consecutive window of 4.
  for (size_t w = 0; w + 4 <= sampled_a.size(); w += 4) {
    int hits = sampled_a[w] + sampled_a[w + 1] + sampled_a[w + 2] + sampled_a[w + 3];
    EXPECT_EQ(hits, 1);
  }
}

TEST(PathTracerTest, SeedShiftsWhichPacketsAreSampled) {
  TracerConfig a_cfg;
  a_cfg.sample_every = 8;
  a_cfg.seed = 0;
  TracerConfig b_cfg = a_cfg;
  b_cfg.seed = 3;
  PathTracer a(a_cfg);
  PathTracer b(b_cfg);
  std::vector<size_t> a_idx;
  std::vector<size_t> b_idx;
  for (size_t i = 0; i < 32; ++i) {
    if (a.StartTrace("rx", 0) != 0) {
      a_idx.push_back(i);
    }
    if (b.StartTrace("rx", 0) != 0) {
      b_idx.push_back(i);
    }
  }
  ASSERT_EQ(a_idx.size(), 4u);
  ASSERT_EQ(b_idx.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(b_idx[k], a_idx[k] + 3);
  }
}

TEST(PathTracerTest, RecordsHopsInOrderAndEndCompletes) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  uint64_t h = tracer.StartTrace("from", 1.0);
  ASSERT_NE(h, 0u);
  tracer.Record(h, "lookup", 1.5);
  tracer.EndTrace(h, "to", 2.0);

  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].complete);
  ASSERT_EQ(traces[0].hops.size(), 3u);
  EXPECT_EQ(traces[0].hops[0].point, "from");
  EXPECT_EQ(traces[0].hops[2].point, "to");
  EXPECT_DOUBLE_EQ(traces[0].hops[2].t, 2.0);
}

TEST(PathTracerTest, HandleZeroIsNoOp) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  tracer.Record(0, "x", 1.0);
  tracer.EndTrace(0, "x", 1.0);
  tracer.Abandon(0, "x", 1.0);
  EXPECT_TRUE(tracer.Traces().empty());
}

TEST(PathTracerTest, HopLatenciesAggregatePerPair) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  for (int i = 0; i < 3; ++i) {
    uint64_t h = tracer.StartTrace("a", i * 10.0);
    tracer.Record(h, "b", i * 10.0 + 1.0 + i);  // a->b: 1, 2, 3
    tracer.EndTrace(h, "c", i * 10.0 + 5.0);
  }
  std::vector<HopLatency> hops = tracer.HopLatencies();
  ASSERT_EQ(hops.size(), 2u);
  const HopLatency* ab = nullptr;
  for (const auto& hl : hops) {
    if (hl.from == "a" && hl.to == "b") {
      ab = &hl;
    }
  }
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->count, 3u);
  EXPECT_DOUBLE_EQ(ab->min, 1.0);
  EXPECT_DOUBLE_EQ(ab->max, 3.0);
  EXPECT_DOUBLE_EQ(ab->mean(), 2.0);
}

TEST(PathTracerTest, AbandonedTracesExcludedFromAggregates) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  uint64_t ok = tracer.StartTrace("a", 0.0);
  tracer.EndTrace(ok, "b", 1.0);
  uint64_t dropped = tracer.StartTrace("a", 0.0);
  tracer.Abandon(dropped, "drop", 0.5);

  // The drop hop is visible in the raw trace...
  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_FALSE(traces[1].complete);
  EXPECT_EQ(traces[1].hops.back().point, "drop");
  // ...but only the completed trace contributes latency stats.
  std::vector<HopLatency> hops = tracer.HopLatencies();
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].count, 1u);
}

TEST(PathTracerTest, StopsSamplingAtMaxTraces) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  cfg.max_traces = 5;
  PathTracer tracer(cfg);
  size_t taken = 0;
  for (int i = 0; i < 100; ++i) {
    if (tracer.StartTrace("x", i) != 0) {
      taken++;
    }
  }
  EXPECT_EQ(taken, 5u);
  EXPECT_EQ(tracer.Traces().size(), 5u);
  EXPECT_EQ(tracer.started(), 100u);
}

TEST(PathTracerTest, HopLatencyHistogramCoversEveryDelta) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  for (int i = 0; i < 10; ++i) {
    uint64_t h = tracer.StartTrace("a", 0.0);
    tracer.Record(h, "b", 1.0);
    tracer.EndTrace(h, "c", 3.0);
  }
  telemetry::HistogramSnapshot hist = tracer.HopLatencyHistogram(16);
  EXPECT_EQ(hist.count, 20u);  // two deltas per trace
  EXPECT_DOUBLE_EQ(hist.min, 1.0);
  EXPECT_DOUBLE_EQ(hist.max, 2.0);
  EXPECT_EQ(hist.underflow, 0u);
  EXPECT_EQ(hist.overflow, 0u);
}

}  // namespace
}  // namespace rb
