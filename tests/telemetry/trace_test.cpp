#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rb {
namespace {

using telemetry::HopLatency;
using telemetry::HopPointName;
using telemetry::PacketTrace;
using telemetry::PathTracer;
using telemetry::TracerConfig;

TEST(PathTracerTest, SamplesOneInNDeterministically) {
  TracerConfig cfg;
  cfg.sample_every = 4;
  cfg.seed = 1;
  PathTracer a(cfg);
  PathTracer b(cfg);
  std::vector<bool> sampled_a;
  std::vector<bool> sampled_b;
  for (int i = 0; i < 32; ++i) {
    sampled_a.push_back(a.StartTrace("rx", i) != 0);
    sampled_b.push_back(b.StartTrace("rx", i) != 0);
  }
  // Identical configs sample identical packet indices.
  EXPECT_EQ(sampled_a, sampled_b);
  EXPECT_EQ(a.sampled(), 8u);  // 1 in 4 of 32
  // Exactly one in every consecutive window of 4.
  for (size_t w = 0; w + 4 <= sampled_a.size(); w += 4) {
    int hits = sampled_a[w] + sampled_a[w + 1] + sampled_a[w + 2] + sampled_a[w + 3];
    EXPECT_EQ(hits, 1);
  }
}

TEST(PathTracerTest, SeedShiftsWhichPacketsAreSampled) {
  TracerConfig a_cfg;
  a_cfg.sample_every = 8;
  a_cfg.seed = 0;
  TracerConfig b_cfg = a_cfg;
  b_cfg.seed = 3;
  PathTracer a(a_cfg);
  PathTracer b(b_cfg);
  std::vector<size_t> a_idx;
  std::vector<size_t> b_idx;
  for (size_t i = 0; i < 32; ++i) {
    if (a.StartTrace("rx", 0) != 0) {
      a_idx.push_back(i);
    }
    if (b.StartTrace("rx", 0) != 0) {
      b_idx.push_back(i);
    }
  }
  ASSERT_EQ(a_idx.size(), 4u);
  ASSERT_EQ(b_idx.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(b_idx[k], a_idx[k] + 3);
  }
}

TEST(PathTracerTest, RecordsHopsInOrderAndEndCompletes) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  uint64_t h = tracer.StartTrace("from", 1.0);
  ASSERT_NE(h, 0u);
  tracer.Record(h, "lookup", 1.5);
  tracer.EndTrace(h, "to", 2.0);

  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].complete);
  ASSERT_EQ(traces[0].hops.size(), 3u);
  EXPECT_EQ(HopPointName(traces[0].hops[0]), "from");
  EXPECT_EQ(HopPointName(traces[0].hops[2]), "to");
  EXPECT_DOUBLE_EQ(traces[0].hops[2].t, 2.0);
}

TEST(PathTracerTest, HandleZeroIsNoOp) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  tracer.Record(0, "x", 1.0);
  tracer.EndTrace(0, "x", 1.0);
  tracer.Abandon(0, "x", 1.0);
  EXPECT_TRUE(tracer.Traces().empty());
}

TEST(PathTracerTest, HopLatenciesAggregatePerPair) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  for (int i = 0; i < 3; ++i) {
    uint64_t h = tracer.StartTrace("a", i * 10.0);
    tracer.Record(h, "b", i * 10.0 + 1.0 + i);  // a->b: 1, 2, 3
    tracer.EndTrace(h, "c", i * 10.0 + 5.0);
  }
  std::vector<HopLatency> hops = tracer.HopLatencies();
  ASSERT_EQ(hops.size(), 2u);
  const HopLatency* ab = nullptr;
  for (const auto& hl : hops) {
    if (hl.from == "a" && hl.to == "b") {
      ab = &hl;
    }
  }
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->count, 3u);
  EXPECT_DOUBLE_EQ(ab->min, 1.0);
  EXPECT_DOUBLE_EQ(ab->max, 3.0);
  EXPECT_DOUBLE_EQ(ab->mean(), 2.0);
}

TEST(PathTracerTest, AbandonedTracesExcludedFromAggregates) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  uint64_t ok = tracer.StartTrace("a", 0.0);
  tracer.EndTrace(ok, "b", 1.0);
  uint64_t dropped = tracer.StartTrace("a", 0.0);
  tracer.Abandon(dropped, "drop", 0.5);

  // The drop hop is visible in the raw trace...
  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_FALSE(traces[1].complete);
  EXPECT_EQ(HopPointName(traces[1].hops.back()), "drop");
  // ...but only the completed trace contributes latency stats.
  std::vector<HopLatency> hops = tracer.HopLatencies();
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].count, 1u);
}

TEST(PathTracerTest, ReservoirHoldsAtMostMaxTraces) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  cfg.max_traces = 5;
  PathTracer tracer(cfg);
  for (int i = 0; i < 100; ++i) {
    uint64_t h = tracer.StartTrace("x", i);
    tracer.EndTrace(h, "y", i + 0.5);  // no-op for the unsampled majority
  }
  EXPECT_EQ(tracer.Traces().size(), 5u);
  EXPECT_EQ(tracer.sampled(), 5u);
  EXPECT_EQ(tracer.candidates(), 100u);
  EXPECT_EQ(tracer.started(), 100u);
}

TEST(PathTracerTest, ReservoirSamplingHasNoEarlyRunBias) {
  // The old behavior kept only the *first* max_traces candidates, so a
  // long run's sample said nothing about its steady state. Reservoir
  // sampling must keep candidates from the whole run: with 64 slots and
  // 10000 candidates, a first-N sampler has mean candidate index 31.5 and
  // none above 63; a uniform reservoir's mean is ~5000.
  TracerConfig cfg;
  cfg.sample_every = 1;
  cfg.max_traces = 64;
  cfg.seed = 7;
  PathTracer tracer(cfg);
  constexpr uint64_t kCandidates = 10000;
  for (uint64_t i = 0; i < kCandidates; ++i) {
    uint64_t h = tracer.StartTrace("x", static_cast<double>(i));
    tracer.EndTrace(h, "y", static_cast<double>(i) + 0.5);
  }
  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 64u);
  double mean = 0;
  uint64_t late = 0;
  for (const PacketTrace& tr : traces) {
    EXPECT_TRUE(tr.complete);  // replacement didn't corrupt slot state
    mean += static_cast<double>(tr.candidate);
    if (tr.candidate >= kCandidates / 2) {
      late++;
    }
  }
  mean /= static_cast<double>(traces.size());
  // Uniform sample: mean ≈ 5000 (std err ≈ 360), about half late. Any
  // early-run bias pulls both far outside these loose bounds.
  EXPECT_GT(mean, 3000.0);
  EXPECT_LT(mean, 7000.0);
  EXPECT_GE(late, 16u);
  // And for a fixed seed the kept set is exactly reproducible.
  PathTracer again(cfg);
  for (uint64_t i = 0; i < kCandidates; ++i) {
    uint64_t h = again.StartTrace("x", static_cast<double>(i));
    again.EndTrace(h, "y", static_cast<double>(i) + 0.5);
  }
  std::vector<PacketTrace> traces2 = again.Traces();
  ASSERT_EQ(traces2.size(), traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces2[i].candidate, traces[i].candidate);
  }
}

TEST(PathTracerTest, StaleHandleAfterEvictionIsIgnored) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  cfg.max_traces = 1;
  cfg.seed = 3;
  PathTracer tracer(cfg);
  uint64_t first = tracer.StartTrace("a", 0.0);
  ASSERT_NE(first, 0u);
  // Drive candidates until one evicts the first trace from the only slot.
  uint64_t evictor = 0;
  for (int i = 0; i < 64 && evictor == 0; ++i) {
    evictor = tracer.StartTrace("b", 1.0 + i);
  }
  ASSERT_NE(evictor, 0u);
  ASSERT_NE(evictor, first);
  // The evicted packet's late hops must not corrupt the new occupant.
  tracer.Record(first, "ghost", 99.0);
  tracer.EndTrace(first, "ghost-end", 100.0);
  std::vector<PacketTrace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_FALSE(traces[0].complete);
  for (const auto& hop : traces[0].hops) {
    EXPECT_NE(HopPointName(hop), "ghost");
  }
  // The live handle still records normally.
  tracer.EndTrace(evictor, "c", 2.0);
  EXPECT_TRUE(tracer.Traces()[0].complete);
}

TEST(PathTracerTest, HopWaitFlowsIntoAggregates) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  for (int i = 0; i < 4; ++i) {
    uint64_t h = tracer.StartTrace("a", 0.0);
    tracer.Record(h, "b", 2.0, /*wait=*/0.5);
    tracer.EndTrace(h, "c", 3.0);
  }
  std::vector<HopLatency> hops = tracer.HopLatencies();
  const HopLatency* ab = nullptr;
  for (const auto& hl : hops) {
    if (hl.from == "a" && hl.to == "b") {
      ab = &hl;
    }
  }
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->mean(), 2.0);
  EXPECT_DOUBLE_EQ(ab->mean_wait(), 0.5);  // residency = 0.5 wait + 1.5 service
}

TEST(PathTracerTest, HopLatencyHistogramCoversEveryDelta) {
  TracerConfig cfg;
  cfg.sample_every = 1;
  PathTracer tracer(cfg);
  for (int i = 0; i < 10; ++i) {
    uint64_t h = tracer.StartTrace("a", 0.0);
    tracer.Record(h, "b", 1.0);
    tracer.EndTrace(h, "c", 3.0);
  }
  telemetry::HistogramSnapshot hist = tracer.HopLatencyHistogram(16);
  EXPECT_EQ(hist.count, 20u);  // two deltas per trace
  EXPECT_DOUBLE_EQ(hist.min, 1.0);
  EXPECT_DOUBLE_EQ(hist.max, 2.0);
  EXPECT_EQ(hist.underflow, 0u);
  EXPECT_EQ(hist.overflow, 0u);
}

}  // namespace
}  // namespace rb
