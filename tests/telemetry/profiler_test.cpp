#include "telemetry/profiler.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/single_server_router.hpp"
#include "telemetry/json.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

namespace tele = rb::telemetry;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tele::SetThisCore(0);
    tele::SetProfiler(nullptr);
  }
  void TearDown() override { tele::SetProfiler(nullptr); }
};

TEST_F(ProfilerTest, CycleClockIsMonotonicAndCalibrated) {
  uint64_t a = tele::ReadCycles();
  uint64_t b = tele::ReadCycles();
  EXPECT_GE(b, a);
  EXPECT_GT(tele::CyclesPerSecond(), 1e6);  // any real clock is >1 MHz
  const char* name = tele::CycleSourceName();
  EXPECT_TRUE(std::string(name) == "tsc" || std::string(name) == "steady_clock");
}

TEST_F(ProfilerTest, InterningIsStableAndNamesRoundTrip) {
  tele::ScopeId a = tele::InternScopeName("test/alpha");
  tele::ScopeId b = tele::InternScopeName("test/beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, tele::InternScopeName("test/alpha"));
  EXPECT_EQ(tele::ScopeName(a), "test/alpha");
  EXPECT_EQ(tele::ScopeName(b), "test/beta");
}

TEST_F(ProfilerTest, NestedScopesProduceHierarchyAndSelfTime) {
  tele::Profiler prof;
  tele::ScopeId outer = tele::InternScopeName("test/outer");
  tele::ScopeId inner = tele::InternScopeName("test/inner");

  for (int i = 0; i < 10; ++i) {
    prof.Begin(outer);
    prof.AddWork(1, 100);
    prof.Begin(inner);
    prof.AddWork(1, 60);
    prof.End();
    prof.End();
  }

  tele::ProfileSnapshot snap = prof.Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  const tele::ProfileNode& o = snap.roots[0];
  EXPECT_EQ(o.name, "test/outer");
  EXPECT_EQ(o.calls, 10u);
  EXPECT_EQ(o.packets, 10u);
  EXPECT_EQ(o.bytes, 1000u);
  ASSERT_EQ(o.children.size(), 1u);
  const tele::ProfileNode& in = o.children[0];
  EXPECT_EQ(in.name, "test/inner");
  EXPECT_EQ(in.calls, 10u);
  EXPECT_EQ(in.packets, 10u);
  EXPECT_EQ(in.bytes, 600u);
  // Inclusive outer >= inner; self = outer - inner.
  EXPECT_GE(o.cycles, in.cycles);
  EXPECT_EQ(o.self_cycles, o.cycles - in.cycles);
  EXPECT_EQ(in.self_cycles, in.cycles);  // leaf
  EXPECT_EQ(snap.TotalCycles(), o.cycles);

  // Find and AggregateByName see both scopes.
  EXPECT_NE(snap.Find("test/inner"), nullptr);
  std::vector<tele::ScopeTotals> agg = snap.AggregateByName();
  ASSERT_EQ(agg.size(), 2u);
}

TEST_F(ProfilerTest, SameScopeAtDifferentPositionsAggregates) {
  tele::Profiler prof;
  tele::ScopeId a = tele::InternScopeName("test/posA");
  tele::ScopeId b = tele::InternScopeName("test/posB");
  tele::ScopeId shared = tele::InternScopeName("test/shared");

  prof.Begin(a);
  prof.Begin(shared);
  prof.AddWork(1, 0);
  prof.End();
  prof.End();
  prof.Begin(b);
  prof.Begin(shared);
  prof.AddWork(2, 0);
  prof.End();
  prof.End();

  tele::ProfileSnapshot snap = prof.Snapshot();
  EXPECT_EQ(snap.roots.size(), 2u);
  for (const tele::ScopeTotals& t : snap.AggregateByName()) {
    if (t.name == "test/shared") {
      EXPECT_EQ(t.calls, 2u);
      EXPECT_EQ(t.packets, 3u);
    }
  }
}

TEST_F(ProfilerTest, ShardsFromDifferentCoresMergeByPath) {
  tele::Profiler prof;
  tele::ScopeId s = tele::InternScopeName("test/sharded");

  tele::SetThisCore(2);
  prof.Begin(s);
  prof.AddWork(5, 0);
  prof.End();

  tele::SetThisCore(7);
  prof.Begin(s);
  prof.AddWork(3, 0);
  prof.End();
  tele::SetThisCore(0);

  tele::ProfileSnapshot snap = prof.Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);  // same path -> one merged node
  EXPECT_EQ(snap.roots[0].calls, 2u);
  EXPECT_EQ(snap.roots[0].packets, 8u);
}

TEST_F(ProfilerTest, ConcurrentWritersOnDistinctCoresDoNotInterfere) {
  tele::Profiler prof;
  tele::ScopeId s = tele::InternScopeName("test/threads");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&prof, s, t] {
      tele::SetThisCore(t + 1);  // distinct shard per thread
      for (int i = 0; i < kIters; ++i) {
        prof.Begin(s);
        prof.AddWork(1, 64);
        prof.End();
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  tele::ProfileSnapshot snap = prof.Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].calls, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.roots[0].packets, static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(ProfilerTest, ResetClearsAllShards) {
  tele::Profiler prof;
  tele::ScopeId s = tele::InternScopeName("test/reset");
  prof.Begin(s);
  prof.AddWork(1, 1);
  prof.End();
  EXPECT_FALSE(prof.Snapshot().roots.empty());
  prof.Reset();
  EXPECT_TRUE(prof.Snapshot().roots.empty());
}

TEST_F(ProfilerTest, DepthOverflowIsContainedNotCorrupting) {
  tele::Profiler prof;
  tele::ScopeId s = tele::InternScopeName("test/deep");
  constexpr size_t kDeep = tele::Profiler::kMaxDepth + 8;
  for (size_t i = 0; i < kDeep; ++i) {
    prof.Begin(s);
  }
  for (size_t i = 0; i < kDeep; ++i) {
    prof.End();
  }
  tele::ProfileSnapshot snap = prof.Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);  // tree still well-formed
}

TEST_F(ProfilerTest, MacrosAreNoOpsWithoutInstalledProfiler) {
  // No profiler installed: the macros must be safe (and cheap).
  ASSERT_EQ(tele::CurrentProfiler(), nullptr);
  {
    RB_PROF_SCOPE(tele::InternScopeName("test/noop"));
    RB_PROF_WORK(1, 64);
  }
  // Installing afterwards starts from a clean slate.
  tele::Profiler prof;
  tele::SetProfiler(&prof);
  EXPECT_EQ(tele::CurrentProfiler(), &prof);
  tele::SetProfiler(nullptr);
  EXPECT_TRUE(prof.Snapshot().roots.empty());
}

TEST_F(ProfilerTest, SnapshotJsonRoundTripsThroughParser) {
  tele::Profiler prof;
  prof.Begin(tele::InternScopeName("test/json_outer"));
  prof.AddWork(4, 256);
  prof.Begin(tele::InternScopeName("test/json_inner"));
  prof.End();
  prof.End();

  tele::ProfileSnapshot snap = prof.Snapshot();
  std::string json = snap.ToJson();
  tele::JsonValue v;
  std::string error;
  ASSERT_TRUE(tele::ParseJson(json, &v, &error)) << error << "\n" << json;
  EXPECT_GT(v.Find("cycles_per_sec")->NumberOr(0), 0);
  const tele::JsonValue* scopes = v.Find("scopes");
  ASSERT_NE(scopes, nullptr);
  ASSERT_TRUE(scopes->is_array());
  ASSERT_EQ(scopes->arr.size(), 1u);
  EXPECT_EQ(scopes->arr[0].Find("name")->str, "test/json_outer");
  EXPECT_DOUBLE_EQ(scopes->arr[0].Find("packets")->NumberOr(0), 4.0);
  const tele::JsonValue* children = scopes->arr[0].Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->arr.size(), 1u);
  EXPECT_EQ(children->arr[0].Find("name")->str, "test/json_inner");
}

// End-to-end: a real pipeline run with the profiler installed produces a
// task -> element hierarchy whose roots explain nearly all measured cycles.
// (Needs the RB_PROFILE instrumentation compiled in — the default build.)
#if defined(RB_PROFILE) && RB_PROFILE
TEST_F(ProfilerTest, EndToEndPipelineProfileCoversMeasuredCycles) {
  SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 1;
  cfg.cores = 1;
  cfg.app = App::kIpRouting;
  cfg.pool_packets = 8192;
  cfg.table.num_routes = 4096;
  SingleServerRouter router(cfg);
  router.Initialize();
  SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  gen_cfg.random_dst = true;
  SyntheticGenerator gen(gen_cfg);

  tele::Profiler prof;
  tele::SetProfiler(&prof);
  tele::ScopeId harness = tele::InternScopeName("test/harness");

  const uint64_t t0 = tele::ReadCycles();
  uint64_t forwarded = 0;
  Packet* burst[64];
  {
    RB_PROF_SCOPE(harness);
    int done = 0;
    while (done < 4000) {
      FrameSpec spec = gen.Next();
      if (router.table().Lookup(spec.flow.dst_ip) == LpmTable::kNoRoute) {
        continue;
      }
      Packet* p = AllocFrame(spec, &router.pool());
      ASSERT_NE(p, nullptr);
      router.DeliverFrame(done % 2, p, 0.0);
      done++;
      if (done % 512 == 0 || done == 4000) {
        router.RunUntilIdle();
        for (int port = 0; port < 2; ++port) {
          size_t n;
          while ((n = router.DrainPort(port, burst, 64)) > 0) {
            for (size_t i = 0; i < n; ++i) {
              router.pool().Free(burst[i]);
            }
            forwarded += n;
          }
        }
      }
    }
  }
  const uint64_t raw = tele::ReadCycles() - t0;
  tele::SetProfiler(nullptr);

  EXPECT_GT(forwarded, 0u);
  tele::ProfileSnapshot snap = prof.Snapshot();
  // Everything ran under test/harness, so there is exactly one root and
  // its inclusive cycles must explain >= 95% of the raw delta (the
  // acceptance bar for scope attribution).
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].name, "test/harness");
  EXPECT_GE(static_cast<double>(snap.TotalCycles()),
            0.95 * static_cast<double>(raw));
  EXPECT_LE(snap.TotalCycles(), raw);

  // The instrumented hot paths all appear: tasks, elements, and the
  // lookup phase scope nested beneath the IPLookup element.
  bool saw_task = false;
  bool saw_lpm = false;
  for (const tele::ScopeTotals& t : snap.AggregateByName()) {
    if (t.name.rfind("task/", 0) == 0) {
      saw_task = true;
    }
    if (t.name == "phase/lpm_lookup") {
      saw_lpm = true;
      EXPECT_GT(t.calls, 0u);
    }
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_lpm);
}
#endif  // RB_PROFILE

}  // namespace
}  // namespace rb
