#include "telemetry/latency_stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

namespace rb {
namespace {

using telemetry::LatencyBuckets;
using telemetry::LatencyHistogram;
using telemetry::LatencySnapshot;

// --- bucket geometry -------------------------------------------------

TEST(LatencyBucketsTest, UnitBucketsAreExactBelowSubCount) {
  // Values below 2^kSubBits land in one-value-wide buckets: Index is the
  // identity and [LowerNs, UpperNs) is [v, v+1).
  constexpr uint64_t kSub = uint64_t{1} << LatencyBuckets::kSubBits;
  for (uint64_t v = 0; v < kSub; ++v) {
    size_t idx = LatencyBuckets::Index(v);
    EXPECT_EQ(idx, static_cast<size_t>(v));
    EXPECT_EQ(LatencyBuckets::LowerNs(idx), v);
    EXPECT_EQ(LatencyBuckets::UpperNs(idx), v + 1);
  }
}

TEST(LatencyBucketsTest, IndexLowerUpperRoundTripAtOctaveBoundaries) {
  // At every octave boundary 2^e, the value must land in the bucket whose
  // [lower, upper) range contains it, and the exact power of two must be
  // its bucket's lower edge (a new octave starts there).
  for (int e = LatencyBuckets::kSubBits; e <= 39; ++e) {
    const uint64_t v = uint64_t{1} << e;
    for (uint64_t probe : {v - 1, v, v + 1}) {
      size_t idx = LatencyBuckets::Index(probe);
      EXPECT_LE(LatencyBuckets::LowerNs(idx), probe)
          << "probe " << probe << " below its bucket";
      EXPECT_GT(LatencyBuckets::UpperNs(idx), probe)
          << "probe " << probe << " at/above its bucket's upper edge";
    }
    EXPECT_EQ(LatencyBuckets::LowerNs(LatencyBuckets::Index(v)), v)
        << "2^" << e << " must open its own bucket";
  }
}

TEST(LatencyBucketsTest, IndexIsMonotoneAcrossSubBucketEdges) {
  // Sweep a few octaves edge by edge: Index never decreases and each
  // sub-bucket's lower edge maps to a strictly larger index than the
  // previous sub-bucket's.
  size_t prev = 0;
  for (int e = LatencyBuckets::kSubBits; e < LatencyBuckets::kSubBits + 8; ++e) {
    const uint64_t base = uint64_t{1} << e;
    const uint64_t step = base >> LatencyBuckets::kSubBits;
    for (uint64_t sub = 0; sub < (uint64_t{1} << LatencyBuckets::kSubBits); ++sub) {
      size_t idx = LatencyBuckets::Index(base + sub * step);
      EXPECT_GT(idx, prev);
      prev = idx;
      // Everything inside the sub-bucket shares the index.
      EXPECT_EQ(LatencyBuckets::Index(base + sub * step + step - 1), idx);
    }
  }
}

TEST(LatencyBucketsTest, HugeValuesClampToTopBucket) {
  const size_t top = LatencyBuckets::kCount - 1;
  EXPECT_EQ(LatencyBuckets::Index(~uint64_t{0}), top);
  EXPECT_EQ(LatencyBuckets::Index(uint64_t{1} << 63), top);
  // The top bucket still has a finite, ordered range.
  EXPECT_GT(LatencyBuckets::UpperNs(top), LatencyBuckets::LowerNs(top));
}

TEST(LatencyBucketsTest, RelativeResolutionIsBoundedBySubBucketWidth) {
  // The design claim: ~6% relative resolution (1/16 of an octave) above
  // the unit-bucket region. Check the bucket width against its lower edge.
  for (uint64_t v : {100ull, 1000ull, 123456ull, 7654321ull, 1ull << 30}) {
    size_t idx = LatencyBuckets::Index(v);
    uint64_t lo = LatencyBuckets::LowerNs(idx);
    uint64_t hi = LatencyBuckets::UpperNs(idx);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo), 1.0 / 16.0 + 1e-9)
        << "bucket around " << v << " wider than a 1/16 octave";
  }
}

// --- histogram + snapshot semantics ----------------------------------

TEST(LatencyHistogramTest, SnapshotReconstructsCountMinMax) {
  LatencyHistogram h;
  telemetry::SetThisCore(0);
  h.ObserveNs(3);      // unit bucket: exact
  h.ObserveNs(3);
  h.ObserveNs(1000);   // log bucket: min/max are bucket edges
  LatencySnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min_ns, 3u);  // unit bucket lower edge == value
  // max is the inclusive upper edge of 1000's bucket — within one
  // sub-bucket (1/16 octave) above the value, never below it.
  EXPECT_GE(s.max_ns, 1000u);
  EXPECT_LE(s.max_ns, 1063u);
}

TEST(LatencyHistogramTest, SnapshotMeanWithinBucketResolution) {
  LatencyHistogram h;
  telemetry::SetThisCore(0);
  Rng rng(7);
  double exact_sum = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = 500 + rng.NextBounded(1000000);
    exact_sum += static_cast<double>(v);
    h.ObserveNs(v);
  }
  LatencySnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kN));
  // Midpoint reconstruction: within the ~6% sub-bucket width (use 4% —
  // midpoints cancel much of the error on a spread-out distribution).
  double exact_mean = exact_sum / kN;
  EXPECT_NEAR(s.mean_ns(), exact_mean, exact_mean * 0.04);
}

TEST(LatencyHistogramTest, MergesAcrossCoreShards) {
  LatencyHistogram h;
  for (int core = 0; core < 5; ++core) {
    telemetry::SetThisCore(core);
    h.ObserveNs(100);
  }
  telemetry::SetThisCore(0);
  EXPECT_EQ(h.Snapshot().count, 5u);
}

TEST(LatencySnapshotTest, PercentileAtBucketEdges) {
  LatencyHistogram h;
  telemetry::SetThisCore(0);
  // 100 observations of one unit-bucket value: every percentile is that
  // value exactly (the envelope clip pins interpolation to min == max).
  for (int i = 0; i < 100; ++i) {
    h.ObserveNs(7);
  }
  LatencySnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.PercentileNs(0), 7.0);
  EXPECT_DOUBLE_EQ(s.PercentileNs(50), 7.0);
  EXPECT_DOUBLE_EQ(s.PercentileNs(100), 7.0);
}

TEST(LatencySnapshotTest, PercentileSplitsMassAcrossTwoBuckets) {
  LatencyHistogram h;
  telemetry::SetThisCore(0);
  // Half the mass at 2, half at 10: p25 must read from 2's bucket, p75
  // from 10's, and p50 sits at the boundary between them.
  for (int i = 0; i < 50; ++i) {
    h.ObserveNs(2);
    h.ObserveNs(10);
  }
  LatencySnapshot s = h.Snapshot();
  EXPECT_NEAR(s.PercentileNs(25), 2.0, 1.0);
  EXPECT_NEAR(s.PercentileNs(75), 10.0, 1.0);
  EXPECT_LT(s.PercentileNs(25), s.PercentileNs(75));
}

TEST(LatencySnapshotTest, P999OnHeavyTailedDistribution) {
  // 1% of packets take ~100x longer (the §6.2 story: queueing tails).
  // p50 must sit in the body, p999 in the tail — the log buckets must
  // keep both meaningful simultaneously.
  LatencyHistogram h;
  telemetry::SetThisCore(0);
  Rng rng(42);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = (rng.NextBounded(100) == 0) ? 1000000 + rng.NextBounded(500000)
                                             : 10000 + rng.NextBounded(5000);
    h.ObserveNs(v);
  }
  LatencySnapshot s = h.Snapshot();
  double p50 = s.PercentileNs(50);
  double p99 = s.PercentileNs(99);
  double p999 = s.PercentileNs(99.9);
  EXPECT_GE(p50, 10000.0 * 0.94);
  EXPECT_LE(p50, 15000.0 * 1.07);
  EXPECT_GE(p999, 1000000.0 * 0.94);  // tail resolved, not smeared
  EXPECT_LE(p999, 1500000.0 * 1.07);
  EXPECT_LT(p50, p99);
  EXPECT_LT(p99, p999);
  EXPECT_EQ(s.count, static_cast<uint64_t>(kN));
}

TEST(LatencySnapshotTest, EmptySnapshotIsAllZero) {
  LatencyHistogram h;
  LatencySnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(s.PercentileNs(50), 0.0);
  EXPECT_DOUBLE_EQ(s.PercentileNs(99.9), 0.0);
}

TEST(LatencyStatsTest, IngressStampKillSwitchRoundTrips) {
  // Default on; off and back on must round-trip (bench_latency's A/B and
  // any deployment shedding the stamp depend on this).
  EXPECT_TRUE(telemetry::IngressStampEnabled());
  telemetry::SetIngressStampEnabled(false);
  EXPECT_FALSE(telemetry::IngressStampEnabled());
  telemetry::SetIngressStampEnabled(true);
  EXPECT_TRUE(telemetry::IngressStampEnabled());
}

}  // namespace
}  // namespace rb
