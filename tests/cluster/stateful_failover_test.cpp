// Differential stateful-failover test (DESIGN.md §17): the SCR claim,
// end to end in the DES. Establish a fixed flow population, kill a node
// mid-run, keep the same flows talking, and compare final NAT mappings
// against an identical run with no failure. SCR mode must reconstruct
// byte-identical mappings; the shared-state baseline must demonstrably
// lose every flow homed at the dead node.
#include <gtest/gtest.h>

#include "cluster/des.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

constexpr int kFlows = 64;
constexpr double kFailTime = 2e-3;
constexpr uint16_t kDeadNode = 2;

ClusterConfig StatefulRb4(StateMode mode, bool with_failure) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.seed = 7;
  cfg.stateful.enabled = true;
  cfg.stateful.mode = mode;
  cfg.stateful.capacity_per_node = 1 << 10;
  cfg.stateful.checkpoint_period = 64;
  if (with_failure) {
    cfg.failures.NodeDown(kDeadNode, kFailTime);
  }
  return cfg;
}

// Phase A establishes every flow before the failure; phase B re-sends
// the same flows afterwards. Injection is identical across runs, so any
// mapping difference is the failover's doing. Flows enter at node 0
// (alive throughout) so packets reach the ingress state update even
// while their *state home* is the dead node.
ClusterRunStats DriveFlows(ClusterSim* sim) {
  const double gap = 10e-6;
  SimTime t = 0;
  uint64_t seq = 0;
  for (int round = 0; round < 3; ++round) {      // phase A: establish
    for (uint64_t f = 0; f < kFlows; ++f, t += gap) {
      sim->Inject(0, 1, f, seq++, 64, t);
    }
  }
  t = kFailTime + 1e-3;                          // phase B: after failover
  for (int round = 0; round < 3; ++round) {
    for (uint64_t f = 0; f < kFlows; ++f, t += gap) {
      sim->Inject(0, 1, f, seq++, 64, t);
    }
  }
  return sim->Finish(t + 1e-3);
}

TEST(StatefulFailoverTest, ScrModePreservesEstablishedMappingsAcrossNodeKill) {
  ClusterSim baseline(StatefulRb4(StateMode::kScr, /*with_failure=*/false));
  ClusterRunStats base_stats = DriveFlows(&baseline);
  const auto base_map = baseline.stateful_plane()->MappingSnapshot();
  ASSERT_EQ(base_map.size(), static_cast<size_t>(kFlows));

  ClusterSim failed(StatefulRb4(StateMode::kScr, /*with_failure=*/true));
  ClusterRunStats fail_stats = DriveFlows(&failed);
  const auto fail_map = failed.stateful_plane()->MappingSnapshot();

  EXPECT_EQ(base_map, fail_map)
      << "SCR failover must reconstruct byte-identical established-flow mappings";
  EXPECT_EQ(fail_stats.stateful.lost_flows, 0u);
  EXPECT_GT(fail_stats.stateful.failovers, 0u);
  EXPECT_GT(fail_stats.stateful.replays, 0u);
  EXPECT_EQ(base_stats.stateful.failovers, 0u);
  // Bounded replay: at most snapshot + one checkpoint period of records
  // per failed-over shard.
  EXPECT_LE(fail_stats.stateful.replayed_records,
            fail_stats.stateful.replays * StatefulRb4(StateMode::kScr, true)
                                              .stateful.checkpoint_period);
  EXPECT_EQ(AuditConservation(fail_stats), "");
}

TEST(StatefulFailoverTest, SharedModeDemonstrablyLosesFlowsHomedAtDeadNode) {
  ClusterSim baseline(StatefulRb4(StateMode::kShared, /*with_failure=*/false));
  DriveFlows(&baseline);
  const auto base_map = baseline.stateful_plane()->MappingSnapshot();
  ASSERT_EQ(base_map.size(), static_cast<size_t>(kFlows));

  ClusterSim failed(StatefulRb4(StateMode::kShared, /*with_failure=*/true));
  ClusterRunStats fail_stats = DriveFlows(&failed);
  const auto fail_map = failed.stateful_plane()->MappingSnapshot();

  EXPECT_GT(fail_stats.stateful.lost_flows, 0u);
  EXPECT_NE(base_map, fail_map);
  // Every flow homed at the dead node re-established under a different
  // mapping (bumped incarnation); flows homed elsewhere are untouched.
  const int nodes = baseline.config().num_nodes;
  for (const auto& [flow, mapping] : base_map) {
    const int home = static_cast<int>(flow % static_cast<uint64_t>(nodes));
    auto it = fail_map.find(flow);
    ASSERT_NE(it, fail_map.end()) << "flow " << flow << " re-establishes in phase B";
    if (home == kDeadNode) {
      EXPECT_NE(it->second, mapping) << "flow " << flow << " must have lost its mapping";
    } else {
      EXPECT_EQ(it->second, mapping) << "flow " << flow << " was not homed at the dead node";
    }
  }
  EXPECT_EQ(AuditConservation(fail_stats), "");
}

TEST(StatefulFailoverTest, StatefulPlaneDisabledByDefault) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  ClusterSim sim(cfg);
  EXPECT_EQ(sim.stateful_plane(), nullptr);
  sim.Inject(0, 1, 1, 0, 64, 0);
  ClusterRunStats stats = sim.Finish(1e-3);
  EXPECT_EQ(stats.stateful.packets, 0u);
}

TEST(StatefulFailoverTest, BlindWindowCountsStateUnavailable) {
  // Between ground-truth death and detection, packets whose state home
  // is the dead node find no reachable owner: counted, still forwarded.
  ClusterConfig cfg = StatefulRb4(StateMode::kScr, /*with_failure=*/true);
  cfg.failure_detection_delay = 500e-6;
  ClusterSim sim(cfg);
  const double gap = 10e-6;
  uint64_t seq = 0;
  // Flow homed at the dead node (flow_id % 4 == 2), injected at node 0
  // continuously across the failure.
  for (SimTime t = 0; t < 4e-3; t += gap) {
    sim.Inject(0, 1, kDeadNode, seq++, 64, t);
  }
  ClusterRunStats stats = sim.Finish(5e-3);
  EXPECT_GT(stats.stateful.state_unavailable, 0u);
  EXPECT_GT(stats.stateful.failovers, 0u);
  EXPECT_GT(stats.delivered_packets, 0u);
}

}  // namespace
}  // namespace rb
