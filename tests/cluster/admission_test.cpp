// AdmissionDrr: fair per-output-port overload shedding, hysteretic
// engagement, dead-destination drops, and pass-through at normal load.
#include "cluster/admission.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/failure.hpp"

namespace rb {
namespace {

// Drives a deterministic arrival process: packets of `bytes` arrive
// back-to-back at `offered_bps` aggregate, destinations cycling through
// `weights` proportionally (port j gets weights[j] shares per cycle).
struct Driver {
  AdmissionDrr* drr;
  uint32_t bytes;
  double offered_bps;
  SimTime now = 0;

  void Run(const std::vector<int>& weights, int cycles, size_t depth = 0) {
    double gap = static_cast<double>(bytes) * 8.0 / offered_bps;
    for (int c = 0; c < cycles; ++c) {
      for (uint16_t port = 0; port < weights.size(); ++port) {
        for (int k = 0; k < weights[port]; ++k) {
          drr->Admit(port, bytes, now, depth);
          now += gap;
        }
      }
    }
  }
};

TEST(AdmissionTest, PassThroughUnderCapacity) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bps = 1e9;
  AdmissionDrr drr(cfg, 4);
  Driver d{&drr, 1250, 0.5e9};  // half of capacity
  d.Run({1, 1, 1, 1}, 500);
  EXPECT_FALSE(drr.engaged());
  EXPECT_EQ(drr.dropped_packets(), 0u) << "no drops while disengaged";
  EXPECT_EQ(drr.admitted_packets(), drr.offered_packets());
}

TEST(AdmissionTest, FairShareUnderSkewedOverload) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bps = 1e9;
  AdmissionDrr drr(cfg, 4);
  // 2x overload, port 0 demanding 3 shares vs 2:2:2 — every port's demand
  // exceeds the fair share capacity/4, so admitted bytes must equalize.
  Driver d{&drr, 1250, 2e9};
  d.Run({3, 2, 2, 2}, 2000);
  EXPECT_TRUE(drr.engaged());
  EXPECT_GT(drr.dropped_packets(), 0u);

  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  uint64_t total = 0;
  for (uint16_t p = 0; p < 4; ++p) {
    uint64_t b = drr.admitted_bytes(p);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
    total += b;
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LE(static_cast<double>(hi) / static_cast<double>(lo), 1.05)
      << "DRR must clip every overloaded port to the same share";
  // Aggregate admitted rate ~ capacity (non-work-conserving cap).
  double admitted_bps = static_cast<double>(total) * 8.0 / d.now;
  EXPECT_GT(admitted_bps, 0.85 * cfg.capacity_bps);
  EXPECT_LT(admitted_bps, 1.15 * cfg.capacity_bps);
}

TEST(AdmissionTest, UnderloadedPortKeepsItsDemand) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bps = 1e9;
  AdmissionDrr drr(cfg, 4);
  // Port 3 wants well under its fair share; ports 0-2 are overloaded.
  // min(demand, fair share): port 3 loses (almost) nothing.
  Driver d{&drr, 1250, 2e9};
  d.Run({5, 5, 5, 1}, 2000);
  EXPECT_TRUE(drr.engaged());
  uint64_t offered3 = 2000ull * 1250;
  EXPECT_GT(drr.admitted_bytes(3), static_cast<uint64_t>(0.95 * offered3));
}

TEST(AdmissionTest, DeadDestinationsDroppedRegardless) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bps = 10e9;
  AdmissionDrr drr(cfg, 4);
  HealthView health(4);
  drr.set_health(&health);
  health.SetNodeAlive(2, false);

  Driver d{&drr, 1250, 1e9};  // light load: disengaged
  d.Run({1, 1, 1, 1}, 100);
  EXPECT_EQ(drr.dropped_dead(), 100u) << "dead-port packets drop even while disengaged";
  EXPECT_EQ(drr.admitted_bytes(2), 0u);
  EXPECT_EQ(drr.dropped_packets(), 0u) << "dead drops are not deficit drops";
}

TEST(AdmissionTest, EngagementHysteresis) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bps = 1e9;
  cfg.rate_tau_s = 1e-3;
  AdmissionDrr drr(cfg, 2);
  Driver d{&drr, 1250, 2e9};
  d.Run({1, 1}, 400);  // several rate windows at 2x
  EXPECT_TRUE(drr.engaged());
  EXPECT_EQ(drr.engage_events(), 1u);

  // Drop to well under the release margin: disengages after the
  // estimator window turns over, and stays disengaged (no flapping).
  d.offered_bps = 0.3e9;
  d.Run({1, 1}, 400);
  EXPECT_FALSE(drr.engaged());
  EXPECT_EQ(drr.engage_events(), 1u);

  // Depth signal alone forces engagement even at low offered rate.
  d.Run({1, 1}, 50, /*depth=*/cfg.engage_depth + 1);
  EXPECT_TRUE(drr.engaged());
  EXPECT_EQ(drr.engage_events(), 2u);
}

}  // namespace
}  // namespace rb
