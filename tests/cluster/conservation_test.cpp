// Drop-accounting audit: every DES scenario must satisfy
// AuditConservation — arrivals == delivered + Σ drop-taxonomy buckets,
// with the per-window timeline reproducing the totals exactly — and each
// drop must land in the bucket naming its actual cause.
#include <gtest/gtest.h>

#include <string>

#include "cluster/des.hpp"
#include "workload/synthetic.hpp"
#include "workload/traffic_matrix.hpp"

namespace rb {
namespace {

ClusterRunStats RunScenario(ClusterConfig cfg, const TrafficMatrix& tm, double per_input_bps,
                    double duration = 0.01, uint32_t pkt_bytes = 300) {
  cfg.timeline_window = duration / 5;  // arm the timeline cross-check too
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(pkt_bytes);
  return sim.RunUniform(tm, per_input_bps, &sizes, duration);
}

void ExpectConserved(const ClusterRunStats& stats, const std::string& scenario) {
  std::string audit = AuditConservation(stats);
  EXPECT_TRUE(audit.empty()) << scenario << ": " << audit;
  EXPECT_GT(stats.offered_packets, 0u) << scenario << " offered nothing";
}

TEST(ConservationTest, UniformNominalLoad) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 5e9);
  ExpectConserved(s, "uniform 0.5x");
  EXPECT_EQ(s.drops.total(), 0u) << "nominal load should be loss-free";
}

TEST(ConservationTest, OverloadWithoutAdmission) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.cpu_queue_pkts = 512;  // force queue-overflow drops
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 25e9);
  ExpectConserved(s, "uniform 2.5x no admission");
  EXPECT_GT(s.drops.total(), 0u);
  EXPECT_EQ(s.drops.admission, 0u) << "admission disabled must never fill its bucket";
}

TEST(ConservationTest, OverloadWithAdmission) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.admission.enabled = true;
  cfg.admission.capacity_bps = cfg.ext_rate_bps;
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 25e9);
  ExpectConserved(s, "uniform 2.5x admission on");
  EXPECT_GT(s.drops.admission, 0u) << "2.5x overload must shed at the admission stage";
}

TEST(ConservationTest, NodeFailureMidRun) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.failures.NodeDown(2, 0.003).NodeUp(2, 0.007);
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 8e9);
  ExpectConserved(s, "node 2 down/up");
  EXPECT_GT(s.drops.failed_node, 0u);
}

TEST(ConservationTest, LinkFailure) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.failures.LinkDown(0, 3, 0.002);
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 8e9);
  ExpectConserved(s, "link 0->3 down");
}

TEST(ConservationTest, ResequencerHoldsAreNotLeaks) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.resequence = true;
  cfg.resequence_timeout = 5e-4;
  cfg.vlb.flowlets = false;  // maximize reordering -> resequencer work
  cfg.cpu_queue_pkts = 512;
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 15e9);
  ExpectConserved(s, "resequencer under loss");
}

TEST(ConservationTest, HotspotMatrix) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Hotspot(4, 1, 0.7), 12e9);
  ExpectConserved(s, "hotspot 70% to node 1");
}

TEST(ConservationTest, TwoNodeMesh) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.num_nodes = 2;
  cfg.vlb.num_nodes = 2;
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(2), 8e9);
  ExpectConserved(s, "2-node mesh");
}

TEST(ConservationTest, AdmissionPlusFailures) {
  // The interaction case: dead-destination traffic must land in the
  // admission bucket (dropped at ingress), not double-count with the
  // failed_node bucket, and the audit must still balance.
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.admission.enabled = true;
  cfg.admission.capacity_bps = cfg.ext_rate_bps;
  cfg.failures.NodeDown(1, 0.002);
  ClusterRunStats s = RunScenario(cfg, TrafficMatrix::Uniform(4), 12e9);
  ExpectConserved(s, "admission + node failure");
  EXPECT_GT(s.drops.admission, 0u)
      << "post-detection dead-destination traffic sheds at ingress";
}

TEST(ConservationTest, MidRunIdentityHoldsBetweenInjections) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.cpu_queue_pkts = 256;
  ClusterSim sim(cfg);
  Rng rng(11);
  uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    SimTime t = static_cast<SimTime>(i) * 2e-7;
    sim.Inject(static_cast<uint16_t>(rng.NextBounded(4)),
               static_cast<uint16_t>(rng.NextBounded(4)), 1, seq++, 300, t);
    if (i % 500 == 0) {
      uint64_t accounted = sim.current_delivered() + sim.current_drops().total() +
                           sim.in_flight() + sim.resequencer_held();
      ASSERT_EQ(sim.current_offered(), accounted)
          << "conservation identity must hold at every event boundary";
    }
  }
  ClusterRunStats s = sim.Finish(5000 * 2e-7);
  ExpectConserved(s, "mid-run identity scenario");
}

}  // namespace
}  // namespace rb
