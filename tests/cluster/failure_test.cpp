#include "cluster/failure.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FailureScheduleTest, EventsSortByTimeStably) {
  FailureSchedule sched;
  sched.NodeDown(2, 0.5);
  sched.LinkDown(0, 3, 0.1);
  sched.NodeUp(2, 0.5);  // same instant as the down: insertion order wins
  const auto& evs = sched.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, FailureKind::kLinkDown);
  EXPECT_EQ(evs[1].kind, FailureKind::kNodeDown);
  EXPECT_EQ(evs[2].kind, FailureKind::kNodeUp);
}

TEST(FailureScheduleTest, FluentBuilderRecordsFields) {
  FailureSchedule sched;
  sched.LinkDown(1, 4, 0.25).LinkUp(1, 4, 0.75);
  const auto& evs = sched.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_DOUBLE_EQ(evs[0].time, 0.25);
  EXPECT_EQ(evs[0].node, 1);
  EXPECT_EQ(evs[0].peer, 4);
  EXPECT_EQ(evs[1].kind, FailureKind::kLinkUp);
}

TEST(FailureScheduleTest, ParsesNodeAndLinkEntries) {
  FailureSchedule sched;
  ASSERT_TRUE(FailureSchedule::Parse(
      "0.01:node-down:2, 0.02:node-up:2; 0.015:link-down:0-3", &sched));
  const auto& evs = sched.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, FailureKind::kNodeDown);
  EXPECT_EQ(evs[0].node, 2);
  EXPECT_DOUBLE_EQ(evs[0].time, 0.01);
  EXPECT_EQ(evs[1].kind, FailureKind::kLinkDown);
  EXPECT_EQ(evs[1].node, 0);
  EXPECT_EQ(evs[1].peer, 3);
  EXPECT_EQ(evs[2].kind, FailureKind::kNodeUp);
}

TEST(FailureScheduleTest, ParseEmptySpecYieldsEmptySchedule) {
  FailureSchedule sched;
  EXPECT_TRUE(FailureSchedule::Parse("", &sched));
  EXPECT_TRUE(sched.empty());
}

TEST(FailureScheduleTest, ParseRejectsMalformedInput) {
  FailureSchedule sched;
  sched.NodeDown(1, 1.0);  // must be left untouched by failed parses
  EXPECT_FALSE(FailureSchedule::Parse("0.01:node-sideways:2", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("abc:node-down:2", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("-1:node-down:2", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("0.01:node-down:", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("0.01:link-down:3", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("0.01:link-down:3-3", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("0.01:link-down:3-x", &sched));
  EXPECT_FALSE(FailureSchedule::Parse("0.01:node-down:2:junk", &sched));
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.events()[0].node, 1);
}

TEST(FailureScheduleTest, RandomModeIsDeterministicInSeed) {
  auto a = FailureSchedule::RandomNodeFailures(8, 0.05, 0.01, 1.0, 7);
  auto b = FailureSchedule::RandomNodeFailures(8, 0.05, 0.01, 1.0, 7);
  auto c = FailureSchedule::RandomNodeFailures(8, 0.05, 0.01, 1.0, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
  // A different seed gives a different draw (overwhelmingly likely).
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].time != c.events()[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST(FailureScheduleTest, RandomModeAlternatesDownUpPerNode) {
  auto sched = FailureSchedule::RandomNodeFailures(4, 0.02, 0.005, 1.0, 42);
  ASSERT_FALSE(sched.empty());
  // Per node, events must alternate down, up, down, ... in time order.
  for (uint16_t node = 0; node < 4; ++node) {
    FailureKind expected = FailureKind::kNodeDown;
    for (const FailureEvent& ev : sched.events()) {
      if (ev.node != node) {
        continue;
      }
      EXPECT_EQ(ev.kind, expected);
      EXPECT_LT(ev.time, 1.0);
      expected = expected == FailureKind::kNodeDown ? FailureKind::kNodeUp
                                                    : FailureKind::kNodeDown;
    }
  }
}

TEST(FailureScheduleTest, RandomModeAddingNodesKeepsEarlierDraws) {
  auto small = FailureSchedule::RandomNodeFailures(2, 0.05, 0.01, 1.0, 7);
  auto big = FailureSchedule::RandomNodeFailures(4, 0.05, 0.01, 1.0, 7);
  // Node 0's and node 1's events are identical in both schedules.
  for (uint16_t node = 0; node < 2; ++node) {
    std::vector<SimTime> ts_small;
    std::vector<SimTime> ts_big;
    for (const FailureEvent& ev : small.events()) {
      if (ev.node == node) ts_small.push_back(ev.time);
    }
    for (const FailureEvent& ev : big.events()) {
      if (ev.node == node) ts_big.push_back(ev.time);
    }
    EXPECT_EQ(ts_small, ts_big) << "node " << node;
  }
}

TEST(HealthViewTest, EverythingStartsAlive) {
  HealthView h(4);
  EXPECT_EQ(h.alive_nodes(), 4);
  EXPECT_EQ(h.version(), 0u);
  for (uint16_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.NodeAlive(i));
    for (uint16_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_TRUE(h.LinkUp(i, j));
      }
    }
  }
}

TEST(HealthViewTest, DeadNodeKillsAdjacentLinks) {
  HealthView h(4);
  h.SetNodeAlive(2, false);
  EXPECT_FALSE(h.NodeAlive(2));
  EXPECT_EQ(h.alive_nodes(), 3);
  EXPECT_FALSE(h.LinkUp(0, 2));
  EXPECT_FALSE(h.LinkUp(2, 0));
  EXPECT_TRUE(h.LinkUp(0, 1));
  // Revival restores the links (their own state was never down).
  h.SetNodeAlive(2, true);
  EXPECT_TRUE(h.LinkUp(0, 2));
}

TEST(HealthViewTest, LinkStateIsDirected) {
  HealthView h(4);
  h.SetLinkUp(0, 3, false);
  EXPECT_FALSE(h.LinkUp(0, 3));
  EXPECT_TRUE(h.LinkUp(3, 0));
}

TEST(HealthViewTest, VersionBumpsOnlyOnTransitions) {
  HealthView h(4);
  h.SetNodeAlive(1, true);  // no-op: already alive
  EXPECT_EQ(h.version(), 0u);
  h.SetNodeAlive(1, false);
  EXPECT_EQ(h.version(), 1u);
  h.SetNodeAlive(1, false);  // no-op
  EXPECT_EQ(h.version(), 1u);
  h.SetLinkUp(0, 2, false);
  EXPECT_EQ(h.version(), 2u);
  h.SetLinkUp(0, 2, false);  // no-op
  EXPECT_EQ(h.version(), 2u);
}

}  // namespace
}  // namespace rb
