#include "cluster/flowlet.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FlowletTest, UnknownFlowUnassigned) {
  FlowletTable table(0.1);
  EXPECT_FALSE(table.Lookup(1, 0.0).assigned());
}

TEST(FlowletTest, CommitThenLookupWithinDelta) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{3});
  FlowletPath p = table.Lookup(1, 0.05);
  ASSERT_TRUE(p.assigned());
  EXPECT_FALSE(p.direct());
  EXPECT_EQ(p.via, 3);
}

TEST(FlowletTest, ExpiresAfterDelta) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{3});
  EXPECT_FALSE(table.Lookup(1, 0.2).assigned());
}

TEST(FlowletTest, DirectPathRoundTrips) {
  FlowletTable table(0.1);
  table.Commit(7, 1.0, FlowletPath{FlowletPath::kDirect});
  FlowletPath p = table.Lookup(7, 1.05);
  ASSERT_TRUE(p.assigned());
  EXPECT_TRUE(p.direct());
}

TEST(FlowletTest, RefreshKeepsFlowletAlive) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2});
  // Keep touching it every 0.09 s; it must survive far beyond delta.
  for (int i = 1; i <= 20; ++i) {
    SimTime t = i * 0.09;
    FlowletPath p = table.Lookup(1, t);
    ASSERT_TRUE(p.assigned()) << i;
    table.Commit(1, t, p);
  }
}

TEST(FlowletTest, ExpireSweepRemovesIdleEntries) {
  FlowletTable table(0.01);
  for (uint64_t f = 0; f < 100; ++f) {
    table.Commit(f, 0.0, FlowletPath{1});
  }
  EXPECT_EQ(table.size(), 100u);
  table.Expire(1.0);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowletTest, ExpireIsAmortized) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{1});
  table.Commit(2, 0.05, FlowletPath{2});
  // Less than delta since the last sweep epoch: no-op, both entries stay.
  table.Expire(0.08);
  EXPECT_EQ(table.size(), 2u);
  // Past delta: sweeps, removing only the stale entry 1.
  table.Expire(0.12);
  EXPECT_EQ(table.size(), 1u);
  // Sweep again after the second entry goes stale too.
  table.Expire(0.30);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowletTest, IndependentFlows) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2});
  table.Commit(2, 0.0, FlowletPath{5});
  EXPECT_EQ(table.Lookup(1, 0.01).via, 2);
  EXPECT_EQ(table.Lookup(2, 0.01).via, 5);
}

}  // namespace
}  // namespace rb
