#include "cluster/flowlet.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FlowletTest, UnknownFlowUnassigned) {
  FlowletTable table(0.1);
  EXPECT_FALSE(table.Lookup(1, 0.0).assigned());
}

TEST(FlowletTest, CommitThenLookupWithinDelta) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{3});
  FlowletPath p = table.Lookup(1, 0.05);
  ASSERT_TRUE(p.assigned());
  EXPECT_FALSE(p.direct());
  EXPECT_EQ(p.via, 3);
}

TEST(FlowletTest, ExpiresAfterDelta) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{3});
  EXPECT_FALSE(table.Lookup(1, 0.2).assigned());
}

TEST(FlowletTest, DirectPathRoundTrips) {
  FlowletTable table(0.1);
  table.Commit(7, 1.0, FlowletPath{FlowletPath::kDirect});
  FlowletPath p = table.Lookup(7, 1.05);
  ASSERT_TRUE(p.assigned());
  EXPECT_TRUE(p.direct());
}

TEST(FlowletTest, RefreshKeepsFlowletAlive) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2});
  // Keep touching it every 0.09 s; it must survive far beyond delta.
  for (int i = 1; i <= 20; ++i) {
    SimTime t = i * 0.09;
    FlowletPath p = table.Lookup(1, t);
    ASSERT_TRUE(p.assigned()) << i;
    table.Commit(1, t, p);
  }
}

TEST(FlowletTest, ExpireSweepRemovesIdleEntries) {
  FlowletTable table(0.01);
  for (uint64_t f = 0; f < 100; ++f) {
    table.Commit(f, 0.0, FlowletPath{1});
  }
  EXPECT_EQ(table.size(), 100u);
  table.Expire(1.0);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowletTest, ExpireIsAmortized) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{1});
  table.Commit(2, 0.05, FlowletPath{2});
  // Less than delta since the last sweep epoch: no-op, both entries stay.
  table.Expire(0.08);
  EXPECT_EQ(table.size(), 2u);
  // Past delta: sweeps, removing only the stale entry 1.
  table.Expire(0.12);
  EXPECT_EQ(table.size(), 1u);
  // Sweep again after the second entry goes stale too.
  table.Expire(0.30);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowletTest, IndependentFlows) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2});
  table.Commit(2, 0.0, FlowletPath{5});
  EXPECT_EQ(table.Lookup(1, 0.01).via, 2);
  EXPECT_EQ(table.Lookup(2, 0.01).via, 5);
}

TEST(FlowletTest, InvalidateByViaErasesOnlyMatchingEntries) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{3}, /*dst=*/6);
  table.Commit(2, 0.0, FlowletPath{3}, /*dst=*/7);
  table.Commit(3, 0.0, FlowletPath{4}, /*dst=*/6);
  EXPECT_EQ(table.Invalidate(3, FlowletTable::kAny), 2u);
  EXPECT_FALSE(table.Lookup(1, 0.01).assigned());
  EXPECT_FALSE(table.Lookup(2, 0.01).assigned());
  EXPECT_EQ(table.Lookup(3, 0.01).via, 4);
}

TEST(FlowletTest, InvalidateByDstErasesAllPathsToThatNode) {
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2}, /*dst=*/6);
  table.Commit(2, 0.0, FlowletPath{FlowletPath::kDirect}, /*dst=*/6);
  table.Commit(3, 0.0, FlowletPath{2}, /*dst=*/7);
  EXPECT_EQ(table.Invalidate(FlowletTable::kAny, 6), 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Lookup(3, 0.01).via, 2);
}

TEST(FlowletTest, InvalidateDirectToOneDstSparesViaPaths) {
  // A single link (self -> dst) dying kills only direct flowlets to dst;
  // via-routed flowlets to the same dst still work.
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{FlowletPath::kDirect}, /*dst=*/6);
  table.Commit(2, 0.0, FlowletPath{4}, /*dst=*/6);
  EXPECT_EQ(table.Invalidate(FlowletPath::kDirect, 6), 1u);
  EXPECT_FALSE(table.Lookup(1, 0.01).assigned());
  EXPECT_EQ(table.Lookup(2, 0.01).via, 4);
}

TEST(FlowletTest, InvalidateAnyAnyClearsTable) {
  FlowletTable table(0.1);
  for (uint64_t f = 0; f < 10; ++f) {
    table.Commit(f, 0.0, FlowletPath{static_cast<uint16_t>(f % 3)}, /*dst=*/5);
  }
  EXPECT_EQ(table.Invalidate(FlowletTable::kAny, FlowletTable::kAny), 10u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowletTest, InvalidateUnknownDstIsNoOp) {
  // Entries committed without a dst (kAny) only match dst-wildcard queries.
  FlowletTable table(0.1);
  table.Commit(1, 0.0, FlowletPath{2});
  EXPECT_EQ(table.Invalidate(FlowletTable::kAny, 6), 0u);
  EXPECT_EQ(table.Invalidate(2, FlowletTable::kAny), 1u);
}

}  // namespace
}  // namespace rb
