// Deterministic failure-injection scenarios for the cluster DES: the §3
// graceful-degradation claim, exercised end to end. Ground truth changes at
// the scheduled instant; routing catches up one detection delay later, and
// the blackholed window in between is exactly what the failed_node /
// failed_link drop buckets measure.
#include <gtest/gtest.h>

#include "cluster/des.hpp"
#include "cluster/topology.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

ClusterConfig FailRb4(uint64_t seed = 5) {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.seed = seed;
  return cfg;
}

TEST(FailoverTest, ExternalArrivalsAtDeadNodeAreBlackholed) {
  ClusterConfig cfg = FailRb4();
  cfg.failures.NodeDown(2, 1e-3).NodeUp(2, 2e-3);
  ClusterSim sim(cfg);
  sim.Inject(2, 0, 1, 0, 64, 1.5e-3);  // during the outage: blackholed
  sim.Inject(2, 0, 1, 1, 64, 3e-3);    // after recovery: delivered
  ClusterRunStats stats = sim.Finish(4e-3);
  EXPECT_EQ(stats.drops.failed_node, 1u);
  EXPECT_EQ(stats.delivered_packets, 1u);
  EXPECT_EQ(stats.failure_events_applied, 2u);
}

TEST(FailoverTest, DeadIntermediateStopsAttractingTrafficAfterDetection) {
  // Classic VLB spreads 0 -> 1 over intermediates {2, 3}. Node 3 dies at
  // 5 ms; packets balanced into it during the 200 us detection window (plus
  // anything already in flight) are blackholed, and after detection + a
  // drain margin the failed_node counter must freeze: nothing is routed
  // toward a believed-dead node.
  ClusterConfig cfg = FailRb4();
  cfg.vlb.direct_vlb = false;
  cfg.vlb.flowlets = false;
  cfg.failures.NodeDown(3, 5e-3);
  cfg.failure_detection_delay = 200e-6;
  ClusterSim sim(cfg);
  const double gap = 10e-6;
  SimTime t = 0;
  uint64_t seq = 0;
  for (; t < 7e-3; t += gap, ++seq) {
    sim.Inject(0, 1, seq, 0, 64, t);
  }
  const uint64_t blackholed = sim.current_drops().failed_node;
  EXPECT_GT(blackholed, 0u);  // the detection window is not free
  EXPECT_FALSE(sim.health().NodeAlive(3));
  for (; t < 12e-3; t += gap, ++seq) {
    sim.Inject(0, 1, seq, 0, 64, t);
  }
  ClusterRunStats stats = sim.Finish(12e-3);
  EXPECT_EQ(stats.drops.failed_node, blackholed);
  EXPECT_EQ(stats.offered_packets, stats.delivered_packets + stats.drops.total());
  EXPECT_EQ(stats.failure_events_applied, 1u);
}

TEST(FailoverTest, LinkDownFallsBackToViaRouting) {
  // Direct VLB under budget sends 0 -> 1 on the direct link. The link dies
  // at 2 ms: blackholing is confined to the detection window, after which
  // everything via-routes (failover_reroutes) and delivery resumes.
  ClusterConfig cfg = FailRb4(3);
  cfg.failures.LinkDown(0, 1, 2e-3);
  ClusterSim sim(cfg);
  const double gap = 512.0 / 1e9;  // 64 B at 1 Gbps, well under R/N
  SimTime t = 0;
  uint64_t seq = 0;
  for (; t < 10e-3; t += gap, ++seq) {
    sim.Inject(0, 1, seq % 32, seq / 32, 64, t);
  }
  ClusterRunStats stats = sim.Finish(10e-3);
  EXPECT_GT(stats.drops.failed_link, 0u);
  EXPECT_EQ(stats.drops.failed_node, 0u);
  // Loss is bounded by the detection window (~0.2 ms of a 10 ms run).
  EXPECT_GT(static_cast<double>(stats.delivered_packets) /
                static_cast<double>(stats.offered_packets),
            0.95);
  EXPECT_GT(stats.failover_reroutes, 0u);
  EXPECT_GT(stats.flowlets_invalidated, 0u);
  // The belief is directional: only the 0 -> 1 edge is down.
  EXPECT_FALSE(sim.health().LinkUp(0, 1));
  EXPECT_TRUE(sim.health().LinkUp(1, 0));
  EXPECT_TRUE(sim.health().NodeAlive(1));
}

TEST(FailoverTest, FlowletsRepinOffDeadIntermediate) {
  // Flowlets pinned through a dead intermediate must be invalidated at
  // detection (not blackhole until δ expires): loss stays confined to the
  // detection window even with δ = 100 ms >> the outage response.
  ClusterConfig cfg = FailRb4(9);
  cfg.vlb.direct_vlb = false;  // all flowlets pin to an intermediate
  cfg.vlb.flowlets = true;
  cfg.failures.NodeDown(3, 2e-3);
  ClusterSim sim(cfg);
  const double gap = 5e-6;
  SimTime t = 0;
  uint64_t seq = 0;
  for (; t < 8e-3; t += gap, ++seq) {
    sim.Inject(0, 1, seq % 64, seq / 64, 64, t);
  }
  ClusterRunStats stats = sim.Finish(8e-3);
  EXPECT_GT(stats.flowlets_invalidated, 0u);
  EXPECT_GT(static_cast<double>(stats.delivered_packets) /
                static_cast<double>(stats.offered_packets),
            0.9);
  // Post-detection, re-pinned flowlets all ride intermediate 2; the
  // failed_node drops stem only from the detection window.
  EXPECT_LT(stats.drops.failed_node, stats.offered_packets / 10);
}

TEST(FailoverTest, ThroughputDegradesToBoundAndRecovers) {
  // Uniform traffic, node 1 down for [10 ms, 20 ms): delivered fraction in
  // the failure window settles at the analytic degraded-mesh bound
  // ((N-f)/N)^2 and returns to ~lossless after recovery — graceful
  // degradation, not collapse.
  ClusterConfig cfg = FailRb4(11);
  cfg.failures.NodeDown(1, 10e-3).NodeUp(1, 20e-3);
  cfg.timeline_window = 2e-3;
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(300);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 2.5e9, &sizes, 30e-3);
  ASSERT_GE(stats.timeline.size(), 15u);

  auto delivered_fraction = [&](size_t from, size_t to) {
    uint64_t offered = 0;
    uint64_t delivered = 0;
    for (size_t i = from; i <= to; ++i) {
      offered += stats.timeline[i].offered;
      delivered += stats.timeline[i].delivered;
    }
    return static_cast<double>(delivered) / static_cast<double>(offered);
  };

  const double bound = FullMeshTopology::DegradedUniformDeliveredFraction(4, 1);
  EXPECT_DOUBLE_EQ(bound, 9.0 / 16.0);
  // Before (buckets 0-4, t < 10 ms): essentially lossless.
  EXPECT_GT(delivered_fraction(0, 4), 0.98);
  // During (buckets 6-9, skipping the transition bucket holding the
  // detection transient): at the degraded bound, within 10%.
  EXPECT_NEAR(delivered_fraction(6, 9), bound, bound * 0.1);
  // After (buckets 11-14, past the recovery transition): lossless again.
  EXPECT_GT(delivered_fraction(11, 14), 0.98);

  EXPECT_GT(stats.drops.failed_node, 0u);
  EXPECT_EQ(stats.failure_events_applied, 2u);
}

TEST(FailoverTest, FailureLogRecordsApplyAndDetectTimes) {
  ClusterConfig cfg = FailRb4();
  cfg.failures.NodeDown(2, 1e-3).NodeUp(2, 3e-3);
  cfg.failure_detection_delay = 500e-6;
  ClusterSim sim(cfg);
  sim.Inject(0, 1, 1, 0, 64, 0.0);
  ClusterRunStats stats = sim.Finish(4e-3);
  ASSERT_EQ(stats.failure_log.size(), 2u);
  EXPECT_EQ(stats.failure_log[0].event.kind, FailureKind::kNodeDown);
  EXPECT_DOUBLE_EQ(stats.failure_log[0].applied, 1e-3);
  EXPECT_DOUBLE_EQ(stats.failure_log[0].detected, 1.5e-3);
  EXPECT_EQ(stats.failure_log[1].event.kind, FailureKind::kNodeUp);
  EXPECT_DOUBLE_EQ(stats.failure_log[1].applied, 3e-3);
  EXPECT_DOUBLE_EQ(stats.failure_log[1].detected, 3.5e-3);
  EXPECT_TRUE(sim.health().NodeAlive(2));
  EXPECT_TRUE(sim.node_stats(2).alive);
}

TEST(FailoverTest, DeterministicUnderFixedSeed) {
  auto run = [] {
    ClusterConfig cfg = FailRb4(77);
    cfg.failures.NodeDown(2, 3e-3).NodeUp(2, 6e-3);
    cfg.timeline_window = 1e-3;
    ClusterSim sim(cfg);
    FixedSizeDistribution sizes(64);
    auto tm = TrafficMatrix::Uniform(4);
    return sim.RunUniform(tm, 2e9, &sizes, 10e-3);
  };
  ClusterRunStats a = run();
  ClusterRunStats b = run();
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.drops.failed_node, b.drops.failed_node);
  EXPECT_EQ(a.failover_reroutes, b.failover_reroutes);
  EXPECT_EQ(a.flowlet_repins, b.flowlet_repins);
  EXPECT_EQ(a.flowlets_invalidated, b.flowlets_invalidated);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].offered, b.timeline[i].offered) << i;
    EXPECT_EQ(a.timeline[i].delivered, b.timeline[i].delivered) << i;
    EXPECT_EQ(a.timeline[i].failed_dropped, b.timeline[i].failed_dropped) << i;
  }
}

}  // namespace
}  // namespace rb
