#include "cluster/node.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FifoServerTest, EnqueueUntilCap) {
  FifoServer s;
  s.queue_cap = 2;
  EXPECT_TRUE(s.Enqueue({0, 1e-6}));
  EXPECT_TRUE(s.Enqueue({1, 1e-6}));
  EXPECT_FALSE(s.Enqueue({2, 1e-6}));
  EXPECT_EQ(s.drops, 1u);
  EXPECT_EQ(s.queue.size(), 2u);
}

TEST(FifoServerTest, FifoOrderPreserved) {
  FifoServer s;
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.Enqueue({i, 1e-6}));
  }
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.queue.front().packet_slot, i);
    s.queue.pop_front();
  }
}

TEST(FifoServerTest, IdleSemantics) {
  FifoServer s;
  EXPECT_TRUE(s.idle());
  s.Enqueue({0, 1e-6});
  EXPECT_FALSE(s.idle());
  s.queue.pop_front();
  EXPECT_TRUE(s.idle());
  s.busy = true;
  EXPECT_FALSE(s.idle());
}

TEST(FifoServerTest, KindsAndDefaultsAreSane) {
  FifoServer s;
  EXPECT_EQ(s.kind, ServerKind::kCpu);
  EXPECT_EQ(s.served, 0u);
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.busy_time, 0.0);
  EXPECT_GT(s.queue_cap, 0u);
}

}  // namespace
}  // namespace rb
