#include "cluster/latency.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(LatencyTest, PerServerNear24us) {
  LatencyEstimate e = EstimateLatency();
  // §6.2: 4 x 2.56 + 12.8 + 0.8 = ~24 us per server.
  EXPECT_NEAR(e.dma_us, 10.24, 0.01);
  EXPECT_NEAR(e.batching_us, 12.8, 0.1);
  EXPECT_NEAR(e.processing_us, 0.8, 0.05);
  EXPECT_NEAR(e.per_server_us, 24.0, 0.5);
}

TEST(LatencyTest, ClusterPathBounds) {
  LatencyEstimate e = EstimateLatency();
  // Paper quotes 47.6-66.4 us for the 2-3 hop traversal.
  EXPECT_NEAR(e.cluster_2hop_us, 47.6, 1.0);
  EXPECT_GT(e.cluster_3hop_us, e.cluster_2hop_us);
  EXPECT_NEAR(e.cluster_3hop_us, 66.4, 6.0);
}

TEST(LatencyTest, BatchingDominates) {
  LatencyEstimate e = EstimateLatency();
  EXPECT_GT(e.batching_us, e.dma_us);
  EXPECT_GT(e.dma_us, e.processing_us);
}

TEST(LatencyTest, SmallerKnCutsBatchingWait) {
  LatencyParams p;
  p.kn = 1;
  LatencyEstimate e = EstimateLatency(p);
  EXPECT_LT(e.batching_us, 1.0);
  EXPECT_LT(e.per_server_us, 13.0);
}

TEST(LatencyTest, FasterClockCutsProcessing) {
  LatencyParams p;
  p.clock_hz = 5.6e9;
  LatencyEstimate e = EstimateLatency(p);
  EXPECT_NEAR(e.processing_us, 0.4, 0.01);
}

}  // namespace
}  // namespace rb
