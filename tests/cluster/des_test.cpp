#include "cluster/des.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

ClusterConfig FastRb4() {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.seed = 17;
  return cfg;
}

TEST(ClusterSimTest, SinglePacketDirectDelivery) {
  ClusterSim sim(FastRb4());
  sim.Inject(0, 1, /*flow=*/1, /*seq=*/0, 64, 0.0);
  ClusterRunStats stats = sim.Finish(1e-3);
  EXPECT_EQ(stats.delivered_packets, 1u);
  EXPECT_EQ(sim.node_stats(1).delivered, 1u);
  // One fixed node latency per node visited (2 nodes on a direct path)
  // plus service times: mid tens of microseconds.
  double latency = stats.latency.max();
  EXPECT_GT(latency, 2 * FastRb4().node_fixed_latency);
  EXPECT_LT(latency, 100e-6);
}

TEST(ClusterSimTest, LocalTrafficStaysLocal) {
  ClusterSim sim(FastRb4());
  sim.Inject(2, 2, 1, 0, 64, 0.0);
  ClusterRunStats local = sim.Finish(1e-3);
  EXPECT_EQ(sim.node_stats(2).delivered, 1u);
  // No inter-node hop: cheaper than a remote delivery.
  ClusterSim sim2(FastRb4());
  sim2.Inject(2, 3, 1, 0, 64, 0.0);
  ClusterRunStats remote = sim2.Finish(1e-3);
  EXPECT_LT(local.latency.max(), remote.latency.max());
}

TEST(ClusterSimTest, UniformLoadAt64BDeliversLossFree) {
  // §6.2: RB4 routes 64 B uniform traffic at ~12 Gbps aggregate, i.e.
  // ~3 Gbps per port. At that load, losses must be negligible.
  ClusterSim sim(FastRb4());
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 2.9e9, &sizes, 0.02);
  EXPECT_GT(stats.offered_packets, 100000u);
  EXPECT_LT(stats.loss_fraction(), 0.005);
  EXPECT_NEAR(stats.delivered_bps() / 1e9, 4 * 2.9, 0.4);
}

TEST(ClusterSimTest, OverloadSheds) {
  // Well past the 64 B capacity, the cluster must drop, not wedge.
  ClusterSim sim(FastRb4());
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 8e9, &sizes, 0.01);
  EXPECT_GT(stats.loss_fraction(), 0.2);
  EXPECT_GT(stats.drops.total(), 0u);
}

TEST(ClusterSimTest, UniformTrafficRoutesMostlyDirect) {
  // Direct VLB with a uniform matrix: the 2R regime (§3.2).
  ClusterSim sim(FastRb4());
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 2.5e9, &sizes, 0.01);
  double direct_frac = static_cast<double>(stats.direct_packets) /
                       (stats.direct_packets + stats.balanced_packets);
  EXPECT_GT(direct_frac, 0.9);
}

TEST(ClusterSimTest, SinglePairLoadBalancesExcess) {
  // All traffic on one (src, dst) pair at > R/N: most packets must take
  // the two-phase path.
  ClusterConfig cfg = FastRb4();
  cfg.vlb.flowlets = false;
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::SinglePair(4, 0, 2);
  ClusterRunStats stats = sim.RunUniform(tm, 8e9, &sizes, 0.005);
  double balanced_frac = static_cast<double>(stats.balanced_packets) /
                         (stats.direct_packets + stats.balanced_packets);
  EXPECT_GT(balanced_frac, 0.5);
}

TEST(ClusterSimTest, FairnessAcrossCompetingInputs) {
  // Two inputs blast one output at line rate each; VLB + the output port
  // must share capacity fairly (§3.1 guarantee 2).
  ClusterConfig cfg = FastRb4();
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(300);
  TrafficMatrix tm = TrafficMatrix::Uniform(4);
  // Build a custom two-inputs-one-output matrix.
  auto pair_tm = TrafficMatrix::SinglePair(4, 0, 3);
  // RunUniform only drives active inputs; emulate two inputs by running a
  // hotspot matrix where inputs 0 and 1 send everything to node 3.
  (void)tm;
  ClusterRunStats stats;
  {
    // Hotspot with fraction 1.0 makes every input send only to node 3;
    // restrict offered load to inputs 0 and 1 by constructing the matrix
    // manually is not supported, so use all four inputs — fairness must
    // still hold across them.
    auto hot = TrafficMatrix::Hotspot(4, 3, 1.0);
    stats = sim.RunUniform(hot, 6e9, &sizes, 0.01);
  }
  (void)pair_tm;
  // Output 3 is oversubscribed 4:1 (24 Gbps offered into a 10 Gbps port,
  // including its own local traffic); deliveries by source must be fair.
  std::vector<double> by_src = stats.per_input_delivered_bps;
  // Drop-tail sharing is proportionally fair in expectation; with the
  // realistic (small) output ring the index sits a little under the
  // ideal 1.0.
  EXPECT_GT(JainFairnessIndex(by_src), 0.88);
  // And the output port must run at (close to) full line rate: the 100%
  // throughput property.
  EXPECT_GT(stats.per_output_bps[3] / 10e9, 0.9);
}

TEST(ClusterSimTest, AbileneWorkloadSustains35GbpsAggregate) {
  // §6.2: RB4 at ~35 Gbps with the Abilene workload, NIC-limited.
  ClusterSim sim(FastRb4());
  AbileneSizeDistribution sizes;
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 8.75e9, &sizes, 0.01);
  EXPECT_LT(stats.loss_fraction(), 0.02);
  EXPECT_NEAR(stats.delivered_bps() / 1e9, 35.0, 2.5);
}

TEST(ClusterSimTest, LatencyIncludesFixedPerNodeCosts) {
  ClusterSim sim(FastRb4());
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 1e9, &sizes, 0.005);
  // Light load: latency should sit near the analytic 2-hop estimate
  // (~48 us) with a tail under ~80 us (3-hop paths are rare here).
  EXPECT_GT(stats.latency.Percentile(50), 40e-6);
  EXPECT_LT(stats.latency.Percentile(50), 60e-6);
}

TEST(ClusterSimTest, ResequencerEliminatesReordering) {
  ClusterConfig cfg = FastRb4();
  cfg.vlb.flowlets = false;  // maximize reordering pressure
  cfg.resequence = true;
  ClusterSim sim(cfg);
  auto gen_cfg = FlowTrafficGenerator::ConfigForRate(8e9, 729.6, 50, 5000, 3);
  FlowTrafficGenerator gen(gen_cfg, std::make_unique<AbileneSizeDistribution>());
  ClusterRunStats stats = sim.RunSinglePairTrace(&gen, 0, 2, 0.02);
  EXPECT_EQ(stats.reorder_packet_fraction, 0.0);
}

TEST(ClusterSimTest, DropsAreCategorized) {
  ClusterSim sim(FastRb4());
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 9e9, &sizes, 0.005);
  // At 9 Gbps/port of 64 B the CPUs saturate: the drop breakdown must
  // attribute the loss somewhere sensible (CPU or NIC).
  EXPECT_GT(stats.drops.cpu + stats.drops.ext_rx_nic, 0u);
  EXPECT_EQ(stats.offered_packets,
            stats.delivered_packets + stats.drops.total());
}

TEST(ClusterSimTest, TelemetryTracksDeliveriesAndTracesDeterministically) {
  auto run = [](telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer) {
    ClusterSim sim(FastRb4());
    sim.BindTelemetry(registry, tracer, /*probe_interval=*/1e-4);
    FixedSizeDistribution sizes(64);
    auto tm = TrafficMatrix::Uniform(4);
    ClusterRunStats stats = sim.RunUniform(tm, 1e9, &sizes, 0.002);
    EXPECT_EQ(sim.probe_series().size(), 8u);  // cpu + ext-out per node
    EXPECT_FALSE(sim.probe_series()[0].points.empty());
    return stats;
  };

  telemetry::MetricRegistry registry;
  telemetry::TracerConfig tc;
  tc.sample_every = 32;
  tc.max_traces = 2048;
  telemetry::PathTracer tracer_a(tc);
  ClusterRunStats stats = run(&registry, &tracer_a);

  // Registry totals mirror the run stats exactly.
  telemetry::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("des/offered_packets"), stats.offered_packets);
  EXPECT_EQ(snap.CounterValue("des/delivered_packets"), stats.delivered_packets);
  const telemetry::HistogramSnapshot* lat = snap.FindHistogram("des/latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, stats.delivered_packets);  // count includes clipped samples
  uint64_t cpu_served = 0;
  for (uint16_t i = 0; i < 4; ++i) {
    cpu_served += snap.CounterValue(Format("des/node%u/cpu/served", i));
  }
  EXPECT_GE(cpu_served, stats.delivered_packets);  // transit CPU visits too

  // Traces end at ext-out for delivered packets and are identical across
  // two runs with the same seed and tracer config (full determinism).
  telemetry::PathTracer tracer_b(tc);
  run(nullptr, &tracer_b);
  std::vector<telemetry::PacketTrace> ta = tracer_a.Traces();
  std::vector<telemetry::PacketTrace> tb = tracer_b.Traces();
  ASSERT_FALSE(ta.empty());
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].hops.size(), tb[i].hops.size());
    for (size_t h = 0; h < ta[i].hops.size(); ++h) {
      EXPECT_EQ(ta[i].hops[h].point, tb[i].hops[h].point);
      EXPECT_DOUBLE_EQ(ta[i].hops[h].t, tb[i].hops[h].t);
    }
    if (ta[i].complete) {
      EXPECT_EQ(telemetry::HopPointName(ta[i].hops.back()).rfind("ext-out@", 0), 0u);
    }
  }
}

TEST(ClusterSimTest, TwoNodeClusterIsAllDirect) {
  ClusterConfig cfg = FastRb4();
  cfg.num_nodes = 2;
  cfg.vlb.num_nodes = 2;
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::Uniform(2);
  ClusterRunStats stats = sim.RunUniform(tm, 2e9, &sizes, 0.005);
  EXPECT_EQ(stats.balanced_packets, 0u);
  EXPECT_LT(stats.loss_fraction(), 0.01);
}

}  // namespace
}  // namespace rb
