#include "cluster/vlb.hpp"

#include <gtest/gtest.h>

#include <map>

namespace rb {
namespace {

VlbConfig BaseConfig(bool direct = true, bool flowlets = false) {
  VlbConfig cfg;
  cfg.num_nodes = 8;
  cfg.port_rate_bps = 10e9;
  cfg.internal_link_bps = 10e9;
  cfg.direct_vlb = direct;
  cfg.flowlets = flowlets;
  return cfg;
}

TEST(VlbTest, UniformTrafficGoesDirect) {
  // Offered (S, D) rate R/N: exactly the Direct VLB budget -> everything
  // should route directly (the 2R regime).
  DirectVlbRouter router(BaseConfig(), 0);
  double per_dst_bps = 10e9 / 8 * 0.9;  // slightly under budget
  double pkt_gap = 64.0 * 8.0 / per_dst_bps;
  SimTime t = 0;
  for (int i = 0; i < 20000; ++i) {
    for (uint16_t dst = 1; dst < 8; ++dst) {
      router.Route(dst, dst, 64, t);
    }
    t += pkt_gap;
  }
  double direct_frac = static_cast<double>(router.direct_packets()) /
                       (router.direct_packets() + router.balanced_packets());
  EXPECT_GT(direct_frac, 0.95);
}

TEST(VlbTest, OverloadedPairSpillsToBalancing) {
  // A single (S, D) pair at full port rate exceeds the R/N direct budget:
  // ~1/N of it goes direct, the rest is load-balanced.
  DirectVlbRouter router(BaseConfig(), 0);
  double pkt_gap = 64.0 * 8.0 / 10e9;  // full R toward one destination
  SimTime t = 0;
  const int kPackets = 200000;
  for (int i = 0; i < kPackets; ++i) {
    router.Route(5, static_cast<uint64_t>(i), 64, t);
    t += pkt_gap;
  }
  double direct_frac = static_cast<double>(router.direct_packets()) / kPackets;
  EXPECT_NEAR(direct_frac, 1.0 / 8, 0.05);
}

TEST(VlbTest, ClassicVlbNeverDirect) {
  DirectVlbRouter router(BaseConfig(/*direct=*/false), 0);
  for (int i = 0; i < 1000; ++i) {
    VlbDecision d = router.Route(3, static_cast<uint64_t>(i), 64, i * 1e-6);
    EXPECT_FALSE(d.direct);
  }
  EXPECT_EQ(router.direct_packets(), 0u);
}

TEST(VlbTest, IntermediatesExcludeSelfAndDst) {
  DirectVlbRouter router(BaseConfig(false), 2);
  for (int i = 0; i < 5000; ++i) {
    VlbDecision d = router.Route(6, static_cast<uint64_t>(i), 64, i * 1e-6);
    EXPECT_NE(d.via, 2);
    EXPECT_NE(d.via, 6);
    EXPECT_LT(d.via, 8);
  }
}

TEST(VlbTest, BalancedSpreadIsUniform) {
  DirectVlbRouter router(BaseConfig(false), 0);
  std::map<uint16_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    counts[router.Route(7, static_cast<uint64_t>(i), 64, i * 1e-6).via]++;
  }
  // 6 candidate intermediates (8 minus self minus dst).
  EXPECT_EQ(counts.size(), 6u);
  for (auto& [via, count] : counts) {
    EXPECT_NEAR(count, n / 6.0, n / 6.0 * 0.1) << via;
  }
}

TEST(VlbTest, FlowletsStickWithinDelta) {
  VlbConfig cfg = BaseConfig(false, /*flowlets=*/true);
  cfg.flowlet_delta = 0.1;
  DirectVlbRouter router(cfg, 0);
  // Low-rate flow: packets 1 ms apart stay within delta, so the flowlet
  // keeps one intermediate.
  VlbDecision first = router.Route(4, 42, 64, 0.0);
  for (int i = 1; i < 50; ++i) {
    VlbDecision d = router.Route(4, 42, 64, i * 1e-3);
    EXPECT_EQ(d.via, first.via) << "flowlet must not switch paths";
    EXPECT_FALSE(d.spilled);
  }
}

TEST(VlbTest, FlowletRedecidesAfterDelta) {
  VlbConfig cfg = BaseConfig(false, true);
  cfg.flowlet_delta = 0.01;
  cfg.seed = 31;
  DirectVlbRouter router(cfg, 0);
  // Packets spaced beyond delta re-decide each time; over many gaps the
  // path must change at least once.
  std::map<uint16_t, int> vias;
  for (int i = 0; i < 100; ++i) {
    vias[router.Route(4, 42, 64, i * 0.1).via]++;
  }
  EXPECT_GT(vias.size(), 1u);
}

TEST(VlbTest, OverloadedFlowletSpills) {
  VlbConfig cfg = BaseConfig(false, true);
  cfg.internal_link_bps = 1e9;  // tiny links so one flow overloads a path
  cfg.overload_threshold = 0.5;
  DirectVlbRouter router(cfg, 0);
  double pkt_gap = 1500.0 * 8.0 / 2e9;  // 2 Gbps flow >> 0.5 Gbps budget
  SimTime t = 0;
  for (int i = 0; i < 10000; ++i) {
    router.Route(4, 42, 1500, t);
    t += pkt_gap;
  }
  EXPECT_GT(router.spilled_flowlets(), 0u);
}

TEST(VlbTest, EstimatedRateTracksOfferedLoad) {
  VlbConfig cfg = BaseConfig();
  DirectVlbRouter router(cfg, 0);
  double target_bps = 1e9;
  double pkt_gap = 64.0 * 8.0 / target_bps;
  SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    router.Route(1, 1, 64, t);
    t += pkt_gap;
  }
  // All under budget (R/N = 1.25G) -> all direct; EWMA should read ~1G.
  EXPECT_NEAR(router.EstimatedRate(1, FlowletPath::kDirect, t), target_bps, target_bps * 0.2);
}

TEST(VlbTest, TwoNodeClusterAlwaysDirectEvenOverBudget) {
  // Regression: with N=2 there is no intermediate, so PickIntermediate used
  // to return dst itself and the packet was miscounted as balanced (and
  // charged to via_rate_). Everything must classify as direct, even far
  // over the R/N budget.
  VlbConfig cfg = BaseConfig();
  cfg.num_nodes = 2;
  DirectVlbRouter router(cfg, 0);
  double pkt_gap = 64.0 * 8.0 / 10e9;  // full R toward node 1 (budget R/2)
  SimTime t = 0;
  for (int i = 0; i < 50000; ++i) {
    VlbDecision d = router.Route(1, static_cast<uint64_t>(i), 64, t);
    EXPECT_TRUE(d.direct);
    t += pkt_gap;
  }
  EXPECT_EQ(router.balanced_packets(), 0u);
  EXPECT_EQ(router.direct_packets(), 50000u);
  // And the direct path, not a phantom via link, carried the charge.
  EXPECT_GT(router.EstimatedRate(1, FlowletPath::kDirect, t), 1e9);
  EXPECT_EQ(router.EstimatedRate(1, 1, t), 0.0);
}

TEST(VlbTest, TwoNodeClassicVlbAlsoDirect) {
  // Classic VLB has no direct budget, but with no intermediate available
  // the only correct path is still the direct link.
  VlbConfig cfg = BaseConfig(/*direct=*/false);
  cfg.num_nodes = 2;
  DirectVlbRouter router(cfg, 0);
  for (int i = 0; i < 1000; ++i) {
    VlbDecision d = router.Route(1, static_cast<uint64_t>(i), 64, i * 1e-6);
    EXPECT_TRUE(d.direct);
  }
  EXPECT_EQ(router.balanced_packets(), 0u);
}

TEST(VlbTest, PickIntermediateExcludesBelievedDeadNodes) {
  VlbConfig cfg = BaseConfig(/*direct=*/false);
  HealthView health(8);
  health.SetNodeAlive(3, false);
  health.SetNodeAlive(4, false);
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  for (int i = 0; i < 5000; ++i) {
    VlbDecision d = router.Route(6, static_cast<uint64_t>(i), 64, i * 1e-6);
    EXPECT_NE(d.via, 3);
    EXPECT_NE(d.via, 4);
  }
}

TEST(VlbTest, PickIntermediateExcludesDownLinks) {
  VlbConfig cfg = BaseConfig(/*direct=*/false);
  HealthView health(8);
  health.SetLinkUp(0, 2, false);  // can't reach intermediate 2
  health.SetLinkUp(5, 6, false);  // intermediate 5 can't reach dst 6
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  for (int i = 0; i < 5000; ++i) {
    VlbDecision d = router.Route(6, static_cast<uint64_t>(i), 64, i * 1e-6);
    EXPECT_NE(d.via, 2);
    EXPECT_NE(d.via, 5);
  }
}

TEST(VlbTest, DirectLinkDownFallsBackToVia) {
  // Direct VLB under budget would go direct, but the direct link is
  // believed down: traffic must via-route and count a failover reroute.
  VlbConfig cfg = BaseConfig();
  cfg.flowlets = false;
  HealthView health(8);
  health.SetLinkUp(0, 5, false);
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  double pkt_gap = 64.0 * 8.0 / 1e9;  // well under the R/N budget
  SimTime t = 0;
  for (int i = 0; i < 2000; ++i) {
    VlbDecision d = router.Route(5, static_cast<uint64_t>(i), 64, t);
    EXPECT_FALSE(d.direct);
    EXPECT_NE(d.via, 5);
    t += pkt_gap;
  }
  EXPECT_EQ(router.direct_packets(), 0u);
  EXPECT_EQ(router.failover_reroutes(), 2000u);
}

TEST(VlbTest, DeadDestinationStillRoutesDirect) {
  // No intermediate can help when the destination itself is believed dead;
  // the router sends direct (the DES blackholes it into the failed-node
  // drop bucket) rather than wasting a via hop.
  VlbConfig cfg = BaseConfig();
  HealthView health(8);
  health.SetNodeAlive(5, false);
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  double pkt_gap = 64.0 * 8.0 / 10e9;  // over budget: would normally spill
  SimTime t = 0;
  for (int i = 0; i < 5000; ++i) {
    VlbDecision d = router.Route(5, static_cast<uint64_t>(i), 64, t);
    EXPECT_TRUE(d.direct);
    t += pkt_gap;
  }
  EXPECT_EQ(router.balanced_packets(), 0u);
}

TEST(VlbTest, OnNodeUnhealthyRepinsFlowlets) {
  // A flowlet pinned via node 3 must re-pin (not blackhole for δ) once the
  // detector reports node 3 dead.
  VlbConfig cfg = BaseConfig(/*direct=*/false, /*flowlets=*/true);
  cfg.flowlet_delta = 10.0;  // long δ so only invalidation can move it
  HealthView health(8);
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  VlbDecision first = router.Route(6, 42, 64, 0.0);
  ASSERT_FALSE(first.direct);
  uint16_t dead = first.via;
  health.SetNodeAlive(dead, false);
  EXPECT_GE(router.OnNodeUnhealthy(dead), 1u);
  EXPECT_GE(router.flowlets_invalidated(), 1u);
  for (int i = 1; i < 100; ++i) {
    VlbDecision d = router.Route(6, 42, 64, i * 1e-3);
    EXPECT_NE(d.via, dead) << "flowlet must not stay pinned through a dead node";
  }
}

TEST(VlbTest, RouteTimeRepinWhenPathDiesWithoutHook) {
  // Even without the eager invalidation hook, Route() itself must notice a
  // pinned path that the health view now reports dead and re-pin.
  VlbConfig cfg = BaseConfig(/*direct=*/false, /*flowlets=*/true);
  cfg.flowlet_delta = 10.0;
  HealthView health(8);
  DirectVlbRouter router(cfg, 0);
  router.set_health(&health);
  VlbDecision first = router.Route(6, 42, 64, 0.0);
  uint16_t dead = first.via;
  health.SetNodeAlive(dead, false);  // belief flips; no OnNodeUnhealthy call
  VlbDecision d = router.Route(6, 42, 64, 1e-3);
  EXPECT_NE(d.via, dead);
  EXPECT_GE(router.flowlet_repins(), 1u);
}

TEST(VlbDeathTest, BadDestinationAborts) {
  DirectVlbRouter router(BaseConfig(), 0);
  EXPECT_DEATH(router.Route(99, 1, 64, 0.0), "");
}

}  // namespace
}  // namespace rb
