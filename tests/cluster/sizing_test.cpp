#include "cluster/sizing.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(SizingTest, Rb4IsAFourServerMesh) {
  SizingResult r = SizeCluster(ServerPlatform::Current(), 4);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.mesh);
  EXPECT_EQ(r.total_servers(), 4u);
  EXPECT_EQ(r.internal_link, "10G");
}

TEST(SizingTest, CurrentServersMeshUpTo32) {
  // §3.3: "with the current server configuration, a full mesh is feasible
  // for a maximum of N = 32 external ports".
  EXPECT_TRUE(SizeCluster(ServerPlatform::Current(), 32).mesh);
  EXPECT_FALSE(SizeCluster(ServerPlatform::Current(), 64).mesh);
}

TEST(SizingTest, MoreNicsMeshUpTo128) {
  EXPECT_TRUE(SizeCluster(ServerPlatform::MoreNics(), 128).mesh);
  EXPECT_FALSE(SizeCluster(ServerPlatform::MoreNics(), 256).mesh);
}

TEST(SizingTest, FasterServersHalveServerCount) {
  SizingResult r = SizeCluster(ServerPlatform::FasterServers(), 128);
  EXPECT_TRUE(r.mesh);
  EXPECT_EQ(r.port_servers, 64u);
}

TEST(SizingTest, MeshUsesExactlyOneServerPerPortGroup) {
  for (uint32_t n : {4u, 8u, 16u, 32u}) {
    SizingResult r = SizeCluster(ServerPlatform::Current(), n);
    EXPECT_EQ(r.total_servers(), n) << n;
  }
}

TEST(SizingTest, FlyAddsIntermediates) {
  SizingResult r = SizeCluster(ServerPlatform::Current(), 1024);
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.mesh);
  EXPECT_EQ(r.port_servers, 1024u);
  EXPECT_GT(r.switch_servers, 0u);
  // §3.3's ballpark: order of 1-2 intermediate servers per port; total
  // grows superlinearly but stays within ~3N.
  EXPECT_LE(r.total_servers(), 3 * 1024u);
}

TEST(SizingTest, CostGrowsMonotonically) {
  uint64_t prev = 0;
  for (uint32_t n = 4; n <= 2048; n *= 2) {
    SizingResult r = SizeCluster(ServerPlatform::Current(), n);
    ASSERT_TRUE(r.feasible) << n;
    EXPECT_GE(r.total_servers(), prev);
    prev = r.total_servers();
  }
}

TEST(SizingTest, BetterPlatformsNeverCostMore) {
  for (uint32_t n = 4; n <= 2048; n *= 2) {
    uint64_t current = SizeCluster(ServerPlatform::Current(), n).total_servers();
    uint64_t more = SizeCluster(ServerPlatform::MoreNics(), n).total_servers();
    uint64_t faster = SizeCluster(ServerPlatform::FasterServers(), n).total_servers();
    EXPECT_LE(more, current) << n;
    EXPECT_LE(faster, more) << n;
  }
}

TEST(SwitchedClusterTest, SingleSwitchBelow48Ports) {
  // N <= 48: one switch (48 ports at $500) + N servers.
  double equiv = SwitchedClusterServerEquivalents(32);
  EXPECT_DOUBLE_EQ(equiv, 32 + 48 * 500.0 / 2000.0);
}

TEST(SwitchedClusterTest, AlwaysCostsMoreThanServerCluster) {
  // Fig 3's comparison: the Arista-based switched cluster is the more
  // expensive option across the sweep.
  for (const auto& row : ComputeFig3()) {
    EXPECT_GT(row.switched_equiv, static_cast<double>(row.current.total_servers())) << row.n;
  }
}

TEST(Fig3Test, SweepCoversPowerOfTwoRange) {
  auto rows = ComputeFig3();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().n, 4u);
  EXPECT_EQ(rows.back().n, 2048u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row.current.feasible);
    EXPECT_TRUE(row.more_nics.feasible);
    EXPECT_TRUE(row.faster.feasible);
  }
}

}  // namespace
}  // namespace rb
