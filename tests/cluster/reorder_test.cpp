#include "cluster/reorder.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(ReorderTest, InOrderDeliveryIsClean) {
  ReorderDetector det;
  for (uint64_t s = 0; s < 100; ++s) {
    det.Deliver(1, s);
  }
  EXPECT_EQ(det.total_packets(), 100u);
  EXPECT_EQ(det.reordered_packets(), 0u);
  EXPECT_EQ(det.reordered_sequences(), 0u);
  EXPECT_EQ(det.SequenceFraction(), 0.0);
}

TEST(ReorderTest, PaperExampleCountsOneSequence) {
  // <p1, p4, p2, p3, p5> = one reordered sequence (§6.2).
  ReorderDetector det;
  det.Deliver(1, 1);
  det.Deliver(1, 4);
  det.Deliver(1, 2);
  det.Deliver(1, 3);
  det.Deliver(1, 5);
  EXPECT_EQ(det.reordered_packets(), 2u);
  EXPECT_EQ(det.reordered_sequences(), 1u);
}

TEST(ReorderTest, SeparatedLateArrivalsCountSeparately) {
  ReorderDetector det;
  det.Deliver(1, 2);
  det.Deliver(1, 1);  // late run 1
  det.Deliver(1, 3);
  det.Deliver(1, 5);
  det.Deliver(1, 4);  // late run 2
  EXPECT_EQ(det.reordered_sequences(), 2u);
  EXPECT_EQ(det.reordered_packets(), 2u);
}

TEST(ReorderTest, FlowsAreIndependent) {
  ReorderDetector det;
  det.Deliver(1, 10);
  det.Deliver(2, 1);  // lower seq but different flow: fine
  det.Deliver(1, 11);
  det.Deliver(2, 2);
  EXPECT_EQ(det.reordered_packets(), 0u);
  EXPECT_EQ(det.flows(), 2u);
}

TEST(ReorderTest, FractionsNormalizeByTotal) {
  ReorderDetector det;
  det.Deliver(1, 1);
  det.Deliver(1, 0);
  det.Deliver(1, 2);
  det.Deliver(1, 3);
  EXPECT_DOUBLE_EQ(det.PacketFraction(), 0.25);
  EXPECT_DOUBLE_EQ(det.SequenceFraction(), 0.25);
}

TEST(ReorderTest, DuplicateOfNewestIsNotReordered) {
  // A duplicate delivery of the flow's newest packet is not a reordering —
  // nothing overtook it. It lands in its own counter instead of inflating
  // the Fig-style percentages.
  ReorderDetector det;
  det.Deliver(1, 1);
  det.Deliver(1, 1);
  EXPECT_EQ(det.reordered_packets(), 0u);
  EXPECT_EQ(det.reordered_sequences(), 0u);
  EXPECT_EQ(det.duplicate_packets(), 1u);
  EXPECT_EQ(det.total_packets(), 2u);
}

TEST(ReorderTest, DuplicateDoesNotOpenAReorderedRun) {
  ReorderDetector det;
  det.Deliver(1, 5);
  det.Deliver(1, 5);  // duplicate: must not open a run
  det.Deliver(1, 3);  // genuinely late: opens the one and only run
  det.Deliver(1, 4);  // same contiguous run
  EXPECT_EQ(det.duplicate_packets(), 1u);
  EXPECT_EQ(det.reordered_packets(), 2u);
  EXPECT_EQ(det.reordered_sequences(), 1u);
}

TEST(ReorderTest, DuplicateInsideRunLeavesRunStateAlone) {
  ReorderDetector det;
  det.Deliver(2, 5);
  det.Deliver(2, 3);  // opens a run
  det.Deliver(2, 5);  // duplicate of the max mid-run
  det.Deliver(2, 4);  // still the same run
  EXPECT_EQ(det.reordered_sequences(), 1u);
  EXPECT_EQ(det.reordered_packets(), 2u);
  EXPECT_EQ(det.duplicate_packets(), 1u);
}

TEST(ReorderTest, FirstPacketNeverLate) {
  ReorderDetector det;
  det.Deliver(9, 1000);
  EXPECT_EQ(det.reordered_packets(), 0u);
}

}  // namespace
}  // namespace rb
