#include "cluster/topology.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FullMeshTest, Connectivity) {
  FullMeshTopology mesh(4);
  EXPECT_EQ(mesh.num_nodes(), 4);
  EXPECT_EQ(mesh.Degree(), 3);
  for (uint16_t a = 0; a < 4; ++a) {
    for (uint16_t b = 0; b < 4; ++b) {
      EXPECT_EQ(mesh.Connected(a, b), a != b);
    }
  }
}

TEST(KAryNFlyTest, Counts) {
  KAryNFlyTopology fly(2, 3);  // 2-ary 3-fly: 8 terminals
  EXPECT_EQ(fly.num_terminals(), 8u);
  EXPECT_EQ(fly.switches_per_stage(), 4u);
  EXPECT_EQ(fly.total_switches(), 12u);
  EXPECT_EQ(fly.PathHops(), 3u);
}

TEST(KAryNFlyTest, LargerRadix) {
  KAryNFlyTopology fly(4, 5);  // 4-ary 5-fly: 1024 terminals
  EXPECT_EQ(fly.num_terminals(), 1024u);
  EXPECT_EQ(fly.switches_per_stage(), 256u);
  EXPECT_EQ(fly.total_switches(), 5 * 256u);
}

TEST(KAryNFlyTest, PathSwitchesInRange) {
  KAryNFlyTopology fly(2, 3);
  for (uint64_t s = 0; s < 8; ++s) {
    for (uint64_t d = 0; d < 8; ++d) {
      for (uint32_t stage = 0; stage < 3; ++stage) {
        EXPECT_LT(fly.SwitchOnPath(s, d, stage), fly.switches_per_stage());
      }
    }
  }
}

TEST(KAryNFlyTest, FirstStageDependsOnlyOnSource) {
  KAryNFlyTopology fly(2, 3);
  for (uint64_t s = 0; s < 8; ++s) {
    uint64_t sw = fly.SwitchOnPath(s, 0, 0);
    for (uint64_t d = 1; d < 8; ++d) {
      EXPECT_EQ(fly.SwitchOnPath(s, d, 0), sw);
    }
  }
}

TEST(KAryNFlyTest, LastStageDependsMostlyOnDestination) {
  // At the last stage, all but the final digit have been corrected to the
  // destination's, so the switch is determined by dst's first n-1 digits.
  KAryNFlyTopology fly(2, 3);
  for (uint64_t d = 0; d < 8; ++d) {
    uint64_t sw = fly.SwitchOnPath(0, d, 2);
    for (uint64_t s = 1; s < 8; ++s) {
      EXPECT_EQ(fly.SwitchOnPath(s, d, 2), sw) << "s=" << s << " d=" << d;
    }
  }
}

TEST(KAryNFlyTest, DestinationTagRoutingConverges) {
  // Two sources routing to the same destination must meet by the last
  // stage — the defining property of a butterfly.
  KAryNFlyTopology fly(4, 3);
  for (uint64_t d = 0; d < fly.num_terminals(); d += 7) {
    uint64_t sw = fly.SwitchOnPath(0, d, 2);
    EXPECT_EQ(fly.SwitchOnPath(fly.num_terminals() - 1, d, 2), sw);
  }
}

}  // namespace
}  // namespace rb
