#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace rb {
namespace {

// FIPS-197 Appendix B: the worked example.
TEST(Aes128Test, Fips197AppendixB) {
  const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                             0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plain, out);
  EXPECT_EQ(memcmp(out, expected, 16), 0);
}

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128Test, Fips197AppendixC1) {
  const uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                           0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const uint8_t plain[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                             0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plain, out);
  EXPECT_EQ(memcmp(out, expected, 16), 0);
  // And decryption inverts it.
  uint8_t back[16];
  aes.DecryptBlock(out, back);
  EXPECT_EQ(memcmp(back, plain, 16), 0);
}

TEST(Aes128Test, EncryptDecryptRoundTripRandom) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t key[16], plain[16], cipher[16], back[16];
    for (int i = 0; i < 16; ++i) {
      key[i] = static_cast<uint8_t>(rng.Next());
      plain[i] = static_cast<uint8_t>(rng.Next());
    }
    Aes128 aes(key);
    aes.EncryptBlock(plain, cipher);
    aes.DecryptBlock(cipher, back);
    ASSERT_EQ(memcmp(back, plain, 16), 0) << "trial " << trial;
    // Cipher differs from plaintext (astronomically unlikely otherwise).
    ASSERT_NE(memcmp(cipher, plain, 16), 0);
  }
}

TEST(Aes128Test, InPlaceEncryption) {
  const uint8_t key[16] = {0};
  uint8_t buf[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  uint8_t expected[16];
  Aes128 aes(key);
  aes.EncryptBlock(buf, expected);
  uint8_t inplace[16];
  memcpy(inplace, buf, 16);
  aes.EncryptBlock(inplace, inplace);
  EXPECT_EQ(memcmp(inplace, expected, 16), 0);
}

TEST(Aes128Test, KeySensitivity) {
  const uint8_t plain[16] = {0};
  uint8_t key_a[16] = {0};
  uint8_t key_b[16] = {0};
  key_b[15] = 1;
  uint8_t out_a[16], out_b[16];
  Aes128(key_a).EncryptBlock(plain, out_a);
  Aes128(key_b).EncryptBlock(plain, out_b);
  EXPECT_NE(memcmp(out_a, out_b, 16), 0);
}

}  // namespace
}  // namespace rb
