#include "crypto/cbc.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace rb {
namespace {

// NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks.
TEST(CbcTest, NistSp80038aVector) {
  const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const uint8_t iv[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  uint8_t data[32] = {
      0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
      0x11, 0x73, 0x93, 0x17, 0x2a,  // block 1
      0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f,
      0xac, 0x45, 0xaf, 0x8e, 0x51,  // block 2
  };
  const uint8_t expected[32] = {
      0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9, 0x8e,
      0x9b, 0x12, 0xe9, 0x19, 0x7d,  //
      0x50, 0x86, 0xcb, 0x9b, 0x50, 0x72, 0x19, 0xee, 0x95, 0xdb, 0x11,
      0x3a, 0x91, 0x76, 0x78, 0xb2,  //
  };
  AesCbc cbc(key);
  cbc.Encrypt(data, sizeof(data), iv);
  EXPECT_EQ(memcmp(data, expected, sizeof(expected)), 0);
}

TEST(CbcTest, EncryptDecryptRoundTrip) {
  Rng rng(7);
  uint8_t key[16], iv[16];
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(rng.Next());
    iv[i] = static_cast<uint8_t>(rng.Next());
  }
  AesCbc cbc(key);
  for (size_t blocks : {1u, 2u, 8u, 64u}) {
    std::vector<uint8_t> data(blocks * 16);
    std::vector<uint8_t> original(blocks * 16);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    original = data;
    cbc.Encrypt(data.data(), data.size(), iv);
    EXPECT_NE(memcmp(data.data(), original.data(), data.size()), 0);
    cbc.Decrypt(data.data(), data.size(), iv);
    EXPECT_EQ(memcmp(data.data(), original.data(), data.size()), 0) << blocks << " blocks";
  }
}

TEST(CbcTest, ChainingPropagates) {
  // Same plaintext blocks produce different ciphertext blocks under CBC.
  uint8_t key[16] = {0};
  uint8_t iv[16] = {0};
  uint8_t data[32];
  memset(data, 0x42, sizeof(data));
  AesCbc cbc(key);
  cbc.Encrypt(data, sizeof(data), iv);
  EXPECT_NE(memcmp(data, data + 16, 16), 0);
}

TEST(CbcTest, IvChangesCiphertext) {
  uint8_t key[16] = {0};
  uint8_t iv_a[16] = {0};
  uint8_t iv_b[16] = {0};
  iv_b[0] = 1;
  uint8_t a[16] = {0};
  uint8_t b[16] = {0};
  AesCbc cbc(key);
  cbc.Encrypt(a, 16, iv_a);
  cbc.Encrypt(b, 16, iv_b);
  EXPECT_NE(memcmp(a, b, 16), 0);
}

TEST(CbcDeathTest, NonBlockMultipleAborts) {
  uint8_t key[16] = {0};
  uint8_t iv[16] = {0};
  uint8_t data[20] = {0};
  AesCbc cbc(key);
  EXPECT_DEATH(cbc.Encrypt(data, 20, iv), "");
}

TEST(CbcPadTest, PadLengths) {
  // Without the 2-byte ESP trailer.
  EXPECT_EQ(CbcPadLength(16, false), 0u);
  EXPECT_EQ(CbcPadLength(17, false), 15u);
  EXPECT_EQ(CbcPadLength(0, false), 0u);
  // With the trailer: len + pad + 2 must be a multiple of 16.
  for (size_t len = 0; len < 64; ++len) {
    size_t pad = CbcPadLength(len, true);
    EXPECT_EQ((len + pad + 2) % 16, 0u) << len;
    EXPECT_LT(pad, 16u);
  }
}

}  // namespace
}  // namespace rb
