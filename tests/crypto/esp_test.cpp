#include "crypto/esp.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "packet/headers.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

EspConfig TestConfig() {
  EspConfig cfg;
  for (int i = 0; i < 16; ++i) {
    cfg.key[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  return cfg;
}

Packet* UdpFrame(PacketPool* pool, uint32_t size) {
  FrameSpec spec;
  spec.size = size;
  spec.flow.src_ip = 0xc0a80001;
  spec.flow.dst_ip = 0xc0a80002;
  spec.flow.src_port = 1234;
  spec.flow.dst_port = 5678;
  spec.flow.protocol = 17;
  return AllocFrame(spec, pool);
}

TEST(EspTest, EncapsulateProducesEspFrame) {
  PacketPool pool(4);
  EspTunnel tunnel(TestConfig());
  Packet* p = UdpFrame(&pool, 64);
  uint32_t orig_len = p->length();
  ASSERT_TRUE(tunnel.Encapsulate(p));
  EXPECT_GT(p->length(), orig_len);
  EthernetView eth{p->data()};
  EXPECT_EQ(eth.ether_type(), EthernetView::kTypeIpv4);
  Ipv4View outer{p->data() + EthernetView::kSize};
  EXPECT_EQ(outer.protocol(), Ipv4View::kProtoEsp);
  EXPECT_TRUE(outer.ChecksumOk());
  EXPECT_EQ(outer.src(), TestConfig().tunnel_src);
  EXPECT_EQ(outer.dst(), TestConfig().tunnel_dst);
  // SPI is in the clear right after the outer header.
  EXPECT_EQ(LoadBe32(p->data() + EthernetView::kSize + Ipv4View::kMinSize), TestConfig().spi);
  pool.Free(p);
}

TEST(EspTest, RoundTripRestoresExactBytes) {
  PacketPool pool(4);
  EspTunnel enc(TestConfig());
  EspTunnel dec(TestConfig());
  for (uint32_t size : {64u, 65u, 100u, 576u, 1400u}) {
    Packet* p = UdpFrame(&pool, size);
    std::vector<uint8_t> original(p->data(), p->data() + p->length());
    ASSERT_TRUE(enc.Encapsulate(p)) << size;
    ASSERT_TRUE(dec.Decapsulate(p)) << size;
    ASSERT_EQ(p->length(), original.size()) << size;
    EXPECT_EQ(memcmp(p->data(), original.data(), original.size()), 0) << size;
    pool.Free(p);
  }
}

TEST(EspTest, PayloadIsActuallyEncrypted) {
  PacketPool pool(2);
  EspTunnel tunnel(TestConfig());
  Packet* p = UdpFrame(&pool, 128);
  // Stamp a recognizable payload.
  memset(p->data() + 42, 0x5a, 64);
  ASSERT_TRUE(tunnel.Encapsulate(p));
  // The 0x5a run must not appear anywhere in the encrypted frame body.
  int run = 0;
  int longest = 0;
  for (uint32_t i = EthernetView::kSize; i < p->length(); ++i) {
    run = p->data()[i] == 0x5a ? run + 1 : 0;
    longest = std::max(longest, run);
  }
  EXPECT_LT(longest, 8);
  pool.Free(p);
}

TEST(EspTest, SequenceNumbersIncrease) {
  PacketPool pool(4);
  EspTunnel tunnel(TestConfig());
  Packet* a = UdpFrame(&pool, 64);
  Packet* b = UdpFrame(&pool, 64);
  ASSERT_TRUE(tunnel.Encapsulate(a));
  ASSERT_TRUE(tunnel.Encapsulate(b));
  uint32_t seq_a = LoadBe32(a->data() + EthernetView::kSize + Ipv4View::kMinSize + 4);
  uint32_t seq_b = LoadBe32(b->data() + EthernetView::kSize + Ipv4View::kMinSize + 4);
  EXPECT_EQ(seq_b, seq_a + 1);
  pool.Free(a);
  pool.Free(b);
}

TEST(EspTest, UniqueIvPerPacket) {
  PacketPool pool(4);
  EspTunnel tunnel(TestConfig());
  Packet* a = UdpFrame(&pool, 64);
  Packet* b = UdpFrame(&pool, 64);
  ASSERT_TRUE(tunnel.Encapsulate(a));
  ASSERT_TRUE(tunnel.Encapsulate(b));
  const uint8_t* iv_a = a->data() + EthernetView::kSize + Ipv4View::kMinSize + 8;
  const uint8_t* iv_b = b->data() + EthernetView::kSize + Ipv4View::kMinSize + 8;
  EXPECT_NE(memcmp(iv_a, iv_b, 16), 0);
  // Same plaintext, different IV -> different ciphertext.
  const uint8_t* ct_a = iv_a + 16;
  const uint8_t* ct_b = iv_b + 16;
  EXPECT_NE(memcmp(ct_a, ct_b, 16), 0);
  pool.Free(a);
  pool.Free(b);
}

TEST(EspTest, WrongSpiRejectedOnDecap) {
  PacketPool pool(2);
  EspTunnel enc(TestConfig());
  EspConfig other = TestConfig();
  other.spi = 0x12345678;
  EspTunnel dec(other);
  Packet* p = UdpFrame(&pool, 64);
  ASSERT_TRUE(enc.Encapsulate(p));
  EXPECT_FALSE(dec.Decapsulate(p));
  pool.Free(p);
}

TEST(EspTest, NonIpv4Rejected) {
  PacketPool pool(2);
  EspTunnel tunnel(TestConfig());
  Packet* p = UdpFrame(&pool, 64);
  EthernetView eth{p->data()};
  eth.set_ether_type(EthernetView::kTypeArp);
  EXPECT_FALSE(tunnel.Encapsulate(p));
  EXPECT_EQ(p->length(), 64u) << "failed encap must leave the frame intact";
  pool.Free(p);
}

TEST(EspTest, TruncatedFrameRejectedOnDecap) {
  PacketPool pool(2);
  EspTunnel tunnel(TestConfig());
  Packet* p = UdpFrame(&pool, 64);
  EXPECT_FALSE(tunnel.Decapsulate(p));  // plain UDP, not ESP
  pool.Free(p);
}

TEST(EspTest, WrongKeyCorruptsPlaintextButParsesFraming) {
  PacketPool pool(2);
  EspTunnel enc(TestConfig());
  EspConfig other = TestConfig();
  other.key[0] ^= 0xff;
  EspTunnel dec(other);
  Packet* p = UdpFrame(&pool, 64);
  std::vector<uint8_t> original(p->data(), p->data() + p->length());
  ASSERT_TRUE(enc.Encapsulate(p));
  // Decap with the wrong key: the trailer check almost certainly fails
  // (garbage next-header byte); if it passes by chance, bytes must differ.
  bool ok = dec.Decapsulate(p);
  if (ok) {
    EXPECT_NE(memcmp(p->data(), original.data(), original.size()), 0);
  }
  pool.Free(p);
}

}  // namespace
}  // namespace rb
