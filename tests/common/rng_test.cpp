#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace rb {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.NextBounded(8)]++;
  }
  for (int c : counts) {
    // Each residue should appear roughly 1000 times; 3-sigma band.
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(2.5);
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(3.0, 1.5), 3.0);
  }
}

TEST(RngTest, ParetoMeanApproximatesTheory) {
  Rng rng(23);
  // Pareto(xm, alpha) mean = alpha*xm/(alpha-1) for alpha > 1. Use alpha
  // 2.5 to keep the variance finite enough for a stable test.
  double xm = 1.0;
  double alpha = 2.5;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextPareto(xm, alpha);
  }
  EXPECT_NEAR(sum / n, alpha * xm / (alpha - 1), 0.05);
}

TEST(RngTest, BoolProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RngTest, WeightedSamplingFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextWeighted(weights)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

// Property sweep: bounded sampling is unbiased across a range of bounds.
class RngBoundedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundedProperty, MeanIsHalfBound) {
  uint64_t bound = GetParam();
  Rng rng(bound * 977 + 1);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextBounded(bound));
  }
  double expected = (static_cast<double>(bound) - 1) / 2.0;
  EXPECT_NEAR(sum / n, expected, std::max(1.0, expected * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedProperty,
                         ::testing::Values(2, 3, 7, 10, 64, 1000, 1 << 20));

}  // namespace
}  // namespace rb
