#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(FlagsTest, DefaultsSurvive) {
  FlagSet flags("t");
  auto* i = flags.AddInt64("num", 7, "");
  auto* d = flags.AddDouble("rate", 1.5, "");
  auto* b = flags.AddBool("on", false, "");
  auto* s = flags.AddString("name", "x", "");
  const char* argv[] = {"t"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 1.5);
  EXPECT_FALSE(*b);
  EXPECT_EQ(*s, "x");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags("t");
  auto* i = flags.AddInt64("num", 0, "");
  auto* d = flags.AddDouble("rate", 0, "");
  const char* argv[] = {"t", "--num=42", "--rate=2.25"};
  flags.Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(*i, 42);
  EXPECT_DOUBLE_EQ(*d, 2.25);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags("t");
  auto* s = flags.AddString("name", "", "");
  const char* argv[] = {"t", "--name", "hello"};
  flags.Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(*s, "hello");
}

TEST(FlagsTest, BareBoolIsTrue) {
  FlagSet flags("t");
  auto* b = flags.AddBool("on", false, "");
  const char* argv[] = {"t", "--on"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(*b);
}

TEST(FlagsTest, BoolExplicitFalse) {
  FlagSet flags("t");
  auto* b = flags.AddBool("on", true, "");
  const char* argv[] = {"t", "--on=false"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, UsageListsFlags) {
  FlagSet flags("prog");
  flags.AddInt64("alpha", 1, "the alpha");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha"), std::string::npos);
  EXPECT_NE(usage.find("prog"), std::string::npos);
}

TEST(FlagsDeathTest, UnknownFlagExits) {
  FlagSet flags("t");
  const char* argv[] = {"t", "--nope=1"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2), "unknown");
}

TEST(FlagsDeathTest, BadValueExits) {
  FlagSet flags("t");
  flags.AddInt64("num", 0, "");
  const char* argv[] = {"t", "--num=abc"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2), "bad value");
}

}  // namespace
}  // namespace rb
