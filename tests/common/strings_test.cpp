#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(StringsTest, Format) {
  EXPECT_EQ(Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
}

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitEmptyFields) {
  auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(Join(v, "::"), "a::b::c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringsTest, HumanRates) {
  EXPECT_EQ(HumanBitRate(9.7e9), "9.70 Gbps");
  EXPECT_EQ(HumanBitRate(1.46e6), "1.46 Mbps");
  EXPECT_EQ(HumanPacketRate(18.96e6), "18.96 Mpps");
}

TEST(StringsTest, ParseIpv4Valid) {
  uint32_t addr = 0;
  ASSERT_TRUE(ParseIpv4("10.1.2.3", &addr));
  EXPECT_EQ(addr, (10u << 24) | (1u << 16) | (2u << 8) | 3u);
}

TEST(StringsTest, ParseIpv4Invalid) {
  uint32_t addr = 0;
  EXPECT_FALSE(ParseIpv4("256.1.1.1", &addr));
  EXPECT_FALSE(ParseIpv4("1.2.3", &addr));
  EXPECT_FALSE(ParseIpv4("1.2.3.4.5", &addr));
  EXPECT_FALSE(ParseIpv4("abc", &addr));
}

TEST(StringsTest, Ipv4RoundTrip) {
  uint32_t addr = 0;
  ASSERT_TRUE(ParseIpv4("192.168.0.254", &addr));
  EXPECT_EQ(Ipv4ToString(addr), "192.168.0.254");
}

}  // namespace
}  // namespace rb
