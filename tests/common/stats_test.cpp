#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rb {
namespace {

TEST(MeanVarTest, BasicMoments) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    mv.Add(x);
  }
  EXPECT_EQ(mv.count(), 8u);
  EXPECT_DOUBLE_EQ(mv.mean(), 5.0);
  EXPECT_DOUBLE_EQ(mv.variance(), 4.0);
  EXPECT_DOUBLE_EQ(mv.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(mv.min(), 2.0);
  EXPECT_DOUBLE_EQ(mv.max(), 9.0);
  EXPECT_DOUBLE_EQ(mv.sum(), 40.0);
}

TEST(MeanVarTest, EmptyIsZero) {
  MeanVar mv;
  EXPECT_EQ(mv.count(), 0u);
  EXPECT_EQ(mv.mean(), 0.0);
  EXPECT_EQ(mv.variance(), 0.0);
}

TEST(MeanVarTest, MergeEqualsCombined) {
  MeanVar a;
  MeanVar b;
  MeanVar all;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(MeanVarTest, MergeIntoEmpty) {
  MeanVar a;
  MeanVar b;
  b.Add(3.0);
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(HistogramTest, PercentilesOfUniformRamp) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Percentile(50), 50, 2.0);
  EXPECT_NEAR(h.Percentile(95), 95, 2.0);
  EXPECT_NEAR(h.Percentile(99), 99, 2.0);
}

TEST(HistogramTest, OverflowAndUnderflowCounted) {
  Histogram h(0, 10, 10);
  h.Add(-5);
  h.Add(100);
  h.Add(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  // A rank in the underflow bucket reports the observed min, not lo.
  EXPECT_DOUBLE_EQ(h.Percentile(10), -5.0);
}

TEST(HistogramTest, AllSamplesInUnderflowBucket) {
  Histogram h(0, 10, 10);
  h.Add(-3);
  h.Add(-7);
  h.Add(-1);
  EXPECT_EQ(h.underflow(), 3u);
  // Every rank is clipped below range: all percentiles report min().
  EXPECT_DOUBLE_EQ(h.Percentile(1), -7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), -7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), -7.0);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  Histogram h(0, 10, 10);
  h.Add(20);
  h.Add(50);
  h.Add(30);
  EXPECT_EQ(h.overflow(), 3u);
  // Every rank is clipped above range: all percentiles report max().
  EXPECT_DOUBLE_EQ(h.Percentile(1), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 50.0);
}

TEST(HistogramTest, SummaryReportsClippedCounts) {
  Histogram h(0, 10, 10);
  h.Add(5);
  EXPECT_EQ(h.Summary().find("uf="), std::string::npos);
  h.Add(-1);
  h.Add(100);
  h.Add(200);
  std::string s = h.Summary();
  EXPECT_NE(s.find("uf=1"), std::string::npos);
  EXPECT_NE(s.find("of=2"), std::string::npos);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h(0, 1, 10);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0, 10, 10);
  h.Add(3);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h(0, 10, 10);
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(RateTest, FromCounts) {
  Rate r = Rate::FromCounts(1000, 64000, 0.001);
  EXPECT_DOUBLE_EQ(r.pps, 1e6);
  EXPECT_DOUBLE_EQ(r.bps, 64000 * 8 / 0.001);
  EXPECT_DOUBLE_EQ(r.mpps(), 1.0);
}

TEST(RateTest, ZeroSecondsGivesZero) {
  Rate r = Rate::FromCounts(5, 100, 0);
  EXPECT_EQ(r.pps, 0.0);
  EXPECT_EQ(r.bps, 0.0);
}

TEST(JainTest, PerfectFairness) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5, 5, 5, 5}), 1.0);
}

TEST(JainTest, TotalUnfairness) {
  // One user hogging everything among n users scores 1/n.
  EXPECT_NEAR(JainFairnessIndex({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainTest, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(PortCountersTest, AddAndMerge) {
  PortCounters a;
  a.AddPacket(64);
  a.AddPacket(128);
  a.drops = 1;
  PortCounters b;
  b.AddPacket(1500);
  b.Merge(a);
  EXPECT_EQ(b.packets, 3u);
  EXPECT_EQ(b.bytes, 64u + 128u + 1500u);
  EXPECT_EQ(b.drops, 1u);
}

}  // namespace
}  // namespace rb
