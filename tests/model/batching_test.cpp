#include "model/batching.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(BatchingTest, DefaultConfigHasZeroDelta) {
  EXPECT_DOUBLE_EQ(BatchingCyclesDelta(BatchingConfig{32, 16}), 0.0);
}

TEST(BatchingTest, NoBatchingIsMostExpensive) {
  double none = BatchingCyclesDelta(BatchingConfig{1, 1});
  double poll_only = BatchingCyclesDelta(BatchingConfig{32, 1});
  double full = BatchingCyclesDelta(BatchingConfig{32, 16});
  EXPECT_GT(none, poll_only);
  EXPECT_GT(poll_only, full);
}

TEST(BatchingTest, DeltaMatchesTable1Anchors) {
  // Table 1 rate ratios translate to cycle deltas (see batching.hpp).
  // no batching adds ~6700 cycles over the tuned config.
  double none = BatchingCyclesDelta(BatchingConfig{1, 1});
  EXPECT_NEAR(none, 6688, 100);
  double poll_only = BatchingCyclesDelta(BatchingConfig{32, 1});
  EXPECT_NEAR(poll_only, 1133, 50);
}

TEST(BatchingTest, MonotoneInKp) {
  double prev = 1e18;
  for (uint16_t kp : {1, 2, 4, 8, 16, 32, 64}) {
    double d = BatchingCyclesDelta(BatchingConfig{kp, 16});
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(BatchingTest, MonotoneInKn) {
  double prev = 1e18;
  for (uint16_t kn : {1, 2, 4, 8, 16}) {
    double d = BatchingCyclesDelta(BatchingConfig{32, kn});
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(SharedQueueTest, NoSerializationForOneCore) {
  EXPECT_DOUBLE_EQ(SharedQueueSerializedCycles(BatchingConfig{}, 1), 0.0);
  EXPECT_DOUBLE_EQ(SharedQueueSerializedCycles(BatchingConfig{}, 0), 0.0);
}

TEST(SharedQueueTest, BatchingShrinksCriticalSection) {
  double unbatched = SharedQueueSerializedCycles(BatchingConfig{1, 1}, 8);
  double batched = SharedQueueSerializedCycles(BatchingConfig{32, 16}, 8);
  EXPECT_GT(unbatched, batched);
  // Calibration anchors: 2.8 GHz / S = Fig 7's single-queue rates.
  EXPECT_NEAR(2.8e9 / unbatched, 2.83e6, 0.1e6);
  EXPECT_NEAR(2.8e9 / batched, 9.48e6, 0.3e6);
}

}  // namespace
}  // namespace rb
