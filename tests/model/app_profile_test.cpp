#include "model/app_profile.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

constexpr double kCycles = 8 * 2.8e9;

TEST(AppProfileTest, ForwardingCalibratedTo64BRate) {
  AppProfile p = AppProfile::For(App::kMinimalForwarding);
  // 18.96 Mpps at 64 B (Fig 8): cycles/packet = total cycles / rate.
  EXPECT_NEAR(kCycles / p.cpu_cycles.At(64), 18.96e6, 0.05e6);
}

TEST(AppProfileTest, RoutingCalibratedTo64BRate) {
  AppProfile p = AppProfile::For(App::kIpRouting);
  double gbps = kCycles / p.cpu_cycles.At(64) * 64 * 8 / 1e9;
  EXPECT_NEAR(gbps, 6.35, 0.05);
}

TEST(AppProfileTest, IpsecCalibratedTo64BRate) {
  AppProfile p = AppProfile::For(App::kIpsec);
  double gbps = kCycles / p.cpu_cycles.At(64) * 64 * 8 / 1e9;
  EXPECT_NEAR(gbps, 1.4, 0.05);
}

TEST(AppProfileTest, IpsecAbileneAnchor) {
  AppProfile p = AppProfile::For(App::kIpsec);
  double mean = 729.6;
  double gbps = kCycles / p.cpu_cycles.At(mean) * mean * 8 / 1e9;
  EXPECT_NEAR(gbps, 4.45, 0.1);
}

TEST(AppProfileTest, CpuLoadRatio1024vs64Is1_6) {
  AppProfile p = AppProfile::For(App::kMinimalForwarding);
  EXPECT_NEAR(p.cpu_cycles.At(1024) / p.cpu_cycles.At(64), 1.6, 0.01);
}

TEST(AppProfileTest, MemoryLoadRatio1024vs64Is6) {
  AppProfile p = AppProfile::For(App::kMinimalForwarding);
  EXPECT_NEAR(p.memory_bytes.At(1024) / p.memory_bytes.At(64), 6.0, 0.05);
}

TEST(AppProfileTest, IoLoadRatio1024vs64Is11) {
  AppProfile p = AppProfile::For(App::kMinimalForwarding);
  EXPECT_NEAR(p.io_bytes.At(1024) / p.io_bytes.At(64), 11.0, 0.1);
}

TEST(AppProfileTest, RoutingMemoryLoadSupportsNextGenProjection) {
  // The 19.9 Gbps next-gen routing projection pins routing's 64 B memory
  // load at ~1684 B/packet (see DESIGN.md §5).
  AppProfile p = AppProfile::For(App::kIpRouting);
  EXPECT_NEAR(p.memory_bytes.At(64), 1684, 5);
}

TEST(AppProfileTest, OrderingAcrossApps) {
  double fwd = AppProfile::For(App::kMinimalForwarding).cpu_cycles.At(64);
  double rtr = AppProfile::For(App::kIpRouting).cpu_cycles.At(64);
  double ipsec = AppProfile::For(App::kIpsec).cpu_cycles.At(64);
  EXPECT_LT(fwd, rtr);
  EXPECT_LT(rtr, ipsec);
}

TEST(AppProfileTest, Table3ReferenceValues) {
  EXPECT_EQ(AppProfile::For(App::kMinimalForwarding).instructions_per_packet_64, 1033);
  EXPECT_EQ(AppProfile::For(App::kIpRouting).instructions_per_packet_64, 1512);
  EXPECT_EQ(AppProfile::For(App::kIpsec).instructions_per_packet_64, 14221);
  EXPECT_DOUBLE_EQ(AppProfile::For(App::kIpsec).cycles_per_instruction_64, 0.55);
}

TEST(AppProfileTest, InterSocketIsFractionOfMemory) {
  for (App app : {App::kMinimalForwarding, App::kIpRouting, App::kIpsec}) {
    AppProfile p = AppProfile::For(app);
    EXPECT_NEAR(p.inter_socket_bytes.At(64) / p.memory_bytes.At(64), 0.25, 0.02);
  }
}

TEST(AppProfileTest, LoadsGrowWithSize) {
  for (App app : {App::kMinimalForwarding, App::kIpRouting, App::kIpsec}) {
    AppProfile p = AppProfile::For(app);
    for (const LoadCurve* curve : {&p.cpu_cycles, &p.memory_bytes, &p.io_bytes, &p.pcie_bytes}) {
      EXPECT_GT(curve->At(1024), curve->At(64));
      EXPECT_GT(curve->At(64), 0);
    }
  }
}

}  // namespace
}  // namespace rb
