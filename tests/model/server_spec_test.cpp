#include "model/server_spec.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(ServerSpecTest, NehalemMatchesTable2) {
  ServerSpec s = ServerSpec::Nehalem();
  EXPECT_EQ(s.total_cores(), 8);
  EXPECT_DOUBLE_EQ(s.total_cycles_per_sec(), 8 * 2.8e9);
  // Table 2 rows.
  EXPECT_DOUBLE_EQ(s.memory.nominal_bps, 410e9);
  EXPECT_DOUBLE_EQ(s.memory.empirical_bps, 262e9);
  EXPECT_DOUBLE_EQ(s.inter_socket.nominal_bps, 200e9);
  EXPECT_DOUBLE_EQ(s.inter_socket.empirical_bps, 144.34e9);
  EXPECT_DOUBLE_EQ(s.io.nominal_bps, 400e9);
  EXPECT_DOUBLE_EQ(s.io.empirical_bps, 117e9);
  EXPECT_DOUBLE_EQ(s.pcie.nominal_bps, 64e9);
  EXPECT_DOUBLE_EQ(s.pcie.empirical_bps, 50.8e9);
  // §4.1: two dual-port NICs capped at 12.3 Gbps each -> 24.6 Gbps input.
  EXPECT_DOUBLE_EQ(s.max_input_bps(), 24.6e9);
  EXPECT_FALSE(s.shared_bus);
}

TEST(ServerSpecTest, XeonIsSharedBus) {
  ServerSpec s = ServerSpec::SharedBusXeon();
  EXPECT_TRUE(s.shared_bus);
  EXPECT_EQ(s.total_cores(), 8);
  EXPECT_DOUBLE_EQ(s.clock_hz, 2.4e9);
  EXPECT_GT(s.fsb_cpu_stall_factor, 1.0);
  EXPECT_GT(s.fsb_bps, 0.0);
}

TEST(ServerSpecTest, NextGenScalesPerPaper) {
  ServerSpec cur = ServerSpec::Nehalem();
  ServerSpec next = ServerSpec::NextGenNehalem();
  // §5.3: 4x CPU, 2x memory, 2x I/O.
  EXPECT_DOUBLE_EQ(next.total_cycles_per_sec(), 4 * cur.total_cycles_per_sec());
  EXPECT_DOUBLE_EQ(next.memory.empirical_bps, 2 * cur.memory.empirical_bps);
  EXPECT_DOUBLE_EQ(next.io.empirical_bps, 2 * cur.io.empirical_bps);
  EXPECT_GT(next.nic_slots, cur.nic_slots);
}

}  // namespace
}  // namespace rb
