#include "model/scenarios.hpp"

#include <gtest/gtest.h>

#include <map>

namespace rb {
namespace {

std::map<Fig6Scenario, Fig6Result> ByScenario() {
  std::map<Fig6Scenario, Fig6Result> out;
  for (const auto& r : EvaluateFig6Scenarios()) {
    out[r.scenario] = r;
  }
  return out;
}

TEST(Fig6Test, AllScenariosPresent) {
  EXPECT_EQ(EvaluateFig6Scenarios().size(), 7u);
}

TEST(Fig6Test, EachScenarioWithin15PercentOfPaper) {
  for (const auto& r : EvaluateFig6Scenarios()) {
    EXPECT_NEAR(r.gbps_per_fp / r.paper_gbps, 1.0, 0.15) << r.label;
  }
}

TEST(Fig6Test, ParallelBeatsPipeline) {
  auto by = ByScenario();
  EXPECT_GT(by[Fig6Scenario::kParallel].gbps_per_fp,
            by[Fig6Scenario::kPipelineSameL3].gbps_per_fp);
  EXPECT_GT(by[Fig6Scenario::kPipelineSameL3].gbps_per_fp,
            by[Fig6Scenario::kPipelineCrossL3].gbps_per_fp);
}

TEST(Fig6Test, SyncOverheadNear29Percent) {
  auto by = ByScenario();
  double drop = 1.0 - by[Fig6Scenario::kPipelineSameL3].gbps_per_fp /
                          by[Fig6Scenario::kParallel].gbps_per_fp;
  EXPECT_NEAR(drop, 0.29, 0.05);
}

TEST(Fig6Test, CacheMissesNear64Percent) {
  auto by = ByScenario();
  double drop = 1.0 - by[Fig6Scenario::kPipelineCrossL3].gbps_per_fp /
                          by[Fig6Scenario::kParallel].gbps_per_fp;
  EXPECT_NEAR(drop, 0.64, 0.05);
}

TEST(Fig6Test, MultiQueueSplitIs3xSplitter) {
  auto by = ByScenario();
  double ratio = by[Fig6Scenario::kSplitterWithMq].gbps_per_fp /
                 by[Fig6Scenario::kSplitterNoMq].gbps_per_fp;
  // Paper: "more than three times higher".
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 3.6);
}

TEST(Fig6Test, OverlappingPathsRecoverWithMultiQueue) {
  auto by = ByScenario();
  // Without multi-queue: ~60% drop; with: parity with non-overlapping.
  EXPECT_NEAR(by[Fig6Scenario::kOverlapNoMq].gbps_per_fp, 0.7, 0.1);
  EXPECT_DOUBLE_EQ(by[Fig6Scenario::kOverlapWithMq].gbps_per_fp,
                   by[Fig6Scenario::kParallel].gbps_per_fp);
}

}  // namespace
}  // namespace rb
