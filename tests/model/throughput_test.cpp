#include "model/throughput.hpp"

#include <gtest/gtest.h>

#include "model/extrapolate.hpp"

namespace rb {
namespace {

ThroughputConfig Base(App app, double bytes) {
  ThroughputConfig cfg;
  cfg.app = app;
  cfg.frame_bytes = bytes;
  return cfg;
}

TEST(ThroughputTest, Forwarding64BIsCpuBound) {
  ThroughputResult r = SolveThroughput(Base(App::kMinimalForwarding, 64));
  EXPECT_EQ(r.bottleneck, "cpu");
  EXPECT_NEAR(r.bps / 1e9, 9.7, 0.3);  // paper: 9.7 Gbps / 18.96 Mpps
  EXPECT_NEAR(r.pps / 1e6, 18.96, 0.5);
}

TEST(ThroughputTest, Routing64BIsCpuBound) {
  ThroughputResult r = SolveThroughput(Base(App::kIpRouting, 64));
  EXPECT_EQ(r.bottleneck, "cpu");
  EXPECT_NEAR(r.bps / 1e9, 6.35, 0.2);
}

TEST(ThroughputTest, Ipsec64BIsCpuBound) {
  ThroughputResult r = SolveThroughput(Base(App::kIpsec, 64));
  EXPECT_EQ(r.bottleneck, "cpu");
  EXPECT_NEAR(r.bps / 1e9, 1.4, 0.1);
}

TEST(ThroughputTest, ForwardingAbileneIsNicLimited) {
  // Large/mixed packets hit the 24.6 Gbps NIC-slot input cap, not a server
  // bottleneck (§5.2).
  ThroughputResult r = SolveThroughput(Base(App::kMinimalForwarding, 729.6));
  EXPECT_EQ(r.bottleneck, "nic-input");
  EXPECT_NEAR(r.bps / 1e9, 24.6, 0.1);
}

TEST(ThroughputTest, RoutingAbileneIsNicLimited) {
  ThroughputResult r = SolveThroughput(Base(App::kIpRouting, 729.6));
  EXPECT_EQ(r.bottleneck, "nic-input");
  EXPECT_NEAR(r.bps / 1e9, 24.6, 0.1);
}

TEST(ThroughputTest, IpsecAbileneIsCpuBound) {
  ThroughputResult r = SolveThroughput(Base(App::kIpsec, 729.6));
  EXPECT_EQ(r.bottleneck, "cpu");
  EXPECT_NEAR(r.bps / 1e9, 4.45, 0.15);
}

TEST(ThroughputTest, NonBottlenecksStayBelowBounds) {
  // §5.3 item (3): memory and I/O loads are well under their empirical
  // upper bounds at the achieved rates.
  for (App app : {App::kMinimalForwarding, App::kIpRouting, App::kIpsec}) {
    ThroughputResult r = SolveThroughput(Base(app, 64));
    EXPECT_GT(r.memory_pps, r.pps);
    EXPECT_GT(r.io_pps, r.pps);
    EXPECT_GT(r.inter_socket_pps, r.pps);
  }
}

TEST(ThroughputTest, SingleQueueCapsThroughput) {
  ThroughputConfig cfg = Base(App::kMinimalForwarding, 64);
  cfg.multi_queue = false;
  ThroughputResult r = SolveThroughput(cfg);
  EXPECT_EQ(r.bottleneck, "queue-lock");
  // Fig 7 middle bar: single queue with batching ~9.5 Mpps.
  EXPECT_NEAR(r.pps / 1e6, 9.5, 0.5);
}

TEST(ThroughputTest, SingleQueueNoBatching) {
  ThroughputConfig cfg = Base(App::kMinimalForwarding, 64);
  cfg.multi_queue = false;
  cfg.batching = {1, 1};
  ThroughputResult r = SolveThroughput(cfg);
  // Fig 7 / Table 1: 2.83 Mpps (1.46 Gbps).
  EXPECT_NEAR(r.pps / 1e6, 2.83, 0.15);
}

TEST(ThroughputTest, XeonIs11xBelowTunedNehalem) {
  ThroughputConfig nehalem = Base(App::kMinimalForwarding, 64);
  ThroughputConfig xeon = nehalem;
  xeon.spec = ServerSpec::SharedBusXeon();
  xeon.multi_queue = false;
  xeon.batching = {1, 1};
  double ratio = SolveThroughput(nehalem).pps / SolveThroughput(xeon).pps;
  EXPECT_NEAR(ratio, 11.0, 1.5);  // Fig 7: "11-fold improvement"
}

TEST(ThroughputTest, XeonLargePacketsAreBusBound) {
  ThroughputConfig cfg = Base(App::kMinimalForwarding, 1024);
  cfg.spec = ServerSpec::SharedBusXeon();
  ThroughputResult r = SolveThroughput(cfg);
  EXPECT_EQ(r.bottleneck, "front-side-bus");
}

TEST(ThroughputTest, FewerCoresLowerCpuBound) {
  ThroughputConfig cfg = Base(App::kMinimalForwarding, 64);
  cfg.cores_used = 4;
  ThroughputResult half = SolveThroughput(cfg);
  ThroughputResult full = SolveThroughput(Base(App::kMinimalForwarding, 64));
  EXPECT_NEAR(half.pps * 2, full.pps, full.pps * 0.01);
}

TEST(ThroughputTest, LoadsIndependentOfRate) {
  // §5.3 item (4): per-packet loads are constant in the input rate; our
  // loads depend only on configuration, which this guards.
  ComponentLoads a = LoadsFor(Base(App::kIpRouting, 64));
  ComponentLoads b = LoadsFor(Base(App::kIpRouting, 64));
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
}

TEST(ProjectionTest, NextGen64BMatchesPaper) {
  auto projections = ProjectNextGen64B();
  ASSERT_EQ(projections.size(), 3u);
  // §5.3: 38.8 / 19.9 / 5.8 Gbps.
  EXPECT_NEAR(projections[0].next_gen.bps / 1e9, 38.8, 1.2);
  EXPECT_NEAR(projections[1].next_gen.bps / 1e9, 19.9, 1.0);
  EXPECT_NEAR(projections[2].next_gen.bps / 1e9, 5.8, 0.3);
  // Forwarding stays CPU-bound; routing flips to memory-bound.
  EXPECT_EQ(projections[0].next_gen.bottleneck, "cpu");
  EXPECT_EQ(projections[1].next_gen.bottleneck, "memory");
}

TEST(ProjectionTest, AbileneUnlimitedNicsNear70G) {
  ThroughputResult r = ProjectAbileneUnlimitedNics(App::kMinimalForwarding, 729.6);
  // Paper estimates ~70 Gbps; our socket-I/O-bound estimate lands in the
  // same band.
  EXPECT_GT(r.bps / 1e9, 55.0);
  EXPECT_LT(r.bps / 1e9, 85.0);
}

}  // namespace
}  // namespace rb
