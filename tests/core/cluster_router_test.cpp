#include "core/cluster_router.hpp"

#include <gtest/gtest.h>

#include <map>

#include "cluster/reorder.hpp"
#include "packet/headers.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FunctionalClusterConfig SmallCluster(bool direct = true, bool flowlets = true) {
  FunctionalClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.routes = 256;
  cfg.vlb.direct_vlb = direct;
  cfg.vlb.flowlets = flowlets;
  return cfg;
}

Packet* FrameTo(FunctionalCluster* cluster, uint16_t dst_node, uint64_t flow_id, uint64_t seq,
                uint16_t src_port = 1000) {
  FrameSpec spec;
  spec.size = 128;
  spec.flow.src_ip = 0x0b000001 + static_cast<uint32_t>(flow_id);
  spec.flow.dst_ip = cluster->AddressForNode(dst_node);
  spec.flow.src_port = src_port;
  spec.flow.dst_port = 80;
  spec.flow.protocol = 17;
  spec.flow_id = flow_id;
  spec.flow_seq = seq;
  return AllocFrame(spec, &cluster->pool());
}

TEST(FunctionalClusterTest, DeliversToCorrectOutputNode) {
  FunctionalCluster cluster(SmallCluster());
  for (uint16_t dst = 0; dst < 4; ++dst) {
    cluster.InjectExternal(0, FrameTo(&cluster, dst, dst + 1, 0), 0.0);
  }
  cluster.RunUntilIdle();
  for (uint16_t node = 0; node < 4; ++node) {
    Packet* out[8];
    size_t n = cluster.DrainExternal(node, out, 8);
    EXPECT_EQ(n, 1u) << "node " << node;
    for (size_t i = 0; i < n; ++i) {
      // The MAC trick: delivered frames carry the output node in dst MAC.
      EXPECT_EQ(NodeFromMac(EthernetView{out[i]->data()}.dst()), node);
      cluster.pool().Free(out[i]);
    }
  }
}

TEST(FunctionalClusterTest, HeadersProcessedExactlyOnce) {
  // §6.1: each packet's header is processed by a CPU only once, at its
  // input node. VlbRoute counts header processing; VlbSteer never parses.
  FunctionalCluster cluster(SmallCluster(/*direct=*/false));  // force 2-phase
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    cluster.InjectExternal(0, FrameTo(&cluster, 2, static_cast<uint64_t>(i), 0), i * 1e-6);
  }
  cluster.RunUntilIdle();
  uint64_t processed = 0;
  for (uint16_t n = 0; n < 4; ++n) {
    processed += cluster.vlb_route(n).headers_processed();
  }
  EXPECT_EQ(processed, static_cast<uint64_t>(kPackets));
  Packet* out[256];
  size_t n = cluster.DrainExternal(2, out, 256);
  EXPECT_EQ(n, static_cast<size_t>(kPackets));
  for (size_t i = 0; i < n; ++i) {
    cluster.pool().Free(out[i]);
  }
}

TEST(FunctionalClusterTest, ClassicVlbTakesTwoPhases) {
  FunctionalCluster cluster(SmallCluster(/*direct=*/false));
  const int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) {
    cluster.InjectExternal(0, FrameTo(&cluster, 1, static_cast<uint64_t>(i), 0), i * 1e-6);
  }
  cluster.RunUntilIdle();
  // Every packet crossed two internal wires (src -> via -> dst).
  EXPECT_EQ(cluster.wire_packets(), static_cast<uint64_t>(2 * kPackets));
  Packet* out[128];
  size_t n = cluster.DrainExternal(1, out, 128);
  EXPECT_EQ(n, static_cast<size_t>(kPackets));
  for (size_t i = 0; i < n; ++i) {
    cluster.pool().Free(out[i]);
  }
}

TEST(FunctionalClusterTest, DirectVlbUsesOneWireUnderBudget) {
  FunctionalCluster cluster(SmallCluster(/*direct=*/true));
  const int kPackets = 50;
  // Low rate: well under the R/N direct budget.
  for (int i = 0; i < kPackets; ++i) {
    cluster.InjectExternal(3, FrameTo(&cluster, 1, 7, static_cast<uint64_t>(i)), i * 1e-3);
  }
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.wire_packets(), static_cast<uint64_t>(kPackets));
  Packet* out[64];
  size_t n = cluster.DrainExternal(1, out, 64);
  EXPECT_EQ(n, static_cast<size_t>(kPackets));
  for (size_t i = 0; i < n; ++i) {
    cluster.pool().Free(out[i]);
  }
}

TEST(FunctionalClusterTest, LocalTrafficNeverTouchesWires) {
  FunctionalCluster cluster(SmallCluster());
  cluster.InjectExternal(2, FrameTo(&cluster, 2, 1, 0), 0.0);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.wire_packets(), 0u);
  Packet* out[4];
  ASSERT_EQ(cluster.DrainExternal(2, out, 4), 1u);
  cluster.pool().Free(out[0]);
}

TEST(FunctionalClusterTest, FlowletKeepsFlowInOrder) {
  FunctionalCluster cluster(SmallCluster(/*direct=*/true, /*flowlets=*/true));
  const int kPackets = 300;
  for (int i = 0; i < kPackets; ++i) {
    cluster.InjectExternal(0, FrameTo(&cluster, 3, 99, static_cast<uint64_t>(i)), i * 1e-5);
  }
  cluster.RunUntilIdle();
  Packet* out[512];
  size_t n = cluster.DrainExternal(3, out, 512);
  ASSERT_EQ(n, static_cast<size_t>(kPackets));
  ReorderDetector det;
  for (size_t i = 0; i < n; ++i) {
    det.Deliver(out[i]->flow_id(), out[i]->flow_seq());
    cluster.pool().Free(out[i]);
  }
  EXPECT_EQ(det.reordered_packets(), 0u);
}

TEST(FunctionalClusterTest, SharedHealthViewGuidesEveryNodesVlb) {
  // The cluster-wide HealthView is bound to every node's VLB router at
  // construction: flipping a belief steers all path selection at once.
  FunctionalCluster cluster(SmallCluster(/*direct=*/false, /*flowlets=*/false));
  cluster.health().SetNodeAlive(2, false);
  for (uint16_t self = 0; self < 4; ++self) {
    if (self == 2) {
      continue;
    }
    uint16_t dst = self == 1 ? 3 : 1;
    for (int i = 0; i < 200; ++i) {
      VlbDecision d = cluster.vlb(self).Route(dst, static_cast<uint64_t>(i), 64, i * 1e-6);
      EXPECT_NE(d.via, 2) << "node " << self;
    }
  }
}

TEST(FunctionalClusterTest, TrafficAvoidsBelievedDeadNodeEndToEnd) {
  FunctionalCluster cluster(SmallCluster(/*direct=*/false, /*flowlets=*/false));
  cluster.health().SetNodeAlive(2, false);
  const int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) {
    cluster.InjectExternal(0, FrameTo(&cluster, 1, static_cast<uint64_t>(i), 0), i * 1e-6);
  }
  cluster.RunUntilIdle();
  // Two-phase VLB with the only other intermediate (3): everything still
  // delivers in two hops.
  EXPECT_EQ(cluster.wire_packets(), static_cast<uint64_t>(2 * kPackets));
  Packet* out[128];
  size_t n = cluster.DrainExternal(1, out, 128);
  EXPECT_EQ(n, static_cast<size_t>(kPackets));
  for (size_t i = 0; i < n; ++i) {
    cluster.pool().Free(out[i]);
  }
}

TEST(FunctionalClusterTest, NoPacketsLeakFromPool) {
  FunctionalCluster cluster(SmallCluster());
  size_t cap = cluster.pool().capacity();
  for (int i = 0; i < 64; ++i) {
    cluster.InjectExternal(static_cast<uint16_t>(i % 4),
                           FrameTo(&cluster, static_cast<uint16_t>((i + 1) % 4),
                                   static_cast<uint64_t>(i), 0),
                           i * 1e-6);
  }
  cluster.RunUntilIdle();
  Packet* out[128];
  for (uint16_t node = 0; node < 4; ++node) {
    size_t n = cluster.DrainExternal(node, out, 128);
    for (size_t i = 0; i < n; ++i) {
      cluster.pool().Free(out[i]);
    }
  }
  EXPECT_EQ(cluster.pool().available(), cap);
}

}  // namespace
}  // namespace rb
