#include "core/single_server_router.hpp"

#include <gtest/gtest.h>

#include "packet/headers.hpp"
#include "workload/injector.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

SingleServerConfig SmallConfig(App app) {
  SingleServerConfig cfg;
  cfg.num_ports = 4;
  cfg.queues_per_port = 4;
  cfg.cores = 4;
  cfg.app = app;
  cfg.pool_packets = 8192;
  cfg.table.num_routes = 5000;  // scaled table for test speed
  return cfg;
}

size_t DrainAll(SingleServerRouter* router, std::vector<uint64_t>* per_port = nullptr) {
  size_t total = 0;
  Packet* burst[64];
  for (int p = 0; p < router->config().num_ports; ++p) {
    size_t port_total = 0;
    size_t n;
    while ((n = router->DrainPort(p, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        router->pool().Free(burst[i]);
      }
      port_total += n;
    }
    if (per_port != nullptr) {
      per_port->push_back(port_total);
    }
    total += port_total;
  }
  return total;
}

TEST(SingleServerTest, MinimalForwardingMovesEverything) {
  SingleServerRouter router(SmallConfig(App::kMinimalForwarding));
  router.Initialize();
  SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  gen_cfg.random_dst = false;
  SyntheticGenerator gen(gen_cfg);
  const int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) {
    Packet* p = AllocFrame(gen.Next(), &router.pool());
    ASSERT_NE(p, nullptr);
    router.DeliverFrame(i % 4, p, 0.0);
  }
  router.RunUntilIdle();
  std::vector<uint64_t> per_port;
  EXPECT_EQ(DrainAll(&router, &per_port), static_cast<size_t>(kPackets));
  // Port i forwards to port (i+1) % 4; inputs were uniform, so outputs are.
  for (uint64_t count : per_port) {
    EXPECT_EQ(count, static_cast<uint64_t>(kPackets) / 4);
  }
}

TEST(SingleServerTest, BulkInjectedBatchForwardsEndToEnd) {
  // The zero-copy injection path: AllocBulk -> template fill ->
  // DeliverBatch, then everything forwards exactly as per-packet delivery
  // would.
  SingleServerRouter router(SmallConfig(App::kMinimalForwarding));
  router.Initialize();
  InjectorConfig inj_cfg;
  inj_cfg.synthetic.packet_size = 64;
  BulkInjector injector(inj_cfg, &router.pool());
  const uint32_t kBurst = 125;
  size_t forwarded = 0;
  for (int port = 0; port < 4; ++port) {
    PacketBatch batch;
    ASSERT_EQ(injector.NextBurst(kBurst, &batch), kBurst);
    router.DeliverBatch(port, &batch, 0.0);
    EXPECT_TRUE(batch.empty());
  }
  router.RunUntilIdle();
  forwarded = DrainAll(&router);
  EXPECT_EQ(forwarded, static_cast<size_t>(4 * kBurst));
  EXPECT_EQ(injector.pool_exhausted(), 0u);
  EXPECT_EQ(router.pool().available(), router.pool().capacity());
}

TEST(SingleServerTest, PoolHandlersExposeOccupancy) {
  SingleServerRouter router(SmallConfig(App::kMinimalForwarding));
  router.Initialize();
  telemetry::HandlerRegistry handlers;
  router.AddHandlers(&handlers);
  EXPECT_EQ(handlers.Read("pool.capacity").text, std::to_string(router.pool().capacity()));
  EXPECT_EQ(handlers.Read("pool.in_use").text, "0");
  Packet* p = router.pool().Alloc();
  EXPECT_EQ(handlers.Read("pool.in_use").text, "1");
  EXPECT_EQ(handlers.Read("pool.available").text,
            std::to_string(router.pool().capacity() - 1));
  router.pool().Free(p);
  // Exhaust the pool: alloc_failures must show through the handler plane.
  std::vector<Packet*> all(router.pool().capacity() + 3);
  size_t got = router.pool().AllocBulk(all.data(), all.size());
  EXPECT_EQ(got, router.pool().capacity());
  EXPECT_EQ(handlers.Read("pool.alloc_failures").text, "3");
  EXPECT_EQ(handlers.Read("pool.available").text, "0");
  router.pool().FreeBulk(all.data(), got);
}

TEST(SingleServerTest, IpRoutingFollowsTable) {
  SingleServerRouter router(SmallConfig(App::kIpRouting));
  router.Initialize();
  // Pick destinations straight from the table so every packet routes.
  const LpmTable& table = router.table();
  SyntheticConfig gen_cfg;
  gen_cfg.random_dst = true;
  gen_cfg.seed = 3;
  SyntheticGenerator gen(gen_cfg);
  int delivered_in = 0;
  for (int i = 0; i < 2000; ++i) {
    FrameSpec spec = gen.Next();
    if (table.Lookup(spec.flow.dst_ip) == LpmTable::kNoRoute) {
      continue;  // only inject routable packets for this test
    }
    Packet* p = AllocFrame(spec, &router.pool());
    ASSERT_NE(p, nullptr);
    router.DeliverFrame(i % 4, p, 0.0);
    delivered_in++;
  }
  ASSERT_GT(delivered_in, 40);  // ~1.5% of random addresses hit a 8K-route table
  router.RunUntilIdle();
  EXPECT_EQ(DrainAll(&router), static_cast<size_t>(delivered_in));
}

TEST(SingleServerTest, IpRoutingDropsUnroutable) {
  SingleServerConfig cfg = SmallConfig(App::kIpRouting);
  cfg.table.num_routes = 10;  // nearly empty table
  SingleServerRouter router(cfg);
  router.Initialize();
  FrameSpec spec;
  spec.size = 64;
  spec.flow.dst_ip = 0x01010101;  // 1.1.1.1: not in a 10-route table
  if (router.table().Lookup(spec.flow.dst_ip) != LpmTable::kNoRoute) {
    GTEST_SKIP() << "random table happened to cover the probe address";
  }
  Packet* p = AllocFrame(spec, &router.pool());
  router.DeliverFrame(0, p, 0.0);
  router.RunUntilIdle();
  EXPECT_EQ(DrainAll(&router), 0u);
  EXPECT_EQ(router.pool().available(), router.pool().capacity());
}

TEST(SingleServerTest, RoutedPacketsHaveDecrementedTtl) {
  SingleServerRouter router(SmallConfig(App::kIpRouting));
  router.Initialize();
  FrameSpec spec;
  spec.size = 64;
  // Find a routable address.
  spec.flow.dst_ip = 0;
  for (uint64_t probe = 1; probe < 1u << 24; probe += 7919) {
    uint32_t addr = static_cast<uint32_t>(probe * 251);
    if (router.table().Lookup(addr) != LpmTable::kNoRoute) {
      spec.flow.dst_ip = addr;
      break;
    }
  }
  ASSERT_NE(spec.flow.dst_ip, 0u);
  Packet* p = AllocFrame(spec, &router.pool());
  router.DeliverFrame(0, p, 0.0);
  router.RunUntilIdle();
  Packet* burst[4];
  Packet* out = nullptr;
  for (int port = 0; port < 4 && out == nullptr; ++port) {
    if (router.DrainPort(port, burst, 4) == 1) {
      out = burst[0];
    }
  }
  ASSERT_NE(out, nullptr);
  Ipv4View ip{out->data() + EthernetView::kSize};
  EXPECT_EQ(ip.ttl(), 63);
  EXPECT_TRUE(ip.ChecksumOk());
  router.pool().Free(out);
}

TEST(SingleServerTest, IpsecOutputIsEspAndBigger) {
  SingleServerRouter router(SmallConfig(App::kIpsec));
  router.Initialize();
  FrameSpec spec;
  spec.size = 128;
  spec.flow.dst_ip = 0x0a0a0a0a;
  Packet* p = AllocFrame(spec, &router.pool());
  router.DeliverFrame(2, p, 0.0);
  router.RunUntilIdle();
  Packet* burst[4];
  // IPsec app forwards port 2 -> port 3.
  ASSERT_EQ(router.DrainPort(3, burst, 4), 1u);
  EXPECT_GT(burst[0]->length(), 128u);
  Ipv4View outer{burst[0]->data() + EthernetView::kSize};
  EXPECT_EQ(outer.protocol(), Ipv4View::kProtoEsp);
  router.pool().Free(burst[0]);
}

TEST(SingleServerTest, QueuePerCoreRuleHolds) {
  // The graph must register one polling task per (port, queue): the §4.2
  // one-core-per-queue discipline, plus one drain task per tx leg.
  SingleServerConfig cfg = SmallConfig(App::kMinimalForwarding);
  SingleServerRouter router(cfg);
  router.Initialize();
  size_t from_tasks = 0;
  for (const auto& task : router.graph().tasks()) {
    if (std::string(task->element()->class_name()) == "FromDevice") {
      from_tasks++;
      EXPECT_GE(task->home_core(), 0);
    }
  }
  EXPECT_EQ(from_tasks, static_cast<size_t>(cfg.num_ports * cfg.queues_per_port));
}

TEST(SingleServerDeathTest, InvalidConfigRejected) {
  SingleServerConfig cfg;
  cfg.num_ports = 0;
  EXPECT_DEATH(SingleServerRouter router(cfg), "port");
}

}  // namespace
}  // namespace rb
