#include <gtest/gtest.h>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/classifier.hpp"
#include "click/elements/dec_ip_ttl.hpp"
#include "click/elements/ether.hpp"
#include "click/elements/ip_lookup.hpp"
#include "click/elements/ipsec.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/router.hpp"
#include "lookup/radix_trie.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

class CollectSink : public Element {
 public:
  CollectSink() : Element(1, 0) {}
  const char* class_name() const override { return "CollectSink"; }
  void Push(int /*port*/, Packet* p) override { got.push_back(p); }
  std::vector<Packet*> got;
};

Packet* Frame(PacketPool* pool, uint32_t dst_ip = 0x0a000001, uint8_t proto = 17,
              uint32_t size = 64) {
  FrameSpec spec;
  spec.size = size;
  spec.flow.src_ip = 0x0b000001;
  spec.flow.dst_ip = dst_ip;
  spec.flow.src_port = 100;
  spec.flow.dst_port = 200;
  spec.flow.protocol = proto;
  return AllocFrame(spec, pool);
}

class ElementsTest : public ::testing::Test {
 protected:
  PacketPool pool_{256};
};

TEST_F(ElementsTest, CheckIpHeaderAcceptsValid) {
  Router r;
  auto* check = r.Add<CheckIpHeader>();
  auto* good = r.Add<CollectSink>();
  auto* bad = r.Add<CollectSink>();
  r.Connect(check, 0, good, 0);
  r.Connect(check, 1, bad, 0);
  r.Initialize();
  check->Push(0, Frame(&pool_));
  EXPECT_EQ(good->got.size(), 1u);
  EXPECT_EQ(bad->got.size(), 0u);
  pool_.Free(good->got[0]);
}

TEST_F(ElementsTest, CheckIpHeaderRejectsBadChecksum) {
  Router r;
  auto* check = r.Add<CheckIpHeader>();
  auto* good = r.Add<CollectSink>();
  auto* bad = r.Add<CollectSink>();
  r.Connect(check, 0, good, 0);
  r.Connect(check, 1, bad, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  p->data()[EthernetView::kSize + 10] ^= 0xff;  // corrupt checksum
  check->Push(0, p);
  EXPECT_EQ(good->got.size(), 0u);
  ASSERT_EQ(bad->got.size(), 1u);
  EXPECT_EQ(check->bad(), 1u);
  pool_.Free(bad->got[0]);
}

TEST_F(ElementsTest, CheckIpHeaderRejectsTruncatedAndNonIp) {
  Router r;
  auto* check = r.Add<CheckIpHeader>();
  auto* good = r.Add<CollectSink>();
  r.Connect(check, 0, good, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  EthernetView{p->data()}.set_ether_type(0x86dd);  // IPv6
  check->Push(0, p);  // goes to unwired output 1 -> dropped
  EXPECT_EQ(good->got.size(), 0u);
  EXPECT_EQ(check->bad(), 1u);
  EXPECT_EQ(check->drops(), 1u);
}

TEST_F(ElementsTest, DecIpTtlDecrementsAndKeepsChecksumValid) {
  Router r;
  auto* ttl = r.Add<DecIpTtl>();
  auto* sink = r.Add<CollectSink>();
  r.Connect(ttl, 0, sink, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  ttl->Push(0, p);
  ASSERT_EQ(sink->got.size(), 1u);
  Ipv4View ip{sink->got[0]->data() + EthernetView::kSize};
  EXPECT_EQ(ip.ttl(), 63);
  EXPECT_TRUE(ip.ChecksumOk()) << "incremental checksum update must hold";
  pool_.Free(sink->got[0]);
}

TEST_F(ElementsTest, DecIpTtlExpiresAtOne) {
  Router r;
  auto* ttl = r.Add<DecIpTtl>();
  auto* ok = r.Add<CollectSink>();
  auto* expired = r.Add<CollectSink>();
  r.Connect(ttl, 0, ok, 0);
  r.Connect(ttl, 1, expired, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  Ipv4View ip{p->data() + EthernetView::kSize};
  ip.set_ttl(1);
  ip.UpdateChecksum();
  ttl->Push(0, p);
  EXPECT_EQ(ok->got.size(), 0u);
  ASSERT_EQ(expired->got.size(), 1u);
  EXPECT_EQ(ttl->expired(), 1u);
  pool_.Free(expired->got[0]);
}

TEST_F(ElementsTest, IpLookupRoutesByTable) {
  RadixTrie table;
  table.Insert(0x0a000000, 8, 1);
  table.Insert(0x14000000, 8, 2);
  Router r;
  auto* lookup = r.Add<IpLookup>(&table, 2);
  auto* port1 = r.Add<CollectSink>();
  auto* port2 = r.Add<CollectSink>();
  r.Connect(lookup, 0, port1, 0);
  r.Connect(lookup, 1, port2, 0);
  r.Initialize();
  lookup->Push(0, Frame(&pool_, 0x0a010101));
  lookup->Push(0, Frame(&pool_, 0x14010101));
  EXPECT_EQ(port1->got.size(), 1u);
  EXPECT_EQ(port2->got.size(), 1u);
  pool_.Free(port1->got[0]);
  pool_.Free(port2->got[0]);
}

TEST_F(ElementsTest, IpLookupDropsNoRoute) {
  RadixTrie table;
  table.Insert(0x0a000000, 8, 1);
  Router r;
  auto* lookup = r.Add<IpLookup>(&table, 1);
  auto* sink = r.Add<CollectSink>();
  r.Connect(lookup, 0, sink, 0);
  r.Initialize();
  lookup->Push(0, Frame(&pool_, 0xc0000001));
  EXPECT_EQ(sink->got.size(), 0u);
  EXPECT_EQ(lookup->no_route(), 1u);
  EXPECT_EQ(pool_.available(), pool_.capacity());
}

TEST_F(ElementsTest, IpLookupOutOfRangeHopDropsInsteadOfAliasing) {
  // Regression: a next hop beyond the identity map used to wrap onto
  // (hop - 1) % n_outputs and silently forward out a wrong port. It must
  // land in the bad_hop bucket and be dropped.
  RadixTrie table;
  table.Insert(0x0a000000, 8, 1);
  table.Insert(0x14000000, 8, 7);  // hop 7 with only 2 ports: misconfigured
  Router r;
  auto* lookup = r.Add<IpLookup>(&table, 2);
  auto* port1 = r.Add<CollectSink>();
  auto* port2 = r.Add<CollectSink>();
  r.Connect(lookup, 0, port1, 0);
  r.Connect(lookup, 1, port2, 0);
  r.Initialize();
  lookup->Push(0, Frame(&pool_, 0x14010101));
  EXPECT_EQ(port1->got.size(), 0u) << "hop 7 must not alias onto port (7-1)%2";
  EXPECT_EQ(port2->got.size(), 0u);
  EXPECT_EQ(lookup->bad_hop(), 1u);
  EXPECT_EQ(lookup->no_route(), 0u);
  EXPECT_EQ(pool_.available(), pool_.capacity());
  // In-range hops still route.
  lookup->Push(0, Frame(&pool_, 0x0a010101));
  ASSERT_EQ(port1->got.size(), 1u);
  pool_.Free(port1->got[0]);
}

TEST_F(ElementsTest, IpLookupExplicitHopMapRemapsPorts) {
  RadixTrie table;
  table.Insert(0x0a000000, 8, 1);
  table.Insert(0x14000000, 8, 2);
  table.Insert(0x1e000000, 8, 3);
  Router r;
  // hop 1 -> port 1, hop 2 -> port 0, hop 3 -> explicitly invalid.
  auto* lookup = r.Add<IpLookup>(&table, 2, std::vector<int32_t>{-1, 1, 0, -1});
  auto* port0 = r.Add<CollectSink>();
  auto* port1 = r.Add<CollectSink>();
  r.Connect(lookup, 0, port0, 0);
  r.Connect(lookup, 1, port1, 0);
  r.Initialize();
  lookup->Push(0, Frame(&pool_, 0x0a010101));
  lookup->Push(0, Frame(&pool_, 0x14010101));
  lookup->Push(0, Frame(&pool_, 0x1e010101));
  ASSERT_EQ(port1->got.size(), 1u);
  ASSERT_EQ(port0->got.size(), 1u);
  EXPECT_EQ(lookup->bad_hop(), 1u);
  pool_.Free(port0->got[0]);
  pool_.Free(port1->got[0]);
  EXPECT_EQ(pool_.available(), pool_.capacity());
}

TEST_F(ElementsTest, IpLookupShortFrameDrops) {
  RadixTrie table;
  table.Insert(0x0a000000, 8, 1);
  Router r;
  auto* lookup = r.Add<IpLookup>(&table, 1);
  auto* sink = r.Add<CollectSink>();
  r.Connect(lookup, 0, sink, 0);
  r.Initialize();
  Packet* p = Frame(&pool_, 0x0a010101);
  p->Trim(p->length() - 20);  // shorter than eth + ip headers
  lookup->Push(0, p);
  EXPECT_EQ(sink->got.size(), 0u);
  EXPECT_EQ(lookup->drops(), 1u);
  EXPECT_EQ(lookup->no_route(), 0u);
  EXPECT_EQ(pool_.available(), pool_.capacity());
}

TEST_F(ElementsTest, EtherClassifierSplitsByType) {
  Router r;
  auto* cls = r.Add<EtherClassifier>();
  auto* ipv4 = r.Add<CollectSink>();
  auto* other = r.Add<CollectSink>();
  r.Connect(cls, 0, ipv4, 0);
  r.Connect(cls, 1, other, 0);
  r.Initialize();
  Packet* a = Frame(&pool_);
  Packet* b = Frame(&pool_);
  EthernetView{b->data()}.set_ether_type(EthernetView::kTypeArp);
  cls->Push(0, a);
  cls->Push(0, b);
  EXPECT_EQ(ipv4->got.size(), 1u);
  EXPECT_EQ(other->got.size(), 1u);
  pool_.Free(a);
  pool_.Free(b);
}

TEST_F(ElementsTest, IpProtoClassifier) {
  Router r;
  auto* cls = r.Add<IpProtoClassifier>(std::vector<uint8_t>{6, 17});
  auto* tcp = r.Add<CollectSink>();
  auto* udp = r.Add<CollectSink>();
  auto* rest = r.Add<CollectSink>();
  r.Connect(cls, 0, tcp, 0);
  r.Connect(cls, 1, udp, 0);
  r.Connect(cls, 2, rest, 0);
  r.Initialize();
  cls->Push(0, Frame(&pool_, 0x0a000001, 6));
  cls->Push(0, Frame(&pool_, 0x0a000001, 17));
  cls->Push(0, Frame(&pool_, 0x0a000001, 1));
  EXPECT_EQ(tcp->got.size(), 1u);
  EXPECT_EQ(udp->got.size(), 1u);
  EXPECT_EQ(rest->got.size(), 1u);
  for (auto* sink : {tcp, udp, rest}) {
    pool_.Free(sink->got[0]);
  }
}

TEST_F(ElementsTest, HashSwitchIsFlowStable) {
  Router r;
  auto* hs = r.Add<HashSwitch>(4);
  std::vector<CollectSink*> sinks;
  for (int i = 0; i < 4; ++i) {
    sinks.push_back(r.Add<CollectSink>());
    r.Connect(hs, i, sinks.back(), 0);
  }
  r.Initialize();
  Packet* a = Frame(&pool_);
  Packet* b = Frame(&pool_);
  a->set_flow_hash(42);
  b->set_flow_hash(42);
  hs->Push(0, a);
  hs->Push(0, b);
  EXPECT_EQ(sinks[42 % 4]->got.size(), 2u);
  pool_.Free(a);
  pool_.Free(b);
}

TEST_F(ElementsTest, RoundRobinSwitchRotates) {
  Router r;
  auto* rr = r.Add<RoundRobinSwitch>(3);
  std::vector<CollectSink*> sinks;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(r.Add<CollectSink>());
    r.Connect(rr, i, sinks.back(), 0);
  }
  r.Initialize();
  std::vector<Packet*> pkts;
  for (int i = 0; i < 6; ++i) {
    Packet* p = Frame(&pool_);
    pkts.push_back(p);
    rr->Push(0, p);
  }
  for (auto* sink : sinks) {
    EXPECT_EQ(sink->got.size(), 2u);
  }
  for (Packet* p : pkts) {
    pool_.Free(p);
  }
}

TEST_F(ElementsTest, EtherEncapStripRoundTrip) {
  Router r;
  MacAddress src{1, 1, 1, 1, 1, 1};
  MacAddress dst{2, 2, 2, 2, 2, 2};
  auto* strip = r.Add<StripEther>();
  auto* encap = r.Add<EtherEncap>(src, dst, EthernetView::kTypeIpv4);
  auto* sink = r.Add<CollectSink>();
  r.Chain({strip, encap, sink});
  r.Initialize();
  Packet* p = Frame(&pool_);
  uint32_t len = p->length();
  strip->Push(0, p);
  ASSERT_EQ(sink->got.size(), 1u);
  EXPECT_EQ(sink->got[0]->length(), len);
  EthernetView eth{sink->got[0]->data()};
  EXPECT_EQ(eth.src(), src);
  EXPECT_EQ(eth.dst(), dst);
  pool_.Free(p);
}

TEST_F(ElementsTest, EtherRewriteOnlyTouchesAddresses) {
  Router r;
  MacAddress src{9, 9, 9, 9, 9, 9};
  MacAddress dst{8, 8, 8, 8, 8, 8};
  auto* rw = r.Add<EtherRewrite>(src, dst);
  auto* sink = r.Add<CollectSink>();
  r.Connect(rw, 0, sink, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  rw->Push(0, p);
  EthernetView eth{p->data()};
  EXPECT_EQ(eth.src(), src);
  EXPECT_EQ(eth.dst(), dst);
  EXPECT_EQ(eth.ether_type(), EthernetView::kTypeIpv4);
  pool_.Free(p);
}

TEST_F(ElementsTest, VlbEncapEncodesOutputNode) {
  Router r;
  auto* vlb = r.Add<VlbEncap>(MacAddress{1, 0, 0, 0, 0, 0});
  auto* sink = r.Add<CollectSink>();
  r.Connect(vlb, 0, sink, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  p->set_output_node(3);
  vlb->Push(0, p);
  ASSERT_EQ(sink->got.size(), 1u);
  EXPECT_EQ(NodeFromMac(EthernetView{p->data()}.dst()), 3);
  pool_.Free(p);
}

TEST_F(ElementsTest, VlbEncapDropsUntagged) {
  Router r;
  auto* vlb = r.Add<VlbEncap>(MacAddress{1, 0, 0, 0, 0, 0});
  auto* sink = r.Add<CollectSink>();
  r.Connect(vlb, 0, sink, 0);
  r.Initialize();
  vlb->Push(0, Frame(&pool_));  // no output node set
  EXPECT_EQ(sink->got.size(), 0u);
  EXPECT_EQ(vlb->drops(), 1u);
}

TEST_F(ElementsTest, IpsecEncryptDecryptChain) {
  EspConfig esp;
  for (int i = 0; i < 16; ++i) {
    esp.key[i] = static_cast<uint8_t>(i);
  }
  Router r;
  auto* enc = r.Add<IpsecEncrypt>(esp);
  auto* dec = r.Add<IpsecDecrypt>(esp);
  auto* sink = r.Add<CollectSink>();
  r.Connect(enc, 0, dec, 0);
  r.Connect(dec, 0, sink, 0);
  r.Initialize();
  Packet* p = Frame(&pool_, 0x0a000001, 17, 256);
  std::vector<uint8_t> original(p->data(), p->data() + p->length());
  enc->Push(0, p);
  ASSERT_EQ(sink->got.size(), 1u);
  EXPECT_EQ(enc->encrypted(), 1u);
  EXPECT_EQ(dec->decrypted(), 1u);
  ASSERT_EQ(p->length(), original.size());
  EXPECT_EQ(memcmp(p->data(), original.data(), original.size()), 0);
  pool_.Free(p);
}

TEST_F(ElementsTest, TeeCopiesToAllOutputs) {
  Router r;
  auto* tee = r.Add<Tee>(3);
  std::vector<CollectSink*> sinks;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(r.Add<CollectSink>());
    r.Connect(tee, i, sinks.back(), 0);
  }
  r.Initialize();
  Packet* p = Frame(&pool_);
  p->set_flow_id(11);
  tee->Push(0, p);
  for (auto* sink : sinks) {
    ASSERT_EQ(sink->got.size(), 1u);
    EXPECT_EQ(sink->got[0]->length(), p->length());
    EXPECT_EQ(sink->got[0]->flow_id(), 11u);
  }
  // Copies are distinct packets.
  EXPECT_NE(sinks[1]->got[0], sinks[0]->got[0]);
  for (auto* sink : sinks) {
    pool_.Free(sink->got[0]);
  }
}

TEST_F(ElementsTest, PaintAndPaintSwitch) {
  Router r;
  auto* paint = r.Add<Paint>(2);
  auto* sw = r.Add<PaintSwitch>(3);
  std::vector<CollectSink*> sinks;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(r.Add<CollectSink>());
    r.Connect(sw, i, sinks.back(), 0);
  }
  r.Connect(paint, 0, sw, 0);
  r.Initialize();
  Packet* p = Frame(&pool_);
  paint->Push(0, p);
  EXPECT_EQ(sinks[2]->got.size(), 1u);
  pool_.Free(p);
}

TEST_F(ElementsTest, QueueDropsWhenFull) {
  Router r;
  auto* q = r.Add<QueueElement>(2);
  r.Initialize();
  std::vector<Packet*> pkts;
  for (int i = 0; i < 4; ++i) {
    q->Push(0, Frame(&pool_));
  }
  EXPECT_GE(q->drops(), 2u);
  Packet* p;
  while ((p = q->Pull(0)) != nullptr) {
    pool_.Free(p);
  }
  EXPECT_EQ(pool_.available(), pool_.capacity());
}

}  // namespace
}  // namespace rb
