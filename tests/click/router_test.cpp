#include "click/router.hpp"

#include <gtest/gtest.h>

#include "click/elements/from_device.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec Frame64() {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 3;
  spec.flow.dst_ip = 4;
  spec.flow.protocol = 17;
  return spec;
}

TEST(RouterTest, ChainConnectsSequentially) {
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<CounterElement>();
  auto* d = r.Add<Discard>();
  r.Chain({a, b, d});
  r.Initialize();
  PacketPool pool(1);
  a->Push(0, pool.Alloc());
  EXPECT_EQ(b->counters().packets, 1u);
  EXPECT_EQ(d->count(), 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(RouterTest, EndToEndDeviceLoop) {
  // FromDevice(nic0) -> Counter -> Queue -> ToDevice(nic1): the canonical
  // minimal-forwarding path.
  PacketPool pool(64);
  NicConfig cfg;
  cfg.kn = 1;
  NicPort in(cfg);
  NicPort out(cfg);
  Router r;
  auto* from = r.Add<FromDevice>(&in, 0, 32);
  auto* counter = r.Add<CounterElement>();
  auto* queue = r.Add<QueueElement>(64);
  auto* to = r.Add<ToDevice>(&out, 0, 32);
  r.Chain({from, counter, queue, to});
  r.Initialize();
  EXPECT_EQ(r.tasks().size(), 2u);  // FromDevice poll + ToDevice drain

  for (int i = 0; i < 10; ++i) {
    in.Deliver(AllocFrame(Frame64(), &pool), 0.0);
  }
  size_t moved = r.RunUntilIdle();
  EXPECT_GE(moved, 20u);  // 10 polled + 10 drained
  EXPECT_EQ(counter->counters().packets, 10u);
  EXPECT_EQ(out.tx_counters().packets, 10u);
  Packet* burst[16];
  size_t n = out.DrainTx(burst, 16);
  EXPECT_EQ(n, 10u);
  for (size_t i = 0; i < n; ++i) {
    pool.Free(burst[i]);
  }
}

TEST(RouterTest, RunTasksOnceReturnsZeroWhenIdle) {
  Router r;
  NicConfig cfg;
  NicPort nic(cfg);
  auto* from = r.Add<FromDevice>(&nic, 0);
  auto* d = r.Add<Discard>();
  r.Connect(from, 0, d, 0);
  r.Initialize();
  EXPECT_EQ(r.RunTasksOnce(), 0u);
}

TEST(RouterDeathTest, DoubleInitializeAborts) {
  Router r;
  r.Initialize();
  EXPECT_DEATH(r.Initialize(), "twice");
}

TEST(RouterDeathTest, RunWithoutInitializeAborts) {
  Router r;
  EXPECT_DEATH(r.RunTasksOnce(), "not initialized");
}

TEST(RouterDeathTest, ConnectAfterInitializeAborts) {
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<Discard>();
  r.Initialize();
  EXPECT_DEATH(r.Connect(a, 0, b, 0), "");
}

}  // namespace
}  // namespace rb
