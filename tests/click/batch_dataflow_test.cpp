// End-to-end tests of the batch-native dataflow: legacy<->batch interop,
// the Queue partial-fit drop accounting, FromDevice graph-batch chunking,
// the graph-walk guarantee that every production element is batch-native,
// and the two-core batched Queue handoff under real threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "click/elements/from_device.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/router.hpp"
#include "core/cluster_router.hpp"
#include "core/single_server_router.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

// A legacy (per-packet) element: records every Push it receives.
class LegacySink : public Element {
 public:
  LegacySink() : Element(1, 0) {}
  const char* class_name() const override { return "LegacySink"; }
  void Push(int /*port*/, Packet* p) override { received.push_back(p); }
  std::vector<Packet*> received;
};

// A legacy pass-through: per-packet Push that forwards to output 0.
class LegacyRelay : public Element {
 public:
  LegacyRelay() : Element(1, 1) {}
  const char* class_name() const override { return "LegacyRelay"; }
  void Push(int /*port*/, Packet* p) override { Output(0, p); }
};

// A batch-native sink: records the size of every batch it receives.
class BatchSink : public BatchElement {
 public:
  BatchSink() : BatchElement(1, 0) {}
  const char* class_name() const override { return "BatchSink"; }
  void PushBatch(int /*port*/, PacketBatch& batch) override {
    batch_sizes.push_back(batch.size());
    for (Packet* p : batch) {
      received.push_back(p);
    }
    batch.Clear();
  }
  std::vector<uint32_t> batch_sizes;
  std::vector<Packet*> received;
};

// A batch-native pass-through (stand-in for any ported element).
class BatchRelay : public BatchElement {
 public:
  BatchRelay() : BatchElement(1, 1) {}
  const char* class_name() const override { return "BatchRelay"; }
  void PushBatch(int /*port*/, PacketBatch& batch) override { OutputBatch(0, batch); }
};

TEST(BatchDataflowTest, BatchIntoLegacyFallsBackToPerPacket) {
  Router r;
  auto* relay = r.Add<BatchRelay>();
  auto* sink = r.Add<LegacySink>();
  r.Connect(relay, 0, sink, 0);
  r.Initialize();

  PacketPool pool(8);
  PacketBatch batch;
  std::vector<Packet*> sent;
  for (int i = 0; i < 5; ++i) {
    Packet* p = pool.Alloc();
    sent.push_back(p);
    batch.PushBack(p);
  }
  relay->PushBatch(0, batch);
  EXPECT_TRUE(batch.empty()) << "callee must leave the pushed batch empty";
  EXPECT_EQ(sink->received, sent) << "legacy fallback must preserve order";
  for (Packet* p : sent) {
    pool.Free(p);
  }
}

TEST(BatchDataflowTest, PerPacketPushIntoBatchNativeWrapsIntoBatch) {
  Router r;
  auto* relay = r.Add<LegacyRelay>();
  auto* sink = r.Add<BatchSink>();
  r.Connect(relay, 0, sink, 0);
  r.Initialize();

  PacketPool pool(4);
  Packet* p = pool.Alloc();
  relay->Push(0, p);
  ASSERT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(sink->received[0], p);
  ASSERT_EQ(sink->batch_sizes.size(), 1u);
  EXPECT_EQ(sink->batch_sizes[0], 1u) << "per-packet push arrives as a 1-packet batch";
  pool.Free(p);
}

TEST(BatchDataflowTest, MixedChainLegacyBetweenBatchNativeElements) {
  // batch-native -> legacy -> batch-native: the burst degrades to
  // per-packet across the legacy hop and re-enters batch-native elements
  // as 1-packet batches, with no packet lost or reordered.
  Router r;
  auto* head = r.Add<BatchRelay>();
  auto* legacy = r.Add<LegacyRelay>();
  auto* sink = r.Add<BatchSink>();
  r.Connect(head, 0, legacy, 0);
  r.Connect(legacy, 0, sink, 0);
  r.Initialize();

  PacketPool pool(8);
  PacketBatch batch;
  std::vector<Packet*> sent;
  for (int i = 0; i < 6; ++i) {
    Packet* p = pool.Alloc();
    sent.push_back(p);
    batch.PushBack(p);
  }
  head->PushBatch(0, batch);
  EXPECT_EQ(sink->received, sent);
  EXPECT_EQ(sink->batch_sizes.size(), 6u);
  for (Packet* p : sent) {
    pool.Free(p);
  }
}

TEST(BatchDataflowTest, QueuePartialFitCountsOnlyOverflowAsDrops) {
  // The satellite drop-accounting fix: a burst that straddles capacity
  // enqueues its prefix; only the packets that did not fit are counted as
  // drops and released — exactly once each.
  Router r;
  auto* queue = r.Add<QueueElement>(8);
  r.Initialize();
  const size_t cap = queue->capacity();

  PacketPool pool(1024);
  const size_t total = cap + 5;
  PacketBatch batch;
  for (size_t i = 0; i < total; ++i) {
    batch.PushBack(pool.Alloc());
  }
  queue->PushBatch(0, batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(queue->size(), cap) << "prefix must be enqueued, not dropped wholesale";
  EXPECT_EQ(queue->drops(), total - cap);
  // The 5 overflow packets went back to the pool exactly once; the
  // enqueued ones are still out.
  EXPECT_EQ(pool.available(), 1024u - cap);

  // Drain and verify FIFO order survived the partial enqueue.
  PacketBatch out;
  EXPECT_EQ(queue->PullBatch(0, &out, static_cast<int>(cap)), cap);
  EXPECT_EQ(out.size(), cap);
  out.ReleaseAll();
  EXPECT_EQ(pool.available(), 1024u);
}

TEST(BatchDataflowTest, FromDeviceSplitsPollBurstAtGraphBatch) {
  PacketPool pool(64);
  NicConfig cfg;
  cfg.kn = 1;
  NicPort nic(cfg);
  Router r;
  auto* from = r.Add<FromDevice>(&nic, 0, 32, -1, /*graph_batch=*/8);
  auto* sink = r.Add<BatchSink>();
  r.Connect(from, 0, sink, 0);
  r.Initialize();

  SyntheticConfig syn_cfg;
  syn_cfg.packet_size = 64;
  SyntheticGenerator gen(syn_cfg);
  for (int i = 0; i < 20; ++i) {
    nic.Deliver(AllocFrame(gen.Next(), &pool), 0.0);
  }
  nic.FlushAllStaged();
  from->RunOnce();
  // 20 polled packets leave as ceil(20/8) = 3 chunks: 8, 8, 4.
  EXPECT_EQ(sink->batch_sizes, (std::vector<uint32_t>{8, 8, 4}));
  for (Packet* p : sink->received) {
    pool.Free(p);
  }
}

TEST(BatchDataflowTest, BatchSizeHistogramObservesBursts) {
  telemetry::MetricRegistry registry;
  Router r;
  auto* relay = r.Add<BatchRelay>();
  auto* sink = r.Add<BatchSink>();
  r.Connect(relay, 0, sink, 0);
  r.BindTelemetry(&registry, nullptr);
  r.Initialize();

  PacketPool pool(32);
  PacketBatch batch;
  for (int i = 0; i < 7; ++i) {
    batch.PushBack(pool.Alloc());
  }
  relay->PushBatch(0, batch);

  auto snap = registry
                  .GetHistogram("elem/" + sink->name() + "/batch_size",
                                telemetry::HistogramOptions{})
                  ->Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  for (Packet* p : sink->received) {
    pool.Free(p);
  }
}

TEST(BatchDataflowTest, EveryProductionElementIsBatchNative) {
  // The acceptance-criteria graph walk: every element the production
  // routers instantiate must implement the batch API natively.
  for (App app : {App::kMinimalForwarding, App::kIpRouting, App::kIpsec}) {
    SingleServerConfig cfg;
    cfg.num_ports = 2;
    cfg.queues_per_port = 1;
    cfg.cores = 1;
    cfg.app = app;
    cfg.pool_packets = 2048;
    cfg.table.num_routes = 1024;
    SingleServerRouter router(cfg);
    router.Initialize();
    for (const auto& e : router.graph().elements()) {
      EXPECT_TRUE(e->batch_native())
          << "element " << e->name() << " (app " << AppName(app) << ") is not batch-native";
    }
  }

  FunctionalClusterConfig ccfg;
  ccfg.num_nodes = 3;
  ccfg.pool_packets = 4096;
  ccfg.routes = 64;
  FunctionalCluster cluster(ccfg);
  for (uint16_t node = 0; node < ccfg.num_nodes; ++node) {
    for (const auto& e : cluster.node_graph(node).elements()) {
      EXPECT_TRUE(e->batch_native())
          << "cluster node " << node << " element " << e->name() << " is not batch-native";
    }
  }
}

TEST(BatchDataflowTest, ConcurrentTwoCoreQueueBatchHandoff) {
  // TSan coverage for the batch paths across the SPSC boundary: one thread
  // pushes bursts into the Queue while another pulls bursts out —
  // the one-pusher/one-puller discipline every Queue runs under.
  Router r;
  auto* queue = r.Add<QueueElement>(256);
  r.Initialize();

  constexpr int kPackets = 4000;
  PacketPool pool(8192);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::thread producer([&] {
    int sent = 0;
    while (sent < kPackets) {
      PacketBatch batch;
      int n = std::min(32, kPackets - sent);
      for (int i = 0; i < n; ++i) {
        Packet* p = pool.Alloc();
        if (p == nullptr) {
          break;
        }
        p->SetLength(64);
        batch.PushBack(p);
      }
      sent += static_cast<int>(batch.size());
      if (batch.empty()) {
        std::this_thread::yield();
        continue;
      }
      queue->PushBatch(0, batch);  // overflow drops release to the pool
    }
    done.store(true, std::memory_order_release);
  });

  // PacketPool is single-threaded by design (per-core pools in deployment),
  // so the consumer parks what it pulls and the main thread releases after
  // both sides join; the pool is big enough that the producer never needs a
  // recycled packet. Overflow drops still release on the producer thread.
  std::vector<Packet*> held;
  held.reserve(kPackets);
  std::thread consumer([&] {
    PacketBatch batch;
    while (true) {
      size_t n = queue->PullBatch(0, &batch, 16);
      if (n == 0) {
        if (done.load(std::memory_order_acquire) && queue->size() == 0) {
          break;
        }
        std::this_thread::yield();
        continue;
      }
      consumed.fetch_add(static_cast<int>(n), std::memory_order_relaxed);
      for (Packet* p : batch) {
        held.push_back(p);
      }
      batch.Clear();
    }
  });

  producer.join();
  consumer.join();
  for (Packet* p : held) {
    PacketPool::Release(p);
  }
  EXPECT_EQ(static_cast<uint64_t>(consumed.load()) + queue->drops(),
            static_cast<uint64_t>(kPackets));
  EXPECT_EQ(pool.available(), 8192u) << "every packet released exactly once";
}

}  // namespace
}  // namespace rb
