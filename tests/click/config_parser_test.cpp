#include "click/config_parser.hpp"

#include <gtest/gtest.h>

#include "click/elements/misc.hpp"
#include "lookup/radix_trie.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec Frame(uint32_t dst_ip = 0x0a000001) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 0x0b000001;
  spec.flow.dst_ip = dst_ip;
  spec.flow.src_port = 100;
  spec.flow.dst_port = 200;
  spec.flow.protocol = 17;
  return spec;
}

class ConfigParserTest : public ::testing::Test {
 protected:
  ConfigParserTest() {
    NicConfig nc;
    nc.num_rx_queues = 1;  // all test frames land on queue 0
    nc.num_tx_queues = 2;
    nc.kn = 1;
    nic_in_ = std::make_unique<NicPort>(nc);
    nic_out_ = std::make_unique<NicPort>(nc);
    context_.ports = {nic_in_.get(), nic_out_.get()};
    table_.Insert(0x0a000000, 8, 1);
    table_.Insert(0x14000000, 8, 2);
    context_.table = &table_;
  }

  PacketPool pool_{256};
  std::unique_ptr<NicPort> nic_in_;
  std::unique_ptr<NicPort> nic_out_;
  RadixTrie table_;
  ConfigContext context_;
  Router router_;
};

TEST_F(ConfigParserTest, MinimalForwardingConfig) {
  const char* config = R"(
    // the §4.2 toy configuration
    src :: FromDevice(0, 0);
    q   :: Queue(256);
    dst :: ToDevice(1, 0);
    src -> Counter -> q -> dst;
  )";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.elements.size(), 3u);
  EXPECT_EQ(r.connections, 3);
  router_.Initialize();

  for (int i = 0; i < 5; ++i) {
    nic_in_->Deliver(AllocFrame(Frame(), &pool_), 0.0);
  }
  router_.RunUntilIdle();
  EXPECT_EQ(nic_out_->tx_counters().packets, 5u);
  Packet* burst[8];
  size_t n = nic_out_->DrainTx(burst, 8);
  for (size_t i = 0; i < n; ++i) {
    pool_.Free(burst[i]);
  }
}

TEST_F(ConfigParserTest, FullIpRouterWithPorts) {
  const char* config = R"(
    src :: FromDevice(0, 0);
    rt  :: IPLookup(2);
    src -> CheckIPHeader -> DecIPTTL -> rt;
    rt [0] -> Queue -> ToDevice(0, 1);
    rt [1] -> Queue -> ToDevice(1, 1);
  )";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  ASSERT_TRUE(r.ok) << r.error;
  router_.Initialize();

  nic_in_->Deliver(AllocFrame(Frame(0x0a010101), &pool_), 0.0);  // hop 1 -> port 0
  nic_in_->Deliver(AllocFrame(Frame(0x14010101), &pool_), 0.0);  // hop 2 -> port 1
  router_.RunUntilIdle();
  EXPECT_EQ(nic_in_->tx_counters().packets, 1u);
  EXPECT_EQ(nic_out_->tx_counters().packets, 1u);
  Packet* burst[4];
  for (NicPort* nic : {nic_in_.get(), nic_out_.get()}) {
    size_t n = nic->DrainTx(burst, 4);
    for (size_t i = 0; i < n; ++i) {
      pool_.Free(burst[i]);
    }
  }
}

TEST_F(ConfigParserTest, CommentsAndWhitespaceIgnored) {
  const char* config =
      "/* block\ncomment */ c :: Counter; // trailing\n d :: Discard;\n c -> d;";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.statements, 3);
}

TEST_F(ConfigParserTest, NamedElementsAreShared) {
  const char* config = R"(
    c :: Counter;
    t :: Tee(2);
    c -> t;
    t [0] -> Discard;
    t [1] -> Discard;
  )";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  ASSERT_TRUE(r.ok) << r.error;
  router_.Initialize();
  auto* counter = dynamic_cast<CounterElement*>(r.elements.at("c"));
  ASSERT_NE(counter, nullptr);
  Packet* p = AllocFrame(Frame(), &pool_);
  counter->Push(0, p);
  EXPECT_EQ(counter->counters().packets, 1u);
  EXPECT_EQ(pool_.available(), pool_.capacity());  // both tee copies discarded
}

TEST_F(ConfigParserTest, UnknownClassReported) {
  ConfigParseResult r = ParseClickConfig("x :: FluxCapacitor;", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("FluxCapacitor"), std::string::npos);
}

TEST_F(ConfigParserTest, UnknownNameReported) {
  ConfigParseResult r = ParseClickConfig("c :: Counter; c -> nope;", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nope"), std::string::npos);
}

TEST_F(ConfigParserTest, DuplicateDeclarationReported) {
  ConfigParseResult r = ParseClickConfig("c :: Counter; c :: Discard;", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("twice"), std::string::npos);
}

TEST_F(ConfigParserTest, DoubleWiringReported) {
  const char* config = "c :: Counter; a :: Discard; b :: Discard; c -> a; c -> b;";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("already wired"), std::string::npos);
}

TEST_F(ConfigParserTest, PortOutOfRangeReported) {
  ConfigParseResult r =
      ParseClickConfig("c :: Counter; d :: Discard; c [3] -> d;", &router_, context_);
  EXPECT_FALSE(r.ok);
}

TEST_F(ConfigParserTest, DeviceIndexOutOfRangeReported) {
  ConfigParseResult r = ParseClickConfig("src :: FromDevice(9, 0);", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST_F(ConfigParserTest, IpLookupWithoutTableReported) {
  ConfigContext no_table;
  no_table.ports = context_.ports;
  Router r2;
  ConfigParseResult r = ParseClickConfig("rt :: IPLookup(2);", &r2, no_table);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("routing table"), std::string::npos);
}

TEST_F(ConfigParserTest, BadIntegerReported) {
  ConfigParseResult r = ParseClickConfig("q :: Queue(lots);", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("lots"), std::string::npos);
}

TEST_F(ConfigParserTest, ErrorsIncludeStatementNumber) {
  ConfigParseResult r = ParseClickConfig("c :: Counter;\n x :: Bogus;", &router_, context_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("statement 2"), std::string::npos);
}

TEST_F(ConfigParserTest, ClassifierChainWorks) {
  const char* config = R"(
    cls :: IpProtoClassifier(6, 17);
    tcp :: Counter;  udp :: Counter;  other :: Counter;
    cls [0] -> tcp -> Discard;
    cls [1] -> udp -> Discard;
    cls [2] -> other -> Discard;
  )";
  ConfigParseResult r = ParseClickConfig(config, &router_, context_);
  ASSERT_TRUE(r.ok) << r.error;
  router_.Initialize();
  auto* cls = r.elements.at("cls");
  FrameSpec tcp_spec = Frame();
  tcp_spec.flow.protocol = 6;
  cls->Push(0, AllocFrame(tcp_spec, &pool_));
  cls->Push(0, AllocFrame(Frame(), &pool_));  // udp
  EXPECT_EQ(dynamic_cast<CounterElement*>(r.elements.at("tcp"))->counters().packets, 1u);
  EXPECT_EQ(dynamic_cast<CounterElement*>(r.elements.at("udp"))->counters().packets, 1u);
  EXPECT_EQ(dynamic_cast<CounterElement*>(r.elements.at("other"))->counters().packets, 0u);
}

}  // namespace
}  // namespace rb
