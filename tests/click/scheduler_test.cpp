#include "click/scheduler.hpp"

#include <gtest/gtest.h>

#include "click/elements/from_device.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec Frame64(uint16_t port) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 100u + port;
  spec.flow.dst_ip = 200;
  spec.flow.src_port = port;
  spec.flow.protocol = 17;
  return spec;
}

struct TwoPortSetup {
  PacketPool pool{1024};
  NicConfig cfg;
  std::unique_ptr<NicPort> in;
  std::unique_ptr<NicPort> out;
  Router router;
  FromDevice* from[2];

  TwoPortSetup() {
    cfg.num_rx_queues = 2;
    cfg.num_tx_queues = 2;
    cfg.kn = 1;
    in = std::make_unique<NicPort>(cfg);
    out = std::make_unique<NicPort>(cfg);
    for (uint16_t q = 0; q < 2; ++q) {
      from[q] = router.Add<FromDevice>(in.get(), q, 32, q);
      auto* queue = router.Add<QueueElement>(256);
      auto* to = router.Add<ToDevice>(out.get(), q, 32, q);
      router.Connect(from[q], 0, queue, 0);
      router.Connect(queue, 0, to, 0);
    }
    router.Initialize();
  }
};

TEST(SchedulerTest, HomeCorePinningRespected) {
  TwoPortSetup setup;
  ThreadScheduler sched(&setup.router, 2);
  // Queue-q tasks must land on core q: 2 tasks per core (poll + drain).
  EXPECT_EQ(sched.core_tasks(0).size(), 2u);
  EXPECT_EQ(sched.core_tasks(1).size(), 2u);
  for (int core = 0; core < 2; ++core) {
    for (Task* t : sched.core_tasks(core)) {
      EXPECT_EQ(t->home_core(), core);
    }
  }
}

TEST(SchedulerTest, UnpinnedTasksRoundRobin) {
  Router r;
  NicConfig cfg;
  NicPort nic(cfg);
  for (int i = 0; i < 6; ++i) {
    auto* from = r.Add<FromDevice>(&nic, 0, 32, -1);
    auto* d = r.Add<Discard>();
    r.Connect(from, 0, d, 0);
  }
  r.Initialize();
  ThreadScheduler sched(&r, 3);
  for (int core = 0; core < 3; ++core) {
    EXPECT_EQ(sched.core_tasks(core).size(), 2u);
  }
}

TEST(SchedulerTest, RunInlineMovesPackets) {
  TwoPortSetup setup;
  ThreadScheduler sched(&setup.router, 2);
  for (int i = 0; i < 50; ++i) {
    setup.in->Deliver(AllocFrame(Frame64(i % 2), &setup.pool), 0.0);
  }
  sched.RunInline(10);
  EXPECT_EQ(setup.out->tx_counters().packets, 50u);
  Packet* burst[64];
  size_t n = setup.out->DrainTx(burst, 64);
  EXPECT_EQ(n, 50u);
  for (size_t i = 0; i < n; ++i) {
    setup.pool.Free(burst[i]);
  }
}

TEST(SchedulerTest, ThreadedRunForwardsEverything) {
  // Real threads exercise the SPSC handoff; on a single-vCPU host this
  // validates correctness, not speed.
  TwoPortSetup setup;
  for (int i = 0; i < 200; ++i) {
    setup.in->Deliver(AllocFrame(Frame64(i % 2), &setup.pool), 0.0);
  }
  ThreadScheduler sched(&setup.router, 2);
  sched.Start();
  // Wait for the workers to drain the input.
  for (int spin = 0; spin < 2000 && setup.out->tx_counters().packets < 200; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.Stop();
  EXPECT_EQ(setup.out->tx_counters().packets, 200u);
  Packet* burst[256];
  size_t n = setup.out->DrainTx(burst, 256);
  EXPECT_EQ(n, 200u);
  for (size_t i = 0; i < n; ++i) {
    setup.pool.Free(burst[i]);
  }
}

TEST(SchedulerDeathTest, DoubleStartAborts) {
  Router r;
  r.Initialize();
  ThreadScheduler sched(&r, 1);
  sched.Start();
  EXPECT_DEATH(sched.Start(), "already running");
  sched.Stop();
}

}  // namespace
}  // namespace rb
