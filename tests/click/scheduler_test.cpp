#include "click/scheduler.hpp"

#include <gtest/gtest.h>

#include "click/elements/from_device.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "packet/pool.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FrameSpec Frame64(uint16_t port) {
  FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 100u + port;
  spec.flow.dst_ip = 200;
  spec.flow.src_port = port;
  spec.flow.protocol = 17;
  return spec;
}

struct TwoPortSetup {
  PacketPool pool{1024};
  NicConfig cfg;
  std::unique_ptr<NicPort> in;
  std::unique_ptr<NicPort> out;
  Router router;
  FromDevice* from[2];

  TwoPortSetup() {
    cfg.num_rx_queues = 2;
    cfg.num_tx_queues = 2;
    cfg.kn = 1;
    in = std::make_unique<NicPort>(cfg);
    out = std::make_unique<NicPort>(cfg);
    for (uint16_t q = 0; q < 2; ++q) {
      from[q] = router.Add<FromDevice>(in.get(), q, 32, q);
      auto* queue = router.Add<QueueElement>(256);
      auto* to = router.Add<ToDevice>(out.get(), q, 32, q);
      router.Connect(from[q], 0, queue, 0);
      router.Connect(queue, 0, to, 0);
    }
    router.Initialize();
  }
};

TEST(SchedulerTest, HomeCorePinningRespected) {
  TwoPortSetup setup;
  ThreadScheduler sched(&setup.router, 2);
  // Queue-q tasks must land on core q: 2 tasks per core (poll + drain).
  EXPECT_EQ(sched.core_tasks(0).size(), 2u);
  EXPECT_EQ(sched.core_tasks(1).size(), 2u);
  for (int core = 0; core < 2; ++core) {
    for (Task* t : sched.core_tasks(core)) {
      EXPECT_EQ(t->home_core(), core);
    }
  }
}

TEST(SchedulerTest, UnpinnedTasksRoundRobin) {
  Router r;
  NicConfig cfg;
  NicPort nic(cfg);
  for (int i = 0; i < 6; ++i) {
    auto* from = r.Add<FromDevice>(&nic, 0, 32, -1);
    auto* d = r.Add<Discard>();
    r.Connect(from, 0, d, 0);
  }
  r.Initialize();
  ThreadScheduler sched(&r, 3);
  for (int core = 0; core < 3; ++core) {
    EXPECT_EQ(sched.core_tasks(core).size(), 2u);
  }
}

TEST(SchedulerTest, RunInlineMovesPackets) {
  TwoPortSetup setup;
  ThreadScheduler sched(&setup.router, 2);
  for (int i = 0; i < 50; ++i) {
    setup.in->Deliver(AllocFrame(Frame64(i % 2), &setup.pool), 0.0);
  }
  sched.RunInline(10);
  EXPECT_EQ(setup.out->tx_counters().packets, 50u);
  Packet* burst[64];
  size_t n = setup.out->DrainTx(burst, 64);
  EXPECT_EQ(n, 50u);
  for (size_t i = 0; i < n; ++i) {
    setup.pool.Free(burst[i]);
  }
}

TEST(SchedulerTest, ThreadedRunForwardsEverything) {
  // Real threads exercise the SPSC handoff; on a single-vCPU host this
  // validates correctness, not speed.
  TwoPortSetup setup;
  for (int i = 0; i < 200; ++i) {
    setup.in->Deliver(AllocFrame(Frame64(i % 2), &setup.pool), 0.0);
  }
  ThreadScheduler sched(&setup.router, 2);
  sched.Start();
  // Wait for the workers to drain the input.
  for (int spin = 0; spin < 2000 && setup.out->tx_counters().packets < 200; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.Stop();
  EXPECT_EQ(setup.out->tx_counters().packets, 200u);
  Packet* burst[256];
  size_t n = setup.out->DrainTx(burst, 256);
  EXPECT_EQ(n, 200u);
  for (size_t i = 0; i < n; ++i) {
    setup.pool.Free(burst[i]);
  }
}

TEST(SchedulerDeathTest, DoubleStartAborts) {
  Router r;
  r.Initialize();
  ThreadScheduler sched(&r, 1);
  sched.Start();
  EXPECT_DEATH(sched.Start(), "already running");
  sched.Stop();
}

// --- task watchdog ---

double g_wd_now = 0;
double WdClock() { return g_wd_now; }

TEST(SchedulerTest, WatchdogDetectsStallAndRecovery) {
  TwoPortSetup setup;
  telemetry::MetricRegistry registry;
  setup.router.BindTelemetry(&registry, nullptr);
  ThreadScheduler sched(&setup.router, 2);
  g_wd_now = 0;
  WatchdogConfig wc;
  wc.max_stall_s = 1.0;
  wc.check_interval_s = 0.1;
  wc.clock = &WdClock;
  sched.EnableWatchdog(wc);
  ASSERT_TRUE(sched.watchdog_enabled());

  EXPECT_EQ(sched.WatchdogCheckNow(), 0u) << "fresh baseline: nothing is stalled yet";
  g_wd_now = 2.0;  // nothing ran for 2s > max_stall
  EXPECT_EQ(sched.WatchdogCheckNow(), 4u) << "all 4 tasks (2 poll + 2 drain) are starved";
  EXPECT_EQ(sched.watchdog_stall_events(), 4u);
  g_wd_now = 3.0;
  EXPECT_EQ(sched.WatchdogCheckNow(), 4u);
  EXPECT_EQ(sched.watchdog_stall_events(), 4u)
      << "stall events are edge-detected, not re-counted every check";

  // Recovery: one RunOnce per task counts as progress even with no
  // packets to move (the watchdog flags stuck/starved tasks, not idle
  // ones).
  for (int core = 0; core < 2; ++core) {
    for (Task* t : sched.core_tasks(core)) {
      t->RunOnce();
    }
  }
  g_wd_now = 3.5;
  EXPECT_EQ(sched.WatchdogCheckNow(), 0u);
  EXPECT_EQ(registry.Snapshot().CounterValue("sched/watchdog/stall_events"), 4u);
}

TEST(SchedulerTest, WatchdogThreadRunsAlongsideWorkers) {
  TwoPortSetup setup;
  telemetry::MetricRegistry registry;
  setup.router.BindTelemetry(&registry, nullptr);
  for (int i = 0; i < 50; ++i) {
    setup.in->Deliver(AllocFrame(Frame64(i % 2), &setup.pool), 0.0);
  }
  ThreadScheduler sched(&setup.router, 2);
  WatchdogConfig wc;
  wc.max_stall_s = 10.0;  // generous: busy workers must never trip it
  wc.check_interval_s = 1e-3;
  sched.EnableWatchdog(wc);
  sched.Start();
  for (int spin = 0; spin < 2000 && setup.out->tx_counters().packets < 50; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sched.Stop();
  EXPECT_EQ(sched.watchdog_stall_events(), 0u);
  EXPECT_GT(registry.Snapshot().CounterValue("sched/watchdog/checks"), 0u)
      << "the monitor thread must have scanned at least once";
  Packet* burst[64];
  size_t n = setup.out->DrainTx(burst, 64);
  for (size_t i = 0; i < n; ++i) {
    setup.pool.Free(burst[i]);
  }
}

TEST(SchedulerTest, WatchdogStallDumpsFlightRecorder) {
  // Satellite of DESIGN.md §13: a watchdog stall must dump the flight
  // recorder (stderr + the configured file) before any fatal abort, so
  // the black box survives even when the process does not.
  TwoPortSetup setup;
  telemetry::SetThisCore(0);
  telemetry::FlightRecorder recorder(64);
  telemetry::FlightRecorder::Install(&recorder);
  telemetry::FrRecord(telemetry::FrEvent::kUser, telemetry::InternScopeName("pre_stall_marker"),
                      7);

  ThreadScheduler sched(&setup.router, 2);
  g_wd_now = 0;
  WatchdogConfig wc;
  wc.max_stall_s = 1.0;
  wc.clock = &WdClock;
  wc.flight_dump_path = ::testing::TempDir() + "wd_flight_dump.txt";
  sched.EnableWatchdog(wc);
  sched.WatchdogCheckNow();  // baseline
  g_wd_now = 5.0;
  EXPECT_EQ(sched.WatchdogCheckNow(), 4u);

  FILE* f = fopen(wc.flight_dump_path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "stall must write " << wc.flight_dump_path;
  char buf[4096] = {0};
  size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  remove(wc.flight_dump_path.c_str());
  std::string dump(buf, n);
  EXPECT_NE(dump.find("where=pre_stall_marker"), std::string::npos)
      << "events from before the stall are the point of the black box";
  EXPECT_NE(dump.find("watchdog_stall"), std::string::npos)
      << "the stall itself is recorded before dumping";
  telemetry::FlightRecorder::Install(nullptr);
}

TEST(SchedulerDeathTest, WatchdogFatalModeAborts) {
  TwoPortSetup setup;
  ThreadScheduler sched(&setup.router, 2);
  g_wd_now = 100.0;
  WatchdogConfig wc;
  wc.max_stall_s = 0.5;
  wc.clock = &WdClock;
  wc.fatal = true;
  sched.EnableWatchdog(wc);
  g_wd_now = 101.0;
  EXPECT_DEATH(sched.WatchdogCheckNow(), "watchdog");
}

}  // namespace
}  // namespace rb
