// Watermark backpressure and CoDel AQM on QueueElement, the
// Router::DownstreamBlockers discovery walk, FromDevice poll throttling
// against a blocked queue, the Click-config keyword args that select all
// of it, and the two-thread watermark handoff (run under TSan by the
// *Concurrent* CI filter).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "click/config_parser.hpp"
#include "click/elements/from_device.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/queue.hpp"
#include "click/router.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"

namespace rb {
namespace {

double g_clock_now = 0;
double TestClock() { return g_clock_now; }

QueueOptions Watermarked(size_t cap, size_t hi, size_t lo) {
  QueueOptions opt;
  opt.capacity = cap;
  opt.hi_watermark = hi;
  opt.lo_watermark = lo;
  return opt;
}

void PushN(QueueElement* q, PacketPool* pool, size_t n) {
  PacketBatch batch;
  for (size_t i = 0; i < n; ++i) {
    batch.PushBack(pool->Alloc());
  }
  q->PushBatch(0, batch);
}

TEST(QueueBackpressureTest, BlocksAtHighWatermarkUnblocksAtLow) {
  Router r;
  auto* q = r.Add<QueueElement>(Watermarked(64, 32, 16));
  r.Initialize();
  PacketPool pool(256);

  EXPECT_FALSE(q->Blocked());
  EXPECT_EQ(q->PushHeadroom(), 32u) << "headroom is packets-until-hi, not capacity";
  PushN(q, &pool, 31);
  EXPECT_FALSE(q->Blocked());
  EXPECT_EQ(q->PushHeadroom(), 1u);
  PushN(q, &pool, 1);  // reaches hi
  EXPECT_TRUE(q->Blocked());
  EXPECT_EQ(q->PushHeadroom(), 0u);
  EXPECT_EQ(q->blocked_events(), 1u);

  // Sticky until lo: draining to lo+1 is not enough.
  PacketBatch out;
  EXPECT_EQ(q->PullBatch(0, &out, 15), 15u);
  EXPECT_TRUE(q->Blocked()) << "blocked must hold until occupancy reaches lo (hysteresis)";
  EXPECT_EQ(q->PullBatch(0, &out, 1), 1u);  // now at lo = 16
  EXPECT_FALSE(q->Blocked());
  EXPECT_GT(q->PushHeadroom(), 0u);
  out.ReleaseAll();
}

TEST(QueueBackpressureTest, PartialPullBatchStillUnblocks) {
  // The satellite fix: a PullBatch that consumes fewer packets than
  // requested (or than the batch cap) must still run the unblock check —
  // otherwise a consumer that nibbles 1-2 packets at a time can strand
  // the queue in Blocked forever even though it is far below lo.
  Router r;
  auto* q = r.Add<QueueElement>(Watermarked(64, 8, 4));
  r.Initialize();
  PacketPool pool(64);
  PushN(q, &pool, 8);
  ASSERT_TRUE(q->Blocked());

  PacketBatch out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(q->PullBatch(0, &out, 1), 1u);
  }
  EXPECT_EQ(q->size(), 4u);
  EXPECT_FALSE(q->Blocked()) << "partial (1-packet) pulls down to lo must clear Blocked";
  out.ReleaseAll();

  // Same via single-packet Pull.
  PushN(q, &pool, 8 - q->size());
  ASSERT_TRUE(q->Blocked());
  for (int i = 0; i < 4; ++i) {
    Packet* p = q->Pull(0);
    ASSERT_NE(p, nullptr);
    pool.Free(p);
  }
  EXPECT_FALSE(q->Blocked());
}

TEST(QueueBackpressureTest, LegacyQueueExertsNoPressure) {
  Router r;
  auto* q = r.Add<QueueElement>(static_cast<size_t>(16));
  r.Initialize();
  EXPECT_EQ(q->PushHeadroom(), SIZE_MAX);
  PacketPool pool(32);
  PushN(q, &pool, 16);
  EXPECT_FALSE(q->Blocked());
  EXPECT_EQ(q->PushHeadroom(), SIZE_MAX) << "no watermarks -> never signals backpressure";
  PacketBatch out;
  q->PullBatch(0, &out, 16);
  out.ReleaseAll();
}

TEST(QueueBackpressureTest, CodelDropsOnlyUnderPersistentSojourn) {
  QueueOptions opt;
  opt.capacity = 256;
  opt.aqm = AqmMode::kCoDel;
  opt.codel_target_s = 5e-3;
  opt.codel_interval_s = 100e-3;
  Router r;
  auto* q = r.Add<QueueElement>(opt);
  r.Initialize();
  q->set_clock(&TestClock);
  PacketPool pool(512);

  // Low sojourn: packets dequeue "immediately" -> no drops.
  g_clock_now = 0;
  PushN(q, &pool, 32);
  PacketBatch out;
  EXPECT_EQ(q->PullBatch(0, &out, 32), 32u);
  EXPECT_EQ(q->aqm_drops(), 0u);
  out.ReleaseAll();

  // Persistent standing queue: sojourn above target for a full interval.
  g_clock_now = 1.0;
  PushN(q, &pool, 64);
  g_clock_now = 1.2;  // every queued packet now 200ms old (>> target)
  uint64_t pulled = 0;
  while (Packet* p = q->Pull(0)) {
    pulled++;
    pool.Free(p);
    // Advance far enough per dequeue that the drain spans several CoDel
    // intervals — the first drop only comes a full interval after the
    // sojourn first exceeds target.
    g_clock_now += 5e-3;
  }
  EXPECT_GT(q->aqm_drops(), 0u) << "CoDel must shed a standing queue";
  EXPECT_EQ(pulled + q->aqm_drops(), 64u) << "every packet either delivered or AQM-dropped";
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QueueBackpressureTest, CodelDrainUnblocksWatermarkedQueue) {
  // AQM-only drains (drops without a successful Pull) must still clear
  // Blocked once the occupancy falls to lo.
  QueueOptions opt;
  opt.capacity = 64;
  opt.hi_watermark = 32;
  opt.lo_watermark = 4;
  opt.aqm = AqmMode::kCoDel;
  opt.codel_target_s = 1e-3;
  opt.codel_interval_s = 2e-3;
  Router r;
  auto* q = r.Add<QueueElement>(opt);
  r.Initialize();
  q->set_clock(&TestClock);
  PacketPool pool(128);

  g_clock_now = 10.0;
  PushN(q, &pool, 32);
  ASSERT_TRUE(q->Blocked());
  g_clock_now = 20.0;  // ancient sojourns: CoDel drops aggressively
  PacketBatch out;
  while (q->size() > 4 && q->PullBatch(0, &out, 1) > 0) {
    g_clock_now += 0.5;
  }
  EXPECT_LE(q->size(), 4u);
  EXPECT_FALSE(q->Blocked());
  out.ReleaseAll();
}

TEST(QueueBackpressureTest, RouterDiscoversDownstreamBlockers) {
  NicConfig nc;
  NicPort nic(nc);
  Router r;
  auto* from = r.Add<FromDevice>(&nic, 0, 32, -1);
  auto* counter = r.Add<CounterElement>();
  auto* wq = r.Add<QueueElement>(Watermarked(64, 32, 16));
  r.Connect(from, 0, counter, 0);
  r.Connect(counter, 0, wq, 0);
  r.Initialize();

  auto blockers = r.DownstreamBlockers(from);
  ASSERT_EQ(blockers.size(), 1u) << "walk must pass through non-boundary elements";
  EXPECT_EQ(blockers[0], wq);
  EXPECT_EQ(from->downstream_blockers().size(), 1u)
      << "FromDevice caches watermarked blockers at Initialize";
}

TEST(QueueBackpressureTest, FromDeviceThrottlesAgainstBlockedQueue) {
  NicConfig nc;
  nc.ring_entries = 512;
  NicPort nic(nc);
  PacketPool pool(512);
  Router r;
  auto* from = r.Add<FromDevice>(&nic, 0, 32, -1);
  auto* q = r.Add<QueueElement>(Watermarked(256, 48, 24));
  r.Connect(from, 0, q, 0);
  r.Initialize();

  for (int i = 0; i < 200; ++i) {
    nic.Deliver(pool.Alloc(), 0.0);
  }
  // No consumer: polls shrink to the queue's headroom and stop at hi.
  size_t moved = 1;
  while (moved > 0) {
    moved = from->RunOnce();
  }
  EXPECT_EQ(q->size(), 48u) << "poll allowance must clamp exactly at the high watermark";
  EXPECT_TRUE(q->Blocked());
  EXPECT_GT(from->throttled_polls(), 0u);

  // Drain below lo: polling resumes and refills to hi.
  PacketBatch out;
  q->PullBatch(0, &out, 30);
  out.ReleaseAll();
  EXPECT_FALSE(q->Blocked());
  while (from->RunOnce() > 0) {
  }
  EXPECT_EQ(q->size(), 48u);
  // Release everything for a clean pool — the rx ring still holds what
  // the throttled polls left behind, so alternate drain and poll until
  // both sides run dry.
  while (true) {
    PacketBatch rest;
    q->PullBatch(0, &rest, 512);
    const size_t freed = rest.size();
    rest.ReleaseAll();
    if (freed == 0 && from->RunOnce() == 0) {
      break;
    }
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QueueBackpressureTest, ConcurrentWatermarkHandoff) {
  // Two real threads: a producer that respects PushHeadroom and a
  // consumer that nibbles variable-size batches. TSan (CI's *Concurrent*
  // filter) checks the blocked_ flag's acquire/release pairing; the
  // asserts check conservation and that the producer never overruns hi.
  //
  // PacketPool is single-threaded by design (per-core pools, §4.2), so
  // only the producer touches it: the consumer hands finished packets
  // back through a second SPSC ring and the producer recycles them.
  Router r;
  auto* q = r.Add<QueueElement>(Watermarked(128, 64, 16));
  r.Initialize();
  PacketPool pool(256);
  SpscRing<Packet*> recycle(256);
  constexpr uint64_t kTotal = 20000;

  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> overrun{false};
  std::thread producer([&] {
    uint64_t sent = 0;
    while (sent < kTotal) {
      Packet* back = nullptr;
      while (recycle.TryPop(&back)) {
        pool.Free(back);
      }
      size_t headroom = q->PushHeadroom();
      if (headroom == 0) {
        std::this_thread::yield();
        continue;
      }
      size_t n = std::min<uint64_t>({headroom, 32, kTotal - sent});
      PacketBatch batch;
      for (size_t i = 0; i < n; ++i) {
        Packet* p = pool.Alloc();
        if (p == nullptr) {
          break;  // outstanding packets are all in flight; recycle first
        }
        batch.PushBack(p);
      }
      sent += batch.size();
      q->PushBatch(0, batch);
      if (q->size() > 64u + 32u) {
        overrun.store(true);
      }
    }
  });
  std::thread consumer([&] {
    uint64_t got = 0;
    int spin = 0;
    while (got < kTotal) {
      PacketBatch out;
      size_t n = q->PullBatch(0, &out, 1 + static_cast<int>(got % 17));
      if (n == 0) {
        // The escape hatch counts *consecutive* empty pulls: on a
        // single-CPU host a cumulative counter trips during ordinary
        // producer timeslices and strands the producer against a
        // blocked queue forever.
        if (++spin > (1 << 22)) {
          break;  // producer died; let the asserts report
        }
        std::this_thread::yield();
        continue;
      }
      spin = 0;
      got += n;
      for (uint32_t i = 0; i < out.size(); ++i) {
        // Can't fill: the ring holds the whole pool.
        ASSERT_TRUE(recycle.TryPush(out[i]));
      }
      out.Clear();
    }
    consumed.store(got);
  });
  producer.join();
  consumer.join();

  EXPECT_EQ(consumed.load() + q->drops(), kTotal);
  EXPECT_EQ(q->overflow_drops(), 0u) << "headroom-respecting producer must never overflow";
  EXPECT_FALSE(overrun.load());
  Packet* back = nullptr;
  while (recycle.TryPop(&back)) {
    pool.Free(back);
  }
  PacketBatch rest;
  q->PullBatch(0, &rest, 256);
  rest.ReleaseAll();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QueueBackpressureTest, ParserAcceptsWatermarkAndCodelKwargs) {
  ConfigContext context;
  Router r;
  ConfigParseResult res = ParseClickConfig(
      "q :: Queue(64, HI 32, LO 8);\n"
      "c :: Queue(CAPACITY 128, AQM codel, TARGET_US 500, INTERVAL_US 10000);\n",
      &r, context);
  ASSERT_TRUE(res.ok) << res.error;
  auto* q = dynamic_cast<QueueElement*>(res.elements.at("q"));
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->capacity(), 64u);
  EXPECT_EQ(q->options().hi_watermark, 32u);
  EXPECT_EQ(q->options().lo_watermark, 8u);
  EXPECT_EQ(q->options().aqm, AqmMode::kTailDrop);
  auto* c = dynamic_cast<QueueElement*>(res.elements.at("c"));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->capacity(), 128u);
  EXPECT_EQ(c->options().aqm, AqmMode::kCoDel);
  EXPECT_DOUBLE_EQ(c->options().codel_target_s, 500e-6);
  EXPECT_DOUBLE_EQ(c->options().codel_interval_s, 10e-3);
}

TEST(QueueBackpressureTest, ParserRejectsBadQueueKwargs) {
  ConfigContext context;
  const char* bad[] = {
      "q :: Queue(64, HI 128);",           // HI above capacity
      "q :: Queue(64, HI 32, LO 32);",     // LO not below HI
      "q :: Queue(64, LO 8);",             // LO without HI
      "q :: Queue(64, AQM red);",          // unknown AQM
      "q :: Queue(64, HI banana);",        // non-numeric value
      "q :: Queue(64, FOO 1);",            // unknown keyword
      "q :: Queue(HI 32, 64);",            // positional arg not first
  };
  for (const char* cfg : bad) {
    Router r;
    ConfigParseResult res = ParseClickConfig(cfg, &r, context);
    EXPECT_FALSE(res.ok) << "config should have been rejected: " << cfg;
    EXPECT_FALSE(res.error.empty());
  }
}

}  // namespace
}  // namespace rb
