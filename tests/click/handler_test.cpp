// Handler-registry tests (DESIGN.md §13): registration and lookup
// mechanics, the strict write-value parsers, and the element/queue
// handler surfaces — including the live-tuning write handlers whose
// effects must be observable through a subsequent read.
#include "telemetry/handler.hpp"

#include <gtest/gtest.h>

#include "click/elements/queue.hpp"
#include "click/router.hpp"
#include "packet/pool.hpp"

namespace rb {
namespace {

using telemetry::HandlerRegistry;
using telemetry::HandlerResult;

TEST(HandlerRegistryTest, ReadWriteRoundTrip) {
  HandlerRegistry reg;
  int knob = 7;
  reg.AddRead("x.knob", [&] { return std::to_string(knob); });
  reg.AddWrite("x.knob", [&](const std::string& v) {
    uint64_t parsed = 0;
    if (!telemetry::ParseHandlerU64(v, &parsed)) {
      return HandlerResult::Error("want integer");
    }
    knob = static_cast<int>(parsed);
    return HandlerResult::Ok();
  });

  HandlerResult r = reg.Read("x.knob");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.text, "7");
  EXPECT_TRUE(reg.Write("x.knob", "42").ok);
  EXPECT_EQ(reg.Read("x.knob").text, "42");
  EXPECT_EQ(knob, 42);
}

TEST(HandlerRegistryTest, ErrorsForUnknownAndWrongDirection) {
  HandlerRegistry reg;
  reg.AddRead("a.ro", [] { return std::string("1"); });
  reg.AddWrite("a.wo", [](const std::string&) { return HandlerResult::Ok(); });

  HandlerResult r = reg.Read("a.missing");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.text.find("no such handler"), std::string::npos);
  EXPECT_FALSE(reg.Write("a.missing", "1").ok);

  EXPECT_FALSE(reg.Write("a.ro", "1").ok) << "read-only path must reject writes";
  EXPECT_FALSE(reg.Read("a.wo").ok) << "write-only path must reject reads";
  EXPECT_TRUE(reg.Write("a.wo", "anything").ok);
}

TEST(HandlerRegistryTest, WriteErrorPropagatesHandlerMessage) {
  HandlerRegistry reg;
  reg.AddWrite("q.hi", [](const std::string& v) {
    return HandlerResult::Error("hi rejects '" + v + "'");
  });
  HandlerResult r = reg.Write("q.hi", "banana");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.text, "hi rejects 'banana'");
}

TEST(HandlerRegistryTest, ListFiltersByPrefixSorted) {
  HandlerRegistry reg;
  reg.AddRead("b.two", [] { return std::string(); });
  reg.AddRead("a.one", [] { return std::string(); });
  reg.AddWrite("a.one", [](const std::string&) { return HandlerResult::Ok(); });
  reg.AddWrite("a.zzz", [](const std::string&) { return HandlerResult::Ok(); });

  auto all = reg.List();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].path, "a.one");
  EXPECT_TRUE(all[0].readable);
  EXPECT_TRUE(all[0].writable);
  EXPECT_EQ(all[1].path, "a.zzz");
  EXPECT_FALSE(all[1].readable);
  EXPECT_TRUE(all[1].writable);
  EXPECT_EQ(all[2].path, "b.two");

  auto filtered = reg.List("a.");
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].path, "a.one");
  EXPECT_TRUE(reg.Has("b.two"));
  EXPECT_FALSE(reg.Has("b.t"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(HandlerRegistryTest, ReRegisteringReplacesOneDirection) {
  HandlerRegistry reg;
  reg.AddRead("x.v", [] { return std::string("old"); });
  reg.AddRead("x.v", [] { return std::string("new"); });
  EXPECT_EQ(reg.Read("x.v").text, "new");
  EXPECT_EQ(reg.size(), 1u) << "same path must not duplicate";
}

TEST(HandlerParseTest, U64Strict) {
  uint64_t v = 99;
  EXPECT_TRUE(telemetry::ParseHandlerU64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(telemetry::ParseHandlerU64(" 123 ", &v)) << "surrounding whitespace is trimmed";
  EXPECT_EQ(v, 123u);
  for (const char* bad : {"", "  ", "12x", "x12", "1 2", "-1", "1.5"}) {
    v = 77;
    EXPECT_FALSE(telemetry::ParseHandlerU64(bad, &v)) << "input: '" << bad << "'";
    EXPECT_EQ(v, 77u) << "failed parse must not touch *out";
  }
}

TEST(HandlerParseTest, DoubleStrict) {
  double d = 0;
  EXPECT_TRUE(telemetry::ParseHandlerDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(telemetry::ParseHandlerDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(telemetry::ParseHandlerDouble("2.5.6", &d));
  EXPECT_FALSE(telemetry::ParseHandlerDouble("", &d));
  EXPECT_FALSE(telemetry::ParseHandlerDouble("12 monkeys", &d));
}

TEST(HandlerParseTest, BoolForms) {
  bool b = false;
  for (const char* t : {"1", "true", "on", "TRUE", "On"}) {
    b = false;
    EXPECT_TRUE(telemetry::ParseHandlerBool(t, &b)) << t;
    EXPECT_TRUE(b) << t;
  }
  for (const char* f : {"0", "false", "off"}) {
    b = true;
    EXPECT_TRUE(telemetry::ParseHandlerBool(f, &b)) << f;
    EXPECT_FALSE(b) << f;
  }
  EXPECT_FALSE(telemetry::ParseHandlerBool("yes?", &b));
}

// --- element / queue handler surfaces ---

TEST(ElementHandlerTest, BaseHandlersExported) {
  Router router;
  auto* q = router.Add<QueueElement>(64);
  router.Initialize();
  HandlerRegistry reg;
  q->AddHandlers(&reg);

  const std::string base = q->name() + ".";
  for (const char* h : {"config", "counts", "drops", "batch_size", "occupancy", "capacity",
                        "highwater", "blocked", "aqm", "hi", "lo", "codel_target_us",
                        "codel_interval_us"}) {
    EXPECT_TRUE(reg.Has(base + h)) << base << h;
  }
  HandlerResult cfg = reg.Read(base + "config");
  EXPECT_TRUE(cfg.ok);
  EXPECT_NE(cfg.text.find("class Queue"), std::string::npos);
  EXPECT_EQ(reg.Read(base + "drops").text, "0");
}

TEST(QueueHandlerTest, OccupancyTracksTraffic) {
  QueueOptions opt;
  opt.capacity = 32;
  QueueElement q(opt);
  q.set_name("Queue@0");
  HandlerRegistry reg;
  q.AddHandlers(&reg);

  EXPECT_EQ(reg.Read("Queue@0.occupancy").text, "0");
  EXPECT_EQ(reg.Read("Queue@0.capacity").text, "32");

  PacketPool pool(64);
  PacketBatch batch;
  for (int i = 0; i < 5; ++i) {
    batch.PushBack(pool.Alloc());
  }
  q.PushBatch(0, batch);
  EXPECT_EQ(reg.Read("Queue@0.occupancy").text, "5");
  EXPECT_EQ(reg.Read("Queue@0.highwater").text, "5");

  PacketBatch out;
  q.PullBatch(0, &out, 8);
  EXPECT_EQ(reg.Read("Queue@0.occupancy").text, "0");
  for (Packet* p : out) {
    pool.Free(p);
  }
}

TEST(QueueHandlerTest, WatermarkWritesValidateAndApply) {
  QueueOptions opt;
  opt.capacity = 64;
  opt.hi_watermark = 48;
  opt.lo_watermark = 16;
  QueueElement q(opt);
  q.set_name("Q");
  HandlerRegistry reg;
  q.AddHandlers(&reg);

  EXPECT_EQ(reg.Read("Q.hi").text, "48");
  EXPECT_EQ(reg.Read("Q.lo").text, "16");

  EXPECT_TRUE(reg.Write("Q.hi", "32").ok);
  EXPECT_EQ(q.hi_watermark(), 32u);
  EXPECT_EQ(q.lo_watermark(), 16u) << "lo < hi still holds, lo untouched";

  // lo >= hi is the misconfiguration the constructor also rejects.
  HandlerResult r = reg.Write("Q.lo", "32");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.text.find("must be below hi"), std::string::npos);
  EXPECT_EQ(q.lo_watermark(), 16u);

  // Shrinking hi below lo auto-derives lo = hi/2 (construction's rule).
  EXPECT_TRUE(reg.Write("Q.hi", "8").ok);
  EXPECT_EQ(q.hi_watermark(), 8u);
  EXPECT_EQ(q.lo_watermark(), 4u);

  r = reg.Write("Q.hi", "65");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.text.find("above capacity"), std::string::npos);

  EXPECT_FALSE(reg.Write("Q.hi", "many").ok);

  // hi = 0 disables watermarks entirely (and clears sticky blocked).
  EXPECT_TRUE(reg.Write("Q.hi", "0").ok);
  EXPECT_EQ(q.hi_watermark(), 0u);
  EXPECT_FALSE(q.Blocked());
  EXPECT_EQ(q.PushHeadroom(), SIZE_MAX);
}

TEST(QueueHandlerTest, CodelKnobsLiveTuneWithReadBack) {
  QueueOptions opt;
  opt.capacity = 64;
  opt.aqm = AqmMode::kCoDel;
  QueueElement q(opt);
  q.set_name("Q");
  HandlerRegistry reg;
  q.AddHandlers(&reg);

  EXPECT_EQ(reg.Read("Q.aqm").text, "codel");
  EXPECT_EQ(reg.Read("Q.codel_target_us").text, "5000.0");

  // The acceptance round trip: write mid-run, observe via read.
  EXPECT_TRUE(reg.Write("Q.codel_target_us", "750").ok);
  EXPECT_EQ(reg.Read("Q.codel_target_us").text, "750.0");
  EXPECT_NEAR(q.codel_target_s(), 750e-6, 1e-12);

  EXPECT_TRUE(reg.Write("Q.codel_interval_us", "20000").ok);
  EXPECT_NEAR(q.codel_interval_s(), 20e-3, 1e-12);

  for (const char* bad : {"0", "-5", "fast"}) {
    HandlerResult r = reg.Write("Q.codel_target_us", bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_NE(r.text.find("positive number"), std::string::npos);
  }
  EXPECT_EQ(reg.Read("Q.codel_target_us").text, "750.0") << "rejected writes change nothing";
}

TEST(RouterHandlerTest, GraphExportsEveryElementPlusTopology) {
  Router router;
  auto* q = router.Add<QueueElement>(16);
  router.Initialize();
  HandlerRegistry reg;
  router.AddHandlers(&reg);

  EXPECT_TRUE(reg.Has(q->name() + ".occupancy"));
  HandlerResult elements = reg.Read("router.elements");
  ASSERT_TRUE(elements.ok);
  EXPECT_NE(elements.text.find("Queue"), std::string::npos);
  EXPECT_TRUE(reg.Has("router.tasks"));
}

}  // namespace
}  // namespace rb
