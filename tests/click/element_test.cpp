#include "click/element.hpp"

#include <gtest/gtest.h>

#include "click/elements/misc.hpp"
#include "click/router.hpp"
#include "packet/pool.hpp"

namespace rb {
namespace {

// A push element that records what it received.
class Sink : public Element {
 public:
  Sink() : Element(1, 0) {}
  const char* class_name() const override { return "Sink"; }
  void Push(int /*port*/, Packet* p) override {
    received.push_back(p);
  }
  std::vector<Packet*> received;
};

// A pull source feeding from a vector.
class VectorSource : public Element {
 public:
  VectorSource() : Element(0, 1) {}
  const char* class_name() const override { return "VectorSource"; }
  Packet* Pull(int /*port*/) override {
    if (items.empty()) {
      return nullptr;
    }
    Packet* p = items.back();
    items.pop_back();
    return p;
  }
  std::vector<Packet*> items;
};

TEST(ElementTest, OutputReachesConnectedPeer) {
  Router r;
  auto* counter = r.Add<CounterElement>();
  auto* sink = r.Add<Sink>();
  r.Connect(counter, 0, sink, 0);
  r.Initialize();
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  p->SetLength(64);
  counter->Push(0, p);
  ASSERT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(sink->received[0], p);
  EXPECT_EQ(counter->counters().packets, 1u);
  pool.Free(p);
}

TEST(ElementTest, UnconnectedOutputDropsAndCounts) {
  Router r;
  auto* counter = r.Add<CounterElement>();
  r.Initialize();
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  counter->Push(0, p);
  EXPECT_EQ(counter->drops(), 1u);
  EXPECT_EQ(pool.available(), 1u) << "dropped packet must return to pool";
}

TEST(ElementTest, PullFlowsThroughChain) {
  Router r;
  auto* src = r.Add<VectorSource>();
  auto* counter = r.Add<CounterElement>();
  r.Connect(src, 0, counter, 0);
  r.Initialize();
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  p->SetLength(100);
  src->items.push_back(p);
  EXPECT_EQ(counter->Pull(0), p);
  EXPECT_EQ(counter->Pull(0), nullptr);
  EXPECT_EQ(counter->counters().packets, 1u);
  pool.Free(p);
}

TEST(ElementTest, NamesAreUniqueAndDescriptive) {
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<CounterElement>();
  EXPECT_NE(a->name(), b->name());
  EXPECT_NE(a->name().find("Counter"), std::string::npos);
}

TEST(ElementDeathTest, OutputDoubleWiringRejected) {
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<CounterElement>();
  auto* c = r.Add<CounterElement>();
  r.Connect(a, 0, b, 0);
  EXPECT_DEATH(r.Connect(a, 0, c, 0), "already wired");
}

TEST(ElementTest, PushInputsMayFanIn) {
  // Click semantics: several upstream elements may push into the same
  // input port.
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<CounterElement>();
  auto* sink = r.Add<CounterElement>();
  auto* d = r.Add<Discard>();
  r.Connect(a, 0, sink, 0);
  r.Connect(b, 0, sink, 0);
  r.Connect(sink, 0, d, 0);
  r.Initialize();
  PacketPool pool(2);
  a->Push(0, pool.Alloc());
  b->Push(0, pool.Alloc());
  EXPECT_EQ(sink->counters().packets, 2u);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(ElementDeathTest, PortRangeChecked) {
  Router r;
  auto* a = r.Add<CounterElement>();
  auto* b = r.Add<CounterElement>();
  EXPECT_DEATH(r.Connect(a, 1, b, 0), "out of range");
  EXPECT_DEATH(r.Connect(a, 0, b, 7), "out of range");
}

}  // namespace
}  // namespace rb
