// The batch-native stateful elements (DESIGN.md §17): NAT rewrite
// round-trips, incremental-checksum validity, graceful table-overload
// degradation, and FlowPolicer's two admission modes.
#include <gtest/gtest.h>

#include "click/config_parser.hpp"
#include "click/elements/flow_policer.hpp"
#include "click/elements/nat.hpp"
#include "click/router.hpp"
#include "packet/checksum.hpp"
#include "packet/headers.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

double g_fake_clock_s = 0;
double FakeClock() { return g_fake_clock_s; }

class BatchSink : public Element {
 public:
  BatchSink() : Element(1, 0) {}
  const char* class_name() const override { return "BatchSink"; }
  void Push(int /*port*/, Packet* p) override { got.push_back(p); }
  std::vector<Packet*> got;
};

Packet* Frame(PacketPool* pool, const FlowKey& key, uint32_t size = 64) {
  FrameSpec spec;
  spec.size = size;
  spec.flow = key;
  return AllocFrame(spec, pool);
}

// Synthetic frames carry a zero ("not computed") UDP checksum; for the
// checksum-validity test we compute a real one over the pseudo-header
// and segment, the way an end host would.
void FillUdpChecksum(Packet* p) {
  Ipv4View ip{p->data() + EthernetView::kSize};
  uint8_t* l4 = ip.base + ip.header_length();
  UdpView udp{l4};
  udp.set_checksum(0);
  const uint16_t udp_len = udp.length();
  uint8_t pseudo[12];
  StoreBe32(pseudo, ip.src());
  StoreBe32(pseudo + 4, ip.dst());
  pseudo[8] = 0;
  pseudo[9] = ip.protocol();
  StoreBe16(pseudo + 10, udp_len);
  uint32_t sum = ChecksumPartial(pseudo, sizeof(pseudo));
  sum = ChecksumPartial(l4, udp_len, sum);
  uint16_t csum = ChecksumFinish(sum);
  udp.set_checksum(csum == 0 ? 0xffff : csum);
}

bool UdpChecksumOk(Packet* p) {
  Ipv4View ip{p->data() + EthernetView::kSize};
  uint8_t* l4 = ip.base + ip.header_length();
  const uint16_t udp_len = UdpView{l4}.length();
  uint8_t pseudo[12];
  StoreBe32(pseudo, ip.src());
  StoreBe32(pseudo + 4, ip.dst());
  pseudo[8] = 0;
  pseudo[9] = ip.protocol();
  StoreBe16(pseudo + 10, udp_len);
  uint32_t sum = ChecksumPartial(pseudo, sizeof(pseudo));
  sum = ChecksumPartial(l4, udp_len, sum);
  return ChecksumFinish(sum) == 0;
}

class StatefulElementsTest : public ::testing::Test {
 protected:
  void SetUp() override { g_fake_clock_s = 0; }
  PacketPool pool_{512};
};

TEST_F(StatefulElementsTest, NatRewritesOutboundAndKeepsChecksumsValid) {
  Router r;
  NatOptions opt;
  opt.capacity = 64;
  auto* nat = r.Add<Nat>(opt);
  auto* out = r.Add<BatchSink>();
  auto* in = r.Add<BatchSink>();
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  nat->set_clock(&FakeClock);

  FlowKey key{0x0a000001, 0x08080808, 40000, 53, Ipv4View::kProtoUdp};
  Packet* p = Frame(&pool_, key);
  FillUdpChecksum(p);
  PacketBatch batch;
  batch.PushBack(p);
  nat->PushBatch(0, batch);

  ASSERT_EQ(out->got.size(), 1u);
  Ipv4View ip{out->got[0]->data() + EthernetView::kSize};
  EXPECT_EQ(ip.src(), opt.external_ip) << "source rewritten to the external address";
  EXPECT_EQ(ip.dst(), 0x08080808u);
  EXPECT_TRUE(ip.ChecksumOk()) << "incremental IP checksum patch must hold";
  EXPECT_TRUE(UdpChecksumOk(out->got[0])) << "incremental UDP checksum patch must hold";
  UdpView udp{ip.base + ip.header_length()};
  EXPECT_GE(udp.src_port(), opt.base_port) << "source port moved into the mapping range";
  EXPECT_EQ(udp.dst_port(), 53);
  EXPECT_EQ(nat->mappings_in_use(), 1u);
  pool_.Free(out->got[0]);
}

TEST_F(StatefulElementsTest, NatInboundReplyRoundTripsToInsideAddress) {
  Router r;
  NatOptions opt;
  opt.capacity = 64;
  auto* nat = r.Add<Nat>(opt);
  auto* out = r.Add<BatchSink>();
  auto* in = r.Add<BatchSink>();
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  nat->set_clock(&FakeClock);

  FlowKey key{0x0a000001, 0x08080808, 40000, 53, Ipv4View::kProtoUdp};
  PacketBatch outbound;
  outbound.PushBack(Frame(&pool_, key));
  nat->PushBatch(0, outbound);
  ASSERT_EQ(out->got.size(), 1u);
  Ipv4View translated{out->got[0]->data() + EthernetView::kSize};
  const uint16_t ext_port = UdpView{translated.base + translated.header_length()}.src_port();

  // The reply: remote -> (external_ip, ext_port).
  FlowKey reply{0x08080808, opt.external_ip, 53, ext_port, Ipv4View::kProtoUdp};
  PacketBatch inbound;
  inbound.PushBack(Frame(&pool_, reply));
  nat->PushBatch(1, inbound);
  ASSERT_EQ(in->got.size(), 1u);
  Ipv4View back{in->got[0]->data() + EthernetView::kSize};
  EXPECT_EQ(back.dst(), 0x0a000001u) << "reply rewritten back to the inside address";
  EXPECT_TRUE(back.ChecksumOk());
  EXPECT_EQ(UdpView{back.base + back.header_length()}.dst_port(), 40000);

  // A reply to a port with no mapping drops into no_mapping.
  FlowKey bogus{0x08080808, opt.external_ip, 53,
                static_cast<uint16_t>(opt.base_port + 63), Ipv4View::kProtoUdp};
  PacketBatch stray;
  stray.PushBack(Frame(&pool_, bogus));
  nat->PushBatch(1, stray);
  EXPECT_EQ(in->got.size(), 1u);
  EXPECT_EQ(nat->no_mapping_drops(), 1u);
  pool_.Free(out->got[0]);
  pool_.Free(in->got[0]);
}

TEST_F(StatefulElementsTest, NatOverloadEvictsLruAndKeepsForwarding) {
  Router r;
  NatOptions opt;
  opt.capacity = 64;
  opt.hi_watermark = 0.5;
  opt.lo_watermark = 0.25;
  auto* nat = r.Add<Nat>(opt);
  auto* out = r.Add<BatchSink>();
  auto* in = r.Add<BatchSink>();
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  nat->set_clock(&FakeClock);

  // 4x capacity distinct flows: the table must shed LRU mappings and
  // keep translating every packet — zero drops, bounded mappings.
  const uint32_t kFlows = 256;
  for (uint32_t i = 0; i < kFlows; ++i) {
    g_fake_clock_s += 1e-3;
    FlowKey key{0x0a000000u + i, 0x08080808, static_cast<uint16_t>(1024 + i), 80,
                Ipv4View::kProtoUdp};
    PacketBatch b;
    b.PushBack(Frame(&pool_, key));
    nat->PushBatch(0, b);
  }
  EXPECT_EQ(out->got.size(), kFlows) << "overload must not stop forwarding";
  EXPECT_EQ(nat->table_full_drops(), 0u);
  EXPECT_GT(nat->table().stats().evict_watermark, 0u) << "watermark eviction engaged";
  EXPECT_LE(nat->mappings_in_use(), nat->table().capacity_slots());
  // Port conservation: every evicted mapping returned its port.
  EXPECT_EQ(nat->mappings_in_use(), nat->table().occupancy());
  for (Packet* p : out->got) {
    pool_.Free(p);
  }
}

TEST_F(StatefulElementsTest, NatFullTableWithEvictionDisabledDropsIntoBucket) {
  Router r;
  NatOptions opt;
  opt.capacity = 64;
  opt.hi_watermark = 1.0;
  opt.lo_watermark = 0.5;
  opt.evict_on_full = false;
  auto* nat = r.Add<Nat>(opt);
  auto* out = r.Add<BatchSink>();
  auto* in = r.Add<BatchSink>();
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  nat->set_clock(&FakeClock);
  for (uint32_t i = 0; i < 512; ++i) {
    FlowKey key{0x0a000000u + i, 0x08080808, static_cast<uint16_t>(1024 + i), 80,
                Ipv4View::kProtoUdp};
    PacketBatch b;
    b.PushBack(Frame(&pool_, key));
    nat->PushBatch(0, b);
  }
  EXPECT_GT(nat->table_full_drops(), 0u);
  EXPECT_EQ(out->got.size() + nat->table_full_drops(), 512u);
  for (Packet* p : out->got) {
    pool_.Free(p);
  }
}

TEST_F(StatefulElementsTest, PolicerEnforcesPerFlowTokenBucket) {
  Router r;
  FlowPolicerOptions opt;
  opt.rate_pps = 1000;
  opt.burst = 4;
  auto* pol = r.Add<FlowPolicer>(opt);
  auto* out = r.Add<BatchSink>();
  r.Connect(pol, 0, out, 0);
  r.Initialize();
  pol->set_clock(&FakeClock);

  FlowKey key{0x0a000001, 0x08080808, 40000, 80, Ipv4View::kProtoTcp};
  // A 10-packet burst at t=0: exactly `burst` pass, the rest police.
  PacketBatch b;
  for (int i = 0; i < 10; ++i) {
    b.PushBack(Frame(&pool_, key));
  }
  pol->PushBatch(0, b);
  EXPECT_EQ(out->got.size(), 4u);
  EXPECT_EQ(pol->policed_drops(), 6u);

  // 2 ms later the bucket holds rate * dt = 2 tokens.
  g_fake_clock_s = 2e-3;
  PacketBatch again;
  for (int i = 0; i < 4; ++i) {
    again.PushBack(Frame(&pool_, key));
  }
  pol->PushBatch(0, again);
  EXPECT_EQ(out->got.size(), 6u);
  EXPECT_EQ(pol->policed_drops(), 8u);

  // A different flow has its own (full) bucket.
  FlowKey other{0x0a000002, 0x08080808, 40001, 80, Ipv4View::kProtoTcp};
  PacketBatch fresh;
  fresh.PushBack(Frame(&pool_, other));
  pol->PushBatch(0, fresh);
  EXPECT_EQ(out->got.size(), 7u);
  for (Packet* p : out->got) {
    pool_.Free(p);
  }
}

TEST_F(StatefulElementsTest, FirewallAllowsEstablishedOnly) {
  Router r;
  FlowPolicerOptions opt;
  opt.mode = PolicerMode::kFirewall;
  auto* fw = r.Add<FlowPolicer>(opt);
  auto* inside_out = r.Add<BatchSink>();
  auto* outside_in = r.Add<BatchSink>();
  r.Connect(fw, 0, inside_out, 0);
  r.Connect(fw, 1, outside_in, 0);
  r.Initialize();
  fw->set_clock(&FakeClock);

  FlowKey outbound{0x0a000001, 0x08080808, 40000, 443, Ipv4View::kProtoTcp};
  FlowKey reply{0x08080808, 0x0a000001, 443, 40000, Ipv4View::kProtoTcp};
  FlowKey unsolicited{0x08080808, 0x0a000001, 443, 40001, Ipv4View::kProtoTcp};

  // An unsolicited outside packet is blocked.
  PacketBatch attack;
  attack.PushBack(Frame(&pool_, unsolicited));
  fw->PushBatch(1, attack);
  EXPECT_EQ(outside_in->got.size(), 0u);
  EXPECT_EQ(fw->not_established_drops(), 1u);

  // Inside traffic establishes the pinhole; the reply then passes.
  PacketBatch open;
  open.PushBack(Frame(&pool_, outbound));
  fw->PushBatch(0, open);
  ASSERT_EQ(inside_out->got.size(), 1u);
  PacketBatch back;
  back.PushBack(Frame(&pool_, reply));
  fw->PushBatch(1, back);
  EXPECT_EQ(outside_in->got.size(), 1u);
  pool_.Free(inside_out->got[0]);
  pool_.Free(outside_in->got[0]);
}

TEST_F(StatefulElementsTest, ParserBuildsNatAndPolicerFromKeywords) {
  ConfigContext ctx;
  Router r;
  const char* config =
      "nat :: Nat(EXTERNAL 198.51.100.7, BASE_PORT 2048, CAPACITY 128, HI 0.6, LO 0.3);\n"
      "pol :: FlowPolicer(RATE 5000, BURST 8, MODE POLICE, CAPACITY 256);\n"
      "fw :: FlowPolicer(MODE FIREWALL);\n"
      "nat [0] -> Discard; nat [1] -> Discard;\n"
      "pol -> Discard;\n"
      "fw [0] -> Discard; fw [1] -> Discard;\n";
  ConfigParseResult res = ParseClickConfig(config, &r, ctx);
  ASSERT_TRUE(res.ok) << res.error;
  auto* nat = dynamic_cast<Nat*>(res.elements.at("nat"));
  ASSERT_NE(nat, nullptr);
  EXPECT_EQ(nat->options().external_ip, 0xc6336407u);
  EXPECT_EQ(nat->options().base_port, 2048);
  EXPECT_DOUBLE_EQ(nat->table().hi_watermark(), 0.6);
  auto* pol = dynamic_cast<FlowPolicer*>(res.elements.at("pol"));
  ASSERT_NE(pol, nullptr);
  EXPECT_EQ(pol->options().rate_pps, 5000u);
  EXPECT_EQ(pol->options().burst, 8u);
  auto* fw = dynamic_cast<FlowPolicer*>(res.elements.at("fw"));
  ASSERT_NE(fw, nullptr);
  EXPECT_EQ(fw->options().mode, PolicerMode::kFirewall);

  // Invalid configs are rejected with an error, not an abort.
  Router bad;
  EXPECT_FALSE(
      ParseClickConfig("n :: Nat(EXTERNAL not_an_ip); n [0] -> Discard; n [1] -> Discard;",
                       &bad, ctx)
          .ok);
  Router bad2;
  EXPECT_FALSE(ParseClickConfig("n :: Nat(HI 0.2, LO 0.8); n [0] -> Discard; n [1] -> Discard;",
                                &bad2, ctx)
                   .ok);
  Router bad3;
  EXPECT_FALSE(ParseClickConfig("p :: FlowPolicer(RATE 0); p -> Discard;", &bad3, ctx).ok);
}

}  // namespace
}  // namespace rb
