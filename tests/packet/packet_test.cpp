#include "packet/packet.hpp"

#include <gtest/gtest.h>

#include "packet/pool.hpp"

namespace rb {
namespace {

TEST(PacketTest, SetPayloadCopiesBytes) {
  Packet p;
  uint8_t data[4] = {1, 2, 3, 4};
  p.SetPayload(data, 4);
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.data()[0], 1);
  EXPECT_EQ(p.data()[3], 4);
}

TEST(PacketTest, PushConsumesHeadroom) {
  Packet p;
  uint8_t data[4] = {9, 9, 9, 9};
  p.SetPayload(data, 4);
  uint32_t head_before = p.headroom();
  uint8_t* hdr = p.Push(14);
  EXPECT_EQ(p.headroom(), head_before - 14);
  EXPECT_EQ(p.length(), 18u);
  EXPECT_EQ(hdr, p.data());
  // Old payload still intact after the pushed region.
  EXPECT_EQ(p.data()[14], 9);
}

TEST(PacketTest, PullRemovesFront) {
  Packet p;
  uint8_t data[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  p.SetPayload(data, 8);
  p.Pull(3);
  EXPECT_EQ(p.length(), 5u);
  EXPECT_EQ(p.data()[0], 3);
}

TEST(PacketTest, PushPullRoundTrip) {
  Packet p;
  uint8_t data[4] = {42, 43, 44, 45};
  p.SetPayload(data, 4);
  p.Push(20);
  p.Pull(20);
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.data()[0], 42);
}

TEST(PacketTest, PutAndTrim) {
  Packet p;
  uint8_t data[2] = {1, 2};
  p.SetPayload(data, 2);
  uint8_t* tail = p.Put(3);
  tail[0] = 7;
  EXPECT_EQ(p.length(), 5u);
  EXPECT_EQ(p.data()[2], 7);
  p.Trim(4);
  EXPECT_EQ(p.length(), 1u);
  EXPECT_EQ(p.data()[0], 1);
}

TEST(PacketTest, AnnotationsRoundTrip) {
  Packet p;
  p.set_arrival_time(1.5);
  p.set_input_port(3);
  p.set_flow_hash(0xdeadbeef);
  p.set_vlb_phase(VlbPhase::kPhase2);
  p.set_output_node(7);
  p.set_flow_id(99);
  p.set_flow_seq(100);
  p.set_paint(5);
  EXPECT_EQ(p.arrival_time(), 1.5);
  EXPECT_EQ(p.input_port(), 3);
  EXPECT_EQ(p.flow_hash(), 0xdeadbeefu);
  EXPECT_EQ(p.vlb_phase(), VlbPhase::kPhase2);
  EXPECT_EQ(p.output_node(), 7);
  EXPECT_EQ(p.flow_id(), 99u);
  EXPECT_EQ(p.flow_seq(), 100u);
  EXPECT_EQ(p.paint(), 5);
}

TEST(PacketTest, ResetMetadataClearsEverything) {
  Packet p;
  uint8_t data[4] = {1, 2, 3, 4};
  p.SetPayload(data, 4);
  p.set_flow_id(12);
  p.set_output_node(2);
  p.Push(10);
  p.ResetMetadata();
  EXPECT_EQ(p.length(), 0u);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);
  EXPECT_EQ(p.flow_id(), 0u);
  EXPECT_EQ(p.output_node(), Packet::kNoNode);
  EXPECT_EQ(p.vlb_phase(), VlbPhase::kNone);
}

TEST(PacketDeathTest, PushBeyondHeadroomAborts) {
  Packet p;
  EXPECT_DEATH(p.Push(Packet::kDefaultHeadroom + 1), "headroom");
}

TEST(PacketDeathTest, PullBeyondLengthAborts) {
  Packet p;
  uint8_t d[4] = {0};
  p.SetPayload(d, 4);
  EXPECT_DEATH(p.Pull(5), "");
}

TEST(PacketTest, TailroomAccounting) {
  Packet p;
  uint8_t d[100] = {0};
  p.SetPayload(d, 100);
  EXPECT_EQ(p.tailroom(), Packet::kMaxCapacity - Packet::kDefaultHeadroom - 100);
}

TEST(PacketTest, CacheLayoutPinned) {
  // The compile-time contract lives in PacketLayoutCheck (packet.hpp);
  // these runtime pins catch what static_asserts on private members can't
  // express from outside the class, and document the intent: hot
  // annotations in the object's first cache line, a 64-aligned frame
  // buffer, and an odd-cache-line stride so consecutive pool packets don't
  // alias the same cache sets.
  EXPECT_EQ(sizeof(Packet) % kCacheLineBytes, 0u);
  EXPECT_EQ((sizeof(Packet) / kCacheLineBytes) % 2, 1u);
  EXPECT_GE(alignof(Packet), kCacheLineBytes);

  Packet p;
  auto base = reinterpret_cast<uintptr_t>(&p);
  // default_data() must be computable from `this` + constants alone (no
  // metadata load) and land 64-aligned, so header prefetches hit the line
  // that actually holds the Ethernet/IP headers.
  auto data = reinterpret_cast<uintptr_t>(p.default_data());
  EXPECT_EQ(data % kCacheLineBytes, 0u);
  EXPECT_EQ(data, reinterpret_cast<uintptr_t>(p.data()));
  EXPECT_LT(data - base, sizeof(Packet));
}

TEST(PacketTest, PoolStorageKeepsAlignment) {
  // Pool storage is a contiguous Packet[], so the odd-line stride is what
  // spreads consecutive packets across cache sets.
  PacketPool pool(4);
  Packet* pkts[4];
  ASSERT_EQ(pool.AllocBulk(pkts, 4), 4u);
  for (int i = 1; i < 4; ++i) {
    auto a = reinterpret_cast<uintptr_t>(pkts[i - 1]);
    auto b = reinterpret_cast<uintptr_t>(pkts[i]);
    EXPECT_EQ(a % kCacheLineBytes, 0u);
    uintptr_t stride = a > b ? a - b : b - a;
    EXPECT_EQ(stride % sizeof(Packet), 0u);
  }
  pool.FreeBulk(pkts, 4);
}

}  // namespace
}  // namespace rb
