#include "packet/headers.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(ByteOrderTest, RoundTrip16) {
  uint8_t buf[2];
  StoreBe16(buf, 0xabcd);
  EXPECT_EQ(buf[0], 0xab);
  EXPECT_EQ(buf[1], 0xcd);
  EXPECT_EQ(LoadBe16(buf), 0xabcd);
}

TEST(ByteOrderTest, RoundTrip32) {
  uint8_t buf[4];
  StoreBe32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBe32(buf), 0x01020304u);
}

TEST(EthernetTest, FieldAccess) {
  uint8_t buf[14] = {0};
  EthernetView eth{buf};
  MacAddress dst = {1, 2, 3, 4, 5, 6};
  MacAddress src = {7, 8, 9, 10, 11, 12};
  eth.set_dst(dst);
  eth.set_src(src);
  eth.set_ether_type(EthernetView::kTypeIpv4);
  EXPECT_EQ(eth.dst(), dst);
  EXPECT_EQ(eth.src(), src);
  EXPECT_EQ(eth.ether_type(), 0x0800);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[6], 7);
}

TEST(MacNodeTest, EncodeDecodeRoundTrip) {
  for (uint16_t node : {0, 1, 3, 63, 255, 1024, 65534}) {
    MacAddress mac = MacForNode(node);
    EXPECT_EQ(NodeFromMac(mac), node) << node;
    // Locally administered, unicast.
    EXPECT_EQ(mac[0] & 0x02, 0x02);
    EXPECT_EQ(mac[0] & 0x01, 0x00);
  }
}

TEST(MacNodeTest, ForeignMacDecodesToNone) {
  MacAddress mac = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
  EXPECT_EQ(NodeFromMac(mac), 0xffff);
}

TEST(MacNodeTest, ToString) {
  EXPECT_EQ(MacToString(MacAddress{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}), "de:ad:be:ef:00:01");
}

TEST(Ipv4Test, WriteDefaultProducesValidHeader) {
  uint8_t buf[20];
  Ipv4View::WriteDefault(buf, 0x0a000001, 0x0a000002, Ipv4View::kProtoUdp, 100);
  Ipv4View ip{buf};
  EXPECT_EQ(ip.version(), 4);
  EXPECT_EQ(ip.ihl(), 5);
  EXPECT_EQ(ip.header_length(), 20u);
  EXPECT_EQ(ip.total_length(), 100);
  EXPECT_EQ(ip.ttl(), 64);
  EXPECT_EQ(ip.protocol(), Ipv4View::kProtoUdp);
  EXPECT_EQ(ip.src(), 0x0a000001u);
  EXPECT_EQ(ip.dst(), 0x0a000002u);
  EXPECT_TRUE(ip.ChecksumOk());
}

TEST(Ipv4Test, CorruptionBreaksChecksum) {
  uint8_t buf[20];
  Ipv4View::WriteDefault(buf, 1, 2, 6, 40);
  buf[8] ^= 0xff;  // flip TTL bits
  Ipv4View ip{buf};
  EXPECT_FALSE(ip.ChecksumOk());
  ip.UpdateChecksum();
  EXPECT_TRUE(ip.ChecksumOk());
}

TEST(Ipv4Test, FieldSettersReadBack) {
  uint8_t buf[20] = {0};
  Ipv4View ip{buf};
  ip.set_version_ihl(4, 5);
  ip.set_tos(0x10);
  ip.set_identification(0x1234);
  ip.set_flags_fragment(0x4000);
  ip.set_ttl(9);
  EXPECT_EQ(ip.tos(), 0x10);
  EXPECT_EQ(ip.identification(), 0x1234);
  EXPECT_EQ(ip.flags_fragment(), 0x4000);
  EXPECT_EQ(ip.ttl(), 9);
}

TEST(UdpTest, FieldsRoundTrip) {
  uint8_t buf[8] = {0};
  UdpView udp{buf};
  udp.set_src_port(1234);
  udp.set_dst_port(80);
  udp.set_length(28);
  udp.set_checksum(0xaaaa);
  EXPECT_EQ(udp.src_port(), 1234);
  EXPECT_EQ(udp.dst_port(), 80);
  EXPECT_EQ(udp.length(), 28);
  EXPECT_EQ(udp.checksum(), 0xaaaa);
}

TEST(TcpTest, FieldsRoundTrip) {
  uint8_t buf[20] = {0};
  TcpView tcp{buf};
  tcp.set_src_port(443);
  tcp.set_dst_port(59999);
  tcp.set_seq(0xdeadbeef);
  tcp.set_ack(0xfeedface);
  EXPECT_EQ(tcp.src_port(), 443);
  EXPECT_EQ(tcp.dst_port(), 59999);
  EXPECT_EQ(tcp.seq(), 0xdeadbeefu);
  EXPECT_EQ(tcp.ack(), 0xfeedfaceu);
}

}  // namespace
}  // namespace rb
