#include "packet/flow.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "packet/headers.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

FlowKey MakeKey(uint32_t s, uint32_t d, uint16_t sp, uint16_t dp, uint8_t proto) {
  FlowKey k;
  k.src_ip = s;
  k.dst_ip = d;
  k.src_port = sp;
  k.dst_port = dp;
  k.protocol = proto;
  return k;
}

TEST(FlowHashTest, Deterministic) {
  FlowKey k = MakeKey(1, 2, 3, 4, 6);
  EXPECT_EQ(FlowHash64(k), FlowHash64(k));
  EXPECT_EQ(FlowHash32(k), FlowHash32(k));
}

TEST(FlowHashTest, SensitiveToEveryField) {
  FlowKey base = MakeKey(10, 20, 30, 40, 6);
  uint64_t h = FlowHash64(base);
  FlowKey k = base;
  k.src_ip++;
  EXPECT_NE(FlowHash64(k), h);
  k = base;
  k.dst_ip++;
  EXPECT_NE(FlowHash64(k), h);
  k = base;
  k.src_port++;
  EXPECT_NE(FlowHash64(k), h);
  k = base;
  k.dst_port++;
  EXPECT_NE(FlowHash64(k), h);
  k = base;
  k.protocol = 17;
  EXPECT_NE(FlowHash64(k), h);
}

TEST(FlowHashTest, FewCollisionsOverRandomKeys) {
  Rng rng(5);
  std::set<uint64_t> hashes;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    FlowKey k = MakeKey(static_cast<uint32_t>(rng.Next()), static_cast<uint32_t>(rng.Next()),
                        static_cast<uint16_t>(rng.Next()), static_cast<uint16_t>(rng.Next()), 6);
    hashes.insert(FlowHash64(k));
  }
  // Collisions among 1e5 64-bit hashes should be essentially zero.
  EXPECT_GE(hashes.size(), static_cast<size_t>(n - 2));
}

TEST(FlowHashTest, QueueSpreadIsBalanced) {
  // RSS quality: hashing random flows across 8 queues should be near
  // uniform — this is what makes "one queue per core" load-balance.
  Rng rng(6);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    FlowKey k = MakeKey(static_cast<uint32_t>(rng.Next()), static_cast<uint32_t>(rng.Next()),
                        static_cast<uint16_t>(rng.Next()), static_cast<uint16_t>(rng.Next()), 17);
    counts[FlowHash32(k) % 8]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.06);
  }
}

TEST(ExtractFlowKeyTest, ParsesMaterializedFrame) {
  PacketPool pool(1);
  FrameSpec spec;
  spec.size = 64;
  spec.flow = MakeKey(0x0a000001, 0x0a000002, 1111, 2222, 17);
  Packet* p = AllocFrame(spec, &pool);
  ASSERT_NE(p, nullptr);
  FlowKey parsed;
  ASSERT_TRUE(ExtractFlowKey(*p, &parsed));
  EXPECT_EQ(parsed, spec.flow);
  pool.Free(p);
}

TEST(ExtractFlowKeyTest, RejectsTruncated) {
  Packet p;
  uint8_t tiny[10] = {0};
  p.SetPayload(tiny, sizeof(tiny));
  FlowKey k;
  EXPECT_FALSE(ExtractFlowKey(p, &k));
}

TEST(ExtractFlowKeyTest, RejectsNonIpv4) {
  PacketPool pool(1);
  FrameSpec spec;
  spec.size = 64;
  spec.flow = MakeKey(1, 2, 3, 4, 17);
  Packet* p = AllocFrame(spec, &pool);
  ASSERT_NE(p, nullptr);
  EthernetView eth{p->data()};
  eth.set_ether_type(EthernetView::kTypeArp);
  FlowKey k;
  EXPECT_FALSE(ExtractFlowKey(*p, &k));
  pool.Free(p);
}

TEST(ExtractFlowKeyTest, NonTcpUdpHasZeroPorts) {
  PacketPool pool(1);
  FrameSpec spec;
  spec.size = 64;
  spec.flow = MakeKey(1, 2, 3, 4, Ipv4View::kProtoIcmp);
  Packet* p = AllocFrame(spec, &pool);
  ASSERT_NE(p, nullptr);
  FlowKey k;
  ASSERT_TRUE(ExtractFlowKey(*p, &k));
  EXPECT_EQ(k.protocol, Ipv4View::kProtoIcmp);
  EXPECT_EQ(k.src_port, 0);
  EXPECT_EQ(k.dst_port, 0);
  pool.Free(p);
}

}  // namespace
}  // namespace rb
