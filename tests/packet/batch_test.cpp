#include "packet/batch.hpp"

#include <gtest/gtest.h>

#include "packet/pool.hpp"

namespace rb {
namespace {

TEST(PacketBatchTest, StartsEmptyAndPushBackGrows) {
  PacketPool pool(8);
  PacketBatch b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.room(), PacketBatch::kCapacity);

  Packet* p0 = pool.Alloc();
  Packet* p1 = pool.Alloc();
  b.PushBack(p0);
  b.PushBack(p1);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], p0);
  EXPECT_EQ(b[1], p1);

  // Range-for iterates in insertion order.
  std::vector<Packet*> seen(b.begin(), b.end());
  EXPECT_EQ(seen, (std::vector<Packet*>{p0, p1}));

  b.ReleaseAll();
  EXPECT_EQ(pool.available(), 8u);
}

TEST(PacketBatchTest, CapacityEdge) {
  PacketBatch b;
  // Fill to capacity with dummy distinct pointers (never dereferenced).
  Packet* fake = reinterpret_cast<Packet*>(0x1000);
  for (uint32_t i = 0; i < PacketBatch::kCapacity; ++i) {
    EXPECT_TRUE(b.TryPushBack(fake));
  }
  EXPECT_TRUE(b.full());
  EXPECT_EQ(b.room(), 0u);
  EXPECT_FALSE(b.TryPushBack(fake));
  EXPECT_EQ(b.size(), PacketBatch::kCapacity);
  b.Clear();
  EXPECT_TRUE(b.empty());
}

TEST(PacketBatchDeathTest, PushBackBeyondCapacityChecks) {
  PacketBatch b;
  Packet* fake = reinterpret_cast<Packet*>(0x1000);
  for (uint32_t i = 0; i < PacketBatch::kCapacity; ++i) {
    b.PushBack(fake);
  }
  EXPECT_DEATH(b.PushBack(fake), "overflow");
}

TEST(PacketBatchTest, AppendMovesEverythingAndEmptiesSource) {
  PacketPool pool(8);
  PacketBatch a;
  PacketBatch b;
  Packet* p0 = pool.Alloc();
  Packet* p1 = pool.Alloc();
  Packet* p2 = pool.Alloc();
  a.PushBack(p0);
  b.PushBack(p1);
  b.PushBack(p2);
  a.Append(&b);
  EXPECT_TRUE(b.empty());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], p0);
  EXPECT_EQ(a[1], p1);
  EXPECT_EQ(a[2], p2);
  a.ReleaseAll();
}

TEST(PacketBatchTest, AppendUpToTakesFromFrontPreservingOrder) {
  PacketPool pool(8);
  PacketBatch src;
  Packet* pkts[5];
  for (auto& p : pkts) {
    p = pool.Alloc();
    src.PushBack(p);
  }
  PacketBatch dst;
  EXPECT_EQ(dst.AppendUpTo(&src, 2), 2u);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst[0], pkts[0]);
  EXPECT_EQ(dst[1], pkts[1]);
  // Source keeps the remainder, still in arrival order.
  ASSERT_EQ(src.size(), 3u);
  EXPECT_EQ(src[0], pkts[2]);
  EXPECT_EQ(src[2], pkts[4]);
  // Asking for more than available moves only what is there.
  EXPECT_EQ(dst.AppendUpTo(&src, 99), 3u);
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(dst.size(), 5u);
  dst.ReleaseAll();
}

TEST(PacketBatchTest, SplitAfterMovesTail) {
  PacketPool pool(8);
  PacketBatch b;
  Packet* pkts[4];
  for (auto& p : pkts) {
    p = pool.Alloc();
    b.PushBack(p);
  }
  PacketBatch tail;
  b.SplitAfter(3, &tail);
  ASSERT_EQ(b.size(), 3u);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], pkts[3]);
  // n >= size is a no-op.
  b.SplitAfter(10, &tail);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(tail.size(), 1u);
  b.ReleaseAll();
  tail.ReleaseAll();
}

TEST(PacketBatchTest, ReleaseAllRoundTripsThroughPool) {
  PacketPool pool(4);
  PacketBatch b;
  for (int i = 0; i < 4; ++i) {
    b.PushBack(pool.Alloc());
  }
  EXPECT_EQ(pool.available(), 0u);
  b.ReleaseAll();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.available(), 4u) << "every packet must return to its origin pool exactly once";
}

TEST(PacketBatchTest, TailCommitAppendedBulkFill) {
  PacketPool pool(4);
  PacketBatch b;
  b.PushBack(pool.Alloc());
  // Bulk-fill the way Driver::Poll does: write raw pointers at tail(),
  // then commit.
  Packet** t = b.tail();
  t[0] = pool.Alloc();
  t[1] = pool.Alloc();
  b.CommitAppended(2);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[1], t[0]);
  b.ReleaseAll();
}

TEST(PacketBatchTest, TotalBytesSumsLengths) {
  PacketPool pool(4);
  PacketBatch b;
  Packet* p0 = pool.Alloc();
  Packet* p1 = pool.Alloc();
  p0->SetLength(64);
  p1->SetLength(1500);
  b.PushBack(p0);
  b.PushBack(p1);
  EXPECT_EQ(b.TotalBytes(), 1564u);
  b.ReleaseAll();
}

}  // namespace
}  // namespace rb
