#include "packet/checksum.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rb {
namespace {

// RFC 1071 worked example: the checksum of this sequence is well known.
TEST(ChecksumTest, Rfc1071Example) {
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 ->
  // checksum = ~0xddf2 = 0x220d.
  EXPECT_EQ(Checksum(data, sizeof(data)), 0x220d);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const uint8_t data[] = {0x12, 0x34, 0x56};
  // Words: 0x1234, 0x5600. Sum = 0x6834 -> checksum = ~0x6834 = 0x97cb.
  EXPECT_EQ(Checksum(data, sizeof(data)), 0x97cb);
}

TEST(ChecksumTest, ZeroBufferChecksumIsAllOnes) {
  uint8_t data[20] = {0};
  EXPECT_EQ(Checksum(data, sizeof(data)), 0xffff);
}

TEST(ChecksumTest, ChecksummedBufferVerifiesToZero) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    uint8_t buf[20];
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    // Place the checksum in bytes 10-11 (like an IP header).
    buf[10] = buf[11] = 0;
    uint16_t sum = Checksum(buf, sizeof(buf));
    buf[10] = static_cast<uint8_t>(sum >> 8);
    buf[11] = static_cast<uint8_t>(sum);
    EXPECT_EQ(Checksum(buf, sizeof(buf)), 0);
  }
}

TEST(ChecksumTest, PartialComposition) {
  Rng rng(2);
  uint8_t buf[40];
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  // Checksum over split even-sized regions equals checksum over the whole.
  uint32_t partial = ChecksumPartial(buf, 16);
  partial = ChecksumPartial(buf + 16, 24, partial);
  EXPECT_EQ(ChecksumFinish(partial), Checksum(buf, 40));
}

// Property: RFC 1624 incremental update matches full recompute for any
// single 16-bit field change.
TEST(ChecksumTest, IncrementalUpdateMatchesRecompute) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t buf[20];
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    buf[10] = buf[11] = 0;
    uint16_t sum = Checksum(buf, sizeof(buf));
    buf[10] = static_cast<uint8_t>(sum >> 8);
    buf[11] = static_cast<uint8_t>(sum);

    // Mutate the 16-bit word at offset 8 (TTL/protocol in an IP header).
    uint16_t old_field = static_cast<uint16_t>((buf[8] << 8) | buf[9]);
    uint16_t new_field = static_cast<uint16_t>(rng.Next());
    buf[8] = static_cast<uint8_t>(new_field >> 8);
    buf[9] = static_cast<uint8_t>(new_field);
    uint16_t updated = ChecksumUpdate16(sum, old_field, new_field);
    buf[10] = static_cast<uint8_t>(updated >> 8);
    buf[11] = static_cast<uint8_t>(updated);
    EXPECT_EQ(Checksum(buf, sizeof(buf)), 0) << "trial " << trial;
  }
}

// The 32-bit variant is the audited single implementation shared by the
// injector's template fill and the NAT rewrite path. It must be
// bit-identical to chaining the 16-bit update over both halves — the
// byte-equivalence contract that let the injector switch over.
TEST(ChecksumTest, Update32MatchesChainedUpdate16) {
  Rng rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint16_t csum = static_cast<uint16_t>(rng.Next());
    const uint32_t old_field = static_cast<uint32_t>(rng.Next());
    const uint32_t new_field = static_cast<uint32_t>(rng.Next());
    uint16_t chained = ChecksumUpdate16(csum, static_cast<uint16_t>(old_field >> 16),
                                        static_cast<uint16_t>(new_field >> 16));
    chained = ChecksumUpdate16(chained, static_cast<uint16_t>(old_field),
                               static_cast<uint16_t>(new_field));
    EXPECT_EQ(ChecksumUpdate32(csum, old_field, new_field), chained) << "trial " << trial;
  }
}

TEST(ChecksumTest, Update32MatchesRecomputeOnAddressRewrite) {
  // An IP header whose source address gets NAT-rewritten: the
  // incremental patch must land exactly where a full recompute does.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t buf[20];
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    buf[10] = buf[11] = 0;
    uint16_t sum = Checksum(buf, sizeof(buf));
    buf[10] = static_cast<uint8_t>(sum >> 8);
    buf[11] = static_cast<uint8_t>(sum);

    const uint32_t old_src = (static_cast<uint32_t>(buf[12]) << 24) |
                             (static_cast<uint32_t>(buf[13]) << 16) |
                             (static_cast<uint32_t>(buf[14]) << 8) | buf[15];
    const uint32_t new_src = static_cast<uint32_t>(rng.Next());
    buf[12] = static_cast<uint8_t>(new_src >> 24);
    buf[13] = static_cast<uint8_t>(new_src >> 16);
    buf[14] = static_cast<uint8_t>(new_src >> 8);
    buf[15] = static_cast<uint8_t>(new_src);
    uint16_t updated = ChecksumUpdate32(sum, old_src, new_src);
    buf[10] = static_cast<uint8_t>(updated >> 8);
    buf[11] = static_cast<uint8_t>(updated);
    EXPECT_EQ(Checksum(buf, sizeof(buf)), 0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rb
