#include "packet/pool.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(PoolTest, AllocFreeCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  Packet* p = pool.Alloc();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.Free(p);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(PoolTest, ExhaustionReturnsNullAndCounts) {
  PacketPool pool(2);
  Packet* a = pool.Alloc();
  Packet* b = pool.Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.Alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  pool.Free(a);
  pool.Free(b);
}

TEST(PoolTest, FreeResetsMetadata) {
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  uint8_t d[4] = {1, 2, 3, 4};
  p->SetPayload(d, 4);
  p->set_flow_id(77);
  pool.Free(p);
  Packet* q = pool.Alloc();
  EXPECT_EQ(q, p);  // freelist recycles
  EXPECT_EQ(q->length(), 0u);
  EXPECT_EQ(q->flow_id(), 0u);
  pool.Free(q);
}

TEST(PoolTest, OriginPoolIsSet) {
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  EXPECT_EQ(p->origin_pool(), &pool);
  pool.Free(p);
}

TEST(PoolTest, StaticReleaseRoutesToOrigin) {
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  PacketPool::Release(p);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(PoolDeathTest, FreeToWrongPoolAborts) {
  PacketPool a(1);
  PacketPool b(1);
  Packet* p = a.Alloc();
  EXPECT_DEATH(b.Free(p), "wrong pool");
  a.Free(p);
}

TEST(PoolDeathTest, DoubleFreeAborts) {
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  pool.Free(p);
  EXPECT_DEATH(pool.Free(p), "double free");
}

TEST(PoolDeathTest, FreeOfNeverAllocatedPacketAborts) {
  // Every packet starts life on the freelist; freeing one that was never
  // handed out is also a double-free.
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  pool.Free(p);
  EXPECT_DEATH(pool.Free(p), "already in the pool");
}

TEST(PoolTest, ReallocAfterFreeIsLegalAgain) {
  // The in-pool flag must clear on Alloc so the normal cycle keeps working.
  PacketPool pool(1);
  for (int i = 0; i < 3; ++i) {
    Packet* p = pool.Alloc();
    ASSERT_NE(p, nullptr);
    pool.Free(p);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(PoolTest, AllPacketsDistinct) {
  PacketPool pool(16);
  std::vector<Packet*> all;
  for (int i = 0; i < 16; ++i) {
    all.push_back(pool.Alloc());
  }
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  for (Packet* p : all) {
    pool.Free(p);
  }
}

}  // namespace
}  // namespace rb
