#include "packet/pool.hpp"

#include <gtest/gtest.h>

namespace rb {
namespace {

TEST(PoolTest, AllocFreeCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  Packet* p = pool.Alloc();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.Free(p);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(PoolTest, ExhaustionReturnsNullAndCounts) {
  PacketPool pool(2);
  Packet* a = pool.Alloc();
  Packet* b = pool.Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.Alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  pool.Free(a);
  pool.Free(b);
}

TEST(PoolTest, FreeResetsMetadata) {
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  uint8_t d[4] = {1, 2, 3, 4};
  p->SetPayload(d, 4);
  p->set_flow_id(77);
  pool.Free(p);
  Packet* q = pool.Alloc();
  EXPECT_EQ(q, p);  // freelist recycles
  EXPECT_EQ(q->length(), 0u);
  EXPECT_EQ(q->flow_id(), 0u);
  pool.Free(q);
}

TEST(PoolTest, OriginPoolIsSet) {
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  EXPECT_EQ(p->origin_pool(), &pool);
  pool.Free(p);
}

TEST(PoolTest, StaticReleaseRoutesToOrigin) {
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  PacketPool::Release(p);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(PoolDeathTest, FreeToWrongPoolAborts) {
  PacketPool a(1);
  PacketPool b(1);
  Packet* p = a.Alloc();
  EXPECT_DEATH(b.Free(p), "wrong pool");
  a.Free(p);
}

TEST(PoolDeathTest, DoubleFreeAborts) {
  PacketPool pool(2);
  Packet* p = pool.Alloc();
  pool.Free(p);
  EXPECT_DEATH(pool.Free(p), "double free");
}

TEST(PoolDeathTest, FreeOfNeverAllocatedPacketAborts) {
  // Every packet starts life on the freelist; freeing one that was never
  // handed out is also a double-free.
  PacketPool pool(1);
  Packet* p = pool.Alloc();
  pool.Free(p);
  EXPECT_DEATH(pool.Free(p), "already in the pool");
}

TEST(PoolTest, ReallocAfterFreeIsLegalAgain) {
  // The in-pool flag must clear on Alloc so the normal cycle keeps working.
  PacketPool pool(1);
  for (int i = 0; i < 3; ++i) {
    Packet* p = pool.Alloc();
    ASSERT_NE(p, nullptr);
    pool.Free(p);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(PoolTest, AllocBulkCarvesDistinctPackets) {
  PacketPool pool(16);
  Packet* pkts[16];
  EXPECT_EQ(pool.AllocBulk(pkts, 16), 16u);
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.in_use(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_NE(pkts[i], nullptr);
    EXPECT_EQ(pkts[i]->origin_pool(), &pool);
    for (size_t j = i + 1; j < 16; ++j) {
      EXPECT_NE(pkts[i], pkts[j]);
    }
  }
  pool.FreeBulk(pkts, 16);
  EXPECT_EQ(pool.available(), 16u);
  EXPECT_EQ(pool.alloc_failures(), 0u);
}

TEST(PoolTest, AllocBulkPartialCarveCountsShortfall) {
  PacketPool pool(4);
  Packet* pkts[8];
  EXPECT_EQ(pool.AllocBulk(pkts, 8), 4u);
  // One failure per missing packet, same accounting as 8 Alloc() calls.
  EXPECT_EQ(pool.alloc_failures(), 4u);
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.AllocBulk(pkts + 4, 2), 0u);
  EXPECT_EQ(pool.alloc_failures(), 6u);
  pool.FreeBulk(pkts, 4);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(PoolTest, AllocBulkMatchesSingleAllocSequence) {
  // Bulk and single alloc drain the same freelist; a bulk carve of n must
  // leave the pool in the same state n pops would.
  PacketPool a(8);
  PacketPool b(8);
  Packet* bulk[5];
  ASSERT_EQ(a.AllocBulk(bulk, 5), 5u);
  Packet* single[5];
  for (auto& p : single) {
    p = b.Alloc();
  }
  EXPECT_EQ(a.available(), b.available());
  EXPECT_EQ(a.in_use(), b.in_use());
  a.FreeBulk(bulk, 5);
  for (Packet* p : single) {
    b.Free(p);
  }
  EXPECT_EQ(a.available(), 8u);
  EXPECT_EQ(b.available(), 8u);
}

TEST(PoolTest, BulkAndSingleInterleave) {
  PacketPool pool(8);
  Packet* bulk[4];
  ASSERT_EQ(pool.AllocBulk(bulk, 4), 4u);
  Packet* s = pool.Alloc();
  ASSERT_NE(s, nullptr);
  pool.FreeBulk(bulk, 4);
  EXPECT_EQ(pool.available(), 7u);  // 8 - the one single alloc still out
  Packet* again[7];
  EXPECT_EQ(pool.AllocBulk(again, 7), 7u);
  pool.Free(s);
  pool.FreeBulk(again, 7);
  EXPECT_EQ(pool.available(), 8u);
}

TEST(PoolDeathTest, FreeBulkDetectsDoubleFree) {
  PacketPool pool(2);
  Packet* pkts[2];
  ASSERT_EQ(pool.AllocBulk(pkts, 2), 2u);
  pool.Free(pkts[0]);
  // pkts[0] is already back in the pool; the bulk return must still trip
  // the per-packet double-free check.
  EXPECT_DEATH(pool.FreeBulk(pkts, 2), "double free");
  pool.Free(pkts[1]);
}

TEST(PoolTest, AllocBulkClearsInPoolFlag) {
  // A bulk-carved packet must be freeable exactly once, like Alloc'd ones.
  PacketPool pool(2);
  Packet* pkts[2];
  ASSERT_EQ(pool.AllocBulk(pkts, 2), 2u);
  pool.FreeBulk(pkts, 2);
  Packet* again[2];
  ASSERT_EQ(pool.AllocBulk(again, 2), 2u);
  pool.FreeBulk(again, 2);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(PoolTest, AllPacketsDistinct) {
  PacketPool pool(16);
  std::vector<Packet*> all;
  for (int i = 0; i < 16; ++i) {
    all.push_back(pool.Alloc());
  }
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  for (Packet* p : all) {
    pool.Free(p);
  }
}

}  // namespace
}  // namespace rb
