#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "telemetry/json.hpp"

namespace rb {
namespace {

std::string ReadFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  fclose(f);
  return text;
}

TEST(ReportTest, WriteJsonRoundTrips) {
  Report report("Figure 1", "a \"test\" table");
  report.SetColumns({"x", "y"});
  report.AddRow({"1", "2"});
  report.AddRow({"3", "4"});
  report.AddNote("a note");

  std::string path = testing::TempDir() + "/rb_report_test.json";
  ASSERT_TRUE(report.WriteJson(path));
  std::string text = ReadFile(path);
  remove(path.c_str());

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::ParseJson(text, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("id")->str, "Figure 1");
  EXPECT_EQ(doc.Find("title")->str, "a \"test\" table");
  ASSERT_EQ(doc.Find("columns")->arr.size(), 2u);
  EXPECT_EQ(doc.Find("columns")->arr[1].str, "y");
  ASSERT_EQ(doc.Find("rows")->arr.size(), 2u);
  EXPECT_EQ(doc.Find("rows")->arr[1].arr[0].str, "3");
  ASSERT_EQ(doc.Find("notes")->arr.size(), 1u);
  EXPECT_EQ(doc.Find("notes")->arr[0].str, "a note");
}

TEST(ReportTest, WriteCsvMatchesRows) {
  Report report("T", "t");
  report.SetColumns({"a", "b"});
  report.AddRow({"1", "2"});
  std::string path = testing::TempDir() + "/rb_report_test.csv";
  ASSERT_TRUE(report.WriteCsv(path));
  std::string text = ReadFile(path);
  remove(path.c_str());
  EXPECT_EQ(text, "a,b\n1,2\n");
}

}  // namespace
}  // namespace rb
