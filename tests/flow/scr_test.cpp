#include "flow/scr.hpp"

#include <gtest/gtest.h>

#include "flow/stateful_plane.hpp"
#include "telemetry/handler.hpp"

namespace rb {
namespace {

TEST(ScrLogTest, AppendAccumulatesInShardTail) {
  ScrLog log(/*shards=*/2, /*checkpoint_period=*/4);
  log.Append(0, ScrRecord{1, 10, 64});
  log.Append(0, ScrRecord{2, 11, 64});
  log.Append(1, ScrRecord{3, 12, 128});
  EXPECT_EQ(log.tail_size(0), 2u);
  EXPECT_EQ(log.tail_size(1), 1u);
  EXPECT_EQ(log.appended(), 3u);
  EXPECT_EQ(log.tail(0)[0].flow_id, 1u);
  EXPECT_EQ(log.tail(0)[1].tick, 11u);
}

TEST(ScrLogTest, CheckpointTruncatesTail) {
  ScrLog log(1, /*checkpoint_period=*/3);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(log.NeedsCheckpoint(0));
    log.Append(0, ScrRecord{i, static_cast<uint32_t>(i), 64});
  }
  EXPECT_TRUE(log.NeedsCheckpoint(0)) << "tail at period must request a checkpoint";
  ScrSnapshot snap;
  snap.alloc_next = 7;
  snap.entries.resize(2);
  log.InstallCheckpoint(0, std::move(snap));
  EXPECT_EQ(log.tail_size(0), 0u);
  EXPECT_EQ(log.checkpoints(), 1u);
  EXPECT_EQ(log.snapshot(0).alloc_next, 7u);
  EXPECT_EQ(log.snapshot(0).entries.size(), 2u);
  EXPECT_EQ(log.tail_highwater(), 3u);
}

// --- StatefulPlane: the distributed NAT state machine over the log ---

StatefulPlaneConfig PlaneConfig(StateMode mode) {
  StatefulPlaneConfig c;
  c.enabled = true;
  c.mode = mode;
  c.capacity_per_node = 1 << 10;
  c.checkpoint_period = 16;
  return c;
}

TEST(StatefulPlaneTest, FirstPacketAllocatesMappingEncodingHomeAndIncarnation) {
  StatefulPlane plane(PlaneConfig(StateMode::kScr), /*nodes=*/4);
  plane.Apply(/*flow_id=*/5, /*bytes=*/100, /*tick=*/1);
  plane.Apply(5, 100, 2);
  plane.Apply(6, 100, 3);
  auto snap = plane.MappingSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  // flow 5 homes at node 1, flow 6 at node 2; mapping word encodes
  // (incarnation << 48) | (home << 40) | alloc_seq.
  EXPECT_EQ((snap[5] >> 40) & 0xff, 1u);
  EXPECT_EQ((snap[6] >> 40) & 0xff, 2u);
  EXPECT_EQ(snap[5] >> 48, 0u) << "first incarnation is zero";
  const auto s = plane.stats();
  EXPECT_EQ(s.packets, 3u);
  EXPECT_EQ(s.flows_created, 2u);
  EXPECT_EQ(s.log_appended, 3u);
}

TEST(StatefulPlaneTest, KeyForFlowRoundTrips) {
  for (uint64_t id : {0ull, 1ull, 12345ull, 0xffffffffffull}) {
    EXPECT_EQ(StatefulPlane::FlowOfKey(StatefulPlane::KeyForFlow(id)), id);
  }
}

TEST(StatefulPlaneTest, UndetectedFailureCountsStateUnavailable) {
  StatefulPlane plane(PlaneConfig(StateMode::kScr), 2);
  plane.Apply(1, 64, 1);  // flow 1 homes at node 1
  plane.OnNodeDown(1);    // ground truth, not yet detected
  plane.Apply(1, 64, 2);
  plane.Apply(3, 64, 3);  // also homed at 1
  const auto s = plane.stats();
  EXPECT_EQ(s.state_unavailable, 2u) << "blind window packets find no reachable state";
  EXPECT_EQ(s.failovers, 0u) << "ownership does not move before detection";
}

TEST(StatefulPlaneTest, SharedModeFailoverLosesFlowsAndBumpsIncarnation) {
  StatefulPlane plane(PlaneConfig(StateMode::kShared), 2);
  plane.Apply(1, 64, 1);
  plane.Apply(3, 64, 2);
  const uint64_t before = plane.MappingSnapshot().at(1);
  plane.OnNodeDown(1);
  plane.OnNodeDetectedDown(1);
  auto s = plane.stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.lost_flows, 2u);
  EXPECT_EQ(plane.OwnerOf(1), 0) << "home 1 fails over to node 0";
  EXPECT_TRUE(plane.MappingSnapshot().empty());
  // Re-established flow gets a provably different mapping: the
  // incarnation in the top bits changed.
  plane.Apply(1, 64, 3);
  const uint64_t after = plane.MappingSnapshot().at(1);
  EXPECT_NE(before, after);
  EXPECT_EQ(after >> 48, 1u);
}

TEST(StatefulPlaneTest, ScrModeFailoverReplaysByteIdenticalMappings) {
  StatefulPlane plane(PlaneConfig(StateMode::kScr), 2);
  // Enough packets on home 1 to cross a checkpoint boundary, so replay
  // exercises snapshot + tail, not just the tail.
  for (uint32_t i = 0; i < 50; ++i) {
    plane.Apply(1 + 2 * (i % 5), 64, i);  // flows 1,3,5,7,9 — all home 1
  }
  const auto before = plane.MappingSnapshot();
  ASSERT_EQ(before.size(), 5u);
  plane.OnNodeDown(1);
  plane.OnNodeDetectedDown(1);
  const auto after = plane.MappingSnapshot();
  EXPECT_EQ(before, after) << "SCR replay must reconstruct byte-identical mappings";
  const auto s = plane.stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.lost_flows, 0u);
  EXPECT_EQ(s.replays, 1u);
  EXPECT_GT(s.checkpoints, 0u);
  // Bounded replay: the tail can never exceed one checkpoint period.
  EXPECT_LE(plane.log()->tail_highwater(), PlaneConfig(StateMode::kScr).checkpoint_period);
}

TEST(StatefulPlaneTest, OwnershipStickyAfterRecovery) {
  StatefulPlane plane(PlaneConfig(StateMode::kScr), 3);
  plane.Apply(1, 64, 1);
  plane.OnNodeDown(1);
  plane.OnNodeDetectedDown(1);
  EXPECT_EQ(plane.OwnerOf(1), 2) << "next detected-alive node after 1";
  plane.OnNodeUp(1);
  EXPECT_EQ(plane.OwnerOf(1), 2) << "recovery does not claw back ownership";
  plane.Apply(1, 64, 2);
  EXPECT_EQ(plane.stats().state_unavailable, 0u);
}

TEST(StatefulPlaneTest, HandlersExposeModeAndCounters) {
  StatefulPlane plane(PlaneConfig(StateMode::kScr), 2);
  telemetry::HandlerRegistry handlers;
  plane.AddHandlers(&handlers, "cluster.stateful");
  plane.Apply(1, 64, 1);
  auto mode = handlers.Read("cluster.stateful.mode");
  ASSERT_TRUE(mode.ok);
  EXPECT_EQ(mode.text, "scr");
  auto flows = handlers.Read("cluster.stateful.flows");
  ASSERT_TRUE(flows.ok);
  EXPECT_EQ(flows.text, "1");
}

}  // namespace
}  // namespace rb
