#include "flow/flow_table.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "telemetry/handler.hpp"

namespace rb {
namespace {

FlowKey Key(uint32_t i) {
  return FlowKey{0x0a000000u + i, 0x0b000000u + (i * 7919u), static_cast<uint16_t>(1024 + i % 60000),
                 static_cast<uint16_t>(80), 6};
}

FlowTableConfig SmallConfig(size_t capacity = 256, int shards = 2) {
  FlowTableConfig c;
  c.capacity = capacity;
  c.shards = shards;
  return c;
}

TEST(FlowTableTest, EntryIsOneCacheHalfLine) {
  EXPECT_EQ(sizeof(FlowEntry), 32u);
}

TEST(FlowTableTest, InsertThenFind) {
  FlowTable t(SmallConfig());
  bool inserted = false;
  FlowEntry* e = t.FindOrInsert(Key(1), /*now=*/10, &inserted);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(e->occupied());
  EXPECT_EQ(e->last_seen, 10u);
  e->state0 = 0xdeadbeef;

  FlowEntry* again = t.FindOrInsert(Key(1), 20, &inserted);
  ASSERT_EQ(again, e);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again->state0, 0xdeadbeefu);
  EXPECT_EQ(again->last_seen, 20u) << "hit must touch last_seen";

  EXPECT_NE(t.Find(Key(1), 30), nullptr);
  EXPECT_EQ(t.Find(Key(2), 30), nullptr);
  EXPECT_EQ(t.occupancy(), 1u);
  EXPECT_EQ(t.stats().inserts, 1u);
  EXPECT_EQ(t.stats().hits, 2u);
}

TEST(FlowTableTest, EraseRemovesWithoutEvictCallback) {
  FlowTable t(SmallConfig());
  int evicted = 0;
  t.set_on_evict([&](const FlowEntry&) { evicted++; });
  t.FindOrInsert(Key(1), 0);
  EXPECT_TRUE(t.Erase(Key(1)));
  EXPECT_FALSE(t.Erase(Key(1)));
  EXPECT_EQ(t.occupancy(), 0u);
  EXPECT_EQ(evicted, 0) << "erase is the owner acting, not an eviction";
  EXPECT_EQ(t.stats().erases, 1u);
}

TEST(FlowTableTest, MillionsOfDistinctFlowsFitUnderWatermark) {
  FlowTableConfig c;
  c.capacity = 1 << 16;
  c.shards = 4;
  FlowTable t(c);
  // Fill to just under the low watermark: every insert succeeds, and
  // evictions (a full probe window can occur below the watermark with a
  // bounded window) stay a negligible fraction of the population.
  const uint32_t n = static_cast<uint32_t>(0.65 * static_cast<double>(t.capacity_slots()));
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_NE(t.FindOrInsert(Key(i), i), nullptr);
  }
  const FlowTableStats s = t.stats();
  EXPECT_EQ(s.insert_fail, 0u);
  EXPECT_EQ(s.evict_watermark, 0u) << "watermark must not engage at 65% load";
  EXPECT_LT(s.evictions(), n / 100) << "full-window evictions must be <1% at 65% load";
  EXPECT_EQ(t.occupancy(), s.inserts - s.evictions() - s.erases) << "conservation";
  // Everything that wasn't evicted is findable.
  uint64_t misses = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (t.Find(Key(i), n) == nullptr) {
      misses++;
    }
  }
  EXPECT_LE(misses, s.evictions());
  EXPECT_GE(t.ProbeLengthPercentile(0.99), 1);
  EXPECT_LE(t.ProbeLengthPercentile(0.99), c.max_probe_buckets);
}

TEST(FlowTableTest, WatermarkEvictionEngagesBeforeTableFull) {
  FlowTableConfig c = SmallConfig(512, 1);
  c.hi_watermark = 0.5;
  c.lo_watermark = 0.25;
  FlowTable t(c);
  uint64_t evict_cb = 0;
  t.set_on_evict([&](const FlowEntry&) { evict_cb++; });
  // Push 2x the watermark worth of distinct flows: the table must keep
  // accepting inserts, shedding LRU entries, and never report full.
  const uint32_t n = static_cast<uint32_t>(t.capacity_slots());
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_NE(t.FindOrInsert(Key(i), i), nullptr);
  }
  const FlowTableStats s = t.stats();
  EXPECT_GT(s.evict_watermark, 0u) << "eviction must engage at the watermark";
  EXPECT_EQ(s.insert_fail, 0u);
  EXPECT_EQ(evict_cb, s.evictions()) << "every eviction fires the callback exactly once";
  // Occupancy stays pinned near the watermark, strictly below capacity.
  EXPECT_LT(t.occupancy(), t.capacity_slots());
  // Conservation: what went in either lives, was evicted, or was erased.
  EXPECT_EQ(t.occupancy(), s.inserts - s.evictions() - s.erases);
}

TEST(FlowTableTest, FullWindowWithEvictionDisabledFailsInsert) {
  FlowTableConfig c = SmallConfig(64, 1);
  c.hi_watermark = 1.0;  // never watermark-evict
  c.lo_watermark = 0.5;
  c.evict_on_full = false;
  FlowTable t(c);
  uint64_t failed = 0;
  for (uint32_t i = 0; i < 4096; ++i) {
    if (t.FindOrInsert(Key(i), i) == nullptr) {
      failed++;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(t.stats().insert_fail, failed);
  EXPECT_EQ(t.stats().evictions(), 0u);
  EXPECT_LE(t.occupancy(), t.capacity_slots());
}

TEST(FlowTableTest, FullWindowEvictsLruWhenEnabled) {
  FlowTableConfig c = SmallConfig(64, 1);
  c.hi_watermark = 1.0;  // force the full-window path, not the watermark
  c.lo_watermark = 0.5;
  c.evict_on_full = true;
  FlowTable t(c);
  for (uint32_t i = 0; i < 4096; ++i) {
    ASSERT_NE(t.FindOrInsert(Key(i), i), nullptr) << "full window must evict, not fail";
  }
  EXPECT_GT(t.stats().evict_full, 0u);
  EXPECT_EQ(t.stats().insert_fail, 0u);
}

TEST(FlowTableTest, IdleEntriesReclaimedOnSightAndBySweep) {
  FlowTableConfig c = SmallConfig(256, 1);
  c.idle_timeout = 100;
  FlowTable t(c);
  uint64_t evict_cb = 0;
  t.set_on_evict([&](const FlowEntry&) { evict_cb++; });
  t.FindOrInsert(Key(1), 0);
  t.FindOrInsert(Key(2), 0);
  // Not yet idle.
  EXPECT_NE(t.Find(Key(1), 99), nullptr);
  // Key(1) was touched at 99; Key(2) is stale. Find reclaims on sight.
  EXPECT_EQ(t.Find(Key(2), 150), nullptr);
  EXPECT_EQ(t.stats().evict_idle, 1u);
  // The sweep reclaims the rest once they age out.
  size_t reclaimed = t.SweepIdle(1000, t.capacity_slots());
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(t.occupancy(), 0u);
  EXPECT_EQ(evict_cb, 2u);
}

TEST(FlowTableTest, SweepIdleNoopWhenDisabled) {
  FlowTable t(SmallConfig());
  t.FindOrInsert(Key(1), 0);
  EXPECT_EQ(t.SweepIdle(1u << 30, t.capacity_slots()), 0u);
  EXPECT_EQ(t.occupancy(), 1u);
}

TEST(FlowTableTest, TickWraparoundDoesNotExpireFreshEntries) {
  FlowTableConfig c = SmallConfig(64, 1);
  c.idle_timeout = 1000;
  FlowTable t(c);
  const uint32_t near_wrap = 0xffffff00u;
  t.FindOrInsert(Key(1), near_wrap);
  // 0x200 ticks later the counter has wrapped; the entry is 0x300 old,
  // still under the timeout.
  EXPECT_NE(t.Find(Key(1), 0x200u), nullptr);
}

TEST(FlowTableTest, ClearShardFiresEvictCallbackPerEntry) {
  FlowTable t(SmallConfig(256, 2));
  std::set<uint32_t> cleared;
  t.set_on_evict([&](const FlowEntry& e) { cleared.insert(e.src_ip); });
  for (uint32_t i = 0; i < 32; ++i) {
    t.FindOrInsert(Key(i), 0);
  }
  size_t shard0 = t.ShardOccupancy(0);
  size_t shard1 = t.ShardOccupancy(1);
  EXPECT_EQ(shard0 + shard1, 32u);
  t.ClearShard(0);
  EXPECT_EQ(cleared.size(), shard0);
  EXPECT_EQ(t.occupancy(), shard1);
  t.Clear();
  EXPECT_EQ(cleared.size(), 32u);
  EXPECT_EQ(t.occupancy(), 0u);
}

TEST(FlowTableTest, RestoreReinstallsEntryAndCountsReplay) {
  FlowTable t(SmallConfig(256, 1));
  FlowEntry* e = t.FindOrInsert(Key(7), 42);
  e->state0 = 1234;
  e->state1 = 56;
  e->flags |= FlowEntry::kEstablished;
  FlowEntry snapshot = *e;
  t.Clear();
  ASSERT_EQ(t.occupancy(), 0u);
  FlowEntry* r = t.Restore(0, snapshot);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->state0, 1234u);
  EXPECT_EQ(r->state1, 56u);
  EXPECT_TRUE(r->established());
  EXPECT_EQ(r->last_seen, 42u);
  EXPECT_EQ(t.stats().replays, 1u);
  EXPECT_NE(t.Find(Key(7), 43), nullptr);
}

TEST(FlowTableTest, ForEachInShardVisitsOccupiedOnly) {
  FlowTable t(SmallConfig(256, 1));
  for (uint32_t i = 0; i < 10; ++i) {
    t.FindOrInsert(Key(i), 0);
  }
  t.Erase(Key(3));
  size_t seen = 0;
  t.ForEachInShard(0, [&](const FlowEntry& e) {
    seen++;
    EXPECT_TRUE(e.occupied());
  });
  EXPECT_EQ(seen, 9u);
}

TEST(FlowTableTest, SetWatermarksValidates) {
  FlowTable t(SmallConfig());
  EXPECT_TRUE(t.SetWatermarks(0.9, 0.5));
  EXPECT_DOUBLE_EQ(t.hi_watermark(), 0.9);
  EXPECT_DOUBLE_EQ(t.lo_watermark(), 0.5);
  EXPECT_FALSE(t.SetWatermarks(0.5, 0.9)) << "lo >= hi must be rejected";
  EXPECT_FALSE(t.SetWatermarks(1.5, 0.5));
  EXPECT_FALSE(t.SetWatermarks(0.9, 0.0));
  EXPECT_DOUBLE_EQ(t.hi_watermark(), 0.9) << "rejected writes leave state untouched";
}

TEST(FlowTableTest, HandlersReadAndRetuneWatermarks) {
  FlowTable t(SmallConfig());
  telemetry::HandlerRegistry handlers;
  t.AddHandlers(&handlers, "nat");
  t.FindOrInsert(Key(1), 0);

  auto flows = handlers.Read("nat.flows");
  ASSERT_TRUE(flows.ok) << flows.text;
  EXPECT_EQ(flows.text, "1");
  auto occ = handlers.Read("nat.occupancy");
  ASSERT_TRUE(occ.ok) << occ.text;
  EXPECT_EQ(occ.text, "1");
  auto cap = handlers.Read("nat.capacity");
  ASSERT_TRUE(cap.ok);
  EXPECT_EQ(cap.text, std::to_string(t.capacity_slots()));

  auto lo = handlers.Write("nat.lo", "0.3");
  EXPECT_TRUE(lo.ok) << lo.text;
  auto hi = handlers.Write("nat.hi", "0.6");
  EXPECT_TRUE(hi.ok) << hi.text;
  EXPECT_DOUBLE_EQ(t.hi_watermark(), 0.6);
  EXPECT_DOUBLE_EQ(t.lo_watermark(), 0.3);
  EXPECT_FALSE(handlers.Write("nat.hi", "0.1").ok) << "hi below lo must be rejected";
  EXPECT_FALSE(handlers.Write("nat.hi", "bogus").ok);
  auto idle = handlers.Write("nat.idle_ticks", "5000");
  EXPECT_TRUE(idle.ok);
  EXPECT_EQ(t.idle_timeout(), 5000u);
}

TEST(FlowTableTest, LockedVariantIsCoherentAcrossThreads) {
  FlowTableConfig c;
  c.capacity = 1 << 14;
  c.shards = 4;
  FlowTable t(c);
  constexpr int kThreads = 4;
  constexpr uint32_t kFlows = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t] {
      // All threads hammer the same keys: state0 increments must not be
      // lost if the per-shard lock actually serializes access.
      for (int round = 0; round < 50; ++round) {
        for (uint32_t i = 0; i < kFlows; ++i) {
          t.FindOrInsertLocked(Key(i), round, [](FlowEntry* e, bool) {
            if (e != nullptr) {
              e->state0++;
            }
          });
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(t.occupancy(), kFlows);
  uint64_t total = 0;
  for (int s = 0; s < t.shards(); ++s) {
    t.ForEachInShard(s, [&](const FlowEntry& e) { total += e.state0; });
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 50 * kFlows);
}

}  // namespace
}  // namespace rb
