#include "lookup/dir24_8.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "lookup/radix_trie.hpp"
#include "lookup/table_gen.hpp"

namespace rb {
namespace {

uint32_t Ip(const char* s) {
  uint32_t a = 0;
  EXPECT_TRUE(ParseIpv4(s, &a));
  return a;
}

TEST(Dir24_8Test, EmptyReturnsNoRoute) {
  Dir24_8 t;
  EXPECT_EQ(t.Lookup(Ip("1.2.3.4")), LpmTable::kNoRoute);
}

TEST(Dir24_8Test, ShortPrefixFillsRange) {
  Dir24_8 t;
  t.Insert(Ip("10.0.0.0"), 8, 7);
  EXPECT_EQ(t.Lookup(Ip("10.0.0.0")), 7u);
  EXPECT_EQ(t.Lookup(Ip("10.255.255.255")), 7u);
  EXPECT_EQ(t.Lookup(Ip("11.0.0.0")), LpmTable::kNoRoute);
  EXPECT_EQ(t.num_long_segments(), 0u);
}

TEST(Dir24_8Test, LongPrefixAllocatesSegment) {
  Dir24_8 t;
  t.Insert(Ip("10.1.2.128"), 25, 3);
  EXPECT_EQ(t.num_long_segments(), 1u);
  EXPECT_EQ(t.Lookup(Ip("10.1.2.129")), 3u);
  EXPECT_EQ(t.Lookup(Ip("10.1.2.127")), LpmTable::kNoRoute);
}

TEST(Dir24_8Test, LongPrefixInheritsCoveringShort) {
  Dir24_8 t;
  t.Insert(Ip("10.0.0.0"), 8, 1);
  t.Insert(Ip("10.1.2.0"), 26, 2);
  // Inside the /26.
  EXPECT_EQ(t.Lookup(Ip("10.1.2.63")), 2u);
  // Same /24, outside the /26: falls back to the /8.
  EXPECT_EQ(t.Lookup(Ip("10.1.2.64")), 1u);
  // Different /24 entirely.
  EXPECT_EQ(t.Lookup(Ip("10.9.9.9")), 1u);
}

TEST(Dir24_8Test, ShortInsertedAfterLongDoesNotClobber) {
  Dir24_8 t;
  t.Insert(Ip("10.1.2.0"), 26, 2);
  t.Insert(Ip("10.0.0.0"), 8, 1);  // shorter, inserted later
  EXPECT_EQ(t.Lookup(Ip("10.1.2.10")), 2u) << "longer prefix must survive";
  EXPECT_EQ(t.Lookup(Ip("10.1.2.200")), 1u);
}

TEST(Dir24_8Test, Slash32Works) {
  Dir24_8 t;
  t.Insert(Ip("1.2.3.4"), 32, 9);
  EXPECT_EQ(t.Lookup(Ip("1.2.3.4")), 9u);
  EXPECT_EQ(t.Lookup(Ip("1.2.3.5")), LpmTable::kNoRoute);
}

TEST(Dir24_8Test, Slash24BoundaryExact) {
  Dir24_8 t;
  t.Insert(Ip("192.168.5.0"), 24, 4);
  EXPECT_EQ(t.Lookup(Ip("192.168.5.0")), 4u);
  EXPECT_EQ(t.Lookup(Ip("192.168.5.255")), 4u);
  EXPECT_EQ(t.Lookup(Ip("192.168.4.255")), LpmTable::kNoRoute);
  EXPECT_EQ(t.Lookup(Ip("192.168.6.0")), LpmTable::kNoRoute);
}

TEST(Dir24_8Test, DefaultRoute) {
  Dir24_8 t;
  t.Insert(0, 0, 5);
  EXPECT_EQ(t.Lookup(Ip("200.100.50.25")), 5u);
}

TEST(Dir24_8Test, SizeCountsDistinctRoutes) {
  Dir24_8 t;
  t.Insert(Ip("10.0.0.0"), 8, 1);
  t.Insert(Ip("10.0.0.0"), 8, 2);  // replace
  t.Insert(Ip("10.0.0.0"), 9, 3);  // different length -> new route
  EXPECT_EQ(t.size(), 2u);
}

TEST(Dir24_8Test, MemoryFootprintMatchesLayout) {
  Dir24_8 t;
  size_t base = t.memory_bytes();
  EXPECT_GE(base, (1u << 24) * sizeof(uint16_t));
  t.Insert(Ip("10.1.2.128"), 25, 3);
  EXPECT_EQ(t.memory_bytes() - base, 256 * sizeof(uint16_t) + sizeof(uint32_t));
}

// The load-bearing property test: DIR-24-8 agrees with the reference trie
// on random tables and random lookups, under arbitrary insertion order.
class Dir24CrossValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Dir24CrossValidation, MatchesRadixTrie) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  RadixTrie reference;
  Dir24_8 dut;
  // Random routes with lengths biased toward the interesting 20-32 band.
  const int kRoutes = 400;
  for (int i = 0; i < kRoutes; ++i) {
    uint8_t length = static_cast<uint8_t>(8 + rng.NextBounded(25));  // 8..32
    uint32_t prefix = static_cast<uint32_t>(rng.Next());
    uint32_t next_hop = 1 + static_cast<uint32_t>(rng.NextBounded(50));
    reference.Insert(prefix, length, next_hop);
    dut.Insert(prefix, length, next_hop);
  }
  // Random probes plus probes near inserted prefixes.
  for (int i = 0; i < 20000; ++i) {
    uint32_t addr = static_cast<uint32_t>(rng.Next());
    ASSERT_EQ(dut.Lookup(addr), reference.Lookup(addr)) << "addr=" << Ipv4ToString(addr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dir24CrossValidation, ::testing::Range<uint64_t>(1, 9));

TEST(Dir24_8Test, FullGeneratedTableAgreesWithTrie) {
  TableGenConfig cfg;
  cfg.num_routes = 20000;  // scaled-down 256K table for test speed
  cfg.seed = 77;
  auto routes = GenerateRoutingTable(cfg);
  RadixTrie reference;
  Dir24_8 dut;
  reference.InsertAll(routes);
  dut.InsertAll(routes);
  EXPECT_EQ(dut.size(), routes.size());
  Rng rng(78);
  for (int i = 0; i < 50000; ++i) {
    uint32_t addr = static_cast<uint32_t>(rng.Next());
    ASSERT_EQ(dut.Lookup(addr), reference.Lookup(addr));
  }
  // Also probe addresses that definitely hit routes.
  for (size_t i = 0; i < routes.size(); i += 7) {
    uint32_t addr = routes[i].prefix | static_cast<uint32_t>(rng.NextBounded(256));
    ASSERT_EQ(dut.Lookup(addr), reference.Lookup(addr));
  }
}

}  // namespace
}  // namespace rb
