// S2 differential suite: Dir24_8 and RadixTrie must agree everywhere —
// scalar Lookup and the prefetch-pipelined LookupBatch, over randomized
// generated tables and adversarial prefix layouts (/0, the /24 boundary,
// /25../32 spill into tbl_long, overlapping covers). The batch path gets
// its own coverage because it is the data-plane entry point (IpLookup
// resolves whole bursts through it) and its prefetch pipelining must not
// change a single result.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "lookup/dir24_8.hpp"
#include "lookup/radix_trie.hpp"
#include "lookup/table_gen.hpp"

namespace rb {
namespace {

// Boundary addresses for a route: just below, first, inside, last, just
// above.
std::vector<uint32_t> EdgeProbes(const RouteEntry& r) {
  uint32_t first = NormalizePrefix(r.prefix, r.length);
  uint32_t span = r.length >= 32 ? 0 : (0xffffffffu >> r.length);
  uint32_t last = first | span;
  return {first - 1, first, first + span / 2, last, last + 1};
}

void ExpectAllAgree(const Dir24_8& dut, const RadixTrie& ref,
                    const std::vector<uint32_t>& addrs) {
  // Scalar agreement.
  std::vector<uint32_t> want(addrs.size());
  for (size_t i = 0; i < addrs.size(); ++i) {
    want[i] = ref.Lookup(addrs[i]);
    ASSERT_EQ(dut.Lookup(addrs[i]), want[i]) << "addr " << addrs[i];
  }
  // Batch agreement for both structures, across sizes that straddle the
  // prefetch depth (empty, shorter, equal, longer, full bursts).
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{8}, size_t{9}, addrs.size()}) {
    if (n > addrs.size()) {
      continue;
    }
    std::vector<uint32_t> got(n + 1, 0xdeadbeefu);
    dut.LookupBatch(addrs.data(), got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "Dir24_8 batch[" << i << "] of " << n;
    }
    ASSERT_EQ(got[n], 0xdeadbeefu) << "batch wrote past n";
    ref.LookupBatch(addrs.data(), got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "RadixTrie batch[" << i << "] of " << n;
    }
  }
}

TEST(LpmDifferentialTest, AdversarialPrefixLayouts) {
  // Overlapping covers across the /24 boundary: a default route, nested
  // shorts, a /24, and /25../32 spills inside and outside the same /24.
  const std::vector<RouteEntry> routes = {
      {0x00000000u, 0, 1},   // default route
      {0x0a000000u, 8, 2},   // 10/8
      {0x0a010000u, 16, 3},  // 10.1/16 (inside the /8)
      {0x0a010200u, 24, 4},  // 10.1.2/24
      {0x0a010280u, 25, 5},  // 10.1.2.128/25 (spills the /24's slot)
      {0x0a0102c0u, 26, 6},  // 10.1.2.192/26 (nested in the /25)
      {0x0a0102ffu, 32, 7},  // one host inside everything above
      {0x0a010300u, 24, 8},  // adjacent /24
      {0xc0a80500u, 24, 9},  // isolated /24 elsewhere
      {0xc0a80501u, 32, 10},  // /32 under it
      {0xffffff00u, 24, 11},  // top of the address space
      {0xffffffffu, 32, 12},
  };
  // Every insertion order must converge to the same table; try a few.
  Rng rng(7);
  for (int order = 0; order < 6; ++order) {
    std::vector<RouteEntry> shuffled = routes;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
    }
    Dir24_8 dut;
    RadixTrie ref;
    dut.InsertAll(shuffled);
    ref.InsertAll(shuffled);

    std::vector<uint32_t> probes;
    for (const RouteEntry& r : routes) {
      for (uint32_t a : EdgeProbes(r)) {
        probes.push_back(a);
      }
    }
    for (int i = 0; i < 2000; ++i) {
      probes.push_back(static_cast<uint32_t>(rng.Next()));
    }
    ExpectAllAgree(dut, ref, probes);
  }
}

TEST(LpmDifferentialTest, ReplacementAndShadowedInsertOrderAgree) {
  Dir24_8 dut;
  RadixTrie ref;
  // Insert long before short, replace a next hop, then pile a longer
  // prefix on top — slot-precedence bookkeeping must match the trie.
  for (auto* t : std::initializer_list<LpmTable*>{&dut, &ref}) {
    t->Insert(0x0a010280u, 25, 5);
    t->Insert(0x0a000000u, 8, 2);
    t->Insert(0x0a010280u, 25, 6);  // replace
    t->Insert(0x0a010200u, 24, 4);  // shorter, later
    t->Insert(0x0a0102a0u, 27, 7);  // longer, last
  }
  std::vector<uint32_t> probes;
  for (uint32_t a = 0x0a010200u - 2; a <= 0x0a010300u + 2; ++a) {
    probes.push_back(a);  // exhaustive sweep of the contested /24
  }
  ExpectAllAgree(dut, ref, probes);
}

class LpmDifferentialRandomTables : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpmDifferentialRandomTables, GeneratedTableBatchAgreesEverywhere) {
  TableGenConfig cfg;
  cfg.num_routes = 6000;
  cfg.seed = GetParam();
  auto routes = GenerateRoutingTable(cfg);
  Dir24_8 dut;
  RadixTrie ref;
  dut.InsertAll(routes);
  ref.InsertAll(routes);

  Rng rng(GetParam() * 31 + 1);
  // Random probes plus route-edge probes, resolved through full bursts.
  std::vector<uint32_t> probes;
  for (int i = 0; i < 6000; ++i) {
    probes.push_back(static_cast<uint32_t>(rng.Next()));
  }
  for (size_t i = 0; i < routes.size(); i += 11) {
    for (uint32_t a : EdgeProbes(routes[i])) {
      probes.push_back(a);
    }
  }
  std::vector<uint32_t> want(probes.size());
  std::vector<uint32_t> got(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    want[i] = ref.Lookup(probes[i]);
  }
  // One LookupBatch per burst-sized slice, as the data plane issues them.
  for (size_t at = 0; at < probes.size(); at += 256) {
    size_t n = std::min<size_t>(256, probes.size() - at);
    dut.LookupBatch(probes.data() + at, got.data() + at, n);
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "addr " << probes[i];
    ASSERT_EQ(dut.Lookup(probes[i]), want[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmDifferentialRandomTables, ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace rb
