#include "lookup/table_gen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lookup/dir24_8.hpp"

namespace rb {
namespace {

TEST(TableGenTest, GeneratesRequestedCount) {
  TableGenConfig cfg;
  cfg.num_routes = 5000;
  auto routes = GenerateRoutingTable(cfg);
  EXPECT_EQ(routes.size(), 5000u);
}

TEST(TableGenTest, RoutesAreDistinct) {
  TableGenConfig cfg;
  cfg.num_routes = 10000;
  auto routes = GenerateRoutingTable(cfg);
  std::set<uint64_t> keys;
  for (const auto& r : routes) {
    keys.insert((static_cast<uint64_t>(r.prefix) << 8) | r.length);
  }
  EXPECT_EQ(keys.size(), routes.size());
}

TEST(TableGenTest, Deterministic) {
  TableGenConfig cfg;
  cfg.num_routes = 1000;
  cfg.seed = 9;
  auto a = GenerateRoutingTable(cfg);
  auto b = GenerateRoutingTable(cfg);
  EXPECT_EQ(a, b);
}

TEST(TableGenTest, NextHopsInRange) {
  TableGenConfig cfg;
  cfg.num_routes = 2000;
  cfg.num_next_hops = 4;
  auto routes = GenerateRoutingTable(cfg);
  for (const auto& r : routes) {
    EXPECT_GE(r.next_hop, 1u);
    EXPECT_LE(r.next_hop, 4u);
  }
}

TEST(TableGenTest, PrefixesAreNormalized) {
  TableGenConfig cfg;
  cfg.num_routes = 2000;
  auto routes = GenerateRoutingTable(cfg);
  for (const auto& r : routes) {
    EXPECT_EQ(r.prefix, NormalizePrefix(r.prefix, r.length));
  }
}

TEST(TableGenTest, NoMulticastOrReservedPrefixes) {
  TableGenConfig cfg;
  cfg.num_routes = 5000;
  auto routes = GenerateRoutingTable(cfg);
  for (const auto& r : routes) {
    EXPECT_LT(r.prefix >> 28, 0xeu);
  }
}

TEST(TableGenTest, Slash24Dominates) {
  // The realistic shape: /24 is the most common length (roughly half).
  TableGenConfig cfg;
  cfg.num_routes = 30000;
  auto routes = GenerateRoutingTable(cfg);
  std::map<uint8_t, int> by_length;
  for (const auto& r : routes) {
    by_length[r.length]++;
  }
  double frac24 = by_length[24] / static_cast<double>(routes.size());
  EXPECT_GT(frac24, 0.40);
  EXPECT_LT(frac24, 0.60);
  // A small but nonzero share of >24 prefixes exercises tbl_long.
  int longer = 0;
  for (auto& [len, count] : by_length) {
    if (len > 24) {
      longer += count;
    }
  }
  EXPECT_GT(longer, 0);
  EXPECT_LT(longer / static_cast<double>(routes.size()), 0.05);
}

TEST(TableGenTest, WeightsCoverDocumentedLengths) {
  auto weights = DefaultPrefixLengthWeights();
  EXPECT_EQ(weights.front().first, 8);
  EXPECT_EQ(weights.back().first, 32);
  EXPECT_EQ(weights.size(), 25u);
}

TEST(PrefixSamplerTest, EveryDstMatchesItsTable) {
  // The whole point: sampled addresses are routable in an LPM built from
  // the same table, with no reject-sampling against that LPM.
  TableGenConfig cfg;
  cfg.num_routes = 4096;
  auto routes = GenerateRoutingTable(cfg);
  Dir24_8 table;
  table.InsertAll(routes);
  PrefixSampler sampler(routes);
  EXPECT_EQ(sampler.num_prefixes(), routes.size());
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table.Lookup(sampler.NextDst(&rng)), LpmTable::kNoRoute);
  }
}

TEST(PrefixSamplerTest, ConfigConstructorMatchesRouterTable) {
  // Same config + seed => the sampler covers exactly the routes a router
  // built from that config installed.
  TableGenConfig cfg;
  cfg.num_routes = 2048;
  cfg.seed = 1234;
  Dir24_8 table;
  table.InsertAll(GenerateRoutingTable(cfg));
  PrefixSampler sampler(cfg);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(table.Lookup(sampler.NextDst(&rng)), LpmTable::kNoRoute);
  }
}

TEST(PrefixSamplerTest, RandomizesHostBits) {
  // A /8 route leaves 24 host bits free; the sampler must actually spread
  // over them (cache-thrash workloads depend on destination entropy).
  std::vector<RouteEntry> routes;
  RouteEntry r;
  r.prefix = 0x0a000000;
  r.length = 8;
  r.next_hop = 1;
  routes.push_back(r);
  PrefixSampler sampler(routes);
  Rng rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint32_t dst = sampler.NextDst(&rng);
    EXPECT_EQ(dst >> 24, 0x0au);
    seen.insert(dst);
  }
  EXPECT_GT(seen.size(), 900u);
}

TEST(PrefixSamplerTest, HostRouteIsExact) {
  std::vector<RouteEntry> routes;
  RouteEntry r;
  r.prefix = 0xc0a80101;
  r.length = 32;
  r.next_hop = 2;
  routes.push_back(r);
  PrefixSampler sampler(routes);
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(sampler.NextDst(&rng), 0xc0a80101u);
  }
}

}  // namespace
}  // namespace rb
