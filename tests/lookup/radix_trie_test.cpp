#include "lookup/radix_trie.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace rb {
namespace {

uint32_t Ip(const char* s) {
  uint32_t a = 0;
  EXPECT_TRUE(ParseIpv4(s, &a));
  return a;
}

TEST(RadixTrieTest, EmptyReturnsNoRoute) {
  RadixTrie t;
  EXPECT_EQ(t.Lookup(Ip("1.2.3.4")), LpmTable::kNoRoute);
  EXPECT_EQ(t.size(), 0u);
}

TEST(RadixTrieTest, ExactPrefixMatch) {
  RadixTrie t;
  t.Insert(Ip("10.0.0.0"), 8, 5);
  EXPECT_EQ(t.Lookup(Ip("10.200.1.1")), 5u);
  EXPECT_EQ(t.Lookup(Ip("11.0.0.1")), LpmTable::kNoRoute);
}

TEST(RadixTrieTest, LongestPrefixWins) {
  RadixTrie t;
  t.Insert(Ip("10.0.0.0"), 8, 1);
  t.Insert(Ip("10.1.0.0"), 16, 2);
  t.Insert(Ip("10.1.2.0"), 24, 3);
  t.Insert(Ip("10.1.2.3"), 32, 4);
  EXPECT_EQ(t.Lookup(Ip("10.9.9.9")), 1u);
  EXPECT_EQ(t.Lookup(Ip("10.1.9.9")), 2u);
  EXPECT_EQ(t.Lookup(Ip("10.1.2.9")), 3u);
  EXPECT_EQ(t.Lookup(Ip("10.1.2.3")), 4u);
}

TEST(RadixTrieTest, DefaultRouteMatchesEverything) {
  RadixTrie t;
  t.Insert(0, 0, 9);
  EXPECT_EQ(t.Lookup(0), 9u);
  EXPECT_EQ(t.Lookup(0xffffffff), 9u);
}

TEST(RadixTrieTest, ReplaceSamePrefix) {
  RadixTrie t;
  t.Insert(Ip("10.0.0.0"), 8, 1);
  t.Insert(Ip("10.0.0.0"), 8, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Lookup(Ip("10.0.0.1")), 2u);
}

TEST(RadixTrieTest, PrefixNormalization) {
  RadixTrie t;
  // Host bits beyond the prefix length must be ignored.
  t.Insert(Ip("10.0.0.255"), 8, 3);
  EXPECT_EQ(t.Lookup(Ip("10.55.66.77")), 3u);
}

TEST(RadixTrieTest, RemoveRestoresShorterMatch) {
  RadixTrie t;
  t.Insert(Ip("10.0.0.0"), 8, 1);
  t.Insert(Ip("10.1.0.0"), 16, 2);
  EXPECT_EQ(t.Lookup(Ip("10.1.0.1")), 2u);
  EXPECT_TRUE(t.Remove(Ip("10.1.0.0"), 16));
  EXPECT_EQ(t.Lookup(Ip("10.1.0.1")), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.Remove(Ip("10.1.0.0"), 16));
}

TEST(RadixTrieTest, SiblingPrefixesIndependent) {
  RadixTrie t;
  t.Insert(Ip("192.168.0.0"), 24, 1);
  t.Insert(Ip("192.168.1.0"), 24, 2);
  EXPECT_EQ(t.Lookup(Ip("192.168.0.77")), 1u);
  EXPECT_EQ(t.Lookup(Ip("192.168.1.77")), 2u);
  EXPECT_EQ(t.Lookup(Ip("192.168.2.77")), LpmTable::kNoRoute);
}

}  // namespace
}  // namespace rb
