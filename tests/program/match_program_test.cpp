#include "program/match_program.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/classifier.hpp"
#include "packet/headers.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

using program::CompileClassifierPatterns;
using program::MatchInsn;
using program::MatchProgram;

Packet* Frame(PacketPool* pool, uint32_t dst_ip = 0x0a000001, uint8_t proto = 17,
              uint32_t size = 64) {
  FrameSpec spec;
  spec.size = size;
  spec.flow.src_ip = 0x0b000001;
  spec.flow.dst_ip = dst_ip;
  spec.flow.src_port = 100;
  spec.flow.dst_port = 200;
  spec.flow.protocol = proto;
  return AllocFrame(spec, pool);
}

class MatchProgramTest : public ::testing::Test {
 protected:
  PacketPool pool_{64};
};

TEST(MatchProgramEncodingTest, TerminalRoundTrips) {
  for (int out = 0; out < 40; ++out) {
    int16_t t = MatchProgram::Terminal(out);
    EXPECT_LT(t, 0);
    EXPECT_EQ(MatchProgram::TerminalOutput(t), out);
  }
  // Click's encoding: output 0 <-> -1.
  EXPECT_EQ(MatchProgram::Terminal(0), -1);
  EXPECT_EQ(MatchProgram::TerminalOutput(-1), 0);
}

TEST(MatchProgramEncodingTest, EmptyProgramRoutesEverythingToConfiguredLane) {
  MatchProgram prog;
  prog.set_n_outputs(3);
  prog.set_output_everything(2);
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  uint8_t data[64] = {};
  EXPECT_EQ(prog.Execute(data, 64), 2);
  EXPECT_EQ(prog.Execute(data, 0), 2);
}

TEST(MatchProgramEncodingTest, SafeLengthTracksEveryOp) {
  MatchProgram prog;
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, 1, MatchProgram::Terminal(1)});
  EXPECT_EQ(prog.safe_length(), 14u);
  prog.AddInsn({MatchInsn::kMatch, 20, 24, 0xffu, 6, 2, MatchProgram::Terminal(1)});
  EXPECT_EQ(prog.safe_length(), 24u);
  prog.AddInsn({MatchInsn::kIpHeaderOk, 14, 0, 0, 0, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  EXPECT_EQ(prog.safe_length(), 14u + Ipv4View::kMinSize);
}

TEST(MatchProgramValidateTest, RejectsBackwardAndOutOfRangeJumps) {
  std::string err;
  {
    MatchProgram prog;  // self-loop
    prog.set_n_outputs(1);
    prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, 0, MatchProgram::Terminal(0)});
    EXPECT_FALSE(prog.Validate(&err));
    EXPECT_NE(err.find("forward"), std::string::npos) << err;
  }
  {
    MatchProgram prog;  // jump past the end
    prog.set_n_outputs(1);
    prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, 5, MatchProgram::Terminal(0)});
    EXPECT_FALSE(prog.Validate(&err));
  }
  {
    MatchProgram prog;  // backward jump in a 2-insn program
    prog.set_n_outputs(1);
    prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, 1, MatchProgram::Terminal(0)});
    prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 20, 0, MatchProgram::Terminal(0)});
    EXPECT_FALSE(prog.Validate(&err));
  }
}

TEST(MatchProgramValidateTest, RejectsTerminalBeyondOutputs) {
  MatchProgram prog;
  prog.set_n_outputs(2);
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, MatchProgram::Terminal(2),
                MatchProgram::Terminal(1)});
  std::string err;
  EXPECT_FALSE(prog.Validate(&err));
  EXPECT_NE(err.find("lane"), std::string::npos) << err;
  // And no outputs at all is itself invalid.
  MatchProgram none;
  EXPECT_FALSE(none.Validate(&err));
}

TEST(MatchProgramValidateTest, AcceptsForwardOnlyProgram) {
  MatchProgram prog;
  prog.set_n_outputs(2);
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 14, 1, MatchProgram::Terminal(1)});
  prog.AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u, 0x08000000u, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  std::string err;
  EXPECT_TRUE(prog.Validate(&err)) << err;
}

TEST(MatchProgramExecuteTest, CheckedPathFailsShortWindows) {
  // A match at offset 20 on a frame shorter than its extent must fail (the
  // Click short-packet rule), not read stale bytes.
  MatchProgram prog;
  prog.set_n_outputs(2);
  prog.AddInsn({MatchInsn::kMatch, 20, 24, 0x000000ffu, 17, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  uint8_t data[64] = {};
  data[23] = 17;
  EXPECT_EQ(prog.Execute(data, 64), 0);  // fast path
  EXPECT_EQ(prog.Execute(data, 24), 0);  // exactly at the extent
  EXPECT_EQ(prog.Execute(data, 23), 1);  // one byte short: checked path fails
  EXPECT_EQ(prog.Execute(data, 0), 1);
}

TEST(MatchProgramExecuteTest, TrailingMaskedBytesDoNotExtendTheWindow) {
  // An EtherType match reads a 4-byte window at offset 12 but only the
  // first two bytes are significant: a 14-byte frame must still match.
  MatchProgram prog;
  prog.set_n_outputs(2);
  prog.AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u, 0x08000000u, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  EXPECT_EQ(prog.safe_length(), 14u);
  uint8_t data[64] = {};
  data[12] = 0x08;
  data[13] = 0x00;
  EXPECT_EQ(prog.Execute(data, 14), 0);
  EXPECT_EQ(prog.Execute(data, 13), 1);
}

TEST_F(MatchProgramTest, EtherClassifierProgramMatchesInterpretedSemantics) {
  EtherClassifier ether;
  MatchProgram prog;
  ASSERT_TRUE(ether.CompileMatch(&prog));
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  EXPECT_EQ(prog.n_outputs(), 2);

  Packet* ipv4 = Frame(&pool_);
  EXPECT_EQ(prog.Execute(ipv4->data(), ipv4->length()), 0);
  EthernetView{ipv4->data()}.set_ether_type(0x0806);  // ARP
  EXPECT_EQ(prog.Execute(ipv4->data(), ipv4->length()), 1);
  // Runt frame: shorter than an Ethernet header.
  EthernetView{ipv4->data()}.set_ether_type(EthernetView::kTypeIpv4);
  EXPECT_EQ(prog.Execute(ipv4->data(), 10), 1);
  pool_.Free(ipv4);
}

TEST_F(MatchProgramTest, IpProtoClassifierProgramMatchesInterpretedSemantics) {
  IpProtoClassifier proto({6, 17, 50});
  MatchProgram prog;
  ASSERT_TRUE(proto.CompileMatch(&prog));
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  EXPECT_EQ(prog.n_outputs(), 4);  // three protocols + no-match

  struct Case {
    uint8_t proto;
    int lane;
  };
  for (const Case& c : {Case{6, 0}, Case{17, 1}, Case{50, 2}, Case{1, 3}}) {
    Packet* p = Frame(&pool_, 0x0a000001, c.proto);
    EXPECT_EQ(prog.Execute(p->data(), p->length()), c.lane) << "proto " << int(c.proto);
    pool_.Free(p);
  }
  // Truncated below the IPv4 header: no-match lane.
  Packet* runt = Frame(&pool_);
  EXPECT_EQ(prog.Execute(runt->data(), 20), 3);
  pool_.Free(runt);
}

TEST_F(MatchProgramTest, CheckIpHeaderProgramMatchesInterpretedSemantics) {
  CheckIpHeader check;
  MatchProgram prog;
  ASSERT_TRUE(check.CompileMatch(&prog));
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  EXPECT_EQ(prog.n_outputs(), 2);

  Packet* good = Frame(&pool_);
  EXPECT_EQ(prog.Execute(good->data(), good->length()), 0);

  // Each corruption must land on the bad lane, exactly as the interpreted
  // element classifies it.
  Packet* p = Frame(&pool_);
  p->data()[EthernetView::kSize + 10] ^= 0xff;  // checksum
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 1);
  pool_.Free(p);

  p = Frame(&pool_);
  EthernetView{p->data()}.set_ether_type(0x86dd);  // IPv6 EtherType
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 1);
  pool_.Free(p);

  p = Frame(&pool_);
  p->data()[EthernetView::kSize] = 0x65;  // version 6
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 1);
  pool_.Free(p);

  p = Frame(&pool_);
  p->data()[EthernetView::kSize] = 0x44;  // IHL 4 < 5
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 1);
  pool_.Free(p);

  // Truncated below the minimum Ethernet + IPv4 size.
  EXPECT_EQ(prog.Execute(good->data(), 30), 1);
  pool_.Free(good);
}

TEST_F(MatchProgramTest, FuseCollapsesCheckIpHeaderTripleBehaviorPreserving) {
  CheckIpHeader check;
  MatchProgram unfused;
  ASSERT_TRUE(check.CompileMatch(&unfused));
  MatchProgram fused = unfused;
  EXPECT_EQ(fused.Fuse(), 1);
  EXPECT_EQ(fused.size(), 1u);
  EXPECT_NE(fused.Listing().find("ether_ipv4_ok"), std::string::npos);
  std::string err;
  ASSERT_TRUE(fused.Validate(&err)) << err;
  // Already fused: a second pass finds nothing.
  EXPECT_EQ(fused.Fuse(), 0);

  // Same lane as the three-insn form for every frame shape, including
  // every truncation point around the header boundaries.
  auto same = [&](Packet* p) {
    for (uint32_t len : {0u, 10u, 13u, 14u, 23u, 33u, 34u, p->length()}) {
      EXPECT_EQ(fused.Execute(p->data(), len), unfused.Execute(p->data(), len))
          << "length " << len;
    }
  };
  Packet* good = Frame(&pool_);
  same(good);
  pool_.Free(good);
  Packet* p = Frame(&pool_);
  p->data()[EthernetView::kSize + 10] ^= 0xff;  // checksum
  same(p);
  pool_.Free(p);
  p = Frame(&pool_);
  EthernetView{p->data()}.set_ether_type(0x0806);  // ARP
  same(p);
  pool_.Free(p);
  p = Frame(&pool_);
  p->data()[EthernetView::kSize] = 0x44;  // IHL 4 < 5
  same(p);
  pool_.Free(p);
}

TEST(MatchProgramFuseTest, DivergentFailureEdgesAreNotFused) {
  // Same triple shape, but the length gate fails to a different lane than
  // the EtherType/header tests: no single superinstruction can encode two
  // failure targets.
  MatchProgram prog;
  prog.set_n_outputs(3);
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 34, 1, MatchProgram::Terminal(2)});
  prog.AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u, 0x08000000u, 2,
                MatchProgram::Terminal(1)});
  prog.AddInsn(
      {MatchInsn::kIpHeaderOk, 14, 0, 0, 0, MatchProgram::Terminal(0), MatchProgram::Terminal(1)});
  EXPECT_EQ(prog.Fuse(), 0);
  EXPECT_EQ(prog.size(), 3u);
}

TEST(MatchProgramFuseTest, JumpIntoTripleInteriorBlocksFusion) {
  // An external edge lands on the triple's kMatch: rewriting the triple
  // away would strand that path, so the peephole must skip it.
  MatchProgram prog;
  prog.set_n_outputs(2);
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 100, 1, 2});
  prog.AddInsn({MatchInsn::kLenGe, 0, 0, 0, 34, 2, MatchProgram::Terminal(1)});
  prog.AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u, 0x08000000u, 3,
                MatchProgram::Terminal(1)});
  prog.AddInsn(
      {MatchInsn::kIpHeaderOk, 14, 0, 0, 0, MatchProgram::Terminal(0), MatchProgram::Terminal(1)});
  std::string err;
  ASSERT_TRUE(prog.Validate(&err)) << err;
  EXPECT_EQ(prog.Fuse(), 0);
  EXPECT_EQ(prog.size(), 4u);
}

TEST_F(MatchProgramTest, FusePreservesSurroundingInsnsAndRemapsJumps) {
  // EtherClassifier's program ahead of CheckIpHeader's triple (the merged
  // ether -> check chain): the prefix survives, its jump into the triple's
  // head is remapped, and routing is unchanged.
  EtherClassifier ether;
  CheckIpHeader check;
  MatchProgram head;
  MatchProgram tail;
  ASSERT_TRUE(ether.CompileMatch(&head));
  ASSERT_TRUE(check.CompileMatch(&tail));
  MatchProgram merged;
  merged.set_n_outputs(3);  // 0 = ok, 1 = bad header, 2 = non-IP
  const auto tail_base = static_cast<int16_t>(head.size());
  merged.AppendRebased(head, {tail_base, MatchProgram::Terminal(2)});
  merged.AppendRebased(tail, {MatchProgram::Terminal(0), MatchProgram::Terminal(1)});
  MatchProgram fused = merged;
  EXPECT_EQ(fused.Fuse(), 1);
  EXPECT_EQ(fused.size(), merged.size() - 2);
  std::string err;
  ASSERT_TRUE(fused.Validate(&err)) << err;

  Packet* good = Frame(&pool_);
  EXPECT_EQ(fused.Execute(good->data(), good->length()), 0);
  Packet* bad = Frame(&pool_);
  bad->data()[EthernetView::kSize + 10] ^= 0xff;
  EXPECT_EQ(fused.Execute(bad->data(), bad->length()), 1);
  Packet* arp = Frame(&pool_);
  EthernetView{arp->data()}.set_ether_type(0x0806);
  EXPECT_EQ(fused.Execute(arp->data(), arp->length()), 2);
  for (Packet* p : {good, bad, arp}) {
    EXPECT_EQ(fused.Execute(p->data(), p->length()), merged.Execute(p->data(), p->length()));
    pool_.Free(p);
  }
}

TEST_F(MatchProgramTest, PatternCompilerBasicEtherType) {
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"12/0800"}, &prog, &err)) << err;
  EXPECT_EQ(prog.n_outputs(), 2);
  Packet* p = Frame(&pool_);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 0);
  EthernetView{p->data()}.set_ether_type(0x0806);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 1);  // no-match lane
  pool_.Free(p);
}

TEST_F(MatchProgramTest, PatternCompilerMultiClauseFirstMatchWins) {
  // The classic Click demux: IPv4+TCP, IPv4+UDP, anything else.
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"12/0800 23/06", "12/0800 23/11", "-"}, &prog, &err))
      << err;
  EXPECT_EQ(prog.n_outputs(), 4);
  Packet* tcp = Frame(&pool_, 0x0a000001, 6);
  Packet* udp = Frame(&pool_, 0x0a000001, 17);
  Packet* icmp = Frame(&pool_, 0x0a000001, 1);
  EXPECT_EQ(prog.Execute(tcp->data(), tcp->length()), 0);
  EXPECT_EQ(prog.Execute(udp->data(), udp->length()), 1);
  EXPECT_EQ(prog.Execute(icmp->data(), icmp->length()), 2);  // the "-" lane
  pool_.Free(tcp);
  pool_.Free(udp);
  pool_.Free(icmp);
}

TEST_F(MatchProgramTest, PatternCompilerWildcardNibblesAndMasks) {
  MatchProgram prog;
  std::string err;
  // "08??" wildcards the low byte; "%" supplies an explicit mask.
  ASSERT_TRUE(CompileClassifierPatterns({"12/08??", "12/0800%ff00"}, &prog, &err)) << err;
  Packet* p = Frame(&pool_);
  EthernetView eth{p->data()};
  eth.set_ether_type(0x08ab);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 0);
  eth.set_ether_type(0x0800);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 0);  // first match wins
  eth.set_ether_type(0x0900);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 2);
  pool_.Free(p);
}

TEST_F(MatchProgramTest, PatternCompilerDashFirstIsMatchEverything) {
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"-", "12/0800"}, &prog, &err)) << err;
  EXPECT_TRUE(prog.empty());
  Packet* p = Frame(&pool_);
  EXPECT_EQ(prog.Execute(p->data(), p->length()), 0);
  pool_.Free(p);
}

TEST(MatchProgramPatternErrorTest, MalformedPatternsReportErrors) {
  MatchProgram prog;
  std::string err;
  EXPECT_FALSE(CompileClassifierPatterns({"zz/10"}, &prog, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(CompileClassifierPatterns({"12/8"}, &prog, &err)) << "odd digit count";
  EXPECT_FALSE(CompileClassifierPatterns({"12/08zz"}, &prog, &err));
  EXPECT_FALSE(CompileClassifierPatterns({"12/0800%ff"}, &prog, &err)) << "mask width mismatch";
  EXPECT_FALSE(CompileClassifierPatterns({"999/08"}, &prog, &err)) << "offset beyond slack";
  EXPECT_FALSE(CompileClassifierPatterns({}, &prog, &err));
}

TEST(MatchProgramListingTest, ListingShowsEveryInsnAndTerminal) {
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"12/0800 23/06"}, &prog, &err)) << err;
  std::string listing = prog.Listing();
  EXPECT_NE(listing.find("safe_length"), std::string::npos);
  EXPECT_NE(listing.find("12/08000000"), std::string::npos);
  EXPECT_NE(listing.find("[1]"), std::string::npos) << "no-match terminal:\n" << listing;
}

TEST(MatchProgramAppendTest, AppendRebasedShiftsJumpsAndRemapsTerminals) {
  // head: EtherClassifier program (lanes: 0 = IPv4, 1 = other).
  EtherClassifier ether;
  MatchProgram head;
  ASSERT_TRUE(ether.CompileMatch(&head));
  // tail: IpProtoClassifier program (lanes: 0 = UDP, 1 = no match).
  IpProtoClassifier proto({17});
  MatchProgram tail;
  ASSERT_TRUE(proto.CompileMatch(&tail));

  // Merge: ether lane 0 falls through into the proto program; final lanes
  // are [0]=UDP, [1]=non-UDP-IP, [2]=non-IP.
  MatchProgram merged;
  const int tail_base = static_cast<int>(head.size());
  merged.AppendRebased(head, {static_cast<int16_t>(tail_base), MatchProgram::Terminal(2)});
  int landed = merged.AppendRebased(
      tail, {MatchProgram::Terminal(0), MatchProgram::Terminal(1)});
  EXPECT_EQ(landed, tail_base);
  merged.set_n_outputs(3);
  std::string err;
  ASSERT_TRUE(merged.Validate(&err)) << err;

  PacketPool pool{16};
  Packet* udp = Frame(&pool, 0x0a000001, 17);
  Packet* tcp = Frame(&pool, 0x0a000001, 6);
  EXPECT_EQ(merged.Execute(udp->data(), udp->length()), 0);
  EXPECT_EQ(merged.Execute(tcp->data(), tcp->length()), 1);
  EthernetView{tcp->data()}.set_ether_type(0x0806);
  EXPECT_EQ(merged.Execute(tcp->data(), tcp->length()), 2);
  pool.Free(udp);
  pool.Free(tcp);
}

}  // namespace
}  // namespace rb
