// Graph-level tests for the compiled-packet-program layer (DESIGN.md §16):
// CompiledClassifier batch behavior, Router::CompilePrograms chain
// collapse and rewiring, and the compiled-vs-interpreted differential fuzz
// that pins the two execution modes to identical observable behavior.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/classifier.hpp"
#include "click/elements/misc.hpp"
#include "click/router.hpp"
#include "common/rng.hpp"
#include "packet/headers.hpp"
#include "packet/pool.hpp"
#include "program/compiled_classifier.hpp"
#include "program/match_program.hpp"
#include "telemetry/handler.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

using program::CompileClassifierPatterns;
using program::MatchProgram;

class CollectSink : public Element {
 public:
  CollectSink() : Element(1, 0) {}
  const char* class_name() const override { return "CollectSink"; }
  void Push(int /*port*/, Packet* p) override { got.push_back(p); }
  std::vector<Packet*> got;
};

Packet* Frame(PacketPool* pool, uint32_t dst_ip = 0x0a000001, uint8_t proto = 17,
              uint32_t size = 64) {
  FrameSpec spec;
  spec.size = size;
  spec.flow.src_ip = 0x0b000001;
  spec.flow.dst_ip = dst_ip;
  spec.flow.src_port = 100;
  spec.flow.dst_port = 200;
  spec.flow.protocol = proto;
  return AllocFrame(spec, pool);
}

CompiledClassifier* FindCompiled(const Router& r) {
  for (const auto& e : r.elements()) {
    if (std::string(e->class_name()) == "CompiledClassifier") {
      return static_cast<CompiledClassifier*>(e.get());
    }
  }
  return nullptr;
}

TEST(CompiledClassifierTest, PartitionsBatchAndCountsMatches) {
  Router r;
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"12/0800 23/06", "12/0800 23/11"}, &prog, &err)) << err;
  // Two element outputs; the program's third (no-match) lane is a drop.
  auto* cc = r.Add<CompiledClassifier>(std::move(prog), 2);
  auto* tcp = r.Add<CollectSink>();
  auto* udp = r.Add<CollectSink>();
  r.Connect(cc, 0, tcp, 0);
  r.Connect(cc, 1, udp, 0);
  r.Initialize();

  PacketPool pool{32};
  PacketBatch batch;
  batch.PushBack(Frame(&pool, 0x0a000001, 6));
  batch.PushBack(Frame(&pool, 0x0a000001, 17));
  batch.PushBack(Frame(&pool, 0x0a000001, 6));
  batch.PushBack(Frame(&pool, 0x0a000001, 1));  // ICMP: no pattern matches
  cc->PushBatch(0, batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(tcp->got.size(), 2u);
  EXPECT_EQ(udp->got.size(), 1u);
  EXPECT_EQ(cc->drops(), 1u) << "no-match lane beyond the element's ports drops";
  EXPECT_EQ(cc->matches(0), 2u);
  EXPECT_EQ(cc->matches(1), 1u);
  EXPECT_EQ(cc->matches(2), 1u);
  for (Packet* p : tcp->got) {
    pool.Free(p);
  }
  for (Packet* p : udp->got) {
    pool.Free(p);
  }
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(CompiledClassifierTest, ProgramHandlerListsInsnsAndMatches) {
  Router r;
  MatchProgram prog;
  std::string err;
  ASSERT_TRUE(CompileClassifierPatterns({"12/0800"}, &prog, &err)) << err;
  auto* cc = r.Add<CompiledClassifier>(std::move(prog), 1, "ether@1+check@2");
  auto* sink = r.Add<CollectSink>();
  r.Connect(cc, 0, sink, 0);
  r.Initialize();
  PacketPool pool{8};
  PacketBatch batch;
  batch.PushBack(Frame(&pool));
  cc->PushBatch(0, batch);

  telemetry::HandlerRegistry handlers;
  r.AddHandlers(&handlers);
  std::string text = handlers.Read(cc->name() + ".program").text;
  EXPECT_NE(text.find("collapsed ether@1+check@2"), std::string::npos) << text;
  EXPECT_NE(text.find("insns"), std::string::npos) << text;
  EXPECT_NE(text.find("matched 1"), std::string::npos) << text;
  pool.Free(sink->got[0]);
}

// The five-sink classification graph used by the collapse and differential
// tests: entry -> EtherClassifier -> IpProtoClassifier{TCP,UDP} with
// CheckIPHeader on the TCP leg.
struct ClassifierGraph {
  Router r;
  CounterElement* entry = nullptr;
  CollectSink* tcp_ok = nullptr;
  CollectSink* tcp_bad = nullptr;
  CollectSink* udp = nullptr;
  CollectSink* other_proto = nullptr;
  CollectSink* non_ip = nullptr;
  int collapsed = 0;

  void Build(bool compile) {
    entry = r.Add<CounterElement>();
    auto* ether = r.Add<EtherClassifier>();
    auto* proto = r.Add<IpProtoClassifier>(std::vector<uint8_t>{6, 17});
    auto* check = r.Add<CheckIpHeader>();
    tcp_ok = r.Add<CollectSink>();
    tcp_bad = r.Add<CollectSink>();
    udp = r.Add<CollectSink>();
    other_proto = r.Add<CollectSink>();
    non_ip = r.Add<CollectSink>();
    r.Connect(entry, 0, ether, 0);
    r.Connect(ether, 0, proto, 0);
    r.Connect(ether, 1, non_ip, 0);
    r.Connect(proto, 0, check, 0);
    r.Connect(proto, 1, udp, 0);
    r.Connect(proto, 2, other_proto, 0);
    r.Connect(check, 0, tcp_ok, 0);
    r.Connect(check, 1, tcp_bad, 0);
    if (compile) {
      collapsed = r.CompilePrograms();
    }
    r.Initialize();
  }

  std::vector<CollectSink*> sinks() { return {tcp_ok, tcp_bad, udp, other_proto, non_ip}; }
};

TEST(CompileProgramsTest, CollapsesWholeChainIntoOneElement) {
  ClassifierGraph g;
  g.Build(/*compile=*/true);
  EXPECT_EQ(g.collapsed, 1);
  CompiledClassifier* cc = FindCompiled(g.r);
  ASSERT_NE(cc, nullptr);
  // All three interpreted stages merged, in chain order.
  EXPECT_NE(cc->collapsed().find("EtherClassifier"), std::string::npos);
  EXPECT_NE(cc->collapsed().find("IpProtoClassifier"), std::string::npos);
  EXPECT_NE(cc->collapsed().find("CheckIPHeader"), std::string::npos);
  // Five exit lanes: chk{ok,bad}, proto{udp,no-match}, ether{non-IP}.
  EXPECT_EQ(cc->n_outputs(), 5);

  // The rewired path works end to end: entry -> compiled -> sinks.
  PacketPool pool{32};
  PacketBatch batch;
  batch.PushBack(Frame(&pool, 0x0a000001, 6));   // TCP, valid header
  batch.PushBack(Frame(&pool, 0x0a000001, 17));  // UDP
  Packet* arp = Frame(&pool);
  EthernetView{arp->data()}.set_ether_type(0x0806);
  batch.PushBack(arp);
  g.entry->PushBatch(0, batch);
  EXPECT_EQ(g.tcp_ok->got.size(), 1u);
  EXPECT_EQ(g.udp->got.size(), 1u);
  EXPECT_EQ(g.non_ip->got.size(), 1u);
  EXPECT_EQ(g.entry->counters().packets, 3u);
  for (CollectSink* s : g.sinks()) {
    for (Packet* p : s->got) {
      pool.Free(p);
    }
  }
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(CompileProgramsTest, NonAdjacentClassifiersCompileSeparately) {
  // A non-compilable element between two classifiers splits the chain:
  // each side becomes its own compiled element.
  Router r;
  auto* ether = r.Add<EtherClassifier>();
  auto* counter = r.Add<CounterElement>();
  auto* check = r.Add<CheckIpHeader>();
  auto* ok = r.Add<CollectSink>();
  auto* bad = r.Add<CollectSink>();
  auto* non_ip = r.Add<CollectSink>();
  r.Connect(ether, 0, counter, 0);
  r.Connect(ether, 1, non_ip, 0);
  r.Connect(counter, 0, check, 0);
  r.Connect(check, 0, ok, 0);
  r.Connect(check, 1, bad, 0);
  EXPECT_EQ(r.CompilePrograms(), 2);
  r.Initialize();

  PacketPool pool{8};
  PacketBatch batch;
  batch.PushBack(Frame(&pool));
  // The ether head was collapsed, so push through its replacement.
  CompiledClassifier* cc = FindCompiled(r);
  ASSERT_NE(cc, nullptr);
  cc->PushBatch(0, batch);
  ASSERT_EQ(ok->got.size(), 1u);
  EXPECT_EQ(counter->counters().packets, 1u) << "interpreted middle element still sees traffic";
  pool.Free(ok->got[0]);
}

TEST(CompileProgramsTest, BranchToSecondCompiledHeadStaysWired) {
  // ether feeds two compilable classifiers; only one can be the
  // continuation, so the other becomes its own compiled head — and the
  // first compiled element's exit lane must be rewired onto it (a plain
  // originals-only rewire would leave the lane pointing at the detached
  // interpreted element, silently dropping that leg's traffic).
  Router r;
  auto* ether = r.Add<EtherClassifier>();
  auto* proto1 = r.Add<IpProtoClassifier>(std::vector<uint8_t>{6});
  auto* proto2 = r.Add<IpProtoClassifier>(std::vector<uint8_t>{17});
  auto* tcp = r.Add<CollectSink>();
  auto* tcp_rest = r.Add<CollectSink>();
  auto* udp = r.Add<CollectSink>();
  auto* udp_rest = r.Add<CollectSink>();
  r.Connect(ether, 0, proto1, 0);
  r.Connect(ether, 1, proto2, 0);  // odd but legal: classify non-IP frames
  r.Connect(proto1, 0, tcp, 0);
  r.Connect(proto1, 1, tcp_rest, 0);
  r.Connect(proto2, 0, udp, 0);
  r.Connect(proto2, 1, udp_rest, 0);
  EXPECT_EQ(r.CompilePrograms(), 2);
  r.Initialize();

  PacketPool pool{16};
  CompiledClassifier* cc = FindCompiled(r);
  ASSERT_NE(cc, nullptr);
  PacketBatch batch;
  batch.PushBack(Frame(&pool, 0x0a000001, 6));  // TCP -> proto1 leg
  Packet* arp = Frame(&pool, 0x0a000001, 17);
  EthernetView{arp->data()}.set_ether_type(0x0806);  // non-IP -> proto2 leg
  batch.PushBack(arp);
  cc->PushBatch(0, batch);
  EXPECT_EQ(tcp->got.size(), 1u);
  ASSERT_EQ(udp->got.size(), 1u) << "second compiled head must stay reachable";
  EXPECT_EQ(udp_rest->got.size(), 0u);
  uint64_t drops = 0;
  for (const auto& e : r.elements()) {
    drops += e->drops();
  }
  EXPECT_EQ(drops, 0u);
  pool.Free(tcp->got[0]);
  pool.Free(udp->got[0]);
}

TEST(CompileProgramsTest, SelfLoopDoesNotExtendChain) {
  // An element feeding itself must not be absorbed as its own
  // continuation (the ref.element != e guard).
  Router r;
  auto* proto = r.Add<IpProtoClassifier>(std::vector<uint8_t>{17});
  auto* sink = r.Add<CollectSink>();
  r.Connect(proto, 0, proto, 0);  // legal in Click, if odd
  r.Connect(proto, 1, sink, 0);
  EXPECT_EQ(r.CompilePrograms(), 1);
}

// The S3 differential fuzz: the same graph, interpreted and compiled, fed
// byte-identical randomized traffic — every sink must receive the same
// packets in the same order, and drop/counter totals must agree. Frame
// shapes cover the Fig. 8 workload sizes (64 B min, mid, 1024 B, 1500 B
// max) plus truncations and header corruptions.
class CompiledDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledDifferentialFuzz, CompiledMatchesInterpreted) {
  ClassifierGraph interp;
  ClassifierGraph comp;
  interp.Build(/*compile=*/false);
  comp.Build(/*compile=*/true);
  ASSERT_EQ(comp.collapsed, 1);

  PacketPool pool_a{4096};
  PacketPool pool_b{4096};
  std::unordered_map<Packet*, int> id_a;
  std::unordered_map<Packet*, int> id_b;

  Rng rng(GetParam());
  const int kFrames = 1500;
  const uint32_t kSizes[] = {64, 128, 1024, 1500};
  const uint8_t kProtos[] = {6, 17, 50, 1};
  PacketBatch batch_a;
  PacketBatch batch_b;
  auto flush = [&] {
    interp.entry->PushBatch(0, batch_a);
    comp.entry->PushBatch(0, batch_b);
  };
  for (int i = 0; i < kFrames; ++i) {
    FrameSpec spec;
    spec.size = kSizes[rng.NextBounded(4)];
    spec.flow.src_ip = static_cast<uint32_t>(rng.Next());
    spec.flow.dst_ip = static_cast<uint32_t>(rng.Next());
    spec.flow.src_port = static_cast<uint16_t>(rng.NextBounded(65536));
    spec.flow.dst_port = static_cast<uint16_t>(rng.NextBounded(65536));
    spec.flow.protocol = kProtos[rng.NextBounded(4)];
    Packet* a = AllocFrame(spec, &pool_a);
    Packet* b = AllocFrame(spec, &pool_b);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Identical corruption on both copies.
    switch (rng.NextBounded(8)) {
      case 0: {  // truncate to a random length, down to a runt
        uint32_t keep = 8 + static_cast<uint32_t>(rng.NextBounded(a->length() - 8));
        a->Trim(a->length() - keep);
        b->Trim(b->length() - keep);
        break;
      }
      case 1:  // corrupt the IPv4 checksum
        a->data()[EthernetView::kSize + 10] ^= 0xff;
        b->data()[EthernetView::kSize + 10] ^= 0xff;
        break;
      case 2: {  // non-IP EtherType
        uint16_t t = static_cast<uint16_t>(rng.NextBounded(0x10000));
        EthernetView{a->data()}.set_ether_type(t);
        EthernetView{b->data()}.set_ether_type(t);
        break;
      }
      case 3: {  // mangle the version/IHL byte
        uint8_t v = static_cast<uint8_t>(rng.NextBounded(256));
        a->data()[EthernetView::kSize] = v;
        b->data()[EthernetView::kSize] = v;
        break;
      }
      case 4: {  // mangle total_length
        uint8_t v = static_cast<uint8_t>(rng.NextBounded(256));
        a->data()[EthernetView::kSize + 3] = v;
        b->data()[EthernetView::kSize + 3] = v;
        break;
      }
      default:
        break;  // well-formed
    }
    id_a[a] = i;
    id_b[b] = i;
    batch_a.PushBack(a);
    batch_b.PushBack(b);
    if (batch_a.full() || rng.NextBounded(64) == 0) {
      flush();  // randomized burst boundaries
    }
  }
  flush();

  auto sinks_a = interp.sinks();
  auto sinks_b = comp.sinks();
  size_t delivered = 0;
  for (size_t s = 0; s < sinks_a.size(); ++s) {
    ASSERT_EQ(sinks_a[s]->got.size(), sinks_b[s]->got.size()) << "sink " << s;
    for (size_t k = 0; k < sinks_a[s]->got.size(); ++k) {
      ASSERT_EQ(id_a.at(sinks_a[s]->got[k]), id_b.at(sinks_b[s]->got[k]))
          << "sink " << s << " position " << k;
    }
    delivered += sinks_a[s]->got.size();
    for (Packet* p : sinks_a[s]->got) {
      pool_a.Free(p);
    }
    for (Packet* p : sinks_b[s]->got) {
      pool_b.Free(p);
    }
  }
  EXPECT_EQ(delivered, static_cast<size_t>(kFrames)) << "fully-wired graph drops nothing";
  EXPECT_EQ(interp.entry->counters().packets, comp.entry->counters().packets);
  EXPECT_EQ(pool_a.available(), pool_a.capacity());
  EXPECT_EQ(pool_b.available(), pool_b.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferentialFuzz, ::testing::Range<uint64_t>(1, 7));

TEST(CompiledDifferentialTest, UnwiredExitLanesDropIdentically) {
  // Leave the bad-header and no-match outputs unwired: the interpreted
  // graph drops at each element, the compiled graph at the merged element;
  // the totals must match.
  auto build = [](Router* r, CounterElement** entry, CollectSink** ok, bool compile) {
    *entry = r->Add<CounterElement>();
    auto* ether = r->Add<EtherClassifier>();
    auto* check = r->Add<CheckIpHeader>();
    *ok = r->Add<CollectSink>();
    r->Connect(*entry, 0, ether, 0);
    r->Connect(ether, 0, check, 0);
    // ether[1] and check[1] unwired.
    r->Connect(check, 0, *ok, 0);
    int n = compile ? r->CompilePrograms() : 0;
    r->Initialize();
    return n;
  };
  Router ra;
  Router rb_;
  CounterElement* ea = nullptr;
  CounterElement* eb = nullptr;
  CollectSink* oka = nullptr;
  CollectSink* okb = nullptr;
  build(&ra, &ea, &oka, false);
  ASSERT_EQ(build(&rb_, &eb, &okb, true), 1);

  PacketPool pool{64};
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    PacketBatch a;
    PacketBatch b;
    uint8_t proto = static_cast<uint8_t>(rng.NextBounded(256));
    Packet* pa = Frame(&pool, 0x0a000001, proto);
    Packet* pb = Frame(&pool, 0x0a000001, proto);
    if (i % 3 == 1) {
      pa->data()[EthernetView::kSize + 10] ^= 0xff;
      pb->data()[EthernetView::kSize + 10] ^= 0xff;
    } else if (i % 3 == 2) {
      EthernetView{pa->data()}.set_ether_type(0x0806);
      EthernetView{pb->data()}.set_ether_type(0x0806);
    }
    a.PushBack(pa);
    b.PushBack(pb);
    ea->PushBatch(0, a);
    eb->PushBatch(0, b);
  }
  auto total_drops = [](const Router& r) {
    uint64_t total = 0;
    for (const auto& e : r.elements()) {
      total += e->drops();
    }
    return total;
  };
  EXPECT_EQ(oka->got.size(), okb->got.size());
  EXPECT_EQ(total_drops(ra), total_drops(rb_));
  EXPECT_EQ(total_drops(ra), 20u);
  for (Packet* p : oka->got) {
    pool.Free(p);
  }
  for (Packet* p : okb->got) {
    pool.Free(p);
  }
}

}  // namespace
}  // namespace rb
