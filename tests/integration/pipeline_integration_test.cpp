// End-to-end single-server integration: generated routing table, synthetic
// traffic, the full Click graph, and cross-validation of every forwarding
// decision against the reference trie.
#include <gtest/gtest.h>

#include <map>

#include "core/single_server_router.hpp"
#include "lookup/radix_trie.hpp"
#include "packet/headers.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

TEST(PipelineIntegrationTest, RoutingDecisionsMatchReferenceTrie) {
  SingleServerConfig cfg;
  cfg.num_ports = 4;
  cfg.queues_per_port = 2;
  cfg.cores = 2;
  cfg.app = App::kIpRouting;
  cfg.pool_packets = 8192;
  cfg.table.num_routes = 8000;
  SingleServerRouter router(cfg);
  router.Initialize();

  // Rebuild the same table in the reference structure.
  TableGenConfig tg = cfg.table;
  tg.num_next_hops = 4;
  RadixTrie reference;
  reference.InsertAll(GenerateRoutingTable(tg));

  SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  gen_cfg.random_dst = true;
  gen_cfg.seed = 11;
  SyntheticGenerator gen(gen_cfg);

  std::map<uint32_t, int> expected_port_counts;
  int injected = 0;
  for (int i = 0; i < 3000; ++i) {
    FrameSpec spec = gen.Next();
    uint32_t hop = reference.Lookup(spec.flow.dst_ip);
    if (hop == LpmTable::kNoRoute) {
      continue;
    }
    expected_port_counts[(hop - 1) % 4]++;
    Packet* p = AllocFrame(spec, &router.pool());
    ASSERT_NE(p, nullptr);
    router.DeliverFrame(i % 4, p, 0.0);
    injected++;
  }
  ASSERT_GT(injected, 200);
  router.RunUntilIdle();

  Packet* burst[64];
  for (int port = 0; port < 4; ++port) {
    int got = 0;
    size_t n;
    while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        // Verify the per-packet decision too: the output port must match
        // the reference lookup for this packet's destination.
        Ipv4View ip{burst[i]->data() + EthernetView::kSize};
        uint32_t hop = reference.Lookup(ip.dst());
        EXPECT_EQ(static_cast<int>((hop - 1) % 4), port);
        router.pool().Free(burst[i]);
      }
      got += static_cast<int>(n);
    }
    EXPECT_EQ(got, expected_port_counts[static_cast<uint32_t>(port)]) << "port " << port;
  }
}

TEST(PipelineIntegrationTest, IpsecTunnelAcrossTwoRouters) {
  // Encrypt on one server, decrypt on another: the VPN-gateway pair.
  SingleServerConfig enc_cfg;
  enc_cfg.num_ports = 2;
  enc_cfg.queues_per_port = 1;
  enc_cfg.cores = 1;
  enc_cfg.app = App::kIpsec;
  enc_cfg.pool_packets = 4096;
  SingleServerRouter encryptor(enc_cfg);
  encryptor.Initialize();

  EspTunnel decryptor(enc_cfg.esp);

  AbileneGenerator gen(AbileneConfig{64, 21});
  const int kPackets = 300;
  std::map<uint64_t, std::vector<uint8_t>> originals;
  for (int i = 0; i < kPackets; ++i) {
    FrameSpec spec = gen.Next();
    Packet* p = AllocFrame(spec, &encryptor.pool());
    ASSERT_NE(p, nullptr);
    originals[spec.flow_id * 1000000 + spec.flow_seq] =
        std::vector<uint8_t>(p->data(), p->data() + p->length());
    encryptor.DeliverFrame(0, p, 0.0);
  }
  encryptor.RunUntilIdle();

  Packet* burst[64];
  int recovered = 0;
  size_t n;
  while ((n = encryptor.DrainPort(1, burst, std::size(burst))) > 0) {
    for (size_t i = 0; i < n; ++i) {
      Packet* p = burst[i];
      ASSERT_TRUE(decryptor.Decapsulate(p));
      auto it = originals.find(p->flow_id() * 1000000 + p->flow_seq());
      ASSERT_NE(it, originals.end());
      ASSERT_EQ(p->length(), it->second.size());
      EXPECT_EQ(memcmp(p->data(), it->second.data(), p->length()), 0);
      recovered++;
      encryptor.pool().Free(p);
    }
  }
  EXPECT_EQ(recovered, kPackets);
}

TEST(PipelineIntegrationTest, MultiQueueSpreadsFlowsAcrossCores) {
  // With RSS and many flows, every (port, queue) polling task should see
  // work — the load-balancing premise of the multi-queue design.
  SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 4;
  cfg.cores = 4;
  cfg.app = App::kMinimalForwarding;
  cfg.pool_packets = 16384;
  SingleServerRouter router(cfg);
  router.Initialize();

  SyntheticConfig gen_cfg;
  gen_cfg.num_flows = 512;
  gen_cfg.random_dst = false;
  SyntheticGenerator gen(gen_cfg);
  for (int i = 0; i < 4000; ++i) {
    Packet* p = AllocFrame(gen.Next(), &router.pool());
    ASSERT_NE(p, nullptr);
    router.DeliverFrame(i % 2, p, 0.0);
  }
  router.RunUntilIdle();

  size_t busy_tasks = 0;
  size_t poll_tasks = 0;
  for (const auto& task : router.graph().tasks()) {
    if (std::string(task->element()->class_name()) == "FromDevice") {
      poll_tasks++;
      if (task->work() > 0) {
        busy_tasks++;
      }
    }
  }
  EXPECT_EQ(poll_tasks, 8u);
  EXPECT_EQ(busy_tasks, 8u) << "RSS should spread 512 flows over all queues";

  Packet* burst[64];
  for (int port = 0; port < 2; ++port) {
    size_t n;
    while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        router.pool().Free(burst[i]);
      }
    }
  }
  EXPECT_EQ(router.pool().available(), router.pool().capacity());
}

}  // namespace
}  // namespace rb
