// Property sweeps: invariants that must hold across the configuration
// space, driven as parameterized suites.
//
//  * Conservation: every offered packet is either delivered or counted in
//    exactly one drop bucket, for any topology size / packet size / load.
//  * Admissible load is loss-free: any uniform load comfortably inside the
//    per-node 2R envelope is delivered in full (the VLB 100%-throughput
//    guarantee, swept).
//  * Output conservation: per-output delivered rate never exceeds R.
//  * Latency ordering: heavier load never lowers median latency.
//  * Pipeline robustness: arbitrarily corrupted frames never crash the
//    Click graph and never leak pool buffers (failure injection).
#include <gtest/gtest.h>

#include "cluster/des.hpp"
#include "core/single_server_router.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

struct SweepParam {
  uint16_t nodes;
  uint32_t frame_bytes;
  double per_port_gbps;
  bool admissible;  // inside the safe envelope -> must be loss-free
};

class ClusterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusterSweep, ConservationAndThroughput) {
  SweepParam p = GetParam();
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.num_nodes = p.nodes;
  cfg.vlb.num_nodes = p.nodes;
  cfg.seed = 1234 + p.nodes + p.frame_bytes;
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(p.frame_bytes);
  auto tm = TrafficMatrix::Uniform(p.nodes);
  ClusterRunStats stats = sim.RunUniform(tm, p.per_port_gbps * 1e9, &sizes, 0.008);

  // Conservation: offered == delivered + sum(drop buckets).
  ASSERT_EQ(stats.offered_packets, stats.delivered_packets + stats.drops.total());

  // No output port beyond line rate. The rate denominator is the
  // injection horizon while Finish() drains queued packets past it, so
  // allow one output-queue's worth of drain on top of the line rate.
  double drain_slack =
      static_cast<double>(cfg.ext_out_queue_pkts) * p.frame_bytes * 8.0 / 0.008;
  for (double out : stats.per_output_bps) {
    EXPECT_LE(out, cfg.ext_rate_bps * 1.02 + drain_slack);
  }

  if (p.admissible) {
    EXPECT_LT(stats.loss_fraction(), 0.01)
        << p.nodes << " nodes, " << p.frame_bytes << " B at " << p.per_port_gbps << " Gbps/port";
  } else {
    EXPECT_GT(stats.loss_fraction(), 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, ClusterSweep,
    ::testing::Values(
        // Admissible points: well inside the 64 B CPU envelope
        // (~3.2 Gbps/port) and the large-packet NIC envelope.
        SweepParam{2, 64, 2.0, true}, SweepParam{3, 64, 2.5, true},
        SweepParam{4, 64, 2.5, true}, SweepParam{6, 64, 2.5, true},
        SweepParam{8, 64, 2.5, true}, SweepParam{4, 300, 6.0, true},
        SweepParam{4, 1500, 8.0, true}, SweepParam{8, 1500, 8.0, true},
        // Inadmissible points: far beyond capacity.
        SweepParam{4, 64, 6.0, false}, SweepParam{8, 64, 6.0, false},
        SweepParam{4, 1500, 14.0, false}));

class LatencyMonotone : public ::testing::TestWithParam<uint16_t> {};

TEST_P(LatencyMonotone, MedianNeverImprovesWithLoad) {
  uint16_t nodes = GetParam();
  double prev_median = 0;
  for (double gbps : {0.5, 1.5, 2.5}) {
    ClusterConfig cfg = ClusterConfig::Rb4();
    cfg.num_nodes = nodes;
    cfg.vlb.num_nodes = nodes;
    ClusterSim sim(cfg);
    FixedSizeDistribution sizes(64);
    auto tm = TrafficMatrix::Uniform(nodes);
    ClusterRunStats stats = sim.RunUniform(tm, gbps * 1e9, &sizes, 0.005);
    double median = stats.latency.Percentile(50);
    EXPECT_GE(median, prev_median * 0.98) << nodes << " nodes at " << gbps;
    prev_median = median;
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, LatencyMonotone, ::testing::Values(2, 4, 8));

// Failure injection: feed the full routing pipeline frames with random
// corruption — truncated headers, bad versions, broken checksums, random
// bytes — and verify nothing crashes and every buffer returns to the pool.
TEST(PipelineFuzzTest, CorruptedFramesNeverCrashOrLeak) {
  SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 2;
  cfg.cores = 2;
  cfg.app = App::kIpRouting;
  cfg.pool_packets = 4096;
  cfg.table.num_routes = 2000;
  SingleServerRouter router(cfg);
  router.Initialize();

  Rng rng(0xfeed);
  SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  SyntheticGenerator gen(gen_cfg);

  const int kPackets = 3000;
  for (int i = 0; i < kPackets; ++i) {
    FrameSpec spec = gen.Next();
    spec.size = static_cast<uint32_t>(64 + rng.NextBounded(1400));
    Packet* p = AllocFrame(spec, &router.pool());
    ASSERT_NE(p, nullptr);
    // Corrupt: flip up to 8 random bytes anywhere in the frame, possibly
    // truncate, possibly mangle the version/IHL nibble.
    uint64_t flips = rng.NextBounded(8);
    for (uint64_t f = 0; f < flips; ++f) {
      p->data()[rng.NextBounded(p->length())] ^= static_cast<uint8_t>(rng.Next());
    }
    if (rng.NextBool(0.2)) {
      p->Trim(static_cast<uint32_t>(rng.NextBounded(p->length())));
    }
    if (rng.NextBool(0.2) && p->length() > 15) {
      p->data()[14] = static_cast<uint8_t>(rng.Next());  // version/IHL
    }
    router.DeliverFrame(i % 2, p, 0.0);
    if (i % 512 == 0) {
      router.RunUntilIdle();
      Packet* burst[64];
      for (int port = 0; port < 2; ++port) {
        size_t n;
        while ((n = router.DrainPort(port, burst, 64)) > 0) {
          for (size_t k = 0; k < n; ++k) {
            router.pool().Free(burst[k]);
          }
        }
      }
    }
  }
  router.RunUntilIdle();
  Packet* burst[64];
  for (int port = 0; port < 2; ++port) {
    size_t n;
    while ((n = router.DrainPort(port, burst, 64)) > 0) {
      for (size_t k = 0; k < n; ++k) {
        router.pool().Free(burst[k]);
      }
    }
  }
  EXPECT_EQ(router.pool().available(), router.pool().capacity()) << "buffer leak under fuzzing";
}

// ESP robustness: decapsulating corrupted ciphertext must fail cleanly
// (or succeed with different bytes), never crash.
TEST(PipelineFuzzTest, EspDecapsulateSurvivesCorruption) {
  EspConfig esp;
  for (int i = 0; i < 16; ++i) {
    esp.key[i] = static_cast<uint8_t>(i * 3 + 1);
  }
  EspTunnel enc(esp);
  EspTunnel dec(esp);
  PacketPool pool(4);
  Rng rng(0xdead);
  for (int trial = 0; trial < 500; ++trial) {
    FrameSpec spec;
    spec.size = static_cast<uint32_t>(64 + rng.NextBounded(1200));
    spec.flow = {1, 2, 3, 4, 17};
    Packet* p = AllocFrame(spec, &pool);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(enc.Encapsulate(p));
    for (int f = 0; f < 4; ++f) {
      p->data()[rng.NextBounded(p->length())] ^= static_cast<uint8_t>(rng.Next() | 1);
    }
    dec.Decapsulate(p);  // any result is fine; must not crash
    pool.Free(p);
  }
  EXPECT_EQ(pool.available(), pool.capacity());
}

}  // namespace
}  // namespace rb
