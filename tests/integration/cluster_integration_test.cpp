// Cluster-level integration: the VLB guarantees of §3.1 (100% throughput,
// fairness, bounded reordering) exercised on the calibrated simulator, and
// the flowlet scheme's effect measured end to end.
#include <gtest/gtest.h>

#include "cluster/des.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig cfg = ClusterConfig::Rb4();
  cfg.seed = 99;
  return cfg;
}

TEST(ClusterIntegrationTest, HundredPercentThroughputUnderUniformLoad) {
  // §3.1 guarantee (1): with admissible traffic (every input and output
  // under line rate) the cluster delivers everything. Abilene-size mix at
  // 8 Gbps/port is inside RB4's envelope.
  ClusterSim sim(TestConfig());
  AbileneSizeDistribution sizes;
  auto tm = TrafficMatrix::Uniform(4);
  ClusterRunStats stats = sim.RunUniform(tm, 8e9, &sizes, 0.02);
  EXPECT_LT(stats.loss_fraction(), 0.01);
  for (double out_bps : stats.per_output_bps) {
    EXPECT_NEAR(out_bps / 1e9, 8.0, 0.8);
  }
}

TEST(ClusterIntegrationTest, FairnessUnderHotspot) {
  // §3.1 guarantee (2): inputs competing for one output each get a fair
  // share, with no centralized scheduler.
  ClusterSim sim(TestConfig());
  AbileneSizeDistribution sizes;
  // 6 Gbps per input keeps the per-NIC ceilings clear so the contention
  // is purely at the hot output port (4:1 oversubscription of 10 G).
  auto tm = TrafficMatrix::Hotspot(4, 0, 1.0);
  ClusterRunStats stats = sim.RunUniform(tm, 6e9, &sizes, 0.02);
  EXPECT_GT(JainFairnessIndex(stats.per_input_delivered_bps), 0.97);
  // The contested output runs at essentially full line rate.
  EXPECT_GT(stats.per_output_bps[0] / 10e9, 0.9);
}

TEST(ClusterIntegrationTest, FlowletsCutReorderingByAnOrderOfMagnitude) {
  // The §6.2 experiment shape: single overloaded pair; flowlet avoidance
  // vs plain per-packet Direct VLB.
  auto run = [](bool flowlets) {
    ClusterConfig cfg = TestConfig();
    cfg.vlb.flowlets = flowlets;
    ClusterSim sim(cfg);
    auto gen_cfg = FlowTrafficGenerator::ConfigForRate(9e9, 729.6, 40, 20000, 5);
    FlowTrafficGenerator gen(gen_cfg, std::make_unique<AbileneSizeDistribution>());
    return sim.RunSinglePairTrace(&gen, 0, 2, 0.05);
  };
  ClusterRunStats with_flowlets = run(true);
  ClusterRunStats without = run(false);
  EXPECT_GT(without.reorder_sequence_fraction, 0.005)
      << "plain VLB must visibly reorder an overloaded pair";
  EXPECT_LT(with_flowlets.reorder_sequence_fraction,
            without.reorder_sequence_fraction / 5.0)
      << "flowlets must cut reordering by an order of magnitude";
}

TEST(ClusterIntegrationTest, DirectVlbBeats3RClassicVlbOnUniformTraffic) {
  // §3.2: Direct VLB removes the 50% VLB tax when the matrix is uniform.
  // At a load between the 2R and 3R operating points (node capacity is
  // ~3.4 Gbps/port direct vs ~2.7 Gbps/port two-phase at 64 B), classic
  // VLB drops packets that Direct VLB forwards cleanly.
  auto run = [](bool direct) {
    ClusterConfig cfg = TestConfig();
    cfg.vlb.direct_vlb = direct;
    ClusterSim sim(cfg);
    FixedSizeDistribution sizes(64);
    auto tm = TrafficMatrix::Uniform(4);
    return sim.RunUniform(tm, 3.0e9, &sizes, 0.02);
  };
  ClusterRunStats direct = run(true);
  ClusterRunStats classic = run(false);
  EXPECT_LT(direct.loss_fraction(), 0.01);
  EXPECT_GT(classic.loss_fraction(), direct.loss_fraction() + 0.02);
}

TEST(ClusterIntegrationTest, BalancedTrafficSpreadsOverIntermediates) {
  // Phase-1 traffic of an overloaded pair must spread across both
  // candidate intermediates (the randomization that yields VLB's
  // guarantees).
  ClusterConfig cfg = TestConfig();
  cfg.vlb.flowlets = false;
  ClusterSim sim(cfg);
  FixedSizeDistribution sizes(64);
  auto tm = TrafficMatrix::SinglePair(4, 0, 2);
  sim.RunUniform(tm, 8e9, &sizes, 0.01);
  // Intermediates for (0 -> 2) are nodes 1 and 3: both must have done
  // transit work (cpu served more than the endpoints' share).
  uint64_t transit_1 = sim.node_stats(1).cpu_served;
  uint64_t transit_3 = sim.node_stats(3).cpu_served;
  EXPECT_GT(transit_1, 1000u);
  EXPECT_GT(transit_3, 1000u);
  double ratio = static_cast<double>(transit_1) / static_cast<double>(transit_3);
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

TEST(ClusterIntegrationTest, ResequencerTradesLatencyForOrder) {
  auto run = [](bool reseq) {
    ClusterConfig cfg = TestConfig();
    cfg.vlb.flowlets = false;
    cfg.resequence = reseq;
    ClusterSim sim(cfg);
    auto gen_cfg = FlowTrafficGenerator::ConfigForRate(9e9, 729.6, 40, 20000, 5);
    FlowTrafficGenerator gen(gen_cfg, std::make_unique<AbileneSizeDistribution>());
    return sim.RunSinglePairTrace(&gen, 0, 2, 0.03);
  };
  ClusterRunStats with_reseq = run(true);
  ClusterRunStats without = run(false);
  EXPECT_EQ(with_reseq.reorder_packet_fraction, 0.0);
  EXPECT_GT(without.reorder_packet_fraction, 0.0);
  EXPECT_GT(with_reseq.resequencer_added_delay_mean, 0.0);
}

TEST(ClusterIntegrationTest, EightNodeClusterScalesLinearly) {
  // §2: capacity scales with the node count — an 8-node mesh moves twice
  // the aggregate of a 4-node mesh at the same per-port load.
  auto run = [](uint16_t nodes) {
    ClusterConfig cfg = TestConfig();
    cfg.num_nodes = nodes;
    cfg.vlb.num_nodes = nodes;
    ClusterSim sim(cfg);
    FixedSizeDistribution sizes(300);
    auto tm = TrafficMatrix::Uniform(nodes);
    return sim.RunUniform(tm, 5e9, &sizes, 0.01);
  };
  ClusterRunStats four = run(4);
  ClusterRunStats eight = run(8);
  EXPECT_LT(four.loss_fraction(), 0.01);
  EXPECT_LT(eight.loss_fraction(), 0.01);
  EXPECT_NEAR(eight.delivered_bps() / four.delivered_bps(), 2.0, 0.1);
}

}  // namespace
}  // namespace rb
