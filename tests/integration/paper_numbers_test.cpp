// The headline-number regression suite: every quantitative claim we
// reproduce from the paper, asserted in one place. If calibration drifts,
// this file says exactly which published number broke.
#include <gtest/gtest.h>

#include "cluster/des.hpp"
#include "cluster/latency.hpp"
#include "cluster/sizing.hpp"
#include "model/extrapolate.hpp"
#include "model/scenarios.hpp"
#include "model/throughput.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {
namespace {

struct PaperPoint {
  App app;
  double frame_bytes;
  double paper_gbps;
  double tolerance;
};

class Fig8Regression : public ::testing::TestWithParam<PaperPoint> {};

TEST_P(Fig8Regression, MatchesPaper) {
  PaperPoint pt = GetParam();
  ThroughputConfig cfg;
  cfg.app = pt.app;
  cfg.frame_bytes = pt.frame_bytes;
  ThroughputResult r = SolveThroughput(cfg);
  EXPECT_NEAR(r.bps / 1e9, pt.paper_gbps, pt.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Fig8, Fig8Regression,
    ::testing::Values(PaperPoint{App::kMinimalForwarding, 64, 9.7, 0.3},
                      PaperPoint{App::kMinimalForwarding, 729.6, 24.6, 0.2},
                      PaperPoint{App::kIpRouting, 64, 6.35, 0.2},
                      PaperPoint{App::kIpRouting, 729.6, 24.6, 0.2},
                      PaperPoint{App::kIpsec, 64, 1.4, 0.1},
                      PaperPoint{App::kIpsec, 729.6, 4.45, 0.2}));

TEST(Table1Regression, PollingConfigurations) {
  auto rate = [](uint16_t kp, uint16_t kn) {
    ThroughputConfig cfg;
    cfg.batching = {kp, kn};
    return SolveThroughput(cfg).bps / 1e9;
  };
  EXPECT_NEAR(rate(1, 1), 1.46, 0.1);
  EXPECT_NEAR(rate(32, 1), 4.97, 0.3);
  EXPECT_NEAR(rate(32, 16), 9.77, 0.4);
}

TEST(Fig7Regression, CumulativeImpact) {
  ThroughputConfig tuned;  // Nehalem + multi-queue + batching
  ThroughputConfig no_mods = tuned;
  no_mods.multi_queue = false;
  no_mods.batching = {1, 1};
  ThroughputConfig xeon = no_mods;
  xeon.spec = ServerSpec::SharedBusXeon();

  double full = SolveThroughput(tuned).pps;
  double plain = SolveThroughput(no_mods).pps;
  double old_arch = SolveThroughput(xeon).pps;
  // "a 6.7-fold improvement relative to the same server without our
  // modifications and an 11-fold improvement relative to the shared-bus
  // Xeon" (§4.2).
  EXPECT_NEAR(full / plain, 6.7, 0.7);
  EXPECT_NEAR(full / old_arch, 11.0, 1.5);
  // And the Nehalem-vs-Xeon architecture gap alone is 2-3x (§4.2).
  EXPECT_NEAR(plain / old_arch, 1.6, 0.5);
}

TEST(Fig6Regression, PaperColumn) {
  for (const auto& r : EvaluateFig6Scenarios()) {
    EXPECT_NEAR(r.gbps_per_fp, r.paper_gbps, r.paper_gbps * 0.15) << r.label;
  }
}

TEST(ProjectionRegression, NextGenAndAbilene) {
  auto proj = ProjectNextGen64B();
  EXPECT_NEAR(proj[0].next_gen.bps / 1e9, 38.8, 1.5);
  EXPECT_NEAR(proj[1].next_gen.bps / 1e9, 19.9, 1.0);
  EXPECT_NEAR(proj[2].next_gen.bps / 1e9, 5.8, 0.3);
  ThroughputResult abilene = ProjectAbileneUnlimitedNics(App::kMinimalForwarding, 729.6);
  EXPECT_NEAR(abilene.bps / 1e9, 70.0, 15.0);
}

TEST(Rb4Regression, ForwardingPerformanceBands) {
  // §6.2: 12 Gbps at 64 B (within [4*6.35/2, 4*9.7/2] = [12.7, 19.4]
  // minus reordering-avoidance overhead), ~35 Gbps with Abilene.
  {
    ClusterSim sim(ClusterConfig::Rb4());
    FixedSizeDistribution sizes(64);
    auto stats = sim.RunUniform(TrafficMatrix::Uniform(4), 3.0e9, &sizes, 0.01);
    EXPECT_LT(stats.loss_fraction(), 0.02) << "RB4 must carry 12 Gbps aggregate of 64 B";
  }
  {
    ClusterSim sim(ClusterConfig::Rb4());
    FixedSizeDistribution sizes(64);
    auto stats = sim.RunUniform(TrafficMatrix::Uniform(4), 5.0e9, &sizes, 0.01);
    EXPECT_GT(stats.loss_fraction(), 0.05) << "RB4 is NOT expected to carry 20 Gbps of 64 B";
  }
  {
    ClusterSim sim(ClusterConfig::Rb4());
    AbileneSizeDistribution sizes;
    auto stats = sim.RunUniform(TrafficMatrix::Uniform(4), 8.75e9, &sizes, 0.01);
    EXPECT_LT(stats.loss_fraction(), 0.02) << "RB4 must carry ~35 Gbps of Abilene";
  }
}

TEST(Rb4Regression, ReorderingNumbers) {
  // §6.2: 0.15% with the flowlet extension vs 5.5% without. We assert the
  // order-of-magnitude shape: <1% with flowlets, >1% without, and at
  // least a 5x gap.
  auto run = [](bool flowlets) {
    ClusterConfig cfg = ClusterConfig::Rb4();
    cfg.vlb.flowlets = flowlets;
    cfg.seed = 7;
    ClusterSim sim(cfg);
    auto gen_cfg = FlowTrafficGenerator::ConfigForRate(9e9, 729.6, 40, 20000, 13);
    FlowTrafficGenerator gen(gen_cfg, std::make_unique<AbileneSizeDistribution>());
    return sim.RunSinglePairTrace(&gen, 0, 2, 0.05).reorder_sequence_fraction;
  };
  double with_flowlets = run(true);
  double without = run(false);
  EXPECT_LT(with_flowlets, 0.01);
  EXPECT_GT(without, 0.01);
  EXPECT_GT(without / std::max(with_flowlets, 1e-6), 5.0);
}

TEST(Rb4Regression, LatencyNumbers) {
  LatencyEstimate e = EstimateLatency();
  EXPECT_NEAR(e.per_server_us, 24.0, 0.5);
  EXPECT_NEAR(e.cluster_2hop_us, 47.6, 1.0);
}

TEST(Fig3Regression, MeshTransitions) {
  EXPECT_TRUE(SizeCluster(ServerPlatform::Current(), 32).mesh);
  EXPECT_FALSE(SizeCluster(ServerPlatform::Current(), 64).mesh);
  EXPECT_TRUE(SizeCluster(ServerPlatform::MoreNics(), 128).mesh);
  EXPECT_FALSE(SizeCluster(ServerPlatform::MoreNics(), 256).mesh);
}

TEST(Table3Regression, ReferenceValuesPreserved) {
  EXPECT_EQ(AppProfile::For(App::kMinimalForwarding).instructions_per_packet_64, 1033);
  EXPECT_DOUBLE_EQ(AppProfile::For(App::kMinimalForwarding).cycles_per_instruction_64, 1.19);
  EXPECT_EQ(AppProfile::For(App::kIpRouting).instructions_per_packet_64, 1512);
  EXPECT_DOUBLE_EQ(AppProfile::For(App::kIpRouting).cycles_per_instruction_64, 1.23);
  EXPECT_EQ(AppProfile::For(App::kIpsec).instructions_per_packet_64, 14221);
  EXPECT_DOUBLE_EQ(AppProfile::For(App::kIpsec).cycles_per_instruction_64, 0.55);
}

}  // namespace
}  // namespace rb
