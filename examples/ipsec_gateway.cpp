// IPsec VPN gateway pair: one RouteBricks server encrypts traffic into an
// ESP tunnel (AES-128-CBC), a peer decrypts it, and the example verifies
// every packet survives the round trip bit-exactly — the paper's third
// application (§5.1) as a deployable scenario.
//
//   $ ./ipsec_gateway [--packets=N]
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "crypto/esp.hpp"
#include "model/throughput.hpp"
#include "workload/abilene.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("ipsec_gateway");
  auto* packets = flags.AddInt64("packets", 5000, "packets to tunnel");
  flags.Parse(argc, argv);

  // Site A: encrypting gateway (a 2-port RouteBricks server running the
  // IPsec application: LAN on port 0, WAN on port 1).
  rb::SingleServerConfig config;
  config.num_ports = 2;
  config.queues_per_port = 4;
  config.cores = 4;
  config.app = rb::App::kIpsec;
  config.pool_packets = 1 << 15;
  for (int i = 0; i < 16; ++i) {
    config.esp.key[i] = static_cast<uint8_t>(0xa0 + i);
  }
  rb::SingleServerRouter site_a(config);
  site_a.Initialize();

  // Site B: the decrypting peer (same SA).
  rb::EspTunnel site_b(config.esp);

  rb::AbileneGenerator gen(rb::AbileneConfig{512, 17});
  std::map<uint64_t, std::vector<uint8_t>> sent;
  int injected = 0;
  uint64_t plain_bytes = 0;
  uint64_t tunneled = 0;
  uint64_t wire_bytes = 0;
  uint64_t verified = 0;
  rb::Packet* burst[64];
  // Pull ESP frames off the WAN port, decrypt at site B, verify.
  auto drain_wan = [&] {
    size_t n;
    while ((n = site_a.DrainPort(1, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        rb::Packet* p = burst[i];
        tunneled++;
        wire_bytes += p->length();
        if (site_b.Decapsulate(p)) {
          auto it = sent.find(p->flow_id() << 32 | p->flow_seq());
          if (it != sent.end() && it->second.size() == p->length() &&
              memcmp(it->second.data(), p->data(), p->length()) == 0) {
            verified++;
          }
        }
        site_a.pool().Free(p);
      }
    }
  };
  for (int i = 0; i < *packets; ++i) {
    rb::FrameSpec spec = gen.Next();
    rb::Packet* p = rb::AllocFrame(spec, &site_a.pool());
    if (p == nullptr) {
      break;
    }
    sent[spec.flow_id << 32 | spec.flow_seq] =
        std::vector<uint8_t>(p->data(), p->data() + p->length());
    plain_bytes += p->length();
    site_a.DeliverFrame(0, p, 0.0);
    injected++;
    if (injected % 1024 == 0) {
      site_a.RunUntilIdle();
      drain_wan();
    }
  }
  site_a.RunUntilIdle();
  drain_wan();

  printf("ipsec gateway: tunneled %llu packets (%llu verified bit-exact after decrypt)\n",
         static_cast<unsigned long long>(tunneled), static_cast<unsigned long long>(verified));
  printf("  ESP overhead: %.1f%% (%.1f MB plaintext -> %.1f MB on the wire)\n",
         100.0 * (static_cast<double>(wire_bytes) / static_cast<double>(plain_bytes) - 1.0),
         plain_bytes / 1e6, wire_bytes / 1e6);

  rb::ThroughputConfig model;
  model.app = rb::App::kIpsec;
  model.frame_bytes = 64;
  printf("  model (Nehalem, 64 B): %s; ", rb::HumanBitRate(rb::SolveThroughput(model).bps).c_str());
  model.frame_bytes = 729.6;
  printf("Abilene mix: %s — the paper notes commercial IPsec\n",
         rb::HumanBitRate(rb::SolveThroughput(model).bps).c_str());
  printf("  accelerators of the day shipped at 2.5-10 Gbps.\n");
  return 0;
}
