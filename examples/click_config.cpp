// Programmability demo (§8): configure a router with the Click language
// instead of C++ — "RouteBricks is not just programmable in the literal
// sense, it also offers ease of programmability."
//
// The config below builds a small firewall-ish edge router: validate the
// IP header, split TCP/UDP/other, count each class, drop non-TCP/UDP,
// route the rest by longest-prefix match across two uplinks.
//
//   $ ./click_config [--packets=N]
#include <cstdio>

#include "click/config_parser.hpp"
#include "click/elements/misc.hpp"
#include "common/flags.hpp"
#include "lookup/dir24_8.hpp"
#include "lookup/table_gen.hpp"
#include "packet/pool.hpp"
#include "workload/abilene.hpp"

namespace {

constexpr const char* kConfig = R"click(
  // --- edge router: LAN on device 0, two uplinks on devices 1 and 2 ---
  src :: FromDevice(0, 0, 32);

  check :: CheckIPHeader;
  cls   :: IpProtoClassifier(6, 17);     // TCP, UDP, everything else
  tcp   :: Counter;
  udp   :: Counter;
  other :: Counter;
  rt    :: IPLookup(2);

  src -> check -> cls;
  check [1] -> Discard;                  // malformed frames

  cls [0] -> tcp -> DecIPTTL -> rt;
  cls [1] -> udp -> SetFlowHash -> rt;   /* re-hash after any rewrite */
  cls [2] -> other -> Discard;           // default-deny for exotic protocols

  rt [0] -> Queue(512) -> ToDevice(1, 0);
  rt [1] -> Queue(512) -> ToDevice(2, 0);
)click";

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("click_config");
  auto* packets = flags.AddInt64("packets", 4000, "packets to run through the config");
  flags.Parse(argc, argv);

  // Devices and routing table the config refers to.
  rb::NicConfig nc;
  nc.num_rx_queues = 1;
  nc.kn = 1;
  rb::NicPort lan(nc);
  rb::NicPort uplink_a(nc);
  rb::NicPort uplink_b(nc);

  rb::Dir24_8 table;
  rb::TableGenConfig tg;
  tg.num_routes = 32768;
  tg.num_next_hops = 2;
  table.InsertAll(rb::GenerateRoutingTable(tg));

  rb::ConfigContext context;
  context.ports = {&lan, &uplink_a, &uplink_b};
  context.table = &table;

  rb::Router graph;
  rb::ConfigParseResult parsed = rb::ParseClickConfig(kConfig, &graph, context);
  if (!parsed.ok) {
    fprintf(stderr, "config error: %s\n", parsed.error.c_str());
    return 1;
  }
  printf("parsed Click config: %d statements, %zu named elements, %d connections\n",
         parsed.statements, parsed.elements.size(), parsed.connections);
  graph.Initialize();

  rb::PacketPool pool(8192);
  rb::AbileneGenerator gen(rb::AbileneConfig{1024, 99});
  int injected = 0;
  rb::Packet* burst[64];
  uint64_t uplink_counts[2] = {0, 0};
  auto drain = [&] {
    rb::NicPort* ups[2] = {&uplink_a, &uplink_b};
    for (int u = 0; u < 2; ++u) {
      size_t n;
      while ((n = ups[u]->DrainTx(burst, std::size(burst))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          pool.Free(burst[i]);
        }
        uplink_counts[u] += n;
      }
    }
  };
  int attempts = 0;
  while (injected < *packets && attempts < 100 * *packets) {
    attempts++;
    rb::FrameSpec spec = gen.Next();
    if (table.Lookup(spec.flow.dst_ip) == rb::LpmTable::kNoRoute) {
      continue;
    }
    rb::Packet* p = rb::AllocFrame(spec, &pool);
    if (p == nullptr) {
      break;
    }
    lan.Deliver(p, 0.0);
    injected++;
    if (injected % 512 == 0) {
      graph.RunUntilIdle();
      drain();
    }
  }
  graph.RunUntilIdle();
  drain();

  auto count = [&](const char* name) {
    return dynamic_cast<rb::CounterElement*>(parsed.elements.at(name))->counters().packets.load();
  };
  printf("injected %d routable packets from the LAN:\n", injected);
  printf("  TCP: %llu   UDP: %llu   other (dropped): %llu\n",
         static_cast<unsigned long long>(count("tcp")),
         static_cast<unsigned long long>(count("udp")),
         static_cast<unsigned long long>(count("other")));
  printf("  uplink A forwarded %llu, uplink B forwarded %llu\n",
         static_cast<unsigned long long>(uplink_counts[0]),
         static_cast<unsigned long long>(uplink_counts[1]));
  printf("changing this router's behaviour is a config edit, not a rebuild — the paper's\n");
  printf("programmability argument (§8).\n");
  return 0;
}
