// A fuller IP-router scenario: a 256 K-entry table (the paper's size),
// an Abilene-like traffic mix, multi-queue RSS spreading flows across
// polling cores, and a throughput-model readout of what this
// configuration would sustain on the paper's hardware.
//
//   $ ./ip_router [--packets=N] [--ports=P] [--metrics-out=metrics.json]
//                 [--profile-out=profile.json] [--trace-out=trace.json]
//                 [--control-socket=ADDR] [--stateful]
//
// With --metrics-out, the run's full telemetry lands in one JSON document:
// per-element packet counters, per-queue drop/occupancy stats, NIC port
// counters, and a sampled per-hop latency histogram from the path tracer.
// With --profile-out, a cycle-accounting profile (task -> element -> phase
// scope tree with cycles/packet) is written alongside. With --trace-out,
// the sampled packet paths land as Chrome/Perfetto trace-event JSON —
// load in ui.perfetto.dev to see each packet's span tree with
// queueing-wait vs service-time args per hop.
//
// With --control-socket (TCP port or Unix-socket path), the run serves the
// live introspection plane (DESIGN.md §13) and keeps re-running the
// workload — injecting --packets per pass — until a client writes
// `ctl.stop`. Poke it with rb_top, curl (GET /metrics), or the raw line
// protocol (READ Queue@4.occupancy, WRITE Queue@4.codel_target_us 500).
#include <algorithm>
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/control.hpp"
#include "harness/metrics_out.hpp"
#include "model/throughput.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "workload/abilene.hpp"
#include "workload/injector.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("ip_router");
  auto* packets = flags.AddInt64("packets", 20000, "packets to route");
  auto* ports = flags.AddInt64("ports", 4, "router ports");
  auto* routes = flags.AddInt64("routes", 256 * 1024, "routing-table entries");
  auto* trace_every = flags.AddInt64("trace-every", 64, "sample 1 in N packet paths");
  auto* compile = flags.AddBool("compile-programs", true,
                                "collapse classifier chains into compiled match programs "
                                "(DESIGN.md §16); the .program handler shows the result");
  auto* stateful = flags.AddBool("stateful", false,
                                 "insert a source-NAPT Nat element on every chain "
                                 "(DESIGN.md §17); the .flows/.hi/.lo handlers show the "
                                 "live flow tables");
  auto* nat_capacity = flags.AddInt64("nat-capacity", 4096,
                                      "flow-table slots per Nat element (with --stateful)");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  auto* profile_out = rb::AddProfileOutFlag(&flags);
  auto* trace_out = rb::AddTraceOutFlag(&flags);
  auto* control_addr = rb::AddControlSocketFlag(&flags);
  flags.Parse(argc, argv);

  // Always-on black box: drop/blocked/throttle events land in per-core
  // rings, dumped by the fr.dump handler or a fatal RB_CHECK.
  rb::telemetry::FlightRecorder recorder;
  rb::telemetry::FlightRecorder::Install(&recorder);

  // Install the cycle profiler before any traffic flows so every scope
  // (task -> element -> phase) is captured from the first packet.
  rb::telemetry::Profiler profiler;
  if (!profile_out->empty()) {
    rb::telemetry::SetProfiler(&profiler);
  }

  rb::SingleServerConfig config;
  config.num_ports = static_cast<int>(*ports);
  config.queues_per_port = 8;
  config.cores = 8;
  config.app = rb::App::kIpRouting;
  config.pool_packets = 1 << 16;
  config.table.num_routes = static_cast<size_t>(*routes);
  config.compile_programs = *compile;
  config.stateful_nat = *stateful;
  config.nat_capacity = static_cast<size_t>(*nat_capacity);

  printf("building IP router: %d ports, %d queues/port, %lld-entry DIR-24-8 table...\n",
         config.num_ports, config.queues_per_port, static_cast<long long>(*routes));
  rb::SingleServerRouter router(config);
  rb::telemetry::MetricRegistry registry;
  rb::telemetry::TracerConfig tc;
  tc.sample_every = static_cast<uint32_t>(*trace_every);
  tc.max_traces = 4096;
  rb::telemetry::PathTracer tracer(tc);
  router.EnableTelemetry(&registry, &tracer);
  router.Initialize();
  if (const rb::Dir24_8* dir = router.dir_table()) {
    printf("  table memory: %.1f MiB (tbl24 + %zu tbl_long segments)\n",
           dir->memory_bytes() / 1048576.0, dir->num_long_segments());
  }

  // Live control plane: element/queue handlers plus the tracer knobs and
  // ctl.stop, served off the data path's thread.
  rb::ControlPlane ctl(&registry, &tracer);
  router.graph().AddHandlers(ctl.handlers());
  router.AddHandlers(ctl.handlers());

  // Abilene mix, destinations drawn from the installed prefix set (every
  // frame routable by construction — no reject-sampling against the live
  // table), bulk-carved from the pool and template-filled.
  rb::TableGenConfig sampler_cfg = config.table;
  sampler_cfg.num_next_hops = static_cast<uint32_t>(config.num_ports);
  rb::PrefixSampler sampler(sampler_cfg);
  rb::InjectorConfig inj_cfg;
  inj_cfg.abilene = true;
  inj_cfg.abilene_cfg = rb::AbileneConfig{4096, 3};
  inj_cfg.dst_sampler = &sampler;
  rb::BulkInjector injector(inj_cfg, &router.pool());
  injector.AddHandlers(ctl.handlers());

  if (!ctl.MaybeStart(*control_addr)) {
    return 1;
  }
  const bool serving = ctl.running();

  long long injected = 0;
  uint64_t forwarded = 0;
  rb::Packet* burst[64];
  auto drain = [&] {
    for (int port = 0; port < config.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(burst[i]);
        }
        forwarded += n;
      }
    }
  };
  // One pass injects --packets frames; with a control socket the workload
  // repeats pass after pass until a client writes ctl.stop, so there is
  // always live traffic to observe.
  rb::PacketBatch inject_batch;
  do {
    long long pass_target = injected + *packets;
    long long burst_idx = 0;
    while (injected < pass_target && !ctl.stop_requested()) {
      uint32_t want = static_cast<uint32_t>(std::min<long long>(
          static_cast<long long>(rb::PacketBatch::kCapacity), pass_target - injected));
      uint32_t got = injector.NextBurst(want, &inject_batch);
      router.DeliverBatch(static_cast<int>(burst_idx % config.num_ports), &inject_batch, 0.0);
      injected += got;
      burst_idx++;
      if (got < want || burst_idx % 8 == 0) {
        // Pool pressure or a periodic tick: run the graph and recycle.
        router.RunUntilIdle();
        drain();
      }
    }
  } while (serving && !ctl.stop_requested());
  router.RunUntilIdle();
  drain();
  ctl.Stop();
  printf("routed %llu / %lld packets (%.1f MB, mean %.0f B; pool_exhausted %llu)\n",
         static_cast<unsigned long long>(forwarded), injected,
         static_cast<double>(injector.injected_bytes()) / 1e6,
         injected ? static_cast<double>(injector.injected_bytes()) /
                        static_cast<double>(injected)
                  : 0.0,
         static_cast<unsigned long long>(injector.pool_exhausted()));

  // Telemetry readout: the registry saw every packet the NICs did, and the
  // tracer timed 1-in-N paths FromDevice -> ... -> ToDevice.
  rb::telemetry::RegistrySnapshot snap = registry.Snapshot();
  uint64_t rx = 0;
  uint64_t drops = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.find("/rx_packets") != std::string::npos) {
      rx += value;
    }
    if (name.find("/drops") != std::string::npos || name.find("_drops") != std::string::npos) {
      drops += value;
    }
  }
  rb::telemetry::HistogramSnapshot hop = tracer.HopLatencyHistogram();
  printf("telemetry: %zu metrics, rx %llu, drops %llu; %llu sampled traces, "
         "per-hop latency p50 %.2f us\n",
         snap.counters.size() + snap.gauges.size(), static_cast<unsigned long long>(rx),
         static_cast<unsigned long long>(drops),
         static_cast<unsigned long long>(tracer.sampled()), hop.Percentile(50) * 1e6);
  // Measured ingress-to-egress tails from the always-on latency plane
  // (cycle stamps at FromDevice, read out at each ToDevice): one line per
  // egress port, synthesized into the same snapshot's gauges.
  for (const auto& lat : snap.latency) {
    printf("latency %-12s count %8llu  p50 %7.2f us  p99 %7.2f us  p999 %7.2f us\n",
           lat.first.c_str(), static_cast<unsigned long long>(lat.second.count),
           lat.second.PercentileNs(50) / 1e3, lat.second.PercentileNs(99) / 1e3,
           lat.second.PercentileNs(99.9) / 1e3);
  }

  rb::telemetry::ExportBundle bundle;
  bundle.registry = &registry;
  bundle.tracer = &tracer;
  rb::MaybeWriteMetrics(*metrics_out, bundle);
  rb::MaybeWriteTrace(*trace_out, tracer);

  if (!profile_out->empty()) {
    rb::telemetry::SetProfiler(nullptr);
    rb::telemetry::ProfileSnapshot prof = profiler.Snapshot();
    int shown = 0;
    for (const auto& scope : prof.AggregateByName()) {  // sorted by self cycles
      if (scope.packets == 0 || shown == 10) {
        continue;
      }
      printf("  profile: %-24s %8.1f cycles/pkt (%5.1f self)\n", scope.name.c_str(),
             scope.packets ? static_cast<double>(scope.cycles) / scope.packets : 0.0,
             scope.packets ? static_cast<double>(scope.self_cycles) / scope.packets : 0.0);
      shown++;
    }
    rb::MaybeWriteProfile(*profile_out, prof);
  }

  // What would this sustain on the paper's server?
  for (double bytes : {64.0, 729.6}) {
    rb::ThroughputConfig model;
    model.app = rb::App::kIpRouting;
    model.frame_bytes = bytes;
    rb::ThroughputResult r = rb::SolveThroughput(model);
    printf("  model (Nehalem, %s): %s, bottleneck: %s\n",
           bytes < 100 ? "64 B" : "Abilene mix", rb::HumanBitRate(r.bps).c_str(),
           r.bottleneck.c_str());
  }
  rb::telemetry::FlightRecorder::Install(nullptr);
  return 0;
}
