// Quickstart: build a 4-port RouteBricks server in ~30 lines, push a few
// thousand packets through it, and read the counters.
//
//   $ ./quickstart
//
// The server follows the paper's §4.2 rules automatically: one polling
// core per NIC queue, one core per packet, per-core transmit queues.
#include <cstdio>

#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "workload/synthetic.hpp"

int main() {
  // 1. Configure a server: 4 ports, 4 rx/tx queues each, IP routing with
  //    a generated 64 K-entry table.
  rb::SingleServerConfig config;
  config.num_ports = 4;
  config.queues_per_port = 4;
  config.cores = 4;
  config.app = rb::App::kIpRouting;
  config.table.num_routes = 64 * 1024;

  rb::SingleServerRouter router(config);
  router.Initialize();

  // 2. Generate traffic: random flows, random destinations (only inject
  //    destinations the table can route, as a real upstream would).
  rb::SyntheticConfig traffic;
  traffic.packet_size = 64;
  traffic.random_dst = true;
  rb::SyntheticGenerator gen(traffic);

  // 3. Inject in bursts, running the element graph between bursts (the
  //    deterministic single-thread mode; see ThreadScheduler for the
  //    multi-core mode) and harvesting transmitted packets as a wire
  //    would, so no descriptor ring overflows.
  int injected = 0;
  uint64_t tx_count[8] = {0};
  rb::Packet* burst[64];
  auto drain = [&] {
    for (int port = 0; port < config.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(burst[i]);
        }
        tx_count[port] += n;
      }
    }
  };
  for (int i = 0; injected < 10000 && i < 200000; ++i) {
    rb::FrameSpec spec = gen.Next();
    if (router.table().Lookup(spec.flow.dst_ip) == rb::LpmTable::kNoRoute) {
      continue;
    }
    rb::Packet* p = rb::AllocFrame(spec, &router.pool());
    if (p == nullptr) {
      break;
    }
    router.DeliverFrame(injected % config.num_ports, p, 0.0);
    injected++;
    if (injected % 1024 == 0) {
      router.RunUntilIdle();
      drain();
    }
  }
  router.RunUntilIdle();
  drain();

  // 4. Print per-port counts.
  printf("quickstart: injected %d routable packets into a %d-port IP router\n", injected,
         config.num_ports);
  for (int port = 0; port < config.num_ports; ++port) {
    printf("  port %d transmitted %llu packets\n", port,
           static_cast<unsigned long long>(tx_count[port]));
  }
  printf("  total rx=%llu tx=%llu (headers checked, TTL decremented, LPM-routed)\n",
         static_cast<unsigned long long>(router.total_rx_packets()),
         static_cast<unsigned long long>(router.total_tx_packets()));
  return 0;
}
