// The RB4 prototype, two ways:
//
//  1. Functional: a real 4-node Click-graph cluster moving real packets —
//     Direct VLB with flowlets, the output node encoded in the MAC
//     address, MAC-steered rx queues, headers processed once at the input
//     node (§6.1). The example injects traffic, verifies delivery at the
//     right external ports, and prints the header-processing invariant.
//
//  2. Calibrated: the event-driven performance simulation of the same
//     cluster under uniform 64 B load, showing the §6.2 operating point.
//
//   $ ./rb4_cluster [--packets=N]
#include <cstdio>

#include "cluster/des.hpp"
#include "cluster/reorder.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/cluster_router.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("rb4_cluster");
  auto* packets = flags.AddInt64("packets", 8000, "packets for the functional cluster");
  flags.Parse(argc, argv);

  printf("=== RB4, functional (real packets through 4 Click graphs) ===\n");
  rb::FunctionalClusterConfig config;
  config.num_nodes = 4;
  rb::FunctionalCluster cluster(config);

  rb::Rng rng(123);
  std::vector<uint64_t> flow_seq(1024, 0);
  int injected = 0;
  for (int i = 0; i < *packets; ++i) {
    uint64_t flow = rng.NextBounded(1024);
    // A flow lives between one (source, destination) port pair.
    uint16_t src = static_cast<uint16_t>((flow / 4) % 4);
    uint16_t dst = static_cast<uint16_t>(flow % 4);
    rb::FrameSpec spec;
    spec.size = 64 + static_cast<uint32_t>(rng.NextBounded(1400));
    spec.flow.src_ip = 0xac100001 + static_cast<uint32_t>(flow);
    spec.flow.dst_ip = cluster.AddressForNode(dst);
    spec.flow.src_port = static_cast<uint16_t>(1024 + flow);
    spec.flow.dst_port = 80;
    spec.flow.protocol = 6;
    spec.flow_id = flow;
    spec.flow_seq = flow_seq[flow]++;
    rb::Packet* p = rb::AllocFrame(spec, &cluster.pool());
    if (p == nullptr) {
      break;
    }
    cluster.InjectExternal(src, p, i * 1e-6);
    injected++;
  }
  cluster.RunUntilIdle();

  uint64_t delivered = 0;
  uint64_t misrouted = 0;
  rb::ReorderDetector reorder;
  rb::Packet* burst[64];
  for (uint16_t node = 0; node < 4; ++node) {
    size_t n;
    uint64_t here = 0;
    while ((n = cluster.DrainExternal(node, burst, std::size(burst))) > 0) {
      for (size_t i = 0; i < n; ++i) {
        if (rb::NodeFromMac(rb::EthernetView{burst[i]->data()}.dst()) != node) {
          misrouted++;
        }
        reorder.Deliver(burst[i]->flow_id(), burst[i]->flow_seq());
        cluster.pool().Free(burst[i]);
        here++;
      }
    }
    delivered += here;
    printf("  node %u external port delivered %llu packets\n", node,
           static_cast<unsigned long long>(here));
  }
  uint64_t headers = 0;
  for (uint16_t node = 0; node < 4; ++node) {
    headers += cluster.vlb_route(node).headers_processed();
  }
  printf("  delivered %llu / %d, misrouted %llu, header-processings per packet: %.3f\n",
         static_cast<unsigned long long>(delivered), injected,
         static_cast<unsigned long long>(misrouted),
         static_cast<double>(headers) / static_cast<double>(injected));
  printf("  (exactly 1.0 = the §6.1 MAC-encoding trick works: transit nodes never parse IP)\n");
  printf("  internal wire crossings: %llu; reordered packets: %llu\n",
         static_cast<unsigned long long>(cluster.wire_packets()),
         static_cast<unsigned long long>(reorder.reordered_packets()));

  printf("\n=== RB4, calibrated performance (event-driven simulation) ===\n");
  rb::ClusterSim sim(rb::ClusterConfig::Rb4());
  rb::FixedSizeDistribution sizes(64);
  auto tm = rb::TrafficMatrix::Uniform(4);
  rb::ClusterRunStats stats = sim.RunUniform(tm, 3e9, &sizes, 0.01);
  printf("  64 B uniform load at 3 Gbps/port (12 Gbps aggregate — the paper's measured point):\n");
  printf("  delivered %s aggregate, loss %.3f%%, median latency %.1f us, direct fraction %.2f\n",
         rb::HumanBitRate(stats.delivered_bps()).c_str(), 100 * stats.loss_fraction(),
         stats.latency.Percentile(50) * 1e6,
         static_cast<double>(stats.direct_packets) /
             std::max<uint64_t>(1, stats.direct_packets + stats.balanced_packets));
  return 0;
}
