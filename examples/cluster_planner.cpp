// Cluster planner: answer "how many servers do I need for an N-port,
// R Gbps/port RouteBricks router?" using the §3.3 sizing rules, and show
// the projected per-server requirements and end-to-end latency.
//
//   $ ./cluster_planner --ports=128 --rate_gbps=10 --slots=20
#include <cstdio>

#include "cluster/latency.hpp"
#include "cluster/sizing.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("cluster_planner");
  auto* ports = flags.AddInt64("ports", 32, "external router ports (N)");
  auto* rate = flags.AddDouble("rate_gbps", 10.0, "line rate per port (R)");
  auto* slots = flags.AddInt64("slots", 5, "PCIe NIC slots per server");
  auto* ext_per_server = flags.AddInt64("ext_ports_per_server", 1, "router ports per server (s)");
  flags.Parse(argc, argv);

  rb::ServerPlatform platform;
  platform.name = "custom";
  platform.nic_slots = static_cast<int>(*slots);
  platform.ext_ports_per_server = static_cast<int>(*ext_per_server);

  rb::SizingResult r =
      rb::SizeCluster(platform, static_cast<uint32_t>(*ports), *rate * 1e9);

  printf("RouteBricks cluster plan: N=%lld ports at R=%.0f Gbps, servers with %lld NIC slots, "
         "%lld port(s)/server\n",
         static_cast<long long>(*ports), *rate, static_cast<long long>(*slots),
         static_cast<long long>(*ext_per_server));
  if (!r.feasible) {
    printf("  INFEASIBLE with this platform (fanout too small) — add NIC slots.\n");
    return 1;
  }
  printf("  topology: %s\n",
         r.mesh ? rb::Format("full mesh over %s internal links", r.internal_link.c_str()).c_str()
                : "k-ary n-fly (port count exceeds server fanout)");
  printf("  servers: %llu port servers + %llu switch servers = %llu total\n",
         static_cast<unsigned long long>(r.port_servers),
         static_cast<unsigned long long>(r.switch_servers),
         static_cast<unsigned long long>(r.total_servers()));

  double s = static_cast<double>(*ext_per_server);
  printf("  per-server processing requirement (Direct VLB): %.0f-%.0f Gbps (2sR-3sR, s=%.0f)\n",
         2 * s * *rate, 3 * s * *rate, s);

  // Can the paper's evaluation server meet it, and on what workload?
  for (double bytes : {64.0, 729.6}) {
    rb::ThroughputConfig cfg;
    cfg.app = rb::App::kIpRouting;
    cfg.frame_bytes = bytes;
    cfg.nic_input_cap = false;  // cluster nodes use many internal ports
    rb::ThroughputResult res = rb::SolveThroughput(cfg);
    const char* verdict = res.bps >= 2 * s * *rate * 1e9 ? "meets 2sR" : "below 2sR";
    printf("  Nehalem IP-routing capacity at %s: %s (%s)\n", bytes < 100 ? "64 B" : "Abilene mix",
           rb::HumanBitRate(res.bps).c_str(), verdict);
  }

  rb::LatencyEstimate lat = rb::EstimateLatency();
  double hops = r.mesh ? 3.0 : 2.0 + 1.0;  // up to 1 intermediate in a mesh
  printf("  worst-case VLB path latency (mesh): ~%.0f us (%.0f us per server x %.0f servers)\n",
         lat.per_server_us * hops, lat.per_server_us, hops);
  printf("  equivalent switched-cluster cost: %.0f server-equivalents (48-port non-blocking "
         "switches at the paper's 4-ports-per-server conversion)\n",
         rb::SwitchedClusterServerEquivalents(static_cast<uint32_t>(*ports)));
  return 0;
}
