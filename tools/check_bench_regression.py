#!/usr/bin/env python3
"""Diff a bench_fig9_breakdown JSON run against the committed baseline.

Usage:
    check_bench_regression.py --baseline bench/baselines/BENCH_profile.json \
        --current BENCH_profile.json [--cycles-tolerance 3.0]
    check_bench_regression.py --overload OVERLOAD.json
    check_bench_regression.py --latency LATENCY.json
    check_bench_regression.py --compiled-ab AB.json
    check_bench_regression.py --stateful STATEFUL.json
    check_bench_regression.py --self-test

--stateful validates a bench_stateful JSON dump: schema, required
fields, and the §17 robustness contract — a full run holds >= 1M
concurrent flows with zero insert failures and a probe p99 inside the
bounded window; 2x overload keeps forwarding with watermark eviction
engaged and drops confined to the flow_table_full bucket; SCR failover
preserves every established mapping (the shared baseline must not);
replay stays bounded by the checkpoint period. All machine-independent,
so no committed baseline.

--compiled-ab validates a bench_fig8_workloads --json dump: on every
workload, the compiled-classifier pipeline must be no slower than the
interpreted one (within a small noise allowance). Machine-independent —
both modes ran on the same host in the same process — so no committed
baseline.

--overload validates a bench_overload JSON dump structurally: schema,
required fields, conservation, and the paper-§3 fairness contract
(admission ON keeps the per-port max/min ratio near 1; OFF must be
demonstrably less fair than ON). These are machine-independent
invariants, not cycle counts, so there is no committed baseline and no
tolerance flag — the bound is the same one bench_overload enforces.

Cycle counts move a lot across machines (CI runners, laptops, the paper's
Nehalem), so the default tolerances are deliberately loose: a metric fails
only when the current run is worse than the baseline by the per-metric
ratio/absolute bound below. Structural checks (a workload or scope
disappearing, attribution coverage collapsing) are strict.

A workload-level cycles/packet *improvement* beyond
--improvement-tolerance also fails, as "baseline stale": a large genuine
speedup must be accompanied by a refreshed committed baseline in the same
change, or every later regression up to the stale baseline goes unseen.
Scope-level metrics are exempt (single scopes are too noisy to gate on
getting faster).

Exit status: 0 = within tolerance, 1 = regression(s), 2 = bad input.
"""

import argparse
import json
import math
import sys

# Per-metric rules. "ratio" metrics fail when current > baseline * tol
# (only regressions fail -- getting faster is fine). "abs" metrics fail
# when |current - baseline| > tol. "floor" metrics fail when current < tol,
# independent of the baseline. Everything else is informational.
RULES = {
    "pipeline_cycles_per_packet": ("ratio", None),  # tol filled from args
    "scope_cycles_per_packet": ("ratio", None),
    "scope_share": ("abs", 0.35),
    "attribution_coverage": ("floor", 0.95),
}

STRUCTURAL_SCOPE_MIN_SHARE = 0.05  # only sizeable scopes must persist

# Ceiling on the harness's own share of profiled cycles per workload
# (sum of self-cycle shares over every "harness/*" scope in the *current*
# run). The bench exists to measure the router; if inject/drain scaffolding
# creeps back above this, pipeline_cycles_per_packet stops meaning
# "router cycles" and the whole baseline silently degrades into a harness
# benchmark. Machine-independent: a share is a ratio of this run's cycles.
# Assumes a steady-state (full-size) run: a --smoke run's 8k packets never
# amortize cold-start fills or recycle the pool, so its harness share
# reads high. Gate on full runs — they complete in under a second.
HARNESS_SHARE_MAX = 0.15

# Per-workload ceilings that override HARNESS_SHARE_MAX (and the
# --harness-share-max flag). The harness's per-packet cost scales with
# frame bytes -- injection copies the frame, drain accounts its length --
# while the element work it brackets (header checks, LPM lookups) is
# per-packet. A big-frame mix therefore cannot meet the 64 B ceiling no
# matter how lean the injector gets.
HARNESS_SHARE_MAX_BY_WORKLOAD = {
    # Abilene's trimodal mix averages ~730 B/frame, ~11x the 64 B
    # workloads' payload. Even with refills bounded to the two-line frame
    # head, first-touch fills copy full frames and drain still walks the
    # bytes. 0.25 is the measured floor with the zero-copy injector plus
    # headroom for machine variance -- not a license to regress.
    "fwd_abilene": 0.25,
}


def flatten(doc):
    """bench_fig9_breakdown.v1 document -> {dot.path: value} metrics."""
    out = {}
    for wname, w in doc.get("workloads", {}).items():
        base = f"workloads.{wname}"
        for key in ("pipeline_cycles_per_packet", "attribution_coverage"):
            if key in w:
                out[f"{base}.{key}"] = (key, float(w[key]))
        for sname, s in w.get("scopes", {}).items():
            sbase = f"{base}.scopes.{sname}"
            if "cycles_per_packet" in s:
                out[f"{sbase}.cycles_per_packet"] = (
                    "scope_cycles_per_packet",
                    float(s["cycles_per_packet"]),
                )
            if "share" in s:
                out[f"{sbase}.share"] = ("scope_share", float(s["share"]))
    return out


def baseline_share(doc, path):
    """share value of the scope owning metric `path` in `doc` (or 0)."""
    parts = path.split(".")
    try:
        return float(doc["workloads"][parts[1]]["scopes"][parts[3]]["share"])
    except (KeyError, IndexError, TypeError, ValueError):
        return 0.0


def harness_share(workload):
    """Summed self-cycle share of the harness/* scopes in one workload."""
    total = 0.0
    for sname, s in workload.get("scopes", {}).items():
        if sname.startswith("harness/"):
            try:
                total += float(s.get("share", 0.0))
            except (TypeError, ValueError):
                pass
    return total


def compare(baseline, current, cycles_tol, improvement_tol=4.0,
            harness_share_max=HARNESS_SHARE_MAX):
    failures = []
    infos = []
    base_metrics = flatten(baseline)
    cur_metrics = flatten(current)

    for wname in baseline.get("workloads", {}):
        if wname not in current.get("workloads", {}):
            failures.append(f"workload '{wname}' missing from current run")

    # Harness self-share ceiling: checked on the current run alone, so a
    # regression fails even if the committed baseline predates the check.
    for wname, w in sorted(current.get("workloads", {}).items()):
        share = harness_share(w)
        ceiling = HARNESS_SHARE_MAX_BY_WORKLOAD.get(wname, harness_share_max)
        if share > ceiling:
            failures.append(
                f"workloads.{wname}: harness/* self-share {share:.3f} > "
                f"{ceiling:.3f} allowed (the bench is measuring its "
                f"own injection/drain scaffolding, not the router)"
            )
        else:
            infos.append(
                f"workloads.{wname}: harness/* self-share {share:.3f} "
                f"(ok, ceiling {ceiling:.2f})"
            )

    for path, (kind, base_val) in sorted(base_metrics.items()):
        rule = RULES.get(kind)
        if rule is None:
            continue
        mode, tol = rule
        if tol is None:
            tol = cycles_tol
        if path not in cur_metrics:
            # A scope vanishing usually means instrumentation was removed;
            # only flag scopes that actually mattered in the baseline.
            if kind == "scope_cycles_per_packet":
                if baseline_share(baseline, path) >= STRUCTURAL_SCOPE_MIN_SHARE:
                    failures.append(f"{path}: present in baseline, missing from current run")
            else:
                failures.append(f"{path}: present in baseline, missing from current run")
            continue
        cur_val = cur_metrics[path][1]
        if mode == "ratio":
            # Scope-level cycle checks only bind for scopes that mattered in
            # the baseline; sub-5%-share scopes are cache-noise-dominated
            # (cold-start lookups, first-touch allocations) and tracked via
            # the workload-level pipeline_cycles_per_packet instead.
            if (
                kind == "scope_cycles_per_packet"
                and baseline_share(baseline, path) < STRUCTURAL_SCOPE_MIN_SHARE
            ):
                continue
            if base_val > 0 and cur_val > base_val * tol:
                failures.append(
                    f"{path}: {cur_val:.1f} vs baseline {base_val:.1f} "
                    f"(x{cur_val / base_val:.2f} > x{tol:.2f} allowed)"
                )
            elif (
                kind == "pipeline_cycles_per_packet"
                and base_val > 0
                and cur_val > 0
                and cur_val * improvement_tol < base_val
            ):
                failures.append(
                    f"{path}: baseline stale: {cur_val:.1f} vs baseline {base_val:.1f} "
                    f"(x{base_val / cur_val:.2f} faster > x{improvement_tol:.2f} allowed; "
                    f"refresh the committed baseline)"
                )
            elif base_val > 0:
                infos.append(f"{path}: x{cur_val / base_val:.2f} of baseline (ok)")
        elif mode == "abs":
            if abs(cur_val - base_val) > tol:
                failures.append(
                    f"{path}: {cur_val:.3f} vs baseline {base_val:.3f} "
                    f"(|delta| {abs(cur_val - base_val):.3f} > {tol:.3f})"
                )
        elif mode == "floor":
            if cur_val < tol:
                failures.append(f"{path}: {cur_val:.3f} below required floor {tol:.3f}")
    return failures, infos


# bench_overload structural contract: every dump must carry these fields
# (a bench refactor that drops one silently blinds the soak job).
OVERLOAD_SCHEMA = "rb.bench_overload.v1"
OVERLOAD_REQUIRED = ("seed", "nodes", "fairness", "goodput", "conservation_ok", "checks_failed")
OVERLOAD_FAIRNESS_REQUIRED = (
    "ratio_admission_on",
    "ratio_admission_off",
    "per_port_gbps_on",
    "per_port_gbps_off",
)
OVERLOAD_GOODPUT_REQUIRED = ("hot_on_gbps", "hot_off_gbps", "uniform_on_gbps")
OVERLOAD_MAX_FAIR_RATIO = 1.1  # same bound bench_overload enforces


def check_overload(doc):
    """Structural + invariant checks for one bench_overload JSON document."""
    failures = []
    if doc.get("schema") != OVERLOAD_SCHEMA:
        return [f"unexpected schema {doc.get('schema')!r} (want {OVERLOAD_SCHEMA!r})"]
    for key in OVERLOAD_REQUIRED:
        if key not in doc:
            failures.append(f"required field '{key}' missing")
    fairness = doc.get("fairness", {})
    for key in OVERLOAD_FAIRNESS_REQUIRED:
        if key not in fairness:
            failures.append(f"required field 'fairness.{key}' missing")
    goodput = doc.get("goodput", {})
    for key in OVERLOAD_GOODPUT_REQUIRED:
        if key not in goodput:
            failures.append(f"required field 'goodput.{key}' missing")
    if failures:
        return failures  # value checks below assume the fields exist

    if doc["conservation_ok"] is not True:
        failures.append("conservation_ok is not true: packets were leaked or double-counted")
    if doc["checks_failed"] != 0:
        failures.append(f"bench reported {doc['checks_failed']} failed internal check(s)")
    nodes = int(doc["nodes"])
    for key in ("per_port_gbps_on", "per_port_gbps_off"):
        ports = fairness[key]
        if len(ports) != nodes:
            failures.append(f"fairness.{key} has {len(ports)} entries for {nodes} nodes")
        elif min(ports) <= 0:
            failures.append(f"fairness.{key} contains a starved (<= 0 Gbps) port")
    ratio_on = float(fairness["ratio_admission_on"])
    ratio_off = float(fairness["ratio_admission_off"])
    if ratio_on > OVERLOAD_MAX_FAIR_RATIO:
        failures.append(
            f"fairness.ratio_admission_on {ratio_on:.3f} > {OVERLOAD_MAX_FAIR_RATIO} "
            "(admission failed to equalize per-port goodput)"
        )
    if ratio_off <= ratio_on:
        failures.append(
            f"ratio_admission_off {ratio_off:.3f} <= ratio_admission_on {ratio_on:.3f} "
            "(the no-admission run must be demonstrably less fair)"
        )
    if float(goodput["hot_on_gbps"]) <= 0:
        failures.append("goodput.hot_on_gbps is not positive")
    return failures


# bench_latency structural contract. Like --overload, these are
# machine-independent invariants — estimator agreement ratios, queueing-knee
# ordering, conservation — not cycle counts, so no committed tolerance flag.
LATENCY_SCHEMA = "rb.bench_latency.v1"
LATENCY_REQUIRED = ("seed", "estimator", "des", "sweep", "stamp_ab",
                    "conservation_ok", "checks_failed")
LATENCY_DES_REQUIRED = (
    "direct_mean_us",
    "via_mean_us",
    "rel_err_direct",
    "rel_err_via",
    "direct_cpu_wait_us",
)
LATENCY_STAMP_REQUIRED = ("off_cycles_per_pkt", "on_cycles_per_pkt",
                          "overhead_frac", "aa_frac", "overhead_bar")
LATENCY_MAX_REL_ERR = 0.25   # same bound bench_latency enforces (--tolerance)
LATENCY_MIN_SWEEP_POINTS = 3  # need >= 3 points for the knee to be a curve


def check_latency(doc):
    """Structural + invariant checks for one bench_latency JSON document."""
    failures = []
    if doc.get("schema") != LATENCY_SCHEMA:
        return [f"unexpected schema {doc.get('schema')!r} (want {LATENCY_SCHEMA!r})"]
    for key in LATENCY_REQUIRED:
        if key not in doc:
            failures.append(f"required field '{key}' missing")
    des = doc.get("des", {})
    for key in LATENCY_DES_REQUIRED:
        if key not in des:
            failures.append(f"required field 'des.{key}' missing")
    stamp = doc.get("stamp_ab", {})
    for key in LATENCY_STAMP_REQUIRED:
        if key not in stamp:
            failures.append(f"required field 'stamp_ab.{key}' missing")
    if failures:
        return failures  # value checks below assume the fields exist

    if doc["conservation_ok"] is not True:
        failures.append("conservation_ok is not true: the DES leaked or double-counted packets")
    if doc["checks_failed"] != 0:
        failures.append(f"bench reported {doc['checks_failed']} failed internal check(s)")

    # §6.2 ordering: direct (2 hops) must beat detoured VLB (3 hops), and
    # both must agree with the closed-form estimator.
    if float(des["direct_mean_us"]) >= float(des["via_mean_us"]):
        failures.append(
            f"des.direct_mean_us {des['direct_mean_us']:.2f} >= "
            f"des.via_mean_us {des['via_mean_us']:.2f} "
            "(2-hop direct must be faster than 3-hop VLB)"
        )
    for key in ("rel_err_direct", "rel_err_via"):
        if abs(float(des[key])) > LATENCY_MAX_REL_ERR:
            failures.append(
                f"des.{key} {float(des[key]):.3f} exceeds {LATENCY_MAX_REL_ERR} "
                "(DES disagrees with the EstimateLatency closed form)"
            )
    if float(des["direct_cpu_wait_us"]) >= 1.0:
        failures.append(
            f"des.direct_cpu_wait_us {float(des['direct_cpu_wait_us']):.3f} >= 1.0 "
            "(light-load run queued; the mean is no longer pure path cost)"
        )

    # Queueing knee: percentile grows with offered load across >= 3 points
    # (a --smoke dump runs only the 2-point curve; p99 ordering still binds).
    sweep = doc.get("sweep", [])
    min_points = 2 if doc.get("smoke") else LATENCY_MIN_SWEEP_POINTS
    if len(sweep) < min_points:
        failures.append(
            f"sweep has {len(sweep)} points (< {min_points}); "
            "the latency-vs-load curve needs a body and a knee"
        )
    else:
        bursts = [int(pt.get("burst", 0)) for pt in sweep]
        if bursts != sorted(bursts) or len(set(bursts)) != len(bursts):
            failures.append(f"sweep bursts {bursts} not strictly increasing")
        for pt in sweep:
            if int(pt.get("count", 0)) <= 0:
                failures.append(f"sweep point burst={pt.get('burst')} observed no packets")
        p99s = [float(pt.get("p99_us", 0.0)) for pt in sweep]
        if p99s and p99s[-1] <= p99s[0]:
            failures.append(
                f"sweep p99 did not grow with load ({p99s[0]:.2f} -> {p99s[-1]:.2f} us); "
                "no queueing knee"
            )

    # Stamp A/B: overhead under the bar plus the host's measured same-code
    # resolution (the A/A spread) — the same noise-aware gate the bench uses.
    overhead = float(stamp["overhead_frac"])
    bar = float(stamp["overhead_bar"])
    aa = abs(float(stamp["aa_frac"]))
    if overhead >= bar + aa:
        failures.append(
            f"stamp_ab.overhead_frac {overhead:.4f} >= bar {bar:.2f} + A/A spread {aa:.4f} "
            "(ingress stamping costs more than the budget)"
        )
    for key in ("off_cycles_per_pkt", "on_cycles_per_pkt"):
        if float(stamp[key]) <= 0:
            failures.append(f"stamp_ab.{key} is not positive")
    return failures


# bench_fig8 compiled-vs-interpreted A/B contract: compiling classifier
# chains into match programs must never make a workload slower. Both modes
# run interleaved on the same host, so the only allowance is cycle-count
# noise, not machine variance.
COMPILED_AB_SCHEMA = "rb.bench_fig8_compiled_ab.v1"
COMPILED_AB_MAX_RATIO = 1.10  # compiled may cost at most 10% more than interpreted
COMPILED_AB_REQUIRED = ("interpreted_cycles_per_packet", "compiled_cycles_per_packet")


def check_compiled_ab(doc, max_ratio=COMPILED_AB_MAX_RATIO):
    """Structural + no-slower checks for one compiled A/B JSON document."""
    failures = []
    if doc.get("schema") != COMPILED_AB_SCHEMA:
        return [f"unexpected schema {doc.get('schema')!r} (want {COMPILED_AB_SCHEMA!r})"]
    workloads = doc.get("workloads", {})
    if not workloads:
        return ["no workloads in A/B document"]
    for wname, w in sorted(workloads.items()):
        missing = [k for k in COMPILED_AB_REQUIRED if k not in w]
        if missing:
            failures.append(f"workloads.{wname}: missing field(s) {missing}")
            continue
        interp = float(w["interpreted_cycles_per_packet"])
        comp = float(w["compiled_cycles_per_packet"])
        if interp <= 0 or comp <= 0:
            failures.append(
                f"workloads.{wname}: non-positive cycles/packet "
                f"(interpreted {interp:.1f}, compiled {comp:.1f})"
            )
        elif comp > interp * max_ratio:
            failures.append(
                f"workloads.{wname}: compiled {comp:.1f} cyc/pkt vs interpreted "
                f"{interp:.1f} (x{comp / interp:.2f} > x{max_ratio:.2f} allowed; "
                "the compiled path must not be slower)"
            )
    return failures


# bench_stateful structural contract (§17): the robustness gates the
# bench itself enforces, re-checked on the dump so a soak/CI consumer
# cannot silently run a gutted bench.
STATEFUL_SCHEMA = "rb.bench_stateful.v1"
STATEFUL_REQUIRED = ("seed", "smoke", "table", "overload", "ablation", "failover",
                     "conservation_ok", "checks_failed")
STATEFUL_TABLE_REQUIRED = ("concurrent_flows", "insert_fail", "evictions", "probe_p99",
                           "max_probe_buckets", "ns_per_op")
STATEFUL_OVERLOAD_REQUIRED = ("offered", "forwarded", "evict_watermark", "table_full_drops",
                              "strict_forwarded", "strict_table_full_drops", "ports_conserved")
STATEFUL_ABLATION_REQUIRED = ("shared_ns_per_op", "scr_ns_per_op", "scr_overhead_frac",
                              "replays", "replayed_records", "checkpoint_period",
                              "replay_bound_ok")
STATEFUL_FAILOVER_REQUIRED = ("scr_preserved", "shared_preserved", "lost_flows_shared")
STATEFUL_MIN_FLOWS = 1_000_000  # full-run concurrent-flow floor (--smoke exempt)


def check_stateful(doc):
    """Structural + invariant checks for one bench_stateful JSON document."""
    failures = []
    if doc.get("schema") != STATEFUL_SCHEMA:
        return [f"unexpected schema {doc.get('schema')!r} (want {STATEFUL_SCHEMA!r})"]
    for key in STATEFUL_REQUIRED:
        if key not in doc:
            failures.append(f"required field '{key}' missing")
    for section, required in (
        ("table", STATEFUL_TABLE_REQUIRED),
        ("overload", STATEFUL_OVERLOAD_REQUIRED),
        ("ablation", STATEFUL_ABLATION_REQUIRED),
        ("failover", STATEFUL_FAILOVER_REQUIRED),
    ):
        body = doc.get(section, {})
        for key in required:
            if key not in body:
                failures.append(f"required field '{section}.{key}' missing")
    if failures:
        return failures  # value checks below assume the fields exist

    if doc["conservation_ok"] is not True:
        failures.append("conservation_ok is not true: the DES leaked or double-counted packets")
    if doc["checks_failed"] != 0:
        failures.append(f"bench reported {doc['checks_failed']} failed internal check(s)")

    table = doc["table"]
    if not doc.get("smoke") and int(table["concurrent_flows"]) < STATEFUL_MIN_FLOWS:
        failures.append(
            f"table.concurrent_flows {table['concurrent_flows']} < {STATEFUL_MIN_FLOWS} "
            "(a full run must hold a million concurrent flows)"
        )
    if int(table["insert_fail"]) != 0:
        failures.append(f"table.insert_fail {table['insert_fail']} != 0 under churn")
    p99 = int(table["probe_p99"])
    window = int(table["max_probe_buckets"])
    if not 1 <= p99 <= window:
        failures.append(f"table.probe_p99 {p99} outside the bounded window [1, {window}]")
    if float(table["ns_per_op"]) <= 0:
        failures.append("table.ns_per_op is not positive")

    ov = doc["overload"]
    if int(ov["forwarded"]) != int(ov["offered"]):
        failures.append(
            f"overload.forwarded {ov['forwarded']} != offered {ov['offered']} "
            "(eviction policy stopped forwarding under 2x overload)"
        )
    if int(ov["evict_watermark"]) <= 0:
        failures.append("overload.evict_watermark is 0: watermark eviction never engaged")
    if int(ov["table_full_drops"]) != 0:
        failures.append(
            f"overload.table_full_drops {ov['table_full_drops']} != 0 with eviction on"
        )
    if int(ov["strict_table_full_drops"]) <= 0:
        failures.append(
            "overload.strict_table_full_drops is 0: the strict policy must surface "
            "overload in the flow_table_full bucket"
        )
    if int(ov["strict_forwarded"]) + int(ov["strict_table_full_drops"]) != int(ov["offered"]):
        failures.append("strict policy: forwarded + flow_table_full drops != offered")
    if ov["ports_conserved"] is not True:
        failures.append("overload.ports_conserved is not true: evicted mappings leaked ports")

    abl = doc["ablation"]
    for key in ("shared_ns_per_op", "scr_ns_per_op"):
        if float(abl[key]) <= 0:
            failures.append(f"ablation.{key} is not positive")
    if abl["replay_bound_ok"] is not True:
        failures.append(
            f"ablation replay unbounded: {abl['replayed_records']} records > "
            f"{abl['replays']} replays x checkpoint_period {abl['checkpoint_period']}"
        )

    fo = doc["failover"]
    if float(fo["scr_preserved"]) != 1.0:
        failures.append(
            f"failover.scr_preserved {fo['scr_preserved']} != 1.0 "
            "(SCR must reconstruct every established mapping byte-identically)"
        )
    if float(fo["shared_preserved"]) >= 1.0:
        failures.append(
            f"failover.shared_preserved {fo['shared_preserved']} >= 1.0 "
            "(the shared baseline must demonstrably lose the dead node's flows)"
        )
    if int(fo["lost_flows_shared"]) <= 0:
        failures.append("failover.lost_flows_shared is 0 (nothing was at stake)")
    return failures


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load(path):
    doc = load_json(path)
    if doc.get("schema") != "rb.bench_fig9_breakdown.v1":
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def self_test():
    """Verifies the checker passes an identical run and fails a 2x slowdown."""
    base = {
        "schema": "rb.bench_fig9_breakdown.v1",
        "workloads": {
            "fwd_64": {
                "pipeline_cycles_per_packet": 800.0,
                "attribution_coverage": 0.99,
                "scopes": {
                    "netdev/tx": {"cycles_per_packet": 115.0, "share": 0.14},
                    "phase/lpm_lookup": {"cycles_per_packet": 100.0, "share": 0.12},
                    "tiny/noise": {"cycles_per_packet": 10.0, "share": 0.01},
                    "harness/inject": {"cycles_per_packet": 40.0, "share": 0.05},
                    "harness/drain": {"cycles_per_packet": 24.0, "share": 0.03},
                },
            }
        },
    }
    # 1. identical run passes
    f, _ = compare(base, base, cycles_tol=1.5)
    assert not f, f"identical run flagged: {f}"
    # 2. injected 2x slowdown fails under the self-test tolerance of 1.5x
    slow = json.loads(json.dumps(base))
    slow["workloads"]["fwd_64"]["pipeline_cycles_per_packet"] = 1600.0
    f, _ = compare(base, slow, cycles_tol=1.5)
    assert any("pipeline_cycles_per_packet" in x for x in f), f"2x slowdown not caught: {f}"
    # 3. coverage collapse fails regardless of tolerance
    bad_cov = json.loads(json.dumps(base))
    bad_cov["workloads"]["fwd_64"]["attribution_coverage"] = 0.5
    f, _ = compare(base, bad_cov, cycles_tol=10.0)
    assert any("attribution_coverage" in x for x in f), f"coverage collapse not caught: {f}"
    # 4. a dominant scope disappearing fails; a tiny one may come and go
    missing = json.loads(json.dumps(base))
    del missing["workloads"]["fwd_64"]["scopes"]["netdev/tx"]
    f, _ = compare(base, missing, cycles_tol=1.5)
    assert any("netdev/tx" in x for x in f), f"missing scope not caught: {f}"
    # 5. a missing workload fails
    empty = {"schema": base["schema"], "workloads": {}}
    f, _ = compare(base, empty, cycles_tol=1.5)
    assert any("fwd_64" in x for x in f), f"missing workload not caught: {f}"
    # 6. a modest speedup passes; an extreme one fails as "baseline stale"
    fast = json.loads(json.dumps(base))
    fast["workloads"]["fwd_64"]["pipeline_cycles_per_packet"] = 400.0
    f, _ = compare(base, fast, cycles_tol=1.5)
    assert not f, f"modest speedup flagged: {f}"
    very_fast = json.loads(json.dumps(base))
    very_fast["workloads"]["fwd_64"]["pipeline_cycles_per_packet"] = 100.0
    f, _ = compare(base, very_fast, cycles_tol=1.5, improvement_tol=4.0)
    assert any("baseline stale" in x for x in f), f"stale baseline not caught: {f}"
    # Scope-level speedups never fail, no matter how large.
    scope_fast = json.loads(json.dumps(base))
    scope_fast["workloads"]["fwd_64"]["scopes"]["netdev/tx"]["cycles_per_packet"] = 1.0
    f, _ = compare(base, scope_fast, cycles_tol=1.5, improvement_tol=4.0)
    assert not f, f"scope speedup flagged: {f}"
    # 7. a dominant scope slowing down fails; a sub-threshold-share scope
    # slowing down is noise and passes
    scope_slow = json.loads(json.dumps(base))
    scope_slow["workloads"]["fwd_64"]["scopes"]["netdev/tx"]["cycles_per_packet"] = 500.0
    f, _ = compare(base, scope_slow, cycles_tol=1.5)
    assert any("netdev/tx" in x for x in f), f"dominant scope slowdown not caught: {f}"
    noise_slow = json.loads(json.dumps(base))
    noise_slow["workloads"]["fwd_64"]["scopes"]["tiny/noise"]["cycles_per_packet"] = 500.0
    f, _ = compare(base, noise_slow, cycles_tol=1.5)
    assert not f, f"sub-share scope noise flagged: {f}"
    # 8. harness self-share ceiling: the healthy baseline (0.08 summed) is
    # under the 0.15 default; a run where inject balloons fails even though
    # each individual harness scope moved less than the scope_share abs
    # tolerance would allow
    taxed = json.loads(json.dumps(base))
    taxed["workloads"]["fwd_64"]["scopes"]["harness/inject"]["share"] = 0.10
    taxed["workloads"]["fwd_64"]["scopes"]["harness/drain"]["share"] = 0.07
    f, _ = compare(base, taxed, cycles_tol=1.5)
    assert any("harness/* self-share" in x for x in f), f"harness tax not caught: {f}"
    # The ceiling binds on the current run alone: a baseline that already
    # exceeds it does not grandfather the current run in
    taxed_base = json.loads(json.dumps(taxed))
    f, _ = compare(taxed_base, taxed, cycles_tol=1.5)
    assert any("harness/* self-share" in x for x in f), f"grandfathered harness tax: {f}"
    # And a custom ceiling is honored
    f, _ = compare(base, base, cycles_tol=1.5, harness_share_max=0.05)
    assert any("harness/* self-share" in x for x in f), f"custom ceiling ignored: {f}"
    # Per-workload overrides: Abilene's byte-scaled harness cost gets its
    # documented 0.25 ceiling (0.22 passes), which still binds (0.30 fails).
    abilene = json.loads(json.dumps(base))
    abilene["workloads"]["fwd_abilene"] = abilene["workloads"].pop("fwd_64")
    abilene["workloads"]["fwd_abilene"]["scopes"]["harness/inject"]["share"] = 0.17
    abilene["workloads"]["fwd_abilene"]["scopes"]["harness/drain"]["share"] = 0.05
    f, _ = compare(abilene, abilene, cycles_tol=1.5)
    assert not f, f"override ceiling not honored for fwd_abilene: {f}"
    over = json.loads(json.dumps(abilene))
    over["workloads"]["fwd_abilene"]["scopes"]["harness/inject"]["share"] = 0.25
    f, _ = compare(abilene, over, cycles_tol=1.5)
    assert any("harness/* self-share" in x for x in f), f"override ceiling toothless: {f}"

    # 9. bench_overload structural checks: a healthy dump passes; broken
    # conservation, an unfair admission run, an inverted on/off ordering,
    # and a dropped required field each fail.
    overload = {
        "schema": OVERLOAD_SCHEMA,
        "seed": 7,
        "nodes": 4,
        "fairness": {
            "ratio_admission_on": 1.04,
            "ratio_admission_off": 1.53,
            "per_port_gbps_on": [0.64, 0.62, 0.62, 0.62],
            "per_port_gbps_off": [1.36, 0.89, 0.94, 0.91],
        },
        "goodput": {"hot_on_gbps": 2.5, "hot_off_gbps": 4.1, "uniform_on_gbps": 9.9},
        "conservation_ok": True,
        "checks_failed": 0,
    }
    assert not check_overload(overload), f"healthy overload dump flagged: {check_overload(overload)}"
    leaky = json.loads(json.dumps(overload))
    leaky["conservation_ok"] = False
    f = check_overload(leaky)
    assert any("conservation" in x for x in f), f"conservation break not caught: {f}"
    unfair = json.loads(json.dumps(overload))
    unfair["fairness"]["ratio_admission_on"] = 1.5
    f = check_overload(unfair)
    assert any("ratio_admission_on" in x for x in f), f"unfair admission not caught: {f}"
    inverted = json.loads(json.dumps(overload))
    inverted["fairness"]["ratio_admission_off"] = 1.0
    f = check_overload(inverted)
    assert any("less fair" in x for x in f), f"inverted on/off fairness not caught: {f}"
    gutted = json.loads(json.dumps(overload))
    del gutted["goodput"]["uniform_on_gbps"]
    f = check_overload(gutted)
    assert any("uniform_on_gbps" in x for x in f), f"missing goodput field not caught: {f}"
    wrong_schema = {"schema": "rb.bench_failover.v1"}
    f = check_overload(wrong_schema)
    assert any("schema" in x for x in f), f"wrong schema not caught: {f}"

    # 10. bench_latency structural checks: a healthy dump passes; an
    # inverted direct/via ordering, an estimator disagreement, a flat
    # sweep, an over-budget stamp, and a dropped field each fail.
    latency = {
        "schema": LATENCY_SCHEMA,
        "seed": 7,
        "estimator": {"cluster_2hop_us": 47.68, "cluster_3hop_us": 71.52},
        "des": {
            "direct_mean_us": 47.81,
            "via_mean_us": 72.19,
            "rel_err_direct": 0.003,
            "rel_err_via": 0.009,
            "direct_cpu_wait_us": 0.0,
        },
        "sweep": [
            {"burst": 16, "count": 65536, "p99_us": 5.0},
            {"burst": 64, "count": 65536, "p99_us": 20.0},
            {"burst": 256, "count": 65536, "p99_us": 60.0},
            {"burst": 1024, "count": 64731, "p99_us": 170.0},
        ],
        "stamp_ab": {
            "off_cycles_per_pkt": 385.2,
            "on_cycles_per_pkt": 389.8,
            "overhead_frac": 0.012,
            "aa_frac": 0.011,
            "overhead_bar": 0.02,
        },
        "conservation_ok": True,
        "checks_failed": 0,
    }
    assert not check_latency(latency), f"healthy latency dump flagged: {check_latency(latency)}"
    inverted_lat = json.loads(json.dumps(latency))
    inverted_lat["des"]["via_mean_us"] = 40.0
    f = check_latency(inverted_lat)
    assert any("faster than 3-hop" in x for x in f), f"inverted direct/via not caught: {f}"
    disagree = json.loads(json.dumps(latency))
    disagree["des"]["rel_err_via"] = 0.4
    f = check_latency(disagree)
    assert any("rel_err_via" in x for x in f), f"estimator disagreement not caught: {f}"
    flat = json.loads(json.dumps(latency))
    for pt in flat["sweep"]:
        pt["p99_us"] = 5.0
    f = check_latency(flat)
    assert any("knee" in x for x in f), f"flat sweep not caught: {f}"
    costly = json.loads(json.dumps(latency))
    costly["stamp_ab"]["overhead_frac"] = 0.05
    f = check_latency(costly)
    assert any("overhead_frac" in x for x in f), f"over-budget stamp not caught: {f}"
    # The A/A spread widens the gate: 3% overhead passes when the host
    # cannot resolve same-code runs better than 2%.
    noisy = json.loads(json.dumps(latency))
    noisy["stamp_ab"]["overhead_frac"] = 0.03
    noisy["stamp_ab"]["aa_frac"] = 0.02
    assert not check_latency(noisy), f"A/A-widened gate not honored: {check_latency(noisy)}"
    queued = json.loads(json.dumps(latency))
    queued["des"]["direct_cpu_wait_us"] = 3.0
    f = check_latency(queued)
    assert any("cpu_wait" in x for x in f), f"queued light-load run not caught: {f}"
    gutted_lat = json.loads(json.dumps(latency))
    del gutted_lat["des"]["rel_err_direct"]
    f = check_latency(gutted_lat)
    assert any("rel_err_direct" in x for x in f), f"missing des field not caught: {f}"
    short_sweep = json.loads(json.dumps(latency))
    short_sweep["sweep"] = short_sweep["sweep"][:2]
    f = check_latency(short_sweep)
    assert any("sweep has 2 points" in x for x in f), f"short sweep not caught: {f}"
    # ... but a --smoke dump legitimately runs only the 2-point curve.
    smoke_sweep = json.loads(json.dumps(short_sweep))
    smoke_sweep["smoke"] = True
    assert not check_latency(smoke_sweep), f"smoke 2-point sweep flagged: {check_latency(smoke_sweep)}"
    f = check_latency({"schema": "rb.bench_overload.v1"})
    assert any("schema" in x for x in f), f"wrong latency schema not caught: {f}"

    # --- compiled-vs-interpreted A/B contract ---
    ab = {
        "schema": "rb.bench_fig8_compiled_ab.v1",
        "cycle_source": "rdtscp",
        "workloads": {
            "fwd_64": {
                "interpreted_cycles_per_packet": 300.0,
                "compiled_cycles_per_packet": 290.0,
                "interpreted_mpps": 10.0,
                "compiled_mpps": 10.3,
            },
            "rtr_64": {
                "interpreted_cycles_per_packet": 400.0,
                "compiled_cycles_per_packet": 350.0,
                "interpreted_mpps": 7.5,
                "compiled_mpps": 8.6,
            },
        },
    }
    assert not check_compiled_ab(ab), f"healthy A/B dump flagged: {check_compiled_ab(ab)}"
    slow = json.loads(json.dumps(ab))
    slow["workloads"]["rtr_64"]["compiled_cycles_per_packet"] = 500.0
    f = check_compiled_ab(slow)
    assert any("rtr_64" in x and "slower" in x for x in f), f"slower compiled path not caught: {f}"
    # Within the 10% noise allowance: 10.09x of interpreted passes.
    near = json.loads(json.dumps(ab))
    near["workloads"]["fwd_64"]["compiled_cycles_per_packet"] = 300.0 * 1.09
    assert not check_compiled_ab(near), f"within-noise A/B flagged: {check_compiled_ab(near)}"
    f = check_compiled_ab({"schema": "rb.bench_overload.v1", "workloads": {}})
    assert any("schema" in x for x in f), f"wrong A/B schema not caught: {f}"
    f = check_compiled_ab({"schema": "rb.bench_fig8_compiled_ab.v1", "workloads": {}})
    assert any("no workloads" in x for x in f), f"empty A/B dump not caught: {f}"
    gutted_ab = json.loads(json.dumps(ab))
    del gutted_ab["workloads"]["fwd_64"]["compiled_cycles_per_packet"]
    f = check_compiled_ab(gutted_ab)
    assert any("missing field" in x for x in f), f"missing A/B field not caught: {f}"
    zeroed = json.loads(json.dumps(ab))
    zeroed["workloads"]["fwd_64"]["interpreted_cycles_per_packet"] = 0.0
    f = check_compiled_ab(zeroed)
    assert any("non-positive" in x for x in f), f"zero cycles/packet not caught: {f}"

    # 11. bench_stateful structural checks: a healthy dump passes; each
    # broken robustness gate fails.
    stateful = {
        "schema": STATEFUL_SCHEMA,
        "seed": 11,
        "smoke": False,
        "table": {
            "concurrent_flows": 1049349,
            "ops": 5242880,
            "insert_fail": 0,
            "evictions": 582,
            "probe_p99": 3,
            "max_probe_buckets": 8,
            "load_factor": 0.5,
            "ns_per_op": 180.9,
        },
        "overload": {
            "offered": 8192,
            "forwarded": 8192,
            "evict_watermark": 4546,
            "table_full_drops": 0,
            "strict_forwarded": 4096,
            "strict_table_full_drops": 4096,
            "ports_conserved": True,
        },
        "ablation": {
            "shared_ns_per_op": 36.2,
            "scr_ns_per_op": 47.7,
            "scr_overhead_frac": 0.317,
            "replay_ms": 0.17,
            "replays": 1,
            "replayed_records": 4096,
            "checkpoint_period": 4096,
            "replay_bound_ok": True,
        },
        "failover": {
            "scr_preserved": 1.0,
            "shared_preserved": 0.75,
            "lost_flows_shared": 16,
            "state_unavailable": 0,
        },
        "conservation_ok": True,
        "checks_failed": 0,
    }
    assert not check_stateful(stateful), f"healthy stateful dump flagged: {check_stateful(stateful)}"
    # The million-flow floor binds on full runs and is waived for --smoke.
    small = json.loads(json.dumps(stateful))
    small["table"]["concurrent_flows"] = 32814
    f = check_stateful(small)
    assert any("concurrent_flows" in x for x in f), f"under-populated table not caught: {f}"
    small["smoke"] = True
    assert not check_stateful(small), f"smoke run held to the full floor: {check_stateful(small)}"
    failed_insert = json.loads(json.dumps(stateful))
    failed_insert["table"]["insert_fail"] = 12
    f = check_stateful(failed_insert)
    assert any("insert_fail" in x for x in f), f"insert failures not caught: {f}"
    long_probe = json.loads(json.dumps(stateful))
    long_probe["table"]["probe_p99"] = 9
    f = check_stateful(long_probe)
    assert any("probe_p99" in x for x in f), f"unbounded probe not caught: {f}"
    stalled = json.loads(json.dumps(stateful))
    stalled["overload"]["forwarded"] = 6000
    f = check_stateful(stalled)
    assert any("stopped forwarding" in x for x in f), f"forwarding stall not caught: {f}"
    no_evict = json.loads(json.dumps(stateful))
    no_evict["overload"]["evict_watermark"] = 0
    f = check_stateful(no_evict)
    assert any("never engaged" in x for x in f), f"missing watermark eviction not caught: {f}"
    leaky_ports = json.loads(json.dumps(stateful))
    leaky_ports["overload"]["ports_conserved"] = False
    f = check_stateful(leaky_ports)
    assert any("leaked ports" in x for x in f), f"port leak not caught: {f}"
    lossy_scr = json.loads(json.dumps(stateful))
    lossy_scr["failover"]["scr_preserved"] = 0.94
    f = check_stateful(lossy_scr)
    assert any("scr_preserved" in x for x in f), f"lossy SCR failover not caught: {f}"
    too_good = json.loads(json.dumps(stateful))
    too_good["failover"]["shared_preserved"] = 1.0
    too_good["failover"]["lost_flows_shared"] = 0
    f = check_stateful(too_good)
    assert any("shared_preserved" in x for x in f), f"lossless shared baseline not caught: {f}"
    unbounded = json.loads(json.dumps(stateful))
    unbounded["ablation"]["replay_bound_ok"] = False
    f = check_stateful(unbounded)
    assert any("replay unbounded" in x for x in f), f"unbounded replay not caught: {f}"
    gutted_st = json.loads(json.dumps(stateful))
    del gutted_st["overload"]["strict_table_full_drops"]
    f = check_stateful(gutted_st)
    assert any("strict_table_full_drops" in x for x in f), f"missing stateful field not caught: {f}"
    f = check_stateful({"schema": "rb.bench_overload.v1"})
    assert any("schema" in x for x in f), f"wrong stateful schema not caught: {f}"

    print("self-test: 52/52 checks passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed baseline JSON")
    ap.add_argument("--current", help="freshly produced JSON")
    ap.add_argument(
        "--cycles-tolerance",
        type=float,
        default=3.0,
        help="allowed cycles/packet growth ratio (default 3.0: cross-machine safe)",
    )
    ap.add_argument(
        "--improvement-tolerance",
        type=float,
        default=4.0,
        help="allowed workload cycles/packet shrink ratio before the committed "
        "baseline is declared stale (default 4.0)",
    )
    ap.add_argument(
        "--harness-share-max",
        type=float,
        default=HARNESS_SHARE_MAX,
        help="max summed self-share of harness/* scopes per workload in the "
        f"current run (default {HARNESS_SHARE_MAX}; the documented per-"
        "workload overrides in HARNESS_SHARE_MAX_BY_WORKLOAD take precedence)",
    )
    ap.add_argument("--self-test", action="store_true", help="run the built-in checks and exit")
    ap.add_argument(
        "--overload",
        metavar="FILE",
        help="validate a bench_overload JSON dump structurally and exit",
    )
    ap.add_argument(
        "--latency",
        metavar="FILE",
        help="validate a bench_latency JSON dump structurally and exit",
    )
    ap.add_argument(
        "--compiled-ab",
        metavar="FILE",
        help="validate a bench_fig8 compiled-vs-interpreted A/B JSON dump and exit",
    )
    ap.add_argument(
        "--stateful",
        metavar="FILE",
        help="validate a bench_stateful JSON dump structurally and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.overload:
        failures = check_overload(load_json(args.overload))
        if failures:
            print(f"{len(failures)} problem(s) in {args.overload}:")
            for line in failures:
                print(f"  FAIL: {line}")
            return 1
        print(f"{args.overload}: bench_overload structure and fairness contract ok")
        return 0
    if args.latency:
        failures = check_latency(load_json(args.latency))
        if failures:
            print(f"{len(failures)} problem(s) in {args.latency}:")
            for line in failures:
                print(f"  FAIL: {line}")
            return 1
        print(f"{args.latency}: bench_latency structure and §6.2 contract ok")
        return 0
    if args.compiled_ab:
        failures = check_compiled_ab(load_json(args.compiled_ab))
        if failures:
            print(f"{len(failures)} problem(s) in {args.compiled_ab}:")
            for line in failures:
                print(f"  FAIL: {line}")
            return 1
        print(f"{args.compiled_ab}: compiled classifiers no slower than interpreted "
              f"(x{COMPILED_AB_MAX_RATIO:.2f} gate) on every workload")
        return 0
    if args.stateful:
        failures = check_stateful(load_json(args.stateful))
        if failures:
            print(f"{len(failures)} problem(s) in {args.stateful}:")
            for line in failures:
                print(f"  FAIL: {line}")
            return 1
        print(f"{args.stateful}: bench_stateful structure and §17 robustness contract ok")
        return 0
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --self-test)")

    baseline = load(args.baseline)
    current = load(args.current)
    failures, infos = compare(baseline, current, args.cycles_tolerance,
                              args.improvement_tolerance, args.harness_share_max)

    for line in infos:
        print(f"  ok: {line}")
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print(f"\nno regressions vs {args.baseline} (tolerance x{args.cycles_tolerance:.1f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
