// rb_chaos: randomized chaos-soak harness for the cluster simulator and
// the element graph. One seed drives everything; the seed is printed
// first so any failure is replayable exactly (`rb_chaos --seed N`).
//
// Each DES episode randomizes the cluster shape (node count, flowlets,
// resequencer, admission control, queue capacities, NIC modeling), then
// drives it with a piecewise-constant load profile (random surge factors
// per window) and — on odd episodes — a random node failure/repair
// schedule (FailureSchedule::RandomNodeFailures). Invariants checked:
//
//   * conservation, mid-run after every load window: offered ==
//     delivered + Σ drop buckets + slots in flight + resequencer-held;
//   * conservation, end of run: AuditConservation (drop-accounting audit
//     incl. the per-window timeline cross-check);
//   * reordering: on "clean" episodes (flowlets on, no failures, no
//     resequencer, load <= 0.85x) delivered flows must stay in order up
//     to the flowlet-δ guarantee;
//   * telemetry: registry counters are monotone across episode
//     snapshots (a counter that ever decreases is a reset/Set bug).
//
// Element-graph episodes build a FromDevice -> Queue -> ToDevice chain
// over a NicPort with randomized queue capacity, watermark backpressure,
// and CoDel (driven by a fake clock), pump it with random interleavings
// of poll/drain, and check exact packet conservation plus a leak-free
// pool (in_use() == 0 once everything is drained).
//
// Stateful episodes (DESIGN.md §17) come in two flavors. NAT episodes
// drive a randomized Nat (capacity, watermarks, eviction policy, idle
// timeout, live watermark retunes) with heavy churn plus stray inbound
// replies, and check flow-count conservation (occupancy == inserts -
// evictions - erases), port conservation (mappings == occupancy — a
// double-eviction would double-free a port and break this), exact
// packet accounting across the drop buckets, and a leak-free pool.
// Plane episodes drive a StatefulPlane twin-run (same Apply sequence,
// one run with a random mid-run node kill): SCR mode must end with a
// byte-identical mapping snapshot and a replay tail bounded by the
// checkpoint period; the shared baseline must lose exactly the dead
// node's flows and nothing else.
//
// Exit status: 0 iff no invariant was violated.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "click/elements/from_device.hpp"
#include "click/elements/nat.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "click/router.hpp"
#include "flow/stateful_plane.hpp"
#include "telemetry/handler.hpp"
#include "workload/flows.hpp"
#include "cluster/des.hpp"
#include "cluster/failure.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "workload/traffic_matrix.hpp"

namespace {

int g_violations = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "VIOLATION: %s\n", what.c_str());
    g_violations++;
  }
}

// Injectable clock for CoDel in the element-graph episodes.
double g_fake_now = 0;
double FakeClock() { return g_fake_now; }

// ---------------------------------------------------------------------
// DES episodes
// ---------------------------------------------------------------------

struct DesEpisodePlan {
  rb::ClusterConfig cfg;
  uint32_t pkt_bytes = 300;
  std::vector<double> window_factors;  // offered load per window, x ext rate
  int tm_kind = 0;                     // 0 uniform, 1 hotspot, 2 single-input
  bool with_failures = false;
  bool clean = false;  // reorder-invariant episode
};

DesEpisodePlan PlanDesEpisode(uint64_t seed, int episode, double duration) {
  rb::Rng rng(seed * 1000003ULL + static_cast<uint64_t>(episode) * 7919ULL + 1);
  DesEpisodePlan plan;
  const uint16_t kNodeChoices[] = {2, 3, 4, 6, 8};
  uint16_t n = kNodeChoices[rng.NextBounded(5)];

  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.num_nodes = n;
  cfg.vlb.num_nodes = n;
  cfg.seed = seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(episode + 1));
  cfg.vlb.flowlets = rng.NextDouble() < 0.7;
  cfg.resequence = rng.NextDouble() < 0.3;
  cfg.resequence_timeout = 2e-4 + rng.NextDouble() * 1e-3;
  cfg.model_nics = rng.NextDouble() < 0.5;
  const size_t kCpuCaps[] = {256, 1024, 4096};
  const size_t kRingCaps[] = {128, 512, 1024};
  cfg.cpu_queue_pkts = kCpuCaps[rng.NextBounded(3)];
  cfg.nic_queue_pkts = kRingCaps[rng.NextBounded(3)];
  cfg.link_queue_pkts = kRingCaps[rng.NextBounded(3)];
  cfg.ext_out_queue_pkts = kRingCaps[rng.NextBounded(3)];
  cfg.timeline_window = duration / 8;
  cfg.failure_detection_delay = 50e-6 + rng.NextDouble() * 200e-6;
  cfg.admission.enabled = rng.NextDouble() < 0.5;
  cfg.admission.capacity_bps = cfg.ext_rate_bps * (0.6 + 0.4 * rng.NextDouble());

  plan.with_failures = (episode % 2) == 1;
  if (plan.with_failures) {
    cfg.failures = rb::FailureSchedule::RandomNodeFailures(
        n, /*mtbf=*/duration * 0.6, /*mttr=*/duration * 0.2, /*horizon=*/duration,
        seed + static_cast<uint64_t>(episode));
  }

  // Every 4th episode is a "clean" run pinned to the regime where the
  // flowlet-δ no-reordering guarantee must hold: flowlets on, no
  // resequencer, no failures, light load.
  plan.clean = (episode % 4) == 0;
  if (plan.clean) {
    cfg.vlb.flowlets = true;
    cfg.resequence = false;
  }

  plan.pkt_bytes = 64 + rng.NextBounded(1437);
  int windows = 3 + static_cast<int>(rng.NextBounded(3));
  for (int w = 0; w < windows; ++w) {
    double f = plan.clean ? 0.2 + rng.NextDouble() * 0.65 : 0.3 + rng.NextDouble() * 2.2;
    plan.window_factors.push_back(f);
  }
  plan.tm_kind = plan.clean ? 0 : static_cast<int>(rng.NextBounded(3));
  plan.cfg = cfg;
  return plan;
}

void RunDesEpisode(uint64_t seed, int episode, double duration, bool verbose) {
  DesEpisodePlan plan = PlanDesEpisode(seed, episode, duration);
  const rb::ClusterConfig& cfg = plan.cfg;
  uint16_t n = cfg.num_nodes;

  rb::TrafficMatrix tm = rb::TrafficMatrix::Uniform(n);
  rb::Rng rng(seed * 48271ULL + static_cast<uint64_t>(episode) + 17);
  if (plan.tm_kind == 1) {
    tm = rb::TrafficMatrix::Hotspot(n, static_cast<uint16_t>(rng.NextBounded(n)),
                                    0.3 + rng.NextDouble() * 0.5);
  } else if (plan.tm_kind == 2) {
    std::vector<double> weights(n);
    for (double& w : weights) {
      w = 0.5 + rng.NextDouble();
    }
    tm = rb::TrafficMatrix::SingleInputWeighted(n, static_cast<uint16_t>(rng.NextBounded(n)),
                                                weights);
  }

  // Sampled path traces feed the per-episode latency-sanity invariant
  // checked after Finish (monotone hop stamps, wait <= residency).
  rb::telemetry::TracerConfig tcfg;
  tcfg.sample_every = 8;
  tcfg.max_traces = 1024;
  tcfg.seed = seed + static_cast<uint64_t>(episode) * 131ULL + 5;
  rb::telemetry::PathTracer tracer(tcfg);

  rb::ClusterSim sim(cfg);
  sim.BindTelemetry(&rb::telemetry::MetricRegistry::Global(), &tracer);

  if (verbose) {
    std::printf(
        "episode %d: n=%u pkt=%uB windows=%zu tm=%d flowlets=%d reseq=%d nics=%d adm=%d "
        "failures=%zu clean=%d\n",
        episode, n, plan.pkt_bytes, plan.window_factors.size(), plan.tm_kind,
        cfg.vlb.flowlets ? 1 : 0, cfg.resequence ? 1 : 0, cfg.model_nics ? 1 : 0,
        cfg.admission.enabled ? 1 : 0, cfg.failures.size(), plan.clean ? 1 : 0);
  }

  // Piecewise-constant Poisson load: every input active in the matrix
  // offers factor x ext_rate during its window. Injection times are
  // globally non-decreasing, as Inject requires.
  std::unordered_map<uint64_t, uint64_t> flow_seq;
  const uint32_t kFlowsPerPair = 64;
  double window_len = duration / static_cast<double>(plan.window_factors.size());
  std::vector<rb::SimTime> next_arrival(n, 0);
  for (size_t w = 0; w < plan.window_factors.size(); ++w) {
    double start = static_cast<double>(w) * window_len;
    double end = start + window_len;
    double rate = plan.window_factors[w] * cfg.ext_rate_bps;
    double mean_gap = static_cast<double>(plan.pkt_bytes) * 8.0 / rate;
    for (uint16_t i = 0; i < n; ++i) {
      next_arrival[i] = tm.InputActive(i) ? start + rng.NextExponential(mean_gap) : end;
    }
    while (true) {
      uint16_t src = 0;
      rb::SimTime t = end;
      for (uint16_t i = 0; i < n; ++i) {
        if (next_arrival[i] < t) {
          t = next_arrival[i];
          src = i;
        }
      }
      if (t >= end) {
        break;
      }
      uint16_t dst = tm.SampleOutput(src, &rng);
      uint64_t flow_id = (static_cast<uint64_t>(src) * n + dst) * kFlowsPerPair +
                         rng.NextBounded(kFlowsPerPair);
      sim.Inject(src, dst, flow_id, flow_seq[flow_id]++, plan.pkt_bytes, t);
      next_arrival[src] = t + rng.NextExponential(mean_gap);
    }

    // Mid-run conservation: every offered packet is delivered, dropped,
    // in flight (owns a DES slot), or parked in a resequencer buffer.
    uint64_t accounted = sim.current_delivered() + sim.current_drops().total() +
                         sim.in_flight() + sim.resequencer_held();
    Check(sim.current_offered() == accounted,
          rb::Format("episode %d window %zu: offered %llu != accounted %llu "
                     "(delivered %llu drops %llu in-flight %zu held %zu)",
                     episode, w, static_cast<unsigned long long>(sim.current_offered()),
                     static_cast<unsigned long long>(accounted),
                     static_cast<unsigned long long>(sim.current_delivered()),
                     static_cast<unsigned long long>(sim.current_drops().total()),
                     sim.in_flight(), sim.resequencer_held()));
  }

  rb::ClusterRunStats stats = sim.Finish(duration);
  std::string audit = rb::AuditConservation(stats);
  Check(audit.empty(), rb::Format("episode %d: %s", episode, audit.c_str()));
  Check(sim.in_flight() == 0,
        rb::Format("episode %d: %zu slots still in flight after Finish", episode,
                   sim.in_flight()));

  // Latency sanity over the sampled paths: simulated-time hop stamps must
  // be monotone, a hop's queueing wait cannot exceed its residency, and
  // end-to-end must equal the sum of hop deltas (telescoping by
  // construction today — the check guards future hop-recording bugs).
  size_t traces_checked = 0;
  for (const auto& tr : tracer.Traces()) {
    if (!tr.complete || tr.hops.size() < 2) {
      continue;
    }
    traces_checked++;
    double sum_deltas = 0;
    bool monotone = true;
    bool wait_ok = tr.hops.front().wait >= 0;
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      double delta = tr.hops[h].t - tr.hops[h - 1].t;
      monotone = monotone && delta >= 0;
      sum_deltas += delta;
      wait_ok = wait_ok && tr.hops[h].wait >= 0 && tr.hops[h].wait <= delta + 1e-9;
    }
    Check(monotone, rb::Format("episode %d: trace %llu has non-monotone hop timestamps",
                               episode, static_cast<unsigned long long>(tr.id)));
    Check(wait_ok,
          rb::Format("episode %d: trace %llu has a hop wait outside [0, residency]", episode,
                     static_cast<unsigned long long>(tr.id)));
    double e2e = tr.hops.back().t - tr.hops.front().t;
    Check(std::abs(e2e - sum_deltas) <= 1e-9,
          rb::Format("episode %d: trace %llu e2e %.9f != sum of hop deltas %.9f", episode,
                     static_cast<unsigned long long>(tr.id), e2e, sum_deltas));
  }
  Check(stats.delivered_packets < 64 || traces_checked > 0,
        rb::Format("episode %d: delivered %llu packets but completed no sampled traces",
                   episode, static_cast<unsigned long long>(stats.delivered_packets)));

  if (plan.clean) {
    // Flowlet-δ guarantee: light load, healthy mesh, flowlets pinned —
    // nothing may be delivered out of order (δ = 100ms >> episode).
    Check(stats.reorder_packet_fraction <= 0.01,
          rb::Format("episode %d (clean): reorder fraction %.4f beyond the flowlet-δ "
                     "guarantee",
                     episode, stats.reorder_packet_fraction));
  }
  if (verbose) {
    std::printf("episode %d: offered %llu delivered %llu drops %llu reorder %.4f\n", episode,
                static_cast<unsigned long long>(stats.offered_packets),
                static_cast<unsigned long long>(stats.delivered_packets),
                static_cast<unsigned long long>(stats.drops.total()),
                stats.reorder_packet_fraction);
  }
}

// ---------------------------------------------------------------------
// Element-graph episodes
// ---------------------------------------------------------------------

void RunGraphEpisode(uint64_t seed, int episode, bool verbose) {
  rb::Rng rng(seed ^ (0xd1342543de82ef95ULL * static_cast<uint64_t>(episode + 3)));

  rb::QueueOptions opt;
  opt.capacity = 16 + rng.NextBounded(241);
  if (rng.NextDouble() < 0.6) {
    opt.hi_watermark = std::max<size_t>(2, opt.capacity / 2 + rng.NextBounded(opt.capacity / 2));
  }
  if (rng.NextDouble() < 0.4) {
    opt.aqm = rb::AqmMode::kCoDel;
    opt.codel_target_s = 1e-3 * (0.5 + rng.NextDouble());
    opt.codel_interval_s = 20e-3;
  }

  rb::NicConfig ncfg;
  ncfg.ring_entries = 256;
  rb::NicPort nic(ncfg);
  rb::PacketPool pool(2048);

  rb::Router r;
  uint16_t burst = static_cast<uint16_t>(4 + rng.NextBounded(29));
  auto* from = r.Add<rb::FromDevice>(&nic, 0, burst, -1);
  auto* queue = r.Add<rb::QueueElement>(opt);
  auto* td = r.Add<rb::ToDevice>(&nic, 0, burst, -1);
  r.Connect(from, 0, queue, 0);
  r.Connect(queue, 0, td, 0);
  queue->set_clock(&FakeClock);
  r.Initialize();

  if (verbose) {
    std::printf("graph episode %d: cap=%zu hi=%zu aqm=%s burst=%u\n", episode, opt.capacity,
                opt.hi_watermark, opt.aqm == rb::AqmMode::kCoDel ? "codel" : "droptail", burst);
  }

  uint64_t injected = 0;
  uint64_t drained = 0;
  rb::Packet* out[64];
  auto drain_tx = [&]() {
    size_t got;
    while ((got = nic.DrainTx(out, 64)) > 0) {
      for (size_t i = 0; i < got; ++i) {
        pool.Free(out[i]);
      }
      drained += got;
    }
  };

  int sweeps = 200 + static_cast<int>(rng.NextBounded(200));
  for (int s = 0; s < sweeps; ++s) {
    // Random interleaving, biased so the queue periodically fills (blocks)
    // and drains (unblocks): inject a burst, poll a few times, drain less
    // often than we poll.
    uint32_t k = rng.NextBounded(24);
    for (uint32_t i = 0; i < k; ++i) {
      rb::Packet* p = pool.Alloc();
      if (p == nullptr) {
        break;
      }
      injected++;
      g_fake_now += rng.NextDouble() * 1e-4;
      nic.Deliver(p, g_fake_now);
    }
    uint32_t polls = 1 + rng.NextBounded(3);
    for (uint32_t i = 0; i < polls; ++i) {
      from->RunOnce();
    }
    if (rng.NextDouble() < 0.55) {
      g_fake_now += rng.NextDouble() * 2e-3;  // let CoDel see sojourn
      td->RunOnce();
      drain_tx();
    }
  }
  // Final drain: pump until quiescent.
  size_t idle = 0;
  while (idle < 3) {
    size_t moved = from->RunOnce() + td->RunOnce();
    drain_tx();
    g_fake_now += 1e-3;
    idle = moved == 0 ? idle + 1 : 0;
  }
  drain_tx();

  uint64_t rx_drops = nic.rx_counters().drops;
  uint64_t tx_drops = nic.tx_counters().drops;
  uint64_t q_drops = queue->drops();
  Check(injected == drained + rx_drops + q_drops + tx_drops,
        rb::Format("graph episode %d: injected %llu != drained %llu + rx_drops %llu + "
                   "queue_drops %llu + tx_drops %llu",
                   episode, static_cast<unsigned long long>(injected),
                   static_cast<unsigned long long>(drained),
                   static_cast<unsigned long long>(rx_drops),
                   static_cast<unsigned long long>(q_drops),
                   static_cast<unsigned long long>(tx_drops)));
  Check(pool.in_use() == 0,
        rb::Format("graph episode %d: %zu packets leaked (pool still charged)", episode,
                   pool.in_use()));
  if (verbose) {
    std::printf("graph episode %d: injected %llu drained %llu q_drops %llu (aqm %llu) "
                "blocked_events %llu throttled %llu\n",
                episode, static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(drained),
                static_cast<unsigned long long>(q_drops),
                static_cast<unsigned long long>(queue->aqm_drops()),
                static_cast<unsigned long long>(queue->blocked_events()),
                static_cast<unsigned long long>(from->throttled_polls()));
  }
}

// ---------------------------------------------------------------------
// Stateful episodes (DESIGN.md §17)
// ---------------------------------------------------------------------

// Sink that counts and recycles everything a Nat output pushes.
class CountingSink : public rb::Element {
 public:
  explicit CountingSink(rb::PacketPool* pool) : Element(1, 0), pool_(pool) {}
  const char* class_name() const override { return "CountingSink"; }
  void Push(int, rb::Packet* p) override {
    count++;
    pool_->Free(p);
  }
  uint64_t count = 0;

 private:
  rb::PacketPool* pool_;
};

// NAT flavor: randomized table shape + churn overload + stray replies.
void RunNatChaosEpisode(uint64_t seed, int episode, bool verbose) {
  rb::Rng rng(seed * 6364136223846793005ULL + static_cast<uint64_t>(episode) * 104729ULL + 9);

  rb::NatOptions opt;
  const size_t kCaps[] = {64, 256, 1024};
  opt.capacity = kCaps[rng.NextBounded(3)];
  opt.hi_watermark = 0.5 + rng.NextDouble() * 0.4;
  opt.lo_watermark = opt.hi_watermark * (0.3 + rng.NextDouble() * 0.5);
  opt.evict_on_full = rng.NextDouble() < 0.7;
  if (!opt.evict_on_full && rng.NextDouble() < 0.5) {
    opt.hi_watermark = 1.0;  // strict table: drops, never eviction
    opt.lo_watermark = 0.5;
  }
  opt.idle_timeout_ms = rng.NextDouble() < 0.3 ? 1 + rng.NextBounded(50) : 0;

  rb::Router r;
  rb::PacketPool pool(2048);
  auto* nat = r.Add<rb::Nat>(opt);
  auto* out = r.Add<CountingSink>(&pool);
  auto* in = r.Add<CountingSink>(&pool);
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  nat->set_clock(&FakeClock);
  rb::telemetry::HandlerRegistry handlers;
  nat->AddHandlers(&handlers);

  rb::FlowChurnConfig wcfg;
  wcfg.target_flows = opt.capacity * (1 + rng.NextBounded(6));
  wcfg.churn_per_packet = 0.01 * rng.NextDouble();
  wcfg.seed = seed + static_cast<uint64_t>(episode) * 31ULL;
  rb::FlowChurnGenerator gen(wcfg);

  if (verbose) {
    std::printf("nat episode %d: cap=%zu hi=%.2f lo=%.2f evict=%d idle=%ums flows=%zu\n",
                episode, opt.capacity, opt.hi_watermark, opt.lo_watermark,
                opt.evict_on_full ? 1 : 0, opt.idle_timeout_ms, wcfg.target_flows);
  }

  uint64_t injected = 0;
  const int batches = 100 + static_cast<int>(rng.NextBounded(200));
  for (int b = 0; b < batches; ++b) {
    g_fake_now += rng.NextDouble() * 5e-3;  // ms-scale ticks for idle/LRU
    rb::PacketBatch batch;
    const uint32_t k = 1 + rng.NextBounded(32);
    for (uint32_t i = 0; i < k; ++i) {
      rb::FrameSpec spec;
      spec.size = 64;
      spec.flow = gen.Next().key;
      rb::Packet* p = rb::AllocFrame(spec, &pool);
      if (p == nullptr) {
        break;
      }
      batch.PushBack(p);
      injected++;
    }
    nat->PushBatch(0, batch);

    if (rng.NextDouble() < 0.3) {
      // Stray replies: some ports hold live mappings, some never will.
      rb::PacketBatch replies;
      const uint32_t n = 1 + rng.NextBounded(8);
      for (uint32_t i = 0; i < n; ++i) {
        rb::FrameSpec spec;
        spec.size = 64;
        const uint16_t port = static_cast<uint16_t>(
            opt.base_port + rng.NextBounded(static_cast<uint32_t>(opt.capacity) + 64));
        spec.flow = rb::FlowKey{0x08080808u, opt.external_ip, 53, port, 17};
        rb::Packet* p = rb::AllocFrame(spec, &pool);
        if (p == nullptr) {
          break;
        }
        replies.PushBack(p);
        injected++;
      }
      nat->PushBatch(1, replies);
    }
    if (rng.NextDouble() < 0.05) {
      // Live watermark retune mid-flight must never corrupt the table.
      const double hi = 0.5 + rng.NextDouble() * 0.5;
      const double lo = hi * 0.5;
      handlers.Write("nat.lo", rb::Format("%.3f", lo));
      handlers.Write("nat.hi", rb::Format("%.3f", hi));
    }
  }

  const rb::FlowTableStats s = nat->table().stats();
  const uint64_t accounted = out->count + in->count + nat->table_full_drops() +
                             nat->no_mapping_drops() + nat->malformed_drops();
  Check(injected == accounted,
        rb::Format("nat episode %d: injected %llu != forwarded+dropped %llu", episode,
                   static_cast<unsigned long long>(injected),
                   static_cast<unsigned long long>(accounted)));
  Check(nat->table().occupancy() == s.inserts - s.evictions() - s.erases,
        rb::Format("nat episode %d: flow-count conservation broke (occ %zu, inserts %llu, "
                   "evictions %llu, erases %llu)",
                   episode, nat->table().occupancy(),
                   static_cast<unsigned long long>(s.inserts),
                   static_cast<unsigned long long>(s.evictions()),
                   static_cast<unsigned long long>(s.erases)));
  Check(nat->mappings_in_use() == nat->table().occupancy(),
        rb::Format("nat episode %d: %zu mappings vs %zu occupancy (double-eviction or "
                   "port leak)",
                   episode, nat->mappings_in_use(), nat->table().occupancy()));
  Check(nat->table().occupancy() <= nat->table().capacity_slots(),
        rb::Format("nat episode %d: occupancy above capacity", episode));
  Check(pool.in_use() == 0,
        rb::Format("nat episode %d: %zu packets leaked (pool still charged)", episode,
                   pool.in_use()));
  if (verbose) {
    std::printf("nat episode %d: injected %llu out %llu in %llu evict %llu full %llu "
                "no_map %llu occ %zu\n",
                episode, static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(out->count),
                static_cast<unsigned long long>(in->count),
                static_cast<unsigned long long>(s.evictions()),
                static_cast<unsigned long long>(nat->table_full_drops()),
                static_cast<unsigned long long>(nat->no_mapping_drops()),
                nat->table().occupancy());
  }
}

// Plane flavor: twin runs over an identical Apply sequence, one with a
// random mid-run node kill. SCR must reconstruct byte-identical
// mappings; shared must lose exactly the dead node's flows.
void RunPlaneChaosEpisode(uint64_t seed, int episode, bool verbose) {
  rb::Rng rng(seed ^ (0x2545f4914f6cdd1dULL * static_cast<uint64_t>(episode + 11)));
  const int nodes = 2 + static_cast<int>(rng.NextBounded(7));
  const uint64_t flows = 8 + rng.NextBounded(120);
  const int dead = static_cast<int>(rng.NextBounded(static_cast<uint32_t>(nodes)));

  rb::StatefulPlaneConfig cfg;
  cfg.enabled = true;
  cfg.capacity_per_node = 1 << 10;
  cfg.checkpoint_period = size_t{8} << rng.NextBounded(5);

  // One shared Apply sequence: round 0 establishes every flow, later
  // rounds revisit them in random order with random repeats.
  struct Op {
    uint64_t flow;
    uint32_t bytes;
    uint32_t tick;
  };
  std::vector<Op> before_kill;
  std::vector<Op> after_kill;
  uint32_t tick = 0;
  for (uint64_t f = 0; f < flows; ++f) {
    before_kill.push_back({f, static_cast<uint32_t>(64 + rng.NextBounded(1400)), tick++});
  }
  const int pre_rounds = static_cast<int>(rng.NextBounded(3));
  for (int rd = 0; rd < pre_rounds; ++rd) {
    for (uint64_t f = 0; f < flows; ++f) {
      if (rng.NextDouble() < 0.6) {
        before_kill.push_back({f, static_cast<uint32_t>(64 + rng.NextBounded(1400)), tick++});
      }
    }
  }
  const int post_rounds = 1 + static_cast<int>(rng.NextBounded(3));
  for (int rd = 0; rd < post_rounds; ++rd) {
    for (uint64_t f = 0; f < flows; ++f) {
      if (rng.NextDouble() < 0.7) {
        after_kill.push_back({f, static_cast<uint32_t>(64 + rng.NextBounded(1400)), tick++});
      }
    }
  }

  for (const rb::StateMode mode : {rb::StateMode::kScr, rb::StateMode::kShared}) {
    cfg.mode = mode;
    rb::StatefulPlane base(cfg, nodes);
    rb::StatefulPlane fail(cfg, nodes);
    for (const Op& op : before_kill) {
      base.Apply(op.flow, op.bytes, op.tick);
      fail.Apply(op.flow, op.bytes, op.tick);
    }
    fail.OnNodeDown(dead);
    fail.OnNodeDetectedDown(dead);
    if (rng.NextDouble() < 0.4) {
      fail.OnNodeUp(dead);  // recovery: ownership is sticky, state stays put
    }
    for (const Op& op : after_kill) {
      base.Apply(op.flow, op.bytes, op.tick);
      fail.Apply(op.flow, op.bytes, op.tick);
    }

    const auto base_map = base.MappingSnapshot();
    const auto fail_map = fail.MappingSnapshot();
    const rb::StatefulPlaneStats fs = fail.stats();
    const char* mname = mode == rb::StateMode::kScr ? "scr" : "shared";
    Check(base_map.size() == flows,
          rb::Format("plane episode %d (%s): baseline holds %zu of %llu flows", episode,
                     mname, base_map.size(), static_cast<unsigned long long>(flows)));
    if (mode == rb::StateMode::kScr) {
      Check(base_map == fail_map,
            rb::Format("plane episode %d: SCR failover mappings diverged from baseline "
                       "(nodes %d, dead %d, checkpoint %zu)",
                       episode, nodes, dead, cfg.checkpoint_period));
      Check(fs.lost_flows == 0,
            rb::Format("plane episode %d: SCR lost %llu flows", episode,
                       static_cast<unsigned long long>(fs.lost_flows)));
      Check(fs.replayed_records <= fs.replays * cfg.checkpoint_period,
            rb::Format("plane episode %d: replay tail unbounded (%llu records, %llu "
                       "replays, period %zu)",
                       episode, static_cast<unsigned long long>(fs.replayed_records),
                       static_cast<unsigned long long>(fs.replays), cfg.checkpoint_period));
    } else {
      // Shared: exactly the dead node's re-applied flows re-mapped; every
      // other flow untouched.
      for (const auto& [flow, mapping] : base_map) {
        const int home = static_cast<int>(flow % static_cast<uint64_t>(nodes));
        auto it = fail_map.find(flow);
        if (home != dead) {
          Check(it != fail_map.end() && it->second == mapping,
                rb::Format("plane episode %d: shared failover disturbed flow %llu homed "
                           "at live node %d",
                           episode, static_cast<unsigned long long>(flow), home));
        } else {
          Check(it == fail_map.end() || it->second != mapping,
                rb::Format("plane episode %d: flow %llu kept its mapping through a "
                           "shared-mode kill of node %d",
                           episode, static_cast<unsigned long long>(flow), dead));
        }
      }
    }
  }
  if (verbose) {
    std::printf("plane episode %d: nodes=%d flows=%llu dead=%d period=%zu ops=%zu+%zu\n",
                episode, nodes, static_cast<unsigned long long>(flows), dead,
                cfg.checkpoint_period, before_kill.size(), after_kill.size());
  }
}

// Registry counters must never decrease across episode snapshots.
void CheckMonotone(const rb::telemetry::RegistrySnapshot& prev,
                   const rb::telemetry::RegistrySnapshot& cur, int episode) {
  size_t j = 0;
  for (const auto& [name, value] : prev.counters) {
    while (j < cur.counters.size() && cur.counters[j].first < name) {
      j++;
    }
    if (j < cur.counters.size() && cur.counters[j].first == name) {
      Check(cur.counters[j].second >= value,
            rb::Format("episode %d: counter %s went backwards (%llu -> %llu)", episode,
                       name.c_str(), static_cast<unsigned long long>(value),
                       static_cast<unsigned long long>(cur.counters[j].second)));
    } else {
      Check(false, rb::Format("episode %d: counter %s vanished from the registry", episode,
                              name.c_str()));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("rb_chaos");
  auto* seed = flags.AddInt64("seed", 1, "master seed (printed; reuse to replay)");
  auto* episodes = flags.AddInt64("episodes", 6, "DES episodes");
  auto* graph_episodes = flags.AddInt64("graph-episodes", 6, "element-graph episodes");
  auto* stateful_episodes =
      flags.AddInt64("stateful-episodes", 6, "stateful NAT + SCR-plane episodes");
  auto* duration = flags.AddDouble("duration", 0.02, "simulated seconds per DES episode");
  auto* smoke = flags.AddBool("smoke", false, "fixed small preset for CI (<5s)");
  auto* verbose = flags.AddBool("verbose", false, "per-episode detail");
  auto* flight_dump = flags.AddString(
      "flight-dump", "", "write the flight-recorder tail here after the run (always on failure; "
                         "a fatal invariant also dumps here via the crash hook)");
  flags.Parse(argc, argv);

  // Black box over every episode: the chaos runs are exactly where a
  // post-hoc "what happened right before the violation" tail pays off.
  rb::telemetry::FlightRecorder recorder(4096);
  rb::telemetry::FlightRecorder::Install(&recorder);
  if (!flight_dump->empty()) {
    rb::telemetry::FlightRecorder::SetCrashDumpPath(*flight_dump);
  }

  if (*smoke) {
    *episodes = 4;
    *graph_episodes = 3;
    *stateful_episodes = 4;
    *duration = 0.006;
  }

  std::printf(
      "rb_chaos seed=%llu episodes=%lld graph-episodes=%lld stateful-episodes=%lld "
      "duration=%.4fs\n",
      static_cast<unsigned long long>(*seed), static_cast<long long>(*episodes),
      static_cast<long long>(*graph_episodes), static_cast<long long>(*stateful_episodes),
      *duration);

  rb::telemetry::RegistrySnapshot prev = rb::telemetry::MetricRegistry::Global().Snapshot();
  for (int e = 0; e < *episodes; ++e) {
    RunDesEpisode(static_cast<uint64_t>(*seed), e, *duration, *verbose);
    rb::telemetry::RegistrySnapshot cur = rb::telemetry::MetricRegistry::Global().Snapshot();
    CheckMonotone(prev, cur, e);
    prev = std::move(cur);
  }
  for (int e = 0; e < *graph_episodes; ++e) {
    RunGraphEpisode(static_cast<uint64_t>(*seed), e, *verbose);
  }
  for (int e = 0; e < *stateful_episodes; ++e) {
    // Alternate flavors: even = NAT table chaos, odd = SCR-plane twins.
    if ((e % 2) == 0) {
      RunNatChaosEpisode(static_cast<uint64_t>(*seed), e, *verbose);
    } else {
      RunPlaneChaosEpisode(static_cast<uint64_t>(*seed), e, *verbose);
    }
  }

  if (!flight_dump->empty()) {
    if (recorder.DumpToFile(*flight_dump)) {
      std::printf("flight recorder (%llu events) dumped to %s\n",
                  static_cast<unsigned long long>(recorder.recorded()), flight_dump->c_str());
    } else {
      std::fprintf(stderr, "warning: failed to write %s\n", flight_dump->c_str());
    }
  }
  if (g_violations == 0) {
    std::printf(
        "rb_chaos OK: %lld DES + %lld graph + %lld stateful episodes, 0 violations "
        "(seed %llu)\n",
        static_cast<long long>(*episodes), static_cast<long long>(*graph_episodes),
        static_cast<long long>(*stateful_episodes), static_cast<unsigned long long>(*seed));
    rb::telemetry::FlightRecorder::Install(nullptr);
    return 0;
  }
  std::fprintf(stderr, "rb_chaos FAILED: %d violation(s); replay with --seed %llu\n",
               g_violations, static_cast<unsigned long long>(*seed));
  std::fprintf(stderr, "--- flight recorder (violations) ---\n");
  recorder.DumpTo(stderr, 64);
  std::fprintf(stderr, "--- end flight recorder ---\n");
  rb::telemetry::FlightRecorder::Install(nullptr);
  return 1;
}
