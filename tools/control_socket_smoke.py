#!/usr/bin/env python3
"""End-to-end smoke test of the live introspection plane (DESIGN.md §13).

Starts ip_router serving a Unix control socket, then over that socket:
  1. LIST — the handler surface includes element, queue, scheduler-free
     router paths, tracer knobs, and ctl.* built-ins
  2. READ a queue's occupancy/capacity while traffic flows
  3. WRITE <queue>.codel_target_us mid-run and read the change back
     (the acceptance-criteria round trip)
  4. WRITE tracer.sample_every and read it back; READ a Nat element's
     .flows/.occupancy while traffic flows (the router runs --stateful)
     and retune its .lo/.hi eviction watermarks live
  5. GET /metrics — validated with check_prometheus.py
  6. GET /metrics.json — must parse as JSON
  7. rb_top --once against the same socket renders a frame
  8. WRITE ctl.stop — the router drains and exits 0

Usage: control_socket_smoke.py --router PATH [--rb-top PATH] [--checker PATH]
"""
import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

FAILURES = []


def check(ok, what):
    tag = "ok" if ok else "FAIL"
    print(f"  [{tag}] {what}")
    if not ok:
        FAILURES.append(what)
    return ok


class Client:
    """Line-protocol client speaking READ/WRITE/LIST over a Unix socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(10)
        self.sock.connect(path)
        self.buf = b""

    def close(self):
        self.sock.close()

    def _line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise EOFError("control socket closed")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def _exact(self, n):
        while len(self.buf) < n:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise EOFError("control socket closed")
            self.buf += chunk
        out, self.buf = self.buf[:n], self.buf[n:]
        return out.decode()

    def command(self, line):
        """Returns (status_line, payload). Payload is '' unless 200 DATA."""
        self.sock.sendall(line.encode() + b"\n")
        status = self._line()
        if status.startswith("200 DATA "):
            n = int(status.split()[2])
            payload = self._exact(n + 1)[:n]  # +1 swallows the trailing \n
            return status, payload
        return status, ""

    def http_get(self, target):
        """One-shot GET: server answers a full HTTP response and closes."""
        self.sock.sendall(f"GET {target} HTTP/1.0\r\n\r\n".encode())
        data = self.buf
        while True:
            try:
                chunk = self.sock.recv(4096)
            except socket.timeout:
                break
            if not chunk:
                break
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        return head.decode(errors="replace"), body.decode(errors="replace")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--router", required=True, help="ip_router binary")
    ap.add_argument("--rb-top", default="", help="rb_top binary (optional)")
    ap.add_argument("--checker", default="", help="check_prometheus.py (optional)")
    args = ap.parse_args()

    tmp = tempfile.mkdtemp(prefix="rb_ctl_")
    sock_path = os.path.join(tmp, "ctl.sock")
    proc = subprocess.Popen(
        [args.router, "--control-socket", sock_path, "--packets", "20000",
         "--routes", str(64 * 1024), "--stateful"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.time() + 30
        while not os.path.exists(sock_path):
            if proc.poll() is not None:
                out = proc.communicate()[0]
                print(f"router exited early (rc={proc.returncode}):\n{out}")
                sys.exit(1)
            if time.time() > deadline:
                print("timed out waiting for control socket")
                proc.kill()
                sys.exit(1)
            time.sleep(0.05)

        c = Client(sock_path)

        # 1. LIST: find the surface.
        status, listing = c.command("LIST")
        check(status.startswith("200 DATA"), f"LIST answers framed data ({status})")
        paths = [line.split()[-1] for line in listing.splitlines() if " " in line]
        # Flow tables alias `.occupancy` too — key queues on `.codel_target_us`
        # (only real queues carry the CoDel knob) and stateful tables on `.flows`.
        nats = sorted(p[: -len(".flows")] for p in paths if p.endswith(".flows"))
        queues = sorted(p[: -len(".codel_target_us")] for p in paths
                        if p.endswith(".codel_target_us"))
        check(len(queues) > 0, f"LIST exposes queue handlers ({len(queues)} queues)")
        for want in ("tracer.sample_every", "ctl.stop", "ctl.status", "fr.recorded",
                     "router.elements"):
            check(want in paths, f"LIST exposes {want}")

        # Prefix filtering.
        status, filtered = c.command("LIST tracer.")
        check(status.startswith("200 DATA")
              and all(l.split()[-1].startswith("tracer.") for l in filtered.splitlines()),
              "LIST <prefix> filters")

        # 2. Live occupancy/capacity read while traffic is flowing.
        q = queues[0]
        status, occ = c.command(f"READ {q}.occupancy")
        check(status.startswith("200 DATA") and occ.strip().isdigit(),
              f"READ {q}.occupancy -> {occ.strip()!r}")
        status, cap = c.command(f"READ {q}.capacity")
        check(status.startswith("200 DATA") and int(cap) > 0,
              f"READ {q}.capacity -> {cap.strip()!r}")

        # 3. The acceptance round trip: retune CoDel mid-run, read it back.
        status, before = c.command(f"READ {q}.codel_target_us")
        check(status.startswith("200 DATA"), f"READ {q}.codel_target_us -> {before.strip()!r}")
        status, _ = c.command(f"WRITE {q}.codel_target_us 750")
        check(status.startswith("200"), f"WRITE {q}.codel_target_us 750 ({status})")
        status, after = c.command(f"READ {q}.codel_target_us")
        check(status.startswith("200 DATA") and abs(float(after) - 750.0) < 1e-6,
              f"read-back observes the write ({before.strip()} -> {after.strip()})")

        # 4. Tracer knob.
        status, _ = c.command("WRITE tracer.sample_every 16")
        check(status.startswith("200"), "WRITE tracer.sample_every 16")
        status, se = c.command("READ tracer.sample_every")
        check(se.strip() == "16", f"tracer.sample_every reads back 16 (got {se.strip()!r})")

        # Stateful plane (DESIGN.md §17): the router runs --stateful, so
        # every chain's Nat publishes its flow table. Read the live table,
        # then retune the eviction watermarks mid-run (lo before hi — the
        # table rejects any write that breaks 0 < lo < hi <= 1).
        check(len(nats) > 0, f"LIST exposes stateful .flows handlers ({len(nats)} tables)")
        nat = nats[0]
        status, flows = c.command(f"READ {nat}.flows")
        check(status.startswith("200 DATA") and flows.strip().isdigit(),
              f"READ {nat}.flows -> {flows.strip()!r}")
        status, cap = c.command(f"READ {nat}.capacity")
        check(status.startswith("200 DATA") and int(cap) > 0,
              f"READ {nat}.capacity -> {cap.strip()!r}")
        status, _ = c.command(f"WRITE {nat}.lo 0.40")
        check(status.startswith("200"), f"WRITE {nat}.lo 0.40 ({status})")
        status, _ = c.command(f"WRITE {nat}.hi 0.60")
        check(status.startswith("200"), f"WRITE {nat}.hi 0.60 ({status})")
        status, hi = c.command(f"READ {nat}.hi")
        check(status.startswith("200 DATA") and abs(float(hi) - 0.60) < 1e-6,
              f"watermark retune reads back ({hi.strip()!r})")
        status, _ = c.command(f"WRITE {nat}.hi 0.20")
        check(status.startswith("540"), f"WRITE {nat}.hi below .lo -> 540 ({status})")

        # Error paths return protocol errors, not hangs.
        status, _ = c.command("READ no.such.handler")
        check(status.startswith("510"), f"READ unknown -> 510 ({status})")
        status, _ = c.command(f"WRITE {q}.codel_target_us banana")
        check(status.startswith("540"), f"WRITE bad value -> 540 ({status})")
        status, _ = c.command("FROB x")
        check(status.startswith("500"), f"unknown verb -> 500 ({status})")

        # 5. Prometheus scrape (fresh connection: GET closes it).
        mc = Client(sock_path)
        head, body = mc.http_get("/metrics")
        mc.close()
        check(head.startswith("HTTP/1.0 200"), "GET /metrics -> HTTP 200")
        check("rb_counter" in body and "# TYPE" in body, "/metrics has exposition content")
        if args.checker:
            res = subprocess.run([sys.executable, args.checker], input=body,
                                 capture_output=True, text=True)
            check(res.returncode == 0,
                  f"check_prometheus accepts /metrics ({res.stdout.strip() or res.stderr.strip()})")

        # 6. JSON scrape.
        jc = Client(sock_path)
        head, body = jc.http_get("/metrics.json")
        jc.close()
        doc = None
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as e:
            print(f"    json error: {e}")
        check(isinstance(doc, dict) and "counters" in doc, "GET /metrics.json parses")

        # 7. One rb_top frame against the live socket.
        if args.rb_top:
            res = subprocess.run([args.rb_top, "--connect", sock_path, "--once"],
                                 capture_output=True, text=True, timeout=30)
            check(res.returncode == 0 and "QUEUES" in res.stdout and q in res.stdout,
                  "rb_top --once renders elements and queues")

        # 8. Clean shutdown through the socket.
        status, _ = c.command("WRITE ctl.stop 1")
        check(status.startswith("200"), f"WRITE ctl.stop ({status})")
        c.close()
        try:
            rc = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            rc = None
        check(rc == 0, f"router exits cleanly after ctl.stop (rc={rc})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    if FAILURES:
        print(f"\ncontrol_socket_smoke: {len(FAILURES)} failure(s)")
        sys.exit(1)
    print("\ncontrol_socket_smoke: all checks passed")


if __name__ == "__main__":
    main()
