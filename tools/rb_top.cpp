// rb_top: live terminal view of a running router's introspection plane
// (DESIGN.md §13). Connects to a --control-socket endpoint, discovers the
// handler surface with LIST, and renders per-element packet/drop rates,
// queue occupancy sparklines, drop-bucket deltas, and (when the target is
// a cluster bench) per-node load imbalance, refreshing in place.
//
//   $ ./ip_router --control-socket=7777 &
//   $ ./rb_top --connect=7777
//   $ ./rb_top --connect=/tmp/ctl.sock --once     # one frame, no ANSI
//
// --once / --frames=N bound the run for scripts and CI; the interactive
// mode redraws every --interval-ms until the peer goes away or ^C.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/strings.hpp"

namespace {

// Blocking line-protocol client over the control socket.
class ControlClient {
 public:
  ~ControlClient() { Close(); }

  bool Connect(const std::string& address, std::string* error) {
    Close();
    bool numeric = !address.empty();
    for (char c : address) {
      numeric = numeric && c >= '0' && c <= '9';
    }
    if (numeric) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(static_cast<uint16_t>(std::atoi(address.c_str())));
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        *error = rb::Format("connect 127.0.0.1:%s: %s", address.c_str(), std::strerror(errno));
        Close();
        return false;
      }
    } else {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      if (address.size() >= sizeof(sa.sun_path)) {
        *error = "unix socket path too long";
        Close();
        return false;
      }
      std::memcpy(sa.sun_path, address.c_str(), address.size() + 1);
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        *error = rb::Format("connect %s: %s", address.c_str(), std::strerror(errno));
        Close();
        return false;
      }
    }
    return true;
  }

  // Sends one command; returns true and fills *payload on 200, false on
  // any error response or a dead connection (*payload = the error line).
  bool Command(const std::string& line, std::string* payload) {
    payload->clear();
    if (fd_ < 0) {
      *payload = "not connected";
      return false;
    }
    std::string out = line + "\n";
    if (!WriteAll(out)) {
      *payload = "peer went away";
      return false;
    }
    std::string status;
    if (!ReadLine(&status)) {
      *payload = "peer went away";
      return false;
    }
    if (status.rfind("200 DATA ", 0) == 0) {
      size_t n = std::strtoull(status.c_str() + 9, nullptr, 10);
      if (!ReadExact(n + 1, payload)) {  // +1: trailing newline
        *payload = "short framed payload";
        return false;
      }
      payload->resize(n);
      return true;
    }
    if (status.rfind("200", 0) == 0) {
      *payload = status;
      return true;
    }
    *payload = status;
    return false;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buf_.clear();
  }

 private:
  bool WriteAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n <= 0) {
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Fill() {
    char tmp[4096];
    ssize_t n = ::read(fd_, tmp, sizeof(tmp));
    if (n <= 0) {
      return false;
    }
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        if (!line->empty() && line->back() == '\r') {
          line->pop_back();
        }
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!Fill()) {
        return false;
      }
    }
  }

  bool ReadExact(size_t n, std::string* out) {
    while (buf_.size() < n) {
      if (!Fill()) {
        return false;
      }
    }
    *out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

struct QueueRow {
  std::string name;           // element name ("Queue@4")
  size_t capacity = 0;
  std::vector<size_t> hist;   // recent occupancy samples (sparkline)
  bool have_wait = false;     // element also exports .wait_us
  std::vector<double> wait_hist;  // recent dequeue sojourns (us)
};

struct LatencyRow {
  std::string name;      // element name exporting .latency
  std::string summary;   // last "count=... p50_us=... ..." payload
};

struct ElementRow {
  std::string name;
  uint64_t counts = 0;
  uint64_t drops = 0;
  double count_rate = 0;  // per second, since last frame
  uint64_t drop_delta = 0;
  bool compiled = false;  // element also exports .program (a compiled classifier)
  bool stateful = false;  // element also exports .flows (a per-flow state table)
};

uint64_t ParseU64(const std::string& s) { return std::strtoull(s.c_str(), nullptr, 10); }

// Pulls "key=<number>" out of a handler payload like
// "count=128 p50_us=1.71 p99_us=4.97"; returns 0 when absent.
double ParseField(const std::string& payload, const std::string& key) {
  size_t at = payload.find(key + "=");
  if (at == std::string::npos) {
    return 0.0;
  }
  return std::strtod(payload.c_str() + at + key.size() + 1, nullptr);
}

// Unicode block sparkline over the tail of `hist`, scaled to `cap`.
std::string Sparkline(const std::vector<size_t>& hist, size_t cap, size_t width) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇", "█"};
  std::string out;
  size_t start = hist.size() > width ? hist.size() - width : 0;
  for (size_t i = start; i < hist.size(); ++i) {
    size_t level = 0;
    if (cap > 0 && hist[i] > 0) {
      level = 1 + (hist[i] * 7) / cap;  // occupied -> at least one bar
      if (level > 8) {
        level = 8;
      }
    }
    out += kBlocks[level];
  }
  return out;
}

// Sparkline over the tail of a double-valued series, auto-scaled to the
// window's maximum (queue waits have no fixed capacity to scale against).
std::string SparklineAuto(const std::vector<double>& hist, size_t width) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇", "█"};
  size_t start = hist.size() > width ? hist.size() - width : 0;
  double peak = 0;
  for (size_t i = start; i < hist.size(); ++i) {
    peak = hist[i] > peak ? hist[i] : peak;
  }
  std::string out;
  for (size_t i = start; i < hist.size(); ++i) {
    size_t level = 0;
    if (peak > 0 && hist[i] > 0) {
      level = 1 + static_cast<size_t>((hist[i] * 7) / peak);
      if (level > 8) {
        level = 8;
      }
    }
    out += kBlocks[level];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("rb_top");
  auto* connect_to = flags.AddString("connect", "7777", "TCP port (digits) or Unix socket path");
  auto* interval_ms = flags.AddInt64("interval-ms", 500, "refresh period");
  auto* frames = flags.AddInt64("frames", 0, "stop after N frames (0 = until ^C / peer exit)");
  auto* once = flags.AddBool("once", false, "render a single frame without ANSI control");
  flags.Parse(argc, argv);
  if (*once) {
    *frames = 1;
  }

  ControlClient client;
  std::string err;
  if (!client.Connect(*connect_to, &err)) {
    std::fprintf(stderr, "rb_top: %s\n", err.c_str());
    return 1;
  }

  // Discover the surface once: queues are the elements exporting
  // `.occupancy`, elements are everything exporting `.counts`.
  std::string listing;
  if (!client.Command("LIST", &listing)) {
    std::fprintf(stderr, "rb_top: LIST failed: %s\n", listing.c_str());
    return 1;
  }
  std::vector<QueueRow> queues;
  std::vector<ElementRow> elements;
  std::vector<LatencyRow> latencies;
  std::vector<std::string> wait_paths;
  std::vector<std::string> program_paths;
  std::vector<std::string> flows_paths;
  bool have_cluster = false;
  bool have_fr = false;
  bool have_sched = false;
  for (const std::string& line : rb::Split(listing, '\n')) {
    // "r  <path>" / "w  <path>" / "rw <path>"
    size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      continue;
    }
    size_t start = line.find_first_not_of(' ', sp);
    if (start == std::string::npos) {
      continue;
    }
    std::string path = line.substr(start);
    if (path.size() > 10 && path.rfind(".occupancy") == path.size() - 10) {
      queues.push_back(QueueRow{path.substr(0, path.size() - 10), 0, {}, false, {}});
    } else if (path.size() > 7 && path.rfind(".counts") == path.size() - 7) {
      elements.push_back(ElementRow{path.substr(0, path.size() - 7), 0, 0, 0, 0});
    } else if (path.size() > 8 && path.rfind(".latency") == path.size() - 8) {
      latencies.push_back(LatencyRow{path.substr(0, path.size() - 8), ""});
    } else if (path.size() > 8 && path.rfind(".wait_us") == path.size() - 8) {
      wait_paths.push_back(path.substr(0, path.size() - 8));
    } else if (path.size() > 8 && path.rfind(".program") == path.size() - 8) {
      program_paths.push_back(path.substr(0, path.size() - 8));
    } else if (path.size() > 6 && path.rfind(".flows") == path.size() - 6) {
      flows_paths.push_back(path.substr(0, path.size() - 6));
    } else if (path == "cluster.node_loads") {
      have_cluster = true;
    } else if (path == "fr.recorded") {
      have_fr = true;
    } else if (path == "sched.watchdog_stalls") {
      have_sched = true;
    }
  }
  for (auto& e : elements) {
    for (const std::string& p : program_paths) {
      if (p == e.name) {
        e.compiled = true;  // runs a collapsed match program (DESIGN.md §16)
      }
    }
    for (const std::string& p : flows_paths) {
      if (p == e.name) {
        e.stateful = true;  // carries a per-flow state table (DESIGN.md §17)
      }
    }
  }
  std::string payload;
  for (auto& q : queues) {
    if (client.Command("READ " + q.name + ".capacity", &payload)) {
      q.capacity = static_cast<size_t>(ParseU64(payload));
    }
    for (const std::string& w : wait_paths) {
      if (w == q.name) {
        q.have_wait = true;
      }
    }
  }

  uint64_t prev_total_drops = 0;
  bool first = true;
  for (long long frame = 0; *frames == 0 || frame < *frames; ++frame) {
    if (!first) {
      std::this_thread::sleep_for(std::chrono::milliseconds(*interval_ms));
    }
    const double dt = first ? 1.0 : static_cast<double>(*interval_ms) / 1e3;

    uint64_t total_drops = 0;
    bool lost = false;
    for (auto& e : elements) {
      if (!client.Command("READ " + e.name + ".counts", &payload)) {
        lost = true;
        break;
      }
      uint64_t counts = ParseU64(payload);
      e.count_rate = first ? 0 : static_cast<double>(counts - e.counts) / dt;
      e.counts = counts;
      if (!client.Command("READ " + e.name + ".drops", &payload)) {
        lost = true;
        break;
      }
      uint64_t drops = ParseU64(payload);
      e.drop_delta = first ? 0 : drops - e.drops;
      e.drops = drops;
      total_drops += drops;
    }
    for (auto& q : queues) {
      if (lost || !client.Command("READ " + q.name + ".occupancy", &payload)) {
        lost = true;
        break;
      }
      q.hist.push_back(static_cast<size_t>(ParseU64(payload)));
      if (q.hist.size() > 64) {
        q.hist.erase(q.hist.begin());
      }
      if (q.have_wait && client.Command("READ " + q.name + ".wait_us", &payload)) {
        q.wait_hist.push_back(std::strtod(payload.c_str(), nullptr));
        if (q.wait_hist.size() > 64) {
          q.wait_hist.erase(q.wait_hist.begin());
        }
      }
    }
    for (auto& l : latencies) {
      if (lost || !client.Command("READ " + l.name + ".latency", &payload)) {
        lost = true;
        break;
      }
      l.summary = payload;
    }
    if (lost) {
      std::fprintf(stderr, "rb_top: peer went away\n");
      return 0;  // a finished router is a normal way for a session to end
    }

    if (!*once) {
      std::printf("\x1b[H\x1b[2J");  // home + clear
    }
    std::printf("rb_top — %s  (frame %lld, every %lldms)\n", connect_to->c_str(), frame + 1,
                static_cast<long long>(*interval_ms));
    if (have_sched && client.Command("READ sched.watchdog_stalls", &payload)) {
      std::printf("watchdog stalls: %s", payload.c_str());
    }
    if (have_fr && client.Command("READ fr.recorded", &payload)) {
      std::printf("  flight-recorder events: %s", payload.c_str());
    }
    std::printf("\n\nELEMENTS%44s%12s%10s\n", "pkts", "pkts/s", "drops+");
    for (const auto& e : elements) {
      if (e.counts == 0 && e.drops == 0) {
        continue;  // keep the screen to elements that saw traffic
      }
      std::printf("  %-40s %11llu %11.0f %9llu%s%s\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.counts), e.count_rate,
                  static_cast<unsigned long long>(e.drop_delta),
                  e.compiled ? " [compiled]" : "",
                  e.stateful ? " [stateful]" : "");
    }
    if (!latencies.empty()) {
      // Ingress-to-egress percentiles from the always-on latency plane
      // (the same histograms bench_latency gates on).
      std::printf("\nLATENCY%45s%10s%10s%10s\n", "pkts", "p50 us", "p99 us", "p999 us");
      for (const auto& l : latencies) {
        uint64_t count = static_cast<uint64_t>(ParseField(l.summary, "count"));
        if (count == 0) {
          continue;  // unbound or idle — keep the screen to live paths
        }
        std::printf("  %-40s %11llu %9.2f %9.2f %9.2f\n", l.name.c_str(),
                    static_cast<unsigned long long>(count),
                    ParseField(l.summary, "p50_us"), ParseField(l.summary, "p99_us"),
                    ParseField(l.summary, "p999_us"));
      }
    }
    if (!queues.empty()) {
      std::printf("\nQUEUES%30s  occupancy (last %d samples)\n", "now/cap", 32);
      for (const auto& q : queues) {
        size_t now = q.hist.empty() ? 0 : q.hist.back();
        std::printf("  %-24s %5zu/%-5zu  |%s|\n", q.name.c_str(), now, q.capacity,
                    Sparkline(q.hist, q.capacity, 32).c_str());
        if (q.have_wait && !q.wait_hist.empty()) {
          // Dequeue sojourn of the latest stamped packet, auto-scaled to
          // the window peak: the queueing half of the latency story.
          std::printf("  %-24s %8.1fus    |%s|\n", "  wait", q.wait_hist.back(),
                      SparklineAuto(q.wait_hist, 32).c_str());
        }
      }
    }
    uint64_t drop_delta = first ? 0 : total_drops - prev_total_drops;
    prev_total_drops = total_drops;
    std::printf("\nDROPS total=%llu (+%llu this frame)\n",
                static_cast<unsigned long long>(total_drops),
                static_cast<unsigned long long>(drop_delta));
    if (have_cluster && client.Command("READ cluster.node_loads", &payload)) {
      std::printf("\nCLUSTER\n%s", payload.c_str());
      if (client.Command("READ cluster.drops", &payload)) {
        std::printf("  drops: %s\n", payload.c_str());
      }
    }
    std::fflush(stdout);
    first = false;
  }
  return 0;
}
