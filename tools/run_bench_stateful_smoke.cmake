# ctest driver for the bench_stateful smoke gate: run the bench, then the
# invariant checker over its JSON dump. Two steps in one test so tier-1
# fails when either the bench's own Check() gates or the checker's
# robustness-contract validation trips.
execute_process(COMMAND ${BENCH} --smoke --json=${OUT} RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_stateful --smoke failed (rc=${bench_rc})")
endif()
execute_process(COMMAND ${PYTHON} ${CHECKER} --stateful ${OUT} RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_regression --stateful failed (rc=${check_rc})")
endif()
