#!/usr/bin/env python3
"""Validate Prometheus text exposition produced by the control socket.

Usage: check_prometheus.py [file]        (reads stdin when no file given)

Checks, per the exposition-format spec:
  - every line is a comment (# HELP / # TYPE), blank, or a sample line
  - sample lines parse as  name{labels} value  with legal metric/label names
  - every sampled family has a preceding # TYPE (histogram families may use
    the _bucket/_sum/_count suffixes of a `histogram`-typed base name)
  - histogram buckets: each series has a le label, cumulative counts are
    monotonically non-decreasing in le order, and the +Inf bucket equals
    the family's _count sample

Exits 0 when clean; prints each violation and exits 1 otherwise.
"""
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"  # optional timestamp
)
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors = []
    types = {}  # family name -> declared type
    # histogram state: base name -> {"buckets": [(le, count)], "count": int}
    histograms = {}
    samples = 0

    for lineno, line in enumerate(text.split("\n"), 1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                    continue
                if not METRIC_RE.match(parts[2]):
                    errors.append(f"line {lineno}: bad metric name {parts[2]!r}")
                types[parts[2]] = parts[3]
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        labels = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = LABEL_PAIR_RE.findall(raw_labels)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != raw_labels:
                errors.append(f"line {lineno}: malformed labels: {{{raw_labels}}}")
                continue
            for k, v in consumed:
                if not LABEL_RE.match(k):
                    errors.append(f"line {lineno}: bad label name {k!r}")
                labels[k] = v
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad value {m.group('value')!r}")
            continue

        # Resolve the family: exact TYPE, or histogram suffixes.
        family = None
        if name in types:
            family = name
        else:
            for suffix in ("_bucket", "_sum", "_count"):
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and types.get(base) == "histogram":
                    family = base
                    break
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no preceding # TYPE")
            continue

        if types[family] == "histogram":
            series = labels.get("name", "")  # our exposition keys series by name=
            hist = histograms.setdefault((family, series), {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: histogram bucket without le label")
                    continue
                try:
                    le = parse_value(labels["le"])
                except ValueError:
                    errors.append(f"line {lineno}: bad le value {labels['le']!r}")
                    continue
                hist["buckets"].append((lineno, le, value))
            elif name.endswith("_count"):
                hist["count"] = (lineno, value)

    for (family, series), hist in histograms.items():
        label = f"{family}{{name={series!r}}}"
        prev = None
        for lineno, le, count in sorted(hist["buckets"], key=lambda b: b[1]):
            if prev is not None and count < prev:
                errors.append(
                    f"line {lineno}: {label} bucket le={le} count {count} "
                    f"below previous bucket's {prev} (not cumulative)"
                )
            prev = count
        infs = [b for b in hist["buckets"] if b[1] == float("inf")]
        if not infs:
            errors.append(f"{label}: missing +Inf bucket")
        elif hist["count"] is not None and infs[-1][2] != hist["count"][1]:
            errors.append(
                f"line {infs[-1][0]}: {label} +Inf bucket {infs[-1][2]} "
                f"!= _count {hist['count'][1]}"
            )

    if errors:
        for e in errors:
            print(f"check_prometheus: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_prometheus: OK ({samples} samples, {len(types)} families, "
          f"{len(histograms)} histogram series)")


if __name__ == "__main__":
    main()
