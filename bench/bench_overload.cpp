// Overload experiment on the N-node Direct-VLB mesh: the §3 claim that a
// VLB cluster degrades *fairly* when offered more than it can carry. One
// external port is driven at --overload-factor x its line rate R with a
// deliberately skewed destination mix (weights 3:2:...:2, so every output
// port demands more than its fair share and the demands are unequal), and
// the run is repeated with fair ingress admission (cluster/admission.hpp)
// ON and OFF:
//
//   * admission ON: the deficit-round-robin allocator clips every output
//     port to its fair share of the believed ingress capacity, so
//     per-port goodput equalizes (max/min <= 1.1) and aggregate goodput
//     stays at the believed capacity;
//   * admission OFF: the excess is shed wherever the ingress CPU queue
//     happens to overflow, which is destination-blind tail drop — per-port
//     goodput inherits the demand skew (max/min ~ 3/2), i.e. an
//     overloaded output steals goodput from the others.
//
// A second scenario offers uniform traffic from every port at the same
// overload factor and checks aggregate goodput holds >= 85% of the
// believed capacity (no congestion collapse inside the mesh). Every run
// must pass the drop-accounting audit (AuditConservation): each offered
// packet lands in delivered or exactly one drop bucket.
//
// The CPU service rate is sized from the config's own ingress cost curve
// so the ingress CPU (not the NICs, which are unmodeled here) is the
// contended resource, with --headroom x R of packet headroom.
//
// --json writes a machine-readable summary (schema rb.bench_overload.v1,
// seed included) checked structurally by tools/check_bench_regression.py.
// Any failed check exits nonzero.
#include <cmath>
#include <cstdio>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/control.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "workload/synthetic.hpp"

namespace {

struct RunResult {
  rb::ClusterRunStats stats;
  std::string audit;               // "" = conservation holds
  std::vector<double> port_gbps;   // per-output goodput
  double ratio = 0;                // max/min over per-output goodput
  uint64_t admission_drops = 0;
};

RunResult RunScenario(rb::ClusterConfig cfg, const rb::TrafficMatrix& tm, double per_input_bps,
                      uint32_t pkt_bytes, double duration, bool bind_telemetry) {
  rb::ClusterSim sim(cfg);
  if (bind_telemetry) {
    sim.BindTelemetry(&rb::telemetry::MetricRegistry::Global(), nullptr);
  }
  rb::FixedSizeDistribution sizes(pkt_bytes);
  RunResult r;
  r.stats = sim.RunUniform(tm, per_input_bps, &sizes, duration);
  r.audit = rb::AuditConservation(r.stats);
  double lo = 0;
  double hi = 0;
  for (double bps : r.stats.per_output_bps) {
    double gbps = bps / 1e9;
    r.port_gbps.push_back(gbps);
    hi = std::max(hi, gbps);
    lo = (lo == 0) ? gbps : std::min(lo, gbps);
  }
  r.ratio = lo > 0 ? hi / lo : std::numeric_limits<double>::infinity();
  r.admission_drops = r.stats.drops.admission;
  return r;
}

void JsonPorts(rb::telemetry::JsonWriter* w, const std::vector<double>& ports) {
  w->BeginArray();
  for (double g : ports) {
    w->Double(g);
  }
  w->EndArray();
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_overload");
  auto* nodes = flags.AddInt64("nodes", 4, "mesh size N");
  auto* rate_gbps = flags.AddDouble("rate-gbps", 2.4, "external line rate R per port (Gbps)");
  auto* factor = flags.AddDouble("overload-factor", 2.0, "offered load as a multiple of R");
  auto* pkt_bytes = flags.AddInt64("pkt-bytes", 300, "packet size");
  auto* duration = flags.AddDouble("duration", 0.05, "simulated seconds");
  auto* headroom =
      flags.AddDouble("headroom", 1.3, "ingress CPU packet capacity as a multiple of R");
  auto* seed = flags.AddInt64("seed", 7, "RNG seed");
  auto* smoke = flags.AddBool("smoke", false, "small fast preset (overrides sizing flags)");
  auto* json = flags.AddString("json", "", "write the machine-readable summary here");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  auto* control_addr = rb::AddControlSocketFlag(&flags);
  flags.Parse(argc, argv);

  if (*smoke) {
    *nodes = 4;
    *duration = 0.02;
  }

  // Black box for the admission/failover events the scenarios generate,
  // readable live through fr.dump.
  rb::telemetry::FlightRecorder recorder;
  rb::telemetry::FlightRecorder::Install(&recorder);

  // Live observation point (EXPERIMENTS.md): the global registry the
  // telemetry-bound scenario fills is scrapeable while the DES runs. Only
  // registry/recorder-backed endpoints are exposed — the single-threaded
  // sims themselves come and go per scenario.
  rb::ControlPlane ctl(&rb::telemetry::MetricRegistry::Global());
  if (!ctl.MaybeStart(*control_addr)) {
    return 1;
  }

  uint16_t n = static_cast<uint16_t>(*nodes);
  double r_bps = *rate_gbps * 1e9;
  double pkt_bits = static_cast<double>(*pkt_bytes) * 8.0;
  double r_pps = r_bps / pkt_bits;

  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.num_nodes = n;
  cfg.seed = static_cast<uint64_t>(*seed);
  cfg.ext_rate_bps = r_bps;
  cfg.vlb.num_nodes = n;
  cfg.vlb.port_rate_bps = r_bps;
  // NICs out of the picture: the contended resource is the ingress CPU,
  // sized from the config's own per-packet cost so its packet capacity is
  // exactly headroom x R. Overload past R then lands either on the
  // admission allocator (ON) or the CPU FIFO (OFF).
  cfg.model_nics = false;
  double ingress_cycles = cfg.ingress_cycles.At(static_cast<double>(*pkt_bytes)) +
                          (cfg.vlb.flowlets ? cfg.reorder_avoidance_cycles : 0);
  cfg.node_cycles_per_sec = *headroom * r_pps * ingress_cycles;
  cfg.admission.capacity_bps = r_bps;

  double offered_bps = *factor * r_bps;
  // Skewed single-ingress matrix: port 0 wants 3 shares, everyone else 2.
  std::vector<double> weights(n, 2.0);
  weights[0] = 3.0;
  auto hot_tm = rb::TrafficMatrix::SingleInputWeighted(n, 0, weights);

  cfg.admission.enabled = true;
  RunResult hot_on = RunScenario(cfg, hot_tm, offered_bps, static_cast<uint32_t>(*pkt_bytes),
                                 *duration, true);
  cfg.admission.enabled = false;
  RunResult hot_off = RunScenario(cfg, hot_tm, offered_bps, static_cast<uint32_t>(*pkt_bytes),
                                  *duration, false);
  cfg.admission.enabled = true;
  RunResult uni_on = RunScenario(cfg, rb::TrafficMatrix::Uniform(n), offered_bps,
                                 static_cast<uint32_t>(*pkt_bytes), *duration, false);

  // --- report ---
  rb::Report fairness(
      "§3 overload fairness",
      rb::Format("N=%u mesh, ingress 0 at %.1fx R=%.1f Gbps, dst weights 3:2 skew, seed %llu",
                 n, *factor, *rate_gbps, static_cast<unsigned long long>(*seed)));
  fairness.SetColumns({"admission", "per-port goodput (Gbps)", "max/min", "aggregate Gbps",
                       "admission drops", "cpu drops"});
  auto ports_str = [](const RunResult& r) {
    std::string s;
    for (size_t i = 0; i < r.port_gbps.size(); ++i) {
      s += rb::Format(i ? " %.2f" : "%.2f", r.port_gbps[i]);
    }
    return s;
  };
  fairness.AddRow({"on", ports_str(hot_on), rb::Format("%.3f", hot_on.ratio),
                   rb::Format("%.2f", hot_on.stats.delivered_bps() / 1e9),
                   rb::Format("%llu", static_cast<unsigned long long>(hot_on.admission_drops)),
                   rb::Format("%llu", static_cast<unsigned long long>(hot_on.stats.drops.cpu))});
  fairness.AddRow({"off", ports_str(hot_off), rb::Format("%.3f", hot_off.ratio),
                   rb::Format("%.2f", hot_off.stats.delivered_bps() / 1e9),
                   rb::Format("%llu", static_cast<unsigned long long>(hot_off.admission_drops)),
                   rb::Format("%llu", static_cast<unsigned long long>(hot_off.stats.drops.cpu))});
  fairness.AddNote(rb::Format(
      "uniform all-ports at %.1fx: aggregate %.2f Gbps vs believed capacity %.2f Gbps", *factor,
      uni_on.stats.delivered_bps() / 1e9, n * r_bps / 1e9));
  fairness.Print();

  int failures_found = 0;
  auto check = [&failures_found](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      failures_found++;
    }
  };
  for (const RunResult* r : {&hot_on, &hot_off, &uni_on}) {
    check(r->audit.empty(), rb::Format("drop accounting: %s", r->audit.c_str()));
  }
  check(hot_on.ratio <= 1.1,
        rb::Format("admission ON per-port goodput skewed: max/min %.3f > 1.1", hot_on.ratio));
  check(hot_off.ratio >= 1.3,
        rb::Format("admission OFF unexpectedly fair: max/min %.3f < 1.3 (bench not measuring "
                   "the unfairness it claims to fix)",
                   hot_off.ratio));
  // Aggregate goodput under admission must hold the believed capacity:
  // one overloaded ingress delivers >= 85% of R; a uniformly overloaded
  // mesh delivers >= 85% of N*R (the healthy-cluster degraded bound).
  check(hot_on.stats.delivered_bps() >= 0.85 * r_bps,
        rb::Format("hot-ingress aggregate %.2f Gbps < 85%% of believed capacity %.2f Gbps",
                   hot_on.stats.delivered_bps() / 1e9, r_bps / 1e9));
  check(uni_on.stats.delivered_bps() >= 0.85 * n * r_bps,
        rb::Format("uniform-overload aggregate %.2f Gbps < 85%% of believed capacity %.2f Gbps",
                   uni_on.stats.delivered_bps() / 1e9, n * r_bps / 1e9));
  check(hot_on.admission_drops > 0, "admission ON shed nothing at 2x overload");
  check(hot_off.admission_drops == 0, "admission OFF still counted admission drops");

  if (!json->empty()) {
    namespace tele = rb::telemetry;
    tele::JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.String("rb.bench_overload.v1");
    w.Key("seed");
    w.Uint(static_cast<uint64_t>(*seed));
    w.Key("nodes");
    w.Uint(n);
    w.Key("overload_factor");
    w.Double(*factor);
    w.Key("rate_gbps");
    w.Double(*rate_gbps);
    w.Key("pkt_bytes");
    w.Uint(static_cast<uint64_t>(*pkt_bytes));
    w.Key("fairness");
    w.BeginObject();
    w.Key("ratio_admission_on");
    w.Double(hot_on.ratio);
    w.Key("ratio_admission_off");
    w.Double(hot_off.ratio);
    w.Key("per_port_gbps_on");
    JsonPorts(&w, hot_on.port_gbps);
    w.Key("per_port_gbps_off");
    JsonPorts(&w, hot_off.port_gbps);
    w.EndObject();
    w.Key("goodput");
    w.BeginObject();
    w.Key("hot_on_gbps");
    w.Double(hot_on.stats.delivered_bps() / 1e9);
    w.Key("hot_off_gbps");
    w.Double(hot_off.stats.delivered_bps() / 1e9);
    w.Key("uniform_on_gbps");
    w.Double(uni_on.stats.delivered_bps() / 1e9);
    w.Key("believed_capacity_gbps");
    w.Double(n * r_bps / 1e9);
    w.EndObject();
    w.Key("admission_drops");
    w.Uint(hot_on.admission_drops);
    w.Key("conservation_ok");
    w.Bool(hot_on.audit.empty() && hot_off.audit.empty() && uni_on.audit.empty());
    w.Key("checks_failed");
    w.Uint(static_cast<uint64_t>(failures_found));
    w.EndObject();
    FILE* f = fopen(json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: failed to write %s\n", json->c_str());
    } else {
      std::fprintf(f, "%s\n", w.str().c_str());
      fclose(f);
      std::printf("overload JSON written to %s\n", json->c_str());
    }
  }

  if (rb::telemetry::Enabled()) {
    rb::telemetry::MetricRegistry::Global().GetGauge("bench/seed")->Set(
        static_cast<double>(*seed));
  }
  rb::MaybeWriteMetrics(*metrics_out);
  ctl.Stop();
  rb::telemetry::FlightRecorder::Install(nullptr);
  return failures_found == 0 ? 0 : 1;
}
