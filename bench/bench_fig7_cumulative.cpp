// Reproduces Figure 7: the cumulative impact of the new server
// architecture, multi-queue NICs, and batching on the 64 B minimal
// forwarding rate (any-to-any traffic, all 8 cores).
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig7_cumulative");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  struct Bar {
    const char* label;
    bool xeon;
    bool multi_queue;
    bool batching;
    double paper_mpps;  // from the figure / the 6.7x and 11x statements
  };
  const Bar bars[] = {
      {"Xeon, single queue, no batching", true, false, false, 1.72},
      {"Nehalem, single queue, no batching", false, false, false, 2.83},
      {"Nehalem, single queue, with batching", false, false, true, 9.5},
      {"Nehalem, multiple queues, with batching", false, true, true, 18.96},
  };

  rb::Report report("Figure 7", "aggregate impact on forwarding rate (64 B, Mpps)");
  report.SetColumns({"configuration", "paper Mpps", "model Mpps", "ratio", "bottleneck"});
  double full = 0;
  double plain = 0;
  double xeon = 0;
  for (const Bar& bar : bars) {
    rb::ThroughputConfig cfg;
    if (bar.xeon) {
      cfg.spec = rb::ServerSpec::SharedBusXeon();
    }
    cfg.multi_queue = bar.multi_queue;
    cfg.batching = bar.batching ? rb::BatchingConfig{32, 16} : rb::BatchingConfig{1, 1};
    rb::ThroughputResult r = rb::SolveThroughput(cfg);
    double mpps = r.pps / 1e6;
    if (bar.multi_queue) {
      full = mpps;
    } else if (!bar.xeon && !bar.batching) {
      plain = mpps;
    } else if (bar.xeon) {
      xeon = mpps;
    }
    report.AddRow({bar.label, rb::Format("%.2f", bar.paper_mpps), rb::Format("%.2f", mpps),
                   rb::RatioCell(mpps, bar.paper_mpps), r.bottleneck});
  }
  report.AddNote(rb::Format("cumulative gains: %.1fx over unmodified Nehalem (paper: 6.7x), "
                            "%.1fx over shared-bus Xeon (paper: 11x)",
                            full / plain, full / xeon));
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
