// Ablation: Direct VLB vs classic two-phase VLB (§3.2's 2R-vs-3R "VLB
// tax"). Sweeps the offered 64 B load on the RB4 mesh and reports loss
// for both routing modes, exposing the capacity gap between the 2R
// (direct) and 3R (always-balanced) operating points — and that the gap
// closes as the traffic matrix turns adversarial (single-pair).
#include <cstdio>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

double LossAt(bool direct_vlb, const rb::TrafficMatrix& tm, double per_port_bps,
              double duration) {
  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.vlb.direct_vlb = direct_vlb;
  rb::ClusterSim sim(cfg);
  rb::FixedSizeDistribution sizes(64);
  return sim.RunUniform(tm, per_port_bps, &sizes, duration).loss_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_ablation_vlb");
  auto* duration = flags.AddDouble("duration", 0.01, "simulated seconds per point");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Ablation: VLB mode", "loss vs offered 64 B load, uniform matrix");
  report.SetColumns({"per-port Gbps", "Direct VLB loss", "classic VLB loss"});
  for (double gbps : {2.0, 2.4, 2.8, 3.0, 3.2, 3.6, 4.0}) {
    auto tm = rb::TrafficMatrix::Uniform(4);
    report.AddRow({rb::Format("%.1f", gbps),
                   rb::Format("%.1f%%", 100 * LossAt(true, tm, gbps * 1e9, *duration)),
                   rb::Format("%.1f%%", 100 * LossAt(false, tm, gbps * 1e9, *duration))});
  }
  report.AddNote("Direct VLB rides the uniform matrix to the 2R operating point; classic VLB");
  report.AddNote("pays the 50% forwarding tax and saturates earlier (§3.2).");
  report.Print();

  rb::Report adv("Ablation: VLB mode (adversarial)", "single-pair matrix, 64 B");
  adv.SetColumns({"pair offered Gbps", "Direct VLB loss", "classic VLB loss"});
  for (double gbps : {4.0, 6.0, 8.0, 10.0}) {
    auto tm = rb::TrafficMatrix::SinglePair(4, 0, 2);
    adv.AddRow({rb::Format("%.1f", gbps),
                rb::Format("%.1f%%", 100 * LossAt(true, tm, gbps * 1e9, *duration)),
                rb::Format("%.1f%%", 100 * LossAt(false, tm, gbps * 1e9, *duration))});
  }
  adv.AddNote("with one hot pair most Direct-VLB traffic is load-balanced anyway, so the two");
  adv.AddNote("modes converge — the worst-case guarantee costs nothing extra.");
  adv.Print();

  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
