// Reproduces Figure 8: maximum loss-free forwarding rate (top) as a
// function of packet size for minimal forwarding, and (bottom) per
// application for 64 B packets and the Abilene workload.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "workload/abilene.hpp"

namespace {

rb::ThroughputResult Solve(rb::App app, double bytes) {
  rb::ThroughputConfig cfg;
  cfg.app = app;
  cfg.frame_bytes = bytes;
  return rb::SolveThroughput(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig8_workloads");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  double abilene_mean = rb::AbileneSizeDistribution().MeanSize();

  {
    rb::Report top("Figure 8 (top)", "minimal forwarding rate vs packet size");
    top.SetColumns({"packet size", "model Gbps", "model Mpps", "bottleneck", "paper"});
    struct Pt {
      double bytes;
      const char* label;
      const char* paper;
    };
    const Pt pts[] = {
        {64, "64 B", "9.7 Gbps / 18.96 Mpps"},
        {128, "128 B", "(curve)"},
        {256, "256 B", "~24.6 Gbps (input-limited)"},
        {512, "512 B", "24.6 Gbps (input-limited)"},
        {1024, "1024 B", "24.6 Gbps (input-limited)"},
        {0, "Abilene", "24.6 Gbps (input-limited)"},
    };
    for (const Pt& pt : pts) {
      double bytes = pt.bytes > 0 ? pt.bytes : abilene_mean;
      rb::ThroughputResult r = Solve(rb::App::kMinimalForwarding, bytes);
      top.AddRow({pt.label, rb::Format("%.2f", r.bps / 1e9), rb::Format("%.2f", r.pps / 1e6),
                  r.bottleneck, pt.paper});
    }
    top.Print();
    if (!csv->empty()) {
      top.WriteCsv(*csv + ".top.csv");
    }
  }

  {
    rb::Report bottom("Figure 8 (bottom)", "rate per application, 64 B and Abilene");
    bottom.SetColumns(
        {"application", "workload", "paper Gbps", "model Gbps", "ratio", "bottleneck"});
    struct Pt {
      rb::App app;
      bool abilene;
      double paper;
    };
    const Pt pts[] = {
        {rb::App::kMinimalForwarding, false, 9.7},  {rb::App::kMinimalForwarding, true, 24.6},
        {rb::App::kIpRouting, false, 6.35},         {rb::App::kIpRouting, true, 24.6},
        {rb::App::kIpsec, false, 1.4},              {rb::App::kIpsec, true, 4.45},
    };
    for (const Pt& pt : pts) {
      rb::ThroughputResult r = Solve(pt.app, pt.abilene ? abilene_mean : 64);
      bottom.AddRow({rb::AppName(pt.app), pt.abilene ? "Abilene" : "64 B",
                     rb::Format("%.2f", pt.paper), rb::Format("%.2f", r.bps / 1e9),
                     rb::RatioCell(r.bps / 1e9, pt.paper), r.bottleneck});
    }
    bottom.AddNote("64 B workloads are CPU-bound; forwarding/routing at Abilene sizes hit the");
    bottom.AddNote("2-NIC 24.6 Gbps input cap; IPsec stays CPU-bound everywhere (as in the paper).");
    bottom.Print();
    if (!csv->empty()) {
      bottom.WriteCsv(*csv + ".bottom.csv");
    }
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
