// Reproduces Figure 8: maximum loss-free forwarding rate (top) as a
// function of packet size for minimal forwarding, and (bottom) per
// application for 64 B packets and the Abilene workload.
//
// The bottom table also reports a measured single-core rate from the real
// Click pipeline (bulk-injected, so the harness is not part of what is
// measured); it is this host's number, shown next to the model/paper
// columns for shape comparison, not calibration.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "telemetry/json.hpp"
#include "telemetry/profiler.hpp"
#include "workload/abilene.hpp"
#include "workload/injector.hpp"

namespace {

rb::ThroughputResult Solve(rb::App app, double bytes) {
  rb::ThroughputConfig cfg;
  cfg.app = app;
  cfg.frame_bytes = bytes;
  return rb::SolveThroughput(cfg);
}

struct Measured {
  double mpps = 0;
  double gbps = 0;
  double cycles_per_packet = 0;
};

// One (app, workload) point through the real pipeline: bulk-injected
// bursts, single core, wall-clock packets/sec.
Measured MeasureWorkload(rb::App app, bool abilene, int packets, bool compile_programs) {
  namespace tele = rb::telemetry;

  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 1;
  cfg.cores = 1;
  cfg.app = app;
  cfg.pool_packets = 16384;
  cfg.table.num_routes = 65536;
  cfg.compile_programs = compile_programs;
  rb::SingleServerRouter router(cfg);
  router.Initialize();

  rb::InjectorConfig inj_cfg;
  inj_cfg.abilene = abilene;
  inj_cfg.synthetic.packet_size = 64;
  std::unique_ptr<rb::PrefixSampler> sampler;
  if (app == rb::App::kIpRouting) {
    rb::TableGenConfig tg = cfg.table;
    tg.num_next_hops = static_cast<uint32_t>(cfg.num_ports);
    sampler = std::make_unique<rb::PrefixSampler>(tg);
    inj_cfg.dst_sampler = sampler.get();
  }
  inj_cfg.recycled_payload_is_clean = (app != rb::App::kIpsec);
  rb::BulkInjector injector(inj_cfg, &router.pool());
  injector.PrecomputePlan(static_cast<size_t>(packets));
  {
    rb::PacketBatch warm;
    injector.NextBurst(rb::PacketBatch::kCapacity, &warm);
    warm.ReleaseAll();
  }
  const uint64_t warm_bytes = injector.injected_bytes();

  uint64_t forwarded = 0;
  uint64_t bytes = 0;
  rb::Packet* burst[64];
  rb::PacketBatch inject_batch;
  const uint64_t t0 = tele::ReadCycles();
  int done = 0;
  int burst_idx = 0;
  while (done < packets) {
    uint32_t want = static_cast<uint32_t>(
        std::min<int>(static_cast<int>(rb::PacketBatch::kCapacity), packets - done));
    uint32_t got = injector.NextBurst(want, &inject_batch);
    router.DeliverBatch(burst_idx % cfg.num_ports, &inject_batch, 0.0);
    done += static_cast<int>(got);
    burst_idx++;
    router.RunUntilIdle();
    for (int port = 0; port < cfg.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(burst[i]);
        }
        forwarded += n;
      }
    }
  }
  const uint64_t cycles = tele::ReadCycles() - t0;
  bytes = injector.injected_bytes() - warm_bytes;

  Measured m;
  if (forwarded > 0 && cycles > 0 && tele::CyclesPerSecond() > 0) {
    double secs = static_cast<double>(cycles) / tele::CyclesPerSecond();
    m.mpps = static_cast<double>(forwarded) / secs / 1e6;
    double mean_bytes = static_cast<double>(bytes) / static_cast<double>(done);
    m.gbps = m.mpps * 1e6 * mean_bytes * 8 / 1e9;
    m.cycles_per_packet = static_cast<double>(cycles) / static_cast<double>(forwarded);
  }
  return m;
}

// Min-of-N repeats: interference only ever adds cycles, so the minimum is
// the estimator of uncontended cost (same policy as bench_fig9).
void KeepMin(Measured* best, const Measured& cand) {
  if (cand.cycles_per_packet > 0 &&
      (best->cycles_per_packet == 0 || cand.cycles_per_packet < best->cycles_per_packet)) {
    *best = cand;
  }
}

Measured MeasureBest(rb::App app, bool abilene, int packets, bool compile, int reps) {
  Measured best;
  for (int r = 0; r < reps; ++r) {
    KeepMin(&best, MeasureWorkload(app, abilene, packets, compile));
  }
  return best;
}

// A/B pair with interleaved reps: alternating interpreted/compiled runs
// sample the same warm-up and frequency conditions, so the min-of-N pair
// is order-unbiased — running all of one mode first systematically favors
// whichever mode goes second.
void MeasureAbBoth(rb::App app, bool abilene, int packets, int reps, Measured* interpreted,
                   Measured* compiled) {
  for (int r = 0; r < reps; ++r) {
    KeepMin(interpreted, MeasureWorkload(app, abilene, packets, /*compile_programs=*/false));
    KeepMin(compiled, MeasureWorkload(app, abilene, packets, /*compile_programs=*/true));
  }
}

struct AbPoint {
  const char* key;  // stable JSON key tracked by check_bench_regression.py
  Measured interpreted;
  Measured compiled;
};

// The compiled-vs-interpreted A/B document gated in CI: compiling the
// classifier chains must never make a workload slower.
void WriteAbJson(const std::string& path, const std::vector<AbPoint>& points) {
  rb::telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("rb.bench_fig8_compiled_ab.v1");
  w.Key("cycle_source");
  w.String(rb::telemetry::CycleSourceName());
  w.Key("workloads");
  w.BeginObject();
  for (const AbPoint& p : points) {
    w.Key(p.key);
    w.BeginObject();
    w.Key("interpreted_cycles_per_packet");
    w.Double(p.interpreted.cycles_per_packet);
    w.Key("compiled_cycles_per_packet");
    w.Double(p.compiled.cycles_per_packet);
    w.Key("interpreted_mpps");
    w.Double(p.interpreted.mpps);
    w.Key("compiled_mpps");
    w.Double(p.compiled.mpps);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "warning: failed to write %s\n", path.c_str());
    return;
  }
  fprintf(f, "%s\n", w.str().c_str());
  fclose(f);
  printf("compiled A/B JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig8_workloads");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* packets = flags.AddInt64("packets", 50000, "packets per measured point");
  auto* smoke = flags.AddBool("smoke", false, "tiny run for CI (overrides --packets)");
  auto* json = flags.AddString(
      "json", "", "write the compiled-vs-interpreted A/B JSON here (runs both modes)");
  auto* ab_reps = flags.AddInt64("ab-reps", 3, "repeats per A/B mode; minimum-cycle run kept");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);
  const int measure_packets = *smoke ? 8000 : static_cast<int>(*packets);

  double abilene_mean = rb::AbileneSizeDistribution().MeanSize();

  {
    rb::Report top("Figure 8 (top)", "minimal forwarding rate vs packet size");
    top.SetColumns({"packet size", "model Gbps", "model Mpps", "bottleneck", "paper"});
    struct Pt {
      double bytes;
      const char* label;
      const char* paper;
    };
    const Pt pts[] = {
        {64, "64 B", "9.7 Gbps / 18.96 Mpps"},
        {128, "128 B", "(curve)"},
        {256, "256 B", "~24.6 Gbps (input-limited)"},
        {512, "512 B", "24.6 Gbps (input-limited)"},
        {1024, "1024 B", "24.6 Gbps (input-limited)"},
        {0, "Abilene", "24.6 Gbps (input-limited)"},
    };
    for (const Pt& pt : pts) {
      double bytes = pt.bytes > 0 ? pt.bytes : abilene_mean;
      rb::ThroughputResult r = Solve(rb::App::kMinimalForwarding, bytes);
      top.AddRow({pt.label, rb::Format("%.2f", r.bps / 1e9), rb::Format("%.2f", r.pps / 1e6),
                  r.bottleneck, pt.paper});
    }
    top.Print();
    if (!csv->empty()) {
      top.WriteCsv(*csv + ".top.csv");
    }
  }

  {
    rb::Report bottom("Figure 8 (bottom)", "rate per application, 64 B and Abilene");
    bottom.SetColumns({"application", "workload", "paper Gbps", "model Gbps", "ratio",
                       "measured Mpps (1 core)", "bottleneck"});
    struct Pt {
      const char* key;
      rb::App app;
      bool abilene;
      double paper;
    };
    const Pt pts[] = {
        {"fwd_64", rb::App::kMinimalForwarding, false, 9.7},
        {"fwd_abilene", rb::App::kMinimalForwarding, true, 24.6},
        {"rtr_64", rb::App::kIpRouting, false, 6.35},
        {"rtr_abilene", rb::App::kIpRouting, true, 24.6},
        {"ipsec_64", rb::App::kIpsec, false, 1.4},
        {"ipsec_abilene", rb::App::kIpsec, true, 4.45},
    };
    const int reps = *ab_reps > 0 ? static_cast<int>(*ab_reps) : 1;
    std::vector<AbPoint> ab;
    for (const Pt& pt : pts) {
      rb::ThroughputResult r = Solve(pt.app, pt.abilene ? abilene_mean : 64);
      // The headline measured column runs with compiled programs, the
      // production default; --json additionally measures the interpreted
      // path for the A/B gate, interleaving the two modes' reps.
      Measured m;
      if (!json->empty()) {
        Measured interp;
        MeasureAbBoth(pt.app, pt.abilene, measure_packets, reps, &interp, &m);
        ab.push_back({pt.key, interp, m});
      } else {
        m = MeasureBest(pt.app, pt.abilene, measure_packets, /*compile=*/true, reps);
      }
      bottom.AddRow({rb::AppName(pt.app), pt.abilene ? "Abilene" : "64 B",
                     rb::Format("%.2f", pt.paper), rb::Format("%.2f", r.bps / 1e9),
                     rb::RatioCell(r.bps / 1e9, pt.paper),
                     rb::Format("%.2f (%.2f Gbps)", m.mpps, m.gbps), r.bottleneck});
    }
    bottom.AddNote("64 B workloads are CPU-bound; forwarding/routing at Abilene sizes hit the");
    bottom.AddNote("2-NIC 24.6 Gbps input cap; IPsec stays CPU-bound everywhere (as in the paper).");
    bottom.AddNote("measured = this host's single-core Click pipeline under bulk injection with");
    bottom.AddNote("compiled classifier programs (DESIGN.md §16); shape comparison only, not");
    bottom.AddNote("calibrated to the paper's Nehalem testbed.");
    bottom.Print();
    if (!csv->empty()) {
      bottom.WriteCsv(*csv + ".bottom.csv");
    }
    if (!json->empty()) {
      WriteAbJson(*json, ab);
    }
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
