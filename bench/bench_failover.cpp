// Failover experiment on the N-node Direct-VLB mesh: §3's graceful-
// degradation claim, measured. A node dies mid-run and later returns; the
// bench reports the before/during/after throughput-latency-loss timeline
// and checks that
//   * the degraded steady state delivers the analytic mesh bound
//     ((N-f)/N)^2 of offered load (within 10%), with the failure-taxonomy
//     drops accounting for exactly the dead-endpoint traffic — i.e. no
//     residual blackholing via the dead node once detection has fired;
//   * throughput recovers after the node comes back, and the time to
//     recover is reported.
// Any failed check exits nonzero. --failures accepts a custom schedule
// (see cluster/failure.hpp), in which case the timeline is reported but
// the single-node-outage checks are skipped. --metrics-out dumps the
// telemetry registry (des/failures/* counters included) as JSON.
#include <cstdio>

#include <string>
#include <vector>

#include "cluster/des.hpp"
#include "cluster/topology.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

struct PhaseStats {
  uint64_t offered = 0;
  uint64_t delivered = 0;
  uint64_t failed_dropped = 0;
  double latency_sum = 0;

  double delivered_fraction() const {
    return offered ? static_cast<double>(delivered) / static_cast<double>(offered) : 0;
  }
  double failed_fraction() const {
    return offered ? static_cast<double>(failed_dropped) / static_cast<double>(offered) : 0;
  }
  double mean_latency_us() const {
    return delivered ? latency_sum / static_cast<double>(delivered) * 1e6 : 0;
  }
};

// Aggregates timeline buckets whose window lies entirely inside [from, to).
PhaseStats Aggregate(const std::vector<rb::TimelineBucket>& timeline, double window, double from,
                     double to) {
  PhaseStats agg;
  for (size_t i = 0; i < timeline.size(); ++i) {
    double start = static_cast<double>(i) * window;
    if (start < from || start + window > to) {
      continue;
    }
    agg.offered += timeline[i].offered;
    agg.delivered += timeline[i].delivered;
    agg.failed_dropped += timeline[i].failed_dropped;
    agg.latency_sum += timeline[i].latency_sum;
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_failover");
  auto* nodes = flags.AddInt64("nodes", 8, "mesh size N");
  auto* rate_gbps = flags.AddDouble("rate-gbps", 2.5, "offered load per external port (Gbps)");
  auto* pkt_bytes = flags.AddInt64("pkt-bytes", 300, "packet size");
  auto* duration = flags.AddDouble("duration", 0.06, "simulated seconds");
  auto* fail_at = flags.AddDouble("fail-at", 0.02, "node-down time (s)");
  auto* recover_at = flags.AddDouble("recover-at", 0.04, "node-up time (s)");
  auto* window = flags.AddDouble("window", 2e-3, "timeline bucket width (s)");
  auto* detect = flags.AddDouble("detect", 200e-6, "failure detection delay (s)");
  auto* fail_node = flags.AddInt64("fail-node", -1, "node to kill (-1 = N/2)");
  auto* failures =
      flags.AddString("failures", "", "custom schedule, e.g. '0.02:node-down:4,0.04:node-up:4'");
  auto* seed = flags.AddInt64("seed", 4, "RNG seed");
  auto* smoke = flags.AddBool("smoke", false, "small fast preset (overrides sizing flags)");
  auto* csv = flags.AddString("csv", "", "optional CSV output path (per-bucket timeline)");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  if (*smoke) {
    *nodes = 4;
    *rate_gbps = 2.0;
    *duration = 0.018;
    *fail_at = 0.006;
    *recover_at = 0.012;
    *window = 2e-3;
  }

  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.num_nodes = static_cast<uint16_t>(*nodes);
  cfg.seed = static_cast<uint64_t>(*seed);
  cfg.failure_detection_delay = *detect;
  cfg.timeline_window = *window;
  uint16_t dead = *fail_node < 0 ? static_cast<uint16_t>(*nodes / 2)
                                 : static_cast<uint16_t>(*fail_node);
  bool scripted = !failures->empty();
  if (scripted) {
    if (!rb::FailureSchedule::Parse(*failures, &cfg.failures)) {
      std::fprintf(stderr, "bad --failures spec: %s\n", failures->c_str());
      return 2;
    }
  } else {
    cfg.failures.NodeDown(dead, *fail_at).NodeUp(dead, *recover_at);
  }

  rb::ClusterSim sim(cfg);
  sim.BindTelemetry(&rb::telemetry::MetricRegistry::Global(), nullptr);
  rb::FixedSizeDistribution sizes(static_cast<uint32_t>(*pkt_bytes));
  auto tm = rb::TrafficMatrix::Uniform(cfg.num_nodes);
  rb::ClusterRunStats stats = sim.RunUniform(tm, *rate_gbps * 1e9, &sizes, *duration);

  // Per-bucket timeline: the before/during/after picture.
  rb::Report timeline("§3 failover timeline",
                      rb::Format("N=%u mesh, node %u down at %.3fs%s, %.1f Gbps/port offered",
                                 cfg.num_nodes, dead, *fail_at,
                                 scripted ? " (custom schedule)" : "", *rate_gbps));
  timeline.SetColumns(
      {"t (ms)", "offered Gbps", "delivered Gbps", "loss %", "failure drops", "mean latency us"});
  double bits_per_pkt = static_cast<double>(*pkt_bytes) * 8.0;
  for (size_t i = 0; i < stats.timeline.size(); ++i) {
    const rb::TimelineBucket& b = stats.timeline[i];
    timeline.AddRow({rb::Format("%.1f", static_cast<double>(i) * *window * 1e3),
                     rb::Format("%.2f", static_cast<double>(b.offered) * bits_per_pkt / *window / 1e9),
                     rb::Format("%.2f",
                                static_cast<double>(b.delivered) * bits_per_pkt / *window / 1e9),
                     rb::Format("%.2f", b.loss_fraction() * 100),
                     rb::Format("%llu", static_cast<unsigned long long>(b.failed_dropped)),
                     rb::Format("%.1f", b.mean_latency() * 1e6)});
  }
  for (const rb::FailureLogEntry& fl : stats.failure_log) {
    timeline.AddNote(rb::Format("%s node %u: applied %.4fs, detected %.4fs",
                                rb::FailureKindName(fl.event.kind), fl.event.node, fl.applied,
                                fl.detected));
  }
  timeline.AddNote(rb::Format("failover reroutes %llu, flowlet repins %llu, invalidated %llu",
                              static_cast<unsigned long long>(stats.failover_reroutes),
                              static_cast<unsigned long long>(stats.flowlet_repins),
                              static_cast<unsigned long long>(stats.flowlets_invalidated)));
  timeline.Print();
  if (!csv->empty()) {
    timeline.WriteCsv(*csv);
  }

  int failures_found = 0;
  if (!scripted) {
    // Phase aggregation. The degraded window opens one bucket after the
    // outage so the detection transient (ground truth down, beliefs not yet
    // updated) does not blur the steady state; same for recovery.
    PhaseStats before = Aggregate(stats.timeline, *window, 0, *fail_at);
    PhaseStats during =
        Aggregate(stats.timeline, *window, *fail_at + *window, *recover_at);
    PhaseStats after = Aggregate(stats.timeline, *window, *recover_at + *window, *duration);
    double bound =
        rb::FullMeshTopology::DegradedUniformDeliveredFraction(cfg.num_nodes, 1);

    rb::Report phases("§3 graceful degradation", "steady-state delivered fraction by phase");
    phases.SetColumns({"phase", "delivered/offered", "expected", "failure drops/offered",
                       "mean latency us"});
    phases.AddRow({"before", rb::Format("%.3f", before.delivered_fraction()), "~1",
                   rb::Format("%.3f", before.failed_fraction()),
                   rb::Format("%.1f", before.mean_latency_us())});
    phases.AddRow({"degraded", rb::Format("%.3f", during.delivered_fraction()),
                   rb::Format("%.3f ((N-1)/N)^2", bound),
                   rb::Format("%.3f", during.failed_fraction()),
                   rb::Format("%.1f", during.mean_latency_us())});
    phases.AddRow({"recovered", rb::Format("%.3f", after.delivered_fraction()), "~1",
                   rb::Format("%.3f", after.failed_fraction()),
                   rb::Format("%.1f", after.mean_latency_us())});

    // Time to recover: first bucket at/past node-up delivering >= 97%.
    double recovered_at = -1;
    for (size_t i = 0; i < stats.timeline.size(); ++i) {
      double start = static_cast<double>(i) * *window;
      if (start < *recover_at || stats.timeline[i].offered == 0) {
        continue;
      }
      const rb::TimelineBucket& b = stats.timeline[i];
      if (static_cast<double>(b.delivered) / static_cast<double>(b.offered) >= 0.97) {
        recovered_at = start + *window;
        break;
      }
    }
    phases.AddNote(recovered_at >= 0
                       ? rb::Format("time to recover: %.1f ms after node-up (first >=97%% bucket)",
                                    (recovered_at - *recover_at) * 1e3)
                       : "time to recover: NOT RECOVERED within the run");
    phases.Print();

    auto check = [&failures_found](bool ok, const std::string& what) {
      if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        failures_found++;
      }
    };
    check(before.delivered_fraction() > 0.97,
          rb::Format("pre-failure phase lossy (%.3f delivered)", before.delivered_fraction()));
    check(std::abs(during.delivered_fraction() - bound) <= 0.1 * bound,
          rb::Format("degraded phase %.3f not within 10%% of the mesh bound %.3f",
                     during.delivered_fraction(), bound));
    // All failure drops in the degraded steady state are dead-endpoint
    // traffic (1 - bound of offered). More means survivors kept routing via
    // the dead node past the detection delay.
    check(during.failed_fraction() <= (1 - bound) + 0.02,
          rb::Format("residual blackholing: %.3f of offered failure-dropped, expected %.3f",
                     during.failed_fraction(), 1 - bound));
    check(after.delivered_fraction() > 0.97,
          rb::Format("no recovery after node-up (%.3f delivered)", after.delivered_fraction()));
    check(recovered_at >= 0, "throughput never returned to >=97% after node-up");
  }

  if (rb::telemetry::Enabled()) {
    // The seed rides along in the metrics dump so a failing soak/CI run
    // can be replayed exactly.
    rb::telemetry::MetricRegistry::Global().GetGauge("bench/seed")->Set(
        static_cast<double>(*seed));
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return failures_found == 0 ? 0 : 1;
}
