// Reproduces Table 1: forwarding rates under the three polling
// configurations (no batching; poll-driven batching kp=32; poll-driven +
// NIC-driven batching kn=16), 64 B packets, all 8 cores.
//
// Also verifies the mechanism on the software NIC: the PCIe descriptor
// transaction count drops 16x when kn=16 batches descriptors.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"
#include "workload/synthetic.hpp"

namespace {

uint64_t DescriptorTransactions(uint16_t kn, int packets) {
  rb::PacketPool pool(4096);
  rb::NicConfig cfg;
  cfg.kn = kn;
  rb::NicPort nic(cfg);
  rb::SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  rb::SyntheticGenerator gen(gen_cfg);
  for (int i = 0; i < packets; ++i) {
    nic.Deliver(rb::AllocFrame(gen.Next(), &pool), 0.0);
  }
  nic.FlushAllStaged();
  rb::Packet* burst[64];
  size_t n;
  while ((n = nic.PollRx(0, burst, 64)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      pool.Free(burst[i]);
    }
  }
  // Isolate descriptor transactions: subtract the per-packet data DMA
  // transactions (one per 64 B frame).
  return nic.pcie_counters().transactions - static_cast<uint64_t>(packets);
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_table1_batching");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  struct Row {
    const char* label;
    uint16_t kp;
    uint16_t kn;
    double paper_gbps;
  };
  const Row rows[] = {
      {"no batching (kp=1, kn=1)", 1, 1, 1.46},
      {"poll-driven batching (kp=32, kn=1)", 32, 1, 4.97},
      {"poll-driven + NIC-driven (kp=32, kn=16)", 32, 16, 9.77},
  };

  rb::Report report("Table 1", "forwarding rates under different polling configurations (64 B)");
  report.SetColumns({"configuration", "paper Gbps", "model Gbps", "ratio", "desc PCIe txns/4096 pkts"});
  for (const Row& row : rows) {
    rb::ThroughputConfig cfg;
    cfg.batching = {row.kp, row.kn};
    double gbps = rb::SolveThroughput(cfg).bps / 1e9;
    report.AddRow({row.label, rb::Format("%.2f", row.paper_gbps), rb::Format("%.2f", gbps),
                   rb::RatioCell(gbps, row.paper_gbps),
                   rb::Format("%llu", static_cast<unsigned long long>(
                                          DescriptorTransactions(row.kn, 4096)))});
  }
  report.AddNote("kp=32 is the Click default maximum; kn=16 is the PCIe limit (16 descriptors");
  report.AddNote("of 16 B per 256 B max-payload transaction) — Table 1 caption.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
