// Reproduces Table 1: forwarding rates under the three polling
// configurations (no batching; poll-driven batching kp=32; poll-driven +
// NIC-driven batching kn=16), 64 B packets, all 8 cores.
//
// Also verifies the mechanism on the software NIC: the PCIe descriptor
// transaction count drops 16x when kn=16 batches descriptors.
//
// A third, measured axis sweeps the graph-level batch size g — how many
// packets travel together through the element chain per PushBatch — at
// fixed kp=32/kn=16. kp/kn amortize the NIC boundary; g amortizes the
// per-element costs (virtual dispatch, profiler scopes, telemetry), so
// cycles/packet should fall as g grows from 1 to the full poll burst.
#include <algorithm>
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"
#include "telemetry/profiler.hpp"
#include "workload/injector.hpp"
#include "workload/synthetic.hpp"

namespace {

uint64_t DescriptorTransactions(uint16_t kn, int packets) {
  rb::PacketPool pool(4096);
  rb::NicConfig cfg;
  cfg.kn = kn;
  rb::NicPort nic(cfg);
  rb::SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  rb::SyntheticGenerator gen(gen_cfg);
  for (int i = 0; i < packets; ++i) {
    nic.Deliver(rb::AllocFrame(gen.Next(), &pool), 0.0);
  }
  nic.FlushAllStaged();
  rb::Packet* burst[64];
  size_t n;
  while ((n = nic.PollRx(0, burst, 64)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      pool.Free(burst[i]);
    }
  }
  // Isolate descriptor transactions: subtract the per-packet data DMA
  // transactions (one per 64 B frame).
  return nic.pcie_counters().transactions - static_cast<uint64_t>(packets);
}

// Measured cycles/packet for 64 B minimal forwarding through the real
// element graph with the graph-level batch size pinned to `graph_batch`
// (kp=32, kn=16 fixed — only the in-graph batch varies).
double GraphBatchCyclesPerPacket(uint16_t graph_batch, int packets) {
  namespace tele = rb::telemetry;

  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 1;
  cfg.cores = 1;
  cfg.app = rb::App::kMinimalForwarding;
  cfg.pool_packets = 16384;
  cfg.graph_batch = graph_batch;
  rb::SingleServerRouter router(cfg);
  router.Initialize();

  // Bulk injection so the sweep measures the graph, not per-packet frame
  // construction (the same switch bench_fig9_breakdown made).
  rb::InjectorConfig inj_cfg;
  inj_cfg.synthetic.packet_size = 64;
  inj_cfg.recycled_payload_is_clean = true;  // minimal forwarding: payload untouched
  rb::BulkInjector injector(inj_cfg, &router.pool());
  injector.PrecomputePlan(static_cast<size_t>(packets));
  {
    rb::PacketBatch warm;
    injector.NextBurst(rb::PacketBatch::kCapacity, &warm);
    warm.ReleaseAll();
  }

  uint64_t forwarded = 0;
  rb::Packet* burst[64];
  rb::PacketBatch inject_batch;
  const uint64_t t0 = tele::ReadCycles();
  int done = 0;
  int burst_idx = 0;
  while (done < packets) {
    uint32_t want = static_cast<uint32_t>(
        std::min<int>(static_cast<int>(rb::PacketBatch::kCapacity), packets - done));
    uint32_t got = injector.NextBurst(want, &inject_batch);
    router.DeliverBatch(burst_idx % cfg.num_ports, &inject_batch, 0.0);
    done += static_cast<int>(got);
    burst_idx++;
    router.RunUntilIdle();
    for (int port = 0; port < cfg.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(burst[i]);
        }
        forwarded += n;
      }
    }
  }
  const uint64_t cycles = tele::ReadCycles() - t0;
  return forwarded > 0 ? static_cast<double>(cycles) / static_cast<double>(forwarded) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_table1_batching");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* packets = flags.AddInt64("packets", 100000, "packets per graph-batch sweep point");
  auto* smoke = flags.AddBool("smoke", false, "tiny run for CI (overrides --packets)");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  struct Row {
    const char* label;
    uint16_t kp;
    uint16_t kn;
    double paper_gbps;
  };
  const Row rows[] = {
      {"no batching (kp=1, kn=1)", 1, 1, 1.46},
      {"poll-driven batching (kp=32, kn=1)", 32, 1, 4.97},
      {"poll-driven + NIC-driven (kp=32, kn=16)", 32, 16, 9.77},
  };

  rb::Report report("Table 1", "forwarding rates under different polling configurations (64 B)");
  report.SetColumns({"configuration", "paper Gbps", "model Gbps", "ratio", "desc PCIe txns/4096 pkts"});
  for (const Row& row : rows) {
    rb::ThroughputConfig cfg;
    cfg.batching = {row.kp, row.kn};
    double gbps = rb::SolveThroughput(cfg).bps / 1e9;
    report.AddRow({row.label, rb::Format("%.2f", row.paper_gbps), rb::Format("%.2f", gbps),
                   rb::RatioCell(gbps, row.paper_gbps),
                   rb::Format("%llu", static_cast<unsigned long long>(
                                          DescriptorTransactions(row.kn, 4096)))});
  }
  report.AddNote("kp=32 is the Click default maximum; kn=16 is the PCIe limit (16 descriptors");
  report.AddNote("of 16 B per 256 B max-payload transaction) — Table 1 caption.");
  report.Print();

  // Third axis: graph-level batch size, measured on the real pipeline.
  const int sweep_packets = *smoke ? 8000 : static_cast<int>(*packets);
  rb::Report sweep("Table 1 (graph-batch axis)",
                   "measured cycles/packet vs in-graph batch size (fwd, 64 B, kp=32, kn=16)");
  sweep.SetColumns({"graph batch g", "cycles/packet", "vs g=1"});
  const uint16_t sweep_g[] = {1, 8, 32};
  double base_cpp = 0.0;
  for (uint16_t g : sweep_g) {
    double cpp = GraphBatchCyclesPerPacket(g, sweep_packets);
    if (g == 1) {
      base_cpp = cpp;
    }
    sweep.AddRow({rb::Format("%u", g), rb::Format("%.0f", cpp),
                  base_cpp > 0 ? rb::Format("%.2fx", cpp / base_cpp) : std::string("n/a")});
  }
  sweep.AddNote("g caps how many packets each PushBatch carries; per-element fixed costs");
  sweep.AddNote("(dispatch, scopes, telemetry) amortize over g like kp amortizes the poll.");
  sweep.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
