// Reproduces §6.2 "Reordering": the Abilene trace forced through a single
// input/output pair at a rate exceeding any single path, measured as the
// fraction of same-flow packet sequences delivered out of order — with
// the flowlet-based avoidance scheme (paper: 0.15%) and with plain
// per-packet Direct VLB (paper: 5.5%).
#include <cstdio>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/abilene.hpp"

namespace {

rb::ClusterRunStats Run(bool flowlets, double offered_bps, double duration, uint64_t seed) {
  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.vlb.flowlets = flowlets;
  cfg.seed = seed;
  rb::ClusterSim sim(cfg);
  auto gen_cfg =
      rb::FlowTrafficGenerator::ConfigForRate(offered_bps, 729.6, 40, 20000, seed * 31 + 7);
  rb::FlowTrafficGenerator gen(gen_cfg, std::make_unique<rb::AbileneSizeDistribution>());
  return sim.RunSinglePairTrace(&gen, 0, 2, duration);
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_rb4_reordering");
  auto* offered = flags.AddDouble("offered_gbps", 9.0, "offered load on the single pair");
  auto* duration = flags.AddDouble("duration", 0.05, "simulated seconds");
  auto* seed = flags.AddInt64("seed", 7, "RNG seed");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("§6.2 RB4 reordering",
                    "single overloaded pair, Abilene-like flow-structured trace");
  report.SetColumns({"scheme", "paper", "model reordered sequences", "model reordered packets",
                     "direct fraction"});

  for (bool flowlets : {true, false}) {
    rb::ClusterRunStats stats =
        Run(flowlets, *offered * 1e9, *duration, static_cast<uint64_t>(*seed));
    double direct_frac = static_cast<double>(stats.direct_packets) /
                         std::max<uint64_t>(1, stats.direct_packets + stats.balanced_packets);
    report.AddRow({flowlets ? "flowlet reordering-avoidance (delta = 100 ms)"
                            : "plain Direct VLB (per-packet balancing)",
                   flowlets ? "0.15%" : "5.5%",
                   rb::Format("%.3f%%", 100 * stats.reorder_sequence_fraction),
                   rb::Format("%.3f%%", 100 * stats.reorder_packet_fraction),
                   rb::Format("%.2f", direct_frac)});
  }
  report.AddNote("shape target: well under 1% with flowlets, several % without — an order-of-");
  report.AddNote("magnitude gap, as the prototype measured.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
