// Reproduces the §4.2 NUMA-placement experiment: "careful data placement
// is not [essential]". The paper disables one socket at a time: with the
// 4 cores of socket 0, packets AND descriptors are local; with the 4
// cores of socket 1, descriptors live in remote memory (Linux pins them
// to socket 0) and ~23% of memory accesses cross the inter-socket link —
// yet both placements forward at the same 6.3 Gbps, because neither the
// memory buses nor the inter-socket link is anywhere near its ceiling.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_numa_placement");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("§4.2 NUMA placement",
                    "4-core forwarding with local vs remote descriptor placement, 64 B");
  report.SetColumns({"placement", "remote-memory share", "rate Gbps", "bottleneck",
                     "inter-socket headroom"});

  for (bool remote : {false, true}) {
    rb::ThroughputConfig cfg;
    cfg.app = rb::App::kMinimalForwarding;
    cfg.frame_bytes = 64;
    cfg.cores_used = 4;  // one socket's cores
    rb::ThroughputResult r = rb::SolveThroughput(cfg);
    // Remote placement moves descriptor/bookkeeping accesses (~23% of
    // memory traffic, the paper's measured share) onto the QPI link; the
    // load stays far under the 144.34 Gbps empirical bound, so the rate
    // does not move.
    double qpi_load_bps =
        (remote ? 0.23 * r.per_packet.memory_bytes : r.per_packet.inter_socket_bytes) * 8 * r.pps;
    double headroom = rb::ServerSpec::Nehalem().inter_socket.empirical_bps / qpi_load_bps;
    report.AddRow({remote ? "socket 1 (descriptors remote)" : "socket 0 (all local)",
                   remote ? "23%" : "~0%", rb::Format("%.2f", r.bps / 1e9), r.bottleneck,
                   rb::Format("%.0fx", headroom)});
  }
  report.AddNote("paper: both placements measure 6.3 Gbps — 'custom data placement is not");
  report.AddNote("critical' for this workload. The model agrees: the CPU bound is identical and");
  report.AddNote("the inter-socket link has orders of magnitude of headroom either way.");
  report.AddNote("(our 4-core CPU bound is half the 8-core 9.7 Gbps; the paper's 6.3 Gbps point");
  report.AddNote("shows mild superlinearity in core count that the linear model does not carry.)");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
