// Ablation: the flowlet threshold delta. The prototype uses delta =
// 100 ms "a number well above the per-packet latency introduced by the
// cluster" (§6.1). Sweeping delta shows the trade: tiny deltas re-decide
// paths mid-flow (reordering climbs toward the per-packet VLB level);
// anything comfortably above the path-latency spread works.
#include <cstdio>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/abilene.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_ablation_flowlet_delta");
  auto* offered = flags.AddDouble("offered_gbps", 9.0, "offered load on the single pair");
  auto* duration = flags.AddDouble("duration", 0.05, "simulated seconds");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Ablation: flowlet delta", "reordering vs delta, single overloaded pair");
  report.SetColumns({"delta", "reordered sequences", "reordered packets", "spilled flowlets"});

  for (double delta : {0.0, 50e-6, 200e-6, 1e-3, 10e-3, 100e-3}) {
    rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
    if (delta == 0.0) {
      cfg.vlb.flowlets = false;
    } else {
      cfg.vlb.flowlet_delta = delta;
    }
    rb::ClusterSim sim(cfg);
    auto gen_cfg = rb::FlowTrafficGenerator::ConfigForRate(*offered * 1e9, 729.6, 40, 20000, 11);
    rb::FlowTrafficGenerator gen(gen_cfg, std::make_unique<rb::AbileneSizeDistribution>());
    rb::ClusterRunStats stats = sim.RunSinglePairTrace(&gen, 0, 2, *duration);
    report.AddRow({delta == 0.0 ? "off (per-packet VLB)" : rb::Format("%g ms", delta * 1e3),
                   rb::Format("%.3f%%", 100 * stats.reorder_sequence_fraction),
                   rb::Format("%.3f%%", 100 * stats.reorder_packet_fraction),
                   delta == 0.0 ? "-" : "(see spill note)"});
  }
  report.AddNote("the prototype's 100 ms sits far out on the flat part of the curve: in-flow gaps");
  report.AddNote("are ~50 us here, so any delta >> the ~25 us per-hop latency spread suffices.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
