// Reproduces Figure 9: per-packet CPU load (cycles/packet) as a function
// of the input rate for the three applications, against the nominal
// "cycles available" bound 8 x 2.8 GHz / r. The load lines are flat — the
// §5.3 observation that lets the authors extrapolate — and each
// application's line intersects the bound exactly at its measured maximum
// rate, identifying the CPU as the bottleneck.
//
// The model loads are published into a telemetry registry
// ("model/<app>/cycles_per_packet" gauges, "model/<app>/max_mpps" for the
// bound crossings) and the report table is built from the registry
// snapshot, so --metrics-out dumps exactly the numbers the table shows.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "telemetry/metrics.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig9_cpu_load");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Figure 9", "CPU load (cycles/packet) vs input rate, 64 B");
  report.SetColumns({"rate (Mpps)", "available cyc/pkt", "fwd", "rtr", "ipsec", "saturated"});

  const double total_cycles = 8 * 2.8e9;
  rb::telemetry::MetricRegistry registry;
  for (int a = 0; a < 3; ++a) {
    rb::ThroughputConfig cfg;
    cfg.app = static_cast<rb::App>(a);
    cfg.frame_bytes = 64;
    double cycles = rb::LoadsFor(cfg).cpu_cycles;
    const char* app = rb::AppName(static_cast<rb::App>(a));
    registry.GetGauge(rb::Format("model/%s/cycles_per_packet", app))->Set(cycles);
    registry.GetGauge(rb::Format("model/%s/max_mpps", app))->Set(total_cycles / cycles / 1e6);
  }

  // Read the loads back from the registry — the table reports exactly the
  // exported metric values.
  rb::telemetry::RegistrySnapshot snap = registry.Snapshot();
  auto gauge = [&](const std::string& name) {
    for (const auto& [n, v] : snap.gauges) {
      if (n == name) {
        return v;
      }
    }
    return 0.0;
  };
  double loads[3];
  for (int a = 0; a < 3; ++a) {
    loads[a] = gauge(rb::Format("model/%s/cycles_per_packet",
                                rb::AppName(static_cast<rb::App>(a))));
  }

  for (double mpps : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 19.0, 20.0}) {
    double available = total_cycles / (mpps * 1e6);
    std::string saturated;
    for (int a = 0; a < 3; ++a) {
      if (loads[a] > available) {
        saturated += std::string(saturated.empty() ? "" : ",") +
                     rb::AppName(static_cast<rb::App>(a));
      }
    }
    report.AddRow({rb::Format("%.0f", mpps), rb::Format("%.0f", available),
                   rb::Format("%.0f", loads[0]), rb::Format("%.0f", loads[1]),
                   rb::Format("%.0f", loads[2]), saturated.empty() ? "-" : saturated});
  }
  report.AddNote("loads are constant in the input rate (paper: 'per-packet load on the system is");
  report.AddNote("constant with increasing input packet rate'); crossings with the available-cycles");
  report.AddNote(rb::Format("curve give max rates: fwd %.1f, rtr %.1f, ipsec %.1f Mpps "
                            "(paper: 18.96, 12.4, 2.7)",
                            gauge("model/forwarding/max_mpps"), gauge("model/routing/max_mpps"),
                            gauge("model/ipsec/max_mpps")));
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::telemetry::ExportBundle bundle;
  bundle.registry = &registry;
  rb::MaybeWriteMetrics(*metrics_out, bundle);
  return 0;
}
