// Reproduces Figure 9: per-packet CPU load (cycles/packet) as a function
// of the input rate for the three applications, against the nominal
// "cycles available" bound 8 x 2.8 GHz / r. The load lines are flat — the
// §5.3 observation that lets the authors extrapolate — and each
// application's line intersects the bound exactly at its measured maximum
// rate, identifying the CPU as the bottleneck.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig9_cpu_load");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  flags.Parse(argc, argv);

  rb::Report report("Figure 9", "CPU load (cycles/packet) vs input rate, 64 B");
  report.SetColumns({"rate (Mpps)", "available cyc/pkt", "fwd", "rtr", "ipsec", "saturated"});

  double loads[3];
  for (int a = 0; a < 3; ++a) {
    rb::ThroughputConfig cfg;
    cfg.app = static_cast<rb::App>(a);
    cfg.frame_bytes = 64;
    loads[a] = rb::LoadsFor(cfg).cpu_cycles;
  }
  const double total_cycles = 8 * 2.8e9;
  for (double mpps : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 16.0, 19.0, 20.0}) {
    double available = total_cycles / (mpps * 1e6);
    std::string saturated;
    for (int a = 0; a < 3; ++a) {
      if (loads[a] > available) {
        saturated += std::string(saturated.empty() ? "" : ",") +
                     rb::AppName(static_cast<rb::App>(a));
      }
    }
    report.AddRow({rb::Format("%.0f", mpps), rb::Format("%.0f", available),
                   rb::Format("%.0f", loads[0]), rb::Format("%.0f", loads[1]),
                   rb::Format("%.0f", loads[2]), saturated.empty() ? "-" : saturated});
  }
  report.AddNote("loads are constant in the input rate (paper: 'per-packet load on the system is");
  report.AddNote("constant with increasing input packet rate'); crossings with the available-cycles");
  report.AddNote(rb::Format("curve give max rates: fwd %.1f, rtr %.1f, ipsec %.1f Mpps "
                            "(paper: 18.96, 12.4, 2.7)",
                            total_cycles / loads[0] / 1e6, total_cycles / loads[1] / 1e6,
                            total_cycles / loads[2] / 1e6));
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  return 0;
}
