// Reproduces §6.2 "Forwarding performance": RB4's maximum loss-free
// routing rate for the 64 B workload (paper: 12 Gbps aggregate — the 2R
// regime with reordering-avoidance overhead) and for the Abilene workload
// (paper: 35 Gbps — limited by the per-NIC PCIe ceiling).
//
// The bench binary-searches the per-port offered load on the event-driven
// cluster simulator for the highest rate with negligible loss.
#include <cstdio>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace {

struct SearchResult {
  double per_port_gbps = 0;
  rb::ClusterRunStats at_max;
};

SearchResult MaxLossFree(rb::SizeDistribution* sizes, double lo_bps, double hi_bps,
                         double duration, double loss_budget) {
  SearchResult best;
  for (int iter = 0; iter < 12; ++iter) {
    double mid = (lo_bps + hi_bps) / 2;
    rb::ClusterSim sim(rb::ClusterConfig::Rb4());
    auto tm = rb::TrafficMatrix::Uniform(4);
    rb::ClusterRunStats stats = sim.RunUniform(tm, mid, sizes, duration);
    if (stats.loss_fraction() <= loss_budget) {
      lo_bps = mid;
      best.per_port_gbps = mid / 1e9;
      best.at_max = stats;
    } else {
      hi_bps = mid;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_rb4_forwarding");
  auto* duration = flags.AddDouble("duration", 0.02, "simulated seconds per probe");
  auto* loss_budget = flags.AddDouble("loss_budget", 0.005, "max loss fraction for 'loss-free'");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("§6.2 RB4 forwarding", "maximum loss-free rate, 4-node Direct-VLB mesh");
  report.SetColumns({"workload", "paper aggregate", "model aggregate", "ratio", "per port",
                     "direct fraction", "expected band"});

  {
    rb::FixedSizeDistribution sizes(64);
    SearchResult r = MaxLossFree(&sizes, 1e9, 6e9, *duration, *loss_budget);
    double agg = 4 * r.per_port_gbps;
    double direct_frac =
        static_cast<double>(r.at_max.direct_packets) /
        std::max<uint64_t>(1, r.at_max.direct_packets + r.at_max.balanced_packets);
    report.AddRow({"64 B", "12 Gbps", rb::Format("%.1f Gbps", agg), rb::RatioCell(agg, 12.0),
                   rb::Format("%.2f Gbps", r.per_port_gbps), rb::Format("%.2f", direct_frac),
                   "12.7-19.4 Gbps minus reordering-avoidance overhead"});
  }
  {
    rb::AbileneSizeDistribution sizes;
    SearchResult r = MaxLossFree(&sizes, 4e9, 10e9, *duration, *loss_budget);
    double agg = 4 * r.per_port_gbps;
    report.AddRow({"Abilene", "35 Gbps", rb::Format("%.1f Gbps", agg), rb::RatioCell(agg, 35.0),
                   rb::Format("%.2f Gbps", r.per_port_gbps), "-",
                   "33-49 Gbps, cut off by the ~12.3 Gbps per-NIC ceiling"});
  }
  report.AddNote("64 B: CPUs bound (IP routing at ingress + minimal forwarding at egress + VLB");
  report.AddNote("bookkeeping); Abilene: the shared ext+internal NIC rx direction saturates first.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
