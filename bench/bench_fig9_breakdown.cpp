// Figure 9-style per-element cycle breakdown, measured (not modeled): runs
// the four Figure 8 workloads (fwd/64B, rtr/64B, ipsec/64B, fwd/Abilene)
// through the real Click pipeline with the cycle-accounting profiler
// installed, prints where the cycles/packet go (task -> element -> phase),
// and emits the paper's CPU/memory/NIC bottleneck verdict per workload
// from the measured cycles plus the model's bus loads.
//
//   $ ./bench_fig9_breakdown [--packets=N] [--smoke] [--json=BENCH_profile.json]
//                            [--profile-out=full_tree.json]
//
// --json writes the flat regression-tracked document (the committed
// baseline lives at bench/baselines/BENCH_profile.json and is checked by
// tools/check_bench_regression.py); --profile-out writes the full scope
// tree of the last workload for ad-hoc inspection.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "telemetry/bottleneck.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/profiler.hpp"
#include "workload/abilene.hpp"
#include "workload/injector.hpp"
#include "workload/synthetic.hpp"

namespace {

struct Workload {
  const char* key;      // stable JSON key tracked by the regression checker
  const char* label;    // table label
  rb::App app;
  bool abilene;
};

struct WorkloadResult {
  const Workload* w = nullptr;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  double pipeline_cycles_per_packet = 0;  // profiled roots / packets
  double wall_mpps = 0;
  double attribution_coverage = 0;  // profiled root cycles / raw tsc delta
  rb::telemetry::PerfSample perf;
  rb::telemetry::ProfileSnapshot profile;
  rb::telemetry::BottleneckVerdict verdict;
};

// Drives `packets` 64 B (or Abilene-mix) frames through a 2-port,
// single-core router with the profiler installed. The three harness scopes
// (inject / run / drain) make the profiled roots cover the whole drive
// loop, so attribution_coverage measures what the scope tree explains of
// the raw cycle delta around the loop.
WorkloadResult RunWorkload(const Workload& w, int packets, bool compile_programs) {
  namespace tele = rb::telemetry;

  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 1;
  cfg.cores = 1;
  cfg.app = w.app;
  cfg.pool_packets = 16384;
  cfg.table.num_routes = 65536;
  cfg.compile_programs = compile_programs;
  rb::SingleServerRouter router(cfg);
  router.Initialize();

  // Bulk injection (DESIGN.md §14): frames are template-filled and handed
  // over as whole batches, so harness/inject charges only the memcpy+patch
  // per packet — not a pool pop, three header writers, and a from-scratch
  // checksum. Routing workloads draw destinations from the installed
  // prefix set (same table config + seed the router used) instead of
  // reject-sampling against router.table().Lookup() inside the measured
  // scope, which misattributed router cycles to the harness and pre-warmed
  // the lookup caches the random-dst workload exists to thrash.
  rb::InjectorConfig inj_cfg;
  inj_cfg.abilene = w.abilene;
  inj_cfg.synthetic.packet_size = 64;
  inj_cfg.abilene_cfg = rb::AbileneConfig{1024, 3};
  std::unique_ptr<rb::PrefixSampler> sampler;
  if (w.app == rb::App::kIpRouting) {
    rb::TableGenConfig tg = cfg.table;
    tg.num_next_hops = static_cast<uint32_t>(cfg.num_ports);
    sampler = std::make_unique<rb::PrefixSampler>(tg);
    inj_cfg.dst_sampler = sampler.get();
  }
  // Forwarding/routing pipelines only touch TTL+checksum, never payload:
  // recycled buffers keep their zero payload, so refills copy only the
  // 128 B head. IPsec rewrites payload in place and must not assume this.
  inj_cfg.recycled_payload_is_clean = (w.app != rb::App::kIpsec);
  rb::BulkInjector injector(inj_cfg, &router.pool());
  // Draw every frame's varying fields (and final checksums) up front: the
  // measured inject loop is then one template memcpy plus patch stores.
  injector.PrecomputePlan(static_cast<size_t>(packets));

  [[maybe_unused]] const tele::ScopeId inject_scope = tele::InternScopeName("harness/inject");
  [[maybe_unused]] const tele::ScopeId rx_deliver_scope =
      tele::InternScopeName("netdev/rx_deliver");
  // RunUntilIdle's self cycles are the Click scheduler's task scan — a
  // real router component, attributed to sched/, not to the harness.
  [[maybe_unused]] const tele::ScopeId run_scope = tele::InternScopeName("sched/run");
  [[maybe_unused]] const tele::ScopeId drain_scope = tele::InternScopeName("harness/drain");

  tele::Profiler profiler;
  tele::SetProfiler(&profiler);
  tele::PerfCounterGroup perf;

  WorkloadResult out;
  out.w = &w;
  rb::Packet* burst[256];
  auto drain = [&] {
    RB_PROF_SCOPE(drain_scope);
    for (int port = 0; port < cfg.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, std::size(burst))) > 0) {
        router.pool().FreeBulk(burst, n);
        out.packets += n;
      }
    }
  };

  // Warm the injector's frame templates (and the generators behind it)
  // outside the measured region: template materialization is a one-time
  // setup cost, not an inject-loop cost.
  {
    rb::PacketBatch warm;
    injector.NextBurst(rb::PacketBatch::kCapacity, &warm);
    warm.ReleaseAll();
  }
  const uint64_t warm_bytes = injector.injected_bytes();

  perf.Start();
  const uint64_t t0 = tele::ReadCycles();
  int done = 0;
  int burst_idx = 0;
  rb::PacketBatch inject_batch;
  while (done < packets) {
    // Inject four bursts (one 1024-packet chunk, 512 per port: exactly one
    // 512-entry rx ring each) before running the graph, so scheduler
    // wakeups are paid per chunk, not per burst. harness/inject covers
    // only frame generation; handing frames to the NIC is modeled device
    // work (RSS steering, descriptor staging) and is accounted under
    // netdev/ like the tx path already is.
    for (int b = 0; b < 4 && done < packets; ++b) {
      uint32_t want = static_cast<uint32_t>(
          std::min<int>(static_cast<int>(rb::PacketBatch::kCapacity), packets - done));
      uint32_t got;
      {
        RB_PROF_SCOPE(inject_scope);
        got = injector.NextBurst(want, &inject_batch);
      }
      {
        RB_PROF_SCOPE(rx_deliver_scope);
        router.DeliverBatch(burst_idx % cfg.num_ports, &inject_batch, 0.0);
      }
      done += static_cast<int>(got);
      burst_idx++;
      if (got < want) {
        break;  // pool dry: run the graph so drained packets recycle
      }
    }
    {
      RB_PROF_SCOPE(run_scope);
      router.RunUntilIdle();
    }
    drain();
  }
  const uint64_t raw_cycles = tele::ReadCycles() - t0;
  out.bytes = injector.injected_bytes() - warm_bytes;
  out.perf = perf.Stop();
  tele::SetProfiler(nullptr);

  out.profile = profiler.Snapshot();
  const uint64_t profiled = out.profile.TotalCycles();
  if (out.packets > 0) {
    out.pipeline_cycles_per_packet =
        static_cast<double>(profiled) / static_cast<double>(out.packets);
  }
  if (raw_cycles > 0) {
    out.attribution_coverage = static_cast<double>(profiled) / static_cast<double>(raw_cycles);
  }
  if (out.profile.cycles_per_sec > 0 && out.packets > 0) {
    out.wall_mpps = static_cast<double>(out.packets) /
                    (static_cast<double>(raw_cycles) / out.profile.cycles_per_sec) / 1e6;
  }

  // Bottleneck verdict: measured cycles/packet, model bus loads for the
  // same app/frame size, against the paper's Nehalem capacities.
  rb::ThroughputConfig model;
  model.app = w.app;
  model.frame_bytes = out.packets > 0
                          ? static_cast<double>(out.bytes) / static_cast<double>(out.packets)
                          : 64.0;
  tele::MeasuredWorkload mw;
  mw.name = w.key;
  mw.frame_bytes = model.frame_bytes;
  mw.cycles_per_packet = out.pipeline_cycles_per_packet;
  mw.per_packet = rb::LoadsFor(model);
  out.verdict = tele::AnalyzeBottleneck(mw, model.spec);
  return out;
}

void WriteBenchJson(const std::string& path, const std::vector<WorkloadResult>& results) {
  namespace tele = rb::telemetry;
  tele::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("rb.bench_fig9_breakdown.v1");
  w.Key("cycle_source");
  w.String(tele::CycleSourceName());
  w.Key("cycles_per_sec");
  w.Double(tele::CyclesPerSecond());
  w.Key("workloads");
  w.BeginObject();
  for (const WorkloadResult& r : results) {
    w.Key(r.w->key);
    w.BeginObject();
    w.Key("app");
    w.String(rb::AppName(r.w->app));
    w.Key("packets");
    w.Uint(r.packets);
    w.Key("mean_frame_bytes");
    w.Double(r.packets ? static_cast<double>(r.bytes) / static_cast<double>(r.packets) : 0);
    w.Key("pipeline_cycles_per_packet");
    w.Double(r.pipeline_cycles_per_packet);
    w.Key("attribution_coverage");
    w.Double(r.attribution_coverage);
    w.Key("wall_mpps");
    w.Double(r.wall_mpps);
    w.Key("ipc");
    w.Double(r.perf.ipc());
    w.Key("hw_counters");
    w.Bool(r.perf.hw);
    w.Key("bottleneck");
    w.BeginObject();
    w.Key("verdict");
    w.String(r.verdict.verdict);
    w.Key("resource");
    w.String(tele::ResourceName(r.verdict.bottleneck));
    w.Key("max_pps");
    w.Double(r.verdict.max_pps);
    w.Key("max_payload_gbps");
    w.Double(r.verdict.max_payload_gbps);
    w.EndObject();
    w.Key("scopes");
    w.BeginObject();
    const uint64_t total = r.profile.TotalCycles();
    for (const tele::ScopeTotals& s : r.profile.AggregateByName()) {
      w.Key(s.name);
      w.BeginObject();
      w.Key("calls");
      w.Uint(s.calls);
      w.Key("cycles_per_packet");
      w.Double(r.packets ? static_cast<double>(s.cycles) / static_cast<double>(r.packets) : 0);
      w.Key("self_cycles_per_packet");
      w.Double(r.packets ? static_cast<double>(s.self_cycles) / static_cast<double>(r.packets)
                         : 0);
      w.Key("share");
      w.Double(total ? static_cast<double>(s.self_cycles) / static_cast<double>(total) : 0);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "warning: failed to write %s\n", path.c_str());
    return;
  }
  fprintf(f, "%s\n", w.str().c_str());
  fclose(f);
  printf("breakdown JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig9_breakdown");
  auto* packets = flags.AddInt64("packets", 200000, "packets per workload");
  auto* repeats = flags.AddInt64(
      "repeats", 5, "runs per workload; the minimum-cycle run is reported");
  auto* smoke = flags.AddBool("smoke", false, "tiny run for CI (overrides --packets)");
  auto* compile = flags.AddBool("compile-programs", true,
                                "collapse classifier chains into compiled match programs "
                                "(DESIGN.md §16); default on, as in production configs");
  auto* json = flags.AddString("json", "", "write the regression-tracked flat JSON here");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* profile_out = rb::AddProfileOutFlag(&flags);
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);
  int n = *smoke ? 8000 : static_cast<int>(*packets);

  // The flight recorder stays installed during the measured loops: the
  // regression baseline (cycles/packet vs BENCH_profile.json) is taken
  // with the black box on, so its hot-path cost is what the <2% budget
  // actually polices.
  rb::telemetry::FlightRecorder recorder;
  rb::telemetry::FlightRecorder::Install(&recorder);

  const Workload workloads[] = {
      {"fwd_64", "fwd, 64 B", rb::App::kMinimalForwarding, false},
      {"rtr_64", "rtr, 64 B", rb::App::kIpRouting, false},
      {"ipsec_64", "ipsec, 64 B", rb::App::kIpsec, false},
      {"fwd_abilene", "fwd, Abilene", rb::App::kMinimalForwarding, true},
  };

  // Min-of-N: TSC cycle counts on a contended (or virtualized) host carry
  // one-sided noise — interference only ever *adds* cycles — so the
  // minimum-cycle repeat is the estimator of uncontended cost. Repeats are
  // interleaved round-robin across workloads, not run back-to-back: a
  // transient host-steal window then taxes at most one repeat of each
  // workload instead of every sample of whichever workload it landed on.
  const int reps = *repeats > 0 ? static_cast<int>(*repeats) : 1;
  std::vector<WorkloadResult> results;
  for (const Workload& w : workloads) {
    results.push_back(RunWorkload(w, n, *compile));
  }
  for (int r = 1; r < reps; ++r) {
    for (size_t i = 0; i < std::size(workloads); ++i) {
      WorkloadResult cand = RunWorkload(workloads[i], n, *compile);
      if (cand.pipeline_cycles_per_packet < results[i].pipeline_cycles_per_packet) {
        results[i] = std::move(cand);
      }
    }
  }

  rb::Report report("Figure 9 (measured)", "per-element cycles/packet by workload");
  report.SetColumns({"workload", "cyc/pkt", "coverage", "IPC", "top scopes (self cyc/pkt)",
                     "bottleneck"});
  for (const WorkloadResult& r : results) {
    std::string top;
    int shown = 0;
    for (const rb::telemetry::ScopeTotals& s : r.profile.AggregateByName()) {
      if (s.self_cycles == 0 || shown == 3) {
        continue;
      }
      if (!top.empty()) {
        top += ", ";
      }
      top += rb::Format("%s %.0f", s.name.c_str(),
                        r.packets ? static_cast<double>(s.self_cycles) / r.packets : 0.0);
      shown++;
    }
    report.AddRow({r.w->label, rb::Format("%.0f", r.pipeline_cycles_per_packet),
                   rb::Format("%.1f%%", 100 * r.attribution_coverage),
                   r.perf.hw ? rb::Format("%.2f", r.perf.ipc()) : std::string("n/a"),
                   top, r.verdict.verdict});
  }
  report.AddNote(rb::Format("cycle source: %s; paper Fig. 9: CPU is the bottleneck for all",
                            rb::telemetry::CycleSourceName()));
  report.AddNote("64 B workloads, with rtr dominated by DIR-24-8 lookups and ipsec by AES.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }

  for (const WorkloadResult& r : results) {
    printf("%-12s %s\n", r.w->key, r.verdict.Summary().c_str());
  }

  if (!json->empty()) {
    WriteBenchJson(*json, results);
  }
  if (!profile_out->empty() && !results.empty()) {
    rb::MaybeWriteProfile(*profile_out, results.back().profile);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  rb::telemetry::FlightRecorder::Install(nullptr);
  return 0;
}
