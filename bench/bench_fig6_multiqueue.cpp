// Reproduces Figure 6: forwarding rates per forwarding path (FP) for the
// pipeline/parallel/splitter/overlap core-and-queue layouts, showing why
// RouteBricks adopts the "one core per queue" and "one core per packet"
// rules and why multi-queue NICs are essential.
//
// Rates come from the calibrated scenario model (this experiment is
// hardware-bound: sync cost, cache misses and lock contention on the
// 2.8 GHz Nehalem); a functional check that the multi-queue data path
// actually works end to end lives in the test suite.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/scenarios.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig6_multiqueue");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Figure 6", "forwarding rate per FP, 64 B packets");
  report.SetColumns({"scenario", "cores", "paper Gbps/FP", "model Gbps/FP", "ratio"});
  for (const auto& r : rb::EvaluateFig6Scenarios()) {
    report.AddRow({r.label, rb::Format("%d", r.cores), rb::Format("%.2f", r.paper_gbps),
                   rb::Format("%.2f", r.gbps_per_fp), rb::RatioCell(r.gbps_per_fp, r.paper_gbps)});
  }
  report.AddNote("sync handoff alone costs ~29% (a vs b); cross-socket cache misses ~64% (a' vs b);");
  report.AddNote("multi-queue restores overlapping paths to parallel-path rates (f vs e).");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
