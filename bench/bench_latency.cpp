// The measured latency plane, end to end (§6.2 + DESIGN.md §15): three
// experiments in one bench, each cross-checked against an independent
// reference so a regression in stamping, aggregation, or the simulator's
// latency arithmetic fails loudly.
//
//  1. Direct vs VLB path latency on the cluster DES. Two RB4 sims at
//     light load (one packet every --gap-us, no queueing): one pinned to
//     direct 2-hop forwarding (vlb.direct_vlb = true, uncongested so
//     nothing spills), one forced through the classic two-phase VLB
//     3-hop path (direct_vlb = false; the intermediate excludes src and
//     dst, so every packet genuinely crosses three servers). Measured
//     means must order direct < via and land within --tolerance of the
//     analytic EstimateLatency() figures (47.6 / 66.4 us on the paper's
//     constants; the DES adds link propagation and discrete service
//     effects the closed form ignores, hence a tolerance, not equality).
//     A full-rate path tracer rides along and the per-hop wait/service
//     split is reported — the queueing-wait column must be ~0 at this
//     load, which is exactly what distinguishes the fixed per-server
//     latency from congestion.
//
//  2. Latency vs offered load on the real single-server pipeline. The
//     cooperative harness has no wall-clock pacing, so "offered load" is
//     the burst size delivered between RunUntilIdle drains: packets at
//     the back of a burst queue behind the service of everyone ahead,
//     so measured (cycle-stamped) tails grow with the burst. Sweeping
//     --sweep-bursts must produce strictly increasing p99 — the queueing
//     knee, measured by the always-on ingress-stamp -> egress-readout
//     plane itself (lat/port* log-bucketed histograms), not by a bench
//     shim.
//
//  3. The cost of the plane: same-host A/B of the per-packet ingress
//     stamp (SetIngressStampEnabled off/on) over a minimal-forwarding
//     hot loop, best-of-N cycles/packet. The acceptance bar is <2%
//     overhead (<6% under --smoke, where short runs are noise-bound).
//
// --json writes schema rb.bench_latency.v1 for
// tools/check_bench_regression.py --latency; any failed check exits
// nonzero.
#include <cmath>
#include <cstdio>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/des.hpp"
#include "cluster/latency.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/latency_stats.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "workload/synthetic.hpp"

namespace {

// --- experiment 1: DES direct vs via ---

struct DesResult {
  rb::ClusterRunStats stats;
  std::string audit;        // "" = drop accounting holds
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double cpu_wait_us = 0;   // mean queueing wait at CPU stages (traced)
  uint64_t sampled = 0;
};

DesResult RunDes(bool direct, uint64_t packets, double gap_us, uint64_t seed) {
  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.seed = seed;
  cfg.vlb.direct_vlb = direct;

  rb::telemetry::MetricRegistry registry;
  rb::telemetry::TracerConfig tc;
  tc.sample_every = 1;  // light load, small run: trace everything
  tc.max_traces = 4096;
  rb::telemetry::PathTracer tracer(tc);

  rb::ClusterSim sim(cfg);
  sim.BindTelemetry(&registry, &tracer);
  // One 64 B packet per gap from port 0 to port 1, each its own flow so
  // the via choice is exercised across packets; the gap dwarfs the
  // per-server latency, so queues never build and the measurement is the
  // fixed path cost, not congestion.
  const double gap = gap_us * 1e-6;
  for (uint64_t i = 0; i < packets; ++i) {
    sim.Inject(0, 1, /*flow_id=*/i, /*flow_seq=*/0, /*bytes=*/64,
               static_cast<rb::SimTime>(i) * gap);
  }
  DesResult r;
  r.stats = sim.Finish(static_cast<rb::SimTime>(packets) * gap);
  r.audit = rb::AuditConservation(r.stats);
  r.mean_us = r.stats.latency.mean() * 1e6;
  r.p50_us = r.stats.latency.Percentile(50) * 1e6;
  r.p99_us = r.stats.latency.Percentile(99) * 1e6;
  r.sampled = tracer.sampled();
  // Queueing wait, decomposed from the traced hops: the DES stamps each
  // hop with (service completion time, time spent waiting for the
  // server), so the wait column isolates congestion from path cost.
  uint64_t wait_count = 0;
  double wait_sum = 0;
  for (const rb::telemetry::HopLatency& hop : tracer.HopLatencies()) {
    if (hop.from.rfind("cpu-", 0) == 0 || hop.to.rfind("cpu-", 0) == 0) {
      wait_count += hop.count;
      wait_sum += hop.wait_sum;
    }
  }
  r.cpu_wait_us = wait_count ? wait_sum / static_cast<double>(wait_count) * 1e6 : 0;
  return r;
}

// --- experiment 2: single-server latency vs offered burst ---

struct SweepPoint {
  uint32_t burst = 0;
  uint64_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t drops = 0;
};

rb::FrameSpec SweepFrame(uint32_t i) {
  rb::FrameSpec spec;
  spec.size = 64;
  spec.flow.src_ip = 0x0a000001u + i;
  spec.flow.dst_ip = 0xc0a80001u + (i % 13);
  spec.flow.src_port = static_cast<uint16_t>(1024 + (i % 4096));
  spec.flow.dst_port = 80;
  spec.flow.protocol = 17;
  return spec;
}

SweepPoint RunSweepPoint(uint32_t burst, uint64_t total_packets) {
  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 2;
  cfg.cores = 2;
  cfg.app = rb::App::kMinimalForwarding;
  cfg.pool_packets = 16384;
  cfg.queue_capacity = 4096;  // the sweep measures waiting, not tail drop

  rb::telemetry::MetricRegistry registry;
  rb::SingleServerRouter router(cfg);
  router.EnableTelemetry(&registry, nullptr);
  router.Initialize();

  rb::Packet* drained[64];
  auto drain = [&]() {
    size_t freed = 0;
    for (int port = 0; port < cfg.num_ports; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, drained, std::size(drained))) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(drained[i]);
        }
        freed += n;
      }
    }
    return freed;
  };
  uint64_t injected = 0;
  uint32_t frame_id = 0;
  while (injected < total_packets) {
    // Offer `burst` packets back to back, then let the router run dry:
    // the k-th packet of the burst observes ~k packets of service time
    // ahead of it, so larger bursts push the measured tail right.
    uint64_t want = std::min<uint64_t>(burst, total_packets - injected);
    rb::PacketBatch batch;
    for (uint64_t i = 0; i < want; ++i) {
      rb::Packet* p = rb::AllocFrame(SweepFrame(frame_id++), &router.pool());
      if (p == nullptr) {
        break;
      }
      batch.PushBack(p);
      if (batch.full()) {
        uint32_t got = batch.size();  // DeliverBatch consumes the batch
        router.DeliverBatch(static_cast<int>(injected % 2), &batch, 0.0);
        injected += got;
        batch.Clear();
      }
    }
    if (batch.size() > 0) {
      uint32_t got = batch.size();
      router.DeliverBatch(static_cast<int>(injected % 2), &batch, 0.0);
      injected += got;
      batch.Clear();
    }
    router.RunUntilIdle();
    drain();
  }
  // A full tx ring backpressures ToDevice mid-run; keep alternating
  // run/drain until the pipeline is truly empty so the (slowest) tail of
  // the last burst is measured, not stranded.
  do {
    router.RunUntilIdle();
  } while (drain() > 0);

  // Merge the per-egress-port histograms the latency plane filled.
  rb::telemetry::RegistrySnapshot snap = registry.Snapshot();
  rb::telemetry::LatencySnapshot merged;
  merged.counts.assign(rb::telemetry::LatencyBuckets::kCount, 0);
  SweepPoint pt;
  pt.burst = burst;
  for (const auto& [name, lat] : snap.latency) {
    if (name.rfind("lat/port", 0) != 0) {
      continue;
    }
    for (size_t i = 0; i < lat.counts.size(); ++i) {
      merged.counts[i] += lat.counts[i];
    }
    merged.count += lat.count;
    merged.sum_ns += lat.sum_ns;
    merged.min_ns = merged.min_ns == 0 ? lat.min_ns : std::min(merged.min_ns, lat.min_ns);
    merged.max_ns = std::max(merged.max_ns, lat.max_ns);
  }
  pt.count = merged.count;
  pt.p50_us = merged.PercentileNs(50) / 1e3;
  pt.p99_us = merged.PercentileNs(99) / 1e3;
  pt.p999_us = merged.PercentileNs(99.9) / 1e3;
  for (const auto& [name, value] : snap.counters) {
    if (name.find("/drops") != std::string::npos || name.find("_drops") != std::string::npos) {
      pt.drops += value;  // element tail drops + NIC rx-ring drops
    }
  }
  return pt;
}

// --- experiment 3: ingress-stamp A/B ---

struct StampAb {
  double off_cycles_per_pkt = 0;  // best-of-reps floor
  double on_cycles_per_pkt = 0;   // best-of-reps floor
  double overhead_frac = 0;       // ratio of the two floors - 1
  // A/A control: a second stamp-off router measured in the same rotation.
  // Its floor should match off_cycles_per_pkt exactly; the spread is the
  // host's same-code measurement resolution, and the overhead check
  // allows for it (bar + aa_frac) so a throttled CI box doesn't flake.
  double aa_frac = 0;
};

// Same-host A/B of the ingress stamp: one minimal-forwarding router per
// arm, telemetry bound in both — the A/B isolates the stamp feature (one
// ReadCycles per delivered burst, a store per packet, the egress readout
// into lat/port*), not the whole plane. The two arms of a rep run
// back-to-back (order alternating rep to rep) and the overhead is the
// ratio of the two best-of-reps floors: on a shared host, throttling and
// frequency drift only ever inflate a rep, so with enough short reps the
// per-arm minimum converges to the unthrottled cost and the ratio
// measures the stamp, not the neighbors.
StampAb MeasureStampAb(uint64_t packets, int reps) {
  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 2;
  cfg.cores = 2;
  cfg.app = rb::App::kMinimalForwarding;
  cfg.pool_packets = 8192;

  rb::telemetry::MetricRegistry registries[3];
  rb::SingleServerRouter router_off(cfg);
  rb::SingleServerRouter router_on(cfg);
  rb::SingleServerRouter router_aa(cfg);
  router_off.EnableTelemetry(&registries[0], nullptr);
  router_on.EnableTelemetry(&registries[1], nullptr);
  router_aa.EnableTelemetry(&registries[2], nullptr);
  router_off.Initialize();
  router_on.Initialize();
  router_aa.Initialize();

  rb::Packet* drained[64];
  auto run_once = [&](rb::SingleServerRouter& router, bool stamp_on) {
    rb::telemetry::SetIngressStampEnabled(stamp_on);
    uint64_t injected = 0;
    uint32_t frame_id = 0;
    uint64_t start = rb::telemetry::ReadCycles();
    while (injected < packets) {
      rb::PacketBatch batch;
      uint64_t want = std::min<uint64_t>(rb::PacketBatch::kCapacity, packets - injected);
      for (uint64_t i = 0; i < want; ++i) {
        rb::Packet* p = rb::AllocFrame(SweepFrame(frame_id++), &router.pool());
        if (p == nullptr) {
          break;
        }
        batch.PushBack(p);
      }
      uint32_t got = batch.size();  // DeliverBatch consumes the batch
      router.DeliverBatch(static_cast<int>(injected % 2), &batch, 0.0);
      injected += got;
      batch.Clear();
      router.RunUntilIdle();
      for (int port = 0; port < cfg.num_ports; ++port) {
        size_t n;
        while ((n = router.DrainPort(port, drained, std::size(drained))) > 0) {
          for (size_t i = 0; i < n; ++i) {
            router.pool().Free(drained[i]);
          }
        }
      }
    }
    uint64_t cycles = rb::telemetry::ReadCycles() - start;
    return static_cast<double>(cycles) / static_cast<double>(injected);
  };

  // Warm all arms once (pool, rings, code paths) before scoring.
  run_once(router_off, false);
  run_once(router_on, true);
  run_once(router_aa, false);
  StampAb ab;
  double aa_floor = 0;
  for (int rep = 0; rep < reps; ++rep) {
    double off;
    double on;
    double aa;
    if (rep % 2 == 0) {
      off = run_once(router_off, false);
      on = run_once(router_on, true);
      aa = run_once(router_aa, false);
    } else {
      aa = run_once(router_aa, false);
      on = run_once(router_on, true);
      off = run_once(router_off, false);
    }
    ab.off_cycles_per_pkt = rep == 0 ? off : std::min(ab.off_cycles_per_pkt, off);
    ab.on_cycles_per_pkt = rep == 0 ? on : std::min(ab.on_cycles_per_pkt, on);
    aa_floor = rep == 0 ? aa : std::min(aa_floor, aa);
  }
  if (ab.off_cycles_per_pkt > 0) {
    ab.overhead_frac =
        (ab.on_cycles_per_pkt - ab.off_cycles_per_pkt) / ab.off_cycles_per_pkt;
    ab.aa_frac = std::fabs(aa_floor - ab.off_cycles_per_pkt) / ab.off_cycles_per_pkt;
  }
  return ab;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_latency");
  auto* des_packets = flags.AddInt64("des-packets", 2000, "packets per DES arm");
  auto* gap_us = flags.AddDouble("gap-us", 100.0, "DES inter-packet gap (us)");
  auto* tolerance =
      flags.AddDouble("tolerance", 0.25, "relative error allowed vs the analytic estimate");
  auto* sweep_packets = flags.AddInt64("sweep-packets", 65536, "packets per sweep point");
  auto* sweep_bursts = flags.AddString("sweep-bursts", "16,64,256,1024",
                                       "comma-separated burst sizes (offered-load proxy)");
  auto* ab_packets = flags.AddInt64("ab-packets", 30000, "packets per stamp A/B rep");
  auto* ab_reps = flags.AddInt64("ab-reps", 41, "stamp A/B repetitions (best-of)");
  auto* seed = flags.AddInt64("seed", 7, "RNG seed");
  auto* smoke = flags.AddBool("smoke", false, "small fast preset (overrides sizing flags)");
  auto* json = flags.AddString("json", "", "write the machine-readable summary here");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  if (*smoke) {
    *des_packets = 400;
    *sweep_packets = 8192;
    *ab_packets = 10000;
    *ab_reps = 7;
  }
  // Short runs are noise-bound; the committed-baseline bar stays at the
  // paper-grade 2% while smoke gets slack (checked again structurally by
  // tools/check_bench_regression.py --latency).
  const double overhead_bar = *smoke ? 0.06 : 0.02;

  rb::LatencyEstimate est = rb::EstimateLatency();

  // --- 1. DES direct vs via ---
  DesResult direct = RunDes(/*direct=*/true, static_cast<uint64_t>(*des_packets), *gap_us,
                            static_cast<uint64_t>(*seed));
  DesResult via = RunDes(/*direct=*/false, static_cast<uint64_t>(*des_packets), *gap_us,
                         static_cast<uint64_t>(*seed));
  const double rel_err_direct =
      std::fabs(direct.mean_us - est.cluster_2hop_us) / est.cluster_2hop_us;
  const double rel_err_via = std::fabs(via.mean_us - est.cluster_3hop_us) / est.cluster_3hop_us;

  rb::Report des_report(
      "§6.2 measured path latency (DES)",
      rb::Format("RB4, 64 B, one packet / %.0f us, %lld packets per arm, seed %llu", *gap_us,
                 static_cast<long long>(*des_packets),
                 static_cast<unsigned long long>(*seed)));
  des_report.SetColumns({"path", "mean us", "p50 us", "p99 us", "estimate us", "rel err",
                         "cpu wait us"});
  des_report.AddRow({"direct (2 hop)", rb::Format("%.2f", direct.mean_us),
                     rb::Format("%.2f", direct.p50_us), rb::Format("%.2f", direct.p99_us),
                     rb::Format("%.2f", est.cluster_2hop_us),
                     rb::Format("%.1f%%", rel_err_direct * 100),
                     rb::Format("%.3f", direct.cpu_wait_us)});
  des_report.AddRow({"via VLB (3 hop)", rb::Format("%.2f", via.mean_us),
                     rb::Format("%.2f", via.p50_us), rb::Format("%.2f", via.p99_us),
                     rb::Format("%.2f", est.cluster_3hop_us),
                     rb::Format("%.1f%%", rel_err_via * 100),
                     rb::Format("%.3f", via.cpu_wait_us)});
  des_report.AddNote("estimate = EstimateLatency() closed form (paper: 47.6 / 66.4 us); the DES");
  des_report.AddNote("adds link propagation and discrete service, hence tolerance not equality.");
  des_report.AddNote("cpu wait ~ 0 confirms the measurement is path cost, not queueing.");
  des_report.Print();

  // --- 2. latency vs offered burst on the real pipeline ---
  std::vector<SweepPoint> sweep;
  for (const std::string& tok : rb::Split(*sweep_bursts, ',')) {
    uint32_t burst = static_cast<uint32_t>(strtoul(tok.c_str(), nullptr, 10));
    if (burst > 0) {
      sweep.push_back(RunSweepPoint(burst, static_cast<uint64_t>(*sweep_packets)));
    }
  }
  rb::Report sweep_report(
      "latency vs offered load (measured, single server)",
      rb::Format("minimal forwarding, 64 B, %lld packets/point; burst size = offered-load proxy",
                 static_cast<long long>(*sweep_packets)));
  sweep_report.SetColumns({"burst", "packets", "p50 us", "p99 us", "p999 us", "drops"});
  for (const SweepPoint& pt : sweep) {
    sweep_report.AddRow({rb::Format("%u", pt.burst),
                         rb::Format("%llu", static_cast<unsigned long long>(pt.count)),
                         rb::Format("%.2f", pt.p50_us), rb::Format("%.2f", pt.p99_us),
                         rb::Format("%.2f", pt.p999_us),
                         rb::Format("%llu", static_cast<unsigned long long>(pt.drops))});
  }
  sweep_report.AddNote("cycle stamps at ingress (NicPort::Deliver), read out at ToDevice into");
  sweep_report.AddNote("log-bucketed lat/port* histograms — the plane under test measures itself.");
  sweep_report.Print();

  // --- 3. stamp A/B ---
  const bool stamp_was_enabled = rb::telemetry::IngressStampEnabled();
  StampAb ab = MeasureStampAb(static_cast<uint64_t>(*ab_packets), static_cast<int>(*ab_reps));
  rb::telemetry::SetIngressStampEnabled(stamp_was_enabled);
  const double off_cpp = ab.off_cycles_per_pkt;
  const double on_cpp = ab.on_cycles_per_pkt;
  const double overhead = ab.overhead_frac;

  rb::Report ab_report(
      "ingress-stamp cost (same-host A/B)",
      rb::Format("fwd/64B, %lld packets x %lld paired reps, best-of cycles/packet",
                 static_cast<long long>(*ab_packets), static_cast<long long>(*ab_reps)));
  ab_report.SetColumns({"arm", "cycles/pkt"});
  ab_report.AddRow({"stamp off", rb::Format("%.2f", off_cpp)});
  ab_report.AddRow({"stamp on", rb::Format("%.2f", on_cpp)});
  ab_report.AddNote(rb::Format("overhead %.2f%% = ratio of best-of floors (bar: < %.0f%%%s)",
                               overhead * 100, overhead_bar * 100,
                               *smoke ? ", smoke slack" : ""));
  ab_report.AddNote(rb::Format(
      "A/A control (off vs off) spread %.2f%% — the host's same-code resolution; the", //
      ab.aa_frac * 100));
  ab_report.AddNote("check allows bar + A/A so a throttled box fails on cost, not on noise.");
  ab_report.Print();

  // --- checks ---
  int failures_found = 0;
  auto check = [&failures_found](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      failures_found++;
    }
  };
  check(direct.audit.empty(), rb::Format("direct-arm drop accounting: %s", direct.audit.c_str()));
  check(via.audit.empty(), rb::Format("via-arm drop accounting: %s", via.audit.c_str()));
  check(direct.stats.delivered_packets == static_cast<uint64_t>(*des_packets),
        "direct arm lost packets at light load");
  check(via.stats.delivered_packets == static_cast<uint64_t>(*des_packets),
        "via arm lost packets at light load");
  check(direct.stats.direct_packets == direct.stats.delivered_packets,
        "direct arm routed packets through an intermediate");
  check(via.stats.balanced_packets == via.stats.delivered_packets,
        "via arm (direct_vlb=false) still found a 2-hop path");
  check(direct.mean_us < via.mean_us,
        rb::Format("2-hop direct (%.2f us) not faster than 3-hop via (%.2f us)", direct.mean_us,
                   via.mean_us));
  check(rel_err_direct <= *tolerance,
        rb::Format("direct mean %.2f us off the %.2f us estimate by %.1f%% (> %.0f%%)",
                   direct.mean_us, est.cluster_2hop_us, rel_err_direct * 100,
                   *tolerance * 100));
  check(rel_err_via <= *tolerance,
        rb::Format("via mean %.2f us off the %.2f us estimate by %.1f%% (> %.0f%%)", via.mean_us,
                   est.cluster_3hop_us, rel_err_via * 100, *tolerance * 100));
  check(direct.cpu_wait_us < 1.0,
        rb::Format("light-load direct arm shows %.2f us mean CPU queueing wait", //
                   direct.cpu_wait_us));
  check(sweep.size() >= (*smoke ? 2u : 3u), "sweep needs >= 3 burst sizes (2 under --smoke)");
  for (const SweepPoint& pt : sweep) {
    check(pt.count > 0, rb::Format("burst %u sweep point measured nothing", pt.burst));
    // Latency-plane conservation: every injected packet either reached an
    // egress readout (stamped and observed) or sits in a drop counter.
    check(pt.count + pt.drops == static_cast<uint64_t>(*sweep_packets),
          rb::Format("burst %u: %llu observed + %llu dropped != %lld injected", pt.burst,
                     static_cast<unsigned long long>(pt.count),
                     static_cast<unsigned long long>(pt.drops),
                     static_cast<long long>(*sweep_packets)));
  }
  if (sweep.size() >= 2) {
    check(sweep.back().p99_us > sweep.front().p99_us,
          rb::Format("no queueing knee: p99 %.2f us at burst %u vs %.2f us at burst %u",
                     sweep.back().p99_us, sweep.back().burst, sweep.front().p99_us,
                     sweep.front().burst));
  }
  check(overhead < overhead_bar + ab.aa_frac,
        rb::Format("ingress stamp costs %.2f%% on fwd/64B (bar %.0f%% + %.2f%% A/A noise)",
                   overhead * 100, overhead_bar * 100, ab.aa_frac * 100));

  if (!json->empty()) {
    namespace tele = rb::telemetry;
    tele::JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.String("rb.bench_latency.v1");
    w.Key("seed");
    w.Uint(static_cast<uint64_t>(*seed));
    w.Key("smoke");
    w.Bool(*smoke);
    w.Key("estimator");
    w.BeginObject();
    w.Key("per_server_us");
    w.Double(est.per_server_us);
    w.Key("batching_us");
    w.Double(est.batching_us);
    w.Key("dma_us");
    w.Double(est.dma_us);
    w.Key("processing_us");
    w.Double(est.processing_us);
    w.Key("cluster_2hop_us");
    w.Double(est.cluster_2hop_us);
    w.Key("cluster_3hop_us");
    w.Double(est.cluster_3hop_us);
    w.EndObject();
    w.Key("des");
    w.BeginObject();
    w.Key("direct_mean_us");
    w.Double(direct.mean_us);
    w.Key("direct_p50_us");
    w.Double(direct.p50_us);
    w.Key("direct_p99_us");
    w.Double(direct.p99_us);
    w.Key("via_mean_us");
    w.Double(via.mean_us);
    w.Key("via_p50_us");
    w.Double(via.p50_us);
    w.Key("via_p99_us");
    w.Double(via.p99_us);
    w.Key("rel_err_direct");
    w.Double(rel_err_direct);
    w.Key("rel_err_via");
    w.Double(rel_err_via);
    w.Key("direct_cpu_wait_us");
    w.Double(direct.cpu_wait_us);
    w.Key("via_cpu_wait_us");
    w.Double(via.cpu_wait_us);
    w.Key("traced_packets");
    w.Uint(direct.sampled + via.sampled);
    w.EndObject();
    w.Key("sweep");
    w.BeginArray();
    for (const SweepPoint& pt : sweep) {
      w.BeginObject();
      w.Key("burst");
      w.Uint(pt.burst);
      w.Key("count");
      w.Uint(pt.count);
      w.Key("p50_us");
      w.Double(pt.p50_us);
      w.Key("p99_us");
      w.Double(pt.p99_us);
      w.Key("p999_us");
      w.Double(pt.p999_us);
      w.Key("drops");
      w.Uint(pt.drops);
      w.EndObject();
    }
    w.EndArray();
    w.Key("stamp_ab");
    w.BeginObject();
    w.Key("off_cycles_per_pkt");
    w.Double(off_cpp);
    w.Key("on_cycles_per_pkt");
    w.Double(on_cpp);
    w.Key("overhead_frac");
    w.Double(overhead);
    w.Key("aa_frac");
    w.Double(ab.aa_frac);
    w.Key("overhead_bar");
    w.Double(overhead_bar);
    w.EndObject();
    w.Key("conservation_ok");
    w.Bool(direct.audit.empty() && via.audit.empty());
    w.Key("checks_failed");
    w.Uint(static_cast<uint64_t>(failures_found));
    w.EndObject();
    FILE* f = fopen(json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: failed to write %s\n", json->c_str());
    } else {
      std::fprintf(f, "%s\n", w.str().c_str());
      fclose(f);
      std::printf("latency JSON written to %s\n", json->c_str());
    }
  }

  rb::MaybeWriteMetrics(*metrics_out);
  return failures_found == 0 ? 0 : 1;
}
