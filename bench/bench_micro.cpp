// google-benchmark microbenchmarks for the data-plane primitives: LPM
// lookup (DIR-24-8 vs the reference trie), AES-128/CBC, the Internet
// checksum, flow hashing, SPSC vs locked rings, and ESP encapsulation.
//
// These measure this host's wall clock and make no claim of matching the
// paper's testbed; they document the relative costs (e.g. D-lookup vs
// trie, AES per byte) that the calibrated model encodes.
#include <benchmark/benchmark.h>

#include "crypto/aes128.hpp"
#include "crypto/cbc.hpp"
#include "crypto/esp.hpp"
#include "lookup/dir24_8.hpp"
#include "lookup/radix_trie.hpp"
#include "lookup/table_gen.hpp"
#include "netdev/ring.hpp"
#include "packet/checksum.hpp"
#include "packet/flow.hpp"
#include "packet/batch.hpp"
#include "packet/pool.hpp"
#include "workload/injector.hpp"
#include "workload/synthetic.hpp"

namespace {

std::vector<rb::RouteEntry> SharedTable() {
  static std::vector<rb::RouteEntry> table = [] {
    rb::TableGenConfig cfg;
    cfg.num_routes = 256 * 1024;  // the paper's table size
    return rb::GenerateRoutingTable(cfg);
  }();
  return table;
}

void BM_LookupDir24_8(benchmark::State& state) {
  static rb::Dir24_8* dut = [] {
    auto* t = new rb::Dir24_8();
    t->InsertAll(SharedTable());
    return t;
  }();
  rb::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dut->Lookup(static_cast<uint32_t>(rng.Next())));
  }
}
BENCHMARK(BM_LookupDir24_8);

void BM_LookupRadixTrie(benchmark::State& state) {
  static rb::RadixTrie* dut = [] {
    auto* t = new rb::RadixTrie();
    t->InsertAll(SharedTable());
    return t;
  }();
  rb::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dut->Lookup(static_cast<uint32_t>(rng.Next())));
  }
}
BENCHMARK(BM_LookupRadixTrie);

void BM_Aes128Block(benchmark::State& state) {
  uint8_t key[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  rb::Aes128 aes(key);
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_AesCbc(benchmark::State& state) {
  uint8_t key[16] = {0};
  uint8_t iv[16] = {0};
  rb::AesCbc cbc(key);
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    cbc.Encrypt(buf.data(), buf.size(), iv);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_AesCbc)->Arg(64)->Arg(576)->Arg(1504);

void BM_Checksum(benchmark::State& state) {
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb::Checksum(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Checksum)->Arg(20)->Arg(64)->Arg(1500);

void BM_FlowHash(benchmark::State& state) {
  rb::FlowKey key{0x0a000001, 0x0b000002, 1234, 80, 6};
  for (auto _ : state) {
    key.src_port++;
    benchmark::DoNotOptimize(rb::FlowHash64(key));
  }
}
BENCHMARK(BM_FlowHash);

void BM_SpscRing(benchmark::State& state) {
  rb::SpscRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    uint64_t out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpscRing);

void BM_LockedRing(benchmark::State& state) {
  rb::LockedRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    uint64_t out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LockedRing);

void BM_EspEncapsulate(benchmark::State& state) {
  rb::EspConfig cfg;
  rb::EspTunnel enc(cfg);
  rb::EspTunnel dec(cfg);
  rb::PacketPool pool(4);
  rb::FrameSpec spec;
  spec.size = static_cast<uint32_t>(state.range(0));
  spec.flow = {1, 2, 3, 4, 17};
  rb::Packet* p = rb::AllocFrame(spec, &pool);
  for (auto _ : state) {
    enc.Encapsulate(p);
    dec.Decapsulate(p);
  }
  pool.Free(p);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EspEncapsulate)->Arg(64)->Arg(576)->Arg(1500);

void BM_MaterializeFrame(benchmark::State& state) {
  rb::PacketPool pool(4);
  rb::FrameSpec spec;
  spec.size = 64;
  spec.flow = {1, 2, 3, 4, 17};
  rb::Packet* p = pool.Alloc();
  for (auto _ : state) {
    rb::MaterializeFrame(spec, p);
    benchmark::DoNotOptimize(p->data()[0]);
  }
  pool.Free(p);
}
BENCHMARK(BM_MaterializeFrame);

void BM_InjectorFillFrame(benchmark::State& state) {
  // The template-patch path BM_MaterializeFrame's full construction is
  // being compared against.
  rb::PacketPool pool(4);
  rb::InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  rb::BulkInjector injector(cfg, &pool);
  rb::FrameSpec spec;
  spec.size = 64;
  spec.flow = {1, 2, 3, 4, 17};
  rb::Packet* p = pool.Alloc();
  for (auto _ : state) {
    injector.FillFrame(spec, p);
    benchmark::DoNotOptimize(p->data()[0]);
  }
  pool.Free(p);
}
BENCHMARK(BM_InjectorFillFrame);

void BM_PoolAllocFreeSingle(benchmark::State& state) {
  rb::PacketPool pool(512);
  rb::Packet* pkts[256];
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      pkts[i] = pool.Alloc();
    }
    for (size_t i = 0; i < n; ++i) {
      pool.Free(pkts[i]);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_PoolAllocFreeSingle)->Arg(64)->Arg(256);

void BM_PoolAllocBulkFree(benchmark::State& state) {
  rb::PacketPool pool(512);
  rb::Packet* pkts[256];
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    size_t got = pool.AllocBulk(pkts, n);
    pool.FreeBulk(pkts, got);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_PoolAllocBulkFree)->Arg(64)->Arg(256);

void BM_InjectorBurst(benchmark::State& state) {
  // Whole injection path per packet: bulk carve + template fill.
  rb::PacketPool pool(512);
  rb::InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  rb::BulkInjector injector(cfg, &pool);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  rb::PacketBatch batch;
  for (auto _ : state) {
    injector.NextBurst(n, &batch);
    for (rb::Packet* p : batch) {
      pool.Free(p);
    }
    batch.Clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_InjectorBurst)->Arg(64)->Arg(256);

void BM_InjectorBurstPlanned(benchmark::State& state) {
  // Same path with a precomputed patch plan: generator, hash, and
  // checksum work moved to setup — what the fig9 inject scope measures.
  rb::PacketPool pool(512);
  rb::InjectorConfig cfg;
  cfg.synthetic.packet_size = 64;
  rb::BulkInjector injector(cfg, &pool);
  injector.PrecomputePlan(4096);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  rb::PacketBatch batch;
  for (auto _ : state) {
    injector.NextBurst(n, &batch);
    for (rb::Packet* p : batch) {
      pool.Free(p);
    }
    batch.Clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_InjectorBurstPlanned)->Arg(64)->Arg(256);

void BM_InjectorBurstPlannedAbilene(benchmark::State& state) {
  // Trimodal frame sizes (mean ~730 B): the fill cost is dominated by
  // payload stores into long-evicted buffer lines.
  rb::PacketPool pool(512);
  rb::InjectorConfig cfg;
  cfg.abilene = true;
  cfg.recycled_payload_is_clean = true;
  rb::BulkInjector injector(cfg, &pool);
  injector.PrecomputePlan(4096);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  rb::PacketBatch batch;
  for (auto _ : state) {
    injector.NextBurst(n, &batch);
    for (rb::Packet* p : batch) {
      pool.Free(p);
    }
    batch.Clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_InjectorBurstPlannedAbilene)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
