// Ablation: the output-node re-sequencer — the alternative §6.1 mentions
// and rejects because "the CPUs [are] our bottleneck". We implement it as
// an option and quantify both sides of the trade: it eliminates
// reordering entirely but adds delivery delay, whereas flowlets get most
// of the benefit for ~700 cycles/packet of input-node bookkeeping.
#include <cstdio>

#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/abilene.hpp"

namespace {

rb::ClusterRunStats Run(bool flowlets, bool resequence, double offered_bps, double duration) {
  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.vlb.flowlets = flowlets;
  cfg.resequence = resequence;
  rb::ClusterSim sim(cfg);
  auto gen_cfg = rb::FlowTrafficGenerator::ConfigForRate(offered_bps, 729.6, 40, 20000, 23);
  rb::FlowTrafficGenerator gen(gen_cfg, std::make_unique<rb::AbileneSizeDistribution>());
  return sim.RunSinglePairTrace(&gen, 0, 2, duration);
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_ablation_resequencer");
  auto* offered = flags.AddDouble("offered_gbps", 9.0, "offered load on the single pair");
  auto* duration = flags.AddDouble("duration", 0.05, "simulated seconds");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Ablation: re-sequencer", "single overloaded pair, Abilene-like trace");
  report.SetColumns({"scheme", "reordered sequences", "mean added delay us", "p99 latency us",
                     "timeouts"});
  struct Cfg {
    const char* label;
    bool flowlets;
    bool reseq;
  };
  const Cfg cfgs[] = {
      {"per-packet VLB (no avoidance)", false, false},
      {"flowlets (the paper's choice)", true, false},
      {"output re-sequencer", false, true},
      {"flowlets + re-sequencer", true, true},
  };
  for (const Cfg& c : cfgs) {
    rb::ClusterRunStats stats = Run(c.flowlets, c.reseq, *offered * 1e9, *duration);
    report.AddRow({c.label, rb::Format("%.3f%%", 100 * stats.reorder_sequence_fraction),
                   c.reseq ? rb::Format("%.1f", stats.resequencer_added_delay_mean * 1e6) : "-",
                   rb::Format("%.1f", stats.latency.Percentile(99) * 1e6),
                   c.reseq
                       ? rb::Format("%llu", static_cast<unsigned long long>(
                                                stats.resequencer_timeouts))
                       : "-"});
  }
  report.AddNote("the re-sequencer zeroes reordering at the cost of holding packets at the output");
  report.AddNote("node (plus per-packet sequencing the CPUs could not spare); flowlets approach");
  report.AddNote("the same result with input-node bookkeeping only — the paper's trade.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
