// Reproduces Table 2: nominal and empirical upper bounds on the capacity
// of each system component of the evaluation server.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/server_spec.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_table2_bounds");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::ServerSpec s = rb::ServerSpec::Nehalem();
  rb::Report report("Table 2", "component capacity bounds (Nehalem evaluation server)");
  report.SetColumns({"component", "nominal", "empirical benchmark", "paper nominal",
                     "paper empirical"});
  report.AddRow({"CPUs", rb::Format("%d x %.1f GHz", s.total_cores(), s.clock_hz / 1e9), "n/a",
                 "8 x 2.8 GHz", "none"});
  report.AddRow({"memory", rb::Format("%.0f Gbps", s.memory.nominal_bps / 1e9),
                 rb::Format("%.0f Gbps (random-access stream)", s.memory.empirical_bps / 1e9),
                 "410 Gbps", "262 Gbps"});
  report.AddRow({"inter-socket link", rb::Format("%.0f Gbps", s.inter_socket.nominal_bps / 1e9),
                 rb::Format("%.2f Gbps (stream)", s.inter_socket.empirical_bps / 1e9), "200 Gbps",
                 "144.34 Gbps"});
  report.AddRow({"I/O-socket links", rb::Format("2 x %.0f Gbps", s.io.nominal_bps / 2e9),
                 rb::Format("%.0f Gbps (fwd, 1024 B)", s.io.empirical_bps / 1e9), "2 x 200 Gbps",
                 "117 Gbps"});
  report.AddRow({"PCIe buses (v1.1)", rb::Format("%.0f Gbps", s.pcie.nominal_bps / 1e9),
                 rb::Format("%.1f Gbps (fwd, 1024 B)", s.pcie.empirical_bps / 1e9), "64 Gbps",
                 "50.8 Gbps"});
  report.AddNote(rb::Format("derived NIC-slot input ceiling: %d NICs x %.1f Gbps = %.1f Gbps "
                            "(the 24.6 Gbps cap of §4.1)",
                            s.nic_slots, s.per_nic_input_bps / 1e9, s.max_input_bps() / 1e9));
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
