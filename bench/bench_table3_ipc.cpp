// Reproduces Table 3: instructions/packet (IPP) and cycles/instruction
// (CPI) for 64 B workloads, plus the implied cycles/packet the throughput
// model carries. As an extra reference point (not a paper comparison), it
// measures this host's packet rate, cycles/packet (tsc), and — when
// perf_event_open is available — IPC through the real Click pipeline for
// each application, the same measurement the paper made with Intel's
// counter tools.
#include <chrono>
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "core/single_server_router.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/profiler.hpp"
#include "workload/synthetic.hpp"

namespace {

struct HostRun {
  double mpps = 0;             // wall-clock packet rate
  double cycles_per_packet = 0;  // tsc (or pseudo-cycle) delta / packets
  rb::telemetry::PerfSample perf;
};

HostRun HostPipelineRun(rb::App app, int packets) {
  rb::SingleServerConfig cfg;
  cfg.num_ports = 2;
  cfg.queues_per_port = 1;
  cfg.cores = 1;
  cfg.app = app;
  cfg.pool_packets = 16384;
  cfg.table.num_routes = 65536;
  rb::SingleServerRouter router(cfg);
  router.Initialize();
  rb::SyntheticConfig gen_cfg;
  gen_cfg.packet_size = 64;
  gen_cfg.random_dst = app == rb::App::kIpRouting;
  rb::SyntheticGenerator gen(gen_cfg);

  rb::telemetry::PerfCounterGroup group;
  group.Start();
  const uint64_t c0 = rb::telemetry::ReadCycles();
  auto start = std::chrono::steady_clock::now();
  int done = 0;
  rb::Packet* burst[64];
  while (done < packets) {
    int batch = std::min(1024, packets - done);
    for (int i = 0; i < batch; ++i) {
      rb::Packet* p = rb::AllocFrame(gen.Next(), &router.pool());
      if (p == nullptr) {
        break;
      }
      router.DeliverFrame(done % 2, p, 0.0);
      done++;
    }
    router.RunUntilIdle();
    for (int port = 0; port < 2; ++port) {
      size_t n;
      while ((n = router.DrainPort(port, burst, 64)) > 0) {
        for (size_t i = 0; i < n; ++i) {
          router.pool().Free(burst[i]);
        }
      }
    }
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const uint64_t cycles = rb::telemetry::ReadCycles() - c0;

  HostRun out;
  out.perf = group.Stop();
  out.mpps = done > 0 ? done / secs / 1e6 : 0;
  out.cycles_per_packet = done > 0 ? static_cast<double>(cycles) / done : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_table3_ipc");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* host_packets = flags.AddInt64("host_packets", 200000, "packets for the host columns");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Table 3", "instructions/packet and cycles/instruction, 64 B workloads");
  report.SetColumns({"application", "IPP (paper)", "CPI (paper)", "IPP x CPI cyc/pkt",
                     "model cyc/pkt", "host cyc/pkt*", "host Mpps*", "host IPC*"});
  bool any_hw = false;
  for (int a = 0; a < 3; ++a) {
    rb::App app = static_cast<rb::App>(a);
    rb::AppProfile prof = rb::AppProfile::For(app);
    rb::ThroughputConfig cfg;
    cfg.app = app;
    cfg.frame_bytes = 64;
    double model_cycles = rb::LoadsFor(cfg).cpu_cycles;
    HostRun host = HostPipelineRun(app, static_cast<int>(*host_packets));
    any_hw = any_hw || host.perf.hw;
    report.AddRow({rb::AppName(app), rb::Format("%.0f", prof.instructions_per_packet_64),
                   rb::Format("%.2f", prof.cycles_per_instruction_64),
                   rb::Format("%.0f", prof.instructions_per_packet_64 *
                                          prof.cycles_per_instruction_64),
                   rb::Format("%.0f", model_cycles),
                   rb::Format("%.0f", host.cycles_per_packet),
                   rb::Format("%.3f", host.mpps),
                   host.perf.hw ? rb::Format("%.2f", host.perf.ipc()) : std::string("n/a")});
  }
  report.AddNote(rb::Format(
      "* host columns: this container through the functional Click pipeline (single core, "
      "no NIC hardware); cycle source %s%s.",
      rb::telemetry::CycleSourceName(),
      any_hw ? ", IPC from perf_event_open" : "; perf_event_open unavailable, no IPC"));
  report.AddNote("  Informational only — no claim of matching the testbed. Note the same");
  report.AddNote("  ordering fwd > rtr > ipsec in both Mpps and cycles/packet.");
  report.AddNote("paper: CPI 0.4-0.7 is efficient for CPU-bound, 1.0-2.0 for memory-bound code;");
  report.AddNote("all three applications use the CPUs efficiently — the cycles are truly needed.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
