// Reproduces Figure 3: the number of servers required to build an N-port,
// R = 10 Gbps/port router, for the three server configurations, plus the
// rejected 48-port-switch (Arista) cluster priced in server equivalents.
#include <cstdio>

#include "cluster/sizing.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig3_cluster_sizing");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Figure 3", "servers required vs external ports (R = 10 Gbps)");
  report.SetColumns({"N ports", "current (1 port, 5 slots)", "topology", "more NICs (20 slots)",
                     "topology", "faster (2 ports, 20 slots)", "topology",
                     "48-port switches (equiv)"});

  for (const auto& row : rb::ComputeFig3()) {
    auto topo = [](const rb::SizingResult& r) {
      return r.mesh ? rb::Format("mesh/%s", r.internal_link.c_str()) : std::string("n-fly");
    };
    report.AddRow({rb::Format("%u", row.n),
                   rb::Format("%llu", static_cast<unsigned long long>(row.current.total_servers())),
                   topo(row.current),
                   rb::Format("%llu", static_cast<unsigned long long>(row.more_nics.total_servers())),
                   topo(row.more_nics),
                   rb::Format("%llu", static_cast<unsigned long long>(row.faster.total_servers())),
                   topo(row.faster), rb::Format("%.0f", row.switched_equiv)});
  }
  report.AddNote("paper transitions: current mesh up to N=32, more-NICs up to N=128 (both match);");
  report.AddNote("faster-servers: paper's text claims mesh to N=2048; the stated fanout arithmetic");
  report.AddNote("supports N=256 — we follow the arithmetic (see DESIGN.md, deviations).");
  report.AddNote("switched cluster is the costliest option across the sweep, as in the paper.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
