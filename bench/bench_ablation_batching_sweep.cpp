// Ablation: the (kp, kn) batching plane. Table 1 reports three points;
// this sweep fills in the surface, including the latency cost of kn (the
// NIC waits for kn descriptors) — the throughput/latency trade §4.2
// discusses, including the timeout mitigation the paper left as future
// work (implemented in rb::netdev and exercised in the test suite).
#include <cstdio>

#include "cluster/latency.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_ablation_batching_sweep");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("Ablation: batching", "64 B forwarding rate and per-server latency vs kp, kn");
  report.SetColumns({"kp", "kn", "Gbps", "Mpps", "per-server latency us"});
  for (uint16_t kp : {1, 4, 8, 16, 32}) {
    for (uint16_t kn : {1, 4, 16}) {
      rb::ThroughputConfig cfg;
      cfg.batching = {kp, kn};
      rb::ThroughputResult r = rb::SolveThroughput(cfg);
      rb::LatencyParams lp;
      lp.kn = kn;
      rb::LatencyEstimate e = rb::EstimateLatency(lp);
      report.AddRow({rb::Format("%u", kp), rb::Format("%u", kn),
                     rb::Format("%.2f", r.bps / 1e9), rb::Format("%.2f", r.pps / 1e6),
                     rb::Format("%.1f", e.per_server_us)});
    }
  }
  report.AddNote("kp amortizes Click's poll bookkeeping; kn amortizes PCIe descriptor transfers.");
  report.AddNote("kn buys ~2x throughput for ~12 us of worst-case added latency per server; the");
  report.AddNote("batch timeout (netdev) bounds that wait at low rates.");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
