// Reproduces §6.2 "Latency": the per-server latency decomposition
// (paper: ~24 us = 4 DMA transfers + NIC-batching wait + processing) and
// the resulting 2-3 hop RB4 traversal estimate (47.6-66.4 us), plus the
// end-to-end latency distribution measured on the cluster simulator at
// light load.
#include <cstdio>

#include "cluster/des.hpp"
#include "cluster/latency.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_rb4_latency");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  flags.Parse(argc, argv);

  rb::LatencyEstimate e = rb::EstimateLatency();
  rb::Report decomp("§6.2 latency decomposition", "per-server latency for a 64 B packet");
  decomp.SetColumns({"component", "model us", "paper us"});
  decomp.AddRow({"4 DMA transfers (packet + descriptor, each way)", rb::Format("%.2f", e.dma_us),
                 "4 x 2.56 = 10.24"});
  decomp.AddRow({"NIC-driven batching wait (kn = 16)", rb::Format("%.2f", e.batching_us), "12.8"});
  decomp.AddRow({"processing (routing, one core)", rb::Format("%.2f", e.processing_us), "0.8"});
  decomp.AddRow({"per server", rb::Format("%.2f", e.per_server_us), "24"});
  decomp.AddRow({"RB4 direct path (2 hops)", rb::Format("%.2f", e.cluster_2hop_us), "47.6"});
  decomp.AddRow({"RB4 balanced path (3 hops)", rb::Format("%.2f", e.cluster_3hop_us), "66.4"});
  decomp.AddNote("reference point in the paper: 26.3 us measured for a Cisco 6500 [42].");
  decomp.Print();

  // End-to-end distribution from the simulator at light, uniform load
  // (mostly direct paths; local traffic gives the short tail).
  rb::ClusterSim sim(rb::ClusterConfig::Rb4());
  rb::FixedSizeDistribution sizes(64);
  auto tm = rb::TrafficMatrix::Uniform(4);
  rb::ClusterRunStats stats = sim.RunUniform(tm, 1e9, &sizes, 0.01);
  rb::Report dist("§6.2 latency (simulated)", "RB4 end-to-end latency at 1 Gbps/port, 64 B");
  dist.SetColumns({"percentile", "latency us"});
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    dist.AddRow({rb::Format("p%.0f", p), rb::Format("%.1f", stats.latency.Percentile(p) * 1e6)});
  }
  dist.AddRow({"max", rb::Format("%.1f", stats.latency.max() * 1e6)});
  dist.AddNote("p10 ~ local switching (1 node); p50-p90 ~ the 2-hop direct path near the paper's");
  dist.AddNote("47.6 us; the tail covers queueing and occasional 3-hop balanced paths.");
  dist.Print();

  if (!csv->empty()) {
    decomp.WriteCsv(*csv);
  }
  return 0;
}
