// Reproduces §6.2 "Latency": the per-server latency decomposition
// (paper: ~24 us = 4 DMA transfers + NIC-batching wait + processing) and
// the resulting 2-3 hop RB4 traversal estimate (47.6-66.4 us), plus the
// end-to-end latency distribution measured on the cluster simulator at
// light load.
//
// The simulated distribution is sourced from the telemetry registry (the
// DES observes every delivery into "des/latency_s"), and a third table
// decomposes the measured path stage-by-stage from sampled packet traces —
// the per-server breakdown the paper derives analytically, here read off
// actual simulated packets. --metrics-out dumps all of it as JSON.
#include <cstdio>

#include <map>
#include <string>

#include "cluster/des.hpp"
#include "cluster/latency.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

// "cpu-ingress@2" -> "cpu-ingress": aggregate hop stats across nodes.
std::string StripNode(const std::string& point) {
  size_t at = point.rfind('@');
  return at == std::string::npos ? point : point.substr(0, at);
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_rb4_latency");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::LatencyEstimate e = rb::EstimateLatency();
  rb::Report decomp("§6.2 latency decomposition", "per-server latency for a 64 B packet");
  decomp.SetColumns({"component", "model us", "paper us"});
  decomp.AddRow({"4 DMA transfers (packet + descriptor, each way)", rb::Format("%.2f", e.dma_us),
                 "4 x 2.56 = 10.24"});
  decomp.AddRow({"NIC-driven batching wait (kn = 16)", rb::Format("%.2f", e.batching_us), "12.8"});
  decomp.AddRow({"processing (routing, one core)", rb::Format("%.2f", e.processing_us), "0.8"});
  decomp.AddRow({"per server", rb::Format("%.2f", e.per_server_us), "24"});
  decomp.AddRow({"RB4 direct path (2 hops)", rb::Format("%.2f", e.cluster_2hop_us), "47.6"});
  decomp.AddRow({"RB4 balanced path (3 hops)", rb::Format("%.2f", e.cluster_3hop_us), "66.4"});
  decomp.AddNote("reference point in the paper: 26.3 us measured for a Cisco 6500 [42].");
  decomp.Print();

  // End-to-end distribution from the simulator at light, uniform load
  // (mostly direct paths; local traffic gives the short tail), measured
  // through the telemetry registry and a sampled path tracer.
  rb::telemetry::MetricRegistry registry;
  rb::telemetry::TracerConfig tc;
  tc.sample_every = 16;
  tc.max_traces = 4096;
  rb::telemetry::PathTracer tracer(tc);

  rb::ClusterSim sim(rb::ClusterConfig::Rb4());
  sim.BindTelemetry(&registry, &tracer, /*probe_interval=*/1e-4);
  rb::FixedSizeDistribution sizes(64);
  auto tm = rb::TrafficMatrix::Uniform(4);
  sim.RunUniform(tm, 1e9, &sizes, 0.01);

  rb::telemetry::RegistrySnapshot snap = registry.Snapshot();
  const rb::telemetry::HistogramSnapshot* lat = snap.FindHistogram("des/latency_s");
  rb::Report dist("§6.2 latency (simulated)", "RB4 end-to-end latency at 1 Gbps/port, 64 B");
  dist.SetColumns({"percentile", "latency us"});
  if (lat != nullptr) {
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
      dist.AddRow({rb::Format("p%.0f", p), rb::Format("%.1f", lat->Percentile(p) * 1e6)});
    }
    dist.AddRow({"max", rb::Format("%.1f", lat->max * 1e6)});
  }
  dist.AddNote("p10 ~ local switching (1 node); p50-p90 ~ the 2-hop direct path near the paper's");
  dist.AddNote("47.6 us; the tail covers queueing and occasional 3-hop balanced paths.");
  dist.Print();

  // Per-stage decomposition from the sampled traces: mean time spent
  // between consecutive path points, aggregated across nodes. The CPU and
  // ext-out stages carry the node_fixed_latency (DMA + batching) of the
  // analytic table above.
  struct StageAgg {
    uint64_t count = 0;
    double sum = 0;
  };
  std::map<std::string, StageAgg> stages;
  for (const rb::telemetry::HopLatency& hop : tracer.HopLatencies()) {
    StageAgg& agg = stages[StripNode(hop.from) + " -> " + StripNode(hop.to)];
    agg.count += hop.count;
    agg.sum += hop.sum;
  }
  rb::Report traced("§6.2 stage breakdown (traced)",
                    rb::Format("mean per-stage latency over %llu sampled packets",
                               static_cast<unsigned long long>(tracer.sampled())));
  traced.SetColumns({"stage", "packets", "mean us"});
  for (const auto& [name, agg] : stages) {
    traced.AddRow({name, rb::Format("%llu", static_cast<unsigned long long>(agg.count)),
                   rb::Format("%.2f", agg.count ? agg.sum / agg.count * 1e6 : 0)});
  }
  traced.AddNote("simulated-time timestamps from the DES path tracer; stage = consecutive");
  traced.AddNote("trace points with node ids stripped. Queueing + service + fixed latencies.");
  traced.Print();

  if (!csv->empty()) {
    decomp.WriteCsv(*csv);
  }
  rb::telemetry::ExportBundle bundle;
  bundle.registry = &registry;
  bundle.tracer = &tracer;
  for (const auto& s : sim.probe_series()) {
    bundle.series.push_back(&s);
  }
  rb::MaybeWriteMetrics(*metrics_out, bundle);
  return 0;
}
