// Reproduces the §5.3 scaling projections: next-generation 4-socket
// server rates at 64 B (38.8 / 19.9 / 5.8 Gbps) and the ~70 Gbps Abilene
// estimate for the current server freed of its 2-NIC-slot limit.
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/extrapolate.hpp"
#include "workload/abilene.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_projection_nextgen");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::Report report("§5.3 projection", "next-generation server (4 sockets x 8 cores), 64 B");
  report.SetColumns({"application", "current Gbps", "next-gen Gbps", "paper next-gen",
                     "ratio", "next-gen bottleneck"});
  const double paper[] = {38.8, 19.9, 5.8};
  auto projections = rb::ProjectNextGen64B();
  for (size_t i = 0; i < projections.size(); ++i) {
    const auto& p = projections[i];
    report.AddRow({rb::AppName(p.app), rb::Format("%.2f", p.current.bps / 1e9),
                   rb::Format("%.2f", p.next_gen.bps / 1e9), rb::Format("%.1f", paper[i]),
                   rb::RatioCell(p.next_gen.bps / 1e9, paper[i]), p.next_gen.bottleneck});
  }
  report.AddNote("forwarding scales 4x with the CPUs; routing flips to memory-bound at 2x memory");
  report.AddNote("bandwidth (random lookups in the 256 K table), reproducing the sub-4x 19.9 Gbps.");
  report.Print();

  double mean = rb::AbileneSizeDistribution().MeanSize();
  rb::Report abilene("§5.3 projection (Abilene)",
                     "current server, NIC slots unconstrained, PCIe ignored");
  abilene.SetColumns({"application", "model Gbps", "paper estimate", "bottleneck"});
  rb::ThroughputResult r = rb::ProjectAbileneUnlimitedNics(rb::App::kMinimalForwarding, mean);
  abilene.AddRow({"forwarding", rb::Format("%.1f", r.bps / 1e9), "~70 Gbps", r.bottleneck});
  abilene.AddNote("the socket-I/O links bound the estimate, as in the paper's reasoning.");
  abilene.Print();

  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
