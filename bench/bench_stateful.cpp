// Stateful-plane bench (DESIGN.md §17): the robustness contract of the
// rb flow table and the shared-vs-SCR state-distribution ablation,
// measured and gated. Four phases:
//
//  1. table_churn — a million concurrent flows (heavy-tailed Zipf
//     emission, seeded birth/death churn) through the bounded-probe
//     table: zero insert failures, probe p99 within the configured
//     window, ns/op reported.
//  2. overload_eviction — a Nat element graph driven at 2x its table
//     capacity: watermark eviction engages, forwarding never stops,
//     drops (if any) land only in the dedicated flow_table_full bucket,
//     ports and pool buffers conserve exactly.
//  3. ablation — per-packet cost of the stateful plane in shared vs SCR
//     mode (the SCR tax = log append + periodic checkpoint), plus the
//     measured wall-time and record count of a failover replay, checked
//     against the checkpoint_period bound.
//  4. failover — the DES differential: kill a node mid-run; SCR mode
//     must preserve every established-flow NAT mapping byte-for-byte,
//     the shared baseline must demonstrably lose the dead node's flows.
//
// Any failed gate exits nonzero. --json writes a machine-readable
// summary (schema rb.bench_stateful.v1) that
// tools/check_bench_regression.py --stateful validates structurally;
// the gates are machine-independent invariants, so there is no
// committed cycle baseline.
#include <chrono>
#include <cstdio>

#include <map>
#include <string>
#include <vector>

#include "click/elements/nat.hpp"
#include "click/router.hpp"
#include "cluster/des.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "flow/flow_table.hpp"
#include "flow/stateful_plane.hpp"
#include "harness/report.hpp"
#include "packet/pool.hpp"
#include "telemetry/json.hpp"
#include "workload/flows.hpp"
#include "workload/synthetic.hpp"

namespace {

double g_nat_clock_s = 0;
double NatClock() { return g_nat_clock_s; }

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int g_failures = 0;
void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    g_failures++;
  }
}

// --- phase 1: million-flow churn through the bounded-probe table ---

struct ChurnResult {
  uint64_t concurrent_flows = 0;
  uint64_t ops = 0;
  uint64_t insert_fail = 0;
  uint64_t evictions = 0;
  int probe_p99 = 0;
  int max_probe_buckets = 0;
  double ns_per_op = 0;
  double load_factor = 0;
};

ChurnResult RunChurn(size_t target_flows, size_t capacity, uint64_t extra_ops,
                     uint64_t seed) {
  rb::FlowTableConfig tcfg;
  tcfg.capacity = capacity;
  tcfg.shards = 8;
  rb::FlowTable table(tcfg);

  rb::FlowChurnConfig wcfg;
  wcfg.target_flows = target_flows;
  wcfg.zipf_s = 1.1;
  wcfg.churn_per_packet = 1e-3;
  wcfg.seed = seed;
  rb::FlowChurnGenerator gen(wcfg);

  ChurnResult res;
  res.ops = target_flows + extra_ops;
  const double t0 = NowMs();
  for (uint64_t i = 0; i < res.ops; ++i) {
    const auto item = gen.Next();
    table.FindOrInsert(item.key, static_cast<uint32_t>(i >> 10));
  }
  res.ns_per_op = (NowMs() - t0) * 1e6 / static_cast<double>(res.ops);
  const rb::FlowTableStats s = table.stats();
  res.concurrent_flows = table.occupancy();
  res.insert_fail = s.insert_fail;
  res.evictions = s.evictions();
  res.probe_p99 = table.ProbeLengthPercentile(0.99);
  res.max_probe_buckets = table.max_probe_buckets();
  res.load_factor =
      static_cast<double>(table.occupancy()) / static_cast<double>(table.capacity_slots());
  return res;
}

// --- phase 2: Nat under 2x table overload ---

class DrainSink : public rb::Element {
 public:
  explicit DrainSink(rb::PacketPool* pool) : Element(1, 0), pool_(pool) {}
  const char* class_name() const override { return "DrainSink"; }
  void Push(int, rb::Packet* p) override {
    count++;
    pool_->Free(p);
  }
  uint64_t count = 0;

 private:
  rb::PacketPool* pool_;
};

struct OverloadResult {
  uint64_t offered = 0;
  uint64_t forwarded = 0;
  uint64_t evict_watermark = 0;
  uint64_t table_full_drops = 0;
  uint64_t mappings_in_use = 0;
  uint64_t capacity_slots = 0;
  bool ports_conserved = false;
  bool pool_conserved = false;
};

OverloadResult RunOverload(size_t capacity, bool evict_on_full) {
  rb::Router r;
  rb::NatOptions opt;
  opt.capacity = capacity;
  if (!evict_on_full) {
    opt.hi_watermark = 1.0;  // watermark off: full windows must hit the drop bucket
    opt.lo_watermark = 0.5;
    opt.evict_on_full = false;
  }
  rb::PacketPool pool(1024);
  auto* nat = r.Add<rb::Nat>(opt);
  auto* out = r.Add<DrainSink>(&pool);
  auto* in = r.Add<DrainSink>(&pool);
  r.Connect(nat, 0, out, 0);
  r.Connect(nat, 1, in, 0);
  r.Initialize();
  g_nat_clock_s = 0;
  nat->set_clock(&NatClock);

  OverloadResult res;
  res.capacity_slots = nat->table().capacity_slots();
  // 2x the slot budget in distinct flows, batched like a real ingress.
  const uint64_t flows = res.capacity_slots * 2;
  constexpr int kBatch = 32;
  rb::PacketBatch batch;
  for (uint64_t i = 0; i < flows; ++i) {
    g_nat_clock_s += 1e-4;
    rb::FrameSpec spec;
    spec.size = 64;
    spec.flow = rb::FlowChurnGenerator::KeyFor(i);
    batch.PushBack(rb::AllocFrame(spec, &pool));
    if (batch.size() == kBatch || i + 1 == flows) {
      nat->PushBatch(0, batch);
      batch.Clear();
    }
  }
  res.offered = flows;
  res.forwarded = out->count;
  res.evict_watermark = nat->table().stats().evict_watermark;
  res.table_full_drops = nat->table_full_drops();
  res.mappings_in_use = nat->mappings_in_use();
  res.ports_conserved = nat->mappings_in_use() == nat->table().occupancy();
  res.pool_conserved = pool.in_use() == 0;  // drops were freed, outputs drained
  return res;
}

// --- phase 3: shared-vs-SCR per-packet cost + replay bill ---

struct AblationResult {
  double shared_ns_per_op = 0;
  double scr_ns_per_op = 0;
  double scr_overhead_frac = 0;
  double replay_ms = 0;
  uint64_t replays = 0;
  uint64_t replayed_records = 0;
  uint64_t checkpoint_period = 0;
  bool replay_bound_ok = false;
};

double DrivePlane(rb::StatefulPlane* plane, uint64_t packets, uint64_t flows) {
  const double t0 = NowMs();
  for (uint64_t i = 0; i < packets; ++i) {
    plane->Apply(i % flows, 64, static_cast<uint32_t>(i >> 6));
  }
  return (NowMs() - t0) * 1e6 / static_cast<double>(packets);
}

AblationResult RunAblation(uint64_t packets, uint64_t flows, size_t checkpoint_period) {
  constexpr int kNodes = 4;
  rb::StatefulPlaneConfig cfg;
  cfg.enabled = true;
  cfg.capacity_per_node = flows * 2;
  cfg.checkpoint_period = checkpoint_period;

  AblationResult res;
  res.checkpoint_period = checkpoint_period;

  cfg.mode = rb::StateMode::kShared;
  rb::StatefulPlane shared(cfg, kNodes);
  res.shared_ns_per_op = DrivePlane(&shared, packets, flows);

  cfg.mode = rb::StateMode::kScr;
  rb::StatefulPlane scr(cfg, kNodes);
  res.scr_ns_per_op = DrivePlane(&scr, packets, flows);
  res.scr_overhead_frac =
      res.shared_ns_per_op > 0
          ? (res.scr_ns_per_op - res.shared_ns_per_op) / res.shared_ns_per_op
          : 0;

  // The failover bill: kill node 1, time the detection-driven replay.
  scr.OnNodeDown(1);
  const double t0 = NowMs();
  scr.OnNodeDetectedDown(1);
  res.replay_ms = NowMs() - t0;
  const rb::StatefulPlaneStats s = scr.stats();
  res.replays = s.replays;
  res.replayed_records = s.replayed_records;
  res.replay_bound_ok = s.replayed_records <= s.replays * checkpoint_period;
  return res;
}

// --- phase 4: DES failover differential ---

struct FailoverResult {
  double scr_preserved = 0;
  double shared_preserved = 0;
  uint64_t lost_flows_shared = 0;
  uint64_t state_unavailable = 0;
  uint64_t scr_replayed_records = 0;
  bool conservation_ok = false;
};

std::map<uint64_t, uint64_t> RunDesOnce(rb::StateMode mode, bool with_failure,
                                        uint64_t n_flows, uint64_t seed,
                                        rb::ClusterRunStats* stats_out) {
  rb::ClusterConfig cfg = rb::ClusterConfig::Rb4();
  cfg.seed = seed;
  cfg.stateful.enabled = true;
  cfg.stateful.mode = mode;
  cfg.stateful.capacity_per_node = 1 << 10;
  cfg.stateful.checkpoint_period = 64;
  constexpr double kFailTime = 2e-3;
  constexpr uint16_t kDeadNode = 2;
  if (with_failure) {
    cfg.failures.NodeDown(kDeadNode, kFailTime);
  }
  rb::ClusterSim sim(cfg);
  const double gap = 10e-6;
  rb::SimTime t = 0;
  uint64_t seq = 0;
  for (int round = 0; round < 3; ++round) {  // establish before the failure
    for (uint64_t f = 0; f < n_flows; ++f, t += gap) {
      sim.Inject(0, 1, f, seq++, 64, t);
    }
  }
  t = kFailTime + 1e-3;  // same flows again, after failover
  for (int round = 0; round < 3; ++round) {
    for (uint64_t f = 0; f < n_flows; ++f, t += gap) {
      sim.Inject(0, 1, f, seq++, 64, t);
    }
  }
  rb::ClusterRunStats stats = sim.Finish(t + 1e-3);
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return sim.stateful_plane()->MappingSnapshot();
}

double PreservedFraction(const std::map<uint64_t, uint64_t>& base,
                         const std::map<uint64_t, uint64_t>& failed) {
  if (base.empty()) {
    return 0;
  }
  uint64_t same = 0;
  for (const auto& [flow, mapping] : base) {
    auto it = failed.find(flow);
    if (it != failed.end() && it->second == mapping) {
      same++;
    }
  }
  return static_cast<double>(same) / static_cast<double>(base.size());
}

FailoverResult RunFailover(uint64_t n_flows, uint64_t seed) {
  FailoverResult res;
  rb::ClusterRunStats scr_stats;
  rb::ClusterRunStats shared_stats;
  const auto scr_base = RunDesOnce(rb::StateMode::kScr, false, n_flows, seed, nullptr);
  const auto scr_fail = RunDesOnce(rb::StateMode::kScr, true, n_flows, seed, &scr_stats);
  const auto sh_base = RunDesOnce(rb::StateMode::kShared, false, n_flows, seed, nullptr);
  const auto sh_fail = RunDesOnce(rb::StateMode::kShared, true, n_flows, seed, &shared_stats);
  res.scr_preserved = PreservedFraction(scr_base, scr_fail);
  res.shared_preserved = PreservedFraction(sh_base, sh_fail);
  res.lost_flows_shared = shared_stats.stateful.lost_flows;
  res.state_unavailable = scr_stats.stateful.state_unavailable;
  res.scr_replayed_records = scr_stats.stateful.replayed_records;
  res.conservation_ok = rb::AuditConservation(scr_stats).empty() &&
                        rb::AuditConservation(shared_stats).empty();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_stateful");
  auto* flows = flags.AddInt64("flows", 1 << 20, "concurrent-flow target for the churn phase");
  auto* capacity = flags.AddInt64("capacity", 1 << 21, "flow-table slot budget (churn phase)");
  auto* ops = flags.AddInt64("ops", 4 << 20, "extra churn operations after the ramp");
  auto* nat_capacity = flags.AddInt64("nat-capacity", 4096, "Nat table budget (overload phase)");
  auto* ablation_pkts = flags.AddInt64("ablation-pkts", 1 << 20, "packets per ablation mode");
  auto* des_flows = flags.AddInt64("des-flows", 64, "flow population for the DES failover");
  auto* seed = flags.AddInt64("seed", 11, "RNG seed");
  auto* smoke = flags.AddBool("smoke", false, "small fast preset (overrides sizing flags)");
  auto* json = flags.AddString("json", "", "write the machine-readable summary here");
  flags.Parse(argc, argv);

  if (*smoke) {
    *flows = 1 << 15;
    *capacity = 1 << 16;
    *ops = 1 << 17;
    *nat_capacity = 1024;
    *ablation_pkts = 1 << 16;
  }

  // Phase 1: million-flow churn.
  ChurnResult churn = RunChurn(static_cast<size_t>(*flows), static_cast<size_t>(*capacity),
                               static_cast<uint64_t>(*ops), static_cast<uint64_t>(*seed));
  rb::Report table_report("§17 flow table under churn",
                          rb::Format("%llu-op Zipf churn, %llu-slot table",
                                     static_cast<unsigned long long>(churn.ops),
                                     static_cast<unsigned long long>(*capacity)));
  table_report.SetColumns({"concurrent flows", "load", "ns/op", "probe p99 (buckets)",
                           "evictions", "insert failures"});
  table_report.AddRow({rb::Format("%llu", static_cast<unsigned long long>(churn.concurrent_flows)),
                       rb::Format("%.2f", churn.load_factor),
                       rb::Format("%.1f", churn.ns_per_op),
                       rb::Format("%d <= %d", churn.probe_p99, churn.max_probe_buckets),
                       rb::Format("%llu", static_cast<unsigned long long>(churn.evictions)),
                       rb::Format("%llu", static_cast<unsigned long long>(churn.insert_fail))});
  table_report.Print();
  Check(churn.concurrent_flows >= static_cast<uint64_t>(*flows) * 99 / 100,
        rb::Format("churn phase holds %llu concurrent flows, wanted >= %lld",
                   static_cast<unsigned long long>(churn.concurrent_flows),
                   static_cast<long long>(*flows)));
  Check(churn.insert_fail == 0, "churn phase must never fail an insert");
  Check(churn.probe_p99 >= 1 && churn.probe_p99 <= churn.max_probe_buckets,
        rb::Format("probe p99 %d outside the bounded window [1, %d]", churn.probe_p99,
                   churn.max_probe_buckets));

  // Phase 2: Nat at 2x capacity, both full-window policies.
  OverloadResult evict = RunOverload(static_cast<size_t>(*nat_capacity), /*evict_on_full=*/true);
  OverloadResult strict = RunOverload(static_cast<size_t>(*nat_capacity), /*evict_on_full=*/false);
  rb::Report overload_report("§17 graceful overload",
                             rb::Format("Nat at 2x table capacity (%llu flows offered)",
                                        static_cast<unsigned long long>(evict.offered)));
  overload_report.SetColumns({"policy", "forwarded/offered", "watermark evictions",
                              "flow_table_full drops", "mappings (<= slots)"});
  overload_report.AddRow(
      {"evict LRU", rb::Format("%llu/%llu", static_cast<unsigned long long>(evict.forwarded),
                               static_cast<unsigned long long>(evict.offered)),
       rb::Format("%llu", static_cast<unsigned long long>(evict.evict_watermark)),
       rb::Format("%llu", static_cast<unsigned long long>(evict.table_full_drops)),
       rb::Format("%llu <= %llu", static_cast<unsigned long long>(evict.mappings_in_use),
                  static_cast<unsigned long long>(evict.capacity_slots))});
  overload_report.AddRow(
      {"drop (strict)", rb::Format("%llu/%llu", static_cast<unsigned long long>(strict.forwarded),
                                   static_cast<unsigned long long>(strict.offered)),
       rb::Format("%llu", static_cast<unsigned long long>(strict.evict_watermark)),
       rb::Format("%llu", static_cast<unsigned long long>(strict.table_full_drops)),
       rb::Format("%llu <= %llu", static_cast<unsigned long long>(strict.mappings_in_use),
                  static_cast<unsigned long long>(strict.capacity_slots))});
  overload_report.Print();
  Check(evict.forwarded == evict.offered,
        "eviction policy must keep forwarding every packet at 2x overload");
  Check(evict.evict_watermark > 0, "watermark eviction must engage at 2x overload");
  Check(evict.table_full_drops == 0,
        "with eviction on, nothing may land in the flow_table_full bucket");
  Check(evict.mappings_in_use <= evict.capacity_slots, "mapping count exceeded the slot budget");
  Check(evict.ports_conserved, "evicted mappings must return their ports (ports != occupancy)");
  Check(evict.pool_conserved, "packet-pool leak in the eviction run");
  Check(strict.table_full_drops > 0,
        "with eviction off, overload must surface in the flow_table_full bucket");
  Check(strict.forwarded + strict.table_full_drops == strict.offered,
        "strict policy: forwarded + flow_table_full drops must equal offered");
  Check(strict.pool_conserved, "packet-pool leak in the strict run (drops not freed?)");

  // Phase 3: shared-vs-SCR ablation.
  AblationResult abl = RunAblation(static_cast<uint64_t>(*ablation_pkts),
                                   /*flows=*/1 << 12, /*checkpoint_period=*/4096);
  rb::Report abl_report("§17 state-distribution ablation",
                        rb::Format("%lld packets/mode, 4 nodes",
                                   static_cast<long long>(*ablation_pkts)));
  abl_report.SetColumns({"mode", "ns/packet", "overhead", "replay"});
  abl_report.AddRow({"shared", rb::Format("%.1f", abl.shared_ns_per_op), "-",
                     "lost on failover"});
  abl_report.AddRow({"SCR", rb::Format("%.1f", abl.scr_ns_per_op),
                     rb::Format("%.1f%%", abl.scr_overhead_frac * 100),
                     rb::Format("%llu records in %.2f ms",
                                static_cast<unsigned long long>(abl.replayed_records),
                                abl.replay_ms)});
  abl_report.AddNote(rb::Format(
      "replay bounded by checkpoint_period: %llu records <= %llu replays x %llu",
      static_cast<unsigned long long>(abl.replayed_records),
      static_cast<unsigned long long>(abl.replays),
      static_cast<unsigned long long>(abl.checkpoint_period)));
  abl_report.Print();
  Check(abl.replays > 0, "ablation failover produced no shard replays");
  Check(abl.replay_bound_ok, "replayed records exceeded replays x checkpoint_period");

  // Phase 4: DES failover differential.
  FailoverResult fo = RunFailover(static_cast<uint64_t>(*des_flows),
                                  static_cast<uint64_t>(*seed));
  rb::Report fo_report("§17 kill-a-node differential",
                       rb::Format("%lld flows, node killed mid-run, mappings vs no-failure run",
                                  static_cast<long long>(*des_flows)));
  fo_report.SetColumns({"mode", "mappings preserved", "lost flows", "replayed records"});
  fo_report.AddRow({"SCR", rb::Format("%.3f", fo.scr_preserved), "0",
                    rb::Format("%llu", static_cast<unsigned long long>(fo.scr_replayed_records))});
  fo_report.AddRow({"shared", rb::Format("%.3f", fo.shared_preserved),
                    rb::Format("%llu", static_cast<unsigned long long>(fo.lost_flows_shared)),
                    "-"});
  fo_report.AddNote(rb::Format("blind-window packets counted state_unavailable: %llu",
                               static_cast<unsigned long long>(fo.state_unavailable)));
  fo_report.Print();
  Check(fo.scr_preserved == 1.0, rb::Format("SCR preserved %.3f of mappings, must be 1.0",
                                            fo.scr_preserved));
  Check(fo.shared_preserved < 1.0,
        "shared baseline must demonstrably lose flows homed at the dead node");
  Check(fo.lost_flows_shared > 0, "shared-mode failover reported zero lost flows");
  Check(fo.conservation_ok, "DES packet-conservation audit failed");

  if (!json->empty()) {
    namespace tele = rb::telemetry;
    tele::JsonWriter w;
    w.BeginObject();
    w.Key("schema"); w.String("rb.bench_stateful.v1");
    w.Key("seed"); w.Int(*seed);
    w.Key("smoke"); w.Bool(*smoke);
    w.Key("table"); w.BeginObject();
    w.Key("concurrent_flows"); w.Uint(churn.concurrent_flows);
    w.Key("ops"); w.Uint(churn.ops);
    w.Key("insert_fail"); w.Uint(churn.insert_fail);
    w.Key("evictions"); w.Uint(churn.evictions);
    w.Key("probe_p99"); w.Int(churn.probe_p99);
    w.Key("max_probe_buckets"); w.Int(churn.max_probe_buckets);
    w.Key("load_factor"); w.Double(churn.load_factor);
    w.Key("ns_per_op"); w.Double(churn.ns_per_op);
    w.EndObject();
    w.Key("overload"); w.BeginObject();
    w.Key("offered"); w.Uint(evict.offered);
    w.Key("forwarded"); w.Uint(evict.forwarded);
    w.Key("evict_watermark"); w.Uint(evict.evict_watermark);
    w.Key("table_full_drops"); w.Uint(evict.table_full_drops);
    w.Key("strict_forwarded"); w.Uint(strict.forwarded);
    w.Key("strict_table_full_drops"); w.Uint(strict.table_full_drops);
    w.Key("ports_conserved"); w.Bool(evict.ports_conserved && strict.ports_conserved);
    w.EndObject();
    w.Key("ablation"); w.BeginObject();
    w.Key("shared_ns_per_op"); w.Double(abl.shared_ns_per_op);
    w.Key("scr_ns_per_op"); w.Double(abl.scr_ns_per_op);
    w.Key("scr_overhead_frac"); w.Double(abl.scr_overhead_frac);
    w.Key("replay_ms"); w.Double(abl.replay_ms);
    w.Key("replays"); w.Uint(abl.replays);
    w.Key("replayed_records"); w.Uint(abl.replayed_records);
    w.Key("checkpoint_period"); w.Uint(abl.checkpoint_period);
    w.Key("replay_bound_ok"); w.Bool(abl.replay_bound_ok);
    w.EndObject();
    w.Key("failover"); w.BeginObject();
    w.Key("scr_preserved"); w.Double(fo.scr_preserved);
    w.Key("shared_preserved"); w.Double(fo.shared_preserved);
    w.Key("lost_flows_shared"); w.Uint(fo.lost_flows_shared);
    w.Key("state_unavailable"); w.Uint(fo.state_unavailable);
    w.EndObject();
    w.Key("conservation_ok"); w.Bool(fo.conservation_ok);
    w.Key("checks_failed"); w.Int(g_failures);
    w.EndObject();
    FILE* f = fopen(json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: failed to write %s\n", json->c_str());
    } else {
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      fclose(f);
      std::printf("stateful JSON written to %s\n", json->c_str());
    }
  }

  return g_failures == 0 ? 0 : 1;
}
