// Reproduces Figure 10: per-packet loads on the memory buses, socket-I/O
// links, PCIe buses, and inter-socket links for the three applications at
// 64 B, against their nominal and empirical upper bounds evaluated at each
// application's maximum achieved rate. The conclusion the figure carries:
// every one of these subsystems runs well below its ceiling — the CPU is
// the bottleneck (§5.3 items 1 and 3).
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "harness/metrics_out.hpp"
#include "harness/report.hpp"
#include "model/throughput.hpp"

int main(int argc, char** argv) {
  rb::FlagSet flags("bench_fig10_bus_load");
  auto* csv = flags.AddString("csv", "", "optional CSV output path");
  auto* metrics_out = rb::AddMetricsOutFlag(&flags);
  flags.Parse(argc, argv);

  rb::ServerSpec spec = rb::ServerSpec::Nehalem();
  rb::Report report("Figure 10", "bus loads (bytes/packet) at each app's max 64 B rate");
  report.SetColumns({"application", "rate Mpps", "bus", "load B/pkt", "empirical bound B/pkt",
                     "nominal bound B/pkt", "headroom"});

  for (int a = 0; a < 3; ++a) {
    rb::ThroughputConfig cfg;
    cfg.app = static_cast<rb::App>(a);
    cfg.frame_bytes = 64;
    rb::ThroughputResult r = rb::SolveThroughput(cfg);
    rb::ComponentLoads loads = r.per_packet;

    struct BusRow {
      const char* name;
      double load;
      rb::Capacity cap;
    };
    const BusRow buses[] = {
        {"memory", loads.memory_bytes, spec.memory},
        {"socket-I/O", loads.io_bytes, spec.io},
        {"PCIe", loads.pcie_bytes, spec.pcie},
        {"inter-socket", loads.inter_socket_bytes, spec.inter_socket},
    };
    for (const BusRow& bus : buses) {
      double emp_bound = bus.cap.empirical_bps / 8.0 / r.pps;
      double nom_bound = bus.cap.nominal_bps / 8.0 / r.pps;
      report.AddRow({rb::AppName(static_cast<rb::App>(a)), rb::Format("%.2f", r.pps / 1e6),
                     bus.name, rb::Format("%.0f", bus.load), rb::Format("%.0f", emp_bound),
                     rb::Format("%.0f", nom_bound),
                     rb::Format("%.1fx", emp_bound / bus.load)});
    }
  }
  report.AddNote("every bus has >1x headroom at the CPU-limited rate: 'these traditional problem");
  report.AddNote("areas for packet processing are no longer the primary performance limiters'.");
  report.AddNote("1024 B / 64 B load ratios: memory 6x, socket-I/O 11x, CPU 1.6x (paper §5.3-2).");
  report.Print();
  if (!csv->empty()) {
    report.WriteCsv(*csv);
  }
  rb::MaybeWriteMetrics(*metrics_out);
  return 0;
}
