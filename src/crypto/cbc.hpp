// AES-128-CBC with PKCS#7-style padding helpers.
#ifndef RB_CRYPTO_CBC_HPP_
#define RB_CRYPTO_CBC_HPP_

#include <cstddef>
#include <cstdint>

#include "crypto/aes128.hpp"

namespace rb {

class AesCbc {
 public:
  explicit AesCbc(const uint8_t key[Aes128::kKeySize]) : cipher_(key) {}

  // Encrypts `len` bytes in place; len must be a multiple of 16.
  void Encrypt(uint8_t* data, size_t len, const uint8_t iv[Aes128::kBlockSize]) const;

  // Decrypts `len` bytes in place; len must be a multiple of 16.
  void Decrypt(uint8_t* data, size_t len, const uint8_t iv[Aes128::kBlockSize]) const;

  const Aes128& cipher() const { return cipher_; }

 private:
  Aes128 cipher_;
};

// Number of padding bytes needed to round `len` (+2 ESP trailer bytes when
// `esp_trailer` is true) up to a 16-byte multiple.
size_t CbcPadLength(size_t len, bool esp_trailer);

}  // namespace rb

#endif  // RB_CRYPTO_CBC_HPP_
