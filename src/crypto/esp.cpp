#include "crypto/esp.hpp"

#include <cstring>

#include "packet/headers.hpp"

namespace rb {

EspTunnel::EspTunnel(const EspConfig& config) : config_(config), cbc_(config.key) {}

bool EspTunnel::Encapsulate(Packet* p) {
  if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
    return false;
  }
  EthernetView eth{p->data()};
  if (eth.ether_type() != EthernetView::kTypeIpv4) {
    return false;
  }
  // Save the Ethernet header, then strip it; ESP operates on the IP packet.
  uint8_t saved_eth[EthernetView::kSize];
  memcpy(saved_eth, p->data(), EthernetView::kSize);
  p->Pull(EthernetView::kSize);

  uint32_t inner_len = p->length();
  // Trailer: pad + pad-length byte + next-header byte.
  uint32_t pad = static_cast<uint32_t>(CbcPadLength(inner_len, /*esp_trailer=*/true));
  uint32_t trailer = pad + 2;
  if (p->tailroom() < trailer) {
    p->Push(EthernetView::kSize);  // restore before failing
    return false;
  }
  uint8_t* tail = p->Put(trailer);
  for (uint32_t i = 0; i < pad; ++i) {
    tail[i] = static_cast<uint8_t>(i + 1);  // RFC 4303 monotonic padding
  }
  tail[pad] = static_cast<uint8_t>(pad);
  tail[pad + 1] = 4;  // next header: IPv4 (tunnel mode)

  // IV: counter-derived, unique per packet.
  uint8_t iv[kIvBytes];
  uint64_t ctr = iv_counter_++;
  memset(iv, 0, sizeof(iv));
  for (int i = 0; i < 8; ++i) {
    iv[8 + i] = static_cast<uint8_t>(ctr >> (56 - 8 * i));
  }
  cbc_.Encrypt(p->data(), p->length(), iv);

  // Prepend IV, ESP header, outer IP header.
  uint8_t* ivp = p->Push(kIvBytes);
  memcpy(ivp, iv, kIvBytes);
  uint8_t* esp = p->Push(kEspHeaderBytes);
  StoreBe32(esp, config_.spi);
  StoreBe32(esp + 4, seq_++);
  uint8_t* outer = p->Push(Ipv4View::kMinSize);
  Ipv4View::WriteDefault(outer, config_.tunnel_src, config_.tunnel_dst, Ipv4View::kProtoEsp,
                         static_cast<uint16_t>(p->length()));

  // Restore Ethernet framing around the tunnel packet.
  uint8_t* eth2 = p->Push(EthernetView::kSize);
  memcpy(eth2, saved_eth, EthernetView::kSize);
  return true;
}

bool EspTunnel::Decapsulate(Packet* p) {
  constexpr uint32_t kMinEsp = EthernetView::kSize + Ipv4View::kMinSize + kEspHeaderBytes +
                               kIvBytes + Aes128::kBlockSize;
  if (p->length() < kMinEsp) {
    return false;
  }
  uint8_t saved_eth[EthernetView::kSize];
  memcpy(saved_eth, p->data(), EthernetView::kSize);
  p->Pull(EthernetView::kSize);

  Ipv4View outer{p->data()};
  if (outer.version() != 4 || outer.protocol() != Ipv4View::kProtoEsp) {
    p->Push(EthernetView::kSize);
    return false;
  }
  p->Pull(outer.header_length());
  uint32_t spi = LoadBe32(p->data());
  if (spi != config_.spi) {
    return false;  // packet is consumed-as-failed; caller drops it
  }
  p->Pull(kEspHeaderBytes);
  uint8_t iv[kIvBytes];
  memcpy(iv, p->data(), kIvBytes);
  p->Pull(kIvBytes);

  if (p->length() % Aes128::kBlockSize != 0 || p->length() == 0) {
    return false;
  }
  cbc_.Decrypt(p->data(), p->length(), iv);

  // Strip the trailer.
  uint8_t next_header = p->data()[p->length() - 1];
  uint8_t pad_len = p->data()[p->length() - 2];
  if (next_header != 4 || pad_len + 2u > p->length()) {
    return false;
  }
  p->Trim(pad_len + 2u);

  uint8_t* eth2 = p->Push(EthernetView::kSize);
  memcpy(eth2, saved_eth, EthernetView::kSize);
  return true;
}

}  // namespace rb
