// AES-128 block cipher, implemented from FIPS-197.
//
// The paper's IPsec application encrypts every packet with AES-128 "as is
// typical in VPNs" (§5.1). This is a straightforward, constant-table
// software implementation (S-box + MixColumns over GF(2^8)); it is the
// CPU-intensive workload of the evaluation, so all we need is a correct,
// reasonably efficient cipher — not a vectorized one (the paper's numbers
// predate AES-NI).
#ifndef RB_CRYPTO_AES128_HPP_
#define RB_CRYPTO_AES128_HPP_

#include <array>
#include <cstddef>
#include <cstdint>

namespace rb {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(const uint8_t key[kKeySize]);

  // Encrypts/decrypts exactly one 16-byte block. in and out may alias.
  void EncryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const;
  void DecryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const;

 private:
  // Round keys: (kRounds + 1) * 16 bytes.
  std::array<uint8_t, (kRounds + 1) * kBlockSize> round_keys_;
};

}  // namespace rb

#endif  // RB_CRYPTO_AES128_HPP_
