#include "crypto/cbc.hpp"

#include <cstring>

#include "common/log.hpp"

namespace rb {

void AesCbc::Encrypt(uint8_t* data, size_t len, const uint8_t iv[Aes128::kBlockSize]) const {
  RB_CHECK(len % Aes128::kBlockSize == 0);
  uint8_t chain[Aes128::kBlockSize];
  memcpy(chain, iv, sizeof(chain));
  for (size_t off = 0; off < len; off += Aes128::kBlockSize) {
    for (size_t i = 0; i < Aes128::kBlockSize; ++i) {
      data[off + i] ^= chain[i];
    }
    cipher_.EncryptBlock(data + off, data + off);
    memcpy(chain, data + off, sizeof(chain));
  }
}

void AesCbc::Decrypt(uint8_t* data, size_t len, const uint8_t iv[Aes128::kBlockSize]) const {
  RB_CHECK(len % Aes128::kBlockSize == 0);
  uint8_t chain[Aes128::kBlockSize];
  uint8_t next_chain[Aes128::kBlockSize];
  memcpy(chain, iv, sizeof(chain));
  for (size_t off = 0; off < len; off += Aes128::kBlockSize) {
    memcpy(next_chain, data + off, sizeof(next_chain));
    cipher_.DecryptBlock(data + off, data + off);
    for (size_t i = 0; i < Aes128::kBlockSize; ++i) {
      data[off + i] ^= chain[i];
    }
    memcpy(chain, next_chain, sizeof(chain));
  }
}

size_t CbcPadLength(size_t len, bool esp_trailer) {
  size_t total = len + (esp_trailer ? 2 : 0);
  size_t rem = total % Aes128::kBlockSize;
  return rem == 0 ? 0 : Aes128::kBlockSize - rem;
}

}  // namespace rb
