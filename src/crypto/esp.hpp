// ESP-style IPsec tunnel encapsulation (RFC 4303 framing, AES-128-CBC).
//
// The paper's third application encrypts every packet "as is typical in
// VPNs" (§5.1). We implement tunnel-mode ESP: the original IP packet is
// wrapped in [new IP hdr][ESP hdr: SPI, seq][IV][ciphertext][pad, padlen,
// next-hdr]. Authentication (ICV) is not modeled — the paper benchmarks
// encryption only.
#ifndef RB_CRYPTO_ESP_HPP_
#define RB_CRYPTO_ESP_HPP_

#include <cstdint>

#include "crypto/cbc.hpp"
#include "packet/packet.hpp"

namespace rb {

struct EspConfig {
  uint8_t key[Aes128::kKeySize] = {0};
  uint32_t spi = 0x52420001;
  uint32_t tunnel_src = 0x0a000001;  // 10.0.0.1
  uint32_t tunnel_dst = 0x0a000002;  // 10.0.0.2
};

class EspTunnel {
 public:
  explicit EspTunnel(const EspConfig& config);

  // Encapsulates the Ethernet+IPv4 frame in place: strips Ethernet,
  // encrypts the IP packet into an ESP tunnel packet, re-adds Ethernet.
  // Returns false if the packet is not IPv4 or lacks head/tail room.
  bool Encapsulate(Packet* p);

  // Reverses Encapsulate. Returns false on malformed input (wrong SPI,
  // bad padding, truncated frame).
  bool Decapsulate(Packet* p);

  uint32_t next_seq() const { return seq_; }

  static constexpr uint32_t kEspHeaderBytes = 8;   // SPI + sequence
  static constexpr uint32_t kIvBytes = Aes128::kBlockSize;

 private:
  EspConfig config_;
  AesCbc cbc_;
  uint32_t seq_ = 1;
  uint64_t iv_counter_ = 0x5242000000000000ULL;
};

}  // namespace rb

#endif  // RB_CRYPTO_ESP_HPP_
