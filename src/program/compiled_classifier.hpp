// CompiledClassifier: a batch element that executes a MatchProgram over a
// whole burst and partitions it into per-output lanes — the runtime half
// of the compiled-packet-program layer (DESIGN.md §16).
//
// One element can stand in for a whole chain of interpreted classification
// elements (EtherClassifier -> IpProtoClassifier, CheckIPHeader, ...):
// Router::CompilePrograms builds the merged program and rewires the graph
// so upstream pushes land here and each program output lane forwards to
// the original chain's exit edge. Lane emission order is the interpreted
// chain's depth-first output order, so downstream elements see packets in
// exactly the sequence the interpreted graph would deliver.
//
// The element may also carry more program lanes than it has output ports
// (pattern-compiled classifiers put "no match" on the extra final lane);
// packets landing on a lane >= n_outputs() are dropped and counted.
#ifndef RB_PROGRAM_COMPILED_CLASSIFIER_HPP_
#define RB_PROGRAM_COMPILED_CLASSIFIER_HPP_

#include <string>
#include <vector>

#include "click/element.hpp"
#include "program/match_program.hpp"

namespace rb {

class CompiledClassifier : public BatchElement {
 public:
  // `collapsed` names the interpreted elements this one replaces (shown in
  // the config handler and rb_top); empty for a directly-configured
  // classifier. The program must already Validate().
  CompiledClassifier(program::MatchProgram prog, int n_element_outputs,
                     std::string collapsed = "");

  const char* class_name() const override { return "CompiledClassifier"; }
  void PushBatch(int port, PacketBatch& batch) override;
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  const program::MatchProgram& prog() const { return prog_; }
  const std::string& collapsed() const { return collapsed_; }
  uint64_t matches(int lane) const {
    return matches_[static_cast<size_t>(lane)].load(std::memory_order_relaxed);
  }

 private:
  // Counts the lane's matches and forwards (or drops, for lanes past the
  // element's ports) one partitioned batch.
  void EmitLane(int lane, PacketBatch& b);

  program::MatchProgram prog_;
  std::string collapsed_;
  std::vector<PacketBatch> lanes_;  // one-core-per-element scratch
  // Per-lane match counters: bumped once per batch by the owning core,
  // read live by the `.program` handler on the control thread.
  std::vector<std::atomic<uint64_t>> matches_;
};

}  // namespace rb

#endif  // RB_PROGRAM_COMPILED_CLASSIFIER_HPP_
