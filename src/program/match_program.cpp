#include "program/match_program.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "packet/headers.hpp"

namespace rb::program {

int MatchProgram::AddInsn(const MatchInsn& insn) {
  RB_CHECK_MSG(insns_.size() < 0x7fff, "MatchProgram too large for 16-bit jumps");
  RB_CHECK_MSG(insn.offset + 4u <= kMaxOffset, "match offset beyond packet-buffer slack");
  insns_.push_back(insn);
  switch (insn.op) {
    case MatchInsn::kLenGe:
      safe_length_ = std::max(safe_length_, insn.value);
      break;
    case MatchInsn::kMatch:
      safe_length_ = std::max(safe_length_, static_cast<uint32_t>(insn.extent));
      break;
    case MatchInsn::kIpHeaderOk:
    case MatchInsn::kEtherIpv4Ok:
      // The minimum length under which the op can say "yes"; the dynamic
      // IHL-dependent checks are part of the predicate itself.
      safe_length_ = std::max(safe_length_, insn.offset + Ipv4View::kMinSize);
      break;
  }
  return static_cast<int>(insns_.size()) - 1;
}

int MatchProgram::Fuse() {
  if (insns_.size() < 3) {
    return 0;
  }
  // Jump in-degrees: an interior insn of a fused triple must be reachable
  // only from its chain predecessor, or rewriting it away would strand
  // another path.
  std::vector<int> indeg(insns_.size(), 0);
  indeg[0]++;  // entry
  for (const MatchInsn& in : insns_) {
    for (int16_t t : {in.yes, in.no}) {
      if (t >= 0) {
        indeg[static_cast<size_t>(t)]++;
      }
    }
  }

  constexpr int kDropped = -1;
  std::vector<int> remap(insns_.size(), kDropped);
  std::vector<MatchInsn> out;
  int fused = 0;
  for (size_t i = 0; i < insns_.size(); ++i) {
    const MatchInsn& a = insns_[i];
    if (i + 2 < insns_.size()) {
      const MatchInsn& b = insns_[i + 1];
      const MatchInsn& c = insns_[i + 2];
      const uint32_t off = c.offset;  // IPv4 header base
      const bool shape =
          a.op == MatchInsn::kLenGe && b.op == MatchInsn::kMatch &&
          c.op == MatchInsn::kIpHeaderOk &&
          a.yes == static_cast<int16_t>(i + 1) && b.yes == static_cast<int16_t>(i + 2) &&
          a.no == b.no && b.no == c.no && off >= 2 &&
          a.value == off + Ipv4View::kMinSize && b.offset == off - 2 &&
          b.mask == 0xffff0000u &&
          b.value == static_cast<uint32_t>(EthernetView::kTypeIpv4) << 16 &&
          indeg[i + 1] == 1 && indeg[i + 2] == 1;
      if (shape) {
        remap[i] = static_cast<int>(out.size());
        out.push_back({MatchInsn::kEtherIpv4Ok, static_cast<uint16_t>(off), 0, 0, 0, c.yes, a.no});
        fused++;
        i += 2;  // b and c absorbed
        continue;
      }
    }
    remap[i] = static_cast<int>(out.size());
    out.push_back(a);
  }
  if (fused == 0) {
    return 0;
  }
  // Rebuild through AddInsn so safe_length is recomputed, rewriting the
  // surviving jump indices. Terminals pass through untouched.
  MatchProgram next;
  next.n_outputs_ = n_outputs_;
  next.output_everything_ = output_everything_;
  for (MatchInsn in : out) {
    for (int16_t* t : {&in.yes, &in.no}) {
      if (*t >= 0) {
        RB_CHECK_MSG(remap[static_cast<size_t>(*t)] != kDropped, "jump into fused interior");
        *t = static_cast<int16_t>(remap[static_cast<size_t>(*t)]);
      }
    }
    next.AddInsn(in);
  }
  *this = std::move(next);
  return fused;
}

bool MatchProgram::Validate(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) {
      *error = std::move(msg);
    }
    return false;
  };
  if (n_outputs_ <= 0) {
    return fail("program declares no outputs");
  }
  if (insns_.empty()) {
    if (output_everything_ < 0 || output_everything_ >= n_outputs_) {
      return fail("output_everything out of range");
    }
    return true;
  }
  for (size_t i = 0; i < insns_.size(); ++i) {
    for (int16_t target : {insns_[i].yes, insns_[i].no}) {
      if (target >= 0) {
        // Strictly forward: guarantees termination without a step budget.
        if (static_cast<size_t>(target) <= i || static_cast<size_t>(target) >= insns_.size()) {
          return fail(Format("insn %zu jumps to %d (not strictly forward)", i,
                             static_cast<int>(target)));
        }
      } else {
        int out = TerminalOutput(target);
        if (out >= n_outputs_) {
          return fail(Format("insn %zu exits lane %d of %d", i, out, n_outputs_));
        }
      }
    }
  }
  return true;
}

std::string MatchProgram::Listing() const {
  std::string out = Format("insns %zu safe_length %u outputs %d\n", insns_.size(),
                           safe_length_, n_outputs_);
  if (insns_.empty()) {
    out += Format("  (empty: all -> [%d])\n", output_everything_);
    return out;
  }
  auto branch = [](int16_t t) {
    if (t >= 0) {
      return Format("%d", static_cast<int>(t));
    }
    return Format("[%d]", TerminalOutput(t));
  };
  for (size_t i = 0; i < insns_.size(); ++i) {
    const MatchInsn& in = insns_[i];
    switch (in.op) {
      case MatchInsn::kLenGe:
        out += Format("  %zu: len >= %u", i, in.value);
        break;
      case MatchInsn::kMatch:
        out += Format("  %zu: %u/%08x%%%08x", i, in.offset, in.value, in.mask);
        break;
      case MatchInsn::kIpHeaderOk:
        out += Format("  %zu: ip_header_ok @%u", i, in.offset);
        break;
      case MatchInsn::kEtherIpv4Ok:
        out += Format("  %zu: ether_ipv4_ok @%u", i, in.offset);
        break;
    }
    out += Format(" yes->%s no->%s\n", branch(in.yes).c_str(), branch(in.no).c_str());
  }
  return out;
}

int MatchProgram::AppendRebased(const MatchProgram& other, const std::vector<int16_t>& map_terminal) {
  RB_CHECK_MSG(!other.insns_.empty(), "cannot append an empty program");
  const int base = static_cast<int>(insns_.size());
  for (const MatchInsn& in : other.insns_) {
    MatchInsn shifted = in;
    for (int16_t* target : {&shifted.yes, &shifted.no}) {
      if (*target >= 0) {
        *target = static_cast<int16_t>(*target + base);
      } else {
        int out = TerminalOutput(*target);
        RB_CHECK_MSG(static_cast<size_t>(out) < map_terminal.size(),
                     "terminal lane without a mapping");
        *target = map_terminal[static_cast<size_t>(out)];
      }
    }
    AddInsn(shifted);
  }
  return base;
}

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

// One "offset/value[%mask]" clause expanded to per-byte value/mask pairs.
struct Clause {
  uint32_t offset = 0;
  std::vector<uint8_t> value;
  std::vector<uint8_t> mask;
};

bool ParseClause(const std::string& text, Clause* out, std::string* error) {
  size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0) {
    *error = Format("clause '%s' lacks offset/value", text.c_str());
    return false;
  }
  char* end = nullptr;
  long off = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + slash || off < 0 ||
      static_cast<uint32_t>(off) >= MatchProgram::kMaxOffset) {
    *error = Format("clause '%s' has a bad offset", text.c_str());
    return false;
  }
  out->offset = static_cast<uint32_t>(off);
  std::string digits = text.substr(slash + 1);
  std::string mask_digits;
  size_t pct = digits.find('%');
  if (pct != std::string::npos) {
    mask_digits = digits.substr(pct + 1);
    digits = digits.substr(0, pct);
  }
  if (digits.empty() || digits.size() % 2 != 0 ||
      (!mask_digits.empty() && mask_digits.size() != digits.size())) {
    *error = Format("clause '%s' needs whole hex bytes (mask same width)", text.c_str());
    return false;
  }
  for (size_t i = 0; i < digits.size(); i += 2) {
    uint8_t v = 0;
    uint8_t m = 0;
    for (int half = 0; half < 2; ++half) {
      char c = digits[i + static_cast<size_t>(half)];
      int nib;
      int mnib = 0xf;
      if (c == '?') {
        nib = 0;
        mnib = 0;
      } else if ((nib = HexNibble(c)) < 0) {
        *error = Format("clause '%s' has a bad hex digit", text.c_str());
        return false;
      }
      if (!mask_digits.empty()) {
        int explicit_m = HexNibble(mask_digits[i + static_cast<size_t>(half)]);
        if (explicit_m < 0) {
          *error = Format("clause '%s' has a bad mask digit", text.c_str());
          return false;
        }
        mnib &= explicit_m;
      }
      v = static_cast<uint8_t>((v << 4) | (nib & mnib));
      m = static_cast<uint8_t>((m << 4) | mnib);
    }
    out->value.push_back(v);
    out->mask.push_back(m);
  }
  return true;
}

// Emits the kMatch windows for one pattern's clauses: yes chains to the
// next window (last one to `on_match`), no falls to `on_fail`. Returns the
// entry point of the emitted chain.
int16_t EmitPattern(const std::vector<Clause>& clauses, int16_t on_match, int16_t on_fail,
                    MatchProgram* prog) {
  // Gather (offset, value, mask) windows of up to 4 bytes per clause.
  struct Window {
    uint16_t offset;
    uint16_t extent;
    uint32_t mask;
    uint32_t value;
  };
  std::vector<Window> windows;
  for (const Clause& c : clauses) {
    for (size_t i = 0; i < c.value.size(); i += 4) {
      Window w{static_cast<uint16_t>(c.offset + i), 0, 0, 0};
      uint16_t last_significant = 0;
      for (size_t b = 0; b < 4 && i + b < c.value.size(); ++b) {
        w.value |= static_cast<uint32_t>(c.value[i + b]) << (24 - 8 * b);
        w.mask |= static_cast<uint32_t>(c.mask[i + b]) << (24 - 8 * b);
        if (c.mask[i + b] != 0) {
          last_significant = static_cast<uint16_t>(b + 1);
        }
      }
      if (w.mask == 0) {
        continue;  // fully wildcarded window matches trivially
      }
      w.extent = static_cast<uint16_t>(w.offset + last_significant);
      windows.push_back(w);
    }
  }
  if (windows.empty()) {
    return on_match;  // "-" or all-wildcard pattern
  }
  // Emit in order; each window's `yes` points at the next emitted insn.
  int16_t entry = static_cast<int16_t>(prog->size());
  for (size_t i = 0; i < windows.size(); ++i) {
    const Window& w = windows[i];
    MatchInsn in;
    in.op = MatchInsn::kMatch;
    in.offset = w.offset;
    in.extent = w.extent;
    in.mask = w.mask;
    in.value = w.value;
    in.yes = i + 1 < windows.size() ? static_cast<int16_t>(prog->size() + 1) : on_match;
    in.no = on_fail;
    prog->AddInsn(in);
  }
  return entry;
}

}  // namespace

bool CompileClassifierPatterns(const std::vector<std::string>& patterns, MatchProgram* out,
                               std::string* error) {
  if (patterns.empty()) {
    *error = "no patterns";
    return false;
  }
  const int n_out = static_cast<int>(patterns.size());
  out->set_n_outputs(n_out + 1);  // final lane: no match
  // Parse every pattern up front so errors surface before emission.
  std::vector<std::vector<Clause>> parsed;
  for (const std::string& pattern : patterns) {
    std::vector<Clause> clauses;
    for (const std::string& tok : Split(pattern, ' ')) {
      if (tok.empty() || tok == "-") {
        continue;
      }
      Clause c;
      if (!ParseClause(tok, &c, error)) {
        return false;
      }
      clauses.push_back(std::move(c));
    }
    parsed.push_back(std::move(clauses));
  }
  // A "-" (all-wildcard) pattern matches everything, so patterns after it
  // are unreachable: emission stops there. First match wins, like Click.
  size_t n_emit = parsed.size();
  // Measure each pattern's window count (dry emit into scratch) so entry
  // offsets are known before the real emission.
  std::vector<size_t> sizes(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    MatchProgram scratch;
    scratch.set_n_outputs(n_out + 1);
    EmitPattern(parsed[i], MatchProgram::Terminal(0), MatchProgram::Terminal(0), &scratch);
    sizes[i] = scratch.size();
  }
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (sizes[i] == 0) {
      n_emit = i;  // match-all: everything from here is unreachable
      break;
    }
  }
  if (n_emit == 0) {
    // First pattern is "-": the empty program sends everything to lane 0.
    out->set_output_everything(0);
    return out->Validate(error);
  }
  // entry[i]: where pattern i's chain begins — an insn index for emitted
  // patterns, a terminal for the lane past the last emitted one (either
  // the match-all pattern's lane or the no-match lane).
  std::vector<int16_t> entry(n_emit + 1);
  size_t at = 0;
  for (size_t i = 0; i < n_emit; ++i) {
    entry[i] = static_cast<int16_t>(at);
    at += sizes[i];
  }
  entry[n_emit] = n_emit < parsed.size() ? MatchProgram::Terminal(static_cast<int>(n_emit))
                                         : MatchProgram::Terminal(n_out);
  for (size_t i = 0; i < n_emit; ++i) {
    EmitPattern(parsed[i], MatchProgram::Terminal(static_cast<int>(i)), entry[i + 1], out);
  }
  return out->Validate(error);
}

}  // namespace rb::program
