// MatchProgram: a flat, branch-predictable classification IR — the rb
// analogue of Click's Classifier instruction program and the
// click-fastclassifier specializer (SNIPPETS.md).
//
// A program is an array of instructions {op, offset, mask, value, yes,
// no}. Execution starts at instruction 0; `yes`/`no` are either the index
// of the next instruction (>= 0) or a terminal encoding an output lane
// (< 0, Click-style: -(output + 1)). Three ops cover everything the
// interpreted classification elements do:
//
//   kLenGe      frame length >= value
//   kMatch      (LoadBe32(data + offset) & mask) == value
//   kIpHeaderOk full IPv4 header validation (version/IHL/lengths/checksum)
//               for the header starting at `offset` — the one check a pure
//               offset/mask/value window cannot express (dynamic IHL,
//               checksum), kept as a super-op so CheckIPHeader compiles to
//               the byte-identical predicate it interprets.
//
// `safe_length` is the hoisted prefix check: the maximum frame length any
// instruction can require or read. A packet at least that long takes the
// fast path — every kLenGe is skipped (trivially true) and every kMatch
// window is known in range. Shorter packets take the checked path, where
// a kMatch whose window extends past the frame fails (Click's semantics
// for short packets).
//
// Memory-safety note: kMatch always loads a 4-byte window. The window may
// extend past length() when the trailing mask bytes are zero (e.g. the
// EtherType match at offset 12 on a 14-byte frame reads bytes 12..15);
// those bytes are masked off, so the result is deterministic, and Packet
// buffers carry >= 64 bytes of slack beyond any classifier offset
// (packet.hpp: 2048-byte buffers, offsets bounded by kMaxOffset below).
#ifndef RB_PROGRAM_MATCH_PROGRAM_HPP_
#define RB_PROGRAM_MATCH_PROGRAM_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "packet/headers.hpp"

namespace rb::program {

struct MatchInsn {
  enum Op : uint8_t {
    kLenGe = 0,       // length >= value
    kMatch = 1,       // (LoadBe32(data + offset) & mask) == value
    kIpHeaderOk = 2,  // IPv4 header at `offset` fully valid
    // Fused superinstruction (produced by Fuse(), never emitted by the
    // element compilers directly): length gate + EtherType-is-IPv4 test +
    // full IPv4 validation at `offset`, i.e. the whole CheckIPHeader
    // predicate in one dispatch. Interpreting the three-insn form costs a
    // dispatch per insn per packet — more than the interpreted element it
    // replaces — so the peephole collapses the common triple.
    kEtherIpv4Ok = 3
  };

  Op op = kMatch;
  uint16_t offset = 0;  // byte offset into the frame (kMatch, kIpHeaderOk)
  uint16_t extent = 0;  // offset + last significant byte + 1 (checked path)
  uint32_t mask = 0;    // kMatch
  uint32_t value = 0;   // kMatch: expected masked window; kLenGe: length
  int16_t yes = 0;      // next insn index, or terminal (< 0)
  int16_t no = 0;

  bool operator==(const MatchInsn&) const = default;
};

class MatchProgram {
 public:
  // Largest frame offset an instruction may touch: keeps every 4-byte
  // window (and the 60-byte max IPv4 header) well inside the packet
  // buffer's guaranteed slack.
  static constexpr uint32_t kMaxOffset = 256;

  // Terminal encoding (Click-style): output o <-> jump target -(o + 1).
  static constexpr int16_t Terminal(int output) { return static_cast<int16_t>(-(output + 1)); }
  static constexpr int TerminalOutput(int16_t t) { return -static_cast<int>(t) - 1; }

  MatchProgram() = default;

  // Appends an instruction; returns its index. RB_CHECKs the offsets are
  // within kMaxOffset (build-time, never on the data path).
  int AddInsn(const MatchInsn& insn);

  // Declares the number of output lanes. Every terminal must land in
  // [0, n_outputs).
  void set_n_outputs(int n) { n_outputs_ = n; }
  int n_outputs() const { return n_outputs_; }

  // For the empty program: every packet exits this lane.
  void set_output_everything(int out) { output_everything_ = out; }
  int output_everything() const { return output_everything_; }

  bool empty() const { return insns_.empty(); }
  size_t size() const { return insns_.size(); }
  const MatchInsn& insn(size_t i) const { return insns_[i]; }
  const std::vector<MatchInsn>& insns() const { return insns_; }

  uint32_t safe_length() const { return safe_length_; }

  // Validates the program: instruction targets in range, terminals within
  // n_outputs, no cycles possible (every jump must move strictly forward).
  // Returns false and fills `error` on violation. Run once at build time;
  // Execute assumes a validated program.
  bool Validate(std::string* error) const;

  // Classifies one frame; returns the output lane. Hot path: one indirect-
  // free loop over the flat array, no virtual calls, no allocation.
  // Defined inline below so CompiledClassifier's per-packet loop can fold
  // it in — an out-of-line call per packet costs more than the interpreted
  // elements it replaces on short chains.
  int Execute(const uint8_t* data, uint32_t length) const;

  // Human-readable disassembly (one insn per line), for the `.program`
  // read handler and tests.
  std::string Listing() const;

  // Peephole pass: rewrites each kLenGe -> kMatch(EtherType IPv4) ->
  // kIpHeaderOk triple whose three failure edges agree (and whose interior
  // insns have no other predecessors) into a single kEtherIpv4Ok
  // superinstruction. Returns the number of triples fused. Run by
  // Router::CompilePrograms after chain merging; behavior-preserving for
  // every frame length and byte pattern.
  int Fuse();

  // Appends `other`'s instructions, shifting its internal jumps by this
  // program's current size. Terminals of `other` are rewritten through
  // `map_terminal`: for terminal output o, map_terminal[o] is the new
  // yes/no field verbatim (either a jump index into the combined program
  // or a new terminal). Returns the index where `other`'s entry landed.
  int AppendRebased(const MatchProgram& other, const std::vector<int16_t>& map_terminal);

 private:
  std::vector<MatchInsn> insns_;
  uint32_t safe_length_ = 0;
  int n_outputs_ = 0;
  int output_everything_ = 0;
};

// Compiles Click classifier pattern strings into a program: one pattern
// per output lane, first match wins, no match -> the extra final lane
// (patterns.size(), conventionally a drop).
//
// Pattern syntax (the Click subset we support):
//   "offset/hexvalue"            e.g. "12/0800"
//   "offset/hexvalue%hexmask"    explicit mask
//   "?" hex digits are wildcards e.g. "33/02?1"
//   clauses separated by spaces  e.g. "12/0800 23/06"
//   "-"                          match every packet
//
// On success the program has patterns.size() + 1 outputs and returns
// true; on a malformed pattern returns false with `error` set.
bool CompileClassifierPatterns(const std::vector<std::string>& patterns, MatchProgram* out,
                               std::string* error);

namespace detail {

// The kIpHeaderOk predicate: byte-identical to CheckIpHeader's HeaderOk
// minus the EtherType test (which precedes it as a kMatch insn). `off` is
// the IPv4 header base (14 for plain Ethernet).
inline bool IpHeaderOkAt(const uint8_t* data, uint32_t length, uint32_t off) {
  if (length < off + Ipv4View::kMinSize) {
    return false;
  }
  Ipv4View ip{const_cast<uint8_t*>(data) + off};
  return ip.version() == 4 && ip.ihl() >= 5 && ip.total_length() >= ip.header_length() &&
         ip.total_length() <= length - off && length >= off + ip.header_length() &&
         ip.ChecksumOk();
}

// The kEtherIpv4Ok predicate: the fused CheckIPHeader check. `off` is the
// IPv4 header base; the 2-byte EtherType immediately precedes it. The
// length gate runs first, so the EtherType window (inside the packet
// buffer's guaranteed slack for any frame) is only trusted on frames long
// enough to carry it.
inline bool EtherIpv4OkAt(const uint8_t* data, uint32_t length, uint32_t off) {
  if (length < off + Ipv4View::kMinSize) {
    return false;
  }
  if ((LoadBe32(data + off - 4) & 0xffffu) != EthernetView::kTypeIpv4) {
    return false;
  }
  return IpHeaderOkAt(data, length, off);
}

}  // namespace detail

inline int MatchProgram::Execute(const uint8_t* data, uint32_t length) const {
  if (insns_.empty()) {
    return output_everything_;
  }
  // Hoisted prefix check: at or above safe_length every kLenGe is true and
  // every kMatch window is in range, so the common case runs mask/compare
  // steps only.
  const bool fast = length >= safe_length_;
  const MatchInsn* insns = insns_.data();
  int16_t pc = 0;
  do {
    const MatchInsn& in = insns[pc];
    bool yes;
    switch (in.op) {
      case MatchInsn::kLenGe:
        yes = fast || length >= in.value;
        break;
      case MatchInsn::kMatch:
        if (!fast && in.extent > length) {
          yes = false;  // window out of range: short packets fail the match
          break;
        }
        yes = (LoadBe32(data + in.offset) & in.mask) == in.value;
        break;
      case MatchInsn::kIpHeaderOk:
        yes = detail::IpHeaderOkAt(data, length, in.offset);
        break;
      case MatchInsn::kEtherIpv4Ok:
      default:
        yes = detail::EtherIpv4OkAt(data, length, in.offset);
        break;
    }
    pc = yes ? in.yes : in.no;
  } while (pc >= 0);
  return TerminalOutput(pc);
}

}  // namespace rb::program

#endif  // RB_PROGRAM_MATCH_PROGRAM_HPP_
