#include "program/compiled_classifier.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

namespace rb {

CompiledClassifier::CompiledClassifier(program::MatchProgram prog, int n_element_outputs,
                                       std::string collapsed)
    : BatchElement(1, n_element_outputs),
      prog_(std::move(prog)),
      collapsed_(std::move(collapsed)),
      lanes_(static_cast<size_t>(prog_.n_outputs())),
      matches_(static_cast<size_t>(prog_.n_outputs())) {
  RB_CHECK_MSG(prog_.n_outputs() >= n_element_outputs,
               "program must cover every element output");
  std::string err;
  RB_CHECK_MSG(prog_.Validate(&err), "invalid match program");
}

namespace {

// One instruction evaluated outside the interpreter loop. The kMatch
// window test folds the program-wide safe_length gate: for a single-insn
// program safe_length == extent, so `length >= extent` is exactly
// Execute's fast/checked split.
inline bool EvalInsn(const program::MatchInsn& in, const uint8_t* data, uint32_t length) {
  using program::MatchInsn;
  switch (in.op) {
    case MatchInsn::kLenGe:
      return length >= in.value;
    case MatchInsn::kMatch:
      return length >= in.extent && (LoadBe32(data + in.offset) & in.mask) == in.value;
    case MatchInsn::kIpHeaderOk:
      return program::detail::IpHeaderOkAt(data, length, in.offset);
    case MatchInsn::kEtherIpv4Ok:
    default:
      return program::detail::EtherIpv4OkAt(data, length, in.offset);
  }
}

}  // namespace

void CompiledClassifier::EmitLane(int lane, PacketBatch& b) {
  matches_[static_cast<size_t>(lane)].fetch_add(b.size(), std::memory_order_relaxed);
  if (lane < n_outputs()) {
    OutputBatch(lane, b);
  } else {
    DropBatch(b);  // lanes past the element's ports (pattern no-match)
  }
}

void CompiledClassifier::PushBatch(int /*port*/, PacketBatch& batch) {
  const uint32_t n = batch.size();
  if (prog_.size() == 1) {
    // Single-insn programs — the fused CheckIPHeader, i.e. every chain the
    // production graphs compile — skip the interpreter: the insn sits in
    // registers and packets split into two local lanes, the exact loop
    // shape of the interpreted element this replaces. The generic path
    // below measures ~5 cycles/packet slower on this case (insn load +
    // dispatch + indexed lane store per packet).
    const program::MatchInsn in = prog_.insn(0);
    const int yes_lane = program::MatchProgram::TerminalOutput(in.yes);
    const int no_lane = program::MatchProgram::TerminalOutput(in.no);
    if (yes_lane == no_lane) {
      EmitLane(yes_lane, batch);  // degenerate: nothing to classify
      return;
    }
    PacketBatch yes_b;
    PacketBatch no_b;
    for (uint32_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        // The program reads the first cache lines of the frame; pull the
        // next packet's while this one classifies.
        PrefetchPacketHeaders(batch[i + 1]);
      }
      Packet* p = batch[i];
      (EvalInsn(in, p->data(), p->length()) ? yes_b : no_b).PushBack(p);
    }
    batch.Clear();
    // Ascending lane order, matching the generic emission loop.
    if (yes_lane < no_lane) {
      EmitLane(yes_lane, yes_b);
      EmitLane(no_lane, no_b);
    } else {
      EmitLane(no_lane, no_b);
      EmitLane(yes_lane, yes_b);
    }
    return;
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    const int lane = prog_.Execute(p->data(), p->length());
    lanes_[static_cast<size_t>(lane)].PushBack(p);
  }
  batch.Clear();
  for (int lane = 0; lane < prog_.n_outputs(); ++lane) {
    EmitLane(lane, lanes_[static_cast<size_t>(lane)]);
  }
}

void CompiledClassifier::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  handlers->AddRead(name() + ".program", [this] {
    std::string out;
    if (!collapsed_.empty()) {
      out += Format("collapsed %s\n", collapsed_.c_str());
    }
    out += prog_.Listing();
    for (size_t lane = 0; lane < matches_.size(); ++lane) {
      out += Format("  [%zu] matched %llu%s\n", lane,
                    static_cast<unsigned long long>(matches(static_cast<int>(lane))),
                    static_cast<int>(lane) >= n_outputs() ? " (drop)" : "");
    }
    return out;
  });
}

}  // namespace rb
