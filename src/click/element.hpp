// The Click-style element abstraction (Kohler et al., TOCS 2000), rebuilt
// for RouteBricks' needs (§4.1 "Linux with Click in polling mode").
//
// An Element is a packet-processing stage with numbered input and output
// ports. Packets move through the graph by *push* (upstream calls
// Push(port, p) downstream) or *pull* (downstream asks upstream for a
// packet, typically ToDevice pulling from a Queue). Elements that need CPU
// time outside of packet handoff (FromDevice polling a NIC queue,
// ToDevice draining one) register a Task with the router's scheduler; the
// RouteBricks rule that every queue and every packet is handled by a
// single core is enforced by statically assigning tasks to cores
// (scheduler.hpp).
//
// Ownership: a pushed packet belongs to the callee; an element that drops
// a packet returns it to its pool via PacketPool::Release.
#ifndef RB_CLICK_ELEMENT_HPP_
#define RB_CLICK_ELEMENT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "packet/packet.hpp"
#include "packet/pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace rb {

class Router;

class Element {
 public:
  Element(int n_inputs, int n_outputs);
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  virtual const char* class_name() const = 0;

  // Push processing: receives a packet on input `port`. Default: drop.
  virtual void Push(int port, Packet* p);

  // Pull processing: downstream requests a packet from output `port`.
  // Default: pulls from input 0 (pass-through) or returns nullptr.
  virtual Packet* Pull(int port);

  // Called once by Router::Initialize after the graph is wired.
  virtual void Initialize(Router* router);

  int n_inputs() const { return static_cast<int>(inputs_.size()); }
  int n_outputs() const { return static_cast<int>(outputs_.size()); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) {
    name_ = std::move(n);
    // Interned eagerly (setup time) so profiled hot paths carry a 32-bit
    // id; the table is process-global and cheap even when unprofiled.
    prof_scope_ = telemetry::InternScopeName(name_);
  }

  // Cycle-accounting scope for this element (profiler.hpp); follows the
  // element's name.
  telemetry::ScopeId profile_scope() const { return prof_scope_; }

  uint64_t drops() const { return drops_; }

  // Attaches this element to a metric registry (per-element packets-out /
  // drop counters under "<prefix>elem/<name>/") and optionally a path
  // tracer that records a hop at every push handoff. Call after the name
  // is final and before traffic flows; when never called, the hot path
  // pays only null-pointer tests. Overrides must call the base to get the
  // standard counters, then may register element-specific metrics.
  virtual void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                             const std::string& prefix = "");

 protected:
  // Sends `p` out of output `port` (push). If the port is unconnected the
  // packet is dropped and counted.
  void Output(int port, Packet* p);

  // Pulls a packet from whatever is connected to input `port` (pull path).
  Packet* Input(int port);

  void Drop(Packet* p);

  // Credits `n` packets to this element's packets_out counter. Output()
  // does this automatically; sink elements (no downstream push) call it
  // when they consume a packet, e.g. ToDevice on transmit.
  void CountPacketsOut(uint64_t n) {
    if (tele_packets_ != nullptr) {
      tele_packets_->Add(n);
    }
  }

  telemetry::PathTracer* tracer() const { return tracer_; }

 private:
  friend class Router;

  struct PortRef {
    Element* element = nullptr;
    int port = -1;
    bool connected() const { return element != nullptr; }
  };

  std::vector<PortRef> inputs_;   // upstream peers (for pull)
  std::vector<PortRef> outputs_;  // downstream peers (for push)
  std::string name_;
  telemetry::ScopeId prof_scope_ = telemetry::kInvalidScope;
  uint64_t drops_ = 0;

  // Telemetry bindings; null when telemetry is unbound or disabled.
  telemetry::Counter* tele_packets_ = nullptr;
  telemetry::Counter* tele_drops_ = nullptr;
  telemetry::PathTracer* tracer_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENT_HPP_
