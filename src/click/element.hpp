// The Click-style element abstraction (Kohler et al., TOCS 2000), rebuilt
// for RouteBricks' needs (§4.1 "Linux with Click in polling mode").
//
// An Element is a packet-processing stage with numbered input and output
// ports. Packets move through the graph by *push* (upstream calls
// downstream) or *pull* (downstream asks upstream for packets, typically
// ToDevice pulling from a Queue). Elements that need CPU time outside of
// packet handoff (FromDevice polling a NIC queue, ToDevice draining one)
// register a Task with the router's scheduler; the RouteBricks rule that
// every queue and every packet is handled by a single core is enforced by
// statically assigning tasks to cores (scheduler.hpp).
//
// Dataflow is batch-native (FastClick-style): the primary handoff is
// PushBatch/PullBatch moving a whole PacketBatch per virtual call, so the
// driver's kp-packet poll burst traverses the graph without being
// serialized back into per-packet calls. Per-packet Push/Pull remain as a
// compatibility surface: a legacy element that only overrides Push keeps
// working (the base PushBatch loops over it), and a batch-native element
// fed by a legacy upstream receives one-packet batches (BatchElement
// wraps). See DESIGN.md §11 for the API and ownership rules.
//
// Ownership: a pushed packet (or batch of packets) belongs to the callee;
// an element that drops packets returns them to their pool via
// PacketPool::Release / PacketBatch::ReleaseAll. A PushBatch callee must
// leave the batch empty on return.
#ifndef RB_CLICK_ELEMENT_HPP_
#define RB_CLICK_ELEMENT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include <atomic>

#include "packet/batch.hpp"
#include "packet/packet.hpp"
#include "packet/pool.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace rb {

namespace program {
class MatchProgram;
}  // namespace program

class Router;

class Element {
 public:
  Element(int n_inputs, int n_outputs);
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  virtual const char* class_name() const = 0;

  // --- per-packet compatibility API ---

  // Push processing: receives a packet on input `port`. Default: drop.
  virtual void Push(int port, Packet* p);

  // Pull processing: downstream requests a packet from output `port`.
  // Default: pulls from input 0 (pass-through) or returns nullptr.
  virtual Packet* Pull(int port);

  // --- batch-native primary API ---

  // Receives a whole batch on input `port`, taking ownership of every
  // packet in it; must leave `batch` empty on return. Default: per-packet
  // fallback — drains the batch through virtual Push(port, p), which keeps
  // unported (legacy) elements working when fed by a batch-native
  // upstream.
  virtual void PushBatch(int port, PacketBatch& batch);

  // Downstream requests up to `max` packets from output `port`, appended
  // to `out`. Returns the number appended; the caller owns them. Default:
  // per-packet fallback — loops virtual Pull(port).
  virtual size_t PullBatch(int port, PacketBatch* out, int max);

  // True when this element's hot path handles whole batches in one
  // virtual call (i.e. it is not relying on the per-packet fallback).
  // The graph-walk test asserts this for every element in the standard
  // router graphs.
  virtual bool batch_native() const { return false; }

  // --- backpressure ---

  // How many more pushed packets this element can absorb before it starts
  // dropping. SIZE_MAX = unbounded (the default for pass-through
  // elements). A watermarked Queue reports 0 while blocked (high watermark
  // crossed, low watermark not yet reached on the pull side); pollers like
  // FromDevice shrink their burst to the minimum headroom over the queues
  // they feed. Must be safe to call from the pushing core while the
  // pulling core drains (single-writer per side, like the ring itself).
  virtual size_t PushHeadroom() const { return SIZE_MAX; }

  // True for elements that terminate a push path (the push-to-pull
  // boundary, i.e. queues). Router::DownstreamBlockers stops its graph
  // walk at boundaries and returns them as the backpressure points.
  virtual bool backpressure_boundary() const { return false; }

  // Called once by Router::Initialize after the graph is wired.
  virtual void Initialize(Router* router);

  // Compiled-packet-program hook (DESIGN.md §16): a pure classification
  // element — one whose processing is a read-only match that partitions
  // the input onto its outputs — fills `out` with the equivalent
  // MatchProgram (one program lane per output port) and returns true.
  // Router::CompilePrograms collapses chains of such elements into a
  // single CompiledClassifier. Default: not compilable.
  virtual bool CompileMatch(program::MatchProgram* out) const;

  int n_inputs() const { return static_cast<int>(inputs_.size()); }
  int n_outputs() const { return static_cast<int>(outputs_.size()); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) {
    name_ = std::move(n);
    // Interned eagerly (setup time) so profiled hot paths carry a 32-bit
    // id; the table is process-global and cheap even when unprofiled. The
    // drop point is interned here too, so tracing a dropped packet never
    // builds a "<name>/drop" string on the data path.
    prof_scope_ = telemetry::InternScopeName(name_);
    drop_scope_ = telemetry::InternScopeName(name_ + "/drop");
  }

  // Cycle-accounting scope for this element (profiler.hpp); follows the
  // element's name.
  telemetry::ScopeId profile_scope() const { return prof_scope_; }

  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }

  // Attaches this element to a metric registry (per-element packets-out /
  // drop counters and a batch-size histogram under "<prefix>elem/<name>/")
  // and optionally a path tracer that records a hop at every push handoff.
  // Call after the name is final and before traffic flows; when never
  // called, the hot path pays only null-pointer tests. Overrides must call
  // the base to get the standard counters, then may register
  // element-specific metrics.
  virtual void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                             const std::string& prefix = "");

  // Registers this element's live-introspection handlers (DESIGN.md §13)
  // under "<element-name>.<handler>". The base exports `config`, `counts`
  // (packets out — live when telemetry is bound, else 0), `drops`, and
  // `batch_size`; overrides call the base, then add element-specific or
  // writable handlers (Queue: occupancy/hi/lo/aqm/codel_*). Handler
  // bodies may run on a control thread while traffic flows, so they must
  // only touch atomics and registry metrics. `this` must outlive the
  // registry's use (the Router owns both lifetimes in practice).
  virtual void AddHandlers(telemetry::HandlerRegistry* handlers);

 protected:
  // Sends `p` out of output `port` (per-packet push). If the port is
  // unconnected the packet is dropped and counted.
  void Output(int port, Packet* p);

  // Sends a whole batch out of output `port` in one downstream PushBatch
  // call: telemetry counters and the profiler handoff scope are paid once
  // per batch, tracer hops are recorded per packet. `batch` is empty on
  // return (consumed downstream, or dropped if the port is unconnected).
  void OutputBatch(int port, PacketBatch& batch);

  // Pulls a packet from whatever is connected to input `port` (pull path).
  Packet* Input(int port);

  // Pulls up to `max` packets from input `port` into `out` in one upstream
  // PullBatch call. Returns the number appended.
  size_t InputBatch(int port, PacketBatch* out, int max);

  void Drop(Packet* p);

  // Drops every packet in `batch` (counted per packet, traced per packet,
  // released to their pools exactly once); empties the batch.
  void DropBatch(PacketBatch& batch);

  // Credits `n` packets to this element's packets_out counter. Output()
  // does this automatically; sink elements (no downstream push) call it
  // when they consume a packet, e.g. ToDevice on transmit.
  void CountPacketsOut(uint64_t n) {
    if (tele_packets_ != nullptr) {
      tele_packets_->Add(n);
    }
  }

  telemetry::PathTracer* tracer() const { return tracer_; }

 private:
  friend class Router;

  struct PortRef {
    Element* element = nullptr;
    int port = -1;
    bool connected() const { return element != nullptr; }
  };

  std::vector<PortRef> inputs_;   // upstream peers (for pull)
  std::vector<PortRef> outputs_;  // downstream peers (for push)
  std::string name_;
  telemetry::ScopeId prof_scope_ = telemetry::kInvalidScope;
  telemetry::ScopeId drop_scope_ = telemetry::kInvalidScope;
  // Relaxed atomic: bumped on the (rare) drop path by the owning core,
  // read live by control-socket handlers.
  std::atomic<uint64_t> drops_{0};

  // Telemetry bindings; null when telemetry is unbound or disabled.
  telemetry::Counter* tele_packets_ = nullptr;
  telemetry::Counter* tele_drops_ = nullptr;
  telemetry::ShardedHistogram* tele_batch_ = nullptr;
  // Shared "lat/drop" ingress-to-drop latency histogram (every element
  // resolves the same registry entry), so dropped packets still land in
  // the measured latency plane instead of silently vanishing from it.
  telemetry::LatencyHistogram* tele_lat_drop_ = nullptr;
  double ns_per_cycle_ = 0;
  telemetry::PathTracer* tracer_ = nullptr;
};

// Base class for batch-native elements: the element implements PushBatch
// as its one processing routine, and per-packet Push (the legacy-upstream
// interop path) wraps the packet into a one-element batch. PushBatch's
// default mirrors Element::Push's default (drop), so a subclass that
// forgets to override it degrades to the old drop semantics instead of
// recursing.
class BatchElement : public Element {
 public:
  using Element::Element;

  bool batch_native() const final { return true; }

  // Interop with legacy per-packet upstreams: one-packet batch.
  void Push(int port, Packet* p) final {
    PacketBatch b;
    b.PushBack(p);
    PushBatch(port, b);
  }

  // Default: drop the whole batch (the batch analogue of Element::Push's
  // default). Every concrete batch element overrides this.
  void PushBatch(int port, PacketBatch& batch) override;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENT_HPP_
