// The element graph: owns elements, wires ports, validates the
// configuration, and collects the tasks elements register.
#ifndef RB_CLICK_ROUTER_HPP_
#define RB_CLICK_ROUTER_HPP_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "click/element.hpp"
#include "click/task.hpp"

namespace rb {

class Router {
 public:
  Router() = default;

  // Constructs an element in place, returns a borrowed pointer (the router
  // owns it). Usage: auto* q = router.Add<QueueElement>(1024);
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto elem = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = elem.get();
    raw->set_name(Format_("%s@%zu", raw->class_name(), elements_.size()));
    elements_.push_back(std::move(elem));
    return raw;
  }

  // Connects `from`'s output port to `to`'s input port. A port can be
  // wired at most once (Click's single-wire rule).
  void Connect(Element* from, int out_port, Element* to, int in_port);

  // True if the connection would be legal (ports in range and unwired).
  // Used by the config parser to report errors instead of aborting.
  bool CanConnect(Element* from, int out_port, Element* to, int in_port) const;

  // Convenience: connect port 0 -> port 0 along a chain.
  void Chain(std::initializer_list<Element*> elements);

  // Binds every element (and every task registered from now on) to the
  // registry/tracer. Call after the graph is built and before
  // Initialize(), so tasks registered during element initialization are
  // covered. Metric names: "<prefix>elem/<name>/..." and
  // "<prefix>task/<element-name>/...". No-op when telemetry is disabled.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "");

  telemetry::MetricRegistry* telemetry_registry() const { return tele_registry_; }
  telemetry::PathTracer* tracer() const { return tele_tracer_; }

  // Registers every element's handlers plus router-level reads
  // (`router.elements`, `router.tasks`) with the control-plane registry
  // (DESIGN.md §13). Call after the graph is built; the router and its
  // elements must outlive `handlers`.
  void AddHandlers(telemetry::HandlerRegistry* handlers);

  // Registers a task (called by elements during Initialize).
  void RegisterTask(std::unique_ptr<Task> task);

  // Compiled-packet-programs pass (DESIGN.md §16): finds maximal chains of
  // adjacent classification elements that expose a MatchProgram through
  // Element::CompileMatch (EtherClassifier, IpProtoClassifier,
  // CheckIPHeader, ...), merges their programs into one flat instruction
  // array, and replaces each chain with a single CompiledClassifier wired
  // to the chain's original entry and exit edges. Exit lanes are ordered
  // by the interpreted chain's depth-first output order, so downstream
  // elements receive packets in exactly the interpreted sequence. The
  // collapsed originals stay owned by the router but are detached from the
  // graph. Call after the graph is built, before BindTelemetry/Initialize.
  // Returns the number of CompiledClassifier elements created.
  int CompilePrograms();

  // Validates wiring (port indices sane, no double wiring — enforced at
  // Connect time) and calls Initialize on every element in insertion
  // order. Must be called exactly once before running.
  void Initialize();

  // Runs every task once, in registration order; returns packets moved.
  // This is the deterministic single-threaded driver used by tests and by
  // experiments where thread interleaving must not affect results.
  size_t RunTasksOnce();

  // Runs tasks until an entire sweep moves no packets, or `max_sweeps` is
  // reached. Returns total packets moved.
  size_t RunUntilIdle(size_t max_sweeps = 1'000'000);

  // Backpressure discovery: every push-to-pull boundary element (queue)
  // reachable from `root` by following push edges, stopping at each
  // boundary (what lies beyond it is the pull side, another core's
  // problem). Pollers call this once at Initialize time and consult the
  // cached boundaries' PushHeadroom() per poll.
  std::vector<Element*> DownstreamBlockers(Element* root) const;

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }
  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }
  bool initialized() const { return initialized_; }

 private:
  static std::string Format_(const char* fmt, const char* a, size_t b);
  void BindTask_(Task* task);

  std::vector<std::unique_ptr<Element>> elements_;
  std::vector<std::unique_ptr<Task>> tasks_;
  bool initialized_ = false;

  telemetry::MetricRegistry* tele_registry_ = nullptr;
  telemetry::PathTracer* tele_tracer_ = nullptr;
  std::string tele_prefix_;
};

}  // namespace rb

#endif  // RB_CLICK_ROUTER_HPP_
