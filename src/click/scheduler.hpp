// Static thread-to-core task scheduling (§4.2).
//
// RouteBricks' first rule — each network queue is accessed by a single
// core — is enforced structurally: every FromDevice/ToDevice task is bound
// to exactly one worker, and workers never steal tasks. The ThreadScheduler
// spawns one std::thread per "core", runs each worker's tasks round-robin
// in a polling loop (no blocking — Click polling mode), and stops on
// request.
//
// On the single-vCPU container all workers timeshare one physical CPU, so
// wall-clock throughput is not meaningful — but the concurrency behaviour
// (SPSC ring handoff, per-queue single-writer discipline) is real and is
// what the functional tests exercise.
#ifndef RB_CLICK_SCHEDULER_HPP_
#define RB_CLICK_SCHEDULER_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "click/router.hpp"

namespace rb {

class ThreadScheduler {
 public:
  // Distributes the router's tasks across `num_cores` workers: tasks with
  // home_core >= 0 go to (home_core % num_cores); the rest round-robin.
  ThreadScheduler(Router* router, int num_cores);

  // Spawns the workers. Each runs its task list in a tight polling loop.
  void Start();

  // Signals stop and joins all workers.
  void Stop();

  // Runs all workers' tasks inline (no threads) for `sweeps` rounds —
  // deterministic mode with the same task partitioning.
  void RunInline(size_t sweeps);

  // Telemetry sampler hook: `fn` runs on worker 0 every `every_sweeps`
  // polling sweeps (and at matching strides in RunInline), e.g. to probe
  // queue depths into gauges or snapshot the registry periodically. `fn`
  // runs concurrently with the other workers, so it must only touch
  // thread-safe state (registry metrics are). Set before Start().
  void SetSampler(std::function<void()> fn, uint64_t every_sweeps);

  int num_cores() const { return static_cast<int>(per_core_.size()); }
  const std::vector<Task*>& core_tasks(int core) const {
    return per_core_[static_cast<size_t>(core)];
  }

  ~ThreadScheduler();

 private:
  void WorkerLoop(int core);

  Router* router_;
  std::vector<std::vector<Task*>> per_core_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::function<void()> sampler_;
  uint64_t sampler_every_ = 0;  // 0 = no sampler
};

}  // namespace rb

#endif  // RB_CLICK_SCHEDULER_HPP_
