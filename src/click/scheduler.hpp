// Static thread-to-core task scheduling (§4.2).
//
// RouteBricks' first rule — each network queue is accessed by a single
// core — is enforced structurally: every FromDevice/ToDevice task is bound
// to exactly one worker, and workers never steal tasks. The ThreadScheduler
// spawns one std::thread per "core", runs each worker's tasks round-robin
// in a polling loop (no blocking — Click polling mode), and stops on
// request.
//
// On the single-vCPU container all workers timeshare one physical CPU, so
// wall-clock throughput is not meaningful — but the concurrency behaviour
// (SPSC ring handoff, per-queue single-writer discipline) is real and is
// what the functional tests exercise.
#ifndef RB_CLICK_SCHEDULER_HPP_
#define RB_CLICK_SCHEDULER_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "click/router.hpp"

namespace rb {

// Stuck-task / starvation detector. A task is "stalled" when its progress
// heartbeat (Task::progress, bumped on every RunOnce) has not moved for
// max_stall_s — which catches both a Run() that never returns and a task
// its worker never schedules. Non-fatal mode logs and counts; fatal mode
// RB_CHECK-aborts (tests run fatal so a hung pipeline fails loudly instead
// of timing out).
struct WatchdogConfig {
  double max_stall_s = 1.0;        // no-progress time before "stalled"
  double check_interval_s = 0.05;  // monitor thread scan period
  bool fatal = false;              // abort on the first stalled task
  // Injectable clock (seconds); nullptr = telemetry::NowSeconds. Tests
  // drive a fake clock and call WatchdogCheckNow() inline.
  double (*clock)() = nullptr;
  // Where the flight-recorder dump lands when a stall is detected (in
  // addition to stderr). Empty = stderr only. Only used when a
  // FlightRecorder is installed.
  std::string flight_dump_path;
};

class ThreadScheduler {
 public:
  // Distributes the router's tasks across `num_cores` workers: tasks with
  // home_core >= 0 go to (home_core % num_cores); the rest round-robin.
  ThreadScheduler(Router* router, int num_cores);

  // Spawns the workers. Each runs its task list in a tight polling loop.
  void Start();

  // Signals stop and joins all workers.
  void Stop();

  // Runs all workers' tasks inline (no threads) for `sweeps` rounds —
  // deterministic mode with the same task partitioning.
  void RunInline(size_t sweeps);

  // Telemetry sampler hook: `fn` runs on worker 0 every `every_sweeps`
  // polling sweeps (and at matching strides in RunInline), e.g. to probe
  // queue depths into gauges or snapshot the registry periodically. `fn`
  // runs concurrently with the other workers, so it must only touch
  // thread-safe state (registry metrics are). Set before Start().
  void SetSampler(std::function<void()> fn, uint64_t every_sweeps);

  // Arms the watchdog over every task the scheduler owns. Call before
  // Start(); Start() then spawns a monitor thread scanning at
  // check_interval_s. Telemetry (when the router has a bound registry):
  // "sched/watchdog/checks", "sched/watchdog/stall_events" (transitions
  // into stalled) and "sched/watchdog/max_stall_s" (worst observed
  // no-progress gap).
  void EnableWatchdog(const WatchdogConfig& config);

  // One watchdog scan, callable inline (no monitor thread needed) —
  // deterministic-test entry point. Returns the number of tasks currently
  // stalled. Safe only when the monitor thread is not running.
  size_t WatchdogCheckNow();

  uint64_t watchdog_stall_events() const {
    return wd_stall_events_.load(std::memory_order_relaxed);
  }
  bool watchdog_enabled() const { return wd_enabled_; }

  // Scheduler introspection handlers (DESIGN.md §13): reads `sched.cores`,
  // `sched.running`, `sched.watchdog_stalls`. The scheduler must outlive
  // `handlers`.
  void AddHandlers(telemetry::HandlerRegistry* handlers);

  int num_cores() const { return static_cast<int>(per_core_.size()); }
  const std::vector<Task*>& core_tasks(int core) const {
    return per_core_[static_cast<size_t>(core)];
  }

  ~ThreadScheduler();

 private:
  struct WatchedTask {
    Task* task = nullptr;
    uint64_t last_progress = 0;
    double last_change = 0;  // clock time of the last progress change
    bool stalled = false;    // currently past max_stall (edge-detected)
  };

  void WorkerLoop(int core);
  void WatchdogLoop();
  double WatchdogNow() const;

  Router* router_;
  std::vector<std::vector<Task*>> per_core_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::function<void()> sampler_;
  uint64_t sampler_every_ = 0;  // 0 = no sampler

  bool wd_enabled_ = false;
  WatchdogConfig wd_cfg_;
  std::vector<WatchedTask> wd_tasks_;
  std::thread wd_thread_;
  // Relaxed atomic: written by the monitor thread, read live by
  // control-socket handlers.
  std::atomic<uint64_t> wd_stall_events_{0};
  telemetry::Counter* wd_tele_checks_ = nullptr;
  telemetry::Counter* wd_tele_stalls_ = nullptr;
  telemetry::Gauge* wd_tele_max_stall_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_SCHEDULER_HPP_
