// DecIPTTL: decrements the IPv4 TTL, updating the header checksum
// incrementally (RFC 1624) — part of "full IP routing including checksum
// calculations, updating headers" (§5.1). Packets whose TTL would reach
// zero exit output 1 (ICMP-time-exceeded territory; we count and drop if
// unwired). Batch-native: the whole burst is rewritten in one call.
#ifndef RB_CLICK_ELEMENTS_DEC_IP_TTL_HPP_
#define RB_CLICK_ELEMENTS_DEC_IP_TTL_HPP_

#include "click/element.hpp"

namespace rb {

class DecIpTtl : public BatchElement {
 public:
  DecIpTtl() : BatchElement(1, 2) {}
  const char* class_name() const override { return "DecIPTTL"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t expired() const { return expired_; }

 private:
  uint64_t expired_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_DEC_IP_TTL_HPP_
