// Small utility elements: Counter, Discard, Tee, Paint/PaintSwitch,
// SetFlowHash, SetOutputNode, and InfiniteSource/TimedSink for tests.
#ifndef RB_CLICK_ELEMENTS_MISC_HPP_
#define RB_CLICK_ELEMENTS_MISC_HPP_

#include <functional>

#include "click/element.hpp"
#include "common/stats.hpp"
#include "packet/flow.hpp"

namespace rb {

// Counts packets and bytes, passes through.
class CounterElement : public Element {
 public:
  CounterElement() : Element(1, 1) {}
  const char* class_name() const override { return "Counter"; }
  void Push(int port, Packet* p) override;
  Packet* Pull(int port) override;

  const PortCounters& counters() const { return counters_; }

 private:
  PortCounters counters_;
};

// Frees every packet it receives.
class Discard : public Element {
 public:
  Discard() : Element(1, 0) {}
  const char* class_name() const override { return "Discard"; }
  void Push(int port, Packet* p) override;

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

// Copies each packet to all outputs (allocating the copies from the
// original packet's pool; drops copies when the pool is exhausted).
class Tee : public Element {
 public:
  explicit Tee(int n_outputs) : Element(1, n_outputs) {}
  const char* class_name() const override { return "Tee"; }
  void Push(int port, Packet* p) override;
};

// Stamps the paint annotation.
class Paint : public Element {
 public:
  explicit Paint(uint8_t color) : Element(1, 1), color_(color) {}
  const char* class_name() const override { return "Paint"; }
  void Push(int port, Packet* p) override;

 private:
  uint8_t color_;
};

// Demuxes on the paint annotation: paint c exits output min(c, n-1).
class PaintSwitch : public Element {
 public:
  explicit PaintSwitch(int n_outputs) : Element(1, n_outputs) {}
  const char* class_name() const override { return "PaintSwitch"; }
  void Push(int port, Packet* p) override;
};

// Recomputes the flow-hash annotation from the 5-tuple (for paths where
// headers were rewritten after NIC RSS stamped the hash).
class SetFlowHash : public Element {
 public:
  SetFlowHash() : Element(1, 1) {}
  const char* class_name() const override { return "SetFlowHash"; }
  void Push(int port, Packet* p) override;
};

// Applies a user function to each packet (glue for tests and experiments).
class ForEach : public Element {
 public:
  explicit ForEach(std::function<void(Packet*)> fn) : Element(1, 1), fn_(std::move(fn)) {}
  const char* class_name() const override { return "ForEach"; }
  void Push(int /*port*/, Packet* p) override {
    fn_(p);
    Output(0, p);
  }

 private:
  std::function<void(Packet*)> fn_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_MISC_HPP_
