// Small utility elements: Counter, Discard, Tee, Paint/PaintSwitch,
// SetFlowHash, and ForEach glue for tests. All batch-native; Counter also
// forwards batch pulls so it can sit on a pull path without degrading the
// downstream puller to per-packet transfers.
#ifndef RB_CLICK_ELEMENTS_MISC_HPP_
#define RB_CLICK_ELEMENTS_MISC_HPP_

#include <functional>
#include <vector>

#include "click/element.hpp"
#include "common/stats.hpp"
#include "packet/flow.hpp"

namespace rb {

// Counts packets and bytes, passes through.
class CounterElement : public BatchElement {
 public:
  CounterElement() : BatchElement(1, 1) {}
  const char* class_name() const override { return "Counter"; }
  void PushBatch(int port, PacketBatch& batch) override;
  Packet* Pull(int port) override;
  size_t PullBatch(int port, PacketBatch* out, int max) override;

  const PortCounters& counters() const { return counters_; }

 private:
  PortCounters counters_;
};

// Frees every packet it receives.
class Discard : public BatchElement {
 public:
  Discard() : BatchElement(1, 0) {}
  const char* class_name() const override { return "Discard"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

// Copies each packet to all outputs (allocating the copies from the
// original packet's pool; drops copies when the pool is exhausted).
class Tee : public BatchElement {
 public:
  explicit Tee(int n_outputs)
      : BatchElement(1, n_outputs), lanes_(static_cast<size_t>(n_outputs)) {}
  const char* class_name() const override { return "Tee"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  std::vector<PacketBatch> lanes_;
};

// Stamps the paint annotation.
class Paint : public BatchElement {
 public:
  explicit Paint(uint8_t color) : BatchElement(1, 1), color_(color) {}
  const char* class_name() const override { return "Paint"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  uint8_t color_;
};

// Demuxes on the paint annotation: paint c exits output min(c, n-1).
class PaintSwitch : public BatchElement {
 public:
  explicit PaintSwitch(int n_outputs)
      : BatchElement(1, n_outputs), lanes_(static_cast<size_t>(n_outputs)) {}
  const char* class_name() const override { return "PaintSwitch"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  std::vector<PacketBatch> lanes_;
};

// Recomputes the flow-hash annotation from the 5-tuple (for paths where
// headers were rewritten after NIC RSS stamped the hash).
class SetFlowHash : public BatchElement {
 public:
  SetFlowHash() : BatchElement(1, 1) {}
  const char* class_name() const override { return "SetFlowHash"; }
  void PushBatch(int port, PacketBatch& batch) override;
};

// Applies a user function to each packet (glue for tests and experiments).
class ForEach : public BatchElement {
 public:
  explicit ForEach(std::function<void(Packet*)> fn) : BatchElement(1, 1), fn_(std::move(fn)) {}
  const char* class_name() const override { return "ForEach"; }
  void PushBatch(int /*port*/, PacketBatch& batch) override {
    for (Packet* p : batch) {
      fn_(p);
    }
    OutputBatch(0, batch);
  }

 private:
  std::function<void(Packet*)> fn_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_MISC_HPP_
