// FlowPolicer: per-flow stateful admission backed by the stateful
// plane's flow table (DESIGN.md §17). Two modes:
//
// POLICE (1 in, 1 out): each flow owns a token bucket (rate_pps tokens
// per second, burst deep, starts full). Packets that find a token pass;
// the rest land in the `policed` drop bucket. Token state lives in the
// flow entry itself — state0 is the 16.16 fixed-point token count,
// state1 the last refill tick — so a million flows cost one table.
//
// FIREWALL (2 in, 2 out): conntrack-style allow-established. Input 0
// (inside->outside) establishes flows and always passes to output 0.
// Input 1 (outside->inside) passes to output 1 only when the reversed
// 5-tuple matches an established flow; everything else drops into
// `not_established`.
//
// Both modes inherit the table's robustness contract: capacity is a
// hard ceiling, watermark eviction sheds least-recently-seen flows
// under overload (an evicted flow re-establishes as new), and drops are
// attributed to dedicated buckets (`policed`, `not_established`,
// `flow_table_full`, `malformed`).
#ifndef RB_CLICK_ELEMENTS_FLOW_POLICER_HPP_
#define RB_CLICK_ELEMENTS_FLOW_POLICER_HPP_

#include "click/element.hpp"
#include "flow/flow_table.hpp"

namespace rb {

enum class PolicerMode { kPolice, kFirewall };

struct FlowPolicerOptions {
  PolicerMode mode = PolicerMode::kPolice;
  uint64_t rate_pps = 100000;  // per-flow sustained rate (POLICE)
  uint64_t burst = 32;         // per-flow bucket depth in packets
  size_t capacity = 4096;
  int shards = 4;
  int max_probe_buckets = 8;
  double hi_watermark = 0.85;
  double lo_watermark = 0.70;
  uint32_t idle_timeout_ms = 0;
  bool evict_on_full = true;
};

class FlowPolicer : public BatchElement {
 public:
  explicit FlowPolicer(const FlowPolicerOptions& options = FlowPolicerOptions{});

  const char* class_name() const override { return "FlowPolicer"; }

  void PushBatch(int port, PacketBatch& batch) override;

  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  // Table handler plane (`.flows`/`.occupancy`/`.evictions`/rw
  // watermarks) plus `.policed`/`.not_established` drop reads and a
  // live-writable `.rate` (packets per second, > 0).
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  using ClockFn = double (*)();
  void set_clock(ClockFn clock) { clock_ = clock; }

  FlowTable& table() { return table_; }
  const FlowPolicerOptions& options() const { return opt_; }
  uint64_t policed_drops() const { return policed_.load(std::memory_order_relaxed); }
  uint64_t not_established_drops() const {
    return not_established_.load(std::memory_order_relaxed);
  }
  uint64_t table_full_drops() const { return table_full_.load(std::memory_order_relaxed); }
  uint64_t malformed_drops() const { return malformed_.load(std::memory_order_relaxed); }

 private:
  void PushPolice(PacketBatch& batch, uint32_t tick);
  void PushInside(PacketBatch& batch, uint32_t tick);
  void PushOutside(PacketBatch& batch, uint32_t tick);
  uint32_t NowTick() const { return static_cast<uint32_t>(clock_() * 1e3); }
  void Housekeep(uint32_t tick);
  // Refills the entry's bucket up to `tick` and consumes one token if
  // available. Returns false when the flow is over rate.
  bool TakeToken(FlowEntry* e, uint32_t tick) const;

  FlowPolicerOptions opt_;
  FlowTable table_;
  ClockFn clock_;
  uint64_t burst_fp_;  // bucket depth in 16.16 fixed point
  uint32_t batches_ = 0;
  std::atomic<uint64_t> rate_pps_;
  std::atomic<uint64_t> policed_{0};
  std::atomic<uint64_t> not_established_{0};
  std::atomic<uint64_t> table_full_{0};
  std::atomic<uint64_t> malformed_{0};
  telemetry::Counter* tele_policed_ = nullptr;
  telemetry::Counter* tele_not_established_ = nullptr;
  telemetry::Counter* tele_table_full_ = nullptr;
  telemetry::Counter* tele_malformed_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_FLOW_POLICER_HPP_
