#include "click/elements/check_ip_header.hpp"

#include "packet/headers.hpp"
#include "program/match_program.hpp"

namespace rb {

namespace {

bool HeaderOk(Packet* p) {
  if (p->length() < EthernetView::kSize + Ipv4View::kMinSize ||
      EthernetView{p->data()}.ether_type() != EthernetView::kTypeIpv4) {
    return false;
  }
  Ipv4View ip{p->data() + EthernetView::kSize};
  return ip.version() == 4 && ip.ihl() >= 5 && ip.total_length() >= ip.header_length() &&
         ip.total_length() <= p->length() - EthernetView::kSize &&
         p->length() >= EthernetView::kSize + ip.header_length() && ip.ChecksumOk();
}

}  // namespace

void CheckIpHeader::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch bad;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      // Pull the next packet's annotation line and header bytes while this
      // one is validated — the batch walks pool-order packets whose lines
      // are rarely still resident after a full graph traversal.
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    if (HeaderOk(p)) {
      ok.PushBack(p);
    } else {
      bad.PushBack(p);
    }
  }
  batch.Clear();
  bad_ += bad.size();
  OutputBatch(0, ok);
  OutputBatch(1, bad);  // drops (counted) if output 1 is unwired
}

bool CheckIpHeader::CompileMatch(program::MatchProgram* out) const {
  using program::MatchInsn;
  using program::MatchProgram;
  out->set_n_outputs(2);
  // The compiled form of HeaderOk: the length gate and EtherType test are
  // plain insns, the dynamic-IHL/checksum rest is the kIpHeaderOk
  // super-op, so the predicate stays byte-identical to the interpreter.
  out->AddInsn({MatchInsn::kLenGe, 0, 0, 0, EthernetView::kSize + Ipv4View::kMinSize, 1,
                MatchProgram::Terminal(1)});
  out->AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u,
                static_cast<uint32_t>(EthernetView::kTypeIpv4) << 16, 2,
                MatchProgram::Terminal(1)});
  out->AddInsn({MatchInsn::kIpHeaderOk, EthernetView::kSize, 0, 0, 0, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  return true;
}

}  // namespace rb
