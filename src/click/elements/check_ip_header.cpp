#include "click/elements/check_ip_header.hpp"

#include "packet/headers.hpp"

namespace rb {

namespace {

bool HeaderOk(Packet* p) {
  if (p->length() < EthernetView::kSize + Ipv4View::kMinSize ||
      EthernetView{p->data()}.ether_type() != EthernetView::kTypeIpv4) {
    return false;
  }
  Ipv4View ip{p->data() + EthernetView::kSize};
  return ip.version() == 4 && ip.ihl() >= 5 && ip.total_length() >= ip.header_length() &&
         ip.total_length() <= p->length() - EthernetView::kSize &&
         p->length() >= EthernetView::kSize + ip.header_length() && ip.ChecksumOk();
}

}  // namespace

void CheckIpHeader::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch bad;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      // Pull the next packet's annotation line and header bytes while this
      // one is validated — the batch walks pool-order packets whose lines
      // are rarely still resident after a full graph traversal.
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    if (HeaderOk(p)) {
      ok.PushBack(p);
    } else {
      bad.PushBack(p);
    }
  }
  batch.Clear();
  bad_ += bad.size();
  OutputBatch(0, ok);
  OutputBatch(1, bad);  // drops (counted) if output 1 is unwired
}

}  // namespace rb
