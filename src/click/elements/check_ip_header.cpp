#include "click/elements/check_ip_header.hpp"

#include "packet/headers.hpp"

namespace rb {

void CheckIpHeader::Push(int /*port*/, Packet* p) {
  bool ok = false;
  if (p->length() >= EthernetView::kSize + Ipv4View::kMinSize &&
      EthernetView{p->data()}.ether_type() == EthernetView::kTypeIpv4) {
    Ipv4View ip{p->data() + EthernetView::kSize};
    ok = ip.version() == 4 && ip.ihl() >= 5 &&
         ip.total_length() >= ip.header_length() &&
         ip.total_length() <= p->length() - EthernetView::kSize &&
         p->length() >= EthernetView::kSize + ip.header_length() && ip.ChecksumOk();
  }
  if (ok) {
    Output(0, p);
    return;
  }
  bad_++;
  Output(1, p);  // drops (counted) if output 1 is unwired
}

}  // namespace rb
