// IPsec elements: IpsecEncrypt wraps frames in an ESP tunnel (the §5.1
// IPsec application — AES-128 on every packet); IpsecDecrypt reverses it.
// Encapsulation failures (non-IPv4, no room) exit output 1 when wired.
// Batch-native: one ESP phase scope covers the whole burst of crypto.
#ifndef RB_CLICK_ELEMENTS_IPSEC_HPP_
#define RB_CLICK_ELEMENTS_IPSEC_HPP_

#include "click/element.hpp"
#include "crypto/esp.hpp"

namespace rb {

class IpsecEncrypt : public BatchElement {
 public:
  explicit IpsecEncrypt(const EspConfig& config);
  const char* class_name() const override { return "IPsecEncrypt"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t encrypted() const { return encrypted_; }

 private:
  EspTunnel tunnel_;
  uint64_t encrypted_ = 0;
};

class IpsecDecrypt : public BatchElement {
 public:
  explicit IpsecDecrypt(const EspConfig& config);
  const char* class_name() const override { return "IPsecDecrypt"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t decrypted() const { return decrypted_; }

 private:
  EspTunnel tunnel_;
  uint64_t decrypted_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_IPSEC_HPP_
