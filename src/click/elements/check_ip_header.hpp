// CheckIPHeader: validates the IPv4 header of an Ethernet frame — version,
// IHL, total length vs frame length, and the header checksum. Valid
// packets exit output 0; invalid ones exit output 1 if wired, else are
// dropped and counted. Batch-native: one PushBatch validates the whole
// burst and emits it as (up to) two batches.
#ifndef RB_CLICK_ELEMENTS_CHECK_IP_HEADER_HPP_
#define RB_CLICK_ELEMENTS_CHECK_IP_HEADER_HPP_

#include "click/element.hpp"

namespace rb {

class CheckIpHeader : public BatchElement {
 public:
  CheckIpHeader() : BatchElement(1, 2) {}
  const char* class_name() const override { return "CheckIPHeader"; }
  void PushBatch(int port, PacketBatch& batch) override;
  bool CompileMatch(program::MatchProgram* out) const override;

  uint64_t bad() const { return bad_; }

 private:
  uint64_t bad_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_CHECK_IP_HEADER_HPP_
