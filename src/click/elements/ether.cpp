#include "click/elements/ether.hpp"

namespace rb {

EtherEncap::EtherEncap(const MacAddress& src, const MacAddress& dst, uint16_t ether_type)
    : BatchElement(1, 1), src_(src), dst_(dst), ether_type_(ether_type) {}

void EtherEncap::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    EthernetView eth{p->Push(EthernetView::kSize)};
    eth.set_dst(dst_);
    eth.set_src(src_);
    eth.set_ether_type(ether_type_);
  }
  OutputBatch(0, batch);
}

void StripEther::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch runts;
  for (Packet* p : batch) {
    if (p->length() < EthernetView::kSize) {
      runts.PushBack(p);
      continue;
    }
    p->Pull(EthernetView::kSize);
    ok.PushBack(p);
  }
  batch.Clear();
  DropBatch(runts);
  OutputBatch(0, ok);
}

EtherRewrite::EtherRewrite(const MacAddress& src, const MacAddress& dst)
    : BatchElement(1, 1), src_(src), dst_(dst) {}

void EtherRewrite::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch runts;
  for (Packet* p : batch) {
    if (p->length() < EthernetView::kSize) {
      runts.PushBack(p);
      continue;
    }
    EthernetView eth{p->data()};
    eth.set_src(src_);
    eth.set_dst(dst_);
    ok.PushBack(p);
  }
  batch.Clear();
  DropBatch(runts);
  OutputBatch(0, ok);
}

VlbEncap::VlbEncap(const MacAddress& src) : BatchElement(1, 1), src_(src) {}

void VlbEncap::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch bad;
  for (Packet* p : batch) {
    if (p->length() < EthernetView::kSize || p->output_node() == Packet::kNoNode) {
      bad.PushBack(p);
      continue;
    }
    EthernetView eth{p->data()};
    eth.set_src(src_);
    eth.set_dst(MacForNode(p->output_node()));
    ok.PushBack(p);
  }
  batch.Clear();
  DropBatch(bad);
  OutputBatch(0, ok);
}

}  // namespace rb
