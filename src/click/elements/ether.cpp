#include "click/elements/ether.hpp"

namespace rb {

EtherEncap::EtherEncap(const MacAddress& src, const MacAddress& dst, uint16_t ether_type)
    : Element(1, 1), src_(src), dst_(dst), ether_type_(ether_type) {}

void EtherEncap::Push(int /*port*/, Packet* p) {
  uint8_t* hdr = p->Push(EthernetView::kSize);
  EthernetView eth{hdr};
  eth.set_dst(dst_);
  eth.set_src(src_);
  eth.set_ether_type(ether_type_);
  Output(0, p);
}

void StripEther::Push(int /*port*/, Packet* p) {
  if (p->length() < EthernetView::kSize) {
    Drop(p);
    return;
  }
  p->Pull(EthernetView::kSize);
  Output(0, p);
}

EtherRewrite::EtherRewrite(const MacAddress& src, const MacAddress& dst)
    : Element(1, 1), src_(src), dst_(dst) {}

void EtherRewrite::Push(int /*port*/, Packet* p) {
  if (p->length() < EthernetView::kSize) {
    Drop(p);
    return;
  }
  EthernetView eth{p->data()};
  eth.set_src(src_);
  eth.set_dst(dst_);
  Output(0, p);
}

VlbEncap::VlbEncap(const MacAddress& src) : Element(1, 1), src_(src) {}

void VlbEncap::Push(int /*port*/, Packet* p) {
  if (p->length() < EthernetView::kSize || p->output_node() == Packet::kNoNode) {
    Drop(p);
    return;
  }
  EthernetView eth{p->data()};
  eth.set_src(src_);
  eth.set_dst(MacForNode(p->output_node()));
  Output(0, p);
}

}  // namespace rb
