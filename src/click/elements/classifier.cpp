#include "click/elements/classifier.hpp"

namespace rb {

void EtherClassifier::Push(int /*port*/, Packet* p) {
  if (p->length() >= EthernetView::kSize) {
    EthernetView eth{p->data()};
    if (eth.ether_type() == EthernetView::kTypeIpv4) {
      Output(0, p);
      return;
    }
  }
  Output(1, p);
}

IpProtoClassifier::IpProtoClassifier(std::vector<uint8_t> protos)
    : Element(1, static_cast<int>(protos.size()) + 1), protos_(std::move(protos)) {}

void IpProtoClassifier::Push(int /*port*/, Packet* p) {
  if (p->length() >= EthernetView::kSize + Ipv4View::kMinSize) {
    Ipv4View ip{p->data() + EthernetView::kSize};
    for (size_t i = 0; i < protos_.size(); ++i) {
      if (ip.protocol() == protos_[i]) {
        Output(static_cast<int>(i), p);
        return;
      }
    }
  }
  Output(static_cast<int>(protos_.size()), p);
}

void HashSwitch::Push(int /*port*/, Packet* p) {
  Output(static_cast<int>(p->flow_hash() % static_cast<uint32_t>(n_outputs())), p);
}

void RoundRobinSwitch::Push(int /*port*/, Packet* p) {
  Output(next_, p);
  next_ = (next_ + 1) % n_outputs();
}

}  // namespace rb
