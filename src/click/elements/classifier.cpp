#include "click/elements/classifier.hpp"

namespace rb {

void EtherClassifier::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ipv4;
  PacketBatch other;
  for (Packet* p : batch) {
    if (p->length() >= EthernetView::kSize &&
        EthernetView{p->data()}.ether_type() == EthernetView::kTypeIpv4) {
      ipv4.PushBack(p);
    } else {
      other.PushBack(p);
    }
  }
  batch.Clear();
  OutputBatch(0, ipv4);
  OutputBatch(1, other);
}

IpProtoClassifier::IpProtoClassifier(std::vector<uint8_t> protos)
    : BatchElement(1, static_cast<int>(protos.size()) + 1),
      protos_(std::move(protos)),
      lanes_(protos_.size() + 1) {}

void IpProtoClassifier::PushBatch(int /*port*/, PacketBatch& batch) {
  const size_t no_match = protos_.size();
  for (Packet* p : batch) {
    size_t out = no_match;
    if (p->length() >= EthernetView::kSize + Ipv4View::kMinSize) {
      Ipv4View ip{p->data() + EthernetView::kSize};
      for (size_t i = 0; i < protos_.size(); ++i) {
        if (ip.protocol() == protos_[i]) {
          out = i;
          break;
        }
      }
    }
    lanes_[out].PushBack(p);
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

void HashSwitch::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    lanes_[p->flow_hash() % static_cast<uint32_t>(n_outputs())].PushBack(p);
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

void RoundRobinSwitch::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    lanes_[static_cast<size_t>(next_)].PushBack(p);
    next_ = (next_ + 1) % n_outputs();
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

}  // namespace rb
