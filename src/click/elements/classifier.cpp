#include "click/elements/classifier.hpp"

#include "program/match_program.hpp"

namespace rb {

void EtherClassifier::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ipv4;
  PacketBatch other;
  for (Packet* p : batch) {
    if (p->length() >= EthernetView::kSize &&
        EthernetView{p->data()}.ether_type() == EthernetView::kTypeIpv4) {
      ipv4.PushBack(p);
    } else {
      other.PushBack(p);
    }
  }
  batch.Clear();
  OutputBatch(0, ipv4);
  OutputBatch(1, other);
}

bool EtherClassifier::CompileMatch(program::MatchProgram* out) const {
  using program::MatchInsn;
  using program::MatchProgram;
  out->set_n_outputs(2);
  // len >= 14 ? next : [1]
  out->AddInsn({MatchInsn::kLenGe, 0, 0, 0, EthernetView::kSize, 1, MatchProgram::Terminal(1)});
  // ether_type == IPv4 ? [0] : [1]  (bytes 12..13, low window bytes masked)
  out->AddInsn({MatchInsn::kMatch, 12, 14, 0xffff0000u,
                static_cast<uint32_t>(EthernetView::kTypeIpv4) << 16, MatchProgram::Terminal(0),
                MatchProgram::Terminal(1)});
  return true;
}

IpProtoClassifier::IpProtoClassifier(std::vector<uint8_t> protos)
    : BatchElement(1, static_cast<int>(protos.size()) + 1),
      protos_(std::move(protos)),
      lanes_(protos_.size() + 1) {}

void IpProtoClassifier::PushBatch(int /*port*/, PacketBatch& batch) {
  const size_t no_match = protos_.size();
  for (Packet* p : batch) {
    size_t out = no_match;
    if (p->length() >= EthernetView::kSize + Ipv4View::kMinSize) {
      Ipv4View ip{p->data() + EthernetView::kSize};
      for (size_t i = 0; i < protos_.size(); ++i) {
        if (ip.protocol() == protos_[i]) {
          out = i;
          break;
        }
      }
    }
    lanes_[out].PushBack(p);
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

bool IpProtoClassifier::CompileMatch(program::MatchProgram* out) const {
  using program::MatchInsn;
  using program::MatchProgram;
  const int no_match = static_cast<int>(protos_.size());
  out->set_n_outputs(no_match + 1);
  // len >= 34 ? scan protocols : [no_match]
  out->AddInsn({MatchInsn::kLenGe, 0, 0, 0, EthernetView::kSize + Ipv4View::kMinSize, 1,
                MatchProgram::Terminal(no_match)});
  // The protocol byte is frame offset 23 (eth 14 + ip 9): the low byte of
  // the 4-byte window at offset 20.
  for (size_t i = 0; i < protos_.size(); ++i) {
    const int16_t next = i + 1 < protos_.size() ? static_cast<int16_t>(i + 2)
                                                : MatchProgram::Terminal(no_match);
    out->AddInsn({MatchInsn::kMatch, 20, 24, 0x000000ffu, protos_[i],
                  MatchProgram::Terminal(static_cast<int>(i)), next});
  }
  return true;
}

void HashSwitch::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    lanes_[p->flow_hash() % static_cast<uint32_t>(n_outputs())].PushBack(p);
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

void RoundRobinSwitch::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    lanes_[static_cast<size_t>(next_)].PushBack(p);
    next_ = (next_ + 1) % n_outputs();
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

}  // namespace rb
