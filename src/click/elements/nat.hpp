// Nat: batch-native source NAPT backed by the stateful plane's flow
// table (DESIGN.md §17).
//
// Input 0 carries inside->outside traffic: the first packet of a flow
// allocates a mapping (external_ip, base_port + index) and every packet
// gets its source address/port rewritten with RFC 1624 incremental
// checksum patches (IP header always; TCP checksum always; UDP checksum
// only when nonzero — an all-zero UDP checksum means "not computed").
// Input 1 carries outside->inside replies addressed to the external
// ip/port: the mapping index is the port offset, and the destination is
// rewritten back to the original inside address/port.
//
// Robustness contract: the table never grows past its configured
// capacity — overload evicts least-recently-seen flows at the watermark
// (their mapping ports return to the free list via the table's evict
// callback, so ports can never leak) and the element keeps forwarding.
// Drops land in dedicated buckets: `flow_table_full` (insert refused,
// eviction disabled), `no_mapping` (reply for a dead/evicted mapping),
// `malformed` (not IPv4 / truncated).
//
// Outputs: 0 = translated inside->outside, 1 = translated
// outside->inside.
#ifndef RB_CLICK_ELEMENTS_NAT_HPP_
#define RB_CLICK_ELEMENTS_NAT_HPP_

#include <vector>

#include "click/element.hpp"
#include "flow/flow_table.hpp"

namespace rb {

struct NatOptions {
  uint32_t external_ip = 0xc6336401;  // 198.51.100.1 (TEST-NET-2)
  uint16_t base_port = 1024;
  size_t capacity = 4096;  // flow-table slot budget == mapping ports
  int shards = 4;
  int max_probe_buckets = 8;
  double hi_watermark = 0.85;
  double lo_watermark = 0.70;
  uint32_t idle_timeout_ms = 0;  // 0 = mappings never idle out
  bool evict_on_full = true;     // false: full window -> flow_table_full drop
};

class Nat : public BatchElement {
 public:
  explicit Nat(const NatOptions& options = NatOptions{});

  const char* class_name() const override { return "Nat"; }

  void PushBatch(int port, PacketBatch& batch) override;

  // Adds per-cause drop counters ("elem/<name>/drops/{flow_table_full,
  // no_mapping,malformed}") and the table's flow/eviction gauges.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  // The stateful handler plane: the table's `.flows`/`.occupancy`/
  // `.evictions`/`.replays`/`.probe_p99` reads and the live-writable
  // `.hi`/`.lo` watermarks, plus `.table_full`/`.no_mapping` drop reads.
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  // Millisecond tick source for LRU/idle bookkeeping; defaults to the
  // steady clock. Tests and DES-driven graphs inject a deterministic
  // source. Call before traffic flows.
  using ClockFn = double (*)();
  void set_clock(ClockFn clock) { clock_ = clock; }

  FlowTable& table() { return table_; }
  const NatOptions& options() const { return opt_; }
  uint64_t table_full_drops() const { return table_full_.load(std::memory_order_relaxed); }
  uint64_t no_mapping_drops() const { return no_mapping_.load(std::memory_order_relaxed); }
  uint64_t malformed_drops() const { return malformed_.load(std::memory_order_relaxed); }
  size_t mappings_in_use() const { return reverse_.size() - free_list_.size(); }

 private:
  struct ReverseEntry {
    uint32_t inside_ip = 0;
    uint16_t inside_port = 0;
    bool in_use = false;
  };

  void PushOutbound(PacketBatch& batch, uint32_t tick);
  void PushInbound(PacketBatch& batch, uint32_t tick);
  uint32_t NowTick() const { return static_cast<uint32_t>(clock_() * 1e3); }
  void Housekeep(uint32_t tick);

  NatOptions opt_;
  FlowTable table_;
  std::vector<ReverseEntry> reverse_;   // mapping index -> inside addr
  std::vector<uint32_t> free_list_;     // available mapping indices
  ClockFn clock_;
  uint32_t batches_ = 0;  // housekeeping cadence
  std::atomic<uint64_t> table_full_{0};
  std::atomic<uint64_t> no_mapping_{0};
  std::atomic<uint64_t> malformed_{0};
  telemetry::Counter* tele_table_full_ = nullptr;
  telemetry::Counter* tele_no_mapping_ = nullptr;
  telemetry::Counter* tele_malformed_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_NAT_HPP_
