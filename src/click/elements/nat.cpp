#include "click/elements/nat.hpp"

#include "common/log.hpp"
#include "packet/checksum.hpp"
#include "packet/flow.hpp"
#include "packet/headers.hpp"
#include "telemetry/metrics.hpp"

namespace rb {
namespace {

// Patches the L4 checksum for a source (outbound) or destination
// (inbound) rewrite. TCP checksums are mandatory; a zero UDP checksum
// means "not computed" (RFC 768) and must stay zero.
void PatchL4(uint8_t* l4, uint8_t protocol, uint32_t old_ip, uint32_t new_ip,
             uint16_t old_port, uint16_t new_port, size_t port_offset) {
  size_t csum_offset;
  if (protocol == Ipv4View::kProtoTcp) {
    csum_offset = 16;
  } else if (protocol == Ipv4View::kProtoUdp) {
    csum_offset = 6;
    if (LoadBe16(l4 + csum_offset) == 0) {
      StoreBe16(l4 + port_offset, new_port);
      return;
    }
  } else {
    return;  // no known L4 checksum; the IP patch already happened
  }
  uint16_t csum = LoadBe16(l4 + csum_offset);
  csum = ChecksumUpdate32(csum, old_ip, new_ip);  // pseudo-header address
  csum = ChecksumUpdate16(csum, old_port, new_port);
  StoreBe16(l4 + csum_offset, csum);
  StoreBe16(l4 + port_offset, new_port);
}

}  // namespace

Nat::Nat(const NatOptions& options)
    : BatchElement(2, 2),
      opt_(options),
      table_([&options] {
        FlowTableConfig tc;
        tc.capacity = options.capacity;
        tc.shards = options.shards;
        tc.max_probe_buckets = options.max_probe_buckets;
        tc.hi_watermark = options.hi_watermark;
        tc.lo_watermark = options.lo_watermark;
        tc.idle_timeout = options.idle_timeout_ms;
        tc.evict_on_full = options.evict_on_full;
        return tc;
      }()),
      clock_(&telemetry::NowSeconds) {
  // One mapping port per table slot: every live entry can always hold a
  // port, so a successful insert never fails mapping allocation.
  const size_t slots = table_.capacity_slots();
  RB_CHECK_MSG(opt_.base_port + slots <= 65536,
               "Nat: capacity does not fit the port space above base_port");
  reverse_.resize(slots);
  free_list_.reserve(slots);
  for (size_t i = slots; i > 0; --i) {
    free_list_.push_back(static_cast<uint32_t>(i - 1));
  }
  table_.set_on_evict([this](const FlowEntry& e) {
    // Mapping ports follow table entries: eviction (idle, watermark, or
    // full-window) returns the port to the free list, so ports cannot
    // leak no matter which eviction path fired.
    const uint32_t idx = static_cast<uint32_t>(e.state0);
    if (idx < reverse_.size() && reverse_[idx].in_use) {
      reverse_[idx].in_use = false;
      free_list_.push_back(idx);
    }
  });
}

void Nat::PushBatch(int port, PacketBatch& batch) {
  const uint32_t tick = NowTick();
  if (port == 0) {
    PushOutbound(batch, tick);
  } else {
    PushInbound(batch, tick);
  }
  if ((++batches_ & 63u) == 0) {
    Housekeep(tick);
  }
}

void Nat::PushOutbound(PacketBatch& batch, uint32_t tick) {
  PacketBatch ok;
  PacketBatch full;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    FlowKey key;
    if (!ExtractFlowKey(*p, &key)) {
      runts.PushBack(p);
      continue;
    }
    bool inserted = false;
    FlowEntry* e = table_.FindOrInsert(key, tick, &inserted);
    if (e == nullptr) {
      full.PushBack(p);
      continue;
    }
    if (inserted) {
      // Table sizing guarantees a free port here (one port per slot and
      // every eviction frees its port before the slot is reused).
      RB_CHECK_MSG(!free_list_.empty(), "Nat: mapping free list underflow");
      const uint32_t idx = free_list_.back();
      free_list_.pop_back();
      reverse_[idx] = ReverseEntry{key.src_ip, key.src_port, true};
      e->state0 = idx;
      e->flags |= FlowEntry::kEstablished;
    }
    const uint32_t idx = static_cast<uint32_t>(e->state0);
    const uint16_t new_port = static_cast<uint16_t>(opt_.base_port + idx);
    Ipv4View ip{p->data() + EthernetView::kSize};
    const uint32_t old_ip = ip.src();
    ip.set_src(opt_.external_ip);
    ip.set_checksum(ChecksumUpdate32(ip.checksum(), old_ip, opt_.external_ip));
    PatchL4(ip.base + ip.header_length(), key.protocol,
            old_ip, opt_.external_ip, key.src_port, new_port, /*port_offset=*/0);
    ok.PushBack(p);
  }
  batch.Clear();
  if (!full.empty()) {
    table_full_.fetch_add(full.size(), std::memory_order_relaxed);
    if (tele_table_full_ != nullptr) {
      tele_table_full_->Add(full.size());
    }
    DropBatch(full);
  }
  if (!runts.empty()) {
    malformed_.fetch_add(runts.size(), std::memory_order_relaxed);
    if (tele_malformed_ != nullptr) {
      tele_malformed_->Add(runts.size());
    }
    DropBatch(runts);
  }
  OutputBatch(0, ok);
}

void Nat::PushInbound(PacketBatch& batch, uint32_t tick) {
  PacketBatch ok;
  PacketBatch unmapped;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    FlowKey key;
    if (!ExtractFlowKey(*p, &key)) {
      runts.PushBack(p);
      continue;
    }
    const uint32_t idx = static_cast<uint32_t>(key.dst_port) - opt_.base_port;
    if (key.dst_ip != opt_.external_ip || key.dst_port < opt_.base_port ||
        idx >= reverse_.size() || !reverse_[idx].in_use) {
      unmapped.PushBack(p);
      continue;
    }
    const ReverseEntry& rev = reverse_[idx];
    // Keep the mapping warm: the forward entry is keyed by the inside
    // flow (inside src -> remote dst). A reply's source is the remote.
    FlowKey fwd{rev.inside_ip, key.src_ip, rev.inside_port, key.src_port, key.protocol};
    FlowEntry* e = table_.Find(fwd, tick);
    if (e == nullptr || static_cast<uint32_t>(e->state0) != idx) {
      unmapped.PushBack(p);
      continue;
    }
    Ipv4View ip{p->data() + EthernetView::kSize};
    const uint32_t old_ip = ip.dst();
    ip.set_dst(rev.inside_ip);
    ip.set_checksum(ChecksumUpdate32(ip.checksum(), old_ip, rev.inside_ip));
    PatchL4(ip.base + ip.header_length(), key.protocol,
            old_ip, rev.inside_ip, key.dst_port, rev.inside_port, /*port_offset=*/2);
    ok.PushBack(p);
  }
  batch.Clear();
  if (!unmapped.empty()) {
    no_mapping_.fetch_add(unmapped.size(), std::memory_order_relaxed);
    if (tele_no_mapping_ != nullptr) {
      tele_no_mapping_->Add(unmapped.size());
    }
    DropBatch(unmapped);
  }
  if (!runts.empty()) {
    malformed_.fetch_add(runts.size(), std::memory_order_relaxed);
    if (tele_malformed_ != nullptr) {
      tele_malformed_->Add(runts.size());
    }
    DropBatch(runts);
  }
  OutputBatch(1, ok);
}

void Nat::Housekeep(uint32_t tick) {
  // Idle reclamation runs only while occupancy sits above the low
  // watermark — under light load dead mappings can wait for their slot
  // to be probed; above it, a budgeted sweep frees them proactively.
  const double lo = table_.lo_watermark();
  if (table_.idle_timeout() != 0 &&
      static_cast<double>(table_.occupancy()) >
          lo * static_cast<double>(table_.capacity_slots())) {
    table_.SweepIdle(tick, 256);
  }
  table_.RefreshTelemetry();
}

void Nat::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                        const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (registry == nullptr || !telemetry::Enabled()) {
    return;
  }
  const std::string base = prefix + "elem/" + name();
  tele_table_full_ = registry->GetCounter(base + "/drops/flow_table_full");
  tele_no_mapping_ = registry->GetCounter(base + "/drops/no_mapping");
  tele_malformed_ = registry->GetCounter(base + "/drops/malformed");
  table_.BindTelemetry(registry, prefix, name());
}

void Nat::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  table_.AddHandlers(handlers, name());
  handlers->AddRead(name() + ".table_full", [this] {
    return std::to_string(table_full_.load(std::memory_order_relaxed));
  });
  handlers->AddRead(name() + ".no_mapping", [this] {
    return std::to_string(no_mapping_.load(std::memory_order_relaxed));
  });
  handlers->AddRead(name() + ".mappings", [this] {
    return std::to_string(mappings_in_use());
  });
}

}  // namespace rb
