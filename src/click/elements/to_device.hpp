// ToDevice: drains an upstream pull path (normally a Queue) into one NIC
// tx queue. Like FromDevice, it binds to a queue so that the "one core per
// queue" rule holds on the transmit side too.
//
// Batch-native: each drain iteration pulls up to `burst` packets (the
// transmit-side batch, kn in the standard graphs) in one PullBatch call
// and transmits them under a single profiler scope.
#ifndef RB_CLICK_ELEMENTS_TO_DEVICE_HPP_
#define RB_CLICK_ELEMENTS_TO_DEVICE_HPP_

#include <memory>

#include "click/element.hpp"
#include "click/task.hpp"
#include "netdev/nic.hpp"

namespace rb {

class ToDevice : public BatchElement {
 public:
  ToDevice(NicPort* port, uint16_t tx_queue, uint16_t burst = 32, int home_core = -1);

  const char* class_name() const override { return "ToDevice"; }
  void Initialize(Router* router) override;

  // Also usable in push mode: a pushed batch is transmitted immediately.
  void PushBatch(int port, PacketBatch& batch) override;

  // One drain iteration: pulls up to `burst` packets from input 0 and
  // transmits them. Returns packets moved.
  size_t RunOnce();

  uint64_t sent() const { return sent_; }

  // Latency-plane keying: stamped packets transmitted here are observed
  // into "lat/port<label>" (or "lat/<name>" when unset). Set before
  // BindTelemetry; SingleServerRouter labels each egress leg with its
  // output port.
  void set_port_label(int label) { port_label_ = label; }

  // Binds the base element metrics plus the egress latency histogram.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  // Adds "<name>.latency": live ingress-to-egress percentile readout.
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

 private:
  // Transmits every packet in `batch` (Transmit owns each packet either
  // way; failures are counted as tx drops by the NIC). Empties the batch.
  void TransmitBatch(PacketBatch& batch);

  class DrainTask : public Task {
   public:
    DrainTask(ToDevice* td, int home_core) : Task(td, home_core), td_(td) {}
    size_t Run() override { return td_->RunOnce(); }

   private:
    ToDevice* td_;
  };

  NicPort* port_;
  uint16_t tx_queue_;
  uint16_t burst_;
  int home_core_;
  uint64_t sent_ = 0;
  int port_label_ = -1;
  // Egress latency histogram + cycle->ns conversion as a Q32.32 fixed-point
  // multiplier (ns = cycles * mult >> 32), so the per-packet conversion is
  // one integer multiply-shift instead of int<->double round trips.
  // Null/0 when unbound.
  telemetry::LatencyHistogram* tele_lat_ = nullptr;
  uint64_t ns_per_cycle_q32_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_TO_DEVICE_HPP_
