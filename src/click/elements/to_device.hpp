// ToDevice: drains an upstream pull path (normally a Queue) into one NIC
// tx queue. Like FromDevice, it binds to a queue so that the "one core per
// queue" rule holds on the transmit side too.
#ifndef RB_CLICK_ELEMENTS_TO_DEVICE_HPP_
#define RB_CLICK_ELEMENTS_TO_DEVICE_HPP_

#include <memory>

#include "click/element.hpp"
#include "click/task.hpp"
#include "netdev/nic.hpp"

namespace rb {

class ToDevice : public Element {
 public:
  ToDevice(NicPort* port, uint16_t tx_queue, uint16_t burst = 32, int home_core = -1);

  const char* class_name() const override { return "ToDevice"; }
  void Initialize(Router* router) override;

  // Also usable in push mode: a pushed packet is transmitted immediately.
  void Push(int port, Packet* p) override;

  // One drain iteration: pulls up to `burst` packets from input 0 and
  // transmits them. Returns packets moved.
  size_t RunOnce();

  uint64_t sent() const { return sent_; }

 private:
  void FinishTrace(Packet* p);

  class DrainTask : public Task {
   public:
    DrainTask(ToDevice* td, int home_core) : Task(td, home_core), td_(td) {}
    size_t Run() override { return td_->RunOnce(); }

   private:
    ToDevice* td_;
  };

  NicPort* port_;
  uint16_t tx_queue_;
  uint16_t burst_;
  int home_core_;
  uint64_t sent_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_TO_DEVICE_HPP_
