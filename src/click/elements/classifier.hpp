// Classification elements.
//
// EtherClassifier: demuxes on EtherType — output 0: IPv4, output 1:
// everything else.
// IpProtoClassifier: demuxes IPv4 frames on the protocol field across a
// configurable list (e.g. {TCP, UDP, ESP}), last output = no match.
// HashSwitch: spreads packets across outputs by flow hash (the software
// analogue of RSS, useful for building scenario (c) of Fig 6 where one
// core splits traffic for others).
// RoundRobinSwitch: spreads packets across outputs in rotation.
#ifndef RB_CLICK_ELEMENTS_CLASSIFIER_HPP_
#define RB_CLICK_ELEMENTS_CLASSIFIER_HPP_

#include <vector>

#include "click/element.hpp"
#include "packet/headers.hpp"

namespace rb {

class EtherClassifier : public Element {
 public:
  EtherClassifier() : Element(1, 2) {}
  const char* class_name() const override { return "EtherClassifier"; }
  void Push(int port, Packet* p) override;
};

class IpProtoClassifier : public Element {
 public:
  // One output per protocol in `protos`, plus a final "no match" output.
  explicit IpProtoClassifier(std::vector<uint8_t> protos);
  const char* class_name() const override { return "IpProtoClassifier"; }
  void Push(int port, Packet* p) override;

 private:
  std::vector<uint8_t> protos_;
};

class HashSwitch : public Element {
 public:
  explicit HashSwitch(int n_outputs) : Element(1, n_outputs) {}
  const char* class_name() const override { return "HashSwitch"; }
  void Push(int port, Packet* p) override;
};

class RoundRobinSwitch : public Element {
 public:
  explicit RoundRobinSwitch(int n_outputs) : Element(1, n_outputs) {}
  const char* class_name() const override { return "RoundRobinSwitch"; }
  void Push(int port, Packet* p) override;

 private:
  int next_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_CLASSIFIER_HPP_
