// Classification elements.
//
// EtherClassifier: demuxes on EtherType — output 0: IPv4, output 1:
// everything else.
// IpProtoClassifier: demuxes IPv4 frames on the protocol field across a
// configurable list (e.g. {TCP, UDP, ESP}), last output = no match.
// HashSwitch: spreads packets across outputs by flow hash (the software
// analogue of RSS, useful for building scenario (c) of Fig 6 where one
// core splits traffic for others).
// RoundRobinSwitch: spreads packets across outputs in rotation.
//
// All four are batch-native: a burst is partitioned into per-output lanes
// in one virtual call, then each lane is forwarded as a batch.
#ifndef RB_CLICK_ELEMENTS_CLASSIFIER_HPP_
#define RB_CLICK_ELEMENTS_CLASSIFIER_HPP_

#include <vector>

#include "click/element.hpp"
#include "packet/headers.hpp"

namespace rb {

class EtherClassifier : public BatchElement {
 public:
  EtherClassifier() : BatchElement(1, 2) {}
  const char* class_name() const override { return "EtherClassifier"; }
  void PushBatch(int port, PacketBatch& batch) override;
  bool CompileMatch(program::MatchProgram* out) const override;
};

class IpProtoClassifier : public BatchElement {
 public:
  // One output per protocol in `protos`, plus a final "no match" output.
  explicit IpProtoClassifier(std::vector<uint8_t> protos);
  const char* class_name() const override { return "IpProtoClassifier"; }
  void PushBatch(int port, PacketBatch& batch) override;
  bool CompileMatch(program::MatchProgram* out) const override;

 private:
  std::vector<uint8_t> protos_;
  std::vector<PacketBatch> lanes_;  // one-core-per-element scratch
};

class HashSwitch : public BatchElement {
 public:
  explicit HashSwitch(int n_outputs)
      : BatchElement(1, n_outputs), lanes_(static_cast<size_t>(n_outputs)) {}
  const char* class_name() const override { return "HashSwitch"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  std::vector<PacketBatch> lanes_;
};

class RoundRobinSwitch : public BatchElement {
 public:
  explicit RoundRobinSwitch(int n_outputs)
      : BatchElement(1, n_outputs), lanes_(static_cast<size_t>(n_outputs)) {}
  const char* class_name() const override { return "RoundRobinSwitch"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  int next_ = 0;
  std::vector<PacketBatch> lanes_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_CLASSIFIER_HPP_
