#include "click/elements/ip_lookup.hpp"

#include "common/log.hpp"
#include "packet/headers.hpp"

namespace rb {

IpLookup::IpLookup(const LpmTable* table, int n_next_hops)
    : BatchElement(1, n_next_hops), table_(table), lanes_(static_cast<size_t>(n_next_hops)) {
  RB_CHECK(table != nullptr);
  RB_CHECK(n_next_hops >= 1);
}

void IpLookup::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch bad;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    // Phase scope: the LPM table walks alone (random-destination lookups
    // are the memory-bound core of the routing application). Entered once
    // per burst — the scope bookkeeping amortizes across the batch.
    static const telemetry::ScopeId kLpmPhase = telemetry::InternScopeName("phase/lpm_lookup");
    RB_PROF_SCOPE(kLpmPhase);
#endif
    const uint32_t n = batch.size();
    for (uint32_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        // Overlap the next packet's header fetch with this packet's table
        // walk — the lookup is the memory-bound step, so there is latency
        // to hide.
        PrefetchPacketHeaders(batch[i + 1]);
      }
      Packet* p = batch[i];
      if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
        bad.PushBack(p);
        continue;
      }
      Ipv4View ip{p->data() + EthernetView::kSize};
      uint32_t hop = table_->Lookup(ip.dst());
      if (hop == LpmTable::kNoRoute) {
        no_route_++;
        bad.PushBack(p);
        continue;
      }
      lanes_[(hop - 1) % static_cast<uint32_t>(n_outputs())].PushBack(p);
    }
  }
  batch.Clear();
  DropBatch(bad);
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

}  // namespace rb
