#include "click/elements/ip_lookup.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "packet/headers.hpp"

namespace rb {

namespace {

std::vector<int32_t> IdentityMap(int n_next_hops) {
  // Hop h in [1, n] -> port h - 1; hop 0 is kNoRoute.
  std::vector<int32_t> map(static_cast<size_t>(n_next_hops) + 1, -1);
  for (int h = 1; h <= n_next_hops; ++h) {
    map[static_cast<size_t>(h)] = h - 1;
  }
  return map;
}

}  // namespace

IpLookup::IpLookup(const LpmTable* table, int n_next_hops)
    : IpLookup(table, n_next_hops, IdentityMap(n_next_hops)) {}

IpLookup::IpLookup(const LpmTable* table, int n_outputs, std::vector<int32_t> port_for_hop)
    : BatchElement(1, n_outputs),
      table_(table),
      port_for_hop_(std::move(port_for_hop)),
      lanes_(static_cast<size_t>(n_outputs)) {
  RB_CHECK(table != nullptr);
  RB_CHECK(n_outputs >= 1);
  RB_CHECK_MSG(!port_for_hop_.empty() && port_for_hop_[0] < 0,
               "next-hop map must leave kNoRoute (hop 0) unmapped");
  for (int32_t port : port_for_hop_) {
    RB_CHECK_MSG(port >= -1 && port < n_outputs, "next-hop map entry out of port range");
  }
}

void IpLookup::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch bad;
  const uint32_t n = batch.size();
  // Gather -> batch resolve -> partition: the table walk is the memory-
  // bound core of the routing application, so the whole burst's addresses
  // go through one LookupBatch call where the table pipelines prefetches.
  uint32_t addrs[PacketBatch::kCapacity];
  uint32_t hops[PacketBatch::kCapacity];
  Packet* pkts[PacketBatch::kCapacity];
  uint32_t m = 0;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    // Phase scope: the LPM table walks alone. Entered once per burst — the
    // scope bookkeeping amortizes across the batch.
    static const telemetry::ScopeId kLpmPhase = telemetry::InternScopeName("phase/lpm_lookup");
    RB_PROF_SCOPE(kLpmPhase);
#endif
    for (uint32_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        // Overlap the next packet's header fetch with this packet's
        // destination extraction.
        PrefetchPacketHeaders(batch[i + 1]);
      }
      Packet* p = batch[i];
      if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
        bad.PushBack(p);
        continue;
      }
      addrs[m] = Ipv4View{p->data() + EthernetView::kSize}.dst();
      pkts[m] = p;
      m++;
    }
    table_->LookupBatch(addrs, hops, m);
  }
  batch.Clear();
  const uint32_t map_size = static_cast<uint32_t>(port_for_hop_.size());
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t hop = hops[i];
    if (hop == LpmTable::kNoRoute) {
      no_route_.fetch_add(1, std::memory_order_relaxed);
      bad.PushBack(pkts[i]);
      continue;
    }
    const int32_t out = hop < map_size ? port_for_hop_[hop] : -1;
    if (out < 0) {
      // A route whose next hop the port map does not cover: misconfigured
      // table. Drop and count — wrapping it onto a valid port would
      // silently mis-deliver traffic.
      bad_hop_.fetch_add(1, std::memory_order_relaxed);
      bad.PushBack(pkts[i]);
      continue;
    }
    lanes_[static_cast<size_t>(out)].PushBack(pkts[i]);
  }
  DropBatch(bad);
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

void IpLookup::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  handlers->AddRead(name() + ".no_route", [this] {
    return Format("%llu", static_cast<unsigned long long>(no_route()));
  });
  handlers->AddRead(name() + ".bad_hop", [this] {
    return Format("%llu", static_cast<unsigned long long>(bad_hop()));
  });
}

}  // namespace rb
