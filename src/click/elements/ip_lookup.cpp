#include "click/elements/ip_lookup.hpp"

#include "common/log.hpp"
#include "packet/headers.hpp"

namespace rb {

IpLookup::IpLookup(const LpmTable* table, int n_next_hops)
    : Element(1, n_next_hops), table_(table) {
  RB_CHECK(table != nullptr);
  RB_CHECK(n_next_hops >= 1);
}

void IpLookup::Push(int /*port*/, Packet* p) {
  if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
    Drop(p);
    return;
  }
  Ipv4View ip{p->data() + EthernetView::kSize};
  uint32_t hop;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    // Phase scope: the LPM table walk alone (random-destination lookups
    // are the memory-bound core of the routing application).
    static const telemetry::ScopeId kLpmPhase = telemetry::InternScopeName("phase/lpm_lookup");
    RB_PROF_SCOPE(kLpmPhase);
#endif
    hop = table_->Lookup(ip.dst());
  }
  if (hop == LpmTable::kNoRoute) {
    no_route_++;
    Drop(p);
    return;
  }
  Output(static_cast<int>((hop - 1) % static_cast<uint32_t>(n_outputs())), p);
}

}  // namespace rb
