#include "click/elements/queue.hpp"

namespace rb {

QueueElement::QueueElement(size_t capacity) : Element(1, 1), ring_(capacity) {}

void QueueElement::BindTelemetry(telemetry::MetricRegistry* registry,
                                 telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (telemetry::Enabled() && registry != nullptr) {
    tele_occupancy_hw_ = registry->GetGauge(prefix + "elem/" + name() + "/occupancy_hw");
  }
}

void QueueElement::Push(int /*port*/, Packet* p) {
  if (!ring_.TryPush(p)) {
    Drop(p);
    return;
  }
  size_t depth = ring_.size();
  if (depth > highwater_) {
    highwater_ = depth;
    if (tele_occupancy_hw_ != nullptr) {
      tele_occupancy_hw_->UpdateMax(static_cast<double>(depth));
    }
  }
}

Packet* QueueElement::Pull(int /*port*/) {
  Packet* p = nullptr;
  ring_.TryPop(&p);
  return p;
}

}  // namespace rb
