#include "click/elements/queue.hpp"

namespace rb {

QueueElement::QueueElement(size_t capacity) : Element(1, 1), ring_(capacity) {}

void QueueElement::Push(int /*port*/, Packet* p) {
  if (!ring_.TryPush(p)) {
    Drop(p);
    return;
  }
  size_t depth = ring_.size();
  if (depth > highwater_) {
    highwater_ = depth;
  }
}

Packet* QueueElement::Pull(int /*port*/) {
  Packet* p = nullptr;
  ring_.TryPop(&p);
  return p;
}

}  // namespace rb
