#include "click/elements/queue.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"

namespace rb {

namespace {
QueueOptions Normalize(QueueOptions opt) {
  if (opt.hi_watermark > 0) {
    RB_CHECK_MSG(opt.hi_watermark <= opt.capacity, "Queue hi watermark above capacity");
    if (opt.lo_watermark == 0) {
      opt.lo_watermark = opt.hi_watermark / 2;
    }
    RB_CHECK_MSG(opt.lo_watermark < opt.hi_watermark, "Queue lo watermark must be below hi");
  }
  if (opt.aqm == AqmMode::kCoDel) {
    RB_CHECK_MSG(opt.codel_target_s > 0 && opt.codel_interval_s > 0,
                 "CoDel target/interval must be positive");
  }
  return opt;
}
}  // namespace

QueueElement::QueueElement(size_t capacity) : QueueElement(QueueOptions{.capacity = capacity}) {}

QueueElement::QueueElement(const QueueOptions& options)
    : BatchElement(1, 1),
      opt_(Normalize(options)),
      ring_(opt_.capacity),
      clock_(&telemetry::NowSeconds) {
  hi_wm_.store(opt_.hi_watermark, std::memory_order_relaxed);
  lo_wm_.store(opt_.lo_watermark, std::memory_order_relaxed);
  codel_target_.store(opt_.codel_target_s, std::memory_order_relaxed);
  codel_interval_.store(opt_.codel_interval_s, std::memory_order_relaxed);
  stamp_sojourn_ = opt_.aqm == AqmMode::kCoDel;
}

void QueueElement::set_clock(ClockFn clock) {
  RB_CHECK(clock != nullptr);
  clock_ = clock;
}

void QueueElement::BindTelemetry(telemetry::MetricRegistry* registry,
                                 telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (this->tracer() != nullptr) {
    // Wait decomposition needs every arrival stamped, not just CoDel's;
    // the dequeue hop point is interned now so the pull path stays
    // string-free.
    stamp_sojourn_ = true;
    deq_scope_ = telemetry::InternScopeName(name() + "/deq");
  }
  if (telemetry::Enabled() && registry != nullptr) {
    const std::string base = prefix + "elem/" + name();
    tele_occupancy_hw_ = registry->GetGauge(base + "/occupancy_hw");
    tele_wait_ = registry->GetGauge(base + "/wait_s");
    tele_overflow_drops_ = registry->GetCounter(base + "/drops/queue_overflow");
    if (opt_.aqm == AqmMode::kCoDel) {
      tele_aqm_drops_ = registry->GetCounter(base + "/drops/aqm");
    }
    if (opt_.hi_watermark > 0) {
      tele_blocked_events_ = registry->GetCounter(base + "/blocked_events");
    }
  }
}

void QueueElement::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  const std::string base = name() + ".";
  handlers->AddRead(base + "occupancy",
                    [this] { return Format("%zu", ring_.size()); });
  handlers->AddRead(base + "capacity", [this] { return Format("%zu", ring_.capacity()); });
  handlers->AddRead(base + "highwater", [this] {
    return Format("%llu", static_cast<unsigned long long>(highwater()));
  });
  handlers->AddRead(base + "blocked", [this] { return std::string(Blocked() ? "1" : "0"); });
  handlers->AddRead(base + "aqm", [this] {
    return std::string(opt_.aqm == AqmMode::kCoDel ? "codel" : "tail_drop");
  });
  handlers->AddRead(base + "wait_us", [this] {
    // Sojourn of the most recently dequeued stamped packet — rb_top polls
    // this for the per-queue wait sparkline. 0 until stamping is active.
    return Format("%.3f", last_wait_s() * 1e6);
  });
  handlers->AddRead(base + "hi", [this] { return Format("%zu", hi_watermark()); });
  handlers->AddWrite(base + "hi", [this](const std::string& value) {
    uint64_t v = 0;
    if (!telemetry::ParseHandlerU64(value, &v)) {
      return telemetry::HandlerResult::Error("hi expects a non-negative integer, got '" + value +
                                             "'");
    }
    if (v > ring_.capacity()) {
      return telemetry::HandlerResult::Error(
          Format("hi %llu above capacity %zu", static_cast<unsigned long long>(v),
                 ring_.capacity()));
    }
    if (v == 0) {
      // Disabling watermarks also clears any sticky blocked state, else a
      // later re-enable would inherit a stale Blocked() signal.
      hi_wm_.store(0, std::memory_order_relaxed);
      blocked_.store(false, std::memory_order_release);
      return telemetry::HandlerResult::Ok();
    }
    const size_t lo = lo_wm_.load(std::memory_order_relaxed);
    if (lo >= v) {
      // Keep the invariant lo < hi the same way construction does.
      lo_wm_.store(static_cast<size_t>(v) / 2, std::memory_order_relaxed);
    }
    hi_wm_.store(static_cast<size_t>(v), std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
  handlers->AddRead(base + "lo", [this] { return Format("%zu", lo_watermark()); });
  handlers->AddWrite(base + "lo", [this](const std::string& value) {
    uint64_t v = 0;
    if (!telemetry::ParseHandlerU64(value, &v)) {
      return telemetry::HandlerResult::Error("lo expects a non-negative integer, got '" + value +
                                             "'");
    }
    const size_t hi = hi_wm_.load(std::memory_order_relaxed);
    if (hi > 0 && v >= hi) {
      return telemetry::HandlerResult::Error(
          Format("lo %llu must be below hi %zu", static_cast<unsigned long long>(v), hi));
    }
    lo_wm_.store(static_cast<size_t>(v), std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
  handlers->AddRead(base + "codel_target_us",
                    [this] { return Format("%.1f", codel_target_s() * 1e6); });
  handlers->AddWrite(base + "codel_target_us", [this](const std::string& value) {
    double v = 0;
    if (!telemetry::ParseHandlerDouble(value, &v) || v <= 0) {
      return telemetry::HandlerResult::Error("codel_target_us expects a positive number, got '" +
                                             value + "'");
    }
    codel_target_.store(v * 1e-6, std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
  handlers->AddRead(base + "codel_interval_us",
                    [this] { return Format("%.1f", codel_interval_s() * 1e6); });
  handlers->AddWrite(base + "codel_interval_us", [this](const std::string& value) {
    double v = 0;
    if (!telemetry::ParseHandlerDouble(value, &v) || v <= 0) {
      return telemetry::HandlerResult::Error("codel_interval_us expects a positive number, got '" +
                                             value + "'");
    }
    codel_interval_.store(v * 1e-6, std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
}

void QueueElement::NoteDepth() {
  size_t depth = ring_.size();
  if (depth > highwater_.load(std::memory_order_relaxed)) {
    highwater_.store(depth, std::memory_order_relaxed);
    if (tele_occupancy_hw_ != nullptr) {
      tele_occupancy_hw_->UpdateMax(static_cast<double>(depth));
    }
  }
}

size_t QueueElement::PushHeadroom() const {
  const size_t hi = hi_wm_.load(std::memory_order_relaxed);
  if (hi == 0) {
    return SIZE_MAX;
  }
  if (blocked_.load(std::memory_order_acquire)) {
    return 0;
  }
  size_t depth = ring_.size();
  return depth >= hi ? 0 : hi - depth;
}

void QueueElement::MaybeBlock() {
  const size_t hi = hi_wm_.load(std::memory_order_relaxed);
  if (hi == 0 || blocked_.load(std::memory_order_relaxed)) {
    return;
  }
  const size_t depth = ring_.size();
  if (depth >= hi) {
    blocked_.store(true, std::memory_order_release);
    blocked_events_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FrRecord(telemetry::FrEvent::kBlocked, profile_scope(), depth);
    if (tele_blocked_events_ != nullptr) {
      tele_blocked_events_->Inc();
    }
  }
}

void QueueElement::MaybeUnblock() {
  const size_t hi = hi_wm_.load(std::memory_order_relaxed);
  if (hi == 0 || !blocked_.load(std::memory_order_relaxed)) {
    return;
  }
  const size_t depth = ring_.size();
  if (depth <= lo_wm_.load(std::memory_order_relaxed)) {
    blocked_.store(false, std::memory_order_release);
    telemetry::FrRecord(telemetry::FrEvent::kUnblocked, profile_scope(), depth);
  }
}

void QueueElement::DropOne(Packet* p, bool aqm) {
  if (aqm) {
    aqm_drops_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FrRecord(telemetry::FrEvent::kAqmDrop, profile_scope(), codel_count_);
    if (tele_aqm_drops_ != nullptr) {
      tele_aqm_drops_->Inc();
    }
  } else {
    overflow_drops_.fetch_add(1, std::memory_order_relaxed);
    if (tele_overflow_drops_ != nullptr) {
      tele_overflow_drops_->Inc();
    }
  }
  Drop(p);
}

void QueueElement::NoteDequeue(Packet* p, double now) {
  const double wait = now - p->enqueue_time();
  last_wait_s_.store(wait, std::memory_order_relaxed);
  if (tele_wait_ != nullptr) {
    tele_wait_->Set(wait);
  }
  if (tracer() != nullptr && p->trace_handle() != 0) {
    // The dequeue hop carries the queueing wait; the span from here to
    // the next hop is pure service time.
    tracer()->Record(p->trace_handle(), deq_scope_, now, wait);
  }
}

void QueueElement::NoteDequeueBurst(Packet* const* popped, size_t n) {
  const double now = clock_();
  for (size_t i = 0; i < n; ++i) {
    NoteDequeue(popped[i], now);
  }
}

void QueueElement::PushBatch(int /*port*/, PacketBatch& batch) {
  // Drop-tail per packet: a burst that straddles capacity enqueues its
  // prefix and drops exactly the overflow — each overflowed packet is
  // counted once and released to its pool once, never double-released
  // with the enqueued prefix.
  const bool stamp = stamp_sojourn_;
  const double now = stamp ? clock_() : 0;
  const uint32_t n = batch.size();
  uint32_t accepted = 0;
  while (accepted < n) {
    Packet* p = batch[accepted];
    if (stamp) {
      p->set_enqueue_time(now);
    }
    if (!ring_.TryPush(p)) {
      break;
    }
    accepted++;
  }
  if (accepted < n) {
    PacketBatch overflow;
    batch.SplitAfter(accepted, &overflow);
    overflow_drops_.fetch_add(overflow.size(), std::memory_order_relaxed);
    if (tele_overflow_drops_ != nullptr) {
      tele_overflow_drops_->Add(overflow.size());
    }
    DropBatch(overflow);
  }
  batch.Clear();  // enqueued prefix now belongs to the ring
  NoteDepth();
  MaybeBlock();
}

bool QueueElement::CodelShouldDrop(double sojourn, double now) {
  const double target = codel_target_.load(std::memory_order_relaxed);
  const double interval = codel_interval_.load(std::memory_order_relaxed);
  if (sojourn < target) {
    // Back under control: leave the dropping state and forget the
    // above-target episode.
    codel_first_above_ = 0;
    codel_dropping_ = false;
    return false;
  }
  if (!codel_dropping_) {
    if (codel_first_above_ == 0) {
      // Sojourn just crossed target; give the queue one full interval to
      // drain on its own before the first drop.
      codel_first_above_ = now + interval;
      return false;
    }
    if (now < codel_first_above_) {
      return false;
    }
    // Enter the dropping state. If the last episode ended recently,
    // resume near its drop rate instead of restarting from 1 (the CoDel
    // pseudocode's count - 2 re-entry rule).
    codel_dropping_ = true;
    codel_count_ = (codel_count_ > 2 && now - codel_drop_next_ < interval) ? codel_count_ - 2 : 1;
    codel_drop_next_ = now + interval / std::sqrt(static_cast<double>(codel_count_));
    return true;
  }
  if (now >= codel_drop_next_) {
    // Control law: each successive drop comes interval/sqrt(count) after
    // the previous, steadily increasing the drop rate until sojourn
    // falls back under target.
    codel_count_++;
    codel_drop_next_ += interval / std::sqrt(static_cast<double>(codel_count_));
    return true;
  }
  return false;
}

Packet* QueueElement::Pull(int /*port*/) {
  const bool codel = opt_.aqm == AqmMode::kCoDel;
  const bool note = codel || tracer() != nullptr;
  Packet* p = nullptr;
  while (ring_.TryPop(&p)) {
    if (note) {
      const double now = clock_();
      if (codel && CodelShouldDrop(now - p->enqueue_time(), now)) {
        DropOne(p, /*aqm=*/true);
        p = nullptr;
        continue;
      }
      NoteDequeue(p, now);
    }
    MaybeUnblock();
    return p;
  }
  MaybeUnblock();
  return nullptr;
}

size_t QueueElement::PullBatch(int /*port*/, PacketBatch* out, int max) {
  const bool codel = opt_.aqm == AqmMode::kCoDel;
  size_t moved = 0;
  if (!codel) {
    // No per-packet sojourn check to run: pop the whole burst under one
    // ring head/tail synchronization straight into the batch tail. With a
    // tracer bound, the wait/hop pass runs over the already-popped burst
    // so the ring synchronization stays a single head/tail exchange.
    size_t want = static_cast<size_t>(max) < out->room()
                      ? static_cast<size_t>(max)
                      : out->room();
    Packet** popped = out->tail();
    moved = ring_.TryPopBurst(popped, want);
    out->CommitAppended(static_cast<uint32_t>(moved));
    if (tracer() != nullptr && moved > 0) {
      NoteDequeueBurst(popped, moved);
    }
    MaybeUnblock();
    return moved;
  }
  Packet* p = nullptr;
  while (moved < static_cast<size_t>(max) && !out->full() && ring_.TryPop(&p)) {
    const double now = clock_();
    if (CodelShouldDrop(now - p->enqueue_time(), now)) {
      DropOne(p, /*aqm=*/true);
      continue;
    }
    NoteDequeue(p, now);
    out->PushBack(p);
    moved++;
  }
  // Low-watermark unblock must fire on the pull side even when the batch
  // fills up (partial consumption of the ring) or the consumer drained
  // via AQM drops only — the push side never clears the sticky flag.
  MaybeUnblock();
  return moved;
}

}  // namespace rb
