#include "click/elements/queue.hpp"

namespace rb {

QueueElement::QueueElement(size_t capacity) : BatchElement(1, 1), ring_(capacity) {}

void QueueElement::BindTelemetry(telemetry::MetricRegistry* registry,
                                 telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (telemetry::Enabled() && registry != nullptr) {
    tele_occupancy_hw_ = registry->GetGauge(prefix + "elem/" + name() + "/occupancy_hw");
  }
}

void QueueElement::NoteDepth() {
  size_t depth = ring_.size();
  if (depth > highwater_) {
    highwater_ = depth;
    if (tele_occupancy_hw_ != nullptr) {
      tele_occupancy_hw_->UpdateMax(static_cast<double>(depth));
    }
  }
}

void QueueElement::PushBatch(int /*port*/, PacketBatch& batch) {
  // Drop-tail per packet: a burst that straddles capacity enqueues its
  // prefix and drops exactly the overflow — each overflowed packet is
  // counted once and released to its pool once (DropBatch), never
  // double-released with the enqueued prefix.
  const uint32_t n = batch.size();
  uint32_t accepted = 0;
  while (accepted < n && ring_.TryPush(batch[accepted])) {
    accepted++;
  }
  if (accepted < n) {
    PacketBatch overflow;
    batch.SplitAfter(accepted, &overflow);
    DropBatch(overflow);
  }
  batch.Clear();  // enqueued prefix now belongs to the ring
  NoteDepth();
}

Packet* QueueElement::Pull(int /*port*/) {
  Packet* p = nullptr;
  ring_.TryPop(&p);
  return p;
}

size_t QueueElement::PullBatch(int /*port*/, PacketBatch* out, int max) {
  size_t moved = 0;
  Packet* p = nullptr;
  while (moved < static_cast<size_t>(max) && !out->full() && ring_.TryPop(&p)) {
    out->PushBack(p);
    moved++;
  }
  return moved;
}

}  // namespace rb
