// Ethernet framing elements: EtherEncap prepends a header, StripEther
// removes one, EtherRewrite swaps addresses in place (what a forwarding
// hop actually does), and VlbEncap writes the cluster-internal destination
// MAC that encodes the output node (§6.1). All batch-native: one virtual
// call rewrites the whole burst.
#ifndef RB_CLICK_ELEMENTS_ETHER_HPP_
#define RB_CLICK_ELEMENTS_ETHER_HPP_

#include "click/element.hpp"
#include "packet/headers.hpp"

namespace rb {

class EtherEncap : public BatchElement {
 public:
  EtherEncap(const MacAddress& src, const MacAddress& dst, uint16_t ether_type);
  const char* class_name() const override { return "EtherEncap"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  MacAddress src_;
  MacAddress dst_;
  uint16_t ether_type_;
};

class StripEther : public BatchElement {
 public:
  StripEther() : BatchElement(1, 1) {}
  const char* class_name() const override { return "StripEther"; }
  void PushBatch(int port, PacketBatch& batch) override;
};

class EtherRewrite : public BatchElement {
 public:
  EtherRewrite(const MacAddress& src, const MacAddress& dst);
  const char* class_name() const override { return "EtherRewrite"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  MacAddress src_;
  MacAddress dst_;
};

// Writes dst MAC = MacForNode(p->output_node()) and stamps the VLB phase.
// The input node runs this once after routing; downstream cluster nodes
// then steer by MAC without touching IP headers.
class VlbEncap : public BatchElement {
 public:
  explicit VlbEncap(const MacAddress& src);
  const char* class_name() const override { return "VlbEncap"; }
  void PushBatch(int port, PacketBatch& batch) override;

 private:
  MacAddress src_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_ETHER_HPP_
