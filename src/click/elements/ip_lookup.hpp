// IPLookup: longest-prefix-match on the destination address, with an
// explicit, validated next-hop -> output-port map. The default map sends
// next_hop h (1-based, as TableGen emits) to output h - 1; a next hop the
// map does not cover is a *misconfigured table*, counted in the `bad_hop`
// bucket and dropped — never silently wrapped onto a valid port.
//
// The paper's IP-routing application uses the D-lookup structure (Dir24_8)
// over a 256 K-entry table; the element accepts any LpmTable so tests can
// swap in the reference trie. Batch-native and batch-oriented end to end:
// PushBatch gathers the burst's destination addresses, resolves them in
// one LpmTable::LookupBatch call (which pipelines TBL24 prefetches), then
// partitions onto the per-output lanes. One lpm_lookup profiler scope
// covers the whole burst of table walks.
#ifndef RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_
#define RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_

#include <vector>

#include "click/element.hpp"
#include "lookup/lpm.hpp"

namespace rb {

class IpLookup : public BatchElement {
 public:
  // Identity map: next_hop h in [1, n_next_hops] exits output h - 1.
  // `table` is borrowed and must outlive the element.
  IpLookup(const LpmTable* table, int n_next_hops);

  // Explicit map: port_for_hop[h] is the output port for next-hop value h,
  // or -1 for "not a valid hop" (counted as bad_hop). Entry 0 (kNoRoute)
  // must be -1. Every port must be in [0, n_outputs); RB_CHECKed at build.
  IpLookup(const LpmTable* table, int n_outputs, std::vector<int32_t> port_for_hop);

  const char* class_name() const override { return "IPLookup"; }
  void PushBatch(int port, PacketBatch& batch) override;
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  uint64_t no_route() const { return no_route_.load(std::memory_order_relaxed); }
  // Lookups that returned a next hop the port map does not cover — a
  // misconfigured table (satellite of DESIGN.md §16; previously these
  // wrapped silently onto (hop - 1) % n_outputs).
  uint64_t bad_hop() const { return bad_hop_.load(std::memory_order_relaxed); }

 private:
  const LpmTable* table_;
  std::vector<int32_t> port_for_hop_;  // hop value -> output port, -1 = invalid
  // Relaxed atomics: bumped by the owning core, read by control handlers.
  std::atomic<uint64_t> no_route_{0};
  std::atomic<uint64_t> bad_hop_{0};
  // Per-output fan-out lanes. Member scratch is safe: an element runs on
  // exactly one core and the graph is acyclic (no re-entrant PushBatch).
  std::vector<PacketBatch> lanes_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_
