// IPLookup: longest-prefix-match on the destination address, one output
// port per next hop (next_hop value h exits output (h - 1) % n_outputs).
// The paper's IP-routing application uses the D-lookup structure
// (Dir24_8) over a 256 K-entry table; the element accepts any LpmTable so
// tests can swap in the reference trie. Batch-native: one lpm_lookup
// profiler scope covers the whole burst of table walks.
#ifndef RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_
#define RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_

#include <vector>

#include "click/element.hpp"
#include "lookup/lpm.hpp"

namespace rb {

class IpLookup : public BatchElement {
 public:
  // `table` is borrowed and must outlive the element.
  IpLookup(const LpmTable* table, int n_next_hops);
  const char* class_name() const override { return "IPLookup"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t no_route() const { return no_route_; }

 private:
  const LpmTable* table_;
  uint64_t no_route_ = 0;
  // Per-output fan-out lanes. Member scratch is safe: an element runs on
  // exactly one core and the graph is acyclic (no re-entrant PushBatch).
  std::vector<PacketBatch> lanes_;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_IP_LOOKUP_HPP_
