// FromDevice: polls one NIC rx queue and pushes packets downstream.
//
// This is the multi-queue-aware version the paper built (§4.2): the
// element binds to a *queue*, not a port, so each queue can be polled by
// exactly one core. kp (poll-driven batching) is the Driver's burst size.
//
// Batch-native: the whole kp-packet poll burst leaves output 0 as one
// PacketBatch, so downstream elements see the driver's burst size (the
// graph-level batch). `graph_batch` can cap the batch size pushed into
// the graph below kp (the Table 1 third-axis sweep); 0 means "the full
// poll burst".
//
// Backpressure-aware: at Initialize the element caches the watermarked
// queues reachable downstream (Router::DownstreamBlockers) and each poll
// shrinks its burst to the minimum PushHeadroom() over them — a blocked
// queue (high watermark crossed) throttles the poll to zero, leaving
// packets in the NIC ring instead of tail-dropping them at the queue.
#ifndef RB_CLICK_ELEMENTS_FROM_DEVICE_HPP_
#define RB_CLICK_ELEMENTS_FROM_DEVICE_HPP_

#include <memory>

#include "click/element.hpp"
#include "click/task.hpp"
#include "netdev/driver.hpp"

namespace rb {

class FromDevice : public BatchElement {
 public:
  // home_core: the core this queue's polling is pinned to (-1 = any).
  // graph_batch: max packets per downstream PushBatch (0 = whole burst).
  FromDevice(NicPort* port, uint16_t rx_queue, uint16_t kp = 32, int home_core = -1,
             uint16_t graph_batch = 0);

  const char* class_name() const override { return "FromDevice"; }
  void Initialize(Router* router) override;

  // Adds a throttled-poll counter ("elem/<name>/throttled_polls": polls
  // skipped or shrunk because a downstream queue was blocked).
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  // Adds `throttled_polls` and `kp` reads on top of the element defaults.
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  // One poll iteration: retrieves up to kp packets and pushes them out of
  // output 0 as (a) batch(es). Returns packets moved.
  size_t RunOnce();

  Driver& driver() { return driver_; }
  uint16_t graph_batch() const { return graph_batch_; }
  uint64_t throttled_polls() const { return throttled_polls_.load(std::memory_order_relaxed); }
  const std::vector<Element*>& downstream_blockers() const { return blockers_; }

 private:
  class PollTask : public Task {
   public:
    PollTask(FromDevice* fd, int home_core) : Task(fd, home_core), fd_(fd) {}
    size_t Run() override { return fd_->RunOnce(); }

   private:
    FromDevice* fd_;
  };

  // Minimum downstream headroom this poll may fill (SIZE_MAX = no
  // watermarked queue downstream).
  size_t PollAllowance() const;

  Driver driver_;
  int home_core_;
  uint16_t graph_batch_;
  std::vector<Element*> blockers_;
  // Relaxed atomic (single-writer: the polling core); read live by
  // control-socket handlers.
  std::atomic<uint64_t> throttled_polls_{0};
  bool throttled_state_ = false;  // edge detector for flight-recorder events
  telemetry::Counter* tele_throttled_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_FROM_DEVICE_HPP_
