#include "click/elements/from_device.hpp"

#include "click/router.hpp"
#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"

namespace rb {

FromDevice::FromDevice(NicPort* port, uint16_t rx_queue, uint16_t kp, int home_core,
                       uint16_t graph_batch)
    : BatchElement(0, 1),
      driver_(port, rx_queue, DriverConfig{kp}),
      home_core_(home_core),
      graph_batch_(graph_batch) {}

void FromDevice::Initialize(Router* router) {
  // Cache the watermarked queues this poller can reach: only boundaries
  // that can actually block (PushHeadroom below SIZE_MAX) are kept, so
  // legacy tail-drop graphs pay nothing per poll.
  for (Element* b : router->DownstreamBlockers(this)) {
    if (b->PushHeadroom() != SIZE_MAX) {
      blockers_.push_back(b);
    }
  }
  router->RegisterTask(std::make_unique<PollTask>(this, home_core_));
}

void FromDevice::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                               const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (telemetry::Enabled() && registry != nullptr) {
    tele_throttled_ = registry->GetCounter(prefix + "elem/" + name() + "/throttled_polls");
  }
}

size_t FromDevice::PollAllowance() const {
  size_t allowance = SIZE_MAX;
  for (Element* b : blockers_) {
    size_t h = b->PushHeadroom();
    if (h < allowance) {
      allowance = h;
    }
  }
  return allowance;
}

void FromDevice::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  const std::string base = name() + ".";
  handlers->AddRead(base + "throttled_polls", [this] {
    return Format("%llu", static_cast<unsigned long long>(throttled_polls()));
  });
  handlers->AddRead(base + "kp",
                    [this] { return Format("%u", static_cast<unsigned>(driver_.config().kp)); });
}

size_t FromDevice::RunOnce() {
  size_t allowance = PollAllowance();
  const bool throttled = allowance < driver_.config().kp;
  if (throttled) {
    throttled_polls_.fetch_add(1, std::memory_order_relaxed);
    if (!throttled_state_) {
      // Edge, not level: one black-box event per throttle episode, even
      // when a blocked downstream holds the poller at zero for thousands
      // of consecutive polls.
      telemetry::FrRecord(telemetry::FrEvent::kThrottled, profile_scope(), allowance);
    }
    if (tele_throttled_ != nullptr) {
      tele_throttled_->Inc();
    }
  }
  throttled_state_ = throttled;
  if (throttled && allowance == 0) {
    return 0;
  }
  PacketBatch burst;
  size_t n = driver_.Poll(&burst, allowance);
  if (n == 0) {
    return 0;
  }
  if (tracer() != nullptr) {
    // Trace entry point: the sampling decision for each packet's path.
    // The interned scope keeps the unsampled majority allocation-free.
    const double now = telemetry::NowSeconds();
    const telemetry::ScopeId here = profile_scope();
    for (Packet* p : burst) {
      p->set_trace_handle(tracer()->StartTrace(here, now));
    }
  }
  if (graph_batch_ == 0 || burst.size() <= graph_batch_) {
    OutputBatch(0, burst);
  } else {
    // Graph-level batch cap: split the poll burst into graph_batch-sized
    // chunks (Table 1's third axis — batching inside the element graph,
    // independent of kp at the driver).
    PacketBatch chunk;
    while (!burst.empty()) {
      chunk.AppendUpTo(&burst, graph_batch_);
      OutputBatch(0, chunk);
    }
  }
  return n;
}

}  // namespace rb
