#include "click/elements/from_device.hpp"

#include "click/router.hpp"

namespace rb {

FromDevice::FromDevice(NicPort* port, uint16_t rx_queue, uint16_t kp, int home_core,
                       uint16_t graph_batch)
    : BatchElement(0, 1),
      driver_(port, rx_queue, DriverConfig{kp}),
      home_core_(home_core),
      graph_batch_(graph_batch) {}

void FromDevice::Initialize(Router* router) {
  router->RegisterTask(std::make_unique<PollTask>(this, home_core_));
}

size_t FromDevice::RunOnce() {
  PacketBatch burst;
  size_t n = driver_.Poll(&burst);
  if (n == 0) {
    return 0;
  }
  if (tracer() != nullptr) {
    // Trace entry point: the sampling decision for each packet's path.
    const double now = telemetry::NowSeconds();
    for (Packet* p : burst) {
      p->set_trace_handle(tracer()->StartTrace(name(), now));
    }
  }
  if (graph_batch_ == 0 || burst.size() <= graph_batch_) {
    OutputBatch(0, burst);
  } else {
    // Graph-level batch cap: split the poll burst into graph_batch-sized
    // chunks (Table 1's third axis — batching inside the element graph,
    // independent of kp at the driver).
    PacketBatch chunk;
    while (!burst.empty()) {
      chunk.AppendUpTo(&burst, graph_batch_);
      OutputBatch(0, chunk);
    }
  }
  return n;
}

}  // namespace rb
