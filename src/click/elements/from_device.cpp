#include "click/elements/from_device.hpp"

#include "click/router.hpp"

namespace rb {

FromDevice::FromDevice(NicPort* port, uint16_t rx_queue, uint16_t kp, int home_core)
    : Element(0, 1), driver_(port, rx_queue, DriverConfig{kp}), home_core_(home_core) {}

void FromDevice::Initialize(Router* router) {
  router->RegisterTask(std::make_unique<PollTask>(this, home_core_));
}

size_t FromDevice::RunOnce() {
  std::vector<Packet*> burst;
  size_t n = driver_.Poll(&burst);
  for (Packet* p : burst) {
    if (tracer() != nullptr) {
      // Trace entry point: the sampling decision for this packet's path.
      p->set_trace_handle(tracer()->StartTrace(name(), telemetry::NowSeconds()));
    }
    Output(0, p);
  }
  return n;
}

}  // namespace rb
