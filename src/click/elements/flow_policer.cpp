#include "click/elements/flow_policer.hpp"

#include <algorithm>

#include "packet/flow.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rb {

namespace {
constexpr uint64_t kTokenFp = 1u << 16;  // one token in 16.16 fixed point
}  // namespace

FlowPolicer::FlowPolicer(const FlowPolicerOptions& options)
    : BatchElement(options.mode == PolicerMode::kFirewall ? 2 : 1,
                   options.mode == PolicerMode::kFirewall ? 2 : 1),
      opt_(options),
      table_([&options] {
        FlowTableConfig tc;
        tc.capacity = options.capacity;
        tc.shards = options.shards;
        tc.max_probe_buckets = options.max_probe_buckets;
        tc.hi_watermark = options.hi_watermark;
        tc.lo_watermark = options.lo_watermark;
        tc.idle_timeout = options.idle_timeout_ms;
        tc.evict_on_full = options.evict_on_full;
        return tc;
      }()),
      clock_(&telemetry::NowSeconds),
      burst_fp_(options.burst * kTokenFp),
      rate_pps_(options.rate_pps) {}

bool FlowPolicer::TakeToken(FlowEntry* e, uint32_t tick) const {
  const uint64_t rate = rate_pps_.load(std::memory_order_relaxed);
  uint64_t tokens = e->state0;
  const uint32_t dt = tick - e->state1;  // ms, wrap-safe
  if (dt != 0) {
    // Clamp the elapsed window at whatever fills the bucket from empty;
    // beyond that the extra time is irrelevant and the multiply below
    // stays far from overflow.
    const uint64_t fill_ms = (opt_.burst * 1000) / std::max<uint64_t>(rate, 1) + 1;
    if (dt >= fill_ms) {
      tokens = burst_fp_;
    } else {
      tokens = std::min(burst_fp_, tokens + rate * dt * kTokenFp / 1000);
    }
    e->state1 = tick;
  }
  if (tokens < kTokenFp) {
    e->state0 = tokens;
    return false;
  }
  e->state0 = tokens - kTokenFp;
  return true;
}

void FlowPolicer::PushBatch(int port, PacketBatch& batch) {
  const uint32_t tick = NowTick();
  if (opt_.mode == PolicerMode::kPolice) {
    PushPolice(batch, tick);
  } else if (port == 0) {
    PushInside(batch, tick);
  } else {
    PushOutside(batch, tick);
  }
  if ((++batches_ & 63u) == 0) {
    Housekeep(tick);
  }
}

void FlowPolicer::PushPolice(PacketBatch& batch, uint32_t tick) {
  PacketBatch ok;
  PacketBatch over;
  PacketBatch full;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    FlowKey key;
    if (!ExtractFlowKey(*p, &key)) {
      runts.PushBack(p);
      continue;
    }
    bool inserted = false;
    FlowEntry* e = table_.FindOrInsert(key, tick, &inserted);
    if (e == nullptr) {
      full.PushBack(p);
      continue;
    }
    if (inserted) {
      e->state0 = burst_fp_;  // new flows start with a full bucket
      e->state1 = tick;
      e->flags |= FlowEntry::kEstablished;
    }
    if (TakeToken(e, tick)) {
      ok.PushBack(p);
    } else {
      over.PushBack(p);
    }
  }
  batch.Clear();
  if (!over.empty()) {
    policed_.fetch_add(over.size(), std::memory_order_relaxed);
    if (tele_policed_ != nullptr) {
      tele_policed_->Add(over.size());
    }
    DropBatch(over);
  }
  if (!full.empty()) {
    table_full_.fetch_add(full.size(), std::memory_order_relaxed);
    if (tele_table_full_ != nullptr) {
      tele_table_full_->Add(full.size());
    }
    DropBatch(full);
  }
  if (!runts.empty()) {
    malformed_.fetch_add(runts.size(), std::memory_order_relaxed);
    if (tele_malformed_ != nullptr) {
      tele_malformed_->Add(runts.size());
    }
    DropBatch(runts);
  }
  OutputBatch(0, ok);
}

void FlowPolicer::PushInside(PacketBatch& batch, uint32_t tick) {
  PacketBatch ok;
  PacketBatch full;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    FlowKey key;
    if (!ExtractFlowKey(*p, &key)) {
      runts.PushBack(p);
      continue;
    }
    bool inserted = false;
    FlowEntry* e = table_.FindOrInsert(key, tick, &inserted);
    if (e == nullptr) {
      // Table exhausted: inside traffic still forwards (fail-open for
      // the trusted side), it just cannot pin state for replies.
      full.PushBack(p);
      ok.PushBack(p);
      continue;
    }
    e->flags |= FlowEntry::kEstablished;
    ok.PushBack(p);
  }
  batch.Clear();
  if (!full.empty()) {
    table_full_.fetch_add(full.size(), std::memory_order_relaxed);
    if (tele_table_full_ != nullptr) {
      tele_table_full_->Add(full.size());
    }
    // Counted, not dropped: the packets already rode along in `ok`.
    full.Clear();
  }
  if (!runts.empty()) {
    malformed_.fetch_add(runts.size(), std::memory_order_relaxed);
    if (tele_malformed_ != nullptr) {
      tele_malformed_->Add(runts.size());
    }
    DropBatch(runts);
  }
  OutputBatch(0, ok);
}

void FlowPolicer::PushOutside(PacketBatch& batch, uint32_t tick) {
  PacketBatch ok;
  PacketBatch blocked;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    FlowKey key;
    if (!ExtractFlowKey(*p, &key)) {
      runts.PushBack(p);
      continue;
    }
    // A reply to an inside-originated flow arrives with the 5-tuple
    // reversed; only established entries open the pinhole.
    FlowKey fwd{key.dst_ip, key.src_ip, key.dst_port, key.src_port, key.protocol};
    FlowEntry* e = table_.Find(fwd, tick);
    if (e != nullptr && e->established()) {
      ok.PushBack(p);
    } else {
      blocked.PushBack(p);
    }
  }
  batch.Clear();
  if (!blocked.empty()) {
    not_established_.fetch_add(blocked.size(), std::memory_order_relaxed);
    if (tele_not_established_ != nullptr) {
      tele_not_established_->Add(blocked.size());
    }
    DropBatch(blocked);
  }
  if (!runts.empty()) {
    malformed_.fetch_add(runts.size(), std::memory_order_relaxed);
    if (tele_malformed_ != nullptr) {
      tele_malformed_->Add(runts.size());
    }
    DropBatch(runts);
  }
  OutputBatch(1, ok);
}

void FlowPolicer::Housekeep(uint32_t tick) {
  const double lo = table_.lo_watermark();
  if (table_.idle_timeout() != 0 &&
      static_cast<double>(table_.occupancy()) >
          lo * static_cast<double>(table_.capacity_slots())) {
    table_.SweepIdle(tick, 256);
  }
  table_.RefreshTelemetry();
}

void FlowPolicer::BindTelemetry(telemetry::MetricRegistry* registry,
                                telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (registry == nullptr || !telemetry::Enabled()) {
    return;
  }
  const std::string base = prefix + "elem/" + name();
  tele_policed_ = registry->GetCounter(base + "/drops/policed");
  tele_not_established_ = registry->GetCounter(base + "/drops/not_established");
  tele_table_full_ = registry->GetCounter(base + "/drops/flow_table_full");
  tele_malformed_ = registry->GetCounter(base + "/drops/malformed");
  table_.BindTelemetry(registry, prefix, name());
}

void FlowPolicer::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  table_.AddHandlers(handlers, name());
  handlers->AddRead(name() + ".policed", [this] {
    return std::to_string(policed_.load(std::memory_order_relaxed));
  });
  handlers->AddRead(name() + ".not_established", [this] {
    return std::to_string(not_established_.load(std::memory_order_relaxed));
  });
  handlers->AddRead(name() + ".rate", [this] {
    return std::to_string(rate_pps_.load(std::memory_order_relaxed));
  });
  handlers->AddWrite(name() + ".rate", [this](const std::string& value) {
    uint64_t pps = 0;
    if (!telemetry::ParseHandlerU64(value, &pps) || pps == 0) {
      return telemetry::HandlerResult::Error("rate must be a positive integer (pps)");
    }
    rate_pps_.store(pps, std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
}

}  // namespace rb
