#include "click/elements/to_device.hpp"

#include "click/router.hpp"
#include "common/log.hpp"

namespace rb {

ToDevice::ToDevice(NicPort* port, uint16_t tx_queue, uint16_t burst, int home_core)
    : Element(1, 0), port_(port), tx_queue_(tx_queue), burst_(burst), home_core_(home_core) {
  RB_CHECK(port != nullptr);
  RB_CHECK(tx_queue < port->num_tx_queues());
}

void ToDevice::Initialize(Router* router) {
  router->RegisterTask(std::make_unique<DrainTask>(this, home_core_));
}

void ToDevice::Push(int /*port*/, Packet* p) {
  FinishTrace(p);
  // Transmit() owns the packet either way; failures are counted as tx
  // drops by the NIC.
  if (port_->Transmit(tx_queue_, p)) {
    sent_++;
    CountPacketsOut(1);
  }
}

void ToDevice::FinishTrace(Packet* p) {
  if (tracer() != nullptr && p->trace_handle() != 0) {
    tracer()->EndTrace(p->trace_handle(), name(), telemetry::NowSeconds());
    p->set_trace_handle(0);
  }
}

size_t ToDevice::RunOnce() {
  size_t moved = 0;
  for (uint16_t i = 0; i < burst_; ++i) {
    Packet* p = Input(0);
    if (p == nullptr) {
      break;
    }
    FinishTrace(p);
    [[maybe_unused]] uint32_t bytes = p->length();
    bool sent;
    {
#if defined(RB_PROFILE) && RB_PROFILE
      // The tx half of the driver batch loop (rx is netdev/rx_poll).
      static const telemetry::ScopeId kTxScope = telemetry::InternScopeName("netdev/tx");
      RB_PROF_SCOPE(kTxScope);
#endif
      sent = port_->Transmit(tx_queue_, p);
      if (sent) {
        RB_PROF_WORK(1, bytes);
      }
    }
    if (sent) {
      sent_++;
      CountPacketsOut(1);
    }
    // Transmit() owns the packet either way (drops are counted by the NIC).
    moved++;
  }
  return moved;
}

}  // namespace rb
