#include "click/elements/to_device.hpp"

#include "click/router.hpp"
#include "common/log.hpp"

namespace rb {

ToDevice::ToDevice(NicPort* port, uint16_t tx_queue, uint16_t burst, int home_core)
    : BatchElement(1, 0), port_(port), tx_queue_(tx_queue), burst_(burst), home_core_(home_core) {
  RB_CHECK(port != nullptr);
  RB_CHECK(burst >= 1);
  RB_CHECK(tx_queue < port->num_tx_queues());
}

void ToDevice::Initialize(Router* router) {
  router->RegisterTask(std::make_unique<DrainTask>(this, home_core_));
}

void ToDevice::TransmitBatch(PacketBatch& batch) {
  if (tracer() != nullptr) {
    const double now = telemetry::NowSeconds();
    for (Packet* p : batch) {
      if (p->trace_handle() != 0) {
        tracer()->EndTrace(p->trace_handle(), name(), now);
        p->set_trace_handle(0);
      }
    }
  }
  uint64_t ok = 0;
  [[maybe_unused]] uint64_t ok_bytes = 0;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    // The tx half of the driver batch loop (rx is netdev/rx_poll) — one
    // scope entry per transmit burst.
    static const telemetry::ScopeId kTxScope = telemetry::InternScopeName("netdev/tx");
    RB_PROF_SCOPE(kTxScope);
#endif
    for (Packet* p : batch) {
      [[maybe_unused]] uint32_t bytes = p->length();
      // Transmit() owns the packet either way; failures are counted as tx
      // drops by the NIC.
      if (port_->Transmit(tx_queue_, p)) {
        ok++;
        ok_bytes += bytes;
      }
    }
    RB_PROF_WORK(ok, ok_bytes);
  }
  sent_ += ok;
  CountPacketsOut(ok);
  batch.Clear();
}

void ToDevice::PushBatch(int /*port*/, PacketBatch& batch) { TransmitBatch(batch); }

size_t ToDevice::RunOnce() {
  PacketBatch batch;
  size_t moved = InputBatch(0, &batch, burst_);
  if (moved == 0) {
    return 0;
  }
  TransmitBatch(batch);
  return moved;
}

}  // namespace rb
