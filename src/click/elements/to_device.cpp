#include "click/elements/to_device.hpp"

#include "click/router.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"

namespace rb {

ToDevice::ToDevice(NicPort* port, uint16_t tx_queue, uint16_t burst, int home_core)
    : BatchElement(1, 0), port_(port), tx_queue_(tx_queue), burst_(burst), home_core_(home_core) {
  RB_CHECK(port != nullptr);
  RB_CHECK(burst >= 1);
  RB_CHECK(tx_queue < port->num_tx_queues());
}

void ToDevice::Initialize(Router* router) {
  router->RegisterTask(std::make_unique<DrainTask>(this, home_core_));
}

void ToDevice::BindTelemetry(telemetry::MetricRegistry* registry,
                             telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (telemetry::Enabled() && registry != nullptr) {
    // Keyed by egress port when labeled (one distribution per port, as the
    // paper's per-port latency story wants), else by element name.
    const std::string key = port_label_ >= 0 ? Format("lat/port%d", port_label_)
                                             : "lat/" + name();
    tele_lat_ = registry->GetLatencyHistogram(prefix + key);
    ns_per_cycle_q32_ = static_cast<uint64_t>(
        (1e9 / telemetry::CyclesPerSecond()) * 4294967296.0);  // Q32.32
  }
}

void ToDevice::AddHandlers(telemetry::HandlerRegistry* handlers) {
  Element::AddHandlers(handlers);
  handlers->AddRead(name() + ".latency", [this] {
    if (tele_lat_ == nullptr) {
      return std::string("count=0");
    }
    telemetry::LatencySnapshot s = tele_lat_->Snapshot();
    return Format("count=%llu p50_us=%.2f p90_us=%.2f p99_us=%.2f p999_us=%.2f",
                  static_cast<unsigned long long>(s.count), s.PercentileNs(50) / 1e3,
                  s.PercentileNs(90) / 1e3, s.PercentileNs(99) / 1e3,
                  s.PercentileNs(99.9) / 1e3);
  });
}

void ToDevice::TransmitBatch(PacketBatch& batch) {
  if (tele_lat_ != nullptr) {
    // Egress readout of the ingress stamp. One cycle read covers the
    // burst; the per-packet cost is a subtract, a fixed-point
    // multiply-shift, and a wait-free log-bucket increment.
    const uint64_t now_cycles = telemetry::ReadCycles();
    for (Packet* p : batch) {
      if (p->ingress_cycles() != 0) {
        uint64_t dc = now_cycles - p->ingress_cycles();
        tele_lat_->ObserveNs(static_cast<uint64_t>(
            (static_cast<__uint128_t>(dc) * ns_per_cycle_q32_) >> 32));
      }
    }
  }
  if (tracer() != nullptr) {
    const double now = telemetry::NowSeconds();
    const telemetry::ScopeId here = profile_scope();
    for (Packet* p : batch) {
      if (p->trace_handle() != 0) {
        tracer()->EndTrace(p->trace_handle(), here, now);
        p->set_trace_handle(0);
      }
    }
  }
  uint64_t ok = 0;
  [[maybe_unused]] uint64_t ok_bytes = 0;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    // The tx half of the driver batch loop (rx is netdev/rx_poll) — one
    // scope entry per transmit burst.
    static const telemetry::ScopeId kTxScope = telemetry::InternScopeName("netdev/tx");
    RB_PROF_SCOPE(kTxScope);
#endif
    for (Packet* p : batch) {
      [[maybe_unused]] uint32_t bytes = p->length();
      // Transmit() owns the packet either way; failures are counted as tx
      // drops by the NIC.
      if (port_->Transmit(tx_queue_, p)) {
        ok++;
        ok_bytes += bytes;
      }
    }
    RB_PROF_WORK(ok, ok_bytes);
  }
  sent_ += ok;
  CountPacketsOut(ok);
  batch.Clear();
}

void ToDevice::PushBatch(int /*port*/, PacketBatch& batch) { TransmitBatch(batch); }

size_t ToDevice::RunOnce() {
  PacketBatch batch;
  size_t moved = InputBatch(0, &batch, burst_);
  if (moved == 0) {
    return 0;
  }
  TransmitBatch(batch);
  return moved;
}

}  // namespace rb
