// Queue: the push-to-pull boundary. Drop-tail with fixed capacity, like
// Click's Queue element. Uses the lock-free SPSC ring, which is safe under
// RouteBricks' scheduling discipline (a queue sits between exactly one
// pushing core and one pulling core).
//
// Batch-native on both sides: PushBatch enqueues a whole burst (packets
// that do not fit are the *only* ones counted and released as drops), and
// PullBatch dequeues up to the caller's burst in one call — the handoff
// between a kp-sized poll burst and a kn-sized transmit burst.
#ifndef RB_CLICK_ELEMENTS_QUEUE_HPP_
#define RB_CLICK_ELEMENTS_QUEUE_HPP_

#include "click/element.hpp"
#include "netdev/ring.hpp"

namespace rb {

class QueueElement : public BatchElement {
 public:
  explicit QueueElement(size_t capacity = 1024);

  const char* class_name() const override { return "Queue"; }

  void PushBatch(int port, PacketBatch& batch) override;
  Packet* Pull(int port) override;
  size_t PullBatch(int port, PacketBatch* out, int max) override;

  // Adds an occupancy high-water gauge ("elem/<name>/occupancy_hw") on top
  // of the standard element counters.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  uint64_t highwater() const { return highwater_; }

 private:
  void NoteDepth();

  SpscRing<Packet*> ring_;
  uint64_t highwater_ = 0;
  telemetry::Gauge* tele_occupancy_hw_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_QUEUE_HPP_
