// Queue: the push-to-pull boundary. Drop-tail with fixed capacity, like
// Click's Queue element. Uses the lock-free SPSC ring, which is safe under
// RouteBricks' scheduling discipline (a queue sits between exactly one
// pushing core and one pulling core).
#ifndef RB_CLICK_ELEMENTS_QUEUE_HPP_
#define RB_CLICK_ELEMENTS_QUEUE_HPP_

#include "click/element.hpp"
#include "netdev/ring.hpp"

namespace rb {

class QueueElement : public Element {
 public:
  explicit QueueElement(size_t capacity = 1024);

  const char* class_name() const override { return "Queue"; }

  void Push(int port, Packet* p) override;
  Packet* Pull(int port) override;

  // Adds an occupancy high-water gauge ("elem/<name>/occupancy_hw") on top
  // of the standard element counters.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  uint64_t highwater() const { return highwater_; }

 private:
  SpscRing<Packet*> ring_;
  uint64_t highwater_ = 0;
  telemetry::Gauge* tele_occupancy_hw_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_QUEUE_HPP_
