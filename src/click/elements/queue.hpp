// Queue: the push-to-pull boundary. Drop-tail with fixed capacity, like
// Click's Queue element. Uses the lock-free SPSC ring, which is safe under
// RouteBricks' scheduling discipline (a queue sits between exactly one
// pushing core and one pulling core).
//
// Batch-native on both sides: PushBatch enqueues a whole burst (packets
// that do not fit are the *only* ones counted and released as drops), and
// PullBatch dequeues up to the caller's burst in one call — the handoff
// between a kp-sized poll burst and a kn-sized transmit burst.
//
// Overload control (DESIGN.md §12):
//  - High/low watermarks: when occupancy reaches `hi_watermark` the queue
//    raises a sticky Blocked() signal (PushHeadroom() == 0) that upstream
//    pollers (FromDevice) observe to shrink their poll burst; the signal
//    clears only when the *pull* side drains occupancy to `lo_watermark`,
//    giving hysteresis instead of flapping at the brim.
//  - CoDel AQM (Nichols & Jacobson, CACM 2012): instead of waiting for
//    tail-drop, the dequeue side measures per-packet sojourn time and
//    drops at an escalating rate (interval/sqrt(count)) while sojourn
//    stays above `target` for a full `interval`. The clock is injectable
//    so tests and the DES drive it deterministically.
//
// Latency plane (DESIGN.md §15): when a PathTracer is bound the queue
// stamps enqueue time for every packet (the same field CoDel uses) and, on
// dequeue, records a "<name>/deq" hop for sampled packets carrying the
// measured queueing wait — this is what splits per-hop residency into
// queueing wait vs downstream service time in exported traces. The
// last-dequeued sojourn is also published as "elem/<name>/wait_s" and the
// "<name>.wait" handler, the live feed for rb_top's wait sparkline.
#ifndef RB_CLICK_ELEMENTS_QUEUE_HPP_
#define RB_CLICK_ELEMENTS_QUEUE_HPP_

#include <atomic>

#include "click/element.hpp"
#include "netdev/ring.hpp"

namespace rb {

enum class AqmMode : uint8_t {
  kTailDrop,  // classic Click Queue: drop arrivals once full
  kCoDel,     // sojourn-time controlled drops on the dequeue side
};

struct QueueOptions {
  size_t capacity = 1024;
  // 0 disables watermarks (legacy behavior: never Blocked). When
  // hi_watermark > 0 and lo_watermark == 0, lo defaults to hi / 2.
  size_t hi_watermark = 0;
  size_t lo_watermark = 0;
  AqmMode aqm = AqmMode::kTailDrop;
  double codel_target_s = 5e-3;      // acceptable standing sojourn
  double codel_interval_s = 100e-3;  // how long above target before drops
};

class QueueElement : public BatchElement {
 public:
  explicit QueueElement(size_t capacity = 1024);
  explicit QueueElement(const QueueOptions& options);

  const char* class_name() const override { return "Queue"; }

  void PushBatch(int port, PacketBatch& batch) override;
  Packet* Pull(int port) override;
  size_t PullBatch(int port, PacketBatch* out, int max) override;

  // Adds an occupancy high-water gauge ("elem/<name>/occupancy_hw"),
  // per-cause drop counters ("elem/<name>/drops/{queue_overflow,aqm}"),
  // and the "elem/<name>/wait_s" last-sojourn gauge on top of the
  // standard element counters. Binding a tracer turns on enqueue
  // stamping (see header comment).
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  // Queue introspection handlers (DESIGN.md §13) on top of the element
  // defaults: reads `occupancy`/`capacity`/`highwater`/`blocked`/`aqm`,
  // read-write `hi`/`lo` (watermarks; 0 disables) and
  // `codel_target_us`/`codel_interval_us` — the live-tuning surface for
  // an operator chasing a CoDel storm or a watermark misconfiguration
  // while traffic flows.
  void AddHandlers(telemetry::HandlerRegistry* handlers) override;

  // --- backpressure ---
  bool backpressure_boundary() const override { return true; }
  // Blocked -> 0. Unblocked with watermarks -> packets until hi. No
  // watermarks -> SIZE_MAX (legacy tail-drop queues exert no pressure).
  size_t PushHeadroom() const override;
  bool Blocked() const { return blocked_.load(std::memory_order_acquire); }

  // Clock used for CoDel sojourn measurement; defaults to
  // telemetry::NowSeconds (steady clock). Tests and DES-driven graphs
  // inject a deterministic source. Call before traffic flows.
  using ClockFn = double (*)();
  void set_clock(ClockFn clock);

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  uint64_t highwater() const { return highwater_.load(std::memory_order_relaxed); }
  // The configuration the queue was built with; the watermark and CoDel
  // knobs may have been live-tuned since (see the live accessors below).
  const QueueOptions& options() const { return opt_; }
  size_t hi_watermark() const { return hi_wm_.load(std::memory_order_relaxed); }
  size_t lo_watermark() const { return lo_wm_.load(std::memory_order_relaxed); }
  double codel_target_s() const { return codel_target_.load(std::memory_order_relaxed); }
  double codel_interval_s() const { return codel_interval_.load(std::memory_order_relaxed); }
  uint64_t overflow_drops() const { return overflow_drops_.load(std::memory_order_relaxed); }
  uint64_t aqm_drops() const { return aqm_drops_.load(std::memory_order_relaxed); }
  uint64_t blocked_events() const { return blocked_events_.load(std::memory_order_relaxed); }
  // Sojourn of the most recently dequeued (stamped) packet, seconds.
  double last_wait_s() const { return last_wait_s_.load(std::memory_order_relaxed); }

 private:
  void NoteDepth();
  void MaybeBlock();    // push side: raise Blocked at hi
  void MaybeUnblock();  // pull side: clear Blocked at lo
  // CoDel control law applied to one dequeued packet; true = drop it.
  bool CodelShouldDrop(double sojourn, double now);
  void DropOne(Packet* p, bool aqm);
  // Publishes one dequeued packet's sojourn (wait gauge + sparkline feed)
  // and, when sampled, its "<name>/deq" trace hop. Pull-side only.
  void NoteDequeue(Packet* p, double now);
  // Trace-hop pass over a burst that was popped via TryPopBurst (the
  // tail-drop fast path keeps its single ring synchronization; this runs
  // only when a tracer is bound).
  void NoteDequeueBurst(Packet* const* popped, size_t n);

  QueueOptions opt_;
  SpscRing<Packet*> ring_;
  ClockFn clock_;
  // Live-tunable copies of the watermark/CoDel knobs: written by control
  // handlers, read (relaxed) by the push/pull hot paths. The AQM *mode*
  // stays fixed — switching tail-drop to CoDel mid-run would dequeue
  // packets that were never sojourn-stamped.
  std::atomic<size_t> hi_wm_{0};
  std::atomic<size_t> lo_wm_{0};
  std::atomic<double> codel_target_{0};
  std::atomic<double> codel_interval_{0};
  // Sticky watermark state: set by the pushing core (release) once
  // occupancy reaches hi, cleared by the pulling core (release) once it
  // drains to lo; pollers read with acquire. Both transitions are
  // single-writer on their own side.
  std::atomic<bool> blocked_{false};

  // True when arrivals get enqueue-time stamps: CoDel always, or any
  // queue with a bound tracer (wait decomposition needs the stamp).
  bool stamp_sojourn_ = false;
  // "<name>/deq" hop point, interned at BindTelemetry time (the name is
  // final by then) so the dequeue path never builds strings.
  telemetry::ScopeId deq_scope_ = telemetry::kInvalidScope;

  // CoDel state (pull-side only, single-writer).
  bool codel_dropping_ = false;
  double codel_first_above_ = 0;  // when sojourn first exceeded target
  double codel_drop_next_ = 0;    // next scheduled drop while in dropping
  uint32_t codel_count_ = 0;      // drops this dropping episode

  // Relaxed atomics: single-writer on their own side of the queue, read
  // live by control-socket handlers.
  std::atomic<uint64_t> highwater_{0};
  std::atomic<uint64_t> overflow_drops_{0};
  std::atomic<uint64_t> aqm_drops_{0};
  std::atomic<uint64_t> blocked_events_{0};
  std::atomic<double> last_wait_s_{0};
  telemetry::Gauge* tele_occupancy_hw_ = nullptr;
  telemetry::Gauge* tele_wait_ = nullptr;
  telemetry::Counter* tele_overflow_drops_ = nullptr;
  telemetry::Counter* tele_aqm_drops_ = nullptr;
  telemetry::Counter* tele_blocked_events_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_ELEMENTS_QUEUE_HPP_
