#include "click/elements/misc.hpp"

namespace rb {

void CounterElement::Push(int /*port*/, Packet* p) {
  counters_.AddPacket(p->wire_bytes());
  Output(0, p);
}

Packet* CounterElement::Pull(int /*port*/) {
  Packet* p = Input(0);
  if (p != nullptr) {
    counters_.AddPacket(p->wire_bytes());
  }
  return p;
}

void Discard::Push(int /*port*/, Packet* p) {
  count_++;
  PacketPool::Release(p);
}

void Tee::Push(int /*port*/, Packet* p) {
  for (int out = 1; out < n_outputs(); ++out) {
    Packet* copy = p->origin_pool() != nullptr ? p->origin_pool()->Alloc() : nullptr;
    if (copy == nullptr) {
      continue;  // pool exhausted; counted in PacketPool::alloc_failures
    }
    copy->SetPayload(p->data(), p->length());
    copy->set_arrival_time(p->arrival_time());
    copy->set_input_port(p->input_port());
    copy->set_flow_hash(p->flow_hash());
    copy->set_vlb_phase(p->vlb_phase());
    copy->set_output_node(p->output_node());
    copy->set_flow_id(p->flow_id());
    copy->set_flow_seq(p->flow_seq());
    copy->set_paint(p->paint());
    Output(out, copy);
  }
  Output(0, p);
}

void Paint::Push(int /*port*/, Packet* p) {
  p->set_paint(color_);
  Output(0, p);
}

void PaintSwitch::Push(int /*port*/, Packet* p) {
  int out = p->paint();
  if (out >= n_outputs()) {
    out = n_outputs() - 1;
  }
  Output(out, p);
}

void SetFlowHash::Push(int /*port*/, Packet* p) {
  FlowKey key;
  if (ExtractFlowKey(*p, &key)) {
    p->set_flow_hash(FlowHash32(key));
  }
  Output(0, p);
}

}  // namespace rb
