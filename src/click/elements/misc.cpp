#include "click/elements/misc.hpp"

namespace rb {

void CounterElement::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    counters_.AddPacket(p->wire_bytes());
  }
  OutputBatch(0, batch);
}

Packet* CounterElement::Pull(int /*port*/) {
  Packet* p = Input(0);
  if (p != nullptr) {
    counters_.AddPacket(p->wire_bytes());
  }
  return p;
}

size_t CounterElement::PullBatch(int /*port*/, PacketBatch* out, int max) {
  const uint32_t before = out->size();
  size_t moved = InputBatch(0, out, max);
  for (uint32_t i = before; i < out->size(); ++i) {
    counters_.AddPacket((*out)[i]->wire_bytes());
  }
  return moved;
}

void Discard::PushBatch(int /*port*/, PacketBatch& batch) {
  count_ += batch.size();
  batch.ReleaseAll();
}

void Tee::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    for (int out = 1; out < n_outputs(); ++out) {
      Packet* copy = p->origin_pool() != nullptr ? p->origin_pool()->Alloc() : nullptr;
      if (copy == nullptr) {
        continue;  // pool exhausted; counted in PacketPool::alloc_failures
      }
      copy->SetPayload(p->data(), p->length());
      copy->set_arrival_time(p->arrival_time());
      copy->set_input_port(p->input_port());
      copy->set_flow_hash(p->flow_hash());
      copy->set_vlb_phase(p->vlb_phase());
      copy->set_output_node(p->output_node());
      copy->set_flow_id(p->flow_id());
      copy->set_flow_seq(p->flow_seq());
      copy->set_paint(p->paint());
      lanes_[static_cast<size_t>(out)].PushBack(copy);
    }
  }
  for (int out = 1; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
  OutputBatch(0, batch);
}

void Paint::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    p->set_paint(color_);
  }
  OutputBatch(0, batch);
}

void PaintSwitch::PushBatch(int /*port*/, PacketBatch& batch) {
  const int last = n_outputs() - 1;
  for (Packet* p : batch) {
    int out = p->paint();
    if (out > last) {
      out = last;
    }
    lanes_[static_cast<size_t>(out)].PushBack(p);
  }
  batch.Clear();
  for (int out = 0; out < n_outputs(); ++out) {
    OutputBatch(out, lanes_[static_cast<size_t>(out)]);
  }
}

void SetFlowHash::PushBatch(int /*port*/, PacketBatch& batch) {
  for (Packet* p : batch) {
    FlowKey key;
    if (ExtractFlowKey(*p, &key)) {
      p->set_flow_hash(FlowHash32(key));
    }
  }
  OutputBatch(0, batch);
}

}  // namespace rb
