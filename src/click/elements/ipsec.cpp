#include "click/elements/ipsec.hpp"

namespace rb {

#if defined(RB_PROFILE) && RB_PROFILE
namespace {
// Phase scopes (pipeline -> element -> phase): the AES/ESP work split out
// from the element's handoff overhead — the §4.3 "app vs packet handling"
// decomposition for the IPsec application.
telemetry::ScopeId EncryptPhase() {
  static const telemetry::ScopeId id = telemetry::InternScopeName("phase/esp_encrypt");
  return id;
}
telemetry::ScopeId DecryptPhase() {
  static const telemetry::ScopeId id = telemetry::InternScopeName("phase/esp_decrypt");
  return id;
}
}  // namespace
#endif

IpsecEncrypt::IpsecEncrypt(const EspConfig& config) : Element(1, 2), tunnel_(config) {}

void IpsecEncrypt::Push(int /*port*/, Packet* p) {
  bool ok;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    RB_PROF_SCOPE(EncryptPhase());
#endif
    ok = tunnel_.Encapsulate(p);
  }
  if (ok) {
    encrypted_++;
    Output(0, p);
  } else {
    Output(1, p);
  }
}

IpsecDecrypt::IpsecDecrypt(const EspConfig& config) : Element(1, 2), tunnel_(config) {}

void IpsecDecrypt::Push(int /*port*/, Packet* p) {
  bool ok;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    RB_PROF_SCOPE(DecryptPhase());
#endif
    ok = tunnel_.Decapsulate(p);
  }
  if (ok) {
    decrypted_++;
    Output(0, p);
  } else {
    Output(1, p);
  }
}

}  // namespace rb
