#include "click/elements/ipsec.hpp"

namespace rb {

IpsecEncrypt::IpsecEncrypt(const EspConfig& config) : Element(1, 2), tunnel_(config) {}

void IpsecEncrypt::Push(int /*port*/, Packet* p) {
  if (tunnel_.Encapsulate(p)) {
    encrypted_++;
    Output(0, p);
  } else {
    Output(1, p);
  }
}

IpsecDecrypt::IpsecDecrypt(const EspConfig& config) : Element(1, 2), tunnel_(config) {}

void IpsecDecrypt::Push(int /*port*/, Packet* p) {
  if (tunnel_.Decapsulate(p)) {
    decrypted_++;
    Output(0, p);
  } else {
    Output(1, p);
  }
}

}  // namespace rb
