#include "click/elements/ipsec.hpp"

namespace rb {

#if defined(RB_PROFILE) && RB_PROFILE
namespace {
// Phase scopes (pipeline -> element -> phase): the AES/ESP work split out
// from the element's handoff overhead — the §4.3 "app vs packet handling"
// decomposition for the IPsec application.
telemetry::ScopeId EncryptPhase() {
  static const telemetry::ScopeId id = telemetry::InternScopeName("phase/esp_encrypt");
  return id;
}
telemetry::ScopeId DecryptPhase() {
  static const telemetry::ScopeId id = telemetry::InternScopeName("phase/esp_decrypt");
  return id;
}
}  // namespace
#endif

IpsecEncrypt::IpsecEncrypt(const EspConfig& config) : BatchElement(1, 2), tunnel_(config) {}

void IpsecEncrypt::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch fail;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    RB_PROF_SCOPE(EncryptPhase());
#endif
    for (Packet* p : batch) {
      if (tunnel_.Encapsulate(p)) {
        ok.PushBack(p);
      } else {
        fail.PushBack(p);
      }
    }
  }
  batch.Clear();
  encrypted_ += ok.size();
  OutputBatch(0, ok);
  OutputBatch(1, fail);
}

IpsecDecrypt::IpsecDecrypt(const EspConfig& config) : BatchElement(1, 2), tunnel_(config) {}

void IpsecDecrypt::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch fail;
  {
#if defined(RB_PROFILE) && RB_PROFILE
    RB_PROF_SCOPE(DecryptPhase());
#endif
    for (Packet* p : batch) {
      if (tunnel_.Decapsulate(p)) {
        ok.PushBack(p);
      } else {
        fail.PushBack(p);
      }
    }
  }
  batch.Clear();
  decrypted_ += ok.size();
  OutputBatch(0, ok);
  OutputBatch(1, fail);
}

}  // namespace rb
