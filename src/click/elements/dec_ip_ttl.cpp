#include "click/elements/dec_ip_ttl.hpp"

#include "packet/checksum.hpp"
#include "packet/headers.hpp"

namespace rb {

void DecIpTtl::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch ok;
  PacketBatch expired;
  PacketBatch runts;
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      // The TTL rewrite dirties the header line; prefetch the next one so
      // the read-modify-write doesn't serialize on a miss per packet.
      PrefetchPacketHeaders(batch[i + 1]);
    }
    Packet* p = batch[i];
    if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
      runts.PushBack(p);
      continue;
    }
    Ipv4View ip{p->data() + EthernetView::kSize};
    if (ip.ttl() <= 1) {
      expired.PushBack(p);
      continue;
    }
    // TTL and protocol share a 16-bit checksum word: old = (ttl << 8) |
    // proto. Update the checksum incrementally instead of recomputing.
    uint16_t old_word = static_cast<uint16_t>((ip.ttl() << 8) | ip.protocol());
    ip.set_ttl(ip.ttl() - 1);
    uint16_t new_word = static_cast<uint16_t>((ip.ttl() << 8) | ip.protocol());
    ip.set_checksum(ChecksumUpdate16(ip.checksum(), old_word, new_word));
    ok.PushBack(p);
  }
  batch.Clear();
  expired_ += expired.size();
  DropBatch(runts);
  OutputBatch(0, ok);
  OutputBatch(1, expired);
}

}  // namespace rb
