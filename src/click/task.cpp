#include "click/task.hpp"

#include "click/element.hpp"

namespace rb {

Task::Task(Element* element, int home_core)
    : element_(element),
      home_core_(home_core),
      prof_scope_(telemetry::InternScopeName(
          element != nullptr ? "task/" + element->name() : std::string("task/anon"))) {}

}  // namespace rb
