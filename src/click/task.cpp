#include "click/task.hpp"

namespace rb {

Task::Task(Element* element, int home_core) : element_(element), home_core_(home_core) {}

}  // namespace rb
