// A parser for the Click router configuration language (the declarative
// syntax of Kohler et al. that the paper's programmability story builds
// on — §8: "our only intervention was to enforce a specific
// element-to-core allocation").
//
// Supported subset:
//
//   // comments and /* block comments */
//   src :: FromDevice(0, 0, 32);        // declarations: name :: Class(args)
//   check :: CheckIPHeader;
//   src -> check -> Queue(1024) -> ToDevice(1, 0);   // chains, inline
//   lookup [1] -> [0] drop;             // explicit port selectors
//
// Classes: FromDevice(port, queue [, kp [, core]]), ToDevice(port, queue
// [, burst [, core]]), Queue([capacity]), CheckIPHeader, DecIPTTL,
// IPLookup(n_next_hops), EtherClassifier, IpProtoClassifier(p0, p1, ...),
// Classifier(pattern, ...) — Click pattern syntax ("12/0800 23/06", "-"),
// compiled to a MatchProgram, one output per pattern, no match drops —
// HashSwitch(n), RoundRobinSwitch(n), Counter, Discard, Tee(n), Paint(c),
// PaintSwitch(n), StripEther, IPsecEncrypt, IPsecDecrypt, SetFlowHash,
// Nat(EXTERNAL a.b.c.d, BASE_PORT n, CAPACITY n, SHARDS n, HI f, LO f,
// IDLE_MS n), FlowPolicer(RATE pps, BURST n, CAPACITY n, MODE
// POLICE|FIREWALL, SHARDS n, HI f, LO f, IDLE_MS n).
//
// Device indices resolve against the ConfigContext's port list; IPLookup
// uses the context's routing table and IPsec* the context's ESP config.
#ifndef RB_CLICK_CONFIG_PARSER_HPP_
#define RB_CLICK_CONFIG_PARSER_HPP_

#include <map>
#include <string>
#include <vector>

#include "click/router.hpp"
#include "crypto/esp.hpp"
#include "lookup/lpm.hpp"
#include "netdev/nic.hpp"

namespace rb {

struct ConfigContext {
  std::vector<NicPort*> ports;     // FromDevice/ToDevice indices
  const LpmTable* table = nullptr;  // IPLookup
  EspConfig esp;                    // IPsecEncrypt/IPsecDecrypt
};

struct ConfigParseResult {
  bool ok = false;
  std::string error;                       // first error, with statement index
  std::map<std::string, Element*> elements;  // named elements (borrowed)
  int statements = 0;
  int connections = 0;
};

// Parses `text` and materializes the graph into `router` (which must not
// be initialized yet). On error, elements already added remain in the
// router but are unreachable; callers should discard the router.
ConfigParseResult ParseClickConfig(const std::string& text, Router* router,
                                   const ConfigContext& context);

}  // namespace rb

#endif  // RB_CLICK_CONFIG_PARSER_HPP_
