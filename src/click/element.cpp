#include "click/element.hpp"

#include "common/log.hpp"

namespace rb {

Element::Element(int n_inputs, int n_outputs)
    : inputs_(static_cast<size_t>(n_inputs)), outputs_(static_cast<size_t>(n_outputs)) {
  RB_CHECK(n_inputs >= 0 && n_outputs >= 0);
}

void Element::Push(int /*port*/, Packet* p) { Drop(p); }

Packet* Element::Pull(int /*port*/) {
  // Pass-through default for single-input agnostic elements; elements with
  // no inputs return nullptr.
  if (n_inputs() >= 1) {
    return Input(0);
  }
  return nullptr;
}

void Element::Initialize(Router* /*router*/) {}

void Element::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                            const std::string& prefix) {
  if (!telemetry::Enabled()) {
    return;
  }
  if (registry != nullptr) {
    tele_packets_ = registry->GetCounter(prefix + "elem/" + name_ + "/packets_out");
    tele_drops_ = registry->GetCounter(prefix + "elem/" + name_ + "/drops");
  }
  tracer_ = tracer;
}

void Element::Output(int port, Packet* p) {
  RB_CHECK(port >= 0 && port < n_outputs());
  PortRef& ref = outputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    Drop(p);
    return;
  }
  if (tele_packets_ != nullptr) {
    tele_packets_->Inc();
  }
  if (tracer_ != nullptr && p->trace_handle() != 0) {
    // Record the hop at the receiving element, timestamped on handoff.
    tracer_->Record(p->trace_handle(), ref.element->name(), telemetry::NowSeconds());
  }
  // Cycle attribution: the downstream Push (and everything it pushes in
  // turn) runs under the receiving element's scope, so nested handoffs
  // build the pipeline -> element hierarchy automatically.
  RB_PROF_SCOPE(ref.element->profile_scope());
  RB_PROF_WORK(1, p->length());
  ref.element->Push(ref.port, p);
}

void Element::Drop(Packet* p) {
  drops_++;
  if (tele_drops_ != nullptr) {
    tele_drops_->Inc();
  }
  if (tracer_ != nullptr && p->trace_handle() != 0) {
    tracer_->Abandon(p->trace_handle(), name_ + "/drop", telemetry::NowSeconds());
  }
  PacketPool::Release(p);
}

Packet* Element::Input(int port) {
  RB_CHECK(port >= 0 && port < n_inputs());
  PortRef& ref = inputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    return nullptr;
  }
  // Pull-side cycles are charged to the upstream element being drained
  // (packets are counted on the push side only, to avoid double counting).
  RB_PROF_SCOPE(ref.element->profile_scope());
  return ref.element->Pull(ref.port);
}

}  // namespace rb
