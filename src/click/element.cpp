#include "click/element.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"

namespace rb {

Element::Element(int n_inputs, int n_outputs)
    : inputs_(static_cast<size_t>(n_inputs)), outputs_(static_cast<size_t>(n_outputs)) {
  RB_CHECK(n_inputs >= 0 && n_outputs >= 0);
}

void Element::Push(int /*port*/, Packet* p) { Drop(p); }

Packet* Element::Pull(int /*port*/) {
  // Pass-through default for single-input agnostic elements; elements with
  // no inputs return nullptr.
  if (n_inputs() >= 1) {
    return Input(0);
  }
  return nullptr;
}

void Element::PushBatch(int port, PacketBatch& batch) {
  // Per-packet fallback: a legacy element only overrides Push, so a batch
  // arriving from a batch-native upstream is drained one virtual call at a
  // time. Ownership of each packet transfers on the call, so the batch is
  // cleared first and iterated from a snapshot index.
  const uint32_t n = batch.size();
  for (uint32_t i = 0; i < n; ++i) {
    Push(port, batch[i]);
  }
  batch.Clear();
}

size_t Element::PullBatch(int port, PacketBatch* out, int max) {
  // Per-packet fallback for legacy pull elements.
  size_t moved = 0;
  while (moved < static_cast<size_t>(max) && !out->full()) {
    Packet* p = Pull(port);
    if (p == nullptr) {
      break;
    }
    out->PushBack(p);
    moved++;
  }
  return moved;
}

void Element::Initialize(Router* /*router*/) {}

bool Element::CompileMatch(program::MatchProgram* /*out*/) const { return false; }

void Element::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                            const std::string& prefix) {
  if (!telemetry::Enabled()) {
    return;
  }
  if (registry != nullptr) {
    tele_packets_ = registry->GetCounter(prefix + "elem/" + name_ + "/packets_out");
    tele_drops_ = registry->GetCounter(prefix + "elem/" + name_ + "/drops");
    tele_batch_ = registry->GetHistogram(
        prefix + "elem/" + name_ + "/batch_size",
        telemetry::HistogramOptions{0, static_cast<double>(PacketBatch::kCapacity), 64});
    tele_lat_drop_ = registry->GetLatencyHistogram(prefix + "lat/drop");
    ns_per_cycle_ = 1e9 / telemetry::CyclesPerSecond();
  }
  tracer_ = tracer;
}

void Element::AddHandlers(telemetry::HandlerRegistry* handlers) {
  RB_CHECK(handlers != nullptr);
  const std::string base = name_ + ".";
  handlers->AddRead(base + "config", [this] {
    return Format("class %s in %d out %d batch_native %d", class_name(), n_inputs(), n_outputs(),
                  batch_native() ? 1 : 0);
  });
  handlers->AddRead(base + "counts", [this] {
    // Packets out is only counted when telemetry is bound (the hot path
    // pays nothing otherwise); unbound reads report 0.
    const uint64_t v = tele_packets_ != nullptr ? tele_packets_->Value() : 0;
    return Format("%llu", static_cast<unsigned long long>(v));
  });
  handlers->AddRead(base + "drops", [this] {
    return Format("%llu", static_cast<unsigned long long>(drops()));
  });
  handlers->AddRead(base + "batch_size", [this] {
    if (tele_batch_ == nullptr) {
      return std::string("count=0");
    }
    telemetry::HistogramSnapshot s = tele_batch_->Snapshot();
    return Format("count=%llu mean=%.2f p50=%.1f p95=%.1f",
                  static_cast<unsigned long long>(s.count), s.mean(), s.Percentile(50),
                  s.Percentile(95));
  });
}

void Element::Output(int port, Packet* p) {
  RB_CHECK(port >= 0 && port < n_outputs());
  PortRef& ref = outputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    Drop(p);
    return;
  }
  if (tele_packets_ != nullptr) {
    tele_packets_->Inc();
  }
  if (tracer_ != nullptr && p->trace_handle() != 0) {
    // Record the hop at the receiving element, timestamped on handoff.
    tracer_->Record(p->trace_handle(), ref.element->profile_scope(),
                    telemetry::NowSeconds());
  }
  // Cycle attribution: the downstream Push (and everything it pushes in
  // turn) runs under the receiving element's scope, so nested handoffs
  // build the pipeline -> element hierarchy automatically.
  RB_PROF_SCOPE(ref.element->profile_scope());
  RB_PROF_WORK(1, p->length());
  ref.element->Push(ref.port, p);
}

void Element::OutputBatch(int port, PacketBatch& batch) {
  if (batch.empty()) {
    return;
  }
  RB_CHECK(port >= 0 && port < n_outputs());
  PortRef& ref = outputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    DropBatch(batch);
    return;
  }
  const uint32_t n = batch.size();
  if (tele_packets_ != nullptr) {
    tele_packets_->Add(n);
  }
  if (ref.element->tele_batch_ != nullptr) {
    // Attributed to the receiver: "elem/<name>/batch_size" is the
    // distribution of burst sizes each element sees arrive.
    ref.element->tele_batch_->Observe(static_cast<double>(n));
  }
  if (tracer_ != nullptr) {
    // Hops stay per-packet: each sampled path records its own handoff even
    // though the batch moves in one call.
    const double now = telemetry::NowSeconds();
    const telemetry::ScopeId to = ref.element->profile_scope();
    for (Packet* p : batch) {
      if (p->trace_handle() != 0) {
        tracer_->Record(p->trace_handle(), to, now);
      }
    }
  }
  // One profiler scope entry covers the whole burst — the per-batch
  // amortization the refactor exists for.
  RB_PROF_SCOPE(ref.element->profile_scope());
  RB_PROF_WORK(n, batch.TotalBytes());
  ref.element->PushBatch(ref.port, batch);
}

void Element::Drop(Packet* p) {
  drops_.fetch_add(1, std::memory_order_relaxed);
  telemetry::FrRecord(telemetry::FrEvent::kDrop, prof_scope_, 1);
  if (tele_drops_ != nullptr) {
    tele_drops_->Inc();
  }
  if (tele_lat_drop_ != nullptr && p->ingress_cycles() != 0) {
    // Ingress-to-drop latency: without this, drops fall out of the
    // latency plane and the egress percentiles look better under loss.
    uint64_t dc = telemetry::ReadCycles() - p->ingress_cycles();
    tele_lat_drop_->ObserveNs(
        static_cast<uint64_t>(static_cast<double>(dc) * ns_per_cycle_));
  }
  if (tracer_ != nullptr && p->trace_handle() != 0) {
    tracer_->Abandon(p->trace_handle(), drop_scope_, telemetry::NowSeconds());
  }
  PacketPool::Release(p);
}

void Element::DropBatch(PacketBatch& batch) {
  const uint32_t n = batch.size();
  if (n == 0) {
    return;
  }
  drops_.fetch_add(n, std::memory_order_relaxed);
  telemetry::FrRecord(telemetry::FrEvent::kDrop, prof_scope_, n);
  if (tele_drops_ != nullptr) {
    tele_drops_->Add(n);
  }
  if (tele_lat_drop_ != nullptr) {
    const uint64_t now_cycles = telemetry::ReadCycles();  // once per batch
    for (Packet* p : batch) {
      if (p->ingress_cycles() != 0) {
        uint64_t dc = now_cycles - p->ingress_cycles();
        tele_lat_drop_->ObserveNs(
            static_cast<uint64_t>(static_cast<double>(dc) * ns_per_cycle_));
      }
    }
  }
  if (tracer_ != nullptr) {
    const double now = telemetry::NowSeconds();
    for (Packet* p : batch) {
      if (p->trace_handle() != 0) {
        tracer_->Abandon(p->trace_handle(), drop_scope_, now);
      }
    }
  }
  batch.ReleaseAll();
}

Packet* Element::Input(int port) {
  RB_CHECK(port >= 0 && port < n_inputs());
  PortRef& ref = inputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    return nullptr;
  }
  // Pull-side cycles are charged to the upstream element being drained
  // (packets are counted on the push side only, to avoid double counting).
  RB_PROF_SCOPE(ref.element->profile_scope());
  return ref.element->Pull(ref.port);
}

size_t Element::InputBatch(int port, PacketBatch* out, int max) {
  RB_CHECK(port >= 0 && port < n_inputs());
  PortRef& ref = inputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    return 0;
  }
  RB_PROF_SCOPE(ref.element->profile_scope());
  return ref.element->PullBatch(ref.port, out, max);
}

void BatchElement::PushBatch(int /*port*/, PacketBatch& batch) { DropBatch(batch); }

}  // namespace rb
