#include "click/element.hpp"

#include "common/log.hpp"

namespace rb {

Element::Element(int n_inputs, int n_outputs)
    : inputs_(static_cast<size_t>(n_inputs)), outputs_(static_cast<size_t>(n_outputs)) {
  RB_CHECK(n_inputs >= 0 && n_outputs >= 0);
}

void Element::Push(int /*port*/, Packet* p) { Drop(p); }

Packet* Element::Pull(int /*port*/) {
  // Pass-through default for single-input agnostic elements; elements with
  // no inputs return nullptr.
  if (n_inputs() >= 1) {
    return Input(0);
  }
  return nullptr;
}

void Element::Initialize(Router* /*router*/) {}

void Element::Output(int port, Packet* p) {
  RB_CHECK(port >= 0 && port < n_outputs());
  PortRef& ref = outputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    Drop(p);
    return;
  }
  ref.element->Push(ref.port, p);
}

Packet* Element::Input(int port) {
  RB_CHECK(port >= 0 && port < n_inputs());
  PortRef& ref = inputs_[static_cast<size_t>(port)];
  if (!ref.connected()) {
    return nullptr;
  }
  return ref.element->Pull(ref.port);
}

}  // namespace rb
