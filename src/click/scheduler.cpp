#include "click/scheduler.hpp"

#include "common/log.hpp"

namespace rb {

ThreadScheduler::ThreadScheduler(Router* router, int num_cores) : router_(router) {
  RB_CHECK(router != nullptr);
  RB_CHECK(num_cores >= 1);
  per_core_.resize(static_cast<size_t>(num_cores));
  int rr = 0;
  for (const auto& task : router->tasks()) {
    int core = task->home_core();
    if (core < 0) {
      core = rr++ % num_cores;
    } else {
      core %= num_cores;
    }
    per_core_[static_cast<size_t>(core)].push_back(task.get());
  }
}

ThreadScheduler::~ThreadScheduler() {
  if (running_.load()) {
    Stop();
  }
}

void ThreadScheduler::Start() {
  RB_CHECK_MSG(!running_.load(), "scheduler already running");
  running_.store(true);
  for (int core = 0; core < num_cores(); ++core) {
    threads_.emplace_back([this, core] { WorkerLoop(core); });
  }
}

void ThreadScheduler::Stop() {
  running_.store(false);
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

void ThreadScheduler::WorkerLoop(int core) {
  auto& tasks = per_core_[static_cast<size_t>(core)];
  while (running_.load(std::memory_order_relaxed)) {
    for (Task* t : tasks) {
      t->RunOnce();
    }
  }
}

void ThreadScheduler::RunInline(size_t sweeps) {
  for (size_t i = 0; i < sweeps; ++i) {
    for (auto& tasks : per_core_) {
      for (Task* t : tasks) {
        t->RunOnce();
      }
    }
  }
}

}  // namespace rb
