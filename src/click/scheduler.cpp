#include "click/scheduler.hpp"

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace rb {

ThreadScheduler::ThreadScheduler(Router* router, int num_cores) : router_(router) {
  RB_CHECK(router != nullptr);
  RB_CHECK(num_cores >= 1);
  per_core_.resize(static_cast<size_t>(num_cores));
  int rr = 0;
  for (const auto& task : router->tasks()) {
    int core = task->home_core();
    if (core < 0) {
      core = rr++ % num_cores;
    } else {
      core %= num_cores;
    }
    per_core_[static_cast<size_t>(core)].push_back(task.get());
  }
}

ThreadScheduler::~ThreadScheduler() {
  if (running_.load()) {
    Stop();
  }
}

void ThreadScheduler::Start() {
  RB_CHECK_MSG(!running_.load(), "scheduler already running");
  running_.store(true);
  for (int core = 0; core < num_cores(); ++core) {
    threads_.emplace_back([this, core] { WorkerLoop(core); });
  }
}

void ThreadScheduler::Stop() {
  running_.store(false);
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

void ThreadScheduler::SetSampler(std::function<void()> fn, uint64_t every_sweeps) {
  RB_CHECK_MSG(!running_.load(), "set the sampler before Start()");
  RB_CHECK(every_sweeps >= 1);
  sampler_ = std::move(fn);
  sampler_every_ = every_sweeps;
}

void ThreadScheduler::WorkerLoop(int core) {
  // Tag this thread so sharded telemetry writers hit this core's slots.
  telemetry::SetThisCore(core);
  auto& tasks = per_core_[static_cast<size_t>(core)];
  uint64_t sweeps = 0;
  while (running_.load(std::memory_order_relaxed)) {
    for (Task* t : tasks) {
      t->RunOnce();
    }
    sweeps++;
    if (core == 0 && sampler_ && sweeps % sampler_every_ == 0) {
      sampler_();
    }
  }
}

void ThreadScheduler::RunInline(size_t sweeps) {
  for (size_t i = 0; i < sweeps; ++i) {
    for (size_t core = 0; core < per_core_.size(); ++core) {
      telemetry::SetThisCore(static_cast<int>(core));
      for (Task* t : per_core_[core]) {
        t->RunOnce();
      }
    }
    telemetry::SetThisCore(0);
    if (sampler_ && (i + 1) % sampler_every_ == 0) {
      sampler_();
    }
  }
}

}  // namespace rb
