#include "click/scheduler.hpp"

#include <chrono>
#include <cstdio>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rb {

ThreadScheduler::ThreadScheduler(Router* router, int num_cores) : router_(router) {
  RB_CHECK(router != nullptr);
  RB_CHECK(num_cores >= 1);
  per_core_.resize(static_cast<size_t>(num_cores));
  int rr = 0;
  for (const auto& task : router->tasks()) {
    int core = task->home_core();
    if (core < 0) {
      core = rr++ % num_cores;
    } else {
      core %= num_cores;
    }
    per_core_[static_cast<size_t>(core)].push_back(task.get());
  }
}

ThreadScheduler::~ThreadScheduler() {
  if (running_.load()) {
    Stop();
  }
}

void ThreadScheduler::Start() {
  RB_CHECK_MSG(!running_.load(), "scheduler already running");
  running_.store(true);
  if (wd_enabled_) {
    // Re-stamp baselines at start so setup time between EnableWatchdog
    // and Start is not charged as a stall.
    const double now = WatchdogNow();
    for (auto& w : wd_tasks_) {
      w.last_progress = w.task->progress();
      w.last_change = now;
      w.stalled = false;
    }
    wd_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  for (int core = 0; core < num_cores(); ++core) {
    threads_.emplace_back([this, core] { WorkerLoop(core); });
  }
}

void ThreadScheduler::Stop() {
  running_.store(false);
  if (wd_thread_.joinable()) {
    wd_thread_.join();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

void ThreadScheduler::SetSampler(std::function<void()> fn, uint64_t every_sweeps) {
  RB_CHECK_MSG(!running_.load(), "set the sampler before Start()");
  RB_CHECK(every_sweeps >= 1);
  sampler_ = std::move(fn);
  sampler_every_ = every_sweeps;
}

double ThreadScheduler::WatchdogNow() const {
  return wd_cfg_.clock != nullptr ? wd_cfg_.clock() : telemetry::NowSeconds();
}

void ThreadScheduler::EnableWatchdog(const WatchdogConfig& config) {
  RB_CHECK_MSG(!running_.load(), "enable the watchdog before Start()");
  RB_CHECK(config.max_stall_s > 0 && config.check_interval_s > 0);
  wd_cfg_ = config;
  wd_enabled_ = true;
  wd_tasks_.clear();
  const double now = WatchdogNow();
  for (const auto& tasks : per_core_) {
    for (Task* t : tasks) {
      wd_tasks_.push_back({t, t->progress(), now, false});
    }
  }
  if (telemetry::MetricRegistry* reg =
          router_ != nullptr ? router_->telemetry_registry() : nullptr) {
    wd_tele_checks_ = reg->GetCounter("sched/watchdog/checks");
    wd_tele_stalls_ = reg->GetCounter("sched/watchdog/stall_events");
    wd_tele_max_stall_ = reg->GetGauge("sched/watchdog/max_stall_s");
  }
}

size_t ThreadScheduler::WatchdogCheckNow() {
  RB_CHECK_MSG(wd_enabled_, "watchdog not enabled");
  const double now = WatchdogNow();
  size_t stalled = 0;
  for (auto& w : wd_tasks_) {
    const uint64_t p = w.task->progress();
    if (p != w.last_progress) {
      w.last_progress = p;
      w.last_change = now;
      w.stalled = false;
      continue;
    }
    const double stall = now - w.last_change;
    if (wd_tele_max_stall_ != nullptr) {
      wd_tele_max_stall_->UpdateMax(stall);
    }
    if (stall < wd_cfg_.max_stall_s) {
      continue;
    }
    stalled++;
    if (!w.stalled) {
      // Edge: report each stall episode once, not once per scan.
      w.stalled = true;
      wd_stall_events_.fetch_add(1, std::memory_order_relaxed);
      if (wd_tele_stalls_ != nullptr) {
        wd_tele_stalls_->Inc();
      }
      const char* name =
          w.task->element() != nullptr ? w.task->element()->name().c_str() : "<unnamed>";
      std::fprintf(stderr, "[watchdog] task '%s' made no progress for %.3fs (limit %.3fs)\n",
                   name, stall, wd_cfg_.max_stall_s);
      telemetry::FrRecord(
          telemetry::FrEvent::kWatchdogStall,
          w.task->element() != nullptr ? w.task->element()->profile_scope()
                                       : telemetry::kInvalidScope,
          static_cast<uint64_t>(stall * 1e3), static_cast<uint64_t>(wd_cfg_.max_stall_s * 1e3));
      // Black-box dump before any fatal abort: the tail of recent events
      // (drops, blocked edges, reroutes) is the triage record for *why*
      // the task stopped making progress.
      if (telemetry::FlightRecorder* fr = telemetry::FlightRecorder::Installed()) {
        std::fprintf(stderr, "--- flight recorder (watchdog stall: %s) ---\n", name);
        fr->DumpTo(stderr, 64);
        std::fprintf(stderr, "--- end flight recorder ---\n");
        if (!wd_cfg_.flight_dump_path.empty()) {
          if (fr->DumpToFile(wd_cfg_.flight_dump_path)) {
            std::fprintf(stderr, "[watchdog] flight recorder dumped to %s\n",
                         wd_cfg_.flight_dump_path.c_str());
          }
        }
      }
      RB_CHECK_MSG(!wd_cfg_.fatal, "watchdog: stuck or starved task (fatal mode)");
    }
  }
  telemetry::FrRecord(telemetry::FrEvent::kWatchdogStamp, telemetry::kInvalidScope,
                      static_cast<uint64_t>(stalled));
  if (wd_tele_checks_ != nullptr) {
    wd_tele_checks_->Inc();
  }
  return stalled;
}

void ThreadScheduler::AddHandlers(telemetry::HandlerRegistry* handlers) {
  RB_CHECK(handlers != nullptr);
  handlers->AddRead("sched.cores", [this] { return Format("%d", num_cores()); });
  handlers->AddRead("sched.running",
                    [this] { return std::string(running_.load(std::memory_order_relaxed) ? "1" : "0"); });
  handlers->AddRead("sched.watchdog_stalls", [this] {
    return Format("%llu", static_cast<unsigned long long>(watchdog_stall_events()));
  });
}

void ThreadScheduler::WatchdogLoop() {
  telemetry::SetThisCore(num_cores());  // own shard, off the worker cores
  const auto period =
      std::chrono::duration<double>(wd_cfg_.check_interval_s);
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    if (!running_.load(std::memory_order_relaxed)) {
      break;
    }
    WatchdogCheckNow();
  }
}

void ThreadScheduler::WorkerLoop(int core) {
  // Tag this thread so sharded telemetry writers hit this core's slots.
  telemetry::SetThisCore(core);
  auto& tasks = per_core_[static_cast<size_t>(core)];
  uint64_t sweeps = 0;
  while (running_.load(std::memory_order_relaxed)) {
    for (Task* t : tasks) {
      t->RunOnce();
    }
    sweeps++;
    if (core == 0 && sampler_ && sweeps % sampler_every_ == 0) {
      sampler_();
    }
  }
}

void ThreadScheduler::RunInline(size_t sweeps) {
  for (size_t i = 0; i < sweeps; ++i) {
    for (size_t core = 0; core < per_core_.size(); ++core) {
      telemetry::SetThisCore(static_cast<int>(core));
      for (Task* t : per_core_[core]) {
        t->RunOnce();
      }
    }
    telemetry::SetThisCore(0);
    if (sampler_ && (i + 1) % sampler_every_ == 0) {
      sampler_();
    }
  }
}

}  // namespace rb
