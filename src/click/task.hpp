// A schedulable unit of work: one polling loop iteration of an element
// (FromDevice poll, ToDevice drain). Tasks are created by elements during
// Initialize and statically assigned to worker threads ("cores") by the
// ThreadScheduler — the paper's static thread-to-core assignment (§4.2).
#ifndef RB_CLICK_TASK_HPP_
#define RB_CLICK_TASK_HPP_

#include <cstdint>
#include <string>

namespace rb {

class Element;

class Task {
 public:
  // `home_core` is a hint for the scheduler (-1 = any core).
  Task(Element* element, int home_core = -1);
  virtual ~Task() = default;

  // Runs one iteration; returns the number of packets moved (0 = idle).
  virtual size_t Run() = 0;

  Element* element() const { return element_; }
  int home_core() const { return home_core_; }
  void set_home_core(int core) { home_core_ = core; }

  uint64_t runs() const { return runs_; }
  uint64_t idle_runs() const { return idle_runs_; }
  uint64_t work() const { return work_; }

  // Bookkeeping wrapper used by schedulers.
  size_t RunOnce() {
    size_t n = Run();
    runs_++;
    if (n == 0) {
      idle_runs_++;
    }
    work_ += n;
    return n;
  }

 private:
  Element* element_;
  int home_core_;
  uint64_t runs_ = 0;
  uint64_t idle_runs_ = 0;
  uint64_t work_ = 0;
};

}  // namespace rb

#endif  // RB_CLICK_TASK_HPP_
