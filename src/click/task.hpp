// A schedulable unit of work: one polling loop iteration of an element
// (FromDevice poll, ToDevice drain). Tasks are created by elements during
// Initialize and statically assigned to worker threads ("cores") by the
// ThreadScheduler — the paper's static thread-to-core assignment (§4.2).
#ifndef RB_CLICK_TASK_HPP_
#define RB_CLICK_TASK_HPP_

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace rb {

class Element;

class Task {
 public:
  // `home_core` is a hint for the scheduler (-1 = any core).
  Task(Element* element, int home_core = -1);
  virtual ~Task() = default;

  // Runs one iteration; returns the number of packets moved (0 = idle).
  virtual size_t Run() = 0;

  Element* element() const { return element_; }
  int home_core() const { return home_core_; }
  void set_home_core(int core) { home_core_ = core; }

  uint64_t runs() const { return runs_; }
  uint64_t idle_runs() const { return idle_runs_; }
  uint64_t work() const { return work_; }

  // Scheduling-progress heartbeat for the watchdog: bumped on every
  // RunOnce, idle or not — a scheduled-but-idle task is making progress,
  // while a starved task (never scheduled) or one stuck inside Run()
  // is not. The plain runs_ counter stays single-writer; this atomic is
  // what the watchdog thread samples (relaxed: a stale read only delays
  // detection by one check interval).
  uint64_t progress() const { return progress_.load(std::memory_order_relaxed); }

  // Mirrors the run/work bookkeeping into shared registry counters (the
  // cycles-proxy: polling iterations and packets moved per task). The
  // plain members stay single-writer; the registry counters are what
  // concurrent samplers may read. `burst` (optional) observes the batch
  // size of every non-idle run — the distribution of poll/drain bursts.
  void BindTelemetry(telemetry::Counter* runs, telemetry::Counter* work,
                     telemetry::ShardedHistogram* burst = nullptr) {
    tele_runs_ = runs;
    tele_work_ = work;
    tele_burst_ = burst;
  }

  // Bookkeeping wrapper used by schedulers.
  size_t RunOnce() {
    size_t n;
    {
      // Top-level cycle scope: one per polling task ("task/<element>"),
      // the pipeline roots of the profiler's hierarchy.
      RB_PROF_SCOPE(prof_scope_);
      n = Run();
      RB_PROF_WORK(n, 0);
    }
    runs_++;
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (n == 0) {
      idle_runs_++;
    }
    work_ += n;
    if (tele_runs_ != nullptr) {
      tele_runs_->Inc();
      if (n > 0) {
        tele_work_->Add(n);
        if (tele_burst_ != nullptr) {
          tele_burst_->Observe(static_cast<double>(n));
        }
      }
    }
    return n;
  }

 private:
  Element* element_;
  int home_core_;
  telemetry::ScopeId prof_scope_ = telemetry::kInvalidScope;
  uint64_t runs_ = 0;
  uint64_t idle_runs_ = 0;
  uint64_t work_ = 0;
  std::atomic<uint64_t> progress_{0};
  telemetry::Counter* tele_runs_ = nullptr;
  telemetry::Counter* tele_work_ = nullptr;
  telemetry::ShardedHistogram* tele_burst_ = nullptr;
};

}  // namespace rb

#endif  // RB_CLICK_TASK_HPP_
