#include "click/config_parser.hpp"

#include <cctype>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/classifier.hpp"
#include "click/elements/dec_ip_ttl.hpp"
#include "click/elements/ether.hpp"
#include "click/elements/flow_policer.hpp"
#include "click/elements/from_device.hpp"
#include "click/elements/ip_lookup.hpp"
#include "click/elements/ipsec.hpp"
#include "click/elements/misc.hpp"
#include "click/elements/nat.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "common/strings.hpp"
#include "program/compiled_classifier.hpp"

namespace rb {
namespace {

std::string StripComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') {
        i++;
      }
    } else if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        i++;
      }
      i = i + 2 <= text.size() ? i + 2 : text.size();
    } else {
      out += text[i++];
    }
  }
  return out;
}

bool IsIdentifier(const std::string& s) {
  if (s.empty() || !(isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

// Splits "Class(arg, arg)" into class name and args; returns false if the
// text is not of that shape (a bare identifier gets empty args).
bool SplitClassSpec(const std::string& text, std::string* class_name,
                    std::vector<std::string>* args) {
  std::string s = Trim(text);
  size_t open = s.find('(');
  if (open == std::string::npos) {
    if (!IsIdentifier(s)) {
      return false;
    }
    *class_name = s;
    args->clear();
    return true;
  }
  if (s.back() != ')') {
    return false;
  }
  *class_name = Trim(s.substr(0, open));
  if (!IsIdentifier(*class_name)) {
    return false;
  }
  std::string inner = s.substr(open + 1, s.size() - open - 2);
  args->clear();
  if (!Trim(inner).empty()) {
    for (const std::string& a : Split(inner, ',')) {
      args->push_back(Trim(a));
    }
  }
  return true;
}

struct Builder {
  Router* router;
  const ConfigContext* ctx;
  std::string error;

  bool Fail(const std::string& msg) {
    if (error.empty()) {
      error = msg;
    }
    return false;
  }

  bool IntArg(const std::vector<std::string>& args, size_t i, long def, long* out) {
    if (i >= args.size()) {
      *out = def;
      return true;
    }
    char* end = nullptr;
    long v = strtol(args[i].c_str(), &end, 0);
    if (end == args[i].c_str() || *end != '\0') {
      return Fail(Format("bad integer argument '%s'", args[i].c_str()));
    }
    *out = v;
    return true;
  }

  // Splits a Click keyword argument ("KEY value") for elements that take
  // keyword args only (no positional form).
  bool KeywordArg(const char* elem, const std::string& arg, std::string* key,
                  std::string* val) {
    size_t sp = arg.find_first_of(" \t");
    if (sp == std::string::npos) {
      return Fail(Format("%s: expected 'KEY value', got '%s'", elem, arg.c_str()));
    }
    *key = Trim(arg.substr(0, sp));
    *val = Trim(arg.substr(sp));
    return true;
  }

  bool NumberVal(const char* elem, const std::string& key, const std::string& val,
                 double* out) {
    char* end = nullptr;
    double v = strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || v < 0) {
      return Fail(Format("%s: bad value '%s' for %s", elem, val.c_str(), key.c_str()));
    }
    *out = v;
    return true;
  }

  NicPort* Port(long index) {
    if (index < 0 || static_cast<size_t>(index) >= ctx->ports.size()) {
      Fail(Format("device index %ld out of range (%zu ports in context)", index,
                  ctx->ports.size()));
      return nullptr;
    }
    return ctx->ports[static_cast<size_t>(index)];
  }

  // Instantiates a class; returns nullptr on error.
  Element* Make(const std::string& class_name, const std::vector<std::string>& args) {
    long a0 = 0;
    long a1 = 0;
    long a2 = 0;
    long a3 = 0;
    if (class_name == "FromDevice") {
      if (args.size() < 2) {
        Fail("FromDevice needs (port, queue [, kp [, core]])");
        return nullptr;
      }
      if (!IntArg(args, 0, 0, &a0) || !IntArg(args, 1, 0, &a1) || !IntArg(args, 2, 32, &a2) ||
          !IntArg(args, 3, -1, &a3)) {
        return nullptr;
      }
      NicPort* port = Port(a0);
      if (port == nullptr) {
        return nullptr;
      }
      if (a1 < 0 || a1 >= port->num_rx_queues()) {
        Fail(Format("FromDevice queue %ld out of range", a1));
        return nullptr;
      }
      return router->Add<FromDevice>(port, static_cast<uint16_t>(a1), static_cast<uint16_t>(a2),
                                     static_cast<int>(a3));
    }
    if (class_name == "ToDevice") {
      if (args.size() < 2) {
        Fail("ToDevice needs (port, queue [, burst [, core]])");
        return nullptr;
      }
      if (!IntArg(args, 0, 0, &a0) || !IntArg(args, 1, 0, &a1) || !IntArg(args, 2, 32, &a2) ||
          !IntArg(args, 3, -1, &a3)) {
        return nullptr;
      }
      NicPort* port = Port(a0);
      if (port == nullptr) {
        return nullptr;
      }
      if (a1 < 0 || a1 >= port->num_tx_queues()) {
        Fail(Format("ToDevice queue %ld out of range", a1));
        return nullptr;
      }
      return router->Add<ToDevice>(port, static_cast<uint16_t>(a1), static_cast<uint16_t>(a2),
                                   static_cast<int>(a3));
    }
    if (class_name == "Queue") {
      // Queue([capacity][, KEY value ...]) — Click-style keyword args:
      //   Queue(1024, HI 768, LO 384)            watermark backpressure
      //   Queue(CAPACITY 512, AQM codel, TARGET_US 500, INTERVAL_US 10000)
      QueueOptions opt;
      for (size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        size_t sp = arg.find_first_of(" \t");
        if (sp == std::string::npos) {
          if (i != 0) {
            Fail(Format("Queue: positional arg '%s' must come first", arg.c_str()));
            return nullptr;
          }
          if (!IntArg(args, 0, 1024, &a0)) {
            return nullptr;
          }
          opt.capacity = static_cast<size_t>(a0);
          continue;
        }
        std::string key = Trim(arg.substr(0, sp));
        std::string val = Trim(arg.substr(sp));
        long num = 0;
        if (key == "AQM") {
          std::string mode;
          for (char c : val) {
            mode.push_back(static_cast<char>(tolower(static_cast<unsigned char>(c))));
          }
          if (mode == "codel") {
            opt.aqm = AqmMode::kCoDel;
          } else if (mode == "droptail") {
            opt.aqm = AqmMode::kTailDrop;
          } else {
            Fail(Format("Queue: unknown AQM mode '%s'", val.c_str()));
            return nullptr;
          }
          continue;
        }
        char* end = nullptr;
        num = strtol(val.c_str(), &end, 0);
        if (end == val.c_str() || *end != '\0' || num < 0) {
          Fail(Format("Queue: bad value '%s' for %s", val.c_str(), key.c_str()));
          return nullptr;
        }
        if (key == "CAPACITY") {
          opt.capacity = static_cast<size_t>(num);
        } else if (key == "HI") {
          opt.hi_watermark = static_cast<size_t>(num);
        } else if (key == "LO") {
          opt.lo_watermark = static_cast<size_t>(num);
        } else if (key == "TARGET_US") {
          opt.codel_target_s = static_cast<double>(num) * 1e-6;
        } else if (key == "INTERVAL_US") {
          opt.codel_interval_s = static_cast<double>(num) * 1e-6;
        } else {
          Fail(Format("Queue: unknown keyword '%s'", key.c_str()));
          return nullptr;
        }
      }
      // Validate here (Fail, not RB_CHECK) so a bad config file reports an
      // error instead of aborting the process.
      if (opt.hi_watermark > opt.capacity) {
        Fail("Queue: HI watermark above capacity");
        return nullptr;
      }
      if (opt.hi_watermark > 0 && opt.lo_watermark >= opt.hi_watermark) {
        Fail("Queue: LO watermark must be below HI");
        return nullptr;
      }
      if (opt.hi_watermark == 0 && opt.lo_watermark > 0) {
        Fail("Queue: LO watermark requires HI");
        return nullptr;
      }
      if (opt.aqm == AqmMode::kCoDel && (opt.codel_target_s <= 0 || opt.codel_interval_s <= 0)) {
        Fail("Queue: CoDel TARGET_US/INTERVAL_US must be positive");
        return nullptr;
      }
      return router->Add<QueueElement>(opt);
    }
    if (class_name == "CheckIPHeader") {
      return router->Add<CheckIpHeader>();
    }
    if (class_name == "DecIPTTL") {
      return router->Add<DecIpTtl>();
    }
    if (class_name == "IPLookup") {
      if (ctx->table == nullptr) {
        Fail("IPLookup requires a routing table in the ConfigContext");
        return nullptr;
      }
      if (!IntArg(args, 0, 1, &a0)) {
        return nullptr;
      }
      return router->Add<IpLookup>(ctx->table, static_cast<int>(a0));
    }
    if (class_name == "EtherClassifier") {
      return router->Add<EtherClassifier>();
    }
    if (class_name == "Classifier") {
      // Click-style pattern classifier, compiled straight to a
      // MatchProgram: one output per pattern, first match wins, no match
      // drops. e.g. Classifier(12/0800 23/06, 12/0800, -).
      if (args.empty()) {
        Fail("Classifier needs at least one pattern");
        return nullptr;
      }
      program::MatchProgram prog;
      std::string perr;
      if (!program::CompileClassifierPatterns(args, &prog, &perr)) {
        Fail(Format("Classifier: %s", perr.c_str()));
        return nullptr;
      }
      return router->Add<CompiledClassifier>(std::move(prog), static_cast<int>(args.size()));
    }
    if (class_name == "IpProtoClassifier") {
      std::vector<uint8_t> protos;
      for (size_t i = 0; i < args.size(); ++i) {
        long v;
        if (!IntArg(args, i, 0, &v)) {
          return nullptr;
        }
        protos.push_back(static_cast<uint8_t>(v));
      }
      if (protos.empty()) {
        Fail("IpProtoClassifier needs at least one protocol number");
        return nullptr;
      }
      return router->Add<IpProtoClassifier>(protos);
    }
    if (class_name == "HashSwitch") {
      if (!IntArg(args, 0, 2, &a0)) {
        return nullptr;
      }
      return router->Add<HashSwitch>(static_cast<int>(a0));
    }
    if (class_name == "RoundRobinSwitch") {
      if (!IntArg(args, 0, 2, &a0)) {
        return nullptr;
      }
      return router->Add<RoundRobinSwitch>(static_cast<int>(a0));
    }
    if (class_name == "Counter") {
      return router->Add<CounterElement>();
    }
    if (class_name == "Discard") {
      return router->Add<Discard>();
    }
    if (class_name == "Tee") {
      if (!IntArg(args, 0, 2, &a0)) {
        return nullptr;
      }
      return router->Add<Tee>(static_cast<int>(a0));
    }
    if (class_name == "Paint") {
      if (!IntArg(args, 0, 0, &a0)) {
        return nullptr;
      }
      return router->Add<Paint>(static_cast<uint8_t>(a0));
    }
    if (class_name == "PaintSwitch") {
      if (!IntArg(args, 0, 2, &a0)) {
        return nullptr;
      }
      return router->Add<PaintSwitch>(static_cast<int>(a0));
    }
    if (class_name == "StripEther") {
      return router->Add<StripEther>();
    }
    if (class_name == "IPsecEncrypt") {
      return router->Add<IpsecEncrypt>(ctx->esp);
    }
    if (class_name == "IPsecDecrypt") {
      return router->Add<IpsecDecrypt>(ctx->esp);
    }
    if (class_name == "SetFlowHash") {
      return router->Add<SetFlowHash>();
    }
    if (class_name == "Nat") {
      // Nat(EXTERNAL a.b.c.d, BASE_PORT n, CAPACITY n, SHARDS n,
      //     HI f, LO f, IDLE_MS n) — keyword args only.
      NatOptions opt;
      for (size_t i = 0; i < args.size(); ++i) {
        std::string key, val;
        if (!KeywordArg("Nat", args[i], &key, &val)) {
          return nullptr;
        }
        if (key == "EXTERNAL") {
          if (!ParseIpv4(val, &opt.external_ip)) {
            Fail(Format("Nat: bad EXTERNAL address '%s'", val.c_str()));
            return nullptr;
          }
          continue;
        }
        double num = 0;
        if (!NumberVal("Nat", key, val, &num)) {
          return nullptr;
        }
        if (key == "BASE_PORT") {
          opt.base_port = static_cast<uint16_t>(num);
        } else if (key == "CAPACITY") {
          opt.capacity = static_cast<size_t>(num);
        } else if (key == "SHARDS") {
          opt.shards = static_cast<int>(num);
        } else if (key == "HI") {
          opt.hi_watermark = num;
        } else if (key == "LO") {
          opt.lo_watermark = num;
        } else if (key == "IDLE_MS") {
          opt.idle_timeout_ms = static_cast<uint32_t>(num);
        } else {
          Fail(Format("Nat: unknown keyword '%s'", key.c_str()));
          return nullptr;
        }
      }
      if (!(opt.hi_watermark > 0 && opt.hi_watermark <= 1.0 && opt.lo_watermark > 0 &&
            opt.lo_watermark < opt.hi_watermark)) {
        Fail("Nat: watermarks must satisfy 0 < LO < HI <= 1");
        return nullptr;
      }
      if (opt.base_port + opt.capacity > 65536) {
        Fail("Nat: CAPACITY does not fit the port space above BASE_PORT");
        return nullptr;
      }
      return router->Add<Nat>(opt);
    }
    if (class_name == "FlowPolicer") {
      // FlowPolicer(RATE pps, BURST n, CAPACITY n, MODE POLICE|FIREWALL,
      //             SHARDS n, HI f, LO f, IDLE_MS n) — keyword args only.
      FlowPolicerOptions opt;
      for (size_t i = 0; i < args.size(); ++i) {
        std::string key, val;
        if (!KeywordArg("FlowPolicer", args[i], &key, &val)) {
          return nullptr;
        }
        if (key == "MODE") {
          std::string mode;
          for (char c : val) {
            mode.push_back(static_cast<char>(toupper(static_cast<unsigned char>(c))));
          }
          if (mode == "POLICE") {
            opt.mode = PolicerMode::kPolice;
          } else if (mode == "FIREWALL") {
            opt.mode = PolicerMode::kFirewall;
          } else {
            Fail(Format("FlowPolicer: unknown MODE '%s'", val.c_str()));
            return nullptr;
          }
          continue;
        }
        double num = 0;
        if (!NumberVal("FlowPolicer", key, val, &num)) {
          return nullptr;
        }
        if (key == "RATE") {
          opt.rate_pps = static_cast<uint64_t>(num);
        } else if (key == "BURST") {
          opt.burst = static_cast<uint64_t>(num);
        } else if (key == "CAPACITY") {
          opt.capacity = static_cast<size_t>(num);
        } else if (key == "SHARDS") {
          opt.shards = static_cast<int>(num);
        } else if (key == "HI") {
          opt.hi_watermark = num;
        } else if (key == "LO") {
          opt.lo_watermark = num;
        } else if (key == "IDLE_MS") {
          opt.idle_timeout_ms = static_cast<uint32_t>(num);
        } else {
          Fail(Format("FlowPolicer: unknown keyword '%s'", key.c_str()));
          return nullptr;
        }
      }
      if (opt.rate_pps == 0 || opt.burst == 0) {
        Fail("FlowPolicer: RATE and BURST must be positive");
        return nullptr;
      }
      if (!(opt.hi_watermark > 0 && opt.hi_watermark <= 1.0 && opt.lo_watermark > 0 &&
            opt.lo_watermark < opt.hi_watermark)) {
        Fail("FlowPolicer: watermarks must satisfy 0 < LO < HI <= 1");
        return nullptr;
      }
      return router->Add<FlowPolicer>(opt);
    }
    Fail(Format("unknown element class '%s'", class_name.c_str()));
    return nullptr;
  }
};

// One endpoint of a connection hop: an element reference plus optional
// [port] selectors on either side.
struct Endpoint {
  Element* element = nullptr;
  int in_port = 0;
  int out_port = 0;
};

// Parses "name", "Class(args)", "[2] name", "name [1]", "[0] name [1]".
bool ParseEndpoint(Builder* b, std::map<std::string, Element*>* named, const std::string& raw,
                   Endpoint* out) {
  std::string s = Trim(raw);
  out->in_port = 0;
  out->out_port = 0;
  // Leading [n] = input port.
  if (!s.empty() && s.front() == '[') {
    size_t close = s.find(']');
    if (close == std::string::npos) {
      return b->Fail("unterminated [port] selector");
    }
    out->in_port = atoi(s.substr(1, close - 1).c_str());
    s = Trim(s.substr(close + 1));
  }
  // Trailing [n] = output port.
  if (!s.empty() && s.back() == ']') {
    size_t open = s.rfind('[');
    if (open == std::string::npos) {
      return b->Fail("unterminated [port] selector");
    }
    out->out_port = atoi(s.substr(open + 1, s.size() - open - 2).c_str());
    s = Trim(s.substr(0, open));
  }
  if (s.empty()) {
    return b->Fail("empty element reference in connection");
  }
  auto it = named->find(s);
  if (it != named->end()) {
    out->element = it->second;
    return true;
  }
  // Inline anonymous element: must look like a class spec and must not be
  // a bare lowercase identifier the user probably meant as a name.
  std::string class_name;
  std::vector<std::string> args;
  if (!SplitClassSpec(s, &class_name, &args)) {
    return b->Fail(Format("malformed element reference '%s'", s.c_str()));
  }
  if (s.find('(') == std::string::npos && !isupper(static_cast<unsigned char>(class_name[0]))) {
    return b->Fail(Format("unknown element name '%s'", s.c_str()));
  }
  out->element = b->Make(class_name, args);
  return out->element != nullptr;
}

}  // namespace

ConfigParseResult ParseClickConfig(const std::string& text, Router* router,
                                   const ConfigContext& context) {
  ConfigParseResult result;
  Builder builder{router, &context, ""};

  std::string clean = StripComments(text);
  std::vector<std::string> statements = Split(clean, ';');
  for (size_t si = 0; si < statements.size(); ++si) {
    std::string stmt = Trim(statements[si]);
    if (stmt.empty()) {
      continue;
    }
    result.statements++;
    auto fail = [&](const std::string& msg) {
      result.error = Format("statement %zu: %s", si + 1, msg.c_str());
      return result;
    };

    size_t decl = stmt.find("::");
    if (decl != std::string::npos && stmt.find("->") == std::string::npos) {
      std::string name = Trim(stmt.substr(0, decl));
      if (!IsIdentifier(name)) {
        return fail(Format("bad element name '%s'", name.c_str()));
      }
      if (result.elements.count(name)) {
        return fail(Format("element '%s' declared twice", name.c_str()));
      }
      std::string class_name;
      std::vector<std::string> args;
      if (!SplitClassSpec(stmt.substr(decl + 2), &class_name, &args)) {
        return fail("malformed class specification");
      }
      Element* e = builder.Make(class_name, args);
      if (e == nullptr) {
        return fail(builder.error);
      }
      e->set_name(name);
      result.elements[name] = e;
      continue;
    }

    if (stmt.find("->") != std::string::npos) {
      // Chain: hop -> hop -> hop.
      std::vector<std::string> hops;
      size_t start = 0;
      while (true) {
        size_t arrow = stmt.find("->", start);
        if (arrow == std::string::npos) {
          hops.push_back(stmt.substr(start));
          break;
        }
        hops.push_back(stmt.substr(start, arrow - start));
        start = arrow + 2;
      }
      if (hops.size() < 2) {
        return fail("connection needs at least two elements");
      }
      Endpoint prev;
      for (size_t h = 0; h < hops.size(); ++h) {
        Endpoint cur;
        if (!ParseEndpoint(&builder, &result.elements, hops[h], &cur)) {
          return fail(builder.error);
        }
        if (h > 0) {
          if (!router->CanConnect(prev.element, prev.out_port, cur.element, cur.in_port)) {
            return fail(Format("cannot connect '%s' [%d] -> [%d] '%s' (port out of range or "
                               "already wired)",
                               prev.element->name().c_str(), prev.out_port, cur.in_port,
                               cur.element->name().c_str()));
          }
          router->Connect(prev.element, prev.out_port, cur.element, cur.in_port);
          result.connections++;
        }
        prev = cur;
      }
      continue;
    }

    return fail(Format("unrecognized statement '%s'", stmt.c_str()));
  }

  result.ok = true;
  return result;
}

}  // namespace rb
